package mpress_test

// Integration tests: the paper's headline qualitative results asserted
// end to end through the public API. These are the regression anchors
// for EXPERIMENTS.md — if a calibration or planner change breaks a
// paper-shape fact, it fails here, not just in a table diff.

import (
	"testing"

	"mpress"
)

func trainBert(t *testing.T, size string, sys mpress.System) *mpress.Report {
	t.Helper()
	rep, err := mpress.Train(mpress.Config{
		Topology:       mpress.DGX1(),
		Model:          mpress.MustBert(size),
		Schedule:       mpress.PipeDream,
		System:         sys,
		MicrobatchSize: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func trainGPT(t *testing.T, topo *mpress.Topology, size string, sys mpress.System) *mpress.Report {
	t.Helper()
	rep, err := mpress.Train(mpress.Config{
		Topology:       topo,
		Model:          mpress.MustGPT(size),
		Schedule:       mpress.DAPPLE,
		System:         sys,
		MicrobatchSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFigure7SurvivalPattern pins the OOM/survive grid of Fig. 7.
func TestFigure7SurvivalPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 7 grid")
	}
	want := map[string]map[mpress.System]bool{ // size -> system -> survives
		"0.35B": {mpress.SystemPlain: true, mpress.SystemGPUCPUSwap: true, mpress.SystemRecompute: true, mpress.SystemMPressD2D: true, mpress.SystemMPress: true},
		"0.64B": {mpress.SystemPlain: false, mpress.SystemGPUCPUSwap: true, mpress.SystemRecompute: true, mpress.SystemMPressD2D: true, mpress.SystemMPress: true},
		"1.67B": {mpress.SystemPlain: false, mpress.SystemGPUCPUSwap: true, mpress.SystemRecompute: true, mpress.SystemMPressD2D: false, mpress.SystemMPress: true},
		"4.0B":  {mpress.SystemPlain: false, mpress.SystemGPUCPUSwap: true, mpress.SystemRecompute: false, mpress.SystemMPressD2D: false, mpress.SystemMPress: true},
		"6.2B":  {mpress.SystemPlain: false, mpress.SystemGPUCPUSwap: true, mpress.SystemRecompute: false, mpress.SystemMPressD2D: false, mpress.SystemMPress: true},
	}
	for size, systems := range want {
		for sys, survives := range systems {
			rep := trainBert(t, size, sys)
			if got := !rep.Failed(); got != survives {
				t.Errorf("Bert-%s under %v: survives=%v, paper shape wants %v",
					size, sys, got, survives)
			}
		}
	}
}

// TestFigure7Ordering pins the throughput ordering at the crossover
// sizes: swap < recompute < MPress.
func TestFigure7Ordering(t *testing.T) {
	for _, size := range []string{"0.64B", "1.67B"} {
		swap := trainBert(t, size, mpress.SystemGPUCPUSwap)
		rec := trainBert(t, size, mpress.SystemRecompute)
		full := trainBert(t, size, mpress.SystemMPress)
		if swap.Failed() || rec.Failed() || full.Failed() {
			t.Fatalf("Bert-%s: unexpected OOM", size)
		}
		if !(swap.TFLOPS < rec.TFLOPS && rec.TFLOPS < full.TFLOPS) {
			t.Errorf("Bert-%s ordering: swap %.1f, recompute %.1f, MPress %.1f",
				size, swap.TFLOPS, rec.TFLOPS, full.TFLOPS)
		}
	}
}

// TestFigure8Ordering pins MPress > ZeRO-Infinity > ZeRO-Offload on
// the DGX-1 and the slow-SSD inversion on the DGX-2.
func TestFigure8Ordering(t *testing.T) {
	mp := trainGPT(t, mpress.DGX1(), "10.3B", mpress.SystemMPress)
	inf := trainGPT(t, mpress.DGX1WithNVMe(), "10.3B", mpress.SystemZeROInfinity)
	off := trainGPT(t, mpress.DGX1WithNVMe(), "10.3B", mpress.SystemZeROOffload)
	if mp.Failed() || inf.Failed() || off.Failed() {
		t.Fatal("unexpected OOM")
	}
	if !(mp.TFLOPS > inf.TFLOPS && inf.TFLOPS > off.TFLOPS) {
		t.Errorf("DGX-1 ordering: MPress %.1f, Infinity %.1f, Offload %.1f",
			mp.TFLOPS, inf.TFLOPS, off.TFLOPS)
	}
	// MPress leads ZeRO-Infinity by a clear margin (paper: 37-41%).
	if gain := mp.TFLOPS/inf.TFLOPS - 1; gain < 0.15 {
		t.Errorf("MPress/Infinity gain = %.0f%%, want a clear lead", gain*100)
	}

	inf2 := trainGPT(t, mpress.DGX2(), "20.4B", mpress.SystemZeROInfinity)
	off2 := trainGPT(t, mpress.DGX2(), "20.4B", mpress.SystemZeROOffload)
	mp2 := trainGPT(t, mpress.DGX2(), "20.4B", mpress.SystemMPress)
	if inf2.TFLOPS >= off2.TFLOPS {
		t.Errorf("DGX-2 slow SSDs must invert: Infinity %.1f vs Offload %.1f",
			inf2.TFLOPS, off2.TFLOPS)
	}
	if mp2.TFLOPS <= inf2.TFLOPS || mp2.TFLOPS <= off2.TFLOPS {
		t.Errorf("MPress (%.1f) must lead both ZeRO variants (%.1f, %.1f) on DGX-2",
			mp2.TFLOPS, off2.TFLOPS, inf2.TFLOPS)
	}
}

// TestMPressNearBestSingleMechanism: the combined planner must be at
// least as good as ~95% of the best stand-alone mechanism wherever
// both survive (it should usually win outright).
func TestMPressNearBestSingleMechanism(t *testing.T) {
	for _, size := range []string{"0.64B", "1.67B"} {
		best := 0.0
		for _, sys := range []mpress.System{
			mpress.SystemGPUCPUSwap, mpress.SystemRecompute, mpress.SystemMPressD2D,
		} {
			rep := trainBert(t, size, sys)
			if !rep.Failed() && rep.TFLOPS > best {
				best = rep.TFLOPS
			}
		}
		full := trainBert(t, size, mpress.SystemMPress)
		if full.Failed() {
			t.Fatalf("Bert-%s: MPress OOM", size)
		}
		if full.TFLOPS < best*0.95 {
			t.Errorf("Bert-%s: MPress %.1f far below best single mechanism %.1f",
				size, full.TFLOPS, best)
		}
	}
}

// TestDGX2DoublesDGX1 pins the Sec. IV-C observation that the A100
// server more than doubles every system's throughput.
func TestDGX2DoublesDGX1(t *testing.T) {
	for _, sys := range []mpress.System{mpress.SystemRecompute, mpress.SystemMPress} {
		v := trainGPT(t, mpress.DGX1(), "10.3B", sys)
		a := trainGPT(t, mpress.DGX2(), "10.3B", sys)
		if v.Failed() || a.Failed() {
			t.Fatalf("%v: unexpected OOM", sys)
		}
		if a.TFLOPS <= 2*v.TFLOPS {
			t.Errorf("%v: DGX-2 %.1f not >2x DGX-1 %.1f", sys, a.TFLOPS, v.TFLOPS)
		}
	}
}

// TestTrainDeterministicEndToEnd: the whole stack, planner included,
// is reproducible.
func TestTrainDeterministicEndToEnd(t *testing.T) {
	a := trainBert(t, "1.67B", mpress.SystemMPress)
	b := trainBert(t, "1.67B", mpress.SystemMPress)
	if a.TFLOPS != b.TFLOPS || a.Duration != b.Duration {
		t.Errorf("nondeterministic training: %.3f/%v vs %.3f/%v",
			a.TFLOPS, a.Duration, b.TFLOPS, b.Duration)
	}
	for i := range a.PerGPUPeak {
		if a.PerGPUPeak[i] != b.PerGPUPeak[i] {
			t.Errorf("gpu%d peaks differ", i)
		}
	}
}
