package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"

	"mpress/internal/fleet"
	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/runner"
	"mpress/internal/serve/api"
	"mpress/internal/serve/client"
)

// testFleet is a local n-peer planning fleet: every peer serves on a
// loopback listener and shares the same membership view.
type testFleet struct {
	servers []*Server
	urls    []string
	cancels []context.CancelFunc
	waits   []func() error
}

// startFleet boots n mpressd peers with a shared membership. Listeners
// are created first so every peer's fleet view can name the final URLs.
func startFleet(t *testing.T, n int, epoch string) *testFleet {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	tf := &testFleet{urls: urls}
	for i := 0; i < n; i++ {
		fl, err := fleet.New(urls[i], urls, epoch)
		if err != nil {
			t.Fatal(err)
		}
		s := New(Options{
			Runner:     runner.Options{Workers: 2},
			QueueDepth: 128,
			Fleet:      fl,
			Logger:     testLogger(t),
		})
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func(s *Server, ln net.Listener) { errc <- s.Serve(ctx, ln) }(s, lns[i])
		tf.servers = append(tf.servers, s)
		tf.cancels = append(tf.cancels, cancel)
		tf.waits = append(tf.waits, func() error { return <-errc })
	}
	return tf
}

// shutdown drains every peer and reports serve errors.
func (tf *testFleet) shutdown(t *testing.T) {
	t.Helper()
	for _, cancel := range tf.cancels {
		cancel()
	}
	for i, wait := range tf.waits {
		if err := wait(); err != nil {
			t.Errorf("peer %d serve exit: %v", i, err)
		}
	}
}

// peerClient returns a plain single-peer client for one fleet member.
func (tf *testFleet) peerClient(i int) *client.Client {
	cl := client.New(tf.urls[i])
	cl.HTTPClient = &http.Client{Transport: &http.Transport{}}
	return cl
}

// smokeConfigs is the mixed job set the fleet smoke pushes: two Bert
// sizes, planning and non-planning systems, varied minibatch counts —
// distinct fingerprints, some sharing plan keys.
func smokeConfigs(t *testing.T) []runner.Config {
	t.Helper()
	m35, err := model.BertVariant("0.35B")
	if err != nil {
		t.Fatal(err)
	}
	base := runner.Config{
		Topology:       hw.DGX1(),
		Model:          m35,
		Schedule:       pipeline.PipeDream,
		System:         runner.SystemMPress,
		MicrobatchSize: 12,
	}
	var cfgs []runner.Config
	for _, mb := range []int{2, 3, 4} {
		c := base
		c.Minibatches = mb
		cfgs = append(cfgs, c)
	}
	rec := base
	rec.System = runner.SystemRecompute
	cfgs = append(cfgs, rec)
	swp := base
	swp.System = runner.SystemGPUCPUSwap
	swp.Minibatches = 3
	cfgs = append(cfgs, swp)
	zero := base
	zero.System = runner.SystemZeRO3 // plans nothing: exercises the no-plan path
	cfgs = append(cfgs, zero)
	return cfgs
}

// localCanonicalPlans precomputes, for each config, the plan.Save
// bytes an in-process runner.Train produces — the byte-parity oracle.
func localCanonicalPlans(t *testing.T, cfgs []runner.Config) [][]byte {
	t.Helper()
	out := make([][]byte, len(cfgs))
	for i, cfg := range cfgs {
		rep, err := runner.Train(cfg)
		if err != nil {
			t.Fatalf("local train %d: %v", i, err)
		}
		if rep.Plan == nil {
			continue // non-planning system
		}
		j, err := runner.NewJob(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := j.SavePlan(&buf, rep.Plan); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.Bytes()
	}
	return out
}

// metricValue extracts one un-labelled metric's value from a scrape.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, name+" %f", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestFleetSmoke is the acceptance run behind `make fleet-smoke`: a
// 3-peer fleet serves 200 mixed requests through the ring-aware
// client; every plan that comes back is byte-identical to a local
// runner.Train, requests demonstrably crossed peers, and the fleet
// drains without leaking a goroutine.
func TestFleetSmoke(t *testing.T) {
	base := runtime.NumGoroutine()
	tf := startFleet(t, 3, "e1")

	cfgs := smokeConfigs(t)
	want := localCanonicalPlans(t, cfgs)

	fc, err := client.NewFleet(tf.urls)
	if err != nil {
		t.Fatal(err)
	}
	fc.DisableHedging = true // hedging has its own test; keep load deterministic

	// 200 requests, skewed toward the first configs (a Zipf-flavored
	// mix: popular jobs dominate, the tail still appears).
	const requests = 200
	picks := make([]int, requests)
	rng := uint64(0x6d70)
	for i := range picks {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		r := rng % 100
		switch {
		case r < 45:
			picks[i] = 0
		case r < 70:
			picks[i] = 1
		case r < 82:
			picks[i] = 2
		case r < 90:
			picks[i] = 3
		case r < 96:
			picks[i] = 4
		default:
			picks[i] = 5
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, requests)
	sem := make(chan struct{}, 6)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := cfgs[picks[i]]
			resp, err := fc.PlanWait(context.Background(), cfg, "")
			if err != nil {
				errs[i] = err
				return
			}
			if want[picks[i]] == nil {
				if len(resp.Plan) != 0 {
					errs[i] = fmt.Errorf("config %d: unexpected plan", picks[i])
				}
				return
			}
			got, err := resp.CanonicalPlanFile()
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, want[picks[i]]) {
				errs[i] = fmt.Errorf("config %d: plan differs from local (%d vs %d bytes)",
					picks[i], len(got), len(want[picks[i]]))
			}
		}(i)
	}
	wg.Wait()
	failed := 0
	for i, err := range errs {
		if err != nil {
			failed++
			if failed <= 3 {
				t.Errorf("request %d: %v", i, err)
			}
		}
	}
	if failed > 0 {
		t.Fatalf("%d/%d requests failed or diverged", failed, requests)
	}

	// The fleet actually behaved as a fleet: with 6 fingerprints spread
	// over 3 owners and the client routing directly, every peer served
	// traffic; cross-peer machinery (forwarding or the cache tier) is
	// exercised by the owner-side cache pushes.
	st := fc.Stats()
	if st.Requests != requests {
		t.Errorf("client counted %d requests, want %d", st.Requests, requests)
	}
	if len(st.PerPeer) < 2 {
		t.Errorf("all traffic went to one peer: %+v", st.PerPeer)
	}

	var computes int64
	for _, s := range tf.servers {
		computes += s.runner.Stats().PlanComputes
	}
	// 5 planning configs share 2 distinct plan keys per system family;
	// whatever the exact dedup, the fleet must not have planned per
	// request.
	if computes >= requests/2 {
		t.Errorf("fleet ran %d planner searches for %d requests — caching is off", computes, requests)
	}

	fc.CloseIdleConnections()
	tf.shutdown(t)
	waitGoroutines(t, base)
}

// TestFleetBurstSingleflight is the popular-fingerprint acceptance
// check: 64 concurrent requests for ONE fingerprint against 3 peers
// compute the plan exactly once fleet-wide, and every caller gets the
// same bytes.
func TestFleetBurstSingleflight(t *testing.T) {
	base := runtime.NumGoroutine()
	tf := startFleet(t, 3, "e1")

	cfg := smokeConfigs(t)[0]
	fc, err := client.NewFleet(tf.urls)
	if err != nil {
		t.Fatal(err)
	}
	fc.DisableHedging = true

	const burst = 64
	var wg sync.WaitGroup
	plans := make([][]byte, burst)
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A third of the burst hits non-owner peers directly, so the
			// collapse must survive the forwarding path too.
			var resp *api.PlanResponse
			var err error
			if i%3 == 0 {
				resp, err = tf.peerClient(i%len(tf.urls)).Plan(context.Background(), cfg, "")
			} else {
				resp, err = fc.Plan(context.Background(), cfg, "")
			}
			if err != nil {
				errs[i] = err
				return
			}
			plans[i], errs[i] = resp.CanonicalPlanFile()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("burst request %d: %v", i, err)
		}
	}
	for i := 1; i < burst; i++ {
		if !bytes.Equal(plans[i], plans[0]) {
			t.Fatalf("burst request %d got different plan bytes", i)
		}
	}

	var computes int64
	for _, s := range tf.servers {
		computes += s.runner.Stats().PlanComputes
	}
	if computes != 1 {
		t.Errorf("burst of %d identical requests ran %d planner searches, want exactly 1", burst, computes)
	}

	fc.CloseIdleConnections()
	tf.shutdown(t)
	waitGoroutines(t, base)
}

// TestFleetForwardParity: a plan requested through a NON-owner peer is
// byte-identical to the local result — forwarding is transparent.
func TestFleetForwardParity(t *testing.T) {
	base := runtime.NumGoroutine()
	tf := startFleet(t, 3, "e1")

	cfg := smokeConfigs(t)[0]
	j, err := runner.NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	owner := tf.servers[0].fleet.Owner(j.Fingerprint())
	nonOwner := -1
	for i, u := range tf.urls {
		if u != owner {
			nonOwner = i
			break
		}
	}
	cl := tf.peerClient(nonOwner)
	resp, err := cl.Plan(context.Background(), cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	got, err := resp.CanonicalPlanFile()
	if err != nil {
		t.Fatal(err)
	}
	want := localCanonicalPlans(t, []runner.Config{cfg})[0]
	if !bytes.Equal(got, want) {
		t.Errorf("forwarded plan differs from local (%d vs %d bytes)", len(got), len(want))
	}

	body := scrapeMetrics(t, cl)
	if v := metricValue(t, body, "mpressd_fleet_forwards_sent_total"); v < 1 {
		t.Errorf("non-owner forwarded %v requests, want >= 1", v)
	}
	var received float64
	for i := range tf.urls {
		ocl := tf.peerClient(i)
		received += metricValue(t, scrapeMetrics(t, ocl), "mpressd_fleet_forwards_received_total")
		ocl.HTTPClient.CloseIdleConnections()
	}
	if received < 1 {
		t.Errorf("no peer counted a received forward")
	}

	cl.HTTPClient.CloseIdleConnections()
	tf.shutdown(t)
	waitGoroutines(t, base)
}

// TestFleetForwardFallback: when the ring owner is unreachable, the
// receiving peer plans locally instead of failing the request —
// availability degrades to cache locality, not errors.
func TestFleetForwardFallback(t *testing.T) {
	base := runtime.NumGoroutine()
	// Reserve an address for the dead peer, then close it.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + deadLn.Addr().String()
	deadLn.Close()

	liveLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	liveURL := "http://" + liveLn.Addr().String()
	fl, err := fleet.New(liveURL, []string{liveURL, deadURL}, "e1")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Runner: runner.Options{Workers: 2}, Fleet: fl, Logger: testLogger(t)})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(ctx, liveLn) }()

	// Find a config the DEAD peer owns, so the live peer must try (and
	// fail) to forward it.
	cfg := smokeConfigs(t)[0]
	found := false
	for mb := 2; mb <= 32; mb++ {
		cfg.Minibatches = mb
		j, err := runner.NewJob(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fl.Owner(j.Fingerprint()) == deadURL {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no test fingerprint owned by the dead peer")
	}

	cl := client.New(liveURL)
	cl.HTTPClient = &http.Client{Transport: &http.Transport{}}
	resp, err := cl.Plan(context.Background(), cfg, "")
	if err != nil {
		t.Fatalf("request owned by a dead peer failed outright: %v", err)
	}
	got, err := resp.CanonicalPlanFile()
	if err != nil {
		t.Fatal(err)
	}
	want := localCanonicalPlans(t, []runner.Config{cfg})[0]
	if !bytes.Equal(got, want) {
		t.Error("fallback plan differs from local")
	}
	body := scrapeMetrics(t, cl)
	if v := metricValue(t, body, "mpressd_fleet_forward_errors_total"); v < 1 {
		t.Errorf("forward_errors = %v, want >= 1", v)
	}

	cl.HTTPClient.CloseIdleConnections()
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("serve exit: %v", err)
	}
	waitGoroutines(t, base)
}

// TestFleetCacheVersioning pins the cache tier's fail-closed contract:
// wrong or missing version headers are refused with a typed 412, a
// matching version with an unknown key is a typed 404, and a
// standalone daemon exposes no tier at all.
func TestFleetCacheVersioning(t *testing.T) {
	tf := startFleet(t, 2, "e1")
	defer tf.shutdown(t)

	httpc := &http.Client{Transport: &http.Transport{}}
	defer httpc.CloseIdleConnections()
	version := tf.servers[0].fleet.Version()

	get := func(url, ver string) (*http.Response, error) {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		if ver != "" {
			req.Header.Set(api.HeaderCacheVersion, ver)
		}
		return httpc.Do(req)
	}

	// Wrong version: refused 412/cache_version.
	res, err := get(tf.urls[0]+api.PathCache+"/some-key", "bogus")
	if err != nil {
		t.Fatal(err)
	}
	var apiErr api.Error
	decodeBody(t, res, &apiErr)
	if res.StatusCode != http.StatusPreconditionFailed || apiErr.Code != api.CodeCacheVersion {
		t.Errorf("wrong version: status %d code %q", res.StatusCode, apiErr.Code)
	}

	// Missing version: also refused (fail closed, not fail open).
	res, err = get(tf.urls[0]+api.PathCache+"/some-key", "")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, res, &apiErr)
	if res.StatusCode != http.StatusPreconditionFailed {
		t.Errorf("missing version: status %d", res.StatusCode)
	}

	// Matching version, unknown key: typed 404.
	res, err = get(tf.urls[0]+api.PathCache+"/some-key", version)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, res, &apiErr)
	if res.StatusCode != http.StatusNotFound || apiErr.Code != api.CodeNotFound {
		t.Errorf("unknown key: status %d code %q", res.StatusCode, apiErr.Code)
	}

	// Epoch bump changes the version — the invalidation lever.
	fl2, err := fleet.New(tf.urls[0], tf.urls, "e2")
	if err != nil {
		t.Fatal(err)
	}
	if fl2.Version() == version {
		t.Error("epoch bump did not change the cache version")
	}

	// A standalone daemon refuses the tier outright.
	solo := New(Options{Runner: runner.Options{Workers: 1}, Logger: testLogger(t)})
	scl, cancel, wait := startDaemon(t, solo)
	res, err = get(scl.BaseURL+api.PathCache+"/some-key", "anything")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, res, &apiErr)
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("standalone cache tier: status %d", res.StatusCode)
	}
	scl.HTTPClient.CloseIdleConnections()
	cancel()
	_ = wait()
}

// TestFleetCacheTierReuse: a plan computed on one peer is pulled from
// the tier by another peer planning a different fingerprint with the
// same plan key — no second planner search.
func TestFleetCacheTierReuse(t *testing.T) {
	base := runtime.NumGoroutine()
	tf := startFleet(t, 3, "e1")

	// Two configs, same plan key (minibatch count is outside the plan
	// key), different fingerprints — usually different ring owners.
	cfgA := smokeConfigs(t)[0]
	cfgB := cfgA
	cfgB.Minibatches = cfgA.Minibatches + 7
	jA, err := runner.NewJob(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	jB, err := runner.NewJob(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if jA.PlanKey() != jB.PlanKey() || jA.Fingerprint() == jB.Fingerprint() {
		t.Fatalf("test premise broken: keys %q/%q fps equal=%v",
			jA.PlanKey(), jB.PlanKey(), jA.Fingerprint() == jB.Fingerprint())
	}

	fc, err := client.NewFleet(tf.urls)
	if err != nil {
		t.Fatal(err)
	}
	fc.DisableHedging = true
	if _, err := fc.Plan(context.Background(), cfgA, ""); err != nil {
		t.Fatal(err)
	}
	respB, err := fc.Plan(context.Background(), cfgB, "")
	if err != nil {
		t.Fatal(err)
	}
	want := localCanonicalPlans(t, []runner.Config{cfgB})[0]
	got, err := respB.CanonicalPlanFile()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("tier-seeded plan differs from local")
	}

	var computes int64
	for _, s := range tf.servers {
		computes += s.runner.Stats().PlanComputes
	}
	if computes != 1 {
		t.Errorf("two same-plan-key jobs ran %d planner searches, want 1 (tier reuse)", computes)
	}

	fc.CloseIdleConnections()
	tf.shutdown(t)
	waitGoroutines(t, base)
}

func decodeBody(t *testing.T, res *http.Response, out any) {
	t.Helper()
	defer res.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), out); err != nil {
		t.Fatalf("decode %q: %v", buf.String(), err)
	}
}
