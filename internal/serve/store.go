package serve

import (
	"container/list"
	"io"
	"sync"

	"mpress/internal/serve/api"
	"mpress/internal/trace"
)

// jobRecord is one retained completed job: enough to serve follow-up
// queries (its Chrome trace) without keeping the full pipeline State
// alive. The timeline is extracted eagerly so the lowered graph and
// raw exec result can be collected as soon as the job finishes.
type jobRecord struct {
	info     api.JobInfo
	timeline *trace.Timeline
}

// jobStore retains the last N completed jobs for the trace endpoint,
// evicting oldest-first — the same bounded-retention discipline as the
// plan cache, so a long-lived daemon's memory stays flat no matter how
// many jobs it serves.
type jobStore struct {
	mu    sync.Mutex
	cap   int
	byID  map[string]*list.Element // value: *jobRecord
	order *list.List               // front = most recent
}

func newJobStore(capacity int) *jobStore {
	return &jobStore{
		cap:   capacity,
		byID:  make(map[string]*list.Element),
		order: list.New(),
	}
}

func (s *jobStore) put(rec *jobRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cap <= 0 {
		return
	}
	s.byID[rec.info.ID] = s.order.PushFront(rec)
	for s.order.Len() > s.cap {
		back := s.order.Back()
		s.order.Remove(back)
		delete(s.byID, back.Value.(*jobRecord).info.ID)
	}
}

func (s *jobStore) get(id string) (*jobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return e.Value.(*jobRecord), true
}

// list returns the retained jobs, most recent first.
func (s *jobStore) list() []api.JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]api.JobInfo, 0, s.order.Len())
	for e := s.order.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*jobRecord).info)
	}
	return out
}

// writeTrace renders the record's Chrome trace JSON.
func (r *jobRecord) writeTrace(w io.Writer) error {
	return r.timeline.WriteChrome(w)
}
