package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/plan"
	"mpress/internal/runner"
	"mpress/internal/serve/api"
	"mpress/internal/serve/client"
)

func testConfig(t *testing.T, sys runner.System) runner.Config {
	t.Helper()
	m, err := model.BertVariant("0.64B")
	if err != nil {
		t.Fatal(err)
	}
	return runner.Config{
		Topology:       hw.DGX1(),
		Model:          m,
		Schedule:       pipeline.PipeDream,
		System:         sys,
		MicrobatchSize: 12,
	}
}

// startDaemon serves s on a loopback listener and returns a client,
// the shutdown trigger, and a wait-for-exit func that reports Serve's
// error.
func startDaemon(t *testing.T, s *Server) (*client.Client, context.CancelFunc, func() error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(ctx, ln) }()
	cl := client.New("http://" + ln.Addr().String())
	cl.HTTPClient = &http.Client{Transport: &http.Transport{}}
	return cl, cancel, func() error { return <-errc }
}

// waitGoroutines fails the test if the goroutine count does not settle
// back to the baseline — the stdlib-only stand-in for goleak.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
}

// TestEndToEndPlanParity is the acceptance check: a plan served over
// the wire round-trips through plan.Load and is byte-for-byte the plan
// an in-process runner.Train produces for the same config.
func TestEndToEndPlanParity(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Options{Runner: runner.Options{Workers: 2}, Logger: testLogger(t)})
	cl, cancel, wait := startDaemon(t, s)

	cfg := testConfig(t, runner.SystemMPress)
	if err := cl.Healthy(context.Background()); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp, err := cl.Plan(context.Background(), cfg, "")
	if err != nil {
		t.Fatalf("remote plan: %v", err)
	}
	if resp.Report == nil || resp.Report.Failed() {
		t.Fatalf("remote report: %+v", resp.Report)
	}
	if len(resp.Plan) == 0 {
		t.Fatal("no plan on the wire")
	}

	// The wire plan round-trips through plan.Load.
	remotePlan, label, err := plan.Load(bytes.NewReader(resp.Plan))
	if err != nil {
		t.Fatalf("wire plan does not load: %v", err)
	}
	if remotePlan == nil || label != resp.Fingerprint {
		t.Fatalf("wire plan label = %q, want fingerprint %q", label, resp.Fingerprint)
	}

	// Byte-for-byte parity with the in-process result: the canonical
	// plan file reconstructed from the wire equals the plan.Save bytes
	// of a local runner.Train for the same config.
	localRep, err := runner.Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := runner.NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	if err := j.SavePlan(&local, localRep.Plan); err != nil {
		t.Fatal(err)
	}
	canonical, err := resp.CanonicalPlanFile()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), canonical) {
		t.Errorf("remote plan differs from local plan:\nlocal  %d bytes\nremote %d bytes",
			local.Len(), len(canonical))
	}
	if resp.Report.TFLOPS != localRep.TFLOPS || resp.Report.Duration != localRep.Duration {
		t.Errorf("remote report %v/%v, local %v/%v",
			resp.Report.TFLOPS, resp.Report.Duration, localRep.TFLOPS, localRep.Duration)
	}

	// A second identical request hits the daemon's plan cache.
	resp2, err := cl.Plan(context.Background(), cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.PlanCacheHit {
		t.Error("second identical request should hit the plan cache")
	}
	if !bytes.Equal(resp2.Plan, resp.Plan) {
		t.Error("cached plan differs on the wire")
	}

	// The completed job's Chrome trace streams back and parses.
	var tr bytes.Buffer
	if err := cl.Trace(context.Background(), resp.ID, &tr); err != nil {
		t.Fatalf("trace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	jobs, err := cl.Jobs(context.Background())
	if err != nil || len(jobs.Jobs) != 2 {
		t.Fatalf("jobs = %+v, err %v (want 2 retained)", jobs, err)
	}

	// Unknown job traces 404 as an api.Error.
	var apiErr *api.Error
	if err := cl.Trace(context.Background(), "job-nope", &bytes.Buffer{}); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("unknown trace error = %v", err)
	}

	cl.HTTPClient.CloseIdleConnections()
	cancel()
	if err := wait(); err != nil {
		t.Fatalf("serve exit: %v", err)
	}
	waitGoroutines(t, base)
}

// testLogger routes the daemon's request log through t.Log. Every test
// waits for Serve to return before finishing, so no log line can land
// after the test completes.
func testLogger(t *testing.T) *log.Logger {
	return log.New(testLogWriter{t}, "", 0)
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("mpressd: %s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// TestSweepEndpoint runs a mixed batch: valid jobs plan, invalid
// configs surface as per-result errors in input order.
func TestSweepEndpoint(t *testing.T) {
	s := New(Options{Runner: runner.Options{Workers: 2}, Logger: testLogger(t)})
	cl, cancel, wait := startDaemon(t, s)
	defer func() { cancel(); _ = wait() }()

	cfgs := []runner.Config{
		testConfig(t, runner.SystemRecompute),
		{}, // invalid: no topology
		testConfig(t, runner.SystemZeRO3),
	}
	resp, err := cl.Sweep(context.Background(), cfgs, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	if r := resp.Results[0]; r.Error != "" || r.Response == nil || r.Response.Report.Failed() {
		t.Errorf("result 0 = %+v", r)
	}
	if r := resp.Results[1]; r.Error == "" || r.Response != nil {
		t.Errorf("invalid config should error: %+v", r)
	}
	if r := resp.Results[2]; r.Error != "" || r.Response == nil {
		t.Errorf("zero job = %+v", r)
	}
	// ZeRO baselines produce no plan.
	if len(resp.Results[2].Response.Plan) != 0 {
		t.Error("ZeRO job should carry no plan")
	}
	cl.HTTPClient.CloseIdleConnections()
}

// TestSaturationAndDrain fills the admission queue with jobs blocked
// inside the runner stub, verifies overflow requests get 429 +
// Retry-After, then triggers shutdown and verifies the blocked jobs
// drain to completion with no goroutine leaks.
func TestSaturationAndDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	const depth = 2
	s := New(Options{
		Runner:     runner.Options{Workers: 1},
		QueueDepth: depth,
		Logger:     testLogger(t),
	})
	admitted := make(chan struct{}, depth)
	release := make(chan struct{})
	s.runJob = func(ctx context.Context, j *runner.Job) runner.JobResult {
		admitted <- struct{}{}
		<-release
		return runner.JobResult{Job: j, Report: &runner.Report{Config: j.Config}}
	}
	cl, cancel, wait := startDaemon(t, s)

	cfg := testConfig(t, runner.SystemMPress)
	var wg sync.WaitGroup
	type outcome struct {
		resp *api.PlanResponse
		err  error
	}
	slow := make([]outcome, depth)
	for i := 0; i < depth; i++ {
		// Distinct fingerprints: identical concurrent requests would
		// collapse into one flight and hold only one runJob slot.
		c := cfg
		c.Minibatches = i + 2
		wg.Add(1)
		go func(i int, c runner.Config) {
			defer wg.Done()
			resp, err := cl.Plan(context.Background(), c, "")
			slow[i] = outcome{resp, err}
		}(i, c)
	}
	// Both slots are held inside runJob before we probe saturation.
	for i := 0; i < depth; i++ {
		select {
		case <-admitted:
		case <-time.After(5 * time.Second):
			t.Fatal("jobs never admitted")
		}
	}

	// The queue is full: further requests are rejected immediately.
	var rejections int
	for i := 0; i < 4; i++ {
		_, err := cl.Plan(context.Background(), cfg, "")
		var apiErr *api.Error
		if !errors.As(err, &apiErr) {
			t.Fatalf("overflow request %d: %v", i, err)
		}
		if !apiErr.IsSaturated() {
			t.Fatalf("overflow request %d: status %d", i, apiErr.Status)
		}
		if apiErr.RetryAfterDuration() < time.Second {
			t.Errorf("Retry-After hint %q too small", apiErr.RetryAfter)
		}
		rejections++
	}

	// Saturation is visible on /metrics.
	metricsBody := scrapeMetrics(t, cl)
	wantLines := []string{
		fmt.Sprintf("mpressd_rejected_total{endpoint=\"plan\"} %d", rejections),
		fmt.Sprintf("mpressd_queue_depth %d", depth),
		fmt.Sprintf("mpressd_queue_capacity %d", depth),
	}
	for _, want := range wantLines {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("metrics missing %q:\n%s", want, metricsBody)
		}
	}

	// SIGTERM equivalent: drain begins while both jobs are in flight...
	cancel()
	// ...give Shutdown a moment to close listeners, then release the
	// jobs: they must complete and deliver 200s to their clients.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, o := range slow {
		if o.err != nil {
			t.Errorf("in-flight request %d dropped during drain: %v", i, o.err)
		} else if o.resp.Fingerprint == "" {
			t.Errorf("in-flight request %d: empty response", i)
		}
	}
	if err := wait(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cl.HTTPClient.CloseIdleConnections()
	waitGoroutines(t, base)
}

func scrapeMetrics(t *testing.T, cl *client.Client) string {
	t.Helper()
	res, err := cl.HTTPClient.Get(cl.BaseURL + api.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type %q", ct)
	}
	return buf.String()
}

// TestRequestTimeout propagates a tiny deadline into the planner and
// surfaces it as 504.
func TestRequestTimeout(t *testing.T) {
	s := New(Options{Runner: runner.Options{Workers: 1}, Logger: testLogger(t)})
	cl, cancel, wait := startDaemon(t, s)
	defer func() { cancel(); _ = wait() }()

	_, err := cl.Plan(context.Background(), testConfig(t, runner.SystemMPress), "1ms")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("timeout error = %v", err)
	}
	cl.HTTPClient.CloseIdleConnections()
}

// TestBadRequests covers the 400 surface: bad JSON, bad timeout
// strings, invalid configs, oversized sweeps.
func TestBadRequests(t *testing.T) {
	s := New(Options{Runner: runner.Options{Workers: 1}, MaxSweepConfigs: 2, Logger: testLogger(t)})
	cl, cancel, wait := startDaemon(t, s)
	defer func() { cancel(); _ = wait() }()

	post := func(path, body string) int {
		res, err := cl.HTTPClient.Post(cl.BaseURL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		return res.StatusCode
	}
	if code := post(api.PathPlan, "{nope"); code != http.StatusBadRequest {
		t.Errorf("bad JSON: %d", code)
	}
	if code := post(api.PathPlan, `{"config":{},"timeout":"never"}`); code != http.StatusBadRequest {
		t.Errorf("bad timeout: %d", code)
	}
	if code := post(api.PathSweep, `{"configs":[]}`); code != http.StatusBadRequest {
		t.Errorf("empty sweep: %d", code)
	}
	if code := post(api.PathSweep, `{"configs":[{},{},{}]}`); code != http.StatusBadRequest {
		t.Errorf("oversized sweep: %d", code)
	}
	// An invalid config is a 400 with a cause.
	_, err := cl.Plan(context.Background(), runner.Config{}, "")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.Message == "" {
		t.Errorf("invalid config error = %v", err)
	}
	cl.HTTPClient.CloseIdleConnections()
}

// TestInfeasibleMappingIs400 is the regression test for the crash this
// used to be: a config that survives validation but has no feasible
// stage→GPU mapping (8 pipeline stages on the 4-GPU plane a TPDegree=2
// grid leaves) made mapping.Search panic inside the worker. It must
// now surface as a 400 with the infeasibility spelled out, and the
// daemon must keep serving afterwards.
func TestInfeasibleMappingIs400(t *testing.T) {
	s := New(Options{Runner: runner.Options{Workers: 1}, Logger: testLogger(t)})
	cl, cancel, wait := startDaemon(t, s)
	defer func() { cancel(); _ = wait() }()

	cfg := testConfig(t, runner.SystemMPress)
	cfg.TPDegree = 2
	cfg.Stages = 8 // plane is 8/2 = 4 GPUs wide
	_, err := cl.Plan(context.Background(), cfg, "")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("infeasible mapping error = %v, want HTTP 400", err)
	}
	if !strings.Contains(apiErr.Message, "stage") {
		t.Errorf("error message %q does not name the infeasibility", apiErr.Message)
	}

	// The worker survived the infeasible job: a sane config still plans.
	resp, err := cl.Plan(context.Background(), testConfig(t, runner.SystemMPress), "")
	if err != nil || resp.Report == nil || resp.Report.Failed() {
		t.Fatalf("daemon unhealthy after infeasible job: resp=%+v err=%v", resp, err)
	}
	cl.HTTPClient.CloseIdleConnections()
}

// TestMetricsFormat sanity-checks the Prometheus text exposition:
// counters and histograms render with sorted, stable label sets.
func TestMetricsFormat(t *testing.T) {
	m := newMetrics()
	m.observe("plan", "200", 3*time.Millisecond)
	m.observe("plan", "200", 700*time.Millisecond)
	m.observe("plan", "429", time.Millisecond)
	m.observe("sweep", "200", 40*time.Millisecond)
	m.reject("plan")
	var buf bytes.Buffer
	m.writeText(&buf, []gauge{{"mpressd_queue_depth", "gauge", "q", 3}})
	out := buf.String()
	for _, want := range []string{
		`mpressd_requests_total{endpoint="plan",code="200"} 2`,
		`mpressd_requests_total{endpoint="plan",code="429"} 1`,
		`mpressd_requests_total{endpoint="sweep",code="200"} 1`,
		`mpressd_rejected_total{endpoint="plan"} 1`,
		`mpressd_request_seconds_bucket{endpoint="plan",le="0.001"} 1`,
		`mpressd_request_seconds_bucket{endpoint="plan",le="0.005"} 2`,
		`mpressd_request_seconds_bucket{endpoint="plan",le="+Inf"} 3`,
		`mpressd_request_seconds_count{endpoint="plan"} 3`,
		"# TYPE mpressd_requests_total counter",
		"# TYPE mpressd_request_seconds histogram",
		"mpressd_queue_depth 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
