package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/url"
	"time"

	"mpress/internal/plan"
	"mpress/internal/runner"
	"mpress/internal/serve/api"
)

// This file is the server side of the planning fleet: transparent
// one-hop forwarding of plan requests to their ring owner, and the
// shared plan-cache tier (GET/PUT /v1/cache/{key}) that lets a plan
// computed anywhere be reused everywhere. Requests route by job
// FINGERPRINT; cache entries key by PLAN KEY (the fingerprint minus
// the plan-invariant fields), so the two may live on different peers —
// the fingerprint owner computes, then pushes the canonical plan to
// the plan-key owner, where any peer's next cold run finds it.

// peerTimeout bounds one cache-tier exchange. Entries are small (plan
// files are tens of KB) and a slow peer must not stall planning — a
// miss just means computing locally, which always works.
const peerTimeout = 5 * time.Second

// forwardPlan proxies a plan request to its ring owner, streaming the
// owner's response (success or failure) back verbatim. It returns
// false — with nothing written — when the owner is unreachable, so the
// caller can fall back to planning locally.
func (s *Server) forwardPlan(w http.ResponseWriter, r *http.Request, body []byte, owner string) bool {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		owner+api.PathPlan, bytes.NewReader(body))
	if err != nil {
		s.forwardErrors.Add(1)
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.HeaderForwarded, s.fleet.Self())
	if h := r.Header.Get(api.HeaderHedge); h != "" {
		req.Header.Set(api.HeaderHedge, h)
	}
	s.forwardsSent.Add(1)
	res, err := s.peers.Do(req)
	if err != nil {
		s.forwardErrors.Add(1)
		s.logger.Printf("forward to %s failed, planning locally: %v", owner, err)
		return false
	}
	defer res.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := res.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(res.StatusCode)
	if _, err := io.Copy(w, res.Body); err != nil {
		s.logger.Printf("forward to %s: relay response: %v", owner, err)
	}
	return true
}

// seedPlanFromTier pulls the job's plan from its plan-key owner into
// the local runner cache, so the upcoming run hits instead of
// computing. Returns true when the plan is locally available after the
// call (already cached, or seeded from the tier). Every failure mode
// degrades to a miss — the job then computes the plan itself.
func (s *Server) seedPlanFromTier(ctx context.Context, j *runner.Job) bool {
	if s.fleet == nil {
		return false
	}
	key := j.PlanKey()
	if key == "" {
		return false
	}
	if _, ok := s.runner.CachedPlan(key); ok {
		return true
	}
	owner := s.fleet.Owner(key)
	if s.fleet.IsSelf(owner) {
		return false
	}
	ctx, cancel := context.WithTimeout(ctx, peerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		owner+api.PathCache+"/"+url.PathEscape(key), nil)
	if err != nil {
		s.cacheTierMisses.Add(1)
		return false
	}
	req.Header.Set(api.HeaderCacheVersion, s.fleet.Version())
	res, err := s.peers.Do(req)
	if err != nil {
		s.cacheTierMisses.Add(1)
		return false
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		io.Copy(io.Discard, res.Body)
		s.cacheTierMisses.Add(1)
		return false
	}
	pl, label, err := plan.Load(io.LimitReader(res.Body, maxPlanBody))
	if err != nil || label != key {
		s.cacheTierMisses.Add(1)
		s.logger.Printf("cache tier: bad entry for %s from %s (label %q, err %v)", key, owner, label, err)
		return false
	}
	s.runner.SeedPlan(key, pl)
	s.cacheTierHits.Add(1)
	return true
}

// pushPlanToTier sends the canonical plan cached under key to the
// key's ring owner. Only the CANONICAL plan crosses the wire — the
// runner's cache entry, never a response's possibly-rebased copy — so
// a peer seeding from the tier rebases exactly as it would from its
// own cache and plans stay byte-identical fleet-wide. Runs on its own
// deadline: the triggering request may already be finished.
func (s *Server) pushPlanToTier(key string) {
	if s.fleet == nil || key == "" {
		return
	}
	owner := s.fleet.Owner(key)
	if s.fleet.IsSelf(owner) {
		return
	}
	pl, ok := s.runner.CachedPlan(key)
	if !ok {
		return
	}
	var buf bytes.Buffer
	if err := pl.Save(&buf, key); err != nil {
		s.logger.Printf("cache tier: serialize %s: %v", key, err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), peerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		owner+api.PathCache+"/"+url.PathEscape(key), &buf)
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.HeaderCacheVersion, s.fleet.Version())
	res, err := s.peers.Do(req)
	if err != nil {
		s.logger.Printf("cache tier: push %s to %s: %v", key, owner, err)
		return
	}
	defer res.Body.Close()
	io.Copy(io.Discard, res.Body)
	if res.StatusCode != http.StatusOK {
		s.logger.Printf("cache tier: push %s to %s: status %d", key, owner, res.StatusCode)
		return
	}
	s.cacheTierPushes.Add(1)
}

// seedSweepFromTier warms the local plan cache for every distinct plan
// key in a sweep batch and returns the keys the tier could not supply
// — the ones the sweep will compute and should push back afterwards.
func (s *Server) seedSweepFromTier(ctx context.Context, cfgs []runner.Config) []string {
	if s.fleet == nil {
		return nil
	}
	seen := make(map[string]bool)
	var toPush []string
	for _, cfg := range cfgs {
		j, err := runner.NewJob(cfg)
		if err != nil {
			continue // RunConfigs reports the error in order
		}
		key := j.PlanKey()
		if key == "" || seen[key] {
			continue
		}
		seen[key] = true
		if !s.seedPlanFromTier(ctx, j) {
			toPush = append(toPush, key)
		}
	}
	return toPush
}

// cacheVersionOK gates a cache-tier exchange on an exact fleet-version
// match. The version digests the wire format, the operator epoch and
// the normalized membership, so any divergence — a stale epoch, a
// misconfigured peer list — fails closed (412) instead of serving
// plans across incompatible views.
func (s *Server) cacheVersionOK(w http.ResponseWriter, r *http.Request) bool {
	if s.fleet == nil {
		writeError(w, http.StatusNotFound, "this daemon is not in a fleet")
		return false
	}
	if got := r.Header.Get(api.HeaderCacheVersion); got != s.fleet.Version() {
		s.cacheTierRejects.Add(1)
		writeJSON(w, http.StatusPreconditionFailed, &api.Error{
			Status:  http.StatusPreconditionFailed,
			Code:    api.CodeCacheVersion,
			Message: "cache version " + got + " does not match " + s.fleet.Version(),
		})
		return false
	}
	return true
}

// handleCacheGet serves the canonical plan cached under a plan key to
// a fleet peer, in the plan.Save file format.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	if !s.cacheVersionOK(w, r) {
		return
	}
	key := r.PathValue("key")
	pl, ok := s.runner.CachedPlan(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no plan cached under %q", key)
		return
	}
	s.cacheTierServes.Add(1)
	w.Header().Set(api.HeaderCacheVersion, s.fleet.Version())
	w.Header().Set("Content-Type", "application/json")
	if err := pl.Save(w, key); err != nil {
		s.logger.Printf("cache tier: serve %s: %v", key, err)
	}
}

// handleCachePut stores a plan a peer computed under its plan key. The
// plan file's own job label must match the key — a mislabelled entry
// would otherwise poison every future rebase from it.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	if !s.cacheVersionOK(w, r) {
		return
	}
	key := r.PathValue("key")
	pl, label, err := plan.Load(io.LimitReader(r.Body, maxPlanBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "decode plan: %v", err)
		return
	}
	if label != key {
		writeError(w, http.StatusBadRequest, "plan label %q does not match cache key %q", label, key)
		return
	}
	s.runner.SeedPlan(key, pl)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
