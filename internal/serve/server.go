// Package serve implements mpressd, the planning-as-a-service daemon:
// an HTTP/JSON front door over the internal/runner layer. MPress
// Static plans offline (paper Sec. III-B) — the planner's output is a
// persistable artifact a long-running training job loads — so planning
// is a natural service: clients submit a runner.Config (or a batch),
// the daemon executes it through a shared Runner with a bounded
// LRU plan cache, and returns the report plus the plan in the
// plan.Save file format.
//
// The daemon is governed end to end: a bounded admission queue sheds
// load with 429 + Retry-After when full, every request carries a
// server-side deadline, SIGTERM drains in-flight jobs before exit, and
// /metrics exposes request latencies, queue depth, cache and runner
// counters in Prometheus text format.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"mpress/internal/fleet"
	"mpress/internal/mapping"
	"mpress/internal/runner"
	"mpress/internal/search"
	"mpress/internal/serve/api"
	"mpress/internal/trace"
)

// Options configures a Server. The zero value serves with sensible
// defaults.
type Options struct {
	// Runner configures the embedded runner (worker pool size, plan
	// cache bound). OnJobDone and KeepArtifacts are owned by the
	// server and must be left unset.
	Runner runner.Options
	// QueueDepth bounds how many plan/sweep requests may be in service
	// or queued at once; beyond it the daemon answers 429. Default 16.
	QueueDepth int
	// DefaultTimeout bounds a request that names no timeout; a
	// request's own timeout is clamped to MaxTimeout. Defaults: 2m/10m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetainJobs bounds how many completed jobs keep their execution
	// timeline for GET /v1/jobs/<id>/trace. Default 64; 0 disables
	// retention.
	RetainJobs int
	// DrainTimeout bounds graceful shutdown: how long Serve waits for
	// in-flight requests after its context is cancelled. Default 30s.
	DrainTimeout time.Duration
	// MaxSweepConfigs bounds one sweep request's batch size. Default 4096.
	MaxSweepConfigs int
	// Fleet, when set, makes this daemon one peer of a planning fleet:
	// plan requests whose ring owner is another peer are transparently
	// forwarded there (one hop, guarded by X-MPress-Forwarded), owners
	// collapse concurrent identical requests through a singleflight
	// group, and canonical plans are exchanged with peers over the
	// /v1/cache tier. Nil serves standalone, exactly as before.
	Fleet *fleet.Fleet
	// Logger receives structured request logs; default logs to stderr.
	Logger *log.Logger
}

// Server is the mpressd HTTP service.
type Server struct {
	opts   Options
	runner *runner.Runner
	adm    *admission
	met    *metrics
	store  *jobStore
	logger *log.Logger
	mux    *http.ServeMux

	reqSeq   atomic.Int64
	jobSeq   atomic.Int64
	draining atomic.Bool

	// Resilience counters, accumulated over completed jobs.
	failuresTotal  atomic.Int64
	ckptsTotal     atomic.Int64
	ckptBytesTotal atomic.Int64

	// Fleet state: membership view (nil standalone), the HTTP client
	// for peer traffic (forwards + cache tier), and the singleflight
	// group collapsing concurrent identical plan requests.
	fleet *fleet.Fleet
	peers *http.Client
	sf    fleet.Group

	// searchTab is the daemon's transposition table for /v1/search: one
	// strategy evaluation per job fingerprint, shared across searches
	// (and, in a fleet, exchanged with peers over /v1/cache/search).
	searchTab *search.MemTable

	// Fleet counters (all zero when standalone; the metric families are
	// emitted regardless so dashboards need no fleet-conditional logic).
	forwardsSent     atomic.Int64
	forwardErrors    atomic.Int64
	forwardsReceived atomic.Int64
	sfWaits          atomic.Int64
	cacheTierHits    atomic.Int64
	cacheTierMisses  atomic.Int64
	cacheTierServes  atomic.Int64
	cacheTierPushes  atomic.Int64
	cacheTierRejects atomic.Int64
	hedgesReceived   atomic.Int64
	searchTierHits   atomic.Int64
	searchTierMisses atomic.Int64
	searchTierServes atomic.Int64
	searchTierPushes atomic.Int64

	// runJob executes one job; tests stub it to make service time
	// controllable.
	runJob func(ctx context.Context, j *runner.Job) runner.JobResult
}

// New builds a Server.
func New(opts Options) *Server {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.DefaultTimeout <= 0 {
		opts.DefaultTimeout = 2 * time.Minute
	}
	if opts.MaxTimeout <= 0 {
		opts.MaxTimeout = 10 * time.Minute
	}
	if opts.RetainJobs == 0 {
		opts.RetainJobs = 64
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 30 * time.Second
	}
	if opts.MaxSweepConfigs <= 0 {
		opts.MaxSweepConfigs = 4096
	}
	if opts.Logger == nil {
		opts.Logger = log.New(os.Stderr, "mpressd: ", log.LstdFlags|log.Lmicroseconds)
	}
	s := &Server{
		opts:   opts,
		runner: runner.New(opts.Runner),
		adm:    newAdmission(opts.QueueDepth),
		met:    newMetrics(),
		store:  newJobStore(opts.RetainJobs),
		logger: opts.Logger,
		fleet:  opts.Fleet,
		peers:  &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}},

		searchTab: search.NewMemTable(),
	}
	s.runJob = func(ctx context.Context, j *runner.Job) runner.JobResult {
		return s.runner.RunKeep(ctx, j)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+api.PathPlan, s.instrument("plan", s.handlePlan))
	mux.HandleFunc("POST "+api.PathSweep, s.instrument("sweep", s.handleSweep))
	mux.HandleFunc("GET "+api.PathJobs, s.instrument("jobs", s.handleJobs))
	mux.HandleFunc("GET "+api.PathJobs+"/{id}/trace", s.instrument("trace", s.handleTrace))
	mux.HandleFunc("GET "+api.PathHealthz, s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET "+api.PathMetrics, s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("POST "+api.PathSearch, s.instrument("search", s.handleSearch))
	mux.HandleFunc("GET "+api.PathCache+"/{key}", s.instrument("cache_get", s.handleCacheGet))
	mux.HandleFunc("PUT "+api.PathCache+"/{key}", s.instrument("cache_put", s.handleCachePut))
	// The literal "search" segment is more specific than {key}, so the
	// transposition tier wins these paths over the plan tier.
	mux.HandleFunc("GET "+api.PathSearchCache+"/{fp}", s.instrument("search_cache_get", s.handleSearchCacheGet))
	mux.HandleFunc("PUT "+api.PathSearchCache+"/{fp}", s.instrument("search_cache_put", s.handleSearchCachePut))
	s.mux = mux
	return s
}

// Handler returns the daemon's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Runner exposes the embedded runner (its Stats feed /metrics).
func (s *Server) Runner() *runner.Runner { return s.runner }

// Serve runs the daemon on ln until ctx is cancelled, then drains:
// listeners close, in-flight requests run to completion (bounded by
// DrainTimeout), and only then does Serve return — SIGTERM never
// abandons a half-planned job.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	s.logger.Printf("draining: waiting up to %v for in-flight requests", s.opts.DrainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(dctx)
	<-errc // reap http.ErrServerClosed from the Serve goroutine
	s.peers.CloseIdleConnections()
	if err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	s.logger.Printf("drained cleanly")
	return nil
}

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request IDs, structured logging and
// latency/count metrics.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r.WithContext(withRequestID(r.Context(), id)))
		d := time.Since(start)
		s.met.observe(endpoint, strconv.Itoa(sw.status), d)
		s.logger.Printf("req=%s endpoint=%s method=%s path=%s status=%d dur=%s",
			id, endpoint, r.Method, r.URL.Path, sw.status, d.Round(time.Microsecond))
	}
}

type requestIDKey struct{}

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request ID instrument attached to ctx ("" if
// none) — job logs downstream of a handler can correlate with the
// request log.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, &api.Error{
		Status:  status,
		Code:    api.CodeForStatus(status),
		Message: fmt.Sprintf(format, args...),
	})
}

// rejectSaturated answers 429 with the drain-rate Retry-After hint.
func (s *Server) rejectSaturated(w http.ResponseWriter, endpoint string) {
	s.met.reject(endpoint)
	retry := s.adm.retryAfter()
	w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds())))
	writeJSON(w, http.StatusTooManyRequests, &api.Error{
		Status:     http.StatusTooManyRequests,
		Code:       api.CodeSaturated,
		Message:    "planning queue is full",
		RetryAfter: retry.String(),
	})
}

// requestTimeout resolves a request's server-side deadline.
func (s *Server) requestTimeout(spec string) (time.Duration, error) {
	d := s.opts.DefaultTimeout
	if spec != "" {
		parsed, err := time.ParseDuration(spec)
		if err != nil || parsed <= 0 {
			return 0, fmt.Errorf("bad timeout %q", spec)
		}
		d = parsed
	}
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return d, nil
}

// maxPlanBody bounds plan request and cache-tier payloads.
const maxPlanBody = 16 << 20

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPlanBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	var req api.PlanRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	timeout, err := s.requestTimeout(req.Timeout)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if r.Header.Get(api.HeaderHedge) != "" {
		s.hedgesReceived.Add(1)
	}
	forwarded := r.Header.Get(api.HeaderForwarded) != ""
	if forwarded {
		s.forwardsReceived.Add(1)
	}
	j, err := runner.NewJob(req.Config)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Ring routing: a request whose fingerprint another peer owns is
	// forwarded there, exactly once — a request already forwarded by a
	// peer is always handled locally (the one-hop guard that makes
	// routing loops impossible even under membership disagreement). A
	// failed forward falls back to local planning: wrong-peer service
	// costs cache locality, not availability.
	if s.fleet != nil && !forwarded {
		if owner := s.fleet.Owner(j.Fingerprint()); !s.fleet.IsSelf(owner) {
			if s.forwardPlan(w, r, body, owner) {
				return
			}
		}
	}
	if !s.adm.tryAcquire() {
		s.rejectSaturated(w, "plan")
		return
	}
	start := time.Now()
	defer func() { s.adm.release(time.Since(start)) }()

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	// Collapse concurrent identical requests: with ring routing, every
	// peer sends a given fingerprint here, so this in-process group is
	// fleet-wide singleflight — a 64-request burst for one popular job
	// plans (and simulates) exactly once.
	type planOutcome struct {
		resp   *api.PlanResponse
		status int
		err    error
	}
	key := j.Fingerprint() + "\x00" + req.Timeout
	v, shared, err := s.sf.Do(ctx, key, func() any {
		resp, status, err := s.planJob(ctx, j, true)
		return planOutcome{resp, status, err}
	})
	if err != nil {
		// This waiter's own deadline expired while the leader ran on.
		status := http.StatusGatewayTimeout
		if errors.Is(err, context.Canceled) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "waiting on identical in-flight request: %v", err)
		return
	}
	if shared {
		s.sfWaits.Add(1)
	}
	out := v.(planOutcome)
	if out.err != nil {
		writeError(w, out.status, "%v", out.err)
		return
	}
	writeJSON(w, http.StatusOK, out.resp)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if len(req.Configs) == 0 {
		writeError(w, http.StatusBadRequest, "sweep has no configs")
		return
	}
	if len(req.Configs) > s.opts.MaxSweepConfigs {
		writeError(w, http.StatusBadRequest, "sweep of %d configs exceeds the %d limit",
			len(req.Configs), s.opts.MaxSweepConfigs)
		return
	}
	timeout, err := s.requestTimeout(req.Timeout)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.adm.tryAcquire() {
		s.rejectSaturated(w, "sweep")
		return
	}
	start := time.Now()
	defer func() { s.adm.release(time.Since(start)) }()

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	// In a fleet, warm the local plan cache from the tier for every
	// distinct plan key in the batch, and push back the keys the sweep
	// had to compute itself. Sweeps are served where they land (no
	// forwarding — a batch spans many ring owners by construction).
	toPush := s.seedSweepFromTier(ctx, req.Configs)
	resp := api.SweepResponse{Results: make([]api.SweepResult, len(req.Configs))}
	results := s.runner.RunConfigs(ctx, req.Configs)
	for _, key := range toPush {
		s.pushPlanToTier(key)
	}
	for i, res := range results {
		if res.Err != nil {
			resp.Results[i] = api.SweepResult{Error: res.Err.Error()}
			continue
		}
		pr, err := s.response(res)
		if err != nil {
			resp.Results[i] = api.SweepResult{Error: err.Error()}
			continue
		}
		resp.Results[i] = api.SweepResult{Response: pr}
	}
	writeJSON(w, http.StatusOK, resp)
}

// planJob runs a validated job, retaining its timeline for the trace
// endpoint when retain is set. In a fleet it brackets the run with the
// shared cache tier: a cold local plan cache is seeded from the
// plan-key owner first, and a freshly computed plan is pushed back.
func (s *Server) planJob(ctx context.Context, j *runner.Job, retain bool) (*api.PlanResponse, int, error) {
	s.seedPlanFromTier(ctx, j)
	res := s.runJob(ctx, j)
	if res.Err == nil && !res.PlanCacheHit {
		s.pushPlanToTier(j.PlanKey())
	}
	if res.Err != nil {
		status := http.StatusUnprocessableEntity
		var infeasible *mapping.InfeasibleError
		if errors.As(res.Err, &infeasible) {
			// More stages than devices is a malformed request, not a
			// server fault — and historically a crash (the search used
			// to panic), so the classification doubles as a regression
			// guard.
			status = http.StatusBadRequest
		} else if errors.Is(res.Err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		} else if errors.Is(res.Err, context.Canceled) {
			status = http.StatusServiceUnavailable
		}
		return nil, status, res.Err
	}
	resp, err := s.response(res)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	if retain && res.State != nil && res.State.Built != nil && res.State.Exec != nil {
		// Resilient runs carry their merged wall-clock timeline
		// (failures, recoveries and checkpoints marked); fault-free
		// runs collect the executor's.
		tl := res.State.Timeline
		if tl == nil {
			tl = trace.Collect(res.State.Built, res.State.Exec)
			tl.LaneNames = res.State.TraceLaneNames()
		}
		failures := 0
		if res.Report != nil {
			failures = res.Report.Failures
		}
		s.store.put(&jobRecord{
			info: api.JobInfo{
				ID:          resp.ID,
				Fingerprint: resp.Fingerprint,
				System:      res.Job.Config.System.String(),
				Model:       res.Job.Config.Model.Name,
				Nodes:       nodesOf(res.Job.Config),
				Failures:    failures,
				HasTrace:    true,
			},
			timeline: tl,
		})
	}
	return resp, http.StatusOK, nil
}

// nodesOf reports a config's replica count for the wire, zero (elided)
// for single-server jobs.
func nodesOf(c runner.Config) int {
	if n := c.Replicas(); n > 1 {
		return n
	}
	return 0
}

// response assembles the wire response for a completed job, embedding
// the plan in the plan.Save file format (fingerprint-labelled).
func (s *Server) response(res runner.JobResult) (*api.PlanResponse, error) {
	resp := &api.PlanResponse{
		ID:           fmt.Sprintf("job-%06d", s.jobSeq.Add(1)),
		Fingerprint:  res.Job.Fingerprint(),
		Report:       res.Report,
		PlanCacheHit: res.PlanCacheHit,
		ElapsedMS:    float64(res.Elapsed) / float64(time.Millisecond),
	}
	if rep := res.Report; rep != nil {
		s.failuresTotal.Add(int64(rep.Failures))
		s.ckptsTotal.Add(int64(rep.Checkpoints))
		s.ckptBytesTotal.Add(int64(rep.CheckpointBytes))
	}
	if len(res.StageTimes) > 0 {
		resp.StageMS = make(map[string]float64, len(res.StageTimes))
		for name, d := range res.StageTimes {
			resp.StageMS[name] = float64(d) / float64(time.Millisecond)
		}
	}
	if res.Report != nil && res.Report.Plan != nil {
		var buf bytes.Buffer
		if err := res.Job.SavePlan(&buf, res.Report.Plan); err != nil {
			return nil, fmt.Errorf("serialize plan: %w", err)
		}
		resp.Plan = json.RawMessage(buf.Bytes())
	}
	return resp, nil
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.JobsResponse{Jobs: s.store.list()})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "job %q is unknown or its trace has been evicted", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := rec.writeTrace(w); err != nil {
		s.logger.Printf("trace %s: write: %v", id, err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	held, capacity := s.adm.depth()
	st := s.runner.Stats()
	gauges := []gauge{
		{"mpressd_queue_depth", "gauge", "Admitted requests currently in service or queued.", float64(held)},
		{"mpressd_queue_capacity", "gauge", "Admission queue capacity.", float64(capacity)},
		{"mpressd_jobs_total", "counter", "Jobs completed by the runner.", float64(st.Jobs)},
		{"mpressd_plan_cache_hits_total", "counter", "Plan cache hits.", float64(st.PlanCacheHits)},
		{"mpressd_plan_cache_misses_total", "counter", "Plan cache misses.", float64(st.PlanCacheMisses)},
		{"mpressd_plan_cache_evictions_total", "counter", "Plans evicted by the LRU bound.", float64(st.PlanCacheEvictions)},
		{"mpressd_plan_cache_entries", "gauge", "Plans currently cached.", float64(st.PlanCacheEntries)},
		{"mpressd_plan_cache_bytes", "gauge", "Approximate bytes of cached plans.", float64(st.PlanCacheBytes)},
		{"mpressd_plan_computes_total", "counter", "Planner searches actually run.", float64(st.PlanComputes)},
		{"mpressd_runner_plan_seconds_total", "counter", "Cumulative wall-clock in the planning stage.", st.PlanTime.Seconds()},
		{"mpressd_runner_exec_seconds_total", "counter", "Cumulative wall-clock in the execution stage.", st.ExecTime.Seconds()},
		{"mpressd_retained_jobs", "gauge", "Completed jobs retained for the trace endpoint.", float64(len(s.store.list()))},
		{"mpressd_failures_injected_total", "counter", "Simulated hardware faults injected across completed jobs.", float64(s.failuresTotal.Load())},
		{"mpressd_checkpoints_total", "counter", "Checkpoint snapshots taken across completed jobs.", float64(s.ckptsTotal.Load())},
		{"mpressd_checkpoint_bytes_total", "counter", "Cumulative checkpoint payload bytes across completed jobs.", float64(s.ckptBytesTotal.Load())},
	}
	fleetPeers := 0
	if s.fleet != nil {
		fleetPeers = s.fleet.Size()
	}
	gauges = append(gauges,
		gauge{"mpressd_fleet_peers", "gauge", "Planning-fleet membership size (0 when standalone).", float64(fleetPeers)},
		gauge{"mpressd_fleet_forwards_sent_total", "counter", "Plan requests forwarded to their ring owner.", float64(s.forwardsSent.Load())},
		gauge{"mpressd_fleet_forward_errors_total", "counter", "Forwards that failed and fell back to local planning.", float64(s.forwardErrors.Load())},
		gauge{"mpressd_fleet_forwards_received_total", "counter", "Forwarded plan requests received from peers.", float64(s.forwardsReceived.Load())},
		gauge{"mpressd_fleet_singleflight_waits_total", "counter", "Plan requests that shared an identical in-flight request's result.", float64(s.sfWaits.Load())},
		gauge{"mpressd_fleet_cache_tier_hits_total", "counter", "Plans seeded from a peer's cache instead of computed.", float64(s.cacheTierHits.Load())},
		gauge{"mpressd_fleet_cache_tier_misses_total", "counter", "Cache-tier lookups that found no usable peer entry.", float64(s.cacheTierMisses.Load())},
		gauge{"mpressd_fleet_cache_tier_serves_total", "counter", "Cached plans served to peers over /v1/cache.", float64(s.cacheTierServes.Load())},
		gauge{"mpressd_fleet_cache_tier_pushes_total", "counter", "Freshly computed plans pushed to their plan-key owner.", float64(s.cacheTierPushes.Load())},
		gauge{"mpressd_fleet_cache_tier_rejects_total", "counter", "Cache-tier requests refused for a version mismatch.", float64(s.cacheTierRejects.Load())},
		gauge{"mpressd_hedges_received_total", "counter", "Plan requests marked as client hedges.", float64(s.hedgesReceived.Load())},
		gauge{"mpressd_search_table_entries", "gauge", "Strategy evaluations in the auto-search transposition table.", float64(s.searchTab.Len())},
		gauge{"mpressd_fleet_search_tier_hits_total", "counter", "Strategy evaluations seeded from a peer's transposition table.", float64(s.searchTierHits.Load())},
		gauge{"mpressd_fleet_search_tier_misses_total", "counter", "Transposition-tier lookups that found no usable peer entry.", float64(s.searchTierMisses.Load())},
		gauge{"mpressd_fleet_search_tier_serves_total", "counter", "Strategy evaluations served to peers over /v1/cache/search.", float64(s.searchTierServes.Load())},
		gauge{"mpressd_fleet_search_tier_pushes_total", "counter", "Freshly evaluated strategies pushed to their fingerprint owner.", float64(s.searchTierPushes.Load())},
	)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.writeText(w, gauges)
}
