package serve

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mpress/internal/runner"
	"mpress/internal/units"
)

// metricsContract reduces a Prometheus text exposition to its stable
// surface: TYPE declarations plus, for every sample line, the metric
// name and its sorted label keys. Values and label values are dropped —
// the contract is the schema a dashboard or alert rule binds to.
func metricsContract(text string) []string {
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "# HELP") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE") {
			add(line)
			continue
		}
		name := line
		var keys []string
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.IndexByte(line, '}')
			for _, kv := range strings.Split(line[i+1:j], ",") {
				if eq := strings.IndexByte(kv, '='); eq >= 0 {
					keys = append(keys, kv[:eq])
				}
			}
			sort.Strings(keys)
		} else if sp := strings.IndexByte(line, ' '); sp >= 0 {
			name = line[:sp]
		}
		if len(keys) > 0 {
			add(name + "{" + strings.Join(keys, ",") + "}")
		} else {
			add(name)
		}
	}
	sort.Strings(out)
	return out
}

// TestMetricsContractGolden pins the /metrics schema — metric names,
// types and label keys — against a golden file, so renames or dropped
// series (which break scrape configs and dashboards downstream) fail
// loudly. Regenerate with UPDATE_GOLDEN=1 go test ./internal/serve/.
func TestMetricsContractGolden(t *testing.T) {
	s := New(Options{Runner: runner.Options{Workers: 1}, Logger: testLogger(t)})
	// Stub the job so the scrape is fast and deterministic; the report
	// exercises the resilience counters.
	s.runJob = func(ctx context.Context, j *runner.Job) runner.JobResult {
		return runner.JobResult{Job: j, Report: &runner.Report{
			Config: j.Config, Failures: 1, Checkpoints: 2, CheckpointBytes: 3 * units.GiB,
		}}
	}
	cl, cancel, wait := startDaemon(t, s)
	defer func() { cancel(); _ = wait(); cl.HTTPClient.CloseIdleConnections() }()

	// Materialize at least one request-counter and histogram series
	// before scraping.
	if _, err := cl.Plan(context.Background(), testConfig(t, runner.SystemMPress), ""); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(metricsContract(scrapeMetrics(t, cl)), "\n") + "\n"

	golden := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("metrics contract drifted from %s.\ngot:\n%s\nwant:\n%s\nIf the change is intentional, regenerate with UPDATE_GOLDEN=1.",
			golden, got, want)
	}
}
