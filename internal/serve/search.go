package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
	"time"

	"mpress/internal/search"
	"mpress/internal/serve/api"
)

// This file is the service side of planner v2: POST /v1/search runs a
// whole-strategy auto-search on the daemon's runner (sharing its plan
// cache), and in a fleet the transposition table becomes a shared tier
// — GET/PUT /v1/cache/search/{fp} exchange one strategy evaluation per
// job fingerprint under the same fail-closed version gate as the plan
// tier, so a strategy simulated by any peer is a memo hit everywhere.

// maxEvalBody bounds one transposition-tier payload (a tiny JSON
// object).
const maxEvalBody = 1 << 16

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req api.SearchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxPlanBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	timeout, err := s.requestTimeout(req.Timeout)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sp := search.DefaultSpace(req.Config)
	if req.Space != nil {
		sp = *req.Space
	}
	// A search occupies one admission slot, like a sweep: it is a batch
	// of candidate evaluations through the shared runner. Searches are
	// served where they land (no forwarding — candidates span many ring
	// owners by construction); the transposition tier is what peers
	// share.
	if !s.adm.tryAcquire() {
		s.rejectSaturated(w, "search")
		return
	}
	start := time.Now()
	defer func() { s.adm.release(time.Since(start)) }()

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	res, err := search.Run(ctx, req.Config, sp, search.Options{
		Runner: s.runner,
		Table:  s.searchTable(),
	})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		} else if errors.Is(err, context.Canceled) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, &api.SearchResponse{
		Result:    res,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// searchTable returns the table /v1/search evaluates against: the
// local one standalone, the fleet tier otherwise.
func (s *Server) searchTable() search.Table {
	if s.fleet == nil {
		return s.searchTab
	}
	return &tierTable{s: s}
}

// tierTable implements search.Table over the fleet: reads check the
// local table first, then the fingerprint's ring owner; writes land
// locally and are pushed to the owner. Every failure mode degrades to
// a miss — the searcher then simulates the strategy itself, which
// always works.
type tierTable struct {
	s *Server
}

func (t *tierTable) Get(fp string) (search.Eval, bool) {
	s := t.s
	if e, ok := s.searchTab.Get(fp); ok {
		return e, true
	}
	owner := s.fleet.Owner(fp)
	if s.fleet.IsSelf(owner) {
		return search.Eval{}, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), peerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		owner+api.PathSearchCache+"/"+url.PathEscape(fp), nil)
	if err != nil {
		s.searchTierMisses.Add(1)
		return search.Eval{}, false
	}
	req.Header.Set(api.HeaderCacheVersion, s.fleet.Version())
	res, err := s.peers.Do(req)
	if err != nil {
		s.searchTierMisses.Add(1)
		return search.Eval{}, false
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		io.Copy(io.Discard, res.Body)
		s.searchTierMisses.Add(1)
		return search.Eval{}, false
	}
	var e search.Eval
	if err := json.NewDecoder(io.LimitReader(res.Body, maxEvalBody)).Decode(&e); err != nil {
		s.searchTierMisses.Add(1)
		s.logger.Printf("search tier: bad entry for %s from %s: %v", fp, owner, err)
		return search.Eval{}, false
	}
	s.searchTab.Put(fp, e)
	s.searchTierHits.Add(1)
	return e, true
}

func (t *tierTable) Put(fp string, e search.Eval) {
	t.s.searchTab.Put(fp, e)
	t.s.pushEvalToTier(fp, e)
}

// pushEvalToTier sends one evaluation to its fingerprint's ring owner.
// Runs on its own deadline, mirroring pushPlanToTier.
func (s *Server) pushEvalToTier(fp string, e search.Eval) {
	owner := s.fleet.Owner(fp)
	if s.fleet.IsSelf(owner) {
		return
	}
	body, err := json.Marshal(e)
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), peerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		owner+api.PathSearchCache+"/"+url.PathEscape(fp), bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.HeaderCacheVersion, s.fleet.Version())
	res, err := s.peers.Do(req)
	if err != nil {
		s.logger.Printf("search tier: push %s to %s: %v", fp, owner, err)
		return
	}
	defer res.Body.Close()
	io.Copy(io.Discard, res.Body)
	if res.StatusCode != http.StatusOK {
		s.logger.Printf("search tier: push %s to %s: status %d", fp, owner, res.StatusCode)
		return
	}
	s.searchTierPushes.Add(1)
}

// handleSearchCacheGet serves one strategy evaluation to a fleet peer.
func (s *Server) handleSearchCacheGet(w http.ResponseWriter, r *http.Request) {
	if !s.cacheVersionOK(w, r) {
		return
	}
	fp := r.PathValue("fp")
	e, ok := s.searchTab.Get(fp)
	if !ok {
		writeError(w, http.StatusNotFound, "no evaluation cached under %q", fp)
		return
	}
	s.searchTierServes.Add(1)
	w.Header().Set(api.HeaderCacheVersion, s.fleet.Version())
	writeJSON(w, http.StatusOK, e)
}

// handleSearchCachePut stores an evaluation a peer computed. An entry
// claiming both OOM and a positive rate is malformed — refused rather
// than poisoning future searches.
func (s *Server) handleSearchCachePut(w http.ResponseWriter, r *http.Request) {
	if !s.cacheVersionOK(w, r) {
		return
	}
	fp := r.PathValue("fp")
	var e search.Eval
	if err := json.NewDecoder(io.LimitReader(r.Body, maxEvalBody)).Decode(&e); err != nil {
		writeError(w, http.StatusBadRequest, "decode evaluation: %v", err)
		return
	}
	if e.OOM && e.EffSamplesPerSec != 0 {
		writeError(w, http.StatusBadRequest, "evaluation claims both OOM and a rate")
		return
	}
	if e.EffSamplesPerSec < 0 {
		writeError(w, http.StatusBadRequest, "negative rate %v", e.EffSamplesPerSec)
		return
	}
	s.searchTab.Put(fp, e)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
