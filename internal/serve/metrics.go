package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// metrics is a minimal Prometheus-text-format registry: counters keyed
// by label values plus fixed-bucket latency histograms. The repo takes
// no third-party dependencies, and the exposition format is a stable,
// line-oriented contract — hand-rolling it keeps the daemon
// scrape-compatible with any Prometheus without vendoring a client.
type metrics struct {
	mu sync.Mutex
	// requests[endpoint][code] counts finished HTTP requests.
	requests map[string]map[string]int64
	// latency[endpoint] is the request-duration histogram.
	latency map[string]*histogram
	// rejected counts admission rejections (429s) by endpoint.
	rejected map[string]int64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]map[string]int64),
		latency:  make(map[string]*histogram),
		rejected: make(map[string]int64),
	}
}

func (m *metrics) observe(endpoint, code string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode, ok := m.requests[endpoint]
	if !ok {
		byCode = make(map[string]int64)
		m.requests[endpoint] = byCode
	}
	byCode[code]++
	h, ok := m.latency[endpoint]
	if !ok {
		h = newHistogram()
		m.latency[endpoint] = h
	}
	h.observe(d.Seconds())
}

func (m *metrics) reject(endpoint string) {
	m.mu.Lock()
	m.rejected[endpoint]++
	m.mu.Unlock()
}

// histogram is a cumulative-bucket latency histogram with Prometheus
// semantics (le upper bounds, +Inf implicit via count).
type histogram struct {
	counts []int64
	count  int64
	sum    float64
}

// latencyBuckets spans sub-millisecond cache hits to multi-minute
// billion-parameter planning runs.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 30, 120}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets))}
}

func (h *histogram) observe(v float64) {
	for i, le := range latencyBuckets {
		if v <= le {
			h.counts[i]++
		}
	}
	h.count++
	h.sum += v
}

// writeText renders the registry plus the gauges passed in by the
// server (queue and runner/cache state sampled at scrape time) in the
// Prometheus text exposition format, version 0.0.4.
func (m *metrics) writeText(w io.Writer, gauges []gauge) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP mpressd_requests_total Finished HTTP requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE mpressd_requests_total counter")
	for _, ep := range sortedKeys(m.requests) {
		byCode := m.requests[ep]
		codes := make([]string, 0, len(byCode))
		for c := range byCode {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "mpressd_requests_total{endpoint=%q,code=%q} %d\n", ep, c, byCode[c])
		}
	}

	fmt.Fprintln(w, "# HELP mpressd_rejected_total Requests rejected by admission control (429).")
	fmt.Fprintln(w, "# TYPE mpressd_rejected_total counter")
	for _, ep := range sortedKeys(m.rejected) {
		fmt.Fprintf(w, "mpressd_rejected_total{endpoint=%q} %d\n", ep, m.rejected[ep])
	}

	fmt.Fprintln(w, "# HELP mpressd_request_seconds Request latency by endpoint.")
	fmt.Fprintln(w, "# TYPE mpressd_request_seconds histogram")
	for _, ep := range sortedKeys(m.latency) {
		h := m.latency[ep]
		for i, le := range latencyBuckets {
			fmt.Fprintf(w, "mpressd_request_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, le, h.counts[i])
		}
		fmt.Fprintf(w, "mpressd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, h.count)
		fmt.Fprintf(w, "mpressd_request_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(w, "mpressd_request_seconds_count{endpoint=%q} %d\n", ep, h.count)
	}

	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n",
			g.name, g.help, g.name, g.kind, g.name, g.value)
	}
}

// gauge is one scrape-time sampled metric line.
type gauge struct {
	name  string
	kind  string // "gauge" or "counter"
	help  string
	value float64
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
