package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"strings"
	"testing"

	"mpress/internal/fleet"
	"mpress/internal/pipeline"
	"mpress/internal/runner"
	"mpress/internal/search"
	"mpress/internal/serve/api"
	"mpress/internal/serve/client"
)

// smallSearchSpace keeps daemon search tests cheap but real: two
// systems, two stage counts, one partition strategy.
func smallSearchSpace() *search.Space {
	return &search.Space{
		Systems:     []runner.System{runner.SystemRecompute, runner.SystemPlain},
		StageCounts: []int{0, 4},
		Partitions:  []pipeline.Strategy{pipeline.ComputeBalanced},
	}
}

// POST /v1/search runs a whole-strategy search on the daemon and
// returns the canonical result; a repeat request is served from the
// daemon's transposition table without re-simulating.
func TestServerSearch(t *testing.T) {
	s := New(Options{Runner: runner.Options{Workers: 2}, Logger: testLogger(t)})
	cl, cancel, wait := startDaemon(t, s)
	defer func() { cancel(); _ = wait(); cl.HTTPClient.CloseIdleConnections() }()

	cfg := testConfig(t, runner.SystemMPress)
	cold, err := cl.Search(context.Background(), cfg, smallSearchSpace(), "")
	if err != nil {
		t.Fatal(err)
	}
	r := cold.Result
	if r == nil || r.Winner < 0 {
		t.Fatalf("no winner: %+v", r)
	}
	if r.Expanded == 0 {
		t.Fatalf("cold search expanded nothing: %+v", r)
	}
	if r.WinnerReport == nil || r.WinnerConfig == nil {
		t.Fatal("winner config/report missing from the wire result")
	}

	warm, err := cl.Search(context.Background(), cfg, smallSearchSpace(), "")
	if err != nil {
		t.Fatal(err)
	}
	if warm.Result.Expanded != 0 {
		t.Fatalf("warm search re-simulated %d strategies", warm.Result.Expanded)
	}
	if warm.Result.MemoHits == 0 {
		t.Fatal("warm search hit nothing")
	}
	cw, ww := r.Best(), warm.Result.Best()
	if cw.Key != ww.Key || cw.TimeToFit != ww.TimeToFit {
		t.Fatalf("warm winner differs: %+v vs %+v", cw, ww)
	}
}

// An invalid base config is a 400, not a crash or a 500.
func TestServerSearchBadConfig(t *testing.T) {
	s := New(Options{Runner: runner.Options{Workers: 1}, Logger: testLogger(t)})
	cl, cancel, wait := startDaemon(t, s)
	defer func() { cancel(); _ = wait(); cl.HTTPClient.CloseIdleConnections() }()

	cfg := testConfig(t, runner.System(99)) // unregistered system
	_, err := cl.Search(context.Background(), cfg, smallSearchSpace(), "")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("want 400 api.Error, got %v", err)
	}
	if !strings.Contains(apiErr.Message, "valid systems") {
		t.Fatalf("error does not enumerate valid systems: %v", apiErr)
	}
}

// The plan endpoint shares the same validation: an unregistered
// system integer is a 400 whose message enumerates the valid names
// (the same registry the CLI help derives from), not a 422 or a 500.
func TestServerPlanUnknownSystem(t *testing.T) {
	s := New(Options{Runner: runner.Options{Workers: 1}, Logger: testLogger(t)})
	cl, cancel, wait := startDaemon(t, s)
	defer func() { cancel(); _ = wait(); cl.HTTPClient.CloseIdleConnections() }()

	_, err := cl.Plan(context.Background(), testConfig(t, runner.System(99)), "")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("want 400 api.Error, got %v", err)
	}
	for _, name := range runner.SystemNames() {
		if !strings.Contains(apiErr.Message, name) {
			t.Fatalf("error message missing system %q: %v", name, apiErr)
		}
	}
}

// In a fleet, evaluations flow through the shared transposition tier:
// a search on peer B after the same search on peer A simulates
// nothing, and the two canonical results are byte-identical.
func TestFleetSearchTier(t *testing.T) {
	tf := startFleet(t, 2, "epoch-1")
	defer tf.shutdown(t)

	cfg := testConfig(t, runner.SystemMPress)
	ra, err := tf.peerClient(0).Search(context.Background(), cfg, smallSearchSpace(), "")
	if err != nil {
		t.Fatal(err)
	}
	if ra.Result.Expanded == 0 {
		t.Fatalf("peer A expanded nothing: %+v", ra.Result)
	}
	rb, err := tf.peerClient(1).Search(context.Background(), cfg, smallSearchSpace(), "")
	if err != nil {
		t.Fatal(err)
	}
	if rb.Result.Expanded != 0 {
		t.Fatalf("peer B re-simulated %d strategies despite the tier", rb.Result.Expanded)
	}
	if rb.Result.MemoHits == 0 {
		t.Fatal("peer B hit nothing")
	}

	canonicalize := func(r *search.Result) []byte {
		cp := *r
		cp.Wall = 0
		// The memo/expanded split legitimately differs between a cold
		// and a tier-served search; the strategy outcomes must not.
		cp.Expanded, cp.MemoHits = 0, 0
		for i := range cp.Candidates {
			if cp.Candidates[i].Outcome == search.OutcomeMemo {
				cp.Candidates[i].Outcome = search.OutcomeEvaluated
			}
		}
		var buf bytes.Buffer
		search.WriteReport(&buf, &cp)
		js, err := json.MarshalIndent(&cp, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(js)
		return buf.Bytes()
	}
	ba, bb := canonicalize(ra.Result), canonicalize(rb.Result)
	if !bytes.Equal(ba, bb) {
		t.Fatalf("fleet peers disagree on the search result:\n--- A ---\n%s\n--- B ---\n%s", ba, bb)
	}

	served := tf.servers[0].searchTierServes.Load() + tf.servers[1].searchTierServes.Load()
	pushed := tf.servers[0].searchTierPushes.Load() + tf.servers[1].searchTierPushes.Load()
	if served+pushed == 0 {
		t.Fatal("no transposition entries crossed the tier")
	}
}

// A version mismatch fails the tier closed: the skewed peer evaluates
// locally (correct, just slower) and the refused exchanges are
// counted.
func TestFleetSearchTierVersionMismatch(t *testing.T) {
	// Two peers that agree on membership but not on the epoch, so their
	// cache versions differ and every tier exchange between them is
	// refused with 412.
	lns := make([]net.Listener, 2)
	urls := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	epochs := []string{"epoch-1", "epoch-2"}
	servers := make([]*Server, 2)
	for i := range servers {
		fl, err := fleet.New(urls[i], urls, epochs[i])
		if err != nil {
			t.Fatal(err)
		}
		s := New(Options{Runner: runner.Options{Workers: 2}, Fleet: fl, Logger: testLogger(t)})
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func(s *Server, ln net.Listener) { errc <- s.Serve(ctx, ln) }(s, lns[i])
		defer func() { cancel(); <-errc }()
		servers[i] = s
	}
	peerClient := func(i int) *client.Client {
		cl := client.New(urls[i])
		cl.HTTPClient = &http.Client{Transport: &http.Transport{}}
		return cl
	}

	cfg := testConfig(t, runner.SystemMPress)
	if _, err := peerClient(0).Search(context.Background(), cfg, smallSearchSpace(), ""); err != nil {
		t.Fatal(err)
	}
	rb, err := peerClient(1).Search(context.Background(), cfg, smallSearchSpace(), "")
	if err != nil {
		t.Fatal(err)
	}
	if rb.Result.Winner < 0 {
		t.Fatalf("skewed peer found no winner: %+v", rb.Result)
	}
	if rb.Result.Expanded == 0 {
		t.Fatal("skewed peer should have evaluated locally, not hit the tier")
	}
	rejects := servers[0].cacheTierRejects.Load() + servers[1].cacheTierRejects.Load()
	if rejects == 0 {
		t.Fatal("no version rejects counted despite the skew")
	}
}
