// Package api defines the wire types of the mpressd planning service.
// It is shared by the server (internal/serve) and the Go client
// (internal/serve/client) so the two sides agree on one versioned
// schema; the paths themselves are versioned (/v1/...) so the plan API
// stays a first-class boundary as the service evolves.
package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"mpress/internal/plan"
	"mpress/internal/runner"
)

// Paths of the v1 API.
const (
	PathPlan    = "/v1/plan"
	PathSweep   = "/v1/sweep"
	PathJobs    = "/v1/jobs"
	PathHealthz = "/healthz"
	PathMetrics = "/metrics"
)

// PlanRequest submits one training job for planning and simulation.
type PlanRequest struct {
	// Config is the job to plan, exactly as the embedded library's
	// runner.Config (the daemon validates and fills defaults).
	Config runner.Config `json:"config"`
	// Timeout bounds the job server-side (e.g. "30s"). Empty uses the
	// daemon's default; the daemon clamps it to its maximum.
	Timeout string `json:"timeout,omitempty"`
}

// PlanResponse is the outcome of one planned job.
type PlanResponse struct {
	// ID names the completed job for follow-up queries
	// (GET /v1/jobs/<id>/trace).
	ID string `json:"id"`
	// Fingerprint is the job's canonical fingerprint (also the plan
	// file's job label).
	Fingerprint string `json:"fingerprint"`
	// Report is the simulation outcome.
	Report *runner.Report `json:"report"`
	// Plan is the memory-compaction plan in the plan.Save file format,
	// embedded verbatim — feed it to plan.Load (or write it to disk
	// for mpress-plan -load). Absent for systems that do not plan.
	Plan json.RawMessage `json:"plan,omitempty"`
	// PlanCacheHit reports the daemon reused a cached plan.
	PlanCacheHit bool `json:"plan_cache_hit"`
	// ElapsedMS is the job's wall-clock on the daemon, with StageMS
	// the per-stage breakdown.
	ElapsedMS float64            `json:"elapsed_ms"`
	StageMS   map[string]float64 `json:"stage_ms,omitempty"`
}

// DecodePlan parses the embedded plan file, returning the plan and
// its job label (the job fingerprint).
func (r *PlanResponse) DecodePlan() (*plan.Plan, string, error) {
	if len(r.Plan) == 0 {
		return nil, "", fmt.Errorf("api: response carries no plan")
	}
	return plan.Load(bytes.NewReader(r.Plan))
}

// CanonicalPlanFile re-renders the embedded plan in the exact
// plan.Save byte format. JSON transport re-indents the embedded file
// (whitespace is insignificant to parsers but not to byte-for-byte
// artifact diffing), so persisting a remote plan goes through this.
func (r *PlanResponse) CanonicalPlanFile() ([]byte, error) {
	pl, label, err := r.DecodePlan()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := pl.Save(&buf, label); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SweepRequest submits a batch of jobs; results come back in input
// order. The batch occupies one admission slot and runs through the
// daemon's worker pool like a local sweep.
type SweepRequest struct {
	Configs []runner.Config `json:"configs"`
	Timeout string          `json:"timeout,omitempty"`
}

// SweepResult is one job's outcome inside a sweep. Exactly one of
// Error or Response is set.
type SweepResult struct {
	Error    string        `json:"error,omitempty"`
	Response *PlanResponse `json:"response,omitempty"`
}

// SweepResponse carries the batch outcomes in input order.
type SweepResponse struct {
	Results []SweepResult `json:"results"`
}

// JobInfo summarizes a retained completed job.
type JobInfo struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	System      string `json:"system"`
	Model       string `json:"model"`
	// Nodes is the cluster's replica count (omitted for single-server
	// jobs).
	Nodes int `json:"nodes,omitempty"`
	// Failures is the number of injected hardware faults the job
	// recovered from (omitted for fault-free jobs).
	Failures int `json:"failures,omitempty"`
	// HasTrace reports whether GET /v1/jobs/<id>/trace will serve a
	// Chrome trace for this job.
	HasTrace bool `json:"has_trace"`
}

// JobsResponse lists the retained completed jobs, most recent first.
type JobsResponse struct {
	Jobs []JobInfo `json:"jobs"`
}

// Error is the JSON error body every non-2xx response carries.
type Error struct {
	// Status is the HTTP status code, Message the human-readable
	// cause.
	Status  int    `json:"status"`
	Message string `json:"message"`
	// RetryAfter, on 429 responses, echoes the Retry-After header.
	RetryAfter string `json:"retry_after,omitempty"`
}

// Error implements the error interface so clients can surface the
// server's cause directly.
func (e *Error) Error() string {
	return fmt.Sprintf("mpressd: %d: %s", e.Status, e.Message)
}

// IsSaturated reports whether the error is an admission rejection —
// the caller should back off RetryAfterDuration and resubmit.
func (e *Error) IsSaturated() bool { return e.Status == 429 }

// RetryAfterDuration parses the RetryAfter hint, defaulting to one
// second.
func (e *Error) RetryAfterDuration() time.Duration {
	if d, err := time.ParseDuration(e.RetryAfter); err == nil && d > 0 {
		return d
	}
	if secs, err := time.ParseDuration(e.RetryAfter + "s"); err == nil && secs > 0 {
		return secs
	}
	return time.Second
}
