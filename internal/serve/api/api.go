// Package api defines the wire types of the mpressd planning service.
// It is shared by the server (internal/serve) and the Go client
// (internal/serve/client) so the two sides agree on one versioned
// schema; the paths themselves are versioned (/v1/...) so the plan API
// stays a first-class boundary as the service evolves.
package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"mpress/internal/plan"
	"mpress/internal/runner"
	"mpress/internal/search"
)

// Paths of the v1 API.
const (
	PathPlan    = "/v1/plan"
	PathSweep   = "/v1/sweep"
	PathJobs    = "/v1/jobs"
	PathHealthz = "/healthz"
	PathMetrics = "/metrics"
	// PathCache is the fleet plan-cache tier: GET /v1/cache/{key}
	// serves the canonical plan bytes cached under a plan-key
	// fingerprint, PUT stores them. Peers exchange entries only when
	// their X-MPress-Cache-Version headers agree.
	PathCache = "/v1/cache"
	// PathSearch is the planner-v2 auto-search endpoint: POST a
	// SearchRequest, get back the deterministic whole-strategy search
	// result (winner, plan, counters).
	PathSearch = "/v1/search"
	// PathSearchCache is the fleet transposition-table tier:
	// GET/PUT /v1/cache/search/{fp} exchange one strategy evaluation
	// keyed by its job fingerprint, under the same fail-closed
	// X-MPress-Cache-Version gate as the plan tier.
	PathSearchCache = PathCache + "/search"
)

// Fleet headers.
const (
	// HeaderForwarded marks a request already forwarded once by a
	// fleet peer (value: the forwarding peer's base URL). A receiving
	// daemon never forwards such a request again — the one-hop guard
	// that makes routing loops impossible even when peers disagree
	// about membership.
	HeaderForwarded = "X-MPress-Forwarded"
	// HeaderHedge marks a client's hedge (the backup request sent to
	// the next ring peer after the p99-derived delay), so daemons can
	// count hedge traffic separately.
	HeaderHedge = "X-MPress-Hedge"
	// HeaderCacheVersion carries the sender's fleet cache version on
	// cache-tier requests; the receiver refuses on mismatch (412).
	HeaderCacheVersion = "X-MPress-Cache-Version"
)

// Machine-readable error codes carried by Error.Code. Clients switch
// on these instead of parsing messages or bare status codes.
const (
	// CodeBadRequest: the request itself is malformed (bad JSON, bad
	// timeout string, invalid config, infeasible placement).
	CodeBadRequest = "bad_request"
	// CodeSaturated: admission control shed the request (429); back
	// off RetryAfter and resubmit.
	CodeSaturated = "saturated"
	// CodeDeadline: the job exceeded its server-side deadline (504).
	CodeDeadline = "deadline"
	// CodeUnavailable: the daemon is draining or the job was cancelled
	// server-side (503).
	CodeUnavailable = "unavailable"
	// CodeNotFound: the named job or cache entry is unknown (404).
	CodeNotFound = "not_found"
	// CodeJobFailed: the job ran and failed (422) — e.g. the planner
	// could not produce a plan.
	CodeJobFailed = "job_failed"
	// CodeCacheVersion: a cache-tier exchange was refused because the
	// peers' fleet cache versions disagree (412).
	CodeCacheVersion = "cache_version"
	// CodeInternal: a server-side fault (5xx not otherwise classified).
	CodeInternal = "internal"
)

// CodeForStatus maps an HTTP status to its default error code — used
// by the server for errors with no more specific classification and by
// the client for responses (proxies, old daemons) that carry none.
func CodeForStatus(status int) string {
	switch status {
	case 400:
		return CodeBadRequest
	case 404:
		return CodeNotFound
	case 412:
		return CodeCacheVersion
	case 422:
		return CodeJobFailed
	case 429:
		return CodeSaturated
	case 503:
		return CodeUnavailable
	case 504:
		return CodeDeadline
	default:
		return CodeInternal
	}
}

// PlanRequest submits one training job for planning and simulation.
type PlanRequest struct {
	// Config is the job to plan, exactly as the embedded library's
	// runner.Config (the daemon validates and fills defaults).
	Config runner.Config `json:"config"`
	// Timeout bounds the job server-side (e.g. "30s"). Empty uses the
	// daemon's default; the daemon clamps it to its maximum.
	Timeout string `json:"timeout,omitempty"`
}

// PlanResponse is the outcome of one planned job.
type PlanResponse struct {
	// ID names the completed job for follow-up queries
	// (GET /v1/jobs/<id>/trace).
	ID string `json:"id"`
	// Fingerprint is the job's canonical fingerprint (also the plan
	// file's job label).
	Fingerprint string `json:"fingerprint"`
	// Report is the simulation outcome.
	Report *runner.Report `json:"report"`
	// Plan is the memory-compaction plan in the plan.Save file format,
	// embedded verbatim — feed it to plan.Load (or write it to disk
	// for mpress-plan -load). Absent for systems that do not plan.
	Plan json.RawMessage `json:"plan,omitempty"`
	// PlanCacheHit reports the daemon reused a cached plan.
	PlanCacheHit bool `json:"plan_cache_hit"`
	// ElapsedMS is the job's wall-clock on the daemon, with StageMS
	// the per-stage breakdown.
	ElapsedMS float64            `json:"elapsed_ms"`
	StageMS   map[string]float64 `json:"stage_ms,omitempty"`
}

// DecodePlan parses the embedded plan file, returning the plan and
// its job label (the job fingerprint).
func (r *PlanResponse) DecodePlan() (*plan.Plan, string, error) {
	if len(r.Plan) == 0 {
		return nil, "", fmt.Errorf("api: response carries no plan")
	}
	return plan.Load(bytes.NewReader(r.Plan))
}

// CanonicalPlanFile re-renders the embedded plan in the exact
// plan.Save byte format. JSON transport re-indents the embedded file
// (whitespace is insignificant to parsers but not to byte-for-byte
// artifact diffing), so persisting a remote plan goes through this.
func (r *PlanResponse) CanonicalPlanFile() ([]byte, error) {
	pl, label, err := r.DecodePlan()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := pl.Save(&buf, label); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SearchRequest submits one base config for whole-strategy
// auto-search (internal/search).
type SearchRequest struct {
	// Config is the base job; empty Space axes inherit its values.
	Config runner.Config `json:"config"`
	// Space is the strategy space to enumerate. Nil searches the
	// default space (search.DefaultSpace of the base config).
	Space *search.Space `json:"space,omitempty"`
	// Timeout bounds the search server-side, as in PlanRequest.
	Timeout string `json:"timeout,omitempty"`
}

// SearchResponse is the outcome of one auto-search.
type SearchResponse struct {
	// Result is the canonical search result: every candidate, the
	// winner config and report, and the expanded/pruned/memo counters.
	Result *search.Result `json:"result"`
	// ElapsedMS is the search's wall-clock on the daemon.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// SweepRequest submits a batch of jobs; results come back in input
// order. The batch occupies one admission slot and runs through the
// daemon's worker pool like a local sweep.
type SweepRequest struct {
	Configs []runner.Config `json:"configs"`
	Timeout string          `json:"timeout,omitempty"`
}

// SweepResult is one job's outcome inside a sweep. Exactly one of
// Error or Response is set.
type SweepResult struct {
	Error    string        `json:"error,omitempty"`
	Response *PlanResponse `json:"response,omitempty"`
}

// SweepResponse carries the batch outcomes in input order.
type SweepResponse struct {
	Results []SweepResult `json:"results"`
}

// JobInfo summarizes a retained completed job.
type JobInfo struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	System      string `json:"system"`
	Model       string `json:"model"`
	// Nodes is the cluster's replica count (omitted for single-server
	// jobs).
	Nodes int `json:"nodes,omitempty"`
	// Failures is the number of injected hardware faults the job
	// recovered from (omitted for fault-free jobs).
	Failures int `json:"failures,omitempty"`
	// HasTrace reports whether GET /v1/jobs/<id>/trace will serve a
	// Chrome trace for this job.
	HasTrace bool `json:"has_trace"`
}

// JobsResponse lists the retained completed jobs, most recent first.
type JobsResponse struct {
	Jobs []JobInfo `json:"jobs"`
}

// Error is the JSON error body every non-2xx response carries.
type Error struct {
	// Status is the HTTP status code, Code the machine-readable
	// classification (one of the Code* constants), Message the
	// human-readable cause.
	Status  int    `json:"status"`
	Code    string `json:"code,omitempty"`
	Message string `json:"message"`
	// RetryAfter, on 429 responses, echoes the Retry-After header.
	RetryAfter string `json:"retry_after,omitempty"`
}

// Error implements the error interface so clients can surface the
// server's cause directly.
func (e *Error) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("mpressd: %d %s: %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("mpressd: %d: %s", e.Status, e.Message)
}

// IsSaturated reports whether the error is an admission rejection —
// the caller should back off RetryAfterDuration and resubmit.
func (e *Error) IsSaturated() bool { return e.Code == CodeSaturated || e.Status == 429 }

// IsDeadline reports whether the job exceeded its server-side
// deadline — retrying with a longer timeout may succeed; retrying with
// the same one will not.
func (e *Error) IsDeadline() bool { return e.Code == CodeDeadline || e.Status == 504 }

// IsUnavailable reports a transient server condition (draining,
// cancelled): the request is safe to retry against another peer.
func (e *Error) IsUnavailable() bool { return e.Code == CodeUnavailable || e.Status == 503 }

// RetryAfterDuration parses the RetryAfter hint, defaulting to one
// second.
func (e *Error) RetryAfterDuration() time.Duration {
	if d, err := time.ParseDuration(e.RetryAfter); err == nil && d > 0 {
		return d
	}
	if secs, err := time.ParseDuration(e.RetryAfter + "s"); err == nil && secs > 0 {
		return secs
	}
	return time.Second
}
