// Package client is the Go client of the mpressd planning service. It
// speaks the internal/serve/api wire schema, so a CLI or library user
// can offload planning to a shared daemon (and its warm plan cache)
// with the same types it would pass to runner.Train.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"mpress/internal/runner"
	"mpress/internal/search"
	"mpress/internal/serve/api"
)

// Client talks to one mpressd instance.
type Client struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:7323".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Note the daemon
	// bounds jobs server-side; set a Timeout here only above the
	// longest job you expect, or rely on the request context.
	HTTPClient *http.Client
	// RetrySeed seeds PlanWait's deterministic backoff jitter. Zero
	// derives a per-client seed (distinct across Client instances in a
	// process), so a herd of default clients de-synchronizes by
	// construction; set it explicitly for reproducible schedules.
	RetrySeed uint64
	// RetryBackoffCap caps PlanWait's exponential backoff between
	// resubmissions. Zero means 30s.
	RetryBackoffCap time.Duration
}

// clientSeq makes default retry seeds distinct per Client instance.
var clientSeq atomic.Uint64

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// retrySeed resolves the jitter seed: explicit, else unique-ish per
// client instance (URL hash mixed with an instance counter).
func (c *Client) retrySeed() uint64 {
	if c.RetrySeed != 0 {
		return c.RetrySeed
	}
	h := fnv.New64a()
	h.Write([]byte(c.BaseURL))
	return splitmix64(h.Sum64() ^ (clientSeq.Add(1) << 32))
}

// retryBackoffCap resolves the backoff ceiling.
func (c *Client) retryBackoffCap() time.Duration {
	if c.RetryBackoffCap > 0 {
		return c.RetryBackoffCap
	}
	return 30 * time.Second
}

// splitmix64 is the jitter PRNG step — tiny, seedable, and identical
// everywhere, so retry schedules are reproducible from the seed alone.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// retryDelay computes the wait before resubmission attempt (0-based):
// the server's Retry-After hint grown exponentially per attempt,
// capped, then scaled by a deterministic ±20% jitter drawn from
// (seed, attempt). Re-polling on exactly the server hint synchronizes
// every rejected waiter into a thundering herd that re-arrives — and
// is re-rejected — together; the jitter spreads the herd, and the
// exponential growth keeps long outages from being polled at the
// original rate forever.
func retryDelay(seed uint64, attempt int, base, cap time.Duration) time.Duration {
	if base <= 0 {
		base = time.Second
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	// jitter in [0.8, 1.2): 1 + (u - 0.5) * 0.4
	u := float64(splitmix64(seed^uint64(attempt)*0x2545f4914f6cdd1d)>>11) / float64(1<<53)
	return time.Duration(float64(d) * (1 + (u-0.5)*0.4))
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Plan submits one job and returns its planned outcome. A saturated
// daemon surfaces as an *api.Error with IsSaturated() true and a
// Retry-After hint; timeout is the server-side bound ("" for the
// daemon default).
func (c *Client) Plan(ctx context.Context, cfg runner.Config, timeout string) (*api.PlanResponse, error) {
	return c.plan(ctx, cfg, timeout, false)
}

// plan is Plan with the hedge marker controllable — the fleet client's
// backup requests carry it so daemons can account hedge traffic.
func (c *Client) plan(ctx context.Context, cfg runner.Config, timeout string, hedge bool) (*api.PlanResponse, error) {
	var hdr http.Header
	if hedge {
		hdr = http.Header{api.HeaderHedge: []string{"1"}}
	}
	var resp api.PlanResponse
	err := c.post(ctx, api.PathPlan, api.PlanRequest{Config: cfg, Timeout: timeout}, &resp, hdr)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// PlanWait is Plan with bounded backoff: on saturation it resubmits
// until ctx expires, waiting the server's Retry-After hint grown
// exponentially (capped at RetryBackoffCap) and scaled by a ±20%
// deterministic jitter, so a herd of waiters rejected together
// de-synchronizes instead of re-arriving in lockstep.
func (c *Client) PlanWait(ctx context.Context, cfg runner.Config, timeout string) (*api.PlanResponse, error) {
	seed := c.retrySeed()
	for attempt := 0; ; attempt++ {
		resp, err := c.Plan(ctx, cfg, timeout)
		var apiErr *api.Error
		if err == nil || !errors.As(err, &apiErr) || !apiErr.IsSaturated() {
			return resp, err
		}
		wait := retryDelay(seed, attempt, apiErr.RetryAfterDuration(), c.retryBackoffCap())
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("client: gave up waiting for admission: %w (last: %v)", ctx.Err(), err)
		case <-time.After(wait):
		}
	}
}

// Sweep submits a batch of jobs; results return in input order.
func (c *Client) Sweep(ctx context.Context, cfgs []runner.Config, timeout string) (*api.SweepResponse, error) {
	var resp api.SweepResponse
	err := c.post(ctx, api.PathSweep, api.SweepRequest{Configs: cfgs, Timeout: timeout}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Search submits one base config for whole-strategy auto-search. A
// nil space searches the daemon's default space for the config; the
// returned result carries every candidate, the winner config and
// report, and the search counters.
func (c *Client) Search(ctx context.Context, cfg runner.Config, space *search.Space, timeout string) (*api.SearchResponse, error) {
	var resp api.SearchResponse
	err := c.post(ctx, api.PathSearch, api.SearchRequest{Config: cfg, Space: space, Timeout: timeout}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Jobs lists the daemon's retained completed jobs, most recent first.
func (c *Client) Jobs(ctx context.Context) (*api.JobsResponse, error) {
	var resp api.JobsResponse
	if err := c.get(ctx, api.PathJobs, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Trace streams the Chrome trace JSON of a retained completed job
// into w.
func (c *Client) Trace(ctx context.Context, jobID string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+api.PathJobs+"/"+jobID+"/trace", nil)
	if err != nil {
		return err
	}
	res, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return decodeError(res)
	}
	_, err = io.Copy(w, res.Body)
	return err
}

// Healthy reports whether the daemon answers /healthz with 200.
func (c *Client) Healthy(ctx context.Context) error {
	var status map[string]string
	return c.get(ctx, api.PathHealthz, &status)
}

func (c *Client) post(ctx context.Context, path string, body, out any, extra ...http.Header) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encode request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	for _, h := range extra {
		for k, vs := range h {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
	}
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	res, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return decodeError(res)
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// decodeError turns a non-200 response into an *api.Error, falling
// back to the raw body for non-JSON failures (proxies, panics). The
// error is always typed: a missing Code (old daemons, intermediaries)
// is derived from the status, so callers can switch on Code
// unconditionally.
func decodeError(res *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(res.Body, 64<<10))
	var apiErr api.Error
	if err := json.Unmarshal(body, &apiErr); err == nil && apiErr.Message != "" {
		apiErr.Status = res.StatusCode
		if apiErr.RetryAfter == "" {
			apiErr.RetryAfter = res.Header.Get("Retry-After")
		}
	} else {
		apiErr = api.Error{Status: res.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	if apiErr.Code == "" {
		apiErr.Code = api.CodeForStatus(res.StatusCode)
	}
	return &apiErr
}
