// Package client is the Go client of the mpressd planning service. It
// speaks the internal/serve/api wire schema, so a CLI or library user
// can offload planning to a shared daemon (and its warm plan cache)
// with the same types it would pass to runner.Train.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"mpress/internal/runner"
	"mpress/internal/serve/api"
)

// Client talks to one mpressd instance.
type Client struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:7323".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Note the daemon
	// bounds jobs server-side; set a Timeout here only above the
	// longest job you expect, or rely on the request context.
	HTTPClient *http.Client
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Plan submits one job and returns its planned outcome. A saturated
// daemon surfaces as an *api.Error with IsSaturated() true and a
// Retry-After hint; timeout is the server-side bound ("" for the
// daemon default).
func (c *Client) Plan(ctx context.Context, cfg runner.Config, timeout string) (*api.PlanResponse, error) {
	var resp api.PlanResponse
	err := c.post(ctx, api.PathPlan, api.PlanRequest{Config: cfg, Timeout: timeout}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// PlanWait is Plan with bounded backoff: on saturation it honors the
// daemon's Retry-After hint and resubmits until ctx expires.
func (c *Client) PlanWait(ctx context.Context, cfg runner.Config, timeout string) (*api.PlanResponse, error) {
	for {
		resp, err := c.Plan(ctx, cfg, timeout)
		var apiErr *api.Error
		if err == nil || !errors.As(err, &apiErr) || !apiErr.IsSaturated() {
			return resp, err
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("client: gave up waiting for admission: %w (last: %v)", ctx.Err(), err)
		case <-time.After(apiErr.RetryAfterDuration()):
		}
	}
}

// Sweep submits a batch of jobs; results return in input order.
func (c *Client) Sweep(ctx context.Context, cfgs []runner.Config, timeout string) (*api.SweepResponse, error) {
	var resp api.SweepResponse
	err := c.post(ctx, api.PathSweep, api.SweepRequest{Configs: cfgs, Timeout: timeout}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Jobs lists the daemon's retained completed jobs, most recent first.
func (c *Client) Jobs(ctx context.Context) (*api.JobsResponse, error) {
	var resp api.JobsResponse
	if err := c.get(ctx, api.PathJobs, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Trace streams the Chrome trace JSON of a retained completed job
// into w.
func (c *Client) Trace(ctx context.Context, jobID string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+api.PathJobs+"/"+jobID+"/trace", nil)
	if err != nil {
		return err
	}
	res, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return decodeError(res)
	}
	_, err = io.Copy(w, res.Body)
	return err
}

// Healthy reports whether the daemon answers /healthz with 200.
func (c *Client) Healthy(ctx context.Context) error {
	var status map[string]string
	return c.get(ctx, api.PathHealthz, &status)
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encode request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	res, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return decodeError(res)
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// decodeError turns a non-200 response into an *api.Error, falling
// back to the raw body for non-JSON failures (proxies, panics).
func decodeError(res *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(res.Body, 64<<10))
	var apiErr api.Error
	if err := json.Unmarshal(body, &apiErr); err == nil && apiErr.Message != "" {
		apiErr.Status = res.StatusCode
		if apiErr.RetryAfter == "" {
			apiErr.RetryAfter = res.Header.Get("Retry-After")
		}
		return &apiErr
	}
	return &api.Error{Status: res.StatusCode, Message: strings.TrimSpace(string(body))}
}
