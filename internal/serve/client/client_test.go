package client

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/runner"
	"mpress/internal/serve/api"
)

// TestRetryDelayDesynchronizes is the thundering-herd regression test:
// waiters rejected together must not re-arrive together. Eight clients
// seeded differently draw first-attempt delays that actually spread
// across the jitter band instead of re-polling the server's hint in
// lockstep.
func TestRetryDelayDesynchronizes(t *testing.T) {
	const base = time.Second
	cap := 30 * time.Second
	seen := map[time.Duration]bool{}
	min, max := time.Hour, time.Duration(0)
	for seed := uint64(1); seed <= 8; seed++ {
		d := retryDelay(seed, 0, base, cap)
		if d < 800*time.Millisecond || d > 1200*time.Millisecond {
			t.Errorf("seed %d: first delay %v outside the ±20%% band around %v", seed, d, base)
		}
		if seen[d] {
			t.Errorf("seed %d: delay %v collides with another seed", seed, d)
		}
		seen[d] = true
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if spread := max - min; spread < 50*time.Millisecond {
		t.Errorf("8 waiters spread only %v apart — still a herd", spread)
	}
}

// TestRetryDelaySchedule pins the backoff shape: deterministic per
// seed, exponential in the attempt, capped.
func TestRetryDelaySchedule(t *testing.T) {
	const seed = 42
	base := time.Second
	cap := 8 * time.Second
	if a, b := retryDelay(seed, 3, base, cap), retryDelay(seed, 3, base, cap); a != b {
		t.Errorf("same (seed, attempt) drew %v then %v — not deterministic", a, b)
	}
	// Attempt 2 centers on 4s (1s << 2), within the jitter band.
	if d := retryDelay(seed, 2, base, cap); d < 3200*time.Millisecond || d > 4800*time.Millisecond {
		t.Errorf("attempt 2 delay %v outside ±20%% of 4s", d)
	}
	// Far attempts are capped (jitter still applies to the cap).
	if d := retryDelay(seed, 30, base, cap); d > time.Duration(float64(cap)*1.2) {
		t.Errorf("attempt 30 delay %v exceeds jittered cap", d)
	}
	// Degenerate base falls back to a second instead of busy-polling.
	if d := retryDelay(seed, 0, 0, cap); d < 700*time.Millisecond {
		t.Errorf("zero base produced %v", d)
	}
}

// TestDefaultSeedsDistinct: clients constructed without an explicit
// RetrySeed — even against the same URL — must not share schedules.
func TestDefaultSeedsDistinct(t *testing.T) {
	a, b := New("http://same:1"), New("http://same:1")
	if a.retrySeed() == b.retrySeed() {
		t.Error("two default clients share a retry seed")
	}
	c := New("http://same:1")
	c.RetrySeed = 7
	if c.retrySeed() != 7 {
		t.Error("explicit seed not honored")
	}
}

func fleetTestConfig(t *testing.T) runner.Config {
	t.Helper()
	m, err := model.BertVariant("0.35B")
	if err != nil {
		t.Fatal(err)
	}
	return runner.Config{
		Topology:       hw.DGX1(),
		Model:          m,
		Schedule:       pipeline.PipeDream,
		System:         runner.SystemMPress,
		MicrobatchSize: 12,
	}
}

// TestPlanWaitBackoffAndTypedErrors drives PlanWait against a daemon
// stub that saturates twice, then succeeds: the client must surface
// typed saturation internally, back off, and land the third attempt.
// The saturation errors must decode with Code "saturated".
func TestPlanWaitBackoffAndTypedErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(&api.Error{
				Status: 429, Code: api.CodeSaturated, Message: "queue full", RetryAfter: "1s",
			})
			return
		}
		json.NewEncoder(w).Encode(&api.PlanResponse{ID: "job-000001", Fingerprint: "fp"})
	}))
	defer srv.Close()

	cl := New(srv.URL)
	cl.RetrySeed = 1
	// One direct Plan call surfaces the typed error.
	_, err := cl.Plan(context.Background(), fleetTestConfig(t), "")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || !apiErr.IsSaturated() || apiErr.Code != api.CodeSaturated {
		t.Fatalf("saturation error = %v (code %q)", err, apiErr.Code)
	}

	calls.Store(0)
	start := time.Now()
	resp, err := cl.PlanWait(context.Background(), fleetTestConfig(t), "")
	if err != nil || resp.ID != "job-000001" {
		t.Fatalf("PlanWait = %+v, %v", resp, err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	// Two backoffs around 1s and 2s (±20%): elapsed in [2.4s, 3.6s].
	if el := time.Since(start); el < 2400*time.Millisecond || el > 4*time.Second {
		t.Errorf("elapsed %v outside the expected backoff window", el)
	}
}

// TestErrorCodeDerivedForLegacyBodies: a plain-text 504 from an old
// daemon or proxy still surfaces as a typed deadline error.
func TestErrorCodeDerivedForLegacyBodies(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "upstream timed out", http.StatusGatewayTimeout)
	}))
	defer srv.Close()
	_, err := New(srv.URL).Plan(context.Background(), fleetTestConfig(t), "")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || !apiErr.IsDeadline() || apiErr.Code != api.CodeDeadline {
		t.Fatalf("legacy 504 error = %v", err)
	}
}

// TestFleetHedging pins the hedge protocol: when the owner stalls past
// the hedge delay, a backup request carrying the hedge marker goes to
// the next ring peer, its response wins, and the stalled primary is
// cancelled.
func TestFleetHedging(t *testing.T) {
	release := make(chan struct{})
	var slowCancelled atomic.Bool
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background read can observe the
		// client disconnect and cancel r.Context().
		io.Copy(io.Discard, r.Body)
		select {
		case <-release:
		case <-r.Context().Done():
			slowCancelled.Store(true)
			return
		}
		json.NewEncoder(w).Encode(&api.PlanResponse{ID: "slow"})
	}))
	defer slow.Close()
	var sawHedgeHeader atomic.Bool
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(api.HeaderHedge) != "" {
			sawHedgeHeader.Store(true)
		}
		json.NewEncoder(w).Encode(&api.PlanResponse{ID: "fast"})
	}))
	defer fast.Close()

	f, err := NewFleet([]string{slow.URL, fast.URL})
	if err != nil {
		t.Fatal(err)
	}
	f.HedgeDelay = 30 * time.Millisecond
	defer f.CloseIdleConnections()

	// Find a config whose ring owner is the slow peer, so the hedge
	// must rescue it (minibatch count perturbs the fingerprint).
	cfg := fleetTestConfig(t)
	for mb := 1; mb <= 16; mb++ {
		cfg.Minibatches = mb
		j, err := runner.NewJob(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if f.Ring().Owner(j.Fingerprint()) == slow.URL {
			break
		}
		if mb == 16 {
			t.Fatal("no test fingerprint routed to the slow peer")
		}
	}

	resp, err := f.Plan(context.Background(), cfg, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != "fast" {
		t.Fatalf("winner = %q, want the hedge", resp.ID)
	}
	if !sawHedgeHeader.Load() {
		t.Error("backup request did not carry the hedge marker")
	}
	st := f.Stats()
	if st.HedgesSent != 1 || st.HedgeWins != 1 {
		t.Errorf("stats = %+v, want 1 hedge sent and won", st)
	}
	// The primary was cancelled once the hedge won (release stays shut,
	// so the only way out of the stalled handler is the cancel).
	deadline := time.Now().Add(2 * time.Second)
	for !slowCancelled.Load() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !slowCancelled.Load() {
		t.Error("stalled primary was never cancelled")
	}
	close(release)
}

// TestFleetRoutingDeterminism: the fleet client and an independently
// built ring agree on the owner for every fingerprint, so client-side
// routing lands exactly where server-side placement expects.
func TestFleetRoutingDeterminism(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	f, err := NewFleet(peers)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleetTestConfig(t)
	counts := map[string]int{}
	for mb := 1; mb <= 32; mb++ {
		cfg.Minibatches = mb
		j, err := runner.NewJob(cfg)
		if err != nil {
			t.Fatal(err)
		}
		owners := f.Ring().Owners(j.Fingerprint(), 2)
		if owners[0] == owners[1] {
			t.Fatal("hedge target equals the owner")
		}
		counts[owners[0]]++
	}
	if len(counts) < 2 {
		t.Errorf("32 fingerprints all routed to one peer: %v", counts)
	}
}
