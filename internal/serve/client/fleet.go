package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"mpress/internal/fleet"
	"mpress/internal/runner"
	"mpress/internal/serve/api"
)

// Fleet is the ring-aware client of an mpressd planning tier: it
// derives the same consistent-hash placement the daemons use, sends
// each plan request straight to its owner (saving the server-side
// forwarding hop), and hedges slow requests — after a p99-derived
// delay a backup request goes to the next ring peer, the first
// response wins, and the loser is cancelled. Safe for concurrent use.
type Fleet struct {
	ring    *fleet.Ring
	clients map[string]*Client

	// HedgeDelay fixes the hedge trigger delay; zero derives it from
	// the observed p99 of recent successful requests, clamped to
	// [HedgeMin, HedgeMax].
	HedgeDelay time.Duration
	// HedgeMin/HedgeMax clamp the adaptive delay (defaults 25ms / 2s).
	// Before enough samples exist the delay sits at HedgeMax — hedging
	// warms up conservatively instead of doubling cold-start load.
	HedgeMin, HedgeMax time.Duration
	// DisableHedging turns the backup requests off (routing remains).
	DisableHedging bool

	mu      sync.Mutex
	lat     []time.Duration // ring buffer of recent request latencies
	latNext int
	latFull bool
	stats   FleetStats
}

// FleetStats counts the fleet client's traffic.
type FleetStats struct {
	// Requests is the number of Plan calls; Errors how many returned
	// an error after hedging.
	Requests int64
	Errors   int64
	// HedgesSent counts backup requests actually launched; HedgeWins
	// how many of them beat the primary.
	HedgesSent int64
	HedgeWins  int64
	// PerPeer counts primary requests routed to each peer.
	PerPeer map[string]int64
}

// latWindow is the latency sample window the adaptive hedge delay is
// derived from.
const latWindow = 256

// NewFleet builds a ring-aware client over the peer base URLs (the
// same membership list the daemons run with — placement only agrees if
// the lists agree).
func NewFleet(peers []string) (*Fleet, error) {
	ring, err := fleet.NewRing(peers, 0)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		ring:     ring,
		clients:  make(map[string]*Client, ring.Size()),
		HedgeMin: 25 * time.Millisecond,
		HedgeMax: 2 * time.Second,
	}
	tr := &http.Transport{MaxIdleConnsPerHost: 16}
	for _, p := range ring.Members() {
		cl := New(p)
		cl.HTTPClient = &http.Client{Transport: tr}
		f.clients[p] = cl
	}
	return f, nil
}

// Ring exposes the placement ring.
func (f *Fleet) Ring() *fleet.Ring { return f.ring }

// Peer returns the single-peer client for a member URL (nil if the
// peer is not in the membership).
func (f *Fleet) Peer(url string) *Client { return f.clients[url] }

// CloseIdleConnections drops pooled connections to every peer.
func (f *Fleet) CloseIdleConnections() {
	for _, cl := range f.clients {
		cl.HTTPClient.CloseIdleConnections()
	}
}

// Stats snapshots the fleet client's counters.
func (f *Fleet) Stats() FleetStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.stats
	out.PerPeer = make(map[string]int64, len(f.stats.PerPeer))
	for k, v := range f.stats.PerPeer {
		out.PerPeer[k] = v
	}
	return out
}

// Plan routes one job to its ring owner and returns the planned
// outcome, hedging to the next ring peer if the owner is slow. The
// config is validated locally first (the same validation the daemon
// runs), both to fail fast and because routing needs the canonical
// fingerprint.
func (f *Fleet) Plan(ctx context.Context, cfg runner.Config, timeout string) (*api.PlanResponse, error) {
	j, err := runner.NewJob(cfg)
	if err != nil {
		return nil, err
	}
	return f.planFingerprint(ctx, j.Fingerprint(), cfg, timeout)
}

// PlanWait is Plan with the same jittered, capped backoff loop the
// single-peer client runs on saturation.
func (f *Fleet) PlanWait(ctx context.Context, cfg runner.Config, timeout string) (*api.PlanResponse, error) {
	j, err := runner.NewJob(cfg)
	if err != nil {
		return nil, err
	}
	seed := splitmix64(fleetHashSeed ^ clientSeq.Add(1))
	for attempt := 0; ; attempt++ {
		resp, err := f.planFingerprint(ctx, j.Fingerprint(), cfg, timeout)
		var apiErr *api.Error
		if err == nil || !errors.As(err, &apiErr) || !apiErr.IsSaturated() {
			return resp, err
		}
		wait := retryDelay(seed, attempt, apiErr.RetryAfterDuration(), 30*time.Second)
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("client: gave up waiting for fleet admission: %w (last: %v)", ctx.Err(), err)
		case <-time.After(wait):
		}
	}
}

const fleetHashSeed = 0x6d70726573732d66 // "mpress-f"

type planResult struct {
	resp   *api.PlanResponse
	err    error
	hedged bool
}

// planFingerprint issues the routed (and possibly hedged) request.
func (f *Fleet) planFingerprint(ctx context.Context, fp string, cfg runner.Config, timeout string) (*api.PlanResponse, error) {
	owners := f.ring.Owners(fp, 2)
	primary := f.clients[owners[0]]

	f.mu.Lock()
	f.stats.Requests++
	if f.stats.PerPeer == nil {
		f.stats.PerPeer = make(map[string]int64)
	}
	f.stats.PerPeer[owners[0]]++
	f.mu.Unlock()

	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan planResult, 2)
	start := time.Now()
	go func() {
		resp, err := primary.plan(hctx, cfg, timeout, false)
		results <- planResult{resp, err, false}
	}()

	inflight := 1
	var hedgeTimer <-chan time.Time
	if !f.DisableHedging && len(owners) > 1 {
		hedgeTimer = time.After(f.hedgeDelay())
	}
	var firstErr error
	for inflight > 0 {
		select {
		case <-hedgeTimer:
			hedgeTimer = nil
			backup := f.clients[owners[1]]
			f.mu.Lock()
			f.stats.HedgesSent++
			f.mu.Unlock()
			inflight++
			go func() {
				resp, err := backup.plan(hctx, cfg, timeout, true)
				results <- planResult{resp, err, true}
			}()
		case r := <-results:
			inflight--
			if r.err == nil {
				cancel() // the loser's request aborts
				f.observe(time.Since(start))
				if r.hedged {
					f.mu.Lock()
					f.stats.HedgeWins++
					f.mu.Unlock()
				}
				return r.resp, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
		}
	}
	f.mu.Lock()
	f.stats.Errors++
	f.mu.Unlock()
	return nil, firstErr
}

// observe folds a successful request latency into the hedge-delay
// sample window.
func (f *Fleet) observe(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.lat == nil {
		f.lat = make([]time.Duration, latWindow)
	}
	f.lat[f.latNext] = d
	f.latNext = (f.latNext + 1) % latWindow
	if f.latNext == 0 {
		f.latFull = true
	}
}

// hedgeDelay resolves the backup-request trigger delay: the fixed
// override if set, else the p99 of the recent latency window, clamped.
// Hedging at the p99 bounds extra load at ~1% of requests while
// cutting exactly the tail the percentile names — the classic
// tail-at-scale trade.
func (f *Fleet) hedgeDelay() time.Duration {
	if f.HedgeDelay > 0 {
		return f.HedgeDelay
	}
	lo, hi := f.HedgeMin, f.HedgeMax
	if lo <= 0 {
		lo = 25 * time.Millisecond
	}
	if hi <= 0 {
		hi = 2 * time.Second
	}
	f.mu.Lock()
	n := f.latNext
	if f.latFull {
		n = latWindow
	}
	samples := make([]time.Duration, n)
	copy(samples, f.lat[:n])
	f.mu.Unlock()
	if n < 20 {
		return hi // not enough signal yet; hedge conservatively
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	p99 := samples[(n*99)/100]
	if p99 < lo {
		return lo
	}
	if p99 > hi {
		return hi
	}
	return p99
}
