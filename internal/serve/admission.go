package serve

import (
	"sync"
	"time"
)

// admission is the daemon's bounded request queue: a request holds one
// slot from the moment it is admitted until its response is written,
// so at most depth requests are in service or waiting on runner
// workers at once. A full queue rejects immediately (the HTTP layer
// turns that into 429 + Retry-After) — under saturation the daemon
// sheds load at the front door instead of stacking goroutines.
type admission struct {
	slots chan struct{}

	mu sync.Mutex
	// ewma tracks recent request service time so Retry-After reflects
	// how fast the queue actually drains.
	ewma time.Duration
}

func newAdmission(depth int) *admission {
	return &admission{slots: make(chan struct{}, depth)}
}

// tryAcquire claims a slot without blocking.
func (a *admission) tryAcquire() bool {
	select {
	case a.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a slot and folds the request's service time into the
// drain-rate estimate.
func (a *admission) release(served time.Duration) {
	<-a.slots
	a.mu.Lock()
	if a.ewma == 0 {
		a.ewma = served
	} else {
		a.ewma = (3*a.ewma + served) / 4
	}
	a.mu.Unlock()
}

// depth returns the currently held slots and the capacity.
func (a *admission) depth() (held, capacity int) {
	return len(a.slots), cap(a.slots)
}

// retryAfter estimates how long a rejected caller should wait for a
// slot to free: one average service time, clamped to [1s, 60s] so the
// hint is never zero and never parks clients for minutes.
func (a *admission) retryAfter() time.Duration {
	a.mu.Lock()
	d := a.ewma
	a.mu.Unlock()
	if d < time.Second {
		return time.Second
	}
	if d > time.Minute {
		return time.Minute
	}
	return d.Round(time.Second)
}
