// Package units provides the shared scalar types used throughout the
// simulator: byte sizes, simulated time, bandwidths, and FLOP counts,
// together with parsing and human-readable formatting helpers.
//
// Keeping these as named types (rather than bare int64/float64) makes
// signatures self-documenting and prevents unit-mixing bugs such as
// passing a byte count where a duration is expected.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Bytes is a memory size or transfer size in bytes.
type Bytes int64

// Common byte sizes. These are binary (IEC) multiples, matching how GPU
// memory capacities are reported by CUDA tooling.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
	TiB Bytes = 1 << 40
)

// MB constructs a size from a (possibly fractional) number of mebibytes.
func MB(n float64) Bytes { return Bytes(n * float64(MiB)) }

// GB constructs a size from a (possibly fractional) number of gibibytes.
func GB(n float64) Bytes { return Bytes(n * float64(GiB)) }

// MiBf reports the size as a floating-point number of mebibytes.
func (b Bytes) MiBf() float64 { return float64(b) / float64(MiB) }

// GiBf reports the size as a floating-point number of gibibytes.
func (b Bytes) GiBf() float64 { return float64(b) / float64(GiB) }

// String formats the size with an adaptive unit, e.g. "1.50GiB".
func (b Bytes) String() string {
	switch {
	case b < 0:
		return "-" + (-b).String()
	case b >= TiB:
		return fmt.Sprintf("%.2fTiB", float64(b)/float64(TiB))
	case b >= GiB:
		return fmt.Sprintf("%.2fGiB", float64(b)/float64(GiB))
	case b >= MiB:
		return fmt.Sprintf("%.2fMiB", float64(b)/float64(MiB))
	case b >= KiB:
		return fmt.Sprintf("%.2fKiB", float64(b)/float64(KiB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// ParseBytes parses strings like "32GiB", "1.5GB", "216MB", or "1024".
// Decimal suffixes (KB/MB/GB/TB) are treated as their binary counterparts,
// which is the convention used throughout the paper's tables.
func ParseBytes(s string) (Bytes, error) {
	t := strings.TrimSpace(s)
	mult := Bytes(1)
	upper := strings.ToUpper(t)
	for _, suf := range []struct {
		name string
		m    Bytes
	}{
		{"TIB", TiB}, {"GIB", GiB}, {"MIB", MiB}, {"KIB", KiB},
		{"TB", TiB}, {"GB", GiB}, {"MB", MiB}, {"KB", KiB}, {"B", 1},
	} {
		if strings.HasSuffix(upper, suf.name) {
			mult = suf.m
			t = strings.TrimSpace(t[:len(t)-len(suf.name)])
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("units: cannot parse %q as bytes: %v", s, err)
	}
	return Bytes(v * float64(mult)), nil
}

// Duration is simulated time in nanoseconds. It is a distinct type from
// time.Duration so that simulated and wall-clock time cannot be confused,
// but it uses the same resolution for familiarity.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Milliseconds constructs a duration from fractional milliseconds.
func Milliseconds(ms float64) Duration { return Duration(ms * float64(Millisecond)) }

// Seconds constructs a duration from fractional seconds.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// Secondsf reports the duration as fractional seconds.
func (d Duration) Secondsf() float64 { return float64(d) / float64(Second) }

// Millisecondsf reports the duration as fractional milliseconds.
func (d Duration) Millisecondsf() float64 { return float64(d) / float64(Millisecond) }

// String formats the duration with an adaptive unit, e.g. "3.20ms".
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d >= Second:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	case d >= Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.2fus", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Bandwidth is a data-transfer rate in bytes per second.
type Bandwidth float64

// GBps constructs a bandwidth from gigabytes per second. Link bandwidths
// in vendor datasheets (e.g. "25 GB/s per NVLink") are decimal, so this
// uses 1e9, unlike the binary Bytes constructors.
func GBps(n float64) Bandwidth { return Bandwidth(n * 1e9) }

// GBpsf reports the bandwidth as decimal gigabytes per second.
func (bw Bandwidth) GBpsf() float64 { return float64(bw) / 1e9 }

// Gbps constructs a bandwidth from gigabits per second — the unit NIC
// and switch datasheets quote (a "100 Gbit/s" InfiniBand port moves
// 12.5 decimal gigabytes per second).
func Gbps(n float64) Bandwidth { return Bandwidth(n * 1e9 / 8) }

// Gbpsf reports the bandwidth as decimal gigabits per second.
func (bw Bandwidth) Gbpsf() float64 { return float64(bw) * 8 / 1e9 }

// String formats the bandwidth, e.g. "25.0GB/s".
func (bw Bandwidth) String() string {
	return fmt.Sprintf("%.1fGB/s", float64(bw)/1e9)
}

// BitString formats the bandwidth in network-link units, e.g.
// "100Gbit/s" for a NIC that String would render as "12.5GB/s".
// Sub-gigabit rates fall back to Mbit/s.
func (bw Bandwidth) BitString() string {
	bits := float64(bw) * 8
	if bits >= 1e9 || bits == 0 {
		return fmt.Sprintf("%gGbit/s", bits/1e9)
	}
	return fmt.Sprintf("%gMbit/s", bits/1e6)
}

// ParseBandwidth parses link-rate strings in either byte or bit units:
// "25GB/s", "11.7GBps", "900MB/s" (bytes), "100Gbps", "100Gbit/s",
// "400Mbps" (bits). A bare number is bytes per second.
func ParseBandwidth(s string) (Bandwidth, error) {
	t := strings.TrimSpace(s)
	upper := strings.ToUpper(t)
	mult := 1.0
	for _, suf := range []struct {
		name string
		m    float64
	}{
		// Bit suffixes first: "GBIT/S" would otherwise never match
		// after "B/S" strips, and "GBPS" (bytes) must not swallow
		// "GBPS"-meaning-bits — bits use lowercase-b conventions, so we
		// distinguish on the canonical spellings below.
		{"GBIT/S", 1e9 / 8}, {"MBIT/S", 1e6 / 8},
		{"GB/S", 1e9}, {"MB/S", 1e6},
	} {
		if strings.HasSuffix(upper, suf.name) {
			mult = suf.m
			t = strings.TrimSpace(t[:len(t)-len(suf.name)])
			goto parse
		}
	}
	// "Gbps"/"Mbps" vs "GBps"/"MBps": lowercase b is bits, uppercase B
	// is bytes — the one place where case matters.
	for _, suf := range []struct {
		name string
		m    float64
	}{
		{"GBps", 1e9}, {"MBps", 1e6},
		{"Gbps", 1e9 / 8}, {"Mbps", 1e6 / 8},
	} {
		if strings.HasSuffix(t, suf.name) {
			mult = suf.m
			t = strings.TrimSpace(t[:len(t)-len(suf.name)])
			goto parse
		}
	}
parse:
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("units: cannot parse %q as bandwidth: %v", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative bandwidth %q", s)
	}
	return Bandwidth(v * mult), nil
}

// TransferTime computes how long moving size bytes takes at this
// bandwidth, ignoring latency. Zero or negative bandwidth yields an
// infinite duration sentinel (MaxDuration).
func (bw Bandwidth) TransferTime(size Bytes) Duration {
	if bw <= 0 {
		return MaxDuration
	}
	ns := float64(size) / float64(bw) * 1e9
	if ns >= float64(math.MaxInt64) {
		return MaxDuration
	}
	return Duration(ns)
}

// MaxDuration is the largest representable duration, used as an
// "effectively never" sentinel.
const MaxDuration Duration = math.MaxInt64

// FLOPs is a count of floating-point operations.
type FLOPs float64

// TFLOPs reports the count in units of 10^12 operations.
func (f FLOPs) TFLOPs() float64 { return float64(f) / 1e12 }

// String formats the count, e.g. "3.1TFLOPs".
func (f FLOPs) String() string {
	switch {
	case f >= 1e12:
		return fmt.Sprintf("%.2fTFLOPs", float64(f)/1e12)
	case f >= 1e9:
		return fmt.Sprintf("%.2fGFLOPs", float64(f)/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%.2fMFLOPs", float64(f)/1e6)
	default:
		return fmt.Sprintf("%.0fFLOPs", float64(f))
	}
}

// FLOPSRate is a compute throughput in floating-point operations per
// second (note the capital S: operations-per-second, not a count).
type FLOPSRate float64

// TFLOPS constructs a rate from teraFLOPS.
func TFLOPS(n float64) FLOPSRate { return FLOPSRate(n * 1e12) }

// TFLOPSf reports the rate in teraFLOPS.
func (r FLOPSRate) TFLOPSf() float64 { return float64(r) / 1e12 }

// String formats the rate, e.g. "125.0TFLOPS".
func (r FLOPSRate) String() string {
	return fmt.Sprintf("%.1fTFLOPS", float64(r)/1e12)
}

// ComputeTime returns how long executing f operations takes at rate r.
// Zero or negative rates yield MaxDuration.
func (r FLOPSRate) ComputeTime(f FLOPs) Duration {
	if r <= 0 {
		return MaxDuration
	}
	ns := float64(f) / float64(r) * 1e9
	if ns >= float64(math.MaxInt64) {
		return MaxDuration
	}
	return Duration(ns)
}
