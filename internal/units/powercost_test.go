package units

import (
	"math"
	"testing"
)

func TestParsePower(t *testing.T) {
	cases := []struct {
		in   string
		want Power
	}{
		{"350W", 350},
		{"350 W", 350},
		{"0", 0},
		{"1200", 1200},
		{"6.5kW", 6500},
		{"6.5KW", 6500},
		{"1.2MW", 1.2e6},
		{"500mW", 0.5},
		{" 3.5kW ", 3500},
		{"10.2kW", 10200},
	}
	for _, c := range cases {
		got, err := ParsePower(c.in)
		if err != nil {
			t.Fatalf("ParsePower(%q): %v", c.in, err)
		}
		if math.Abs(float64(got-c.want)) > 1e-9*math.Abs(float64(c.want)) {
			t.Errorf("ParsePower(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
}

// TestParsePowerCaseSensitivity pins the mW-vs-MW discipline: the
// metric prefix is case-sensitive, mirroring ParseBandwidth's
// Gbps-vs-GBps distinction.
func TestParsePowerCaseSensitivity(t *testing.T) {
	milli, err := ParsePower("5mW")
	if err != nil {
		t.Fatal(err)
	}
	mega, err := ParsePower("5MW")
	if err != nil {
		t.Fatal(err)
	}
	if milli != Power(0.005) {
		t.Errorf("5mW = %v W, want 0.005", float64(milli))
	}
	if mega != Power(5e6) {
		t.Errorf("5MW = %v W, want 5e6", float64(mega))
	}
}

func TestParsePowerErrors(t *testing.T) {
	for _, in := range []string{"", "W", "-5W", "watt", "5w"} {
		if v, err := ParsePower(in); err == nil {
			t.Errorf("ParsePower(%q) = %v, want error", in, float64(v))
		}
	}
}

func TestPowerString(t *testing.T) {
	cases := []struct {
		in   Power
		want string
	}{
		{0, "0W"},
		{350, "350W"},
		{Watts(3500), "3.50kW"},
		{KW(6.5), "6.50kW"},
		{KW(1200), "1.20MW"},
		{0.5, "500mW"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Power(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

// TestPowerRoundTrip checks String output re-parses to the same value
// within formatting tolerance (String keeps two decimals above 1kW).
func TestPowerRoundTrip(t *testing.T) {
	for _, p := range []Power{0, 1, 350, 999, 1000, 3500, 6500, 10200, 1.5e6, 0.25} {
		got, err := ParsePower(p.String())
		if err != nil {
			t.Fatalf("ParsePower(%q): %v", p.String(), err)
		}
		diff := math.Abs(float64(got - p))
		if diff > float64(p)/100+1e-9 {
			t.Errorf("round trip drifted: %v -> %q -> %v", float64(p), p.String(), float64(got))
		}
	}
}

func TestPowerEnergy(t *testing.T) {
	// 1kW for one simulated hour is exactly 1 kWh.
	if got := KW(1).EnergyKWh(3600 * Second); math.Abs(got-1) > 1e-12 {
		t.Errorf("1kW x 1h = %v kWh, want 1", got)
	}
	if got := Watts(3500).EnergyKWh(30 * 60 * Second); math.Abs(got-1.75) > 1e-12 {
		t.Errorf("3.5kW x 30min = %v kWh, want 1.75", got)
	}
}

func TestParseCost(t *testing.T) {
	cases := []struct {
		in   string
		want Cost
	}{
		{"$12.50", 12.5},
		{"12.50", 12.5},
		{"$0.004", 0.004},
		{"$3.25/hr", 3.25},
		{"3.25/h", 3.25},
		{" $ 14 ", 14},
		{"0", 0},
	}
	for _, c := range cases {
		got, err := ParseCost(c.in)
		if err != nil {
			t.Fatalf("ParseCost(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseCost(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
}

func TestParseCostErrors(t *testing.T) {
	for _, in := range []string{"", "$", "-3", "$-3", "three dollars"} {
		if v, err := ParseCost(in); err == nil {
			t.Errorf("ParseCost(%q) = %v, want error", in, float64(v))
		}
	}
}

// TestCostRoundTrip pins the exact round trip: String uses full 'g'
// precision, so ParseCost(String) is bit-identical.
func TestCostRoundTrip(t *testing.T) {
	for _, c := range []Cost{0, 0.004, 1, 3.25, 12.5, 14, 45, 123456.789, 1e-6} {
		got, err := ParseCost(c.String())
		if err != nil {
			t.Fatalf("ParseCost(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("round trip drifted: %v -> %q -> %v", float64(c), c.String(), float64(got))
		}
	}
}

func TestCostFor(t *testing.T) {
	// $14/hr for 30 simulated minutes is $7.
	if got := USD(14).For(30 * 60 * Second); math.Abs(float64(got-7)) > 1e-12 {
		t.Errorf("$14/hr x 30min = %v, want 7", float64(got))
	}
}

func TestCostPrettyString(t *testing.T) {
	cases := []struct {
		in   Cost
		want string
	}{
		{12.5, "$12.50"},
		{0.004, "$0.0040"},
		{0, "$0.00"},
		{-3, "-$3.00"},
	}
	for _, c := range cases {
		if got := c.in.PrettyString(); got != c.want {
			t.Errorf("Cost(%v).PrettyString() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}
