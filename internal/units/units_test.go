package units

import (
	"testing"
	"testing/quick"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KiB, "1.00KiB"},
		{MiB + MiB/2, "1.50MiB"},
		{32 * GiB, "32.00GiB"},
		{2 * TiB, "2.00TiB"},
		{-MiB, "-1.00MiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"1024", 1024},
		{"1KiB", KiB},
		{"1.5MB", MiB + MiB/2},
		{"32GB", 32 * GiB},
		{"32GiB", 32 * GiB},
		{"216MB", 216 * MiB},
		{" 2 TB ", 2 * TiB},
		{"7B", 7},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "GB", "1.2.3MB"} {
		if _, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q): expected error", in)
		}
	}
}

func TestParseBytesRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		b := Bytes(n)
		got, err := ParseBytes(b.String())
		if err != nil {
			return false
		}
		// Formatting truncates to two decimals, so allow 1% error.
		diff := got - b
		if diff < 0 {
			diff = -diff
		}
		return diff <= b/100+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		in   Duration
		want string
	}{
		{0, "0ns"},
		{500, "500ns"},
		{3 * Microsecond, "3.00us"},
		{Milliseconds(4.5), "4.50ms"},
		{2 * Second, "2.000s"},
		{-Millisecond, "-1.00ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBandwidthTransferTime(t *testing.T) {
	bw := GBps(25) // one NVLink 2.0 lane direction
	if got := bw.TransferTime(Bytes(25e9)); got != Second {
		t.Errorf("25GB at 25GB/s = %v, want 1s", got)
	}
	if got := bw.TransferTime(0); got != 0 {
		t.Errorf("0 bytes = %v, want 0", got)
	}
	if got := Bandwidth(0).TransferTime(MiB); got != MaxDuration {
		t.Errorf("zero bandwidth should give MaxDuration, got %v", got)
	}
}

func TestTransferTimeMonotonic(t *testing.T) {
	bw := GBps(12)
	f := func(a, b uint32) bool {
		x, y := Bytes(a), Bytes(b)
		if x > y {
			x, y = y, x
		}
		return bw.TransferTime(x) <= bw.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComputeTime(t *testing.T) {
	r := TFLOPS(100)
	if got := r.ComputeTime(FLOPs(100e12)); got != Second {
		t.Errorf("100 TFLOPs at 100 TFLOPS = %v, want 1s", got)
	}
	if got := FLOPSRate(0).ComputeTime(FLOPs(1)); got != MaxDuration {
		t.Errorf("zero rate should give MaxDuration, got %v", got)
	}
}

func TestFLOPsString(t *testing.T) {
	cases := []struct {
		in   FLOPs
		want string
	}{
		{FLOPs(5e12), "5.00TFLOPs"},
		{FLOPs(2.5e9), "2.50GFLOPs"},
		{FLOPs(3e6), "3.00MFLOPs"},
		{FLOPs(42), "42FLOPs"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("FLOPs(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestConstructors(t *testing.T) {
	if MB(216).MiBf() != 216 {
		t.Errorf("MB(216).MiBf() = %v", MB(216).MiBf())
	}
	if GB(32).GiBf() != 32 {
		t.Errorf("GB(32).GiBf() = %v", GB(32).GiBf())
	}
	if Seconds(1.5) != Second+Second/2 {
		t.Errorf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if GBps(25).GBpsf() != 25 {
		t.Errorf("GBps(25).GBpsf() = %v", GBps(25).GBpsf())
	}
	if TFLOPS(312).TFLOPSf() != 312 {
		t.Errorf("TFLOPS(312).TFLOPSf() = %v", TFLOPS(312).TFLOPSf())
	}
}
