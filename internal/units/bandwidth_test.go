package units

import (
	"math"
	"testing"
)

func TestGbps(t *testing.T) {
	// 100 Gbit/s = 12.5 decimal GB/s.
	if got, want := float64(Gbps(100)), 12.5e9; got != want {
		t.Errorf("Gbps(100) = %g, want %g", got, want)
	}
	if got := Gbps(100).GBpsf(); got != 12.5 {
		t.Errorf("Gbps(100).GBpsf() = %g, want 12.5", got)
	}
	if got := GBps(12.5).Gbpsf(); math.Abs(got-100) > 1e-9 {
		t.Errorf("GBps(12.5).Gbpsf() = %g, want 100", got)
	}
}

func TestBitString(t *testing.T) {
	cases := []struct {
		bw   Bandwidth
		want string
	}{
		{Gbps(100), "100Gbit/s"},
		{Gbps(25), "25Gbit/s"},
		{Gbps(12.5), "12.5Gbit/s"},
		{GBps(12.5), "100Gbit/s"},
		{Gbps(0.4), "400Mbit/s"},
		{0, "0Gbit/s"},
	}
	for _, c := range cases {
		if got := c.bw.BitString(); got != c.want {
			t.Errorf("(%v).BitString() = %q, want %q", float64(c.bw), got, c.want)
		}
	}
}

func TestParseBandwidth(t *testing.T) {
	cases := []struct {
		in   string
		want Bandwidth
	}{
		{"25GB/s", GBps(25)},
		{"11.7GBps", GBps(11.7)},
		{"900MB/s", Bandwidth(900e6)},
		{"1.5MBps", Bandwidth(1.5e6)},
		{"100Gbps", Gbps(100)},
		{"100Gbit/s", Gbps(100)},
		{" 100 Gbit/s ", Gbps(100)},
		{"400Mbps", Bandwidth(400e6 / 8)},
		{"400Mbit/s", Bandwidth(400e6 / 8)},
		{"12500000000", Bandwidth(12.5e9)},
	}
	for _, c := range cases {
		got, err := ParseBandwidth(c.in)
		if err != nil {
			t.Errorf("ParseBandwidth(%q): %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-3 {
			t.Errorf("ParseBandwidth(%q) = %g, want %g", c.in, float64(got), float64(c.want))
		}
	}
	for _, bad := range []string{"", "fast", "-3GB/s", "Gbps"} {
		if _, err := ParseBandwidth(bad); err == nil {
			t.Errorf("ParseBandwidth(%q) succeeded, want error", bad)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	for _, bw := range []Bandwidth{Gbps(100), Gbps(25), Gbps(10), GBps(11.7)} {
		got, err := ParseBandwidth(bw.BitString())
		if err != nil {
			t.Fatalf("round trip of %s: %v", bw.BitString(), err)
		}
		if math.Abs(float64(got-bw)) > 1 { // sub-byte/s rounding
			t.Errorf("round trip of %s = %g, want %g", bw.BitString(), float64(got), float64(bw))
		}
	}
}
