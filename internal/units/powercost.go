package units

import (
	"fmt"
	"strconv"
	"strings"
)

// Power is an electrical power draw in watts. Machine-type catalog
// entries (internal/catalog) quote one node's draw at training load;
// integrating it over a run's simulated wall clock yields the energy
// accounting in reports.
type Power float64

// Watts constructs a power from watts.
func Watts(n float64) Power { return Power(n) }

// KW constructs a power from kilowatts.
func KW(n float64) Power { return Power(n * 1e3) }

// Wattsf reports the power as watts.
func (p Power) Wattsf() float64 { return float64(p) }

// KWf reports the power as kilowatts.
func (p Power) KWf() float64 { return float64(p) / 1e3 }

// EnergyKWh returns the electrical energy, in kilowatt-hours, of
// drawing p for simulated duration d.
func (p Power) EnergyKWh(d Duration) float64 {
	return float64(p) / 1e3 * d.Secondsf() / 3600
}

// String formats the power with an adaptive unit, e.g. "350W",
// "6.50kW". Sub-watt draws render in milliwatts.
func (p Power) String() string {
	switch {
	case p < 0:
		return "-" + (-p).String()
	case p >= 1e6:
		return fmt.Sprintf("%.2fMW", float64(p)/1e6)
	case p >= 1e3:
		return fmt.Sprintf("%.2fkW", float64(p)/1e3)
	case p >= 1 || p == 0:
		return fmt.Sprintf("%gW", float64(p))
	default:
		return fmt.Sprintf("%gmW", float64(p)*1e3)
	}
}

// ParsePower parses power strings like "350W", "6.5kW", "1.2MW",
// "500mW". A bare number is watts.
//
// Matching is case-sensitive for the metric prefix — the same
// discipline ParseBandwidth applies to Gbps-vs-GBps: lowercase "m" is
// milli and uppercase "M" is mega, so "5mW" and "5MW" differ by nine
// orders of magnitude and neither is guessed from the other. The unit
// letter itself must be an uppercase "W" (SI), and "kW" accepts "KW"
// since no kelvin-watt ambiguity exists.
func ParsePower(s string) (Power, error) {
	t := strings.TrimSpace(s)
	mult := 1.0
	for _, suf := range []struct {
		name string
		m    float64
	}{
		{"GW", 1e9}, {"MW", 1e6}, {"mW", 1e-3}, {"kW", 1e3}, {"KW", 1e3}, {"W", 1},
	} {
		if strings.HasSuffix(t, suf.name) {
			mult = suf.m
			t = strings.TrimSpace(t[:len(t)-len(suf.name)])
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("units: cannot parse %q as power: %v", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative power %q", s)
	}
	return Power(v * mult), nil
}

// Cost is an amount of money in US dollars. Catalog entries use it as
// an hourly rental rate ($/hr, see Cost.For); reports use it as the
// absolute dollar cost of a run.
type Cost float64

// USD constructs a cost from dollars.
func USD(n float64) Cost { return Cost(n) }

// Dollarsf reports the cost as dollars.
func (c Cost) Dollarsf() float64 { return float64(c) }

// For treats the receiver as an hourly rate and returns the absolute
// cost of d simulated time at that rate.
func (c Cost) For(d Duration) Cost {
	return Cost(float64(c) * d.Secondsf() / 3600)
}

// String formats the cost exactly, e.g. "$12.5", "$0.004". The 'g'
// formatting with full precision guarantees ParseCost round-trips
// bit for bit; use PrettyString for fixed-width table output.
func (c Cost) String() string {
	if c < 0 {
		return "-" + (-c).String()
	}
	return "$" + strconv.FormatFloat(float64(c), 'g', -1, 64)
}

// PrettyString formats the cost for tables, e.g. "$12.50". Values
// under a cent keep four decimals so small per-sample rates stay
// visible.
func (c Cost) PrettyString() string {
	if c < 0 {
		return "-" + (-c).PrettyString()
	}
	if c > 0 && c < 0.01 {
		return fmt.Sprintf("$%.4f", float64(c))
	}
	return fmt.Sprintf("$%.2f", float64(c))
}

// ParseCost parses dollar amounts like "$12.50", "3.25", "$0.004/hr"
// — an optional leading "$" and an optional "/hr" or "/h" rate suffix
// (the rate-ness is contextual, the number is the same either way).
func ParseCost(s string) (Cost, error) {
	t := strings.TrimSpace(s)
	for _, suf := range []string{"/hr", "/h"} {
		if strings.HasSuffix(t, suf) {
			t = strings.TrimSpace(t[:len(t)-len(suf)])
			break
		}
	}
	t = strings.TrimSpace(strings.TrimPrefix(t, "$"))
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("units: cannot parse %q as cost: %v", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative cost %q", s)
	}
	return Cost(v), nil
}
