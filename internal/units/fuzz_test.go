package units

import (
	"strings"
	"testing"
)

// FuzzParseBytes checks the parser never panics and that accepted
// inputs round-trip through String within formatting tolerance.
func FuzzParseBytes(f *testing.F) {
	for _, seed := range []string{
		"0", "1024", "1KiB", "1.5MB", "32GiB", "2TB", " 7 B ",
		"", "GB", "-5MB", "1e3KB", "٣MB", "1.2.3GiB", "9999999999999TB",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		b, err := ParseBytes(in)
		if err != nil {
			return
		}
		// Accepted values must render and re-parse close to themselves
		// (String truncates to two decimals).
		if b < 0 {
			return // negative sizes parse (e.g. "-5MB") but don't round-trip
		}
		again, err := ParseBytes(b.String())
		if err != nil {
			t.Fatalf("ParseBytes(%q) = %v, but its String %q does not re-parse: %v",
				in, b, b.String(), err)
		}
		diff := again - b
		if diff < 0 {
			diff = -diff
		}
		if diff > b/100+1 {
			t.Fatalf("round trip drifted: %v -> %q -> %v", b, b.String(), again)
		}
	})
}

// FuzzDurationString checks formatting never emits empty or
// whitespace-only strings.
func FuzzDurationString(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(-1))
	f.Add(int64(1e18))
	f.Fuzz(func(t *testing.T, ns int64) {
		s := Duration(ns).String()
		if strings.TrimSpace(s) == "" {
			t.Fatalf("Duration(%d) rendered empty", ns)
		}
	})
}
