package units

import (
	"strings"
	"testing"
)

// FuzzParseBytes checks the parser never panics and that accepted
// inputs round-trip through String within formatting tolerance.
func FuzzParseBytes(f *testing.F) {
	for _, seed := range []string{
		"0", "1024", "1KiB", "1.5MB", "32GiB", "2TB", " 7 B ",
		"", "GB", "-5MB", "1e3KB", "٣MB", "1.2.3GiB", "9999999999999TB",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		b, err := ParseBytes(in)
		if err != nil {
			return
		}
		// Accepted values must render and re-parse close to themselves
		// (String truncates to two decimals).
		if b < 0 {
			return // negative sizes parse (e.g. "-5MB") but don't round-trip
		}
		again, err := ParseBytes(b.String())
		if err != nil {
			t.Fatalf("ParseBytes(%q) = %v, but its String %q does not re-parse: %v",
				in, b, b.String(), err)
		}
		diff := again - b
		if diff < 0 {
			diff = -diff
		}
		if diff > b/100+1 {
			t.Fatalf("round trip drifted: %v -> %q -> %v", b, b.String(), again)
		}
	})
}

// FuzzParsePower checks the parser never panics and that accepted
// inputs round-trip through String within formatting tolerance
// (String keeps two decimals above 1kW).
func FuzzParsePower(f *testing.F) {
	for _, seed := range []string{
		"0", "350W", "6.5kW", "6.5KW", "1.2MW", "500mW", " 3.5kW ", "1200",
		"", "W", "-5W", "5w", "1e3kW", "NaNW", "9e300MW", "٣W",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ParsePower(in)
		if err != nil {
			return
		}
		if p != p || p > 1e300 { // NaN / near-overflow values don't round-trip
			return
		}
		again, err := ParsePower(p.String())
		if err != nil {
			t.Fatalf("ParsePower(%q) = %v, but its String %q does not re-parse: %v",
				in, float64(p), p.String(), err)
		}
		diff := float64(again - p)
		if diff < 0 {
			diff = -diff
		}
		if diff > float64(p)/100+1e-9 {
			t.Fatalf("round trip drifted: %v -> %q -> %v", float64(p), p.String(), float64(again))
		}
	})
}

// FuzzParseCost checks the parser never panics and that accepted
// inputs round-trip through String exactly (String keeps full float
// precision).
func FuzzParseCost(f *testing.F) {
	for _, seed := range []string{
		"0", "$12.50", "12.50", "$0.004", "$3.25/hr", "3.25/h", " $ 14 ",
		"", "$", "-3", "$-3", "1e3", "$1e-7", "NaN", "$Inf",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		c, err := ParseCost(in)
		if err != nil {
			return
		}
		if c != c { // NaN parses via ParseFloat but cannot round-trip equal
			return
		}
		again, err := ParseCost(c.String())
		if err != nil {
			t.Fatalf("ParseCost(%q) = %v, but its String %q does not re-parse: %v",
				in, float64(c), c.String(), err)
		}
		if again != c {
			t.Fatalf("round trip drifted: %v -> %q -> %v", float64(c), c.String(), float64(again))
		}
	})
}

// FuzzDurationString checks formatting never emits empty or
// whitespace-only strings.
func FuzzDurationString(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(-1))
	f.Add(int64(1e18))
	f.Fuzz(func(t *testing.T, ns int64) {
		s := Duration(ns).String()
		if strings.TrimSpace(s) == "" {
			t.Fatalf("Duration(%d) rendered empty", ns)
		}
	})
}
