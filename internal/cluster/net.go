package cluster

import (
	"fmt"

	"mpress/internal/sim"
	"mpress/internal/units"
)

// Net is the simulated inter-node fabric of one cluster, attached to a
// run's discrete-event clock. It models node 0's NIC ports as lane
// resources (per-port serialization, striping across ports, setup
// latency) and schedules bucketed ring all-reduces on them.
//
// Symmetry argument: every node hosts an identical pipeline replica
// driven by the same deterministic schedule, so at every simulated
// instant all nodes inject identical traffic into the ring — node i's
// egress load equals node 0's, and the chunk node 0 receives from node
// N-1 completes exactly when node 0's own send does. Modeling one
// node's ports therefore reproduces the whole ring's timing, the same
// one-rank-by-symmetry device the ZeRO baselines use (internal/zero).
type Net struct {
	sim *sim.Sim
	c   *Cluster

	// egress is node 0's NIC send side; ingress mirrors the receive
	// side's occupancy (bytes are counted once, on egress, as
	// internal/fabric does for switched NVLink).
	egress  *sim.LaneSet
	ingress *sim.LaneSet

	allReduces int64
}

// NewNet builds the fabric resources for c on simulation s. For
// single-node clusters the NIC lanes are not instantiated — there is
// no ring to run.
func NewNet(s *sim.Sim, c *Cluster) *Net {
	n := &Net{sim: s, c: c}
	if c.Nodes > 1 {
		n.egress = sim.NewLaneSet(s, "nic-egress", c.Net.NICs)
		n.ingress = sim.NewLaneSet(s, "nic-ingress", c.Net.NICs)
	}
	return n
}

// Cluster returns the topology the net simulates.
func (n *Net) Cluster() *Cluster { return n.c }

// NetStats aggregates inter-node traffic, per node (all nodes are
// symmetric: multiply by Cluster.Nodes for fleet totals).
type NetStats struct {
	// AllReduces counts completed collective operations.
	AllReduces int64
	// EgressBytes is one node's total NIC egress traffic.
	EgressBytes units.Bytes
	// Busy is one node's summed NIC-port-occupied send time.
	Busy units.Duration
}

// Stats snapshots the net's cumulative counters.
func (n *Net) Stats() NetStats {
	st := NetStats{AllReduces: n.allReduces}
	if n.egress != nil {
		st.EgressBytes = n.egress.Moved()
		st.Busy = n.egress.BusyTime()
	}
	return st
}

// AllReduce returns the gradient synchronizer for this net: a function
// invoked at the simulated time a bucket of gradients becomes final,
// which schedules a bucketed ring all-reduce of size bytes across the
// cluster's nodes and invokes done at its simulated completion time.
//
// The ring follows the classic 2(N-1)-step schedule — N-1 reduce-
// scatter steps then N-1 all-gather steps, each moving size/(B*N)
// bytes per node per bucket — with every chunk striped across the
// node's NICs. Buckets pipeline: bucket b+1's step k queues on the NIC
// lanes behind bucket b's, so an uncontended all-reduce approaches the
// closed-form 2(N-1)/N * size / nodeBW wire time (plus the per-step
// latency). Concurrent all-reduces (different pipeline stages
// finishing their backward passes at different times) contend on the
// same lanes, which is exactly how overlap with backward compute is —
// or is not — achieved.
//
// The signature matches exec.GradSyncFn so a Net plugs directly into
// the executor's Options.GradSync hook.
func (n *Net) AllReduce(buckets int) func(stage, minibatch int, size units.Bytes, done func()) {
	if buckets <= 0 {
		buckets = 1
	}
	return func(stage, minibatch int, size units.Bytes, done func()) {
		n.allReduces++
		if n.c.Nodes <= 1 || size <= 0 {
			done()
			return
		}
		b := buckets
		if units.Bytes(b) > size {
			b = int(size)
		}
		per := size / units.Bytes(b)
		rem := size - per*units.Bytes(b)
		pending := b
		bucketDone := func() {
			pending--
			if pending == 0 {
				done()
			}
		}
		for i := 0; i < b; i++ {
			bucket := per
			if i == 0 {
				bucket += rem
			}
			n.ringBucket(bucket, bucketDone)
		}
	}
}

// ringBucket schedules one bucket's 2(N-1) ring steps. Each step's
// chunk transfer must wait for both a free NIC lane and the previous
// step's chunk to arrive from the ring predecessor (which, by
// symmetry, lands when this node's own previous send completes).
func (n *Net) ringBucket(bucket units.Bytes, done func()) {
	steps := 2 * (n.c.Nodes - 1)
	chunk := (bucket + units.Bytes(n.c.Nodes) - 1) / units.Bytes(n.c.Nodes)
	var step func(k int)
	step = func(k int) {
		if k == steps {
			done()
			return
		}
		end := n.sendChunk(chunk)
		n.sim.At(end, func() { step(k + 1) })
	}
	step(0)
}

// sendChunk reserves the node's NIC lanes for one ring chunk, striping
// it across all ports, and mirrors the occupancy on the ingress side
// (the simultaneous receive from the ring predecessor). It returns the
// completion time of the slowest stripe.
func (n *Net) sendChunk(chunk units.Bytes) sim.Time {
	k := n.egress.Lanes()
	per := chunk / units.Bytes(k)
	rem := chunk - per*units.Bytes(k)
	var end sim.Time
	for i := 0; i < k; i++ {
		blk := per
		if i == 0 {
			blk += rem
		}
		_, e := n.egress.Reserve(blk, n.c.Net.PerNICBW, n.c.Net.Latency)
		// The mirrored receive never outruns the send side: both lane
		// sets see the identical reservation sequence, so the earliest
		// ingress lane frees no later than e.
		n.ingress.ReserveUntil(e, 0)
		if e > end {
			end = e
		}
	}
	return end
}

// MeasureAllReduce runs one isolated bucketed ring all-reduce of size
// bytes on a fresh clock and returns its simulated duration — the
// cluster-level counterpart of fabric.EffectiveBandwidth, used by
// cmd/mpress-topo's probe and the closed-form tests.
func MeasureAllReduce(c *Cluster, size units.Bytes, buckets int) units.Duration {
	s := sim.New()
	n := NewNet(s, c)
	var end units.Duration
	fired := false
	n.AllReduce(buckets)(0, 0, size, func() {
		end = s.Now()
		fired = true
	})
	s.Run()
	if !fired {
		panic(fmt.Sprintf("cluster: all-reduce of %v never completed", size))
	}
	return end
}

// RingAllReduceTime is the closed-form time of a ring all-reduce over
// n symmetric members with per-hop bandwidth hopBW and per-step setup
// latency: 2(n-1) steps, each moving payload/n across one hop. For
// intra-node TP groups pinned on an NVLink island the ring is
// uncontended — every member sends and receives concurrently — so the
// closed form is exact and internal/exec charges it directly;
// inter-node collectives instead go through Net, which adds NIC
// contention on top of the same formula.
func RingAllReduceTime(n int, payload units.Bytes, hopBW units.Bandwidth, latency units.Duration) units.Duration {
	if n <= 1 || payload <= 0 || hopBW <= 0 {
		return 0
	}
	chunk := (payload + units.Bytes(n) - 1) / units.Bytes(n)
	return units.Duration(2*(n-1)) * (latency + hopBW.TransferTime(chunk))
}

// EffectiveAllReduceBandwidth reports the isolated all-reduce's
// algorithm bandwidth, size/time (the figure NCCL benchmarks call
// "algbw"). Infinite for single-node clusters; callers gate on
// Nodes > 1.
func EffectiveAllReduceBandwidth(c *Cluster, size units.Bytes, buckets int) units.Bandwidth {
	d := MeasureAllReduce(c, size, buckets)
	if d <= 0 {
		return 0
	}
	return units.Bandwidth(float64(size) / d.Secondsf())
}
