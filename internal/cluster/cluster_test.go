package cluster

import (
	"strings"
	"testing"

	"mpress/internal/hw"
	"mpress/internal/sim"
	"mpress/internal/units"
)

func newTestSim() *sim.Sim { return sim.New() }

func TestValidate(t *testing.T) {
	if _, err := New(0, hw.DGX1(), InfiniBand4x100()); err == nil {
		t.Error("0-node cluster validated")
	}
	if _, err := New(2, nil, InfiniBand4x100()); err == nil {
		t.Error("server-less cluster validated")
	}
	if _, err := New(2, hw.DGX1(), Fabric{Name: "bad", NICs: 0, PerNICBW: units.Gbps(10)}); err == nil {
		t.Error("0-NIC fabric validated")
	}
	if _, err := New(2, hw.DGX1(), Fabric{Name: "bad", NICs: 1, PerNICBW: 0}); err == nil {
		t.Error("0-bandwidth fabric validated")
	}
	if _, err := New(2, hw.DGX1(), Fabric{Name: "bad", NICs: 1, PerNICBW: units.Gbps(10), Latency: -1}); err == nil {
		t.Error("negative-latency fabric validated")
	}
	// A single node never touches the fabric, so a zero Fabric is fine.
	if _, err := New(1, hw.DGX1(), Fabric{}); err != nil {
		t.Errorf("1-node cluster with zero fabric: %v", err)
	}
	c := MustNew(4, hw.DGX1(), InfiniBand4x100())
	if c.Name != "4xDGX-1V+ib-4x100" {
		t.Errorf("Name = %q", c.Name)
	}
}

func TestLookupFabric(t *testing.T) {
	for name, want := range map[string]string{
		"fast": "ib-4x100", "ib": "ib-4x100", "ib-4x100": "ib-4x100",
		"25g": "eth-25g", "slow": "eth-10g", "10g": "eth-10g",
	} {
		f, err := LookupFabric(name)
		if err != nil {
			t.Fatalf("LookupFabric(%q): %v", name, err)
		}
		if f.Name != want {
			t.Errorf("LookupFabric(%q).Name = %q, want %q", name, f.Name, want)
		}
	}
	if _, err := LookupFabric("carrier-pigeon"); err == nil {
		t.Error("unknown fabric resolved")
	}
	// The error must teach the valid vocabulary: every accepted name,
	// canonical or alias, is resolvable and listed.
	_, err := LookupFabric("carrier-pigeon")
	names := FabricNames()
	if len(names) == 0 {
		t.Fatal("FabricNames is empty")
	}
	for _, name := range names {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid name %q", err, name)
		}
		if _, lerr := LookupFabric(name); lerr != nil {
			t.Errorf("FabricNames lists %q but LookupFabric rejects it: %v", name, lerr)
		}
	}
	ib := InfiniBand4x100()
	if s := ib.String(); !strings.Contains(s, "100Gbit/s") {
		t.Errorf("fabric String %q lacks bit-rate", s)
	}
}

func TestDevices(t *testing.T) {
	c := MustNew(2, hw.DGX1(), InfiniBand4x100())
	if got := c.TotalGPUs(); got != 16 {
		t.Errorf("TotalGPUs = %d, want 16", got)
	}
	if got, want := c.TotalGPUMemory(), units.Bytes(2)*hw.DGX1().TotalGPUMemory(); got != want {
		t.Errorf("TotalGPUMemory = %v, want %v", got, want)
	}
	devs := c.Devices()
	if len(devs) != 16 {
		t.Fatalf("len(Devices) = %d", len(devs))
	}
	if devs[9].String() != "n1/gpu1" {
		t.Errorf("devs[9] = %v, want n1/gpu1", devs[9])
	}
	for _, d := range devs {
		if err := d.Validate(c.Nodes, c.Server); err != nil {
			t.Errorf("device %v invalid: %v", d, err)
		}
	}
}

// TestRingMatchesClosedForm asserts the simulated uncontended bucketed
// ring all-reduce lands within the link-latency term of the closed
// form 2(N-1)/N * size / nodeBW, for several node and bucket counts.
func TestRingMatchesClosedForm(t *testing.T) {
	const size = 64 * units.MiB
	fabrics := []Fabric{InfiniBand4x100(), Ethernet10G()}
	for _, f := range fabrics {
		for _, nodes := range []int{2, 4, 8} {
			for _, buckets := range []int{1, 2, 4, 8} {
				c := MustNew(nodes, hw.DGX1(), f)
				got := MeasureAllReduce(c, size, buckets)
				ideal := c.IdealAllReduceTime(size)
				// Every one of the B*2(N-1) ring steps pays the fabric
				// latency once; chunk-size truncation adds at most a
				// nanosecond per lane reservation.
				steps := buckets * 2 * (nodes - 1)
				latTerm := units.Duration(steps) * f.Latency
				eps := units.Duration(steps*f.NICs + steps)
				if got < ideal-eps {
					t.Errorf("%s N=%d B=%d: simulated %v beats ideal %v", f.Name, nodes, buckets, got, ideal)
				}
				if got > ideal+latTerm+eps {
					t.Errorf("%s N=%d B=%d: simulated %v exceeds ideal %v + latency term %v",
						f.Name, nodes, buckets, got, ideal, latTerm)
				}
			}
		}
	}
}

// TestRingZeroLatencyExact pins the latency-free case to the closed
// form within per-reservation rounding only.
func TestRingZeroLatencyExact(t *testing.T) {
	const size = 128 * units.MiB
	for _, nics := range []int{1, 4} {
		f := Fabric{Name: "ideal", NICs: nics, PerNICBW: units.Gbps(100)}
		for _, nodes := range []int{2, 4, 8} {
			for _, buckets := range []int{1, 4} {
				c := MustNew(nodes, hw.DGX1(), f)
				got := MeasureAllReduce(c, size, buckets)
				ideal := c.IdealAllReduceTime(size)
				steps := buckets * 2 * (nodes - 1)
				eps := units.Duration(steps*nics + steps)
				diff := got - ideal
				if diff < 0 {
					diff = -diff
				}
				if diff > eps {
					t.Errorf("nics=%d N=%d B=%d: simulated %v, ideal %v (diff %d ns > eps %d ns)",
						nics, nodes, buckets, got, ideal, int64(diff), int64(eps))
				}
			}
		}
	}
}

func TestMeasureDeterminism(t *testing.T) {
	c := MustNew(4, hw.DGX1(), InfiniBand4x100())
	a := MeasureAllReduce(c, 48*units.MiB, 4)
	b := MeasureAllReduce(c, 48*units.MiB, 4)
	if a != b {
		t.Errorf("two measurements differ: %v vs %v", a, b)
	}
	if bw := EffectiveAllReduceBandwidth(c, 48*units.MiB, 4); bw <= 0 || bw > c.Net.NodeBW() {
		t.Errorf("algbw %v outside (0, %v]", bw, c.Net.NodeBW())
	}
}

func TestSingleNodeNoop(t *testing.T) {
	c := MustNew(1, hw.DGX1(), InfiniBand4x100())
	if d := c.IdealAllReduceTime(units.GiB); d != 0 {
		t.Errorf("1-node ideal all-reduce = %v, want 0", d)
	}
	if d := MeasureAllReduce(c, units.GiB, 4); d != 0 {
		t.Errorf("1-node simulated all-reduce = %v, want 0", d)
	}
}

// TestStats checks one node's egress accounting: a ring all-reduce of
// size bytes moves 2(N-1) chunks of ~size/(B*N) per bucket.
func TestStats(t *testing.T) {
	const size = 32 * units.MiB
	c := MustNew(4, hw.DGX1(), InfiniBand4x100())
	s := newTestSim()
	n := NewNet(s, c)
	done := false
	n.AllReduce(4)(0, 0, size, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("all-reduce never completed")
	}
	st := n.Stats()
	if st.AllReduces != 1 {
		t.Errorf("AllReduces = %d", st.AllReduces)
	}
	wire := size * 2 * units.Bytes(c.Nodes-1) / units.Bytes(c.Nodes)
	// Ceil-divided chunks may overshoot the exact wire volume slightly.
	if st.EgressBytes < wire || st.EgressBytes > wire+units.KiB {
		t.Errorf("EgressBytes = %v, want ~%v", st.EgressBytes, wire)
	}
	if st.Busy <= 0 {
		t.Errorf("Busy = %v", st.Busy)
	}
}

// TestContention checks that two concurrent all-reduces sharing the NIC
// lanes finish later than an isolated one but never lose bytes.
func TestContention(t *testing.T) {
	const size = 16 * units.MiB
	c := MustNew(4, hw.DGX1(), Ethernet10G())
	solo := MeasureAllReduce(c, size, 2)

	s := newTestSim()
	n := NewNet(s, c)
	var first, second units.Duration
	sync := n.AllReduce(2)
	sync(0, 0, size, func() { first = s.Now() })
	sync(1, 0, size, func() { second = s.Now() })
	s.Run()
	last := first
	if second > last {
		last = second
	}
	if last <= solo {
		t.Errorf("two concurrent all-reduces finished in %v, isolated takes %v", last, solo)
	}
	if st := n.Stats(); st.AllReduces != 2 {
		t.Errorf("AllReduces = %d", st.AllReduces)
	}
}
