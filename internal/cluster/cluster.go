// Package cluster composes N single-server topologies (internal/hw)
// into one multi-node training cluster joined by a modeled NIC fabric,
// and provides the inter-node communication model for hybrid
// data+pipeline parallelism: every node hosts one MPress-planned
// pipeline replica, and replicas synchronize gradients with a bucketed
// ring all-reduce over the inter-node links, overlapped with backward
// compute on the discrete-event simulator.
//
// The paper (Sec. V) argues MPress's compaction extends beyond one
// 8-GPU server; the systems it builds on are explicitly hybrid —
// DAPPLE runs pipeline stages replicated data-parallel across
// machines. This package supplies the missing scale-out dimension:
// the per-server planner and executor are unchanged, and the cluster
// layer adds only what crossing the node boundary costs.
package cluster

import (
	"fmt"
	"strings"

	"mpress/internal/hw"
	"mpress/internal/units"
)

// Fabric describes the inter-node network: each node owns NICs
// identical full-duplex ports of PerNICBW each, with Latency the
// per-message setup cost (switch traversal + NIC processing). The
// ports play the role NVLink lanes play inside a server: a transfer
// can stripe across all of a node's NICs.
type Fabric struct {
	Name string `json:"name"`
	// NICs is the port count per node (e.g. 4 ConnectX HCAs on a DGX).
	NICs int `json:"nics"`
	// PerNICBW is one port's unidirectional bandwidth. NICs are quoted
	// in bits/s — use units.Gbps.
	PerNICBW units.Bandwidth `json:"per_nic_bw"`
	// Latency is the per-transfer setup latency of the fabric.
	Latency units.Duration `json:"latency"`
}

// Validate checks internal consistency of the fabric description.
func (f *Fabric) Validate() error {
	if f.NICs <= 0 {
		return fmt.Errorf("cluster: fabric %q has %d NICs", f.Name, f.NICs)
	}
	if f.PerNICBW <= 0 {
		return fmt.Errorf("cluster: fabric %q has non-positive NIC bandwidth", f.Name)
	}
	if f.Latency < 0 {
		return fmt.Errorf("cluster: fabric %q has negative latency", f.Name)
	}
	return nil
}

// NodeBW returns one node's aggregate unidirectional bandwidth when
// striping across all of its NICs.
func (f *Fabric) NodeBW() units.Bandwidth {
	return units.Bandwidth(float64(f.PerNICBW) * float64(f.NICs))
}

// String summarizes the fabric, e.g. "ib-4x100: 4 x 100Gbit/s NICs, 2.00us".
func (f *Fabric) String() string {
	return fmt.Sprintf("%s: %d x %s NICs, %v", f.Name, f.NICs, f.PerNICBW.BitString(), f.Latency)
}

// InfiniBand4x100 is the fast-fabric preset: 4 x 100 Gbit/s HDR-class
// InfiniBand ports per node (the DGX generation's standard complement),
// 50 GB/s aggregate per direction.
func InfiniBand4x100() Fabric {
	return Fabric{
		Name:     "ib-4x100",
		NICs:     4,
		PerNICBW: units.Gbps(100),
		Latency:  2 * units.Microsecond,
	}
}

// Ethernet25G is a mid-range fabric: one 25 Gbit/s Ethernet port per
// node, typical of cost-conscious cloud instances.
func Ethernet25G() Fabric {
	return Fabric{
		Name:     "eth-25g",
		NICs:     1,
		PerNICBW: units.Gbps(25),
		Latency:  15 * units.Microsecond,
	}
}

// Ethernet10G is the slow-fabric preset: one 10 Gbit/s port per node —
// the regime where gradient synchronization stops hiding under
// backward compute.
func Ethernet10G() Fabric {
	return Fabric{
		Name:     "eth-10g",
		NICs:     1,
		PerNICBW: units.Gbps(10),
		Latency:  30 * units.Microsecond,
	}
}

// fabricPresets maps every accepted -fabric name (including aliases)
// to its preset constructor, in the order FabricNames lists them.
var fabricPresets = []struct {
	name    string
	aliases []string
	build   func() Fabric
}{
	{"ib-4x100", []string{"fast", "ib"}, InfiniBand4x100},
	{"eth-25g", []string{"25g"}, Ethernet25G},
	{"eth-10g", []string{"slow", "10g"}, Ethernet10G},
}

// FabricNames lists every name LookupFabric accepts — canonical preset
// names first, then their aliases — for CLI help and error messages.
func FabricNames() []string {
	var names []string
	for _, p := range fabricPresets {
		names = append(names, p.name)
	}
	for _, p := range fabricPresets {
		names = append(names, p.aliases...)
	}
	return names
}

// LookupFabric resolves a CLI fabric name. "fast" and "slow" alias the
// InfiniBand and 10G-Ethernet presets.
func LookupFabric(name string) (Fabric, error) {
	for _, p := range fabricPresets {
		if name == p.name {
			return p.build(), nil
		}
		for _, a := range p.aliases {
			if name == a {
				return p.build(), nil
			}
		}
	}
	return Fabric{}, fmt.Errorf("cluster: unknown fabric %q (valid names: %s)",
		name, strings.Join(FabricNames(), ", "))
}

// Cluster is N identical servers joined by a fabric. Each node hosts
// one full pipeline replica of the training job; the per-node server
// topology is simulated exactly as in the single-server case.
type Cluster struct {
	Name string `json:"name"`
	// Nodes is the replica count. 1 is a degenerate cluster that
	// behaves exactly like its single server.
	Nodes int `json:"nodes"`
	// Server is the per-node topology (every node is identical).
	Server *hw.Topology `json:"server"`
	// Net is the inter-node fabric (ignored when Nodes == 1).
	Net Fabric `json:"net"`
}

// New builds and validates a cluster of n replicas of server joined by
// net.
func New(n int, server *hw.Topology, net Fabric) (*Cluster, error) {
	c := &Cluster{Nodes: n, Server: server, Net: net}
	if server != nil {
		c.Name = fmt.Sprintf("%dx%s+%s", n, server.Name, net.Name)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustNew is New panicking on invalid input, for tests and examples.
func MustNew(n int, server *hw.Topology, net Fabric) *Cluster {
	c, err := New(n, server, net)
	if err != nil {
		panic(err)
	}
	return c
}

// Validate checks internal consistency of the cluster description.
func (c *Cluster) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: %q has %d nodes", c.Name, c.Nodes)
	}
	if c.Server == nil {
		return fmt.Errorf("cluster: %q has no server topology", c.Name)
	}
	if err := c.Server.Validate(); err != nil {
		return err
	}
	if c.Nodes > 1 {
		return c.Net.Validate()
	}
	return nil
}

// TotalGPUs returns the cluster-wide GPU count.
func (c *Cluster) TotalGPUs() int { return c.Nodes * c.Server.NumGPUs }

// TotalGPUMemory returns the cluster-wide aggregate GPU memory.
func (c *Cluster) TotalGPUMemory() units.Bytes {
	return units.Bytes(c.Nodes) * c.Server.TotalGPUMemory()
}

// Devices enumerates every GPU in the cluster as node-qualified IDs,
// node-major.
func (c *Cluster) Devices() []hw.NodeDevice {
	out := make([]hw.NodeDevice, 0, c.TotalGPUs())
	for n := 0; n < c.Nodes; n++ {
		for g := 0; g < c.Server.NumGPUs; g++ {
			out = append(out, hw.DeviceID(g).On(n))
		}
	}
	return out
}

// IdealAllReduceTime is the latency-free lower bound of a ring
// all-reduce of size bytes across the cluster: each node moves
// 2(N-1)/N x size through its NICs at aggregate node bandwidth. Zero
// for single-node clusters. The simulated time (Net model) adds the
// per-step latency and any contention on the NIC lanes.
func (c *Cluster) IdealAllReduceTime(size units.Bytes) units.Duration {
	if c.Nodes <= 1 {
		return 0
	}
	wire := float64(size) * 2 * float64(c.Nodes-1) / float64(c.Nodes)
	return c.Net.NodeBW().TransferTime(units.Bytes(wire))
}
