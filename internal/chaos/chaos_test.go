package chaos

import (
	"reflect"
	"testing"

	"mpress/internal/hw"
	"mpress/internal/units"
)

func TestScheduleDeterminism(t *testing.T) {
	topo := hw.DGX1()
	cfg := &Config{Seed: 42, MTBF: 30 * units.Second}
	a := cfg.Schedule(topo, 1)
	b := cfg.Schedule(topo, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	if len(a) != DefaultMaxFaults {
		t.Fatalf("got %d faults, want %d", len(a), DefaultMaxFaults)
	}
	prev := units.Duration(0)
	for _, f := range a {
		if f.At <= prev {
			t.Fatalf("schedule not strictly increasing: %v", a)
		}
		prev = f.At
	}

	other := &Config{Seed: 43, MTBF: 30 * units.Second}
	if reflect.DeepEqual(a, other.Schedule(topo, 1)) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestScheduleKindsAndTargets(t *testing.T) {
	topo := hw.DGX1()
	cfg := &Config{Seed: 7, MTBF: 10 * units.Second, MaxFaults: 64, Kinds: []Kind{NVLinkFail}}
	for _, f := range cfg.Schedule(topo, 1) {
		if f.Kind != NVLinkFail {
			t.Fatalf("restricted schedule produced %v", f)
		}
		if topo.LanesBetween(f.GPU, f.Peer) == 0 {
			t.Fatalf("fault %v targets a pair with no NVLink", f)
		}
	}
	// Single-node default schedules never flap a NIC.
	all := &Config{Seed: 7, MTBF: 10 * units.Second, MaxFaults: 64}
	for _, f := range all.Schedule(topo, 1) {
		if f.Kind == NICFlap {
			t.Fatalf("NIC flap scheduled for a single-node job: %v", f)
		}
	}
}

func TestScriptPassthroughAndValidate(t *testing.T) {
	topo := hw.DGX1()
	script := []Fault{{Kind: NVLinkFail, At: units.Second, GPU: 0, Peer: 3}}
	cfg := &Config{Script: script}
	if err := cfg.Validate(topo, 1); err != nil {
		t.Fatal(err)
	}
	got := cfg.Schedule(topo, 1)
	if !reflect.DeepEqual(got, script) {
		t.Fatalf("script not passed through: %v", got)
	}

	bad := []*Config{
		{}, // no MTBF, no script
		{Script: []Fault{{Kind: GPUFail, At: units.Second, GPU: 9}}},
		{Script: []Fault{{Kind: NVLinkFail, At: units.Second, GPU: 0, Peer: 5}}},
		{Script: []Fault{{Kind: GPUFail, At: 0, GPU: 1}}},
		{Script: []Fault{{Kind: NICFlap, At: units.Second}}},
		{MTBF: units.Second, Kinds: []Kind{NICFlap}},
		{Script: []Fault{{Kind: HostPressure, At: units.Second, HostLoss: 2 * topo.HostMemory}}},
		{Script: []Fault{
			{Kind: GPUFail, At: 2 * units.Second, GPU: 1},
			{Kind: GPUFail, At: units.Second, GPU: 2},
		}},
	}
	for i, c := range bad {
		if err := c.Validate(topo, 1); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestCanonicalDistinguishesConfigs(t *testing.T) {
	a := &Config{Seed: 1, MTBF: units.Second}
	b := &Config{Seed: 2, MTBF: units.Second}
	c := &Config{Seed: 1, MTBF: 2 * units.Second}
	if a.Canonical() == b.Canonical() || a.Canonical() == c.Canonical() {
		t.Error("canonical strings collide across distinct configs")
	}
	var nilCfg *Config
	if nilCfg.Canonical() != "faults=none" {
		t.Errorf("nil canonical = %q", nilCfg.Canonical())
	}
}
