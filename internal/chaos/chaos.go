// Package chaos generates deterministic fault schedules for resilient
// training runs. A schedule is a list of faults — GPU death, NVLink
// loss, NIC flap, host-memory pressure — stamped with absolute
// simulated times; the runner injects each as an event on the
// discrete-event clock, rolls back to the last checkpoint and re-plans
// on the degraded topology (internal/hw degradation constructors).
//
// Determinism is a repo-wide contract: the same Seed, MTBF and
// topology always yield the identical schedule, byte for byte, across
// runs and Go releases. The package therefore uses its own splitmix64
// generator instead of math/rand, whose stream is not guaranteed
// stable between Go versions.
package chaos

import (
	"fmt"
	"math"

	"mpress/internal/hw"
	"mpress/internal/units"
)

// Kind enumerates the fault classes the simulator can inject.
type Kind int

const (
	// GPUFail kills one GPU; it is removed from the topology and the
	// pipeline re-partitions across the survivors.
	GPUFail Kind = iota
	// NVLinkFail downs the NVLink path between two GPUs; D2D swap
	// striping must re-plan around the missing peer.
	NVLinkFail
	// NICFlap is a transient inter-node network fault: the run rolls
	// back and restarts, but the topology is not degraded. Only
	// generated for multi-node jobs.
	NICFlap
	// HostPressure models a co-located process claiming host DRAM,
	// shrinking the swap space the planner may use.
	HostPressure

	numKinds
)

var kindNames = [...]string{"gpu-fail", "nvlink-fail", "nic-flap", "host-pressure"}

// String returns the kind's canonical name.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one scheduled hardware fault. At is absolute wall-clock
// simulated time measured over the whole resilient run (checkpoint
// stalls and recoveries included), not per-segment time.
type Fault struct {
	Kind Kind           `json:"kind"`
	At   units.Duration `json:"at"`
	// GPU is the victim (GPUFail) or one NVLink endpoint (NVLinkFail).
	GPU hw.DeviceID `json:"gpu,omitempty"`
	// Peer is the other NVLink endpoint (NVLinkFail only).
	Peer hw.DeviceID `json:"peer,omitempty"`
	// HostLoss is the DRAM claimed by the intruder (HostPressure only).
	HostLoss units.Bytes `json:"host_loss,omitempty"`
}

// String renders the fault for logs and traces.
func (f Fault) String() string {
	switch f.Kind {
	case GPUFail:
		return fmt.Sprintf("%v@%v(%v)", f.Kind, f.At, f.GPU)
	case NVLinkFail:
		return fmt.Sprintf("%v@%v(%v-%v)", f.Kind, f.At, f.GPU, f.Peer)
	case HostPressure:
		return fmt.Sprintf("%v@%v(-%v)", f.Kind, f.At, f.HostLoss)
	default:
		return fmt.Sprintf("%v@%v", f.Kind, f.At)
	}
}

// DefaultMaxFaults bounds seeded schedules (and therefore recovery
// loops) when Config.MaxFaults is zero.
const DefaultMaxFaults = 4

// DefaultDetectionDelay is the simulated time between a fault firing
// and the restarted job beginning its restore transfer — failure
// detection, process teardown and relaunch — when Config.
// DetectionDelay is zero.
const DefaultDetectionDelay = 2 * units.Second

// Config describes a fault model. Either Script pins an explicit fault
// list (tests, repros) or Seed+MTBF generate one with exponential
// inter-arrival times.
type Config struct {
	// Seed drives the deterministic generator. Seed 0 is as valid as
	// any other; two runs with equal Seed and MTBF see equal faults.
	Seed uint64 `json:"seed"`
	// MTBF is the mean time between failures in simulated time.
	MTBF units.Duration `json:"mtbf"`
	// MaxFaults caps how many faults a seeded schedule contains
	// (default DefaultMaxFaults). Faults beyond the job's lifetime are
	// simply never reached.
	MaxFaults int `json:"max_faults,omitempty"`
	// Kinds restricts the generated fault classes; empty means every
	// class applicable to the topology.
	Kinds []Kind `json:"kinds,omitempty"`
	// Script, when non-empty, is used verbatim (sorted by At) instead
	// of seeded generation.
	Script []Fault `json:"script,omitempty"`
	// DetectionDelay is added to every recovery before the restore
	// transfer begins (default DefaultDetectionDelay).
	DetectionDelay units.Duration `json:"detection_delay,omitempty"`
}

// Validate checks the config against the topology it will torment.
func (c *Config) Validate(topo *hw.Topology, nodes int) error {
	if c == nil {
		return nil
	}
	if len(c.Script) == 0 && c.MTBF <= 0 {
		return fmt.Errorf("chaos: need MTBF > 0 (got %v) or an explicit Script", c.MTBF)
	}
	if c.MaxFaults < 0 {
		return fmt.Errorf("chaos: negative MaxFaults %d", c.MaxFaults)
	}
	if c.DetectionDelay < 0 {
		return fmt.Errorf("chaos: negative DetectionDelay %v", c.DetectionDelay)
	}
	for _, k := range c.Kinds {
		if k < 0 || k >= numKinds {
			return fmt.Errorf("chaos: unknown fault kind %v", k)
		}
		if k == NICFlap && nodes <= 1 {
			return fmt.Errorf("chaos: %v needs a multi-node cluster", k)
		}
	}
	prev := units.Duration(-1)
	for i, f := range c.Script {
		if f.Kind < 0 || f.Kind >= numKinds {
			return fmt.Errorf("chaos: script[%d] has unknown kind %v", i, f.Kind)
		}
		if f.At <= 0 {
			return fmt.Errorf("chaos: script[%d] fires at %v; faults need At > 0", i, f.At)
		}
		if f.At < prev {
			return fmt.Errorf("chaos: script must be sorted by At (entry %d)", i)
		}
		prev = f.At
		switch f.Kind {
		case GPUFail:
			if !f.GPU.IsGPU() || int(f.GPU) >= topo.NumGPUs {
				return fmt.Errorf("chaos: script[%d] kills %v, topology has %d GPUs", i, f.GPU, topo.NumGPUs)
			}
		case NVLinkFail:
			if topo.LanesBetween(f.GPU, f.Peer) == 0 {
				return fmt.Errorf("chaos: script[%d] downs %v-%v, which has no NVLink", i, f.GPU, f.Peer)
			}
		case NICFlap:
			if nodes <= 1 {
				return fmt.Errorf("chaos: script[%d] flaps a NIC on a single-node job", i)
			}
		case HostPressure:
			if f.HostLoss <= 0 || f.HostLoss >= topo.HostMemory {
				return fmt.Errorf("chaos: script[%d] host loss %v out of (0,%v)", i, f.HostLoss, topo.HostMemory)
			}
		}
	}
	return nil
}

// Detection returns the configured or default detection delay.
func (c *Config) Detection() units.Duration {
	if c == nil {
		return 0
	}
	if c.DetectionDelay > 0 {
		return c.DetectionDelay
	}
	return DefaultDetectionDelay
}

// Schedule materializes the fault list for one run against the given
// healthy topology: the Script verbatim if set, otherwise MaxFaults
// seeded faults with Exp(MTBF) inter-arrival gaps. Targets are drawn
// against the healthy topology; the runner skips faults whose target
// already died in an earlier recovery.
func (c *Config) Schedule(topo *hw.Topology, nodes int) []Fault {
	if c == nil {
		return nil
	}
	if len(c.Script) > 0 {
		return append([]Fault(nil), c.Script...)
	}
	kinds := c.applicableKinds(topo, nodes)
	max := c.MaxFaults
	if max == 0 {
		max = DefaultMaxFaults
	}
	var pairs [][2]hw.DeviceID
	for i := 0; i < topo.NumGPUs; i++ {
		for j := i + 1; j < topo.NumGPUs; j++ {
			if topo.LanesBetween(hw.DeviceID(i), hw.DeviceID(j)) > 0 {
				pairs = append(pairs, [2]hw.DeviceID{hw.DeviceID(i), hw.DeviceID(j)})
			}
		}
	}

	r := rng{state: c.Seed}
	var out []Fault
	at := units.Duration(0)
	for len(out) < max {
		at += exp(&r, c.MTBF)
		f := Fault{Kind: kinds[r.intn(len(kinds))], At: at}
		switch f.Kind {
		case GPUFail:
			f.GPU = hw.DeviceID(r.intn(topo.NumGPUs))
		case NVLinkFail:
			p := pairs[r.intn(len(pairs))]
			f.GPU, f.Peer = p[0], p[1]
		case HostPressure:
			// Claim 25-75% of host DRAM.
			frac := 0.25 + 0.5*r.float()
			f.HostLoss = units.Bytes(frac * float64(topo.HostMemory))
		}
		out = append(out, f)
	}
	return out
}

func (c *Config) applicableKinds(topo *hw.Topology, nodes int) []Kind {
	if len(c.Kinds) > 0 {
		return c.Kinds
	}
	kinds := []Kind{GPUFail, HostPressure}
	if topo.Switched || anyLanes(topo) {
		kinds = append(kinds, NVLinkFail)
	}
	if nodes > 1 {
		kinds = append(kinds, NICFlap)
	}
	return kinds
}

func anyLanes(t *hw.Topology) bool {
	for i := range t.NVLinkLanes {
		for _, l := range t.NVLinkLanes[i] {
			if l > 0 {
				return true
			}
		}
	}
	return false
}

// Canonical renders the config for job fingerprinting: every field
// that can change simulated behavior, in a fixed order.
func (c *Config) Canonical() string {
	if c == nil {
		return "faults=none"
	}
	s := fmt.Sprintf("faults=seed:%d,mtbf:%d,max:%d,detect:%d", c.Seed, c.MTBF, c.MaxFaults, c.DetectionDelay)
	for _, k := range c.Kinds {
		s += fmt.Sprintf(",kind:%v", k)
	}
	for _, f := range c.Script {
		s += fmt.Sprintf(",script:%v:%d:%d:%d:%d", f.Kind, f.At, f.GPU, f.Peer, f.HostLoss)
	}
	return s
}

// rng is a splitmix64 generator. Not math/rand: the byte-identical
// CSV contract must survive Go version bumps, so the stream is pinned
// here.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform int in [0, n). The tiny modulo bias is
// irrelevant for fault sampling.
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// exp samples an exponential inter-arrival gap with the given mean,
// clamped to at least one microsecond so schedules always advance.
func exp(r *rng, mean units.Duration) units.Duration {
	d := units.Duration(-float64(mean) * math.Log(1-r.float()))
	if d < units.Microsecond {
		d = units.Microsecond
	}
	return d
}
