package exec

import (
	"reflect"
	"testing"

	"mpress/internal/ckpt"
	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/units"
)

func buildMini(t *testing.T, minibatches int) *pipeline.Built {
	t.Helper()
	cfg := tinyModel()
	prec := model.MixedAdam()
	part, err := pipeline.PartitionModel(cfg, 4, pipeline.ComputeBalanced, pipeline.DAPPLE, prec, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipeline.Build(pipeline.BuildConfig{
		Model: cfg, Prec: prec, Part: part, Kind: pipeline.DAPPLE,
		MicrobatchSize: 2, Microbatches: 4, Minibatches: minibatches,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCheckpointAtEveryBoundary(t *testing.T) {
	const M = 6
	b := buildMini(t, M)
	topo := hw.DGX1()
	base, err := Run(Options{Topo: topo, Built: b, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}

	// An interval shorter than any minibatch snapshots at every
	// boundary: M-1 of them (the final state is never snapshotted).
	r, err := Run(Options{
		Topo: topo, Built: b, Mapping: IdentityMapping(4),
		Checkpoint: &CheckpointSpec{Every: units.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM != nil {
		t.Fatalf("OOM: %v", r.OOM)
	}
	if len(r.Checkpoints) != M-1 {
		t.Fatalf("got %d checkpoints, want %d", len(r.Checkpoints), M-1)
	}
	total := ckpt.Total(ckpt.StageBytes(b))
	for i, rec := range r.Checkpoints {
		if rec.Minibatch != i {
			t.Errorf("checkpoint %d covers minibatch %d", i, rec.Minibatch)
		}
		if rec.Bytes != total {
			t.Errorf("checkpoint %d payload %v, want %v", i, rec.Bytes, total)
		}
		if rec.End <= rec.Start {
			t.Errorf("checkpoint %d has empty span", i)
		}
		if i > 0 && rec.Start < r.Checkpoints[i-1].End {
			t.Errorf("checkpoints %d and %d overlap", i-1, i)
		}
	}
	if r.CheckpointBytes != units.Bytes(M-1)*total {
		t.Errorf("CheckpointBytes = %v", r.CheckpointBytes)
	}
	if r.Duration <= base.Duration {
		t.Errorf("checkpointing run (%v) not slower than baseline (%v)", r.Duration, base.Duration)
	}

	// A huge interval means the first boundary is always too early.
	quiet, err := Run(Options{
		Topo: topo, Built: b, Mapping: IdentityMapping(4),
		Checkpoint: &CheckpointSpec{Every: 3600 * units.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(quiet.Checkpoints) != 0 {
		t.Errorf("hour-interval run took %d checkpoints", len(quiet.Checkpoints))
	}
	if quiet.Duration != base.Duration {
		t.Errorf("idle checkpointing changed duration: %v vs %v", quiet.Duration, base.Duration)
	}

	if _, err := Run(Options{
		Topo: topo, Built: b, Mapping: IdentityMapping(4),
		Checkpoint: &CheckpointSpec{},
	}); err == nil {
		t.Error("zero checkpoint interval must be rejected")
	}
}

func TestFailureStopsRun(t *testing.T) {
	b := buildMini(t, 4)
	topo := hw.DGX1()
	base, err := Run(Options{Topo: topo, Built: b, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}

	failAt := base.Duration / 2
	r, err := Run(Options{
		Topo: topo, Built: b, Mapping: IdentityMapping(4),
		Checkpoint: &CheckpointSpec{Every: units.Microsecond},
		FailAt:     failAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Failure == nil || r.Failure.At != failAt {
		t.Fatalf("Failure = %+v, want fault at %v", r.Failure, failAt)
	}
	if r.Duration != failAt {
		t.Errorf("Duration = %v, want %v", r.Duration, failAt)
	}
	if r.SamplesPerSec != 0 || r.TFLOPS != 0 {
		t.Error("failed runs must not report throughput")
	}
	for _, rec := range r.Checkpoints {
		if rec.End > failAt {
			t.Errorf("checkpoint completed at %v, after the fault", rec.End)
		}
	}

	// A fault scheduled after the run drains must not fire — or
	// stretch the reported duration.
	late, err := Run(Options{
		Topo: topo, Built: b, Mapping: IdentityMapping(4),
		FailAt: base.Duration * 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if late.Failure != nil {
		t.Error("late fault fired on a drained run")
	}
	if late.Duration != base.Duration {
		t.Errorf("late fault stretched duration to %v, want %v", late.Duration, base.Duration)
	}
}

func TestResilienceDeterministic(t *testing.T) {
	b := buildMini(t, 4)
	opts := Options{
		Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4),
		Checkpoint: &CheckpointSpec{Every: units.Millisecond},
		FailAt:     200 * units.Millisecond,
	}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Checkpoints, c.Checkpoints) || a.Duration != c.Duration {
		t.Error("identical resilient runs diverged")
	}
}
