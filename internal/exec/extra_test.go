package exec

import (
	"strings"
	"testing"

	"mpress/internal/hw"
	"mpress/internal/pipeline"
	"mpress/internal/units"
)

func TestOOMResidentsPopulated(t *testing.T) {
	topo := hw.DGX1()
	topo.GPU.Memory = pipeline.RuntimeReserve + 40*units.MiB
	b := buildTiny(t, pipeline.DAPPLE, 4)
	r, err := Run(Options{Topo: topo, Built: b, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM == nil {
		t.Fatal("expected OOM")
	}
	if r.OOMResidents == nil {
		t.Fatal("OOMResidents missing")
	}
	if r.OOMResidents["reserve"] != pipeline.RuntimeReserve {
		t.Errorf("reserve entry = %v", r.OOMResidents["reserve"])
	}
	var counted units.Bytes
	for k, v := range r.OOMResidents {
		if v <= 0 {
			t.Errorf("non-positive resident %s = %v", k, v)
		}
		if !strings.HasPrefix(k, "stage") && k != "reserve" {
			t.Errorf("unexpected key %q", k)
		}
		counted += v
	}
	if counted == 0 {
		t.Error("no residents recorded")
	}
	// A successful run must not carry the diagnostic.
	ok, err := Run(Options{Topo: hw.DGX1(), Built: buildTiny(t, pipeline.DAPPLE, 4), Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if ok.OOMResidents != nil {
		t.Error("successful run has OOMResidents")
	}
}

// TestNonAdjacentMappingPaysPCIe: mapping consecutive stages to GPUs
// without direct NVLink (e.g. gpu0 and gpu5 on the cube mesh) forces
// boundary traffic onto the PCIe fallback and slows the run — the
// pressure that motivates the device-mapping search.
func TestNonAdjacentMappingPaysPCIe(t *testing.T) {
	b1 := buildTiny(t, pipeline.DAPPLE, 4)
	good, err := Run(Options{Topo: hw.DGX1(), Built: b1, Mapping: []hw.DeviceID{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	b2 := buildTiny(t, pipeline.DAPPLE, 4)
	// 0-5, 5-2, 2-7: all NVLink-unreachable hops on the DGX-1.
	bad, err := Run(Options{Topo: hw.DGX1(), Built: b2, Mapping: []hw.DeviceID{0, 5, 2, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Duration <= good.Duration {
		t.Errorf("unreachable mapping (%v) must be slower than adjacent (%v)",
			bad.Duration, good.Duration)
	}
}

// TestPipeDreamOverlapsMinibatches: async scheduling lets the second
// minibatch start before the first minibatch's optimizer step gates it,
// so PipeDream finishes the same work faster than DAPPLE.
func TestPipeDreamOverlapsMinibatches(t *testing.T) {
	pd := buildTiny(t, pipeline.PipeDream, 4)
	da := buildTiny(t, pipeline.DAPPLE, 4)
	rp, err := Run(Options{Topo: hw.DGX1(), Built: pd, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Run(Options{Topo: hw.DGX1(), Built: da, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Duration >= rd.Duration {
		t.Errorf("PipeDream (%v) must beat DAPPLE (%v) on the same work (no flush)",
			rp.Duration, rd.Duration)
	}
}

// TestComputeBusyBounded: no stream can be busier than the run is long,
// and the bottleneck stage must be meaningfully utilized.
func TestComputeBusyBounded(t *testing.T) {
	b := buildTiny(t, pipeline.DAPPLE, 4)
	r, err := Run(Options{Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	var max units.Duration
	for g, busy := range r.ComputeBusy {
		if busy > r.Duration {
			t.Errorf("gpu%d busy %v exceeds run %v", g, busy, r.Duration)
		}
		if busy > max {
			max = busy
		}
	}
	if float64(max) < 0.3*float64(r.Duration) {
		t.Errorf("bottleneck utilization %.0f%% suspiciously low",
			float64(max)/float64(r.Duration)*100)
	}
}

// TestSamplesPerSecConsistent: samples/s × duration = samples.
func TestSamplesPerSecConsistent(t *testing.T) {
	b := buildTiny(t, pipeline.DAPPLE, 4)
	r, err := Run(Options{Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	got := r.SamplesPerSec * r.Duration.Secondsf()
	want := float64(b.SamplesProcessed())
	if got < want*0.999 || got > want*1.001 {
		t.Errorf("samples/s inconsistent: %.2f vs %v", got, want)
	}
}

// TestFasterGPUFasterRun: the same job on A100s must finish sooner.
func TestFasterGPUFasterRun(t *testing.T) {
	v := buildTiny(t, pipeline.DAPPLE, 4)
	rv, err := Run(Options{Topo: hw.DGX1(), Built: v, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	a := buildTiny(t, pipeline.DAPPLE, 4)
	ra, err := Run(Options{Topo: hw.DGX2(), Built: a, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Duration >= rv.Duration {
		t.Errorf("A100 run (%v) must beat V100 run (%v)", ra.Duration, rv.Duration)
	}
}

// TestCapacityMonotonicity: if the job survives at capacity C, it
// survives at every larger capacity (with identical duration — more
// memory never changes timing for an uninstrumented run).
func TestCapacityMonotonicity(t *testing.T) {
	base := buildTiny(t, pipeline.DAPPLE, 4)
	ref, err := Run(Options{Topo: hw.DGX1(), Built: base, Mapping: IdentityMapping(4), Unbounded: true})
	if err != nil {
		t.Fatal(err)
	}
	var peak units.Bytes
	for _, g := range ref.GPUs {
		if g.Peak > peak {
			peak = g.Peak
		}
	}
	var prevOK bool
	for _, capacity := range []units.Bytes{peak - units.MiB, peak, peak + units.GiB, 2 * peak} {
		topo := hw.DGX1()
		topo.GPU.Memory = capacity
		b := buildTiny(t, pipeline.DAPPLE, 4)
		r, err := Run(Options{Topo: topo, Built: b, Mapping: IdentityMapping(4)})
		if err != nil {
			t.Fatal(err)
		}
		ok := r.OOM == nil
		if prevOK && !ok {
			t.Fatalf("survived at a smaller capacity but OOMs at %v", capacity)
		}
		if ok {
			if r.Duration != ref.Duration {
				t.Errorf("capacity %v changed timing: %v vs %v", capacity, r.Duration, ref.Duration)
			}
			prevOK = true
		}
	}
	if !prevOK {
		t.Error("job never survived, even at 2x its own peak")
	}
}
