package exec

import (
	"testing"

	"mpress/internal/graph"
	"mpress/internal/hw"
	"mpress/internal/pipeline"
	"mpress/internal/sim"
	"mpress/internal/units"
)

// TestGradSyncImmediate: a synchronizer that completes instantly must
// reproduce the unsynchronized run exactly — the gating is a pure
// pass-through when the all-reduce is free.
func TestGradSyncImmediate(t *testing.T) {
	for _, kind := range []pipeline.ScheduleKind{pipeline.PipeDream, pipeline.DAPPLE} {
		b := buildTiny(t, kind, 4)
		base, err := Run(Options{Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4)})
		if err != nil {
			t.Fatal(err)
		}
		calls := 0
		r, err := Run(Options{
			Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4),
			GradSync: func(*sim.Sim) GradSyncFn {
				return func(stage, minibatch int, bytes units.Bytes, done func()) {
					calls++
					if bytes <= 0 {
						t.Errorf("stage %d minibatch %d: no gradient payload", stage, minibatch)
					}
					done()
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Duration != base.Duration {
			t.Errorf("%v: immediate sync changed duration: %v vs %v", kind, r.Duration, base.Duration)
		}
		// One synchronization per (stage, minibatch).
		if want := b.NumStages() * b.Cfg.Minibatches; calls != want {
			t.Errorf("%v: %d sync calls, want %d", kind, calls, want)
		}
	}
}

// TestGradSyncDelaysOptimizer: a slow synchronizer must push every
// optimizer step past its stage's sync completion, lengthening the run.
func TestGradSyncDelaysOptimizer(t *testing.T) {
	b := buildTiny(t, pipeline.DAPPLE, 4)
	base, err := Run(Options{Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	const delay = 5 * units.Millisecond
	type key struct{ stage, mini int }
	syncEnd := map[key]sim.Time{}
	var clock *sim.Sim
	r, err := Run(Options{
		Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4),
		GradSync: func(s *sim.Sim) GradSyncFn {
			clock = s
			return func(stage, minibatch int, bytes units.Bytes, done func()) {
				k := key{stage, minibatch}
				s.At(s.Now()+delay, func() {
					syncEnd[k] = s.Now()
					done()
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if clock == nil {
		t.Fatal("GradSync factory never invoked")
	}
	if r.Duration <= base.Duration {
		t.Errorf("delayed sync did not lengthen run: %v vs base %v", r.Duration, base.Duration)
	}
	for s := 0; s < b.NumStages(); s++ {
		for q := 0; q < b.Cfg.Minibatches; q++ {
			end, ok := syncEnd[key{s, q}]
			if !ok {
				t.Fatalf("stage %d minibatch %d never synchronized", s, q)
			}
			for _, id := range b.OptOps[s][q] {
				if sp := r.Spans[id]; sp.Start < end {
					t.Errorf("stage %d minibatch %d: optimizer op %d started at %v before sync end %v",
						s, q, id, sp.Start, end)
				}
			}
		}
	}
	// Backward work itself must not be delayed: the sync only gates the
	// optimizer step, so every backward still runs before its stage's
	// sync completes being useful. Spot-check that at least one backward
	// op per stage finishes before that stage's last sync + delay slack.
	for k, id := range b.BwOps {
		if r.Spans[id].End == 0 && b.Graph.Op(id).Kind == graph.Backward {
			t.Errorf("backward op %v never ran", k)
		}
	}
}
