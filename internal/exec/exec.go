// Package exec runs a lowered training job (internal/pipeline.Built)
// on a simulated server (internal/hw + internal/fabric): it walks the
// dataflow graph event by event, occupying GPU compute streams and
// interconnect lanes, and accounting every tensor's residency against
// per-GPU memory capacity.
//
// This one component plays two roles from the paper's Fig. 5: it is
// the *emulator* the planner consults for feedback (run one iteration,
// observe memory and time), and the runtime *executor* that triggers
// memory-saving operators (swap-out/in, drop/recompute) in dependency
// order.
package exec

import (
	"context"
	"fmt"
	"sort"

	"mpress/internal/cluster"
	"mpress/internal/fabric"
	"mpress/internal/graph"
	"mpress/internal/grid"
	"mpress/internal/hw"
	"mpress/internal/memsim"
	"mpress/internal/pipeline"
	"mpress/internal/sim"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// TPSpec activates tensor-parallel modeling: the simulated devices are
// TP-rank-0 representatives of Degree-wide NVLink groups, and every
// Forward/Backward op is extended by its group's ring all-reduce
// (payloads from Built.TPFwAllReduce / TPBwAllReduce, timed by
// cluster.RingAllReduceTime over the group's hop bandwidth).
type TPSpec struct {
	// Degree is the TP group width; nil spec or Degree <= 1 disables
	// every TP code path.
	Degree int
	// HopBW is the NVLink bandwidth of one ring hop inside the group
	// (grid.TPRingBandwidth); Latency the per-step setup cost.
	HopBW   units.Bandwidth
	Latency units.Duration
}

// Options configures one simulated run.
type Options struct {
	Topo  *hw.Topology
	Built *pipeline.Built
	// Mapping assigns each pipeline stage to a GPU. len(Mapping) must
	// equal the stage count and entries must be distinct GPUs.
	Mapping []hw.DeviceID
	// D2DRoutes gives the striping plan for D2D swap operators, keyed
	// by the swap-out AND swap-in op IDs. Swap ops absent from this
	// map are routed over PCIe to host memory.
	D2DRoutes map[graph.OpID][]fabric.Part
	// InitiallySwapped marks persistent tensors that start in host
	// memory instead of on their GPU (their first use must be
	// preceded by an instrumented swap-in).
	InitiallySwapped map[tensor.ID]bool
	// Unbounded disables GPU capacity checks (used by planning passes
	// that need to measure demand beyond capacity).
	Unbounded bool
	// SampleMemory records a per-GPU memory snapshot at every
	// operator completion (the paper's Fig. 1 bottom curves).
	SampleMemory bool
	// AllowSharedDevices permits several stages on one GPU (virtual
	// pipeline stages); they share the GPU's compute stream and
	// memory. Without it, duplicate mapping entries are rejected.
	AllowSharedDevices bool
	// Ctx, when non-nil, cancels the run: the event loop polls
	// ctx.Err() every InterruptEvery events (default a few thousand)
	// and Run returns ctx's error instead of a result, so a cancelled
	// sweep stops mid-simulation instead of finishing a 200M-event run.
	Ctx context.Context
	// InterruptEvery overrides the cancellation polling stride; zero
	// keeps the simulator's default.
	InterruptEvery int64
	// Checkpoint, when non-nil, snapshots every stage's weights and
	// optimizer state to the host/NVMe tier at minibatch boundaries,
	// at least Every apart (internal/ckpt picks the interval). The
	// next minibatch's optimizer steps wait for the snapshot to drain.
	Checkpoint *CheckpointSpec
	// FailAt, when positive, injects a hardware fault at that
	// simulated time: the run stops dead and Result.Failure records
	// it. The rollback/re-plan/resume loop lives in internal/runner.
	FailAt units.Duration
	// TP, when non-nil with Degree > 1, appends each stage's
	// per-operator tensor-parallel all-reduces to its compute ops and
	// accounts their NVLink traffic in Result.TPAllReduceBytes.
	TP *TPSpec
	// SimWorkers, when positive, runs the event kernel in conservative
	// PDES mode (internal/sim/pdes.go) with that many drain goroutines,
	// partitioned per PlanPartitions. Results are byte-identical to the
	// serial kernel at every worker count; the knob changes only how
	// the simulator spends real time, so it must never join a job
	// fingerprint or plan key.
	SimWorkers int
	// SimLookahead overrides the PDES window span; zero derives it from
	// the topology's minimum nonzero link latency (fabric.MinLinkLatency).
	SimLookahead units.Duration
	// SimScheduler selects the kernel's event-store structure (auto,
	// heap, calendar). Scheduler choice never changes results.
	SimScheduler sim.SchedMode
	// GradSync, when non-nil, joins this run to its data-parallel
	// replicas (internal/cluster): called once at setup with the run's
	// clock, it returns the synchronizer invoked whenever a stage's
	// gradients for one minibatch become final (the stage's last
	// backward of that minibatch completes). The stage's
	// optimizer-step operators for that minibatch are held until the
	// synchronizer signals completion, so gradient all-reduce overlaps
	// the remaining backward compute and delays only the dependent
	// optimizer step.
	GradSync func(s *sim.Sim) GradSyncFn
}

// GradSyncFn models one data-parallel gradient synchronization: it is
// invoked at the simulated time stage's accumulated gradients for
// minibatch become final, and must invoke done exactly once at the
// synchronization's simulated completion time (possibly immediately).
type GradSyncFn func(stage, minibatch int, bytes units.Bytes, done func())

// MemSample is one point of the memory-over-time curve.
type MemSample struct {
	At    sim.Time
	InUse []units.Bytes // per GPU
}

// Span is an operator's simulated execution window.
type Span struct {
	Start sim.Time
	End   sim.Time
}

// Result summarizes one run.
type Result struct {
	// Duration is the simulated wall-clock of the whole run.
	Duration units.Duration
	// OOM is non-nil if the job died of GPU out-of-memory; the rest
	// of the result describes the partial run.
	OOM *memsim.OOMError
	// GPUs holds per-device memory statistics (peak is the key one).
	GPUs []memsim.Stats
	Host memsim.Stats
	// Spans[op] is each operator's execution window (zero if never
	// ran, e.g. after an OOM).
	Spans []Span
	// UsefulFLOPs excludes recomputation; TFLOPS and SamplesPerSec
	// are the paper's two throughput metrics.
	UsefulFLOPs   units.FLOPs
	TFLOPS        float64
	SamplesPerSec float64
	// ComputeBusy is per-GPU compute-stream occupancy.
	ComputeBusy []units.Duration
	// OOMResidents breaks down what occupied the failing device when
	// OOM hit, keyed "stage<N>/<class>" (plus "reserve"); nil when
	// the run succeeded. Sizes include only GPU-resident bytes.
	OOMResidents map[string]units.Bytes
	// Fabric aggregates interconnect traffic; NVMe is the SSD tier's
	// residency (only used when host memory spills over).
	Fabric fabric.Stats
	NVMe   memsim.Stats
	// MemorySamples is the Fig. 1 memory-over-time series (only when
	// Options.SampleMemory is set).
	MemorySamples []MemSample
	// Checkpoints lists completed snapshots (Options.Checkpoint), and
	// CheckpointBytes their cumulative payload.
	Checkpoints     []Checkpoint
	CheckpointBytes units.Bytes
	// Failure is non-nil when Options.FailAt cut the run short; the
	// result then describes the partial run up to the fault.
	Failure *Failure
	// TPAllReduceBytes is the NVLink traffic of tensor-parallel
	// per-operator all-reduces, summed over every TP group member
	// (zero without Options.TP).
	TPAllReduceBytes units.Bytes
	// Events is the number of simulator events the run consumed and
	// EventsPerSec the kernel's real-time processing rate — simulator
	// throughput (not a simulated quantity), reported for bench
	// records and planner tuning.
	Events       int64
	EventsPerSec float64
	// SimScheduler names the event structure the kernel ended on and
	// SimWindows counts PDES lookahead windows (zero for serial runs).
	// Like EventsPerSec, these describe the simulator, not the job —
	// they stay out of reports.
	SimScheduler string
	SimWindows   int64
}

// residency tracks where a tensor's bytes currently live.
type residency int

const (
	resUnallocated residency = iota
	resOnGPU
	resSwappedHost
	resSwappedNVMe
	resSwappedPeers
	resDropped
	resFreed
)

type engine struct {
	o       Options
	place   grid.Placement
	sim     *sim.Sim
	fab     *fabric.Fabric
	gpus    []*memsim.Device
	host    *memsim.Device
	nvme    *memsim.Device
	pinned  *memsim.PinnedPool
	compute []*sim.Queue

	g         *graph.Graph
	preds     []int
	succs     [][]graph.OpID
	lastFree  map[graph.OpID][]tensor.ID // tensors to free after op completes
	state     []residency
	pinnedBuf map[tensor.ID]units.Bytes // actual pinned buffer backing a host-swapped tensor

	spans        []Span
	oom          *memsim.OOMError
	oomResidents map[string]units.Bytes
	samples      []MemSample
	rate         units.FLOPSRate

	// Gradient-synchronization state (only when Options.GradSync set):
	// bwOf maps each backward op to its slot, bwLeft[s][q] counts stage
	// s's outstanding backward ops for minibatch q, and gradBytes[s] is
	// the stage's persistent gradient footprint (the all-reduce
	// payload).
	sync      GradSyncFn
	bwOf      map[graph.OpID]pipeline.SlotKey
	bwLeft    [][]int
	gradBytes []units.Bytes

	// Resilience state (resilience.go): ckpt is non-nil when periodic
	// checkpointing is on; failure records an injected fault; opsLeft
	// counts graph ops yet to complete so a late FailAt event can tell
	// a live run from a drained one; lastEnd is the latest real
	// completion time, the run duration when a spurious FailAt event
	// advanced the clock past the last op.
	tpBytes units.Bytes

	ckpt    *ckptState
	failure *Failure
	opsLeft int
	lastEnd sim.Time
}

// Run simulates the job and returns its result. Configuration errors
// (bad mapping, mismatched routes) return an error; OOM is reported
// inside the Result, mirroring how a real job fails at runtime.
func Run(o Options) (*Result, error) {
	if o.Topo == nil || o.Built == nil {
		return nil, fmt.Errorf("exec: Topo and Built are required")
	}
	S := o.Built.NumStages()
	if len(o.Mapping) != S {
		return nil, fmt.Errorf("exec: mapping has %d entries for %d stages", len(o.Mapping), S)
	}
	seen := make(map[hw.DeviceID]bool)
	for s, d := range o.Mapping {
		if !d.IsGPU() || int(d) >= o.Topo.NumGPUs {
			return nil, fmt.Errorf("exec: stage %d mapped to %v", s, d)
		}
		if seen[d] && !o.AllowSharedDevices {
			return nil, fmt.Errorf("exec: %v hosts two stages", d)
		}
		seen[d] = true
	}

	// The kernel is pooled: the planner emulates hundreds of candidate
	// plans per job, and recycling the event heap and lane timelines
	// keeps that loop allocation-free. Nothing in a Result aliases sim
	// state (lane sets only feed scalar counters into stats), so the
	// instance can be released as soon as Run returns.
	e := &engine{o: o, place: grid.Flat(o.Mapping), sim: sim.Get(), g: o.Built.Graph}
	defer sim.Put(e.sim)
	e.sim.SetScheduler(o.SimScheduler)
	if o.SimWorkers > 0 {
		pp := PlanPartitions(o.Topo, o.Mapping, o.SimLookahead)
		err := e.sim.EnablePDES(sim.PDESConfig{
			Partitions: pp.Partitions,
			Lookahead:  pp.Lookahead,
			Workers:    o.SimWorkers,
		})
		if err != nil {
			return nil, fmt.Errorf("exec: %w", err)
		}
	}
	e.fab = fabric.New(e.sim, o.Topo)
	e.gpus = make([]*memsim.Device, o.Topo.NumGPUs)
	e.compute = make([]*sim.Queue, o.Topo.NumGPUs)
	capacity := o.Topo.GPU.Memory
	if o.Unbounded {
		capacity = 0
	}
	for i := range e.gpus {
		e.gpus[i] = memsim.NewDevice(fmt.Sprintf("gpu%d", i), capacity)
		e.compute[i] = sim.NewQueue(e.sim, fmt.Sprintf("gpu%d-compute", i))
	}
	e.host = memsim.NewDevice("host", o.Topo.HostMemory)
	e.nvme = memsim.NewDevice("nvme", o.Topo.NVMeSize)
	e.pinned = memsim.NewPinnedPool(e.host)
	e.pinnedBuf = make(map[tensor.ID]units.Bytes)

	if o.Built.Cfg.Model.DType == tensor.FP32 {
		e.rate = o.Topo.GPU.EffectiveFP32()
	} else {
		e.rate = o.Topo.GPU.EffectiveFP16()
	}

	if ctx := o.Ctx; ctx != nil {
		e.sim.Interrupt = func() bool { return ctx.Err() != nil }
		e.sim.InterruptEvery = o.InterruptEvery
	}
	if o.GradSync != nil {
		e.sync = o.GradSync(e.sim)
	}

	if err := e.init(); err != nil {
		return nil, err
	}
	if e.oom == nil {
		e.start()
		e.sim.Run()
		if e.sim.Interrupted {
			return nil, o.Ctx.Err()
		}
	}
	return e.result(), nil
}

// init allocates the runtime reserve and persistent state, and builds
// the dependency bookkeeping.
func (e *engine) init() error {
	b := e.o.Built
	// Allocate spans first: a Result carries graph-length Spans even
	// when staging below dies of OOM before anything runs.
	e.spans = make([]Span, e.g.Len())
	reserved := make(map[hw.DeviceID]bool)
	for _, d := range e.o.Mapping {
		if reserved[d] {
			continue // co-located stages share one runtime reserve
		}
		reserved[d] = true
		e.gpus[d].MustAlloc(pipeline.RuntimeReserve, "runtime reserve")
	}
	e.state = make([]residency, e.g.Tensors.Len())
	for s, ids := range b.Persistent {
		dev := e.gpus[e.place.GPU(s)]
		for _, id := range ids {
			tn := e.g.Tensors.Get(id)
			if e.o.InitiallySwapped[id] {
				buf, err := e.pinned.Get(tn.Size)
				if err != nil {
					// Host capacity failures report as OOM like GPU
					// ones, so planner refinement and degraded-topology
					// replays see them (host-pressure faults squeeze
					// this path).
					e.oom = err.(*memsim.OOMError)
					e.oomResidents = e.residentsOn(e.oom.Device)
					return nil
				}
				e.pinnedBuf[id] = buf
				e.state[id] = resSwappedHost
				continue
			}
			if err := dev.Alloc(tn.Size, tn.Name); err != nil {
				e.oom = err.(*memsim.OOMError)
				e.oomResidents = e.residentsOn(e.oom.Device)
				return nil
			}
			e.state[id] = resOnGPU
		}
	}

	order, err := e.g.TopoOrder()
	if err != nil {
		return fmt.Errorf("exec: %w", err)
	}
	preds := e.g.Preds()
	e.preds = make([]int, e.g.Len())
	e.succs = make([][]graph.OpID, e.g.Len())
	for i, ps := range preds {
		e.preds[i] = len(ps)
		for _, p := range ps {
			e.succs[p] = append(e.succs[p], graph.OpID(i))
		}
	}
	// Memory-releasing successors (drops, swap-outs) dispatch before
	// memory-consuming ones so that a completed forward's evictions
	// free space before the next slot allocates — matching how the
	// runtime issues releases eagerly on the swap streams.
	releasing := func(id graph.OpID) bool {
		k := e.g.Op(id).Kind
		return k == graph.Drop || k == graph.SwapOut
	}
	for _, ss := range e.succs {
		sort.SliceStable(ss, func(a, b int) bool {
			ra, rb := releasing(ss[a]), releasing(ss[b])
			if ra != rb {
				return ra
			}
			return ss[a] < ss[b]
		})
	}
	if e.sync != nil {
		// Gate every optimizer-step op behind its minibatch's gradient
		// synchronization: one extra pseudo-dependency, released by
		// syncDone when the all-reduce completes.
		e.bwOf = make(map[graph.OpID]pipeline.SlotKey, len(b.BwOps))
		S := b.NumStages()
		e.bwLeft = make([][]int, S)
		e.gradBytes = make([]units.Bytes, S)
		for s := 0; s < S; s++ {
			e.bwLeft[s] = make([]int, b.Cfg.Minibatches)
			for _, id := range b.Persistent[s] {
				if tn := e.g.Tensors.Get(id); tn.Class == tensor.Gradient {
					e.gradBytes[s] += tn.Size
				}
			}
		}
		for key, id := range b.BwOps {
			e.bwOf[id] = key
			e.bwLeft[key.Stage][key.Microbatch/b.Cfg.Microbatches]++
		}
		for _, perMini := range b.OptOps {
			for _, ops := range perMini {
				for _, id := range ops {
					e.preds[id]++
				}
			}
		}
	}
	e.opsLeft = e.g.Len()
	if err := e.initResilience(); err != nil {
		return err
	}
	// Freeing points: after a tensor's last-consuming op, or after its
	// producer if nothing consumes it. Persistent tensors never free.
	live := e.g.Analyze(order)
	e.lastFree = make(map[graph.OpID][]tensor.ID)
	for t := 0; t < e.g.Tensors.Len(); t++ {
		id := tensor.ID(t)
		if b.PersistentSet[id] {
			continue
		}
		var at graph.OpID = -1
		if uses := live.Uses[id]; len(uses) > 0 {
			at = uses[len(uses)-1].Op
		} else if live.Def[id] >= 0 {
			at = order[live.Def[id]]
		}
		if at >= 0 {
			e.lastFree[at] = append(e.lastFree[at], id)
		}
	}
	return nil
}

// start dispatches every dependency-free op at time zero.
func (e *engine) start() {
	for i := range e.preds {
		if e.preds[i] == 0 {
			id := graph.OpID(i)
			e.sim.At(0, func() { e.dispatch(id) })
		}
	}
}

func (e *engine) fail(oom *memsim.OOMError) {
	if e.oom == nil {
		e.oom = oom
		e.oomResidents = e.residentsOn(oom.Device)
	}
	e.sim.Stop()
}

// residentsOn summarizes the GPU-resident bytes of the named device by
// stage and tensor class, for OOM diagnostics.
func (e *engine) residentsOn(device string) map[string]units.Bytes {
	out := map[string]units.Bytes{"reserve": pipeline.RuntimeReserve}
	for t, st := range e.state {
		if st != resOnGPU {
			continue
		}
		tn := e.g.Tensors.Get(tensor.ID(t))
		if e.gpuOf(tensor.ID(t)).String() != device {
			continue
		}
		out[fmt.Sprintf("stage%d/%s", tn.Stage, tn.Class)] += tn.Size
	}
	// D2D imports land on devices that do not host the tensor's
	// stage; they are visible as the residual against InUse.
	return out
}

// alloc charges size bytes for tensor use on dev, failing the run on
// OOM. It reports whether the allocation succeeded.
func (e *engine) alloc(dev hw.DeviceID, size units.Bytes, what string) bool {
	if err := e.gpus[dev].Alloc(size, what); err != nil {
		e.fail(err.(*memsim.OOMError))
		return false
	}
	return true
}

// gpuOf returns the device hosting a tensor.
func (e *engine) gpuOf(t tensor.ID) hw.DeviceID {
	return e.place.GPU(e.g.Tensors.Get(t).Stage)
}

// dispatch begins executing op: performs its dispatch-time memory
// effects and reserves its resource, scheduling completion.
func (e *engine) dispatch(id graph.OpID) {
	op := e.g.Op(id)
	now := e.sim.Now()
	switch op.Kind {
	case graph.Forward, graph.Backward, graph.OptimizerStep, graph.Recompute:
		gpu := e.place.GPU(op.Stage)
		if op.Kind == graph.Recompute {
			// Rematerialize the dropped activation.
			if e.state[op.Subject] != resDropped {
				panic(fmt.Sprintf("exec: recompute of %s in state %d",
					e.g.Tensors.Get(op.Subject).Name, e.state[op.Subject]))
			}
			if !e.alloc(gpu, e.g.Tensors.Get(op.Subject).Size, e.g.Tensors.Get(op.Subject).Name) {
				return
			}
			e.state[op.Subject] = resOnGPU
		} else {
			for _, out := range op.Outputs {
				tn := e.g.Tensors.Get(out)
				if e.o.Built.PersistentSet[out] || e.state[out] == resOnGPU {
					continue
				}
				if !e.alloc(gpu, tn.Size, tn.Name) {
					return
				}
				e.state[out] = resOnGPU
			}
		}
		dur := e.rate.ComputeTime(op.FLOPs)
		if op.Kind == graph.OptimizerStep {
			dur = e.o.Topo.GPU.HBM.TransferTime(op.MoveBytes)
		}
		ar := e.tpAllReduceDur(op)
		e.compute[gpu].Submit(dur, func(start, end sim.Time) {
			if ar > 0 {
				// The op is not done until its TP group's collective
				// drains; downstream consumers (the next stage's
				// transfer, the schedule chain) wait on the reduced
				// tensor, exactly like the compute itself.
				e.sim.At(end+ar, func() { e.complete(id, start, end+ar) })
				return
			}
			e.complete(id, start, end)
		})

	case graph.Transfer:
		in := e.g.Tensors.Get(op.Inputs[0])
		out := e.g.Tensors.Get(op.Outputs[0])
		src := e.place.GPU(in.Stage)
		dst := e.place.GPU(out.Stage)
		if !e.alloc(dst, out.Size, out.Name) {
			return
		}
		e.state[op.Outputs[0]] = resOnGPU
		if src == dst {
			// Co-located virtual stages hand off through device
			// memory at HBM speed.
			dur := e.o.Topo.GPU.HBM.TransferTime(op.MoveBytes)
			start := now
			e.sim.At(now+dur, func() { e.complete(id, start, now+dur) })
			return
		}
		start, end := e.fab.P2P(src, dst, op.MoveBytes, 0)
		e.sim.At(end, func() { e.complete(id, start, end) })

	case graph.SwapOut:
		gpu := e.gpuOf(op.Subject)
		size := e.g.Tensors.Get(op.Subject).Size
		if parts, ok := e.o.D2DRoutes[id]; ok {
			for _, p := range parts {
				if !e.alloc(p.Peer, p.Bytes, "d2d import:"+e.g.Tensors.Get(op.Subject).Name) {
					return
				}
			}
			start, end := e.fab.Scatter(gpu, parts)
			e.sim.At(end, func() {
				e.releaseSubject(op.Subject, gpu, resSwappedPeers)
				e.complete(id, start, end)
			})
			return
		}
		buf, err := e.pinned.Get(size)
		if err != nil {
			// Host memory exhausted: spill to the NVMe tier if the
			// server has one (the paper notes GPU-CPU swap extends to
			// "storage devices like NVMe SSDs").
			if e.fab.HasNVMe() {
				if nerr := e.nvme.Alloc(size, e.g.Tensors.Get(op.Subject).Name); nerr != nil {
					e.fail(nerr.(*memsim.OOMError))
					return
				}
				// Stage over PCIe and stream onto the SSDs; the two
				// legs pipeline, so the slower one bounds completion.
				start, e1 := e.fab.HostLink(gpu, size, true)
				_, e2 := e.fab.NVMeXfer(size)
				end := e1
				if e2 > end {
					end = e2
				}
				e.sim.At(end, func() {
					e.releaseSubject(op.Subject, gpu, resSwappedNVMe)
					e.complete(id, start, end)
				})
				return
			}
			e.fail(&memsim.OOMError{Device: "host", Requested: size, InUse: e.host.InUse(), Capacity: e.host.Capacity(), What: "pinned swap buffer"})
			return
		}
		e.pinnedBuf[op.Subject] = buf
		start, end := e.fab.HostLink(gpu, size, true)
		e.sim.At(end, func() {
			e.releaseSubject(op.Subject, gpu, resSwappedHost)
			e.complete(id, start, end)
		})

	case graph.SwapIn:
		gpu := e.gpuOf(op.Subject)
		tn := e.g.Tensors.Get(op.Subject)
		if !e.alloc(gpu, tn.Size, tn.Name) {
			return
		}
		if parts, ok := e.o.D2DRoutes[id]; ok {
			if e.state[op.Subject] != resSwappedPeers {
				panic(fmt.Sprintf("exec: d2d swap-in of %s in state %d", tn.Name, e.state[op.Subject]))
			}
			start, end := e.fab.Gather(gpu, parts)
			e.sim.At(end, func() {
				for _, p := range parts {
					e.gpus[p.Peer].Release(p.Bytes)
				}
				e.state[op.Subject] = resOnGPU
				e.complete(id, start, end)
			})
			return
		}
		if e.state[op.Subject] == resSwappedNVMe {
			// Read back through the SSD tier and PCIe.
			start, _ := e.fab.NVMeXfer(tn.Size)
			_, end := e.fab.HostLink(gpu, tn.Size, false)
			e.sim.At(end, func() {
				e.nvme.Release(tn.Size)
				e.state[op.Subject] = resOnGPU
				e.complete(id, start, end)
			})
			return
		}
		if e.state[op.Subject] != resSwappedHost {
			panic(fmt.Sprintf("exec: host swap-in of %s in state %d", tn.Name, e.state[op.Subject]))
		}
		start, end := e.fab.HostLink(gpu, tn.Size, false)
		e.sim.At(end, func() {
			e.pinned.Put(e.pinnedBuf[op.Subject])
			delete(e.pinnedBuf, op.Subject)
			e.state[op.Subject] = resOnGPU
			e.complete(id, start, end)
		})

	case graph.Drop:
		gpu := e.gpuOf(op.Subject)
		e.releaseSubject(op.Subject, gpu, resDropped)
		e.complete(id, now, now)

	default:
		panic(fmt.Sprintf("exec: unhandled op kind %v", op.Kind))
	}
}

// tpAllReduceDur returns the ring time of the tensor-parallel
// all-reduce appended to op — zero without TP or for op kinds that
// run no collective — and accounts its group-wide NVLink traffic:
// each of the Degree members moves 2(Degree-1)/Degree × payload, so
// the group total is 2(Degree-1) × payload, charged once since the
// one simulated device stands in for the whole group.
func (e *engine) tpAllReduceDur(op *graph.Op) units.Duration {
	tp := e.o.TP
	if tp == nil || tp.Degree <= 1 {
		return 0
	}
	var payload units.Bytes
	switch op.Kind {
	case graph.Forward:
		payload = e.o.Built.TPFwAllReduce[op.Stage]
	case graph.Backward:
		payload = e.o.Built.TPBwAllReduce[op.Stage]
	default:
		return 0
	}
	if payload <= 0 {
		return 0
	}
	e.tpBytes += units.Bytes(2*(tp.Degree-1)) * payload
	return cluster.RingAllReduceTime(tp.Degree, payload, tp.HopBW, tp.Latency)
}

// releaseSubject returns a swapped/dropped tensor's GPU bytes.
func (e *engine) releaseSubject(t tensor.ID, gpu hw.DeviceID, to residency) {
	if e.state[t] != resOnGPU {
		panic(fmt.Sprintf("exec: releasing %s in state %d", e.g.Tensors.Get(t).Name, e.state[t]))
	}
	e.gpus[gpu].Release(e.g.Tensors.Get(t).Size)
	e.state[t] = to
}

// complete finishes op: frees dead tensors and unblocks successors.
func (e *engine) complete(id graph.OpID, start, end sim.Time) {
	e.spans[id] = Span{Start: start, End: end}
	e.opsLeft--
	if end > e.lastEnd {
		e.lastEnd = end
	}
	for _, t := range e.lastFree[id] {
		if e.state[t] == resOnGPU {
			e.gpus[e.gpuOf(t)].Release(e.g.Tensors.Get(t).Size)
			e.state[t] = resFreed
		}
	}
	if e.o.SampleMemory {
		snap := make([]units.Bytes, len(e.gpus))
		for i, d := range e.gpus {
			snap[i] = d.InUse()
		}
		e.samples = append(e.samples, MemSample{At: end, InUse: snap})
	}
	for _, s := range e.succs[id] {
		e.preds[s]--
		if e.preds[s] == 0 {
			e.dispatch(s)
		}
	}
	if e.sync != nil {
		if key, ok := e.bwOf[id]; ok {
			q := key.Microbatch / e.o.Built.Cfg.Microbatches
			e.bwLeft[key.Stage][q]--
			if e.bwLeft[key.Stage][q] == 0 {
				s := key.Stage
				e.sync(s, q, e.gradBytes[s], func() { e.syncDone(s, q) })
			}
		}
	}
	if c := e.ckpt; c != nil {
		if q, ok := c.optMini[id]; ok {
			c.optLeft[q]--
			if c.optLeft[q] == 0 {
				e.boundary(q)
			}
		}
	}
}

// syncDone releases one (stage, minibatch)'s optimizer-step ops once
// their gradients have been synchronized across replicas.
func (e *engine) syncDone(stage, minibatch int) {
	for _, id := range e.o.Built.OptOps[stage][minibatch] {
		e.preds[id]--
		if e.preds[id] == 0 {
			e.dispatch(id)
		}
	}
}

func (e *engine) result() *Result {
	r := &Result{
		Duration:     e.sim.Now(),
		OOM:          e.oom,
		OOMResidents: e.oomResidents,
		Spans:        e.spans,
		UsefulFLOPs:  e.o.Built.UsefulFLOPs,
		Failure:      e.failure,
	}
	if e.failure == nil && e.o.FailAt > 0 {
		// The fault event fired after the graph drained (or never will
		// have a chance to): the clock may sit at FailAt, but the run
		// really ended at the last op completion.
		r.Duration = e.lastEnd
	}
	if c := e.ckpt; c != nil {
		r.Checkpoints = c.records
		for _, rec := range c.records {
			r.CheckpointBytes += rec.Bytes
		}
	}
	for _, d := range e.gpus {
		r.GPUs = append(r.GPUs, d.Stats())
	}
	r.TPAllReduceBytes = e.tpBytes
	r.Host = e.host.Stats()
	r.NVMe = e.nvme.Stats()
	r.Fabric = e.fab.Stats()
	r.MemorySamples = e.samples
	for _, q := range e.compute {
		r.ComputeBusy = append(r.ComputeBusy, q.BusyTime())
	}
	if e.oom == nil && e.failure == nil && r.Duration > 0 {
		secs := r.Duration.Secondsf()
		r.TFLOPS = r.UsefulFLOPs.TFLOPs() / secs
		r.SamplesPerSec = float64(e.o.Built.SamplesProcessed()) / secs
	}
	st := e.sim.Stats()
	r.Events = st.Events
	r.EventsPerSec = st.EventsPerSec
	r.SimScheduler = st.Scheduler
	r.SimWindows = st.Windows
	return r
}

// IdentityMapping returns the default stage→GPU assignment 0..n-1.
func IdentityMapping(n int) []hw.DeviceID {
	m := make([]hw.DeviceID, n)
	for i := range m {
		m[i] = hw.DeviceID(i)
	}
	return m
}
