package exec

// partition.go maps the executor's event space onto conservative-PDES
// partitions (internal/sim/pdes.go) and documents, per event class, why
// the graph cascade rides the coordinator partition.
//
// The executor's event classes:
//
//   - dispatch/complete: the operator cascade. A completion decrements
//     successor predecessor-counts and dispatches newly-ready ops
//     inline — including ops on *other* devices (a stage boundary's
//     activation handoff readies the next stage's op at the same
//     simulated instant). That is zero-lookahead cross-device coupling.
//   - memory accounting: alloc/free against memsim devices, performed
//     synchronously inside dispatch/complete — same class.
//   - fabric reservations: lane bookings are arithmetic against lane
//     timelines (no events of their own); only their completion
//     callbacks are events, scheduled by the op that reserved them.
//   - gradient sync: cluster.NewNet's collectives run on the shared
//     clock and gate optimizer steps across stages — cross-device by
//     construction.
//   - checkpoint/failure: global control events.
//
// Every class either couples devices at zero delay or is global, so
// partitioning the cascade by device would force the PDES window to a
// zero lookahead — no parallel window at all. The honest mapping is
// therefore: all graph events on partition 0 (the coordinator), one
// (empty) partition per device for symmetry with the grid placement.
// Byte-identity versus the serial kernel holds trivially and is still
// enforced end-to-end by the simkernel smoke test; the parallel-window
// machinery is exercised at the kernel level (internal/sim/pdes_test.go)
// and by the simkernel experiment's replica workload, where real
// lookahead exists (NIC latency between nodes).
//
// Measured on this container's graphs, that is also the right call:
// consecutive events on one device are tens of microseconds apart while
// the minimum link latency is 5–20µs, so a per-device partitioning
// would average roughly one event per window — all barrier, no overlap.

import (
	"mpress/internal/fabric"
	"mpress/internal/hw"
	"mpress/internal/units"
)

// PartitionPlan is the executor's event-space partitioning for
// conservative PDES.
type PartitionPlan struct {
	// Partitions is the total count: partition 0 is the coordinator
	// (all graph events), partitions 1..N map the distinct mapped
	// devices in ascending ID order.
	Partitions int
	// Device maps each mapped GPU to its partition index.
	Device map[hw.DeviceID]int
	// Lookahead is the window span: the caller's override, or the
	// topology's minimum nonzero link latency.
	Lookahead units.Duration
}

// PlanPartitions derives the PDES partition layout for a run: one
// coordinator partition plus one per distinct mapped device, with the
// lookahead taken from the topology's fastest link unless overridden.
func PlanPartitions(topo *hw.Topology, mapping []hw.DeviceID, lookahead units.Duration) PartitionPlan {
	if lookahead <= 0 {
		lookahead = fabric.MinLinkLatency(topo)
	}
	seen := make(map[hw.DeviceID]bool, len(mapping))
	var devs []hw.DeviceID
	for _, d := range mapping {
		if !seen[d] {
			seen[d] = true
			devs = append(devs, d)
		}
	}
	// Ascending device order keeps the layout canonical for any
	// permutation of the same mapping.
	for i := 1; i < len(devs); i++ {
		for j := i; j > 0 && devs[j] < devs[j-1]; j-- {
			devs[j], devs[j-1] = devs[j-1], devs[j]
		}
	}
	pp := PartitionPlan{Partitions: 1 + len(devs), Device: make(map[hw.DeviceID]int, len(devs)), Lookahead: lookahead}
	for i, d := range devs {
		pp.Device[d] = i + 1
	}
	return pp
}
