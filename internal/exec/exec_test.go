package exec

import (
	"testing"

	"mpress/internal/fabric"
	"mpress/internal/graph"
	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// tinyModel is small enough to simulate instantly but structured like
// the real variants.
func tinyModel() model.Config {
	return model.Config{
		Name: "Tiny", Arch: model.GPT,
		Layers: 8, Hidden: 512, Heads: 8, SeqLen: 128, Vocab: 4096,
		DType: tensor.FP16,
	}
}

func buildTiny(t *testing.T, kind pipeline.ScheduleKind, stages int) *pipeline.Built {
	return buildTinyM(t, kind, stages, 4)
}

func buildTinyM(t *testing.T, kind pipeline.ScheduleKind, stages, micro int) *pipeline.Built {
	t.Helper()
	cfg := tinyModel()
	prec := model.MixedAdam()
	part, err := pipeline.PartitionModel(cfg, stages, pipeline.ComputeBalanced, kind, prec, 2, micro)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipeline.Build(pipeline.BuildConfig{
		Model: cfg, Prec: prec, Part: part, Kind: kind,
		MicrobatchSize: 2, Microbatches: micro, Minibatches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRunCompletes(t *testing.T) {
	for _, kind := range []pipeline.ScheduleKind{pipeline.PipeDream, pipeline.DAPPLE, pipeline.GPipe} {
		b := buildTiny(t, kind, 4)
		r, err := Run(Options{Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4)})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if r.OOM != nil {
			t.Fatalf("%v: unexpected OOM: %v", kind, r.OOM)
		}
		if r.Duration <= 0 || r.TFLOPS <= 0 || r.SamplesPerSec <= 0 {
			t.Errorf("%v: degenerate result %+v", kind, r)
		}
		for i, sp := range r.Spans {
			if sp.End < sp.Start {
				t.Errorf("%v: op %d span inverted", kind, i)
			}
			if sp.End == 0 && sp.Start == 0 && b.Graph.Op(graph.OpID(i)).Kind != graph.Drop {
				// Drop ops may legitimately run at t=0... but only ops
				// that ran have spans; everything must have run.
				if b.Graph.Op(graph.OpID(i)).Name != "" && i > 0 {
					// The first op can legitimately start at 0.
					continue
				}
			}
		}
		// All GPU memory besides the reserve and persistent state must
		// be returned at the end.
		for s := 0; s < 4; s++ {
			var persistent units.Bytes
			for _, id := range b.Persistent[s] {
				persistent += b.Graph.Tensors.Get(id).Size
			}
			want := persistent + pipeline.RuntimeReserve
			if got := r.GPUs[s].InUse; got != want {
				t.Errorf("%v: gpu%d leaks memory: in use %v, want %v", kind, s, got, want)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	b1 := buildTiny(t, pipeline.DAPPLE, 4)
	b2 := buildTiny(t, pipeline.DAPPLE, 4)
	r1, err := Run(Options{Topo: hw.DGX1(), Built: b1, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Options{Topo: hw.DGX1(), Built: b2, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Duration != r2.Duration {
		t.Errorf("durations differ: %v vs %v", r1.Duration, r2.Duration)
	}
	for i := range r1.GPUs {
		if r1.GPUs[i].Peak != r2.GPUs[i].Peak {
			t.Errorf("gpu%d peaks differ", i)
		}
	}
}

func TestRunRejectsBadMapping(t *testing.T) {
	b := buildTiny(t, pipeline.DAPPLE, 4)
	topo := hw.DGX1()
	cases := [][]hw.DeviceID{
		nil,
		{0, 1, 2},          // too short
		{0, 1, 2, 2},       // duplicate
		{0, 1, 2, 99},      // out of range
		{0, 1, 2, hw.Host}, // not a GPU
	}
	for _, m := range cases {
		if _, err := Run(Options{Topo: topo, Built: b, Mapping: m}); err == nil {
			t.Errorf("mapping %v accepted", m)
		}
	}
}

func TestPipeDreamSlowerSchedulesMoreMemory(t *testing.T) {
	// GPipe retains all microbatches' activations; 1F1B retains at
	// most numStages-s. With 8 microbatches per minibatch, GPipe's
	// stage-0 peak must exceed DAPPLE's (which caps at 4 in flight).
	gp := buildTinyM(t, pipeline.GPipe, 4, 8)
	da := buildTinyM(t, pipeline.DAPPLE, 4, 8)
	rg, err := Run(Options{Topo: hw.DGX1(), Built: gp, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Run(Options{Topo: hw.DGX1(), Built: da, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if rg.GPUs[0].Peak <= rd.GPUs[0].Peak {
		t.Errorf("GPipe stage-0 peak %v must exceed DAPPLE's %v", rg.GPUs[0].Peak, rd.GPUs[0].Peak)
	}
}

func TestMemoryImbalanceAcrossStages(t *testing.T) {
	// Fig. 2: earlier stages peak higher under 1F1B.
	b := buildTiny(t, pipeline.PipeDream, 4)
	r, err := Run(Options{Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if r.GPUs[0].Peak <= r.GPUs[3].Peak {
		t.Errorf("stage-0 peak %v must exceed stage-3 peak %v", r.GPUs[0].Peak, r.GPUs[3].Peak)
	}
}

func TestPeakTracksAnalyticDemand(t *testing.T) {
	// The simulated peak should approximate the closed-form Demand
	// model for a synchronous schedule.
	b := buildTiny(t, pipeline.DAPPLE, 4)
	r, err := Run(Options{Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	d := pipeline.Demand(b.Cfg.Model, b.Cfg.Prec, b.Cfg.Part, pipeline.DAPPLE, 2, 4)
	for s := 0; s < 4; s++ {
		got := float64(r.GPUs[s].Peak)
		want := float64(d[s])
		if got < want*0.7 || got > want*1.3 {
			t.Errorf("stage %d: simulated peak %v vs analytic %v", s, r.GPUs[s].Peak, d[s])
		}
	}
}

func TestOOMDetected(t *testing.T) {
	topo := hw.DGX1()
	topo.GPU.Memory = pipeline.RuntimeReserve + 20*units.MiB
	b := buildTiny(t, pipeline.DAPPLE, 4)
	r, err := Run(Options{Topo: topo, Built: b, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM == nil {
		t.Fatal("expected OOM on a 20MiB GPU")
	}
	if r.TFLOPS != 0 {
		t.Error("OOM result must not report throughput")
	}
}

func TestUnboundedMeasuresDemand(t *testing.T) {
	topo := hw.DGX1()
	topo.GPU.Memory = pipeline.RuntimeReserve + 20*units.MiB
	b := buildTiny(t, pipeline.DAPPLE, 4)
	r, err := Run(Options{Topo: topo, Built: b, Mapping: IdentityMapping(4), Unbounded: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM != nil {
		t.Fatalf("unbounded run must not OOM: %v", r.OOM)
	}
	if r.GPUs[0].Peak <= topo.GPU.Memory {
		t.Errorf("peak %v should exceed the tiny capacity", r.GPUs[0].Peak)
	}
}

// instrument applies recomputation to every stage-0 block activation
// of every microbatch.
func instrumentRecompute(t *testing.T, b *pipeline.Built) {
	t.Helper()
	for m := 0; m < b.TotalMicrobatches; m++ {
		k := pipeline.SlotKey{Stage: 0, Microbatch: m}
		for _, id := range b.Acts[k] {
			fl, ok := b.RecomputeFLOPs[id]
			if !ok {
				continue
			}
			b.Graph.InstrumentRecompute(id, b.FwOps[k], b.BwOps[k], b.PrevOnStage[b.BwOps[k]], fl)
		}
	}
	if err := b.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecomputeSavesMemoryCostsTime(t *testing.T) {
	plain := buildTiny(t, pipeline.DAPPLE, 4)
	rp, err := Run(Options{Topo: hw.DGX1(), Built: plain, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	rec := buildTiny(t, pipeline.DAPPLE, 4)
	instrumentRecompute(t, rec)
	rr, err := Run(Options{Topo: hw.DGX1(), Built: rec, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if rr.OOM != nil {
		t.Fatal(rr.OOM)
	}
	if rr.GPUs[0].Peak >= rp.GPUs[0].Peak {
		t.Errorf("recompute peak %v must beat plain %v", rr.GPUs[0].Peak, rp.GPUs[0].Peak)
	}
	if rr.Duration < rp.Duration {
		t.Errorf("recompute duration %v must not beat plain %v", rr.Duration, rp.Duration)
	}
	// Useful FLOPs (the TFLOPS numerator) must not count recompute.
	if rr.UsefulFLOPs != rp.UsefulFLOPs {
		t.Error("recompute inflated useful FLOPs")
	}
}

// instrumentSwap routes every stage-0 block activation through a swap.
func instrumentSwap(t *testing.T, b *pipeline.Built, routes map[graph.OpID][]fabric.Part, d2d bool) {
	t.Helper()
	for m := 0; m < b.TotalMicrobatches; m++ {
		k := pipeline.SlotKey{Stage: 0, Microbatch: m}
		for _, id := range b.Acts[k] {
			if _, ok := b.RecomputeFLOPs[id]; !ok {
				continue
			}
			route := "h2d"
			if d2d {
				route = "d2d"
			}
			pair := b.Graph.InstrumentSwap(id, b.FwOps[k], b.BwOps[k], b.PrevOnStage[b.BwOps[k]], route)
			if d2d {
				size := b.Graph.Tensors.Get(id).Size
				parts := []fabric.Part{
					{Peer: 3, Bytes: size / 2},
					{Peer: 2, Bytes: size - size/2},
				}
				routes[pair.Out] = parts
				routes[pair.In] = parts
			}
		}
	}
	if err := b.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHostSwapSavesMemory(t *testing.T) {
	plain := buildTiny(t, pipeline.DAPPLE, 4)
	rp, _ := Run(Options{Topo: hw.DGX1(), Built: plain, Mapping: IdentityMapping(4)})

	sw := buildTiny(t, pipeline.DAPPLE, 4)
	routes := map[graph.OpID][]fabric.Part{}
	instrumentSwap(t, sw, routes, false)
	rs, err := Run(Options{Topo: hw.DGX1(), Built: sw, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if rs.OOM != nil {
		t.Fatal(rs.OOM)
	}
	// On this tiny model the PCIe drain is slower than the fill rate,
	// so the warmup spike still bounds the peak (the paper's "tension
	// between the huge amount of tensors that demand swapping and the
	// limited PCI-e bandwidth"); transient prefetch may even nudge it
	// up slightly. The durable saving shows in the host residency.
	if float64(rs.GPUs[0].Peak) > float64(rp.GPUs[0].Peak)*1.05 {
		t.Errorf("swap peak %v far exceeds plain %v", rs.GPUs[0].Peak, rp.GPUs[0].Peak)
	}
	if rs.Host.Peak == 0 {
		t.Error("host swap must use host memory")
	}
	if rs.Duration <= rp.Duration {
		t.Errorf("PCIe swap should slow the tiny job: %v vs %v", rs.Duration, rp.Duration)
	}
}

func TestD2DSwapFasterThanHostSwap(t *testing.T) {
	host := buildTiny(t, pipeline.DAPPLE, 4)
	hostRoutes := map[graph.OpID][]fabric.Part{}
	instrumentSwap(t, host, hostRoutes, false)
	rh, err := Run(Options{Topo: hw.DGX1(), Built: host, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}

	d2d := buildTiny(t, pipeline.DAPPLE, 4)
	d2dRoutes := map[graph.OpID][]fabric.Part{}
	instrumentSwap(t, d2d, d2dRoutes, true)
	rd, err := Run(Options{Topo: hw.DGX1(), Built: d2d, Mapping: IdentityMapping(4), D2DRoutes: d2dRoutes})
	if err != nil {
		t.Fatal(err)
	}
	if rd.OOM != nil {
		t.Fatal(rd.OOM)
	}
	if rd.Duration >= rh.Duration {
		t.Errorf("D2D swap %v must beat GPU-CPU swap %v", rd.Duration, rh.Duration)
	}
	// The peers that imported stripes must have seen extra peak usage.
	var persistent3 units.Bytes
	for _, id := range d2d.Persistent[3] {
		persistent3 += d2d.Graph.Tensors.Get(id).Size
	}
	if rd.GPUs[3].Peak <= persistent3+pipeline.RuntimeReserve {
		t.Error("peer gpu3 shows no imported stripes")
	}
}

func TestInitiallySwappedPersistent(t *testing.T) {
	b := buildTiny(t, pipeline.DAPPLE, 4)
	// Start all stage-0 optimizer states on the host and never touch
	// them (no optimizer use instrumentation here; we only check
	// placement accounting).
	swapped := map[tensor.ID]bool{}
	var optBytes units.Bytes
	for _, id := range b.Persistent[0] {
		tn := b.Graph.Tensors.Get(id)
		if tn.Class == tensor.OptimizerState {
			swapped[id] = true
			optBytes += tn.Size
		}
	}
	r, err := Run(Options{Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4), InitiallySwapped: swapped})
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := Run(Options{Topo: hw.DGX1(), Built: buildTiny(t, pipeline.DAPPLE, 4), Mapping: IdentityMapping(4)})
	if got, want := plain.GPUs[0].Peak-r.GPUs[0].Peak, optBytes; got != want {
		t.Errorf("initially-swapped saves %v on gpu0, want %v", got, want)
	}
	if r.Host.Peak < optBytes {
		t.Errorf("host must hold the swapped state: %v < %v", r.Host.Peak, optBytes)
	}
}

func TestNonIdentityMapping(t *testing.T) {
	b := buildTiny(t, pipeline.DAPPLE, 4)
	r, err := Run(Options{Topo: hw.DGX1(), Built: b, Mapping: []hw.DeviceID{3, 2, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM != nil {
		t.Fatal(r.OOM)
	}
	// Stage 0's memory pressure must follow the mapping to gpu3.
	if r.GPUs[3].Peak <= r.GPUs[0].Peak {
		t.Errorf("reversed mapping: gpu3 peak %v should exceed gpu0 %v", r.GPUs[3].Peak, r.GPUs[0].Peak)
	}
}

func TestIdentityMappingHelper(t *testing.T) {
	m := IdentityMapping(3)
	if len(m) != 3 || m[0] != 0 || m[2] != 2 {
		t.Errorf("IdentityMapping = %v", m)
	}
}
