package exec

import (
	"testing"

	"mpress/internal/fabric"
	"mpress/internal/graph"
	"mpress/internal/hw"
	"mpress/internal/pipeline"
	"mpress/internal/units"
)

// TestHostSwapSpillsToNVMe: when host memory is too small for the
// pinned pool, swap traffic spills onto the SSD tier instead of dying.
func TestHostSwapSpillsToNVMe(t *testing.T) {
	topo := hw.DGX1WithNVMe()
	topo.HostMemory = 4 * units.MiB // far below the swapped activations
	b := buildTiny(t, pipeline.DAPPLE, 4)
	routes := map[graph.OpID][]fabric.Part{}
	instrumentSwap(t, b, routes, false)
	r, err := Run(Options{Topo: topo, Built: b, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM != nil {
		t.Fatalf("spill path should save the job: %v", r.OOM)
	}
	if r.NVMe.Peak == 0 {
		t.Error("no NVMe residency recorded despite host exhaustion")
	}
	if r.Fabric.NVMeBytes == 0 {
		t.Error("no NVMe traffic recorded")
	}
	// NVMe round trips must fully return the tier's bytes by the end.
	if r.NVMe.InUse != 0 {
		t.Errorf("NVMe leaks %v", r.NVMe.InUse)
	}
}

// TestHostSwapWithoutNVMeFails: the same tiny host with no SSD tier is
// a hard OOM.
func TestHostSwapWithoutNVMeFails(t *testing.T) {
	topo := hw.DGX1()
	topo.HostMemory = 4 * units.MiB
	b := buildTiny(t, pipeline.DAPPLE, 4)
	routes := map[graph.OpID][]fabric.Part{}
	instrumentSwap(t, b, routes, false)
	r, err := Run(Options{Topo: topo, Built: b, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM == nil {
		t.Fatal("expected host OOM without an NVMe tier")
	}
	if r.OOM.Device != "host" {
		t.Errorf("OOM on %s, want host", r.OOM.Device)
	}
}

// TestNVMeSpillSlowerThanHost: the SSD path must cost more time than
// plain host swapping.
func TestNVMeSpillSlowerThanHost(t *testing.T) {
	host := buildTiny(t, pipeline.DAPPLE, 4)
	routes := map[graph.OpID][]fabric.Part{}
	instrumentSwap(t, host, routes, false)
	rh, err := Run(Options{Topo: hw.DGX1WithNVMe(), Built: host, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}

	spill := buildTiny(t, pipeline.DAPPLE, 4)
	routes2 := map[graph.OpID][]fabric.Part{}
	instrumentSwap(t, spill, routes2, false)
	topo := hw.DGX1WithNVMe()
	topo.HostMemory = 4 * units.MiB
	topo.NVMeBW = units.GBps(2) // slow SSDs make the difference visible
	rs, err := Run(Options{Topo: topo, Built: spill, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if rs.OOM != nil {
		t.Fatal(rs.OOM)
	}
	if rs.Duration <= rh.Duration {
		t.Errorf("NVMe spill (%v) should be slower than host swap (%v)", rs.Duration, rh.Duration)
	}
}

// TestMemorySampling: the Fig. 1 curves — samples are time-ordered,
// cover every GPU, and their maxima match the device peaks.
func TestMemorySampling(t *testing.T) {
	b := buildTiny(t, pipeline.PipeDream, 4)
	r, err := Run(Options{Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4), SampleMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MemorySamples) == 0 {
		t.Fatal("no samples recorded")
	}
	maxSeen := make([]units.Bytes, len(r.GPUs))
	var prev units.Duration
	for _, s := range r.MemorySamples {
		if units.Duration(s.At) < prev {
			t.Fatal("samples out of order")
		}
		prev = units.Duration(s.At)
		if len(s.InUse) != len(r.GPUs) {
			t.Fatalf("sample covers %d GPUs", len(s.InUse))
		}
		for g, v := range s.InUse {
			if v > maxSeen[g] {
				maxSeen[g] = v
			}
		}
	}
	for g := range maxSeen {
		if maxSeen[g] > r.GPUs[g].Peak {
			t.Errorf("gpu%d sampled %v above device peak %v", g, maxSeen[g], r.GPUs[g].Peak)
		}
	}
	// Stage-0's curve must dominate stage-3's (the Fig. 1 shape).
	if maxSeen[0] <= maxSeen[3] {
		t.Errorf("sampled curves lost the imbalance: %v vs %v", maxSeen[0], maxSeen[3])
	}
	// Sampling off => no samples.
	b2 := buildTiny(t, pipeline.PipeDream, 4)
	r2, _ := Run(Options{Topo: hw.DGX1(), Built: b2, Mapping: IdentityMapping(4)})
	if r2.MemorySamples != nil {
		t.Error("samples recorded without SampleMemory")
	}
}

// TestFabricStatsInResult: a pipeline run reports NVLink boundary
// traffic and (with host swaps) PCIe traffic.
func TestFabricStatsInResult(t *testing.T) {
	b := buildTiny(t, pipeline.DAPPLE, 4)
	r, err := Run(Options{Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Fabric.NVLinkBytes == 0 {
		t.Error("boundary transfers must appear as NVLink traffic")
	}
	if r.Fabric.PCIeBytes != 0 {
		t.Errorf("plain run reports PCIe traffic: %v", r.Fabric.PCIeBytes)
	}
	sw := buildTiny(t, pipeline.DAPPLE, 4)
	instrumentSwap(t, sw, map[graph.OpID][]fabric.Part{}, false)
	rs, err := Run(Options{Topo: hw.DGX1(), Built: sw, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Fabric.PCIeBytes == 0 {
		t.Error("host swaps must appear as PCIe traffic")
	}
}
