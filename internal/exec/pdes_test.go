package exec

import (
	"reflect"
	"testing"

	"mpress/internal/hw"
	"mpress/internal/pipeline"
	"mpress/internal/sim"
	"mpress/internal/units"
)

// stripKernelStats zeroes the fields that describe the simulator rather
// than the job (real-time rates, scheduler name, window counts) so the
// rest of the Result can be compared structurally.
func stripKernelStats(r *Result) {
	r.EventsPerSec = 0
	r.SimScheduler = ""
	r.SimWindows = 0
}

// TestPDESMatchesSerialResult is the exec-level byte-identity check:
// the full Result — spans, memory peaks, fabric traffic, throughput,
// event count — is identical with the PDES kernel at several worker
// counts and under every scheduler, for each pipeline system.
func TestPDESMatchesSerialResult(t *testing.T) {
	for _, kind := range []pipeline.ScheduleKind{pipeline.PipeDream, pipeline.DAPPLE} {
		b := buildTiny(t, kind, 4)
		base, err := Run(Options{Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4)})
		if err != nil {
			t.Fatal(err)
		}
		stripKernelStats(base)
		for _, workers := range []int{1, 2, 8} {
			for _, sched := range []string{"auto", "heap", "calendar"} {
				mode, err := sim.ParseSchedMode(sched)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Run(Options{
					Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4),
					SimWorkers: workers, SimScheduler: mode,
				})
				if err != nil {
					t.Fatalf("%v workers=%d sched=%s: %v", kind, workers, sched, err)
				}
				if got.SimWindows == 0 {
					t.Fatalf("%v workers=%d: PDES run reported zero windows", kind, workers)
				}
				stripKernelStats(got)
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("%v workers=%d sched=%s: PDES result diverged from serial", kind, workers, sched)
				}
			}
		}
	}
}

// TestPDESMatchesSerialOOM pins the Stop path: an OOM abort halts the
// PDES run at exactly the serial point (same OOM record, same spans).
func TestPDESMatchesSerialOOM(t *testing.T) {
	topo := hw.DGX1()
	// Just enough memory that setup succeeds and the run OOMs a few
	// events in — the abort goes through Sim.Stop from inside an event.
	topo.GPU.Memory = pipeline.RuntimeReserve + 220*units.MiB
	b := buildTiny(t, pipeline.PipeDream, 4)
	base, err := Run(Options{Topo: topo, Built: b, Mapping: IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if base.OOM == nil {
		t.Fatal("workload did not OOM; the stop path is untested")
	}
	stripKernelStats(base)
	for _, workers := range []int{1, 8} {
		got, err := Run(Options{
			Topo: topo, Built: b, Mapping: IdentityMapping(4), SimWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		stripKernelStats(got)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: PDES OOM result diverged from serial", workers)
		}
	}
}

// TestPlanPartitions pins the layout: coordinator plus one partition
// per distinct device, canonical under mapping permutation, lookahead
// from the fastest link unless overridden.
func TestPlanPartitions(t *testing.T) {
	topo := hw.DGX1()
	pp := PlanPartitions(topo, []hw.DeviceID{2, 0, 2, 1}, 0)
	if pp.Partitions != 4 {
		t.Fatalf("Partitions = %d, want 4", pp.Partitions)
	}
	want := map[hw.DeviceID]int{0: 1, 1: 2, 2: 3}
	if !reflect.DeepEqual(pp.Device, want) {
		t.Fatalf("Device = %v, want %v", pp.Device, want)
	}
	if pp.Lookahead != topo.NVLinkLatency {
		t.Fatalf("Lookahead = %v, want NVLink latency %v", pp.Lookahead, topo.NVLinkLatency)
	}
	if got := PlanPartitions(topo, []hw.DeviceID{0, 1, 2}, 42); got.Lookahead != 42 {
		t.Fatalf("override Lookahead = %v, want 42", got.Lookahead)
	}
}
