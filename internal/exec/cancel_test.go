package exec

import (
	"context"
	"errors"
	"testing"

	"mpress/internal/hw"
	"mpress/internal/pipeline"
)

func TestRunHonorsCancelledContext(t *testing.T) {
	b := buildTiny(t, pipeline.DAPPLE, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A tight polling stride so even this tiny run notices the
	// cancellation before draining its events.
	_, err := Run(Options{Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4), Ctx: ctx, InterruptEvery: 16})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunIgnoresLiveContext(t *testing.T) {
	b := buildTiny(t, pipeline.DAPPLE, 4)
	r, err := Run(Options{Topo: hw.DGX1(), Built: b, Mapping: IdentityMapping(4), Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM != nil || r.Duration <= 0 {
		t.Errorf("degenerate result under a live context: %+v", r)
	}
}
