package exec

import (
	"testing"

	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// buildVirtual lowers the tiny model with more stages than GPUs.
func buildVirtual(t *testing.T, stages int) *pipeline.Built {
	t.Helper()
	cfg := model.Config{
		Name: "Tiny", Arch: model.GPT,
		Layers: 8, Hidden: 512, Heads: 8, SeqLen: 128, Vocab: 4096,
		DType: tensor.FP16,
	}
	prec := model.MixedAdam()
	part, err := pipeline.PartitionModel(cfg, stages, pipeline.ComputeBalanced, pipeline.DAPPLE, prec, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipeline.Build(pipeline.BuildConfig{
		Model: cfg, Prec: prec, Part: part, Kind: pipeline.DAPPLE,
		MicrobatchSize: 2, Microbatches: 8, Minibatches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// wraparound maps stage s to GPU s % gpus (virtual pipeline stages).
func wraparound(stages, gpus int) []hw.DeviceID {
	m := make([]hw.DeviceID, stages)
	for s := range m {
		m[s] = hw.DeviceID(s % gpus)
	}
	return m
}

func TestVirtualStagesRun(t *testing.T) {
	b := buildVirtual(t, 8) // 8 stages on 4 GPUs
	topo := hw.DGX1()
	r, err := Run(Options{
		Topo: topo, Built: b,
		Mapping:            wraparound(8, 4),
		AllowSharedDevices: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM != nil {
		t.Fatal(r.OOM)
	}
	if r.TFLOPS <= 0 {
		t.Error("no throughput")
	}
	// Only the four used GPUs carry memory; each holds one reserve
	// even though it hosts two stages.
	for g := 0; g < 4; g++ {
		var persistent units.Bytes
		for _, s := range []int{g, g + 4} {
			for _, id := range b.Persistent[s] {
				persistent += b.Graph.Tensors.Get(id).Size
			}
		}
		want := persistent + pipeline.RuntimeReserve
		if got := r.GPUs[g].InUse; got != want {
			t.Errorf("gpu%d final in-use %v, want %v (one reserve, two stages)", g, got, want)
		}
	}
	for g := 4; g < 8; g++ {
		if r.GPUs[g].Peak != 0 {
			t.Errorf("unused gpu%d has peak %v", g, r.GPUs[g].Peak)
		}
	}
}

func TestSharedDevicesRejectedByDefault(t *testing.T) {
	b := buildVirtual(t, 8)
	if _, err := Run(Options{
		Topo: hw.DGX1(), Built: b, Mapping: wraparound(8, 4),
	}); err == nil {
		t.Error("duplicate mapping accepted without AllowSharedDevices")
	}
}

func TestVirtualStagesDeterministic(t *testing.T) {
	run := func() *Result {
		b := buildVirtual(t, 8)
		r, err := Run(Options{
			Topo: hw.DGX1(), Built: b,
			Mapping:            wraparound(8, 4),
			AllowSharedDevices: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Duration != b.Duration {
		t.Errorf("virtual-stage runs differ: %v vs %v", a.Duration, b.Duration)
	}
}

// TestVirtualStagesLocalHandoff: co-located consecutive stages must
// not produce NVLink traffic for their boundary.
func TestVirtualStagesLocalHandoff(t *testing.T) {
	// Map stage pairs (0,1)(2,3)(4,5)(6,7) onto GPUs 0..3: every other
	// boundary is local.
	b := buildVirtual(t, 8)
	m := []hw.DeviceID{0, 0, 1, 1, 2, 2, 3, 3}
	r, err := Run(Options{Topo: hw.DGX1(), Built: b, Mapping: m, AllowSharedDevices: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM != nil {
		t.Fatal(r.OOM)
	}
	spread := buildVirtual(t, 8)
	rs, err := Run(Options{Topo: hw.DGX1(), Built: spread, Mapping: IdentityMapping(8)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Fabric.NVLinkBytes >= rs.Fabric.NVLinkBytes {
		t.Errorf("paired mapping moved %v over NVLink, spread %v — local handoffs missing",
			r.Fabric.NVLinkBytes, rs.Fabric.NVLinkBytes)
	}
}
