package exec

import (
	"fmt"

	"mpress/internal/ckpt"
	"mpress/internal/graph"
	"mpress/internal/memsim"
	"mpress/internal/sim"
	"mpress/internal/units"
)

// This file is the engine's resilience surface: periodic checkpoint
// snapshots of persistent state to the host/NVMe tier, and injected
// hardware failures that cut a run short. The rollback / re-plan /
// resume orchestration lives in internal/runner; the engine only
// models what one process observes — snapshots draining over PCIe and
// the clock stopping dead at the fault.

// CheckpointSpec enables periodic checkpointing inside one run.
type CheckpointSpec struct {
	// Every is the minimum simulated time between snapshot starts.
	// Snapshots begin only at minibatch boundaries (every stage's
	// optimizer step for the minibatch has completed), the point where
	// the persistent state is consistent without quiescing the
	// pipeline.
	Every units.Duration
}

// Checkpoint records one completed snapshot.
type Checkpoint struct {
	Start sim.Time
	End   sim.Time
	// Bytes is the snapshot payload (weights + optimizer state of
	// every stage).
	Bytes units.Bytes
	// Minibatch is the last minibatch whose updates the snapshot
	// contains: a restore resumes after minibatch Minibatch.
	Minibatch int
}

// Failure records an injected hardware fault that stopped the run.
type Failure struct {
	// At is when the fault fired; work after the last completed
	// checkpoint is lost.
	At sim.Time
}

// ckptState is the engine's checkpoint/failure bookkeeping.
type ckptState struct {
	spec     *CheckpointSpec
	optMini  map[graph.OpID]int // optimizer op -> minibatch
	optLeft  []int              // outstanding optimizer ops per minibatch
	perStage []units.Bytes      // snapshot payload per stage
	total    units.Bytes
	tier     *memsim.Device // host, or NVMe when the topology has SSDs
	last     sim.Time       // start time of the newest snapshot
	retained units.Bytes    // bytes of the previous snapshot still held
	records  []Checkpoint
}

// initResilience wires checkpoint gating and the failure event. Called
// from init() after dependency bookkeeping exists.
func (e *engine) initResilience() error {
	b := e.o.Built
	if spec := e.o.Checkpoint; spec != nil {
		if spec.Every <= 0 {
			return fmt.Errorf("exec: checkpoint interval %v must be positive", spec.Every)
		}
		c := &ckptState{
			spec:     spec,
			optMini:  make(map[graph.OpID]int),
			optLeft:  make([]int, b.Cfg.Minibatches),
			perStage: ckpt.StageBytes(b),
			tier:     e.host,
		}
		c.total = ckpt.Total(c.perStage)
		if e.fab.HasNVMe() {
			c.tier = e.nvme
		}
		for _, perMini := range b.OptOps {
			for q, ops := range perMini {
				for _, id := range ops {
					c.optMini[id] = q
					c.optLeft[q]++
					// Gate minibatch q's optimizer steps behind the
					// snapshot (if any) taken at the q-1 boundary —
					// the snapshot reads the very state these steps
					// overwrite. Released by boundary().
					if q > 0 {
						e.preds[id]++
					}
				}
			}
		}
		e.ckpt = c
	}
	if e.o.FailAt < 0 {
		return fmt.Errorf("exec: negative FailAt %v", e.o.FailAt)
	}
	if e.o.FailAt > 0 {
		e.sim.At(e.o.FailAt, e.failNow)
	}
	return nil
}

// failNow is the injected-fault event. If the graph already drained,
// the fault missed the run and is ignored (the spurious event still
// advanced the clock, which result() compensates for via lastEnd).
func (e *engine) failNow() {
	if e.opsLeft == 0 {
		return
	}
	e.failure = &Failure{At: e.sim.Now()}
	e.sim.Stop()
}

// boundary runs when every stage's optimizer step for minibatch q has
// completed: the moment persistent state is globally consistent. It
// either starts a snapshot (holding minibatch q+1's optimizer steps
// until the drain completes) or immediately releases them.
func (e *engine) boundary(q int) {
	c := e.ckpt
	if q+1 >= e.o.Built.Cfg.Minibatches {
		return // final state; nothing downstream is gated
	}
	now := e.sim.Now()
	if now-c.last < c.spec.Every {
		e.releaseOptGate(q + 1)
		return
	}
	c.last = now
	// The new snapshot coexists with the previous one until it is
	// durable (atomic replace); charge it before the transfer.
	if err := c.tier.Alloc(c.total, "checkpoint"); err != nil {
		e.fail(err.(*memsim.OOMError))
		return
	}
	end := now
	for s, bytes := range c.perStage {
		if bytes <= 0 {
			continue
		}
		if _, e1 := e.fab.HostLink(e.place.GPU(s), bytes, true); e1 > end {
			end = e1
		}
	}
	if e.fab.HasNVMe() {
		if _, e2 := e.fab.NVMeXfer(c.total); e2 > end {
			end = e2
		}
	}
	e.sim.At(end, func() {
		if c.retained > 0 {
			c.tier.Release(c.retained)
		}
		c.retained = c.total
		c.records = append(c.records, Checkpoint{Start: now, End: end, Bytes: c.total, Minibatch: q})
		if end > e.lastEnd {
			e.lastEnd = end
		}
		e.releaseOptGate(q + 1)
	})
}

// releaseOptGate drops the checkpoint gate from every stage's
// optimizer step for minibatch q.
func (e *engine) releaseOptGate(q int) {
	for _, perMini := range e.o.Built.OptOps {
		for _, id := range perMini[q] {
			e.preds[id]--
			if e.preds[id] == 0 {
				e.dispatch(id)
			}
		}
	}
}
