package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"mpress"
)

func init() {
	register(Experiment{
		Name:  "resilience",
		Title: "Resilience: goodput under seeded faults, MTBF x checkpoint-interval sweep (Young-Daly vs fixed)",
		Run:   Resilience,
	})
}

// resilienceSeed drives every seeded schedule in this experiment. The
// output is a determinism artifact: same seed, byte-identical CSV.
const resilienceSeed = 2023 // HPCA'23

// Resilience sweeps the fault model (MTBF) against the checkpoint
// policy (Young-Daly optimum plus bracketing fixed intervals) for the
// paper's two headline workloads, reporting goodput — samples per
// second over the full resilient wall clock, rollbacks, re-planning
// and restores included — against the fault-free throughput. The grid
// is derived from each workload's own ideal iteration time, so the
// sweep stays meaningful across models of very different sizes.
//
// Unlike the table experiments this one emits CSV: the rows are a
// machine-readable goodput trajectory, and their byte-identity across
// runs with the same seed is asserted by TestResilienceCSVDeterminism.
func Resilience(w io.Writer) error {
	type workload struct {
		label string
		cfg   mpress.Config
	}
	workloads := []workload{
		{"Bert-1.67B/PipeDream", mpress.Config{
			Topology:       mpress.DGX1(),
			Model:          mpress.MustBert("1.67B"),
			Schedule:       mpress.PipeDream,
			System:         mpress.SystemMPress,
			MicrobatchSize: 12,
			Minibatches:    8,
		}},
		{"GPT-5.3B/DAPPLE", mpress.Config{
			Topology:       mpress.DGX2FastNVMe(),
			Model:          mpress.MustGPT("5.3B"),
			Schedule:       mpress.DAPPLE,
			System:         mpress.SystemMPress,
			MicrobatchSize: 2,
			Minibatches:    8,
		}},
	}

	// Fault-free baselines first: the grid scales with each workload's
	// ideal duration, and goodput is quoted against its throughput.
	var idealCfgs []mpress.Config
	for _, wl := range workloads {
		idealCfgs = append(idealCfgs, wl.cfg)
	}
	ideals := trainAll(idealCfgs)

	type cell struct {
		wlIdx    int
		mtbf     mpress.Duration
		interval mpress.Duration // 0 = Young-Daly
	}
	var cells []cell
	var cfgs []mpress.Config
	var deadRows [][]string // workloads whose fault-free baseline failed
	for i, wl := range workloads {
		if ideals[i].Err != nil || ideals[i].Report.Failed() {
			status := "error"
			if ideals[i].Err == nil {
				status = "oom"
			}
			deadRows = append(deadRows, []string{
				wl.label, "-", "-", status, "", "", "", "", "", "", "", ""})
			continue
		}
		dur := ideals[i].Report.Duration
		for _, mtbf := range []mpress.Duration{dur, dur / 2} {
			// 0 resolves to the Young-Daly optimum; the fixed
			// intervals bracket it from both sides.
			for _, iv := range []mpress.Duration{0, dur / 4, dur / 64} {
				cfg := wl.cfg
				cfg.Faults = &mpress.Faults{Seed: resilienceSeed, MTBF: mtbf}
				cfg.Checkpoint = &mpress.Checkpoint{Interval: iv}
				cells = append(cells, cell{i, mtbf, iv})
				cfgs = append(cfgs, cfg)
			}
		}
	}
	results := trainAll(cfgs)

	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"model", "mtbf_s", "ckpt_interval", "status",
		"ideal_samples_per_sec", "goodput", "efficiency",
		"failures", "checkpoints", "ckpt_gib", "lost_work_s", "recovery_s",
	}); err != nil {
		return err
	}
	for _, row := range deadRows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for i, c := range cells {
		wl := workloads[c.wlIdx]
		interval := "young-daly"
		if c.interval > 0 {
			interval = fmt.Sprintf("%.3fs", c.interval.Secondsf())
		}
		row := []string{
			wl.label,
			fmt.Sprintf("%.3f", c.mtbf.Secondsf()),
			interval,
		}
		res := results[i]
		switch {
		case res.Err != nil:
			row = append(row, "error", "", "", "", "", "", "", "", "")
		case res.Report.Failed():
			row = append(row, "oom", "", "", "", "", "", "", "", "")
		default:
			rep := res.Report
			row = append(row, "ok",
				fmt.Sprintf("%.2f", rep.SamplesPerSec),
				fmt.Sprintf("%.2f", rep.Goodput),
				fmt.Sprintf("%.1f%%", 100*rep.Goodput/rep.SamplesPerSec),
				strconv.Itoa(rep.Failures),
				strconv.Itoa(rep.Checkpoints),
				fmt.Sprintf("%.2f", rep.CheckpointBytes.GiBf()),
				fmt.Sprintf("%.3f", rep.LostWork.Secondsf()),
				fmt.Sprintf("%.3f", rep.RecoveryTime.Secondsf()),
			)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
