package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestResilienceCSVDeterminism asserts the determinism contract on the
// resilience artifact: two runs with the same (hard-coded) fault seed
// produce byte-identical CSV. The fault schedules, the event-driven
// replay, the degraded re-planning and the CSV rendering are all on
// the hash path here — any nondeterminism (map iteration, wall-clock
// leakage, unseeded randomness) shows up as a byte diff.
func TestResilienceCSVDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := Resilience(&a); err != nil {
		t.Fatal(err)
	}
	if err := Resilience(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same seed, different CSV:\nfirst:\n%s\nsecond:\n%s", a.String(), b.String())
	}
}

// TestResilienceContent sanity-checks the CSV rows: at least one
// faulted cell completes with goodput strictly below the fault-free
// throughput, and the checkpoint-interval sweep actually varies the
// snapshot count (the axis is live, not decorative).
func TestResilienceContent(t *testing.T) {
	var buf bytes.Buffer
	if err := Resilience(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("degenerate CSV:\n%s", buf.String())
	}
	header := strings.Split(lines[0], ",")
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	degraded := false
	ckptCounts := map[string]bool{}
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		if f[col["status"]] != "ok" {
			continue
		}
		ideal, err1 := strconv.ParseFloat(f[col["ideal_samples_per_sec"]], 64)
		goodput, err2 := strconv.ParseFloat(f[col["goodput"]], 64)
		if err1 != nil || err2 != nil {
			t.Errorf("ok row with unparseable throughput: %s", line)
			continue
		}
		if goodput < ideal && f[col["failures"]] != "0" {
			degraded = true
		}
		ckptCounts[f[col["checkpoints"]]] = true
	}
	if !degraded {
		t.Error("no faulted row shows goodput below ideal throughput")
	}
	if len(ckptCounts) < 2 {
		t.Errorf("checkpoint-interval sweep never changed the snapshot count: %v", ckptCounts)
	}
}
