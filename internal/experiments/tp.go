package experiments

import (
	"fmt"
	"io"

	"mpress"
)

func init() {
	register(Experiment{
		Name:  "tp",
		Title: "Tensor parallelism: TP×PP grid sweep on 16 GiB GPUs (capacity crossover + all-reduce cost)",
		Run:   TensorParallel,
	})
}

// TensorParallel sweeps the TP axis of the shard grid on a
// memory-starved DGX-1 (16 GiB V100s, the paper's small-memory
// testbed). Raising TP splits every transformer layer across an NVLink
// island: per-GPU weights, optimizer state and activations shrink by
// the TP degree while the pipeline depth falls to PP = 8/TP, so a
// model that OOMs as a pure pipeline (GPT-15.4B at TP=1) fits at TP=2
// — the capacity story. The price is the per-operator all-reduces,
// whose NVLink traffic grows with the degree — the bandwidth story
// Bert-1.67B (which fits everywhere) isolates.
func TensorParallel(w io.Writer) error {
	topo := mpress.DGX1()
	topo.GPU.Memory = 16 * mpress.GiB
	topo.Name = "DGX-1V-16G"

	type workload struct {
		label string
		cfg   mpress.Config
	}
	workloads := []workload{
		{"Bert-1.67B/PipeDream", mpress.Config{
			Topology:       topo,
			Model:          mpress.MustBert("1.67B"),
			Schedule:       mpress.PipeDream,
			System:         mpress.SystemMPress,
			MicrobatchSize: 12,
		}},
		{"GPT-15.4B/DAPPLE", mpress.Config{
			Topology:       topo,
			Model:          mpress.MustGPT("15.4B"),
			Schedule:       mpress.DAPPLE,
			System:         mpress.SystemMPress,
			MicrobatchSize: 2,
		}},
	}
	tpDegrees := []int{1, 2, 4}

	type row struct {
		model string
		tp    int
	}
	var rows []row
	var cfgs []mpress.Config
	for _, wl := range workloads {
		for _, tp := range tpDegrees {
			cfg := wl.cfg
			cfg.TPDegree = tp
			rows = append(rows, row{wl.label, tp})
			cfgs = append(cfgs, cfg)
		}
	}
	results := trainAll(cfgs)

	t := newTable("Model", "TP", "PP", "Status", "TFLOPS", "Max GPU peak", "TP all-reduce", "NVLink total")
	for i, r := range rows {
		res := results[i]
		pp := fmt.Sprint(topo.NumGPUs / r.tp)
		if res.Err != nil {
			t.add(r.model, fmt.Sprint(r.tp), pp, "ERR", "-", "-", "-", "-")
			continue
		}
		rep := res.Report
		if rep.Failed() {
			t.add(r.model, fmt.Sprint(r.tp), pp, "OOM", "-", "-", "-", "-")
			continue
		}
		var peak mpress.Bytes
		for _, pk := range rep.PerGPUPeak {
			if pk > peak {
				peak = pk
			}
		}
		t.add(r.model, fmt.Sprint(r.tp), pp, "ok",
			fmt.Sprintf("%.1f", rep.TFLOPS),
			fmt.Sprint(peak),
			fmt.Sprint(rep.TPAllReduceBytes),
			fmt.Sprint(rep.NVLinkBytes))
	}
	t.write(w)
	return nil
}
