package experiments

import (
	"context"
	"fmt"
	"io"

	"mpress"
)

func init() {
	register(Experiment{
		Name:  "autosearch",
		Title: "Planner v2 auto-search: the searched winner vs every hand preset on time-to-fit",
		Run:   Autosearch,
	})
}

// searchObserver, when set, receives every preset's search result —
// mpress-bench uses it to emit BENCH_search.json records (nodes
// expanded, pruned, memo hits, search wall time).
var searchObserver func(preset string, r *mpress.SearchResult)

// SetSearchObserver registers fn to be called with each auto-search
// the autosearch experiment completes. Call it before running
// experiments, not concurrently with them; nil unregisters.
func SetSearchObserver(fn func(preset string, r *mpress.SearchResult)) { searchObserver = fn }

// autosearchSpace is the per-preset strategy space: every hand-preset
// system at the preset's own stage count and partition. Each candidate
// is therefore exactly one hand preset, so the searched winner beating
// or tying every candidate IS the meets-or-beats guarantee, checked
// here on every run.
func autosearchSpace() mpress.SearchSpace {
	return mpress.SearchSpace{
		Systems: []mpress.System{
			mpress.SystemMPress, mpress.SystemMPressD2D, mpress.SystemRecompute,
			mpress.SystemGPUCPUSwap, mpress.SystemPlain,
		},
	}
}

// Autosearch runs the planner-v2 searcher over the determinism-suite
// model×topology pairs (the planner presets) and prints every hand
// preset's time-to-fit next to the searched winner. A winner losing to
// any hand preset is an error, not a table row — the experiment is the
// regression guard for the search objective.
func Autosearch(w io.Writer) error {
	t := newTable("Preset", "Strategy", "Outcome", "Time-to-fit", "Winner")
	for _, p := range PlannerPresets() {
		res, err := mpress.AutoSearch(context.Background(), p.Cfg, autosearchSpace(),
			mpress.SearchOptions{Runner: sharedRunner})
		if err != nil {
			return fmt.Errorf("autosearch %s: %w", p.Name, err)
		}
		if searchObserver != nil {
			searchObserver(p.Name, res)
		}
		best := res.Best()
		if best == nil {
			return fmt.Errorf("autosearch %s: no feasible strategy", p.Name)
		}
		for i := range res.Candidates {
			c := &res.Candidates[i]
			mark := ""
			if c.Rank == res.Winner {
				mark = "*"
			}
			ttf := "-"
			switch {
			case c.Eval != nil && c.Eval.OOM:
				ttf = "OOM"
			case c.Eval != nil:
				ttf = fmt.Sprint(c.TimeToFit)
				if c.TimeToFit < best.TimeToFit {
					return fmt.Errorf("autosearch %s: winner %v (%v) loses to preset %v (%v)",
						p.Name, best.Key, best.TimeToFit, c.Key, c.TimeToFit)
				}
			case c.Outcome == mpress.SearchPruned:
				ttf = fmt.Sprintf(">=%v", c.Bound)
			}
			t.add(p.Name, c.Key.String(), string(c.Outcome), ttf, mark)
		}
		t.addf("%s|search|%d expanded, %d pruned, %d memo|-|-",
			p.Name, res.Expanded, res.Pruned, res.MemoHits)
	}
	t.write(w)
	return nil
}
