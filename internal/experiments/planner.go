package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"mpress"
)

func init() {
	register(Experiment{
		Name:  "planner",
		Title: "Planner refinement cost: plan time, emulations and simulator throughput vs PlanWorkers",
		Run:   Planner,
	})
}

// PlannerPreset is one named planning workload — a config whose
// refinement loop does real work (the initial assignment overflows and
// the planner must arbitrate D2D/recompute conversions by emulation).
// The root-level BenchmarkRefine and the parallel-planner determinism
// test run exactly these presets, so benchmark names, BENCH_planner
// records and acceptance coverage all refer to the same points.
type PlannerPreset struct {
	Name string
	Cfg  mpress.Config
}

// PlannerPresets returns the planner workloads: both model families on
// both testbeds. bertxdgx2 is the stress point (hundreds of
// arbitration emulations on the 16-GPU box); gptxdgx1 settles almost
// immediately and so measures fixed planning overhead.
func PlannerPresets() []PlannerPreset {
	return []PlannerPreset{
		{"bertxdgx1", mpress.Config{
			Topology:       mpress.DGX1(),
			Model:          mpress.MustBert("1.67B"),
			Schedule:       mpress.PipeDream,
			System:         mpress.SystemMPress,
			MicrobatchSize: 12,
		}},
		{"bertxdgx2", mpress.Config{
			Topology:       mpress.DGX2(),
			Model:          mpress.MustBert("6.2B"),
			Schedule:       mpress.PipeDream,
			System:         mpress.SystemMPress,
			MicrobatchSize: 12,
		}},
		{"gptxdgx1", mpress.Config{
			Topology:       mpress.DGX1(),
			Model:          mpress.MustGPT("10.3B"),
			Schedule:       mpress.DAPPLE,
			System:         mpress.SystemMPress,
			MicrobatchSize: 2,
		}},
		{"gptxdgx2", mpress.Config{
			Topology:       mpress.DGX2(),
			Model:          mpress.MustGPT("25.5B"),
			Schedule:       mpress.DAPPLE,
			System:         mpress.SystemMPress,
			MicrobatchSize: 2,
		}},
	}
}

// plannerWorkerPoints is the PlanWorkers axis the experiment sweeps.
var plannerWorkerPoints = []int{1, 4}

// trainWith runs one job on a fresh single-worker runner built from
// opts (Workers and OnJobDone are overridden). Isolation means the
// plan stage is timed cold — the shared runner's plan cache keys plans
// by config fingerprint, so reusing it would hand every point after
// the first a cached plan and time nothing. The observer still sees
// the job, so -perf records include these points. Callers that want
// to share a plan anyway seed the fresh runner explicitly
// (Runner.SeedPlan), as the simkernel experiment does.
func trainWith(cfg mpress.Config, opts mpress.RunnerOptions) mpress.JobResult {
	j, err := mpress.NewJob(cfg)
	if err != nil {
		return mpress.JobResult{Err: err}
	}
	opts.Workers = 1
	opts.OnJobDone = notifyObserver
	return mpress.NewRunner(opts).Run(context.Background(), j)
}

// trainIsolated is trainWith at default runner options.
func trainIsolated(cfg mpress.Config) mpress.JobResult {
	return trainWith(cfg, mpress.RunnerOptions{})
}

// Planner measures the refinement loop itself: for each preset and
// PlanWorkers setting it reports real planning time, the number of
// arbitration emulations charged (identical across worker counts by
// construction), and the executor's event throughput. On a single-core
// host workers > 1 adds goroutine overhead without parallel speedup;
// the emulations column staying constant is the determinism evidence.
func Planner(w io.Writer) error {
	t := newTable("Preset", "Model", "Topology", "Workers", "Plan time", "Emulations", "Sim events", "Events/s", "TFLOPS")
	for _, p := range PlannerPresets() {
		for _, workers := range plannerWorkerPoints {
			cfg := p.Cfg
			cfg.PlanWorkers = workers
			res := trainIsolated(cfg)
			if res.Err != nil {
				return fmt.Errorf("planner preset %s (workers=%d): %w", p.Name, workers, res.Err)
			}
			rep := res.Report
			if rep.Failed() {
				t.add(p.Name, p.Cfg.Model.Name, p.Cfg.Topology.Name,
					fmt.Sprint(workers), "OOM", "-", "-", "-", "-")
				continue
			}
			eventsPerSec := 0.0
			if d := res.StageTimes["execute"]; d > 0 {
				eventsPerSec = float64(rep.SimEvents) / d.Seconds()
			}
			t.add(p.Name, p.Cfg.Model.Name, p.Cfg.Topology.Name,
				fmt.Sprint(workers),
				fmt.Sprint(res.StageTimes["plan"].Round(time.Millisecond)),
				fmt.Sprint(rep.Plan.Emulations),
				fmt.Sprint(rep.SimEvents),
				fmt.Sprintf("%.0f", eventsPerSec),
				fmt.Sprintf("%.1f", rep.TFLOPS))
		}
	}
	t.write(w)
	return nil
}
