package experiments

import (
	"fmt"
	"io"

	"mpress"
	"mpress/internal/compaction"
	"mpress/internal/fabric"
	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/plan"
	"mpress/internal/profiler"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

func init() {
	register(Experiment{
		Name:  "table3",
		Title: "Table III: per-tensor time cost of the three memory reduction mechanisms",
		Run:   TableIII,
	})
	register(Experiment{
		Name:  "table4",
		Title: "Table IV: strategies chosen by MPress and per-mechanism savings",
		Run:   TableIV,
	})
}

// TableIII regenerates Table III: for sampled tensors of Bert and GPT,
// the live interval and the cost of recomputation, GPU-CPU swap, and
// D2D swap over four NVLinks (gpu0 -> gpu3+gpu4 on the DGX-1).
func TableIII(w io.Writer) error {
	topo := hw.DGX1()
	t := newTable("Model", "Tensor", "Size", "Live interval", "Recomp.", "GPU-CPU swap", "D2D swap (4 links)")

	sample := func(label string, cfg model.Config, prec model.Precision, kind pipeline.ScheduleKind, mb int) error {
		part, err := pipeline.PartitionModel(cfg, 8, pipeline.ComputeBalanced, kind, prec, mb, 8)
		if err != nil {
			return err
		}
		b, err := pipeline.Build(pipeline.BuildConfig{
			Model: cfg, Prec: prec, Part: part, Kind: kind,
			MicrobatchSize: mb, Microbatches: 8, Minibatches: 2,
		})
		if err != nil {
			return err
		}
		prof, err := profiler.Collect(topo, b, nil)
		if err != nil {
			return err
		}
		rate := topo.GPU.EffectiveFP16()
		if cfg.DType == tensor.FP32 {
			rate = topo.GPU.EffectiveFP32()
		}
		// Three representative block activations: early stage + early
		// microbatch (long-lived), middle, and last stage + last
		// microbatch (short-lived).
		type pick struct {
			name  string
			stage int
			mb    int
		}
		picks := []pick{
			{"t-early", 0, 0},
			{"t-mid", 4, 4},
			{"t-late", 7, b.TotalMicrobatches - 1},
			{"t-bnd", 4, 4}, // a boundary tensor: smaller, not recomputable
		}
		for _, p := range picks {
			k := pipeline.SlotKey{Stage: p.stage, Microbatch: p.mb}
			chosen := tensor.ID(-1)
			if p.name == "t-bnd" {
				if id, ok := b.BoundIn[k]; ok {
					chosen = id
				}
			} else {
				for _, id := range b.Acts[k] {
					if _, ok := b.RecomputeFLOPs[id]; ok {
						chosen = id
						break
					}
				}
			}
			if chosen < 0 {
				continue
			}
			tn := b.Graph.Tensors.Get(chosen)
			win := prof.Stats[chosen].LongestWindow()
			recomp := "n/a"
			if fl, ok := b.RecomputeFLOPs[tn.ID]; ok {
				recomp = compaction.RecomputeCost(fl, rate).String()
			}
			host := compaction.HostSwapCost(topo, tn.Size)
			d2d := compaction.D2DSwapCost(topo, 0, []fabric.Part{
				{Peer: 3, Bytes: tn.Size / 2}, {Peer: 4, Bytes: tn.Size - tn.Size/2},
			})
			t.addf("%s|%s|%s|%s|%s|%s|%s",
				label, p.name, tn.Size, win.Gap, recomp, host, d2d)
		}
		return nil
	}
	bert, err := model.BertVariant("1.67B")
	if err != nil {
		return err
	}
	if err := sample("Bert", bert, model.FP32Adam(), pipeline.PipeDream, 2); err != nil {
		return err
	}
	gpt, err := model.GPTVariant("10.3B")
	if err != nil {
		return err
	}
	if err := sample("GPT", gpt, model.MixedAdam(), pipeline.DAPPLE, 2); err != nil {
		return err
	}
	t.write(w)
	fmt.Fprintln(w, "\npaper: e.g. t1 216MB live 78ms -> recomp 4ms, GPU-CPU 42ms, D2D 6ms;")
	fmt.Fprintln(w, "       D2D is ~7x faster than GPU-CPU swap at every size")
	return nil
}

// TableIV regenerates Table IV: the strategies MPress chooses for four
// high-pressure jobs, with the applied stage ranges and each
// mechanism's share of the total savings.
func TableIV(w io.Writer) error {
	t := newTable("Job", "Mechanism", "Applied stages", "Saved GPU mem", "Share")
	type job struct {
		name     string
		cfg      mpress.Config
		schedule mpress.Schedule
	}
	jobs := []job{
		{"Bert-1.67B", mpress.Config{Topology: mpress.DGX1(), Model: mpress.MustBert("1.67B"), Schedule: mpress.PipeDream, System: mpress.SystemMPress, MicrobatchSize: 12}, mpress.PipeDream},
		{"Bert-6.2B", mpress.Config{Topology: mpress.DGX1(), Model: mpress.MustBert("6.2B"), Schedule: mpress.PipeDream, System: mpress.SystemMPress, MicrobatchSize: 12}, mpress.PipeDream},
		{"GPT-10.3B", mpress.Config{Topology: mpress.DGX1(), Model: mpress.MustGPT("10.3B"), Schedule: mpress.DAPPLE, System: mpress.SystemMPress, MicrobatchSize: 2}, mpress.DAPPLE},
		{"GPT-20.4B", mpress.Config{Topology: mpress.DGX1(), Model: mpress.MustGPT("20.4B"), Schedule: mpress.DAPPLE, System: mpress.SystemMPress, MicrobatchSize: 2}, mpress.DAPPLE},
	}
	cfgs := make([]mpress.Config, len(jobs))
	for i, j := range jobs {
		cfgs[i] = j.cfg
	}
	results := trainAll(cfgs)
	for i, j := range jobs {
		if err := results[i].Err; err != nil {
			return err
		}
		rep := results[i].Report
		if rep.Plan == nil {
			continue
		}
		var total units.Bytes
		for _, v := range rep.Plan.SavedByMech {
			total += v
		}
		for _, mech := range []plan.Mechanism{plan.MechRecompute, plan.MechHostSwap, plan.MechD2D} {
			saved := rep.Plan.SavedByMech[mech]
			r := rep.Plan.StageRange[mech]
			stages := "N/A"
			if r[0] >= 0 {
				stages = fmt.Sprintf("stage %d-%d", r[0], r[1])
			}
			share := 0.0
			if total > 0 {
				share = float64(saved) / float64(total) * 100
			}
			t.addf("%s|%s|%s|%s|%.1f%%", j.name, mech, stages, saved, share)
		}
	}
	t.write(w)
	fmt.Fprintln(w, "\npaper: recomputation contributes the most (51-91%); GPU-CPU swap 0-42%;")
	fmt.Fprintln(w, "       D2D 3.9-23.4%, applied to the early stages")
	return nil
}
