package experiments

import (
	"fmt"
	"io"
	"strings"

	"mpress/internal/exec"
	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/tensor"
	"mpress/internal/trace"
	"mpress/internal/units"
)

func init() {
	register(Experiment{
		Name:  "fig1",
		Title: "Figure 1: inter-operator training workflow and per-device memory evolution",
		Run:   Figure1,
	})
}

// Figure1 regenerates the paper's Fig. 1 from live runs: the pipeline
// timing diagram (black/white boxes as digits/letters) and the
// per-device memory curves underneath, for PipeDream's asynchronous
// and DAPPLE's synchronous scheduling — three workers, minibatches of
// six microbatches, exactly the paper's setup.
func Figure1(w io.Writer) error {
	cfg := model.Config{
		Name: "Fig1", Arch: model.GPT,
		Layers: 6, Hidden: 1024, Heads: 16, SeqLen: 256, Vocab: 8192,
		DType: tensor.FP16,
	}
	prec := model.MixedAdam()
	for _, kind := range []pipeline.ScheduleKind{pipeline.PipeDream, pipeline.DAPPLE} {
		part, err := pipeline.PartitionModel(cfg, 3, pipeline.ComputeBalanced, kind, prec, 2, 6)
		if err != nil {
			return err
		}
		b, err := pipeline.Build(pipeline.BuildConfig{
			Model: cfg, Prec: prec, Part: part, Kind: kind,
			MicrobatchSize: 2, Microbatches: 6, Minibatches: 2,
		})
		if err != nil {
			return err
		}
		res, err := exec.Run(exec.Options{
			Topo: hw.DGX1(), Built: b,
			Mapping: exec.IdentityMapping(3), SampleMemory: true,
		})
		if err != nil {
			return err
		}
		if res.OOM != nil {
			return fmt.Errorf("fig1: unexpected OOM: %v", res.OOM)
		}
		fmt.Fprintf(w, "--- %v (async=%v), 3 workers, 2 minibatches x 6 microbatches ---\n",
			kind, kind.Async())
		trace.Collect(b, res).WriteGantt(w)
		fmt.Fprintln(w, "\nper-device memory over time (above the runtime reserve):")
		writeMemoryCurves(w, res, 3)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper: worker 1's curve dominates and decreases toward worker 3;")
	fmt.Fprintln(w, "PipeDream overlaps minibatches, DAPPLE flushes between them")
	return nil
}

// curveGlyphs maps a 0..1 fill level to an ASCII bar.
var curveGlyphs = []byte(" .:-=+*#@")

// writeMemoryCurves renders each GPU's sampled memory as a row of
// intensity glyphs over time — the Fig. 1 bottom curves.
func writeMemoryCurves(w io.Writer, res *exec.Result, gpus int) {
	const width = 100
	if len(res.MemorySamples) == 0 || res.Duration <= 0 {
		fmt.Fprintln(w, "(no samples)")
		return
	}
	// Peak across all GPUs sets the common scale.
	var peak units.Bytes
	for _, s := range res.MemorySamples {
		for g := 0; g < gpus; g++ {
			if v := s.InUse[g] - pipeline.RuntimeReserve; v > peak {
				peak = v
			}
		}
	}
	if peak <= 0 {
		peak = 1
	}
	for g := 0; g < gpus; g++ {
		cells := make([]units.Bytes, width)
		for _, s := range res.MemorySamples {
			x := int(float64(s.At) / float64(res.Duration) * float64(width))
			if x >= width {
				x = width - 1
			}
			v := s.InUse[g] - pipeline.RuntimeReserve
			if v > cells[x] {
				cells[x] = v
			}
		}
		// Carry values forward through unsampled columns so the curve
		// reads as residency, not as isolated events.
		var last units.Bytes
		row := make([]byte, width)
		for x := 0; x < width; x++ {
			if cells[x] > 0 {
				last = cells[x]
			}
			level := int(float64(last) / float64(peak) * float64(len(curveGlyphs)-1))
			row[x] = curveGlyphs[level]
		}
		var rowPeak units.Bytes
		for _, s := range res.MemorySamples {
			if v := s.InUse[g] - pipeline.RuntimeReserve; v > rowPeak {
				rowPeak = v
			}
		}
		fmt.Fprintf(w, "worker%d |%s| peak %s\n", g+1, strings.TrimRight(string(row), " "), rowPeak)
	}
}
