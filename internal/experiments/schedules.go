package experiments

import (
	"fmt"
	"io"

	"mpress"
)

func init() {
	register(Experiment{
		Name:  "schedules",
		Title: "Extension: MPress across PipeDream, DAPPLE and GPipe (Sec. III-E generality)",
		Run:   ScheduleComparison,
	})
}

// ScheduleComparison quantifies the paper's Fig. 1 discussion and its
// Sec. III-E generality claim ("MPress is general and can be applied
// to other inter-operator training systems such as GPipe"): the same
// Bert job under the three schedules, plain and with MPress.
//
// Expected shape: GPipe retains every microbatch's activations and so
// hits the hardest memory wall; PipeDream adds stashed weight versions
// on the early stages; DAPPLE is the leanest; and MPress rescues all
// three.
func ScheduleComparison(w io.Writer) error {
	kinds := []mpress.Schedule{mpress.PipeDream, mpress.DAPPLE, mpress.GPipe}
	systems := []mpress.System{mpress.SystemPlain, mpress.SystemMPress}
	var cfgs []mpress.Config
	for _, kind := range kinds {
		for _, sys := range systems {
			cfgs = append(cfgs, mpress.Config{
				Topology:       mpress.DGX1(),
				Model:          mpress.MustBert("0.64B"),
				Schedule:       kind,
				System:         sys,
				MicrobatchSize: 12,
			})
		}
	}
	results := trainAll(cfgs)

	t := newTable("Schedule", "Plain", "Plain stage-0 peak", "MPress", "MPress stage-0 peak")
	i := 0
	for _, kind := range kinds {
		row := []string{kind.String()}
		for range systems {
			if err := results[i].Err; err != nil {
				return err
			}
			rep := results[i].Report
			i++
			if rep.Failed() {
				row = append(row, "OOM", "-")
				continue
			}
			var peak mpress.Bytes
			for _, p := range rep.PerGPUPeak {
				if p > peak {
					peak = p
				}
			}
			row = append(row, fmt.Sprintf("%.1f", rep.TFLOPS), fmt.Sprintf("%.1f GiB", peak.GiBf()))
		}
		t.add(row...)
	}
	t.write(w)
	fmt.Fprintln(w, "\npaper (Fig. 1 / Sec. III-E): async scheduling stashes weight versions;")
	fmt.Fprintln(w, "GPipe holds all microbatches; MPress integrates with all three")
	return nil
}
