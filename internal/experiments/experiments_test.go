package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestRunAll executes every registered experiment and checks each
// produces a non-trivial table (the exact values are asserted by the
// focused package tests; this guards the generators end to end).
func TestRunAll(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			out := buf.String()
			if len(strings.Split(out, "\n")) < 4 {
				t.Fatalf("%s produced a degenerate table:\n%s", e.Name, out)
			}
			t.Logf("\n%s", out)
		})
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"table1", "table2", "table3", "table4", "fig1", "fig2",
		"fig4", "fig7", "fig8a", "fig8b", "fig9", "mapping-cost",
		"partition-ablation", "grace", "schedules", "scaling", "resilience",
		"planner", "tp", "capacity", "autosearch", "simkernel"}
	if len(names) != len(want) {
		t.Fatalf("registered %d experiments (%v), want %d", len(names), names, len(want))
	}
	for _, n := range want {
		if _, ok := Lookup(n); !ok {
			t.Errorf("experiment %q not registered", n)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus lookup succeeded")
	}
	for _, e := range All() {
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.Name)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := newTable("A", "Blong")
	tb.add("x", "y")
	tb.addf("%d|%s", 42, "z")
	var buf bytes.Buffer
	tb.write(&buf)
	out := buf.String()
	for _, want := range []string{"A", "Blong", "42", "z", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

var _ io.Writer = (*bytes.Buffer)(nil)
