// Package experiments regenerates every table and figure of the
// paper's evaluation (Sec. II and IV) on the simulated testbeds: the
// same rows and series, printed as text tables. EXPERIMENTS.md records
// the paper-vs-measured comparison for each one.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"mpress"
)

// Experiment is one runnable paper artifact.
type Experiment struct {
	// Name is the CLI identifier, e.g. "table1", "fig7".
	Name string
	// Title describes what the paper shows.
	Title string
	// Run writes the regenerated rows to w.
	Run func(w io.Writer) error
}

// registry holds all experiments in presentation order.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// parallelism is the worker count for generator batches (0 means
// GOMAXPROCS); sharedRunner carries the plan cache all generators
// share, so e.g. fig7 and table4 reuse each other's Bert plans.
var (
	parallelism  int
	observer     func(mpress.JobResult)
	sharedRunner = newSharedRunner()
)

func newSharedRunner() *mpress.Runner {
	return mpress.NewRunner(mpress.RunnerOptions{
		Workers:   parallelism,
		OnJobDone: notifyObserver,
	})
}

// notifyObserver forwards a completed job to the registered observer.
// Runners built outside the shared pool (trainWith, the simkernel
// variants) hang their OnJobDone off this so -perf records cover their
// jobs too.
func notifyObserver(jr mpress.JobResult) {
	if observer != nil {
		observer(jr)
	}
}

// SetParallelism rebuilds the shared runner with n workers (n <= 0
// restores the GOMAXPROCS default). Call it before running
// experiments, not concurrently with them.
func SetParallelism(n int) {
	parallelism = n
	sharedRunner = newSharedRunner()
}

// SetObserver registers fn to be called with every job the shared
// runner completes (from worker goroutines — fn must be safe for
// concurrent use). mpress-bench uses it to emit per-job perf records.
// Call it before running experiments, not concurrently with them; nil
// unregisters.
func SetObserver(fn func(mpress.JobResult)) { observer = fn }

// KernelSample is one synthetic simulation-kernel measurement from the
// simkernel experiment: a scheduler micro-benchmark cell or a PDES
// replica run. Events is the deterministic event count, EventsPerSec
// the real-time rate the kernel processed them at.
type KernelSample struct {
	// Bench names the cell, e.g. "dense-10k" or "pdes-replicas-p4".
	Bench string
	// Scheduler is the resolved scheduler name ("heap", "calendar",
	// "calendar+heap-fallback").
	Scheduler string
	// Workers and Windows are set on PDES cells (0 otherwise).
	Workers      int
	Windows      int64
	Events       int64
	EventsPerSec float64
}

var kernelObserver func(KernelSample)

// SetKernelObserver registers fn to receive the simkernel experiment's
// synthetic measurements — the cells that are not training jobs and so
// never reach the job observer. mpress-bench turns them into -perf
// records. Call before running experiments; nil unregisters.
func SetKernelObserver(fn func(KernelSample)) { kernelObserver = fn }

// Stats exposes the shared runner's counters (jobs, plan-cache
// hits/misses) for the CLI's summary line.
func Stats() mpress.RunnerStats { return sharedRunner.Stats() }

// trainAll submits the configs as one batch through the shared
// runner's worker pool and returns their results in input order —
// the batched counterpart of mpress.Train.
func trainAll(cfgs []mpress.Config) []mpress.JobResult {
	return sharedRunner.RunConfigs(context.Background(), cfgs)
}

// All returns the experiments in presentation order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names lists the registered experiment names.
func Names() []string {
	var names []string
	for _, e := range registry {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return names
}

// table is a minimal fixed-width text table writer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...interface{}) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}
