package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestCapacityContent pins the lab-fleet artifact's shape: a
// cheapest-feasible recommendation, at least one OOM rejection and at
// least one goodput-SLO rejection — the three outcomes the capacity
// planner exists to distinguish.
func TestCapacityContent(t *testing.T) {
	out := capture(t, "capacity")
	if !strings.Contains(out, "recommendation: gh200 x1") {
		t.Errorf("expected a gh200 x1 recommendation:\n%s", out)
	}
	if !strings.Contains(out, "oom") {
		t.Errorf("expected an OOM rejection:\n%s", out)
	}
	if !strings.Contains(out, "below SLO") {
		t.Errorf("expected a goodput-SLO rejection:\n%s", out)
	}
}

// TestCapacityDeterminism asserts byte-identical output across runs —
// the fault replay, concurrent sweep and CSV rendering are all on the
// hash path.
func TestCapacityDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := Capacity(&a); err != nil {
		t.Fatal(err)
	}
	if err := Capacity(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same seed, different output:\nfirst:\n%s\nsecond:\n%s", a.String(), b.String())
	}
}
