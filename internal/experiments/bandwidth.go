package experiments

import (
	"fmt"
	"io"

	"mpress/internal/fabric"
	"mpress/internal/hw"
	"mpress/internal/units"
)

func init() {
	register(Experiment{
		Name:  "fig4",
		Title: "Figure 4: unidirectional aggregate bandwidth vs data size (DGX-1)",
		Run:   Figure4,
	})
}

// Figure4 regenerates Fig. 4: the effective unidirectional bandwidth
// from GPU0's perspective over PCIe and over 1/2/4/6 aggregated
// NVLinks, across transfer sizes. The NV4 series scatters across the
// two dual-lane neighbors; NV6 across all four neighbors with the
// paper's weighted striping.
func Figure4(w io.Writer) error {
	topo := hw.DGX1()
	sizes := []units.Bytes{
		1 * units.MiB, 4 * units.MiB, 16 * units.MiB, 64 * units.MiB,
		256 * units.MiB, 1 * units.GiB,
	}
	t := newTable("Size", "PCIe", "NV1", "NV2", "NV4", "NV6")
	nv4 := func(size units.Bytes) []fabric.Part {
		return []fabric.Part{{Peer: 3, Bytes: size / 2}, {Peer: 4, Bytes: size - size/2}}
	}
	nv6 := func(size units.Bytes) []fabric.Part {
		return []fabric.Part{
			{Peer: 1, Bytes: size / 6}, {Peer: 2, Bytes: size / 6},
			{Peer: 3, Bytes: size / 3}, {Peer: 4, Bytes: size - size/6*2 - size/3},
		}
	}
	for _, size := range sizes {
		t.addf("%s|%.1f|%.1f|%.1f|%.1f|%.1f",
			size.String(),
			fabric.EffectiveHostBandwidth(topo, 0, size).GBpsf(),
			fabric.EffectiveBandwidth(topo, 0, 1, size, 0).GBpsf(),
			fabric.EffectiveBandwidth(topo, 0, 3, size, 0).GBpsf(),
			fabric.EffectiveScatterBandwidth(topo, 0, nv4(size)).GBpsf(),
			fabric.EffectiveScatterBandwidth(topo, 0, nv6(size)).GBpsf(),
		)
	}
	t.write(w)
	fmt.Fprintln(w, "\npaper: NV2->NV6 rises 45->146 GB/s at large sizes, 3.9-12.5x PCIe")
	return nil
}
