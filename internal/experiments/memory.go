package experiments

import (
	"fmt"
	"io"

	"mpress/internal/exec"
	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/units"
)

func init() {
	register(Experiment{
		Name:  "table1",
		Title: "Table I: GPU memory consumption by model-data class",
		Run:   TableI,
	})
	register(Experiment{
		Name:  "fig2",
		Title: "Figure 2: imbalanced per-device GPU memory consumption (Bert-1.67B)",
		Run:   Figure2,
	})
	register(Experiment{
		Name:  "table2",
		Title: "Table II: GPU memory demands of all model configurations",
		Run:   TableII,
	})
}

// classShares computes the share of memory demand contributed by
// activations, optimizer states, and params+gradients for one job.
func classShares(cfg model.Config, prec model.Precision, kind pipeline.ScheduleKind, mb, micro int) (act, opt, pg float64, err error) {
	part, err := pipeline.PartitionModel(cfg, 8, pipeline.ComputeBalanced, kind, prec, mb, micro)
	if err != nil {
		return 0, 0, 0, err
	}
	profiles := pipeline.Profile(cfg, part, mb)
	var actB, optB, pgB units.Bytes
	S := len(profiles)
	for s, sp := range profiles {
		inflight := units.Bytes(kind.InFlight(s, S, micro))
		actB += inflight * (sp.ActBytes + sp.BoundaryBytes)
		optB += sp.OptBytes(prec)
		pgB += sp.ParamBytes(prec) + sp.GradBytes(prec)
		if v := kind.WeightVersions(s, S); v > 1 {
			pgB += units.Bytes(int64(v-1) * sp.Params * prec.ParamBytes)
		}
	}
	total := float64(actB + optB + pgB)
	return float64(actB) / total * 100, float64(optB) / total * 100, float64(pgB) / total * 100, nil
}

// TableI regenerates Table I: the percentage of GPU memory demand per
// data class for Bert-0.64B (PipeDream) and GPT-5.3B (DAPPLE).
func TableI(w io.Writer) error {
	t := newTable("Model", "Activation", "Optimizer states", "Params & Gradients")
	type job struct {
		name  string
		cfg   func() (model.Config, error)
		prec  model.Precision
		kind  pipeline.ScheduleKind
		mb    int
		micro int
	}
	// Bert runs at microbatch 2, the largest setting where the paper's
	// PipeDream sustains 0.64B (Table I covers "trainable models").
	for _, j := range []job{
		{"Bert-0.64B", func() (model.Config, error) { return model.BertVariant("0.64B") }, model.FP32Adam(), pipeline.PipeDream, 2, 8},
		{"GPT-5.3B", func() (model.Config, error) { return model.GPTVariant("5.3B") }, model.MixedAdam(), pipeline.DAPPLE, 2, 8},
	} {
		cfg, err := j.cfg()
		if err != nil {
			return err
		}
		act, opt, pg, err := classShares(cfg, j.prec, j.kind, j.mb, j.micro)
		if err != nil {
			return err
		}
		t.addf("%s|%.0f%%|%.0f%%|%.0f%%", j.name, act, opt, pg)
	}
	t.write(w)
	fmt.Fprintln(w, "\npaper: Bert-0.64B 39/46/15, GPT-5.3B 42/44/14")
	return nil
}

// Figure2 regenerates Fig. 2: per-GPU peak memory of Bert-1.67B under
// PipeDream (microbatch 2) and DAPPLE (microbatch 12), measured by an
// unbounded run of the executor.
func Figure2(w io.Writer) error {
	cfg, err := model.BertVariant("1.67B")
	if err != nil {
		return err
	}
	t := newTable("System", "g0", "g1", "g2", "g3", "g4", "g5", "g6", "g7", "max/min")
	for _, j := range []struct {
		kind pipeline.ScheduleKind
		mb   int
	}{
		{pipeline.PipeDream, 2},
		{pipeline.DAPPLE, 12},
	} {
		prec := model.FP32Adam()
		part, err := pipeline.PartitionModel(cfg, 8, pipeline.ComputeBalanced, j.kind, prec, j.mb, 8)
		if err != nil {
			return err
		}
		b, err := pipeline.Build(pipeline.BuildConfig{
			Model: cfg, Prec: prec, Part: part, Kind: j.kind,
			MicrobatchSize: j.mb, Microbatches: 8, Minibatches: 2,
		})
		if err != nil {
			return err
		}
		res, err := exec.Run(exec.Options{
			Topo: hw.DGX1(), Built: b,
			Mapping: exec.IdentityMapping(8), Unbounded: true,
		})
		if err != nil {
			return err
		}
		cells := []string{fmt.Sprintf("%v bs=%d", j.kind, j.mb)}
		min, max := res.GPUs[0].Peak, units.Bytes(0)
		for _, g := range res.GPUs {
			p := g.Peak - pipeline.RuntimeReserve
			cells = append(cells, fmt.Sprintf("%.1f", p.GiBf()))
			if p > max {
				max = p
			}
			if p < min {
				min = p
			}
		}
		cells = append(cells, fmt.Sprintf("%.1fx", float64(max)/float64(min)))
		t.add(cells...)
	}
	t.write(w)
	fmt.Fprintln(w, "\npaper: monotonically decreasing, up to 7.9x most/least used")
	return nil
}

// TableII regenerates Table II: the total and per-stage max/min memory
// demands (GiB) of every Bert and GPT variant.
func TableII(w io.Writer) error {
	t := newTable("Job", "Config", "Total", "per-stage Max", "per-stage Min")
	row := func(label, size string, cfg model.Config, prec model.Precision, kind pipeline.ScheduleKind, mb int) error {
		part, err := pipeline.PartitionModel(cfg, 8, pipeline.ComputeBalanced, kind, prec, mb, 8)
		if err != nil {
			return err
		}
		d := pipeline.Demand(cfg, prec, part, kind, mb, 8)
		s := pipeline.Summarize(d)
		t.addf("%s|%s|%.1f|%.1f|%.1f", label, size,
			s.Total.GiBf(),
			(s.Max - pipeline.RuntimeReserve).GiBf(),
			(s.Min - pipeline.RuntimeReserve).GiBf())
		return nil
	}
	for _, size := range model.BertSizes() {
		cfg, err := model.BertVariant(size)
		if err != nil {
			return err
		}
		if err := row("Bert+PipeDream", size, cfg, model.FP32Adam(), pipeline.PipeDream, 12); err != nil {
			return err
		}
	}
	for _, size := range model.GPTSizes() {
		cfg, err := model.GPTVariant(size)
		if err != nil {
			return err
		}
		if err := row("GPT+DAPPLE", size, cfg, model.MixedAdam(), pipeline.DAPPLE, 2); err != nil {
			return err
		}
	}
	t.write(w)
	fmt.Fprintln(w, "\npaper: Bert 108.8-1279.1 GB total; GPT 164.8-806.2 GB total (GBs)")
	return nil
}
