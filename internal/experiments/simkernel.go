package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"mpress"
	"mpress/internal/sim"
	"mpress/internal/units"
)

func init() {
	register(Experiment{
		Name:  "simkernel",
		Title: "Simulation kernel: calendar queue vs heap, conservative PDES vs serial",
		Run:   SimKernel,
	})
}

// simKernelVariants are the kernel configurations every planner preset
// is re-run under. The serial auto-scheduler run is the baseline;
// each variant's report JSON must match it byte for byte.
var simKernelVariants = []struct {
	name    string
	sched   string
	workers int
}{
	{"heap", "heap", 0},
	{"calendar", "calendar", 0},
	{"pdes-w8", "auto", 8},
}

// simKernelRegimes mirrors BenchmarkSimKernel's horizon grid: dense is
// the executor's µs-scale regime (the calendar queue's home turf),
// burst packs hundreds of events per tick (the auto fallback case),
// sparse spreads events over seconds (width adaptation).
var simKernelRegimes = []struct {
	name   string
	maxGap int64
}{
	{"dense", 4096},
	{"burst", 256},
	{"sparse", 1 << 32},
}

// SimKernel measures the simulation kernel three ways. First the job
// level: every planner preset re-run under each scheduler and under
// the PDES kernel at 8 workers, with the report JSON asserted
// byte-identical to the serial baseline — the experiment fails on any
// divergence. Then the kernel level: a synthetic event churn across
// the horizon regimes, where the calendar queue's dense-horizon win
// and the burst regime's heap fallback are directly visible. Last the
// PDES level: a multi-partition replica workload with real lookahead
// (NIC-scale latency between replicas), identical at every worker
// count. On a single-core host the parallel runs measure barrier
// overhead, not speedup; the identity columns are the point.
func SimKernel(w io.Writer) error {
	if err := simKernelJobs(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	simKernelChurn(w)
	fmt.Fprintln(w)
	return simKernelReplicas(w)
}

// kernelRunner builds the isolated single-worker runner a variant runs
// on: artifacts kept so the executor's kernel stats are readable, the
// observer wired so -perf records cover the job.
func kernelRunner(workers int, sched string) *mpress.Runner {
	return mpress.NewRunner(mpress.RunnerOptions{
		Workers:       1,
		KeepArtifacts: true,
		SimWorkers:    workers,
		SimScheduler:  sched,
		OnJobDone:     notifyObserver,
	})
}

func simKernelJobs(w io.Writer) error {
	t := newTable("Preset", "Variant", "Scheduler", "Windows", "Events", "Events/s", "Report")
	row := func(preset, variant string, res mpress.JobResult, verdict string) {
		ex := res.State.Exec
		t.add(preset, variant, ex.SimScheduler, fmt.Sprint(ex.SimWindows),
			fmt.Sprint(ex.Events), fmt.Sprintf("%.0f", ex.EventsPerSec), verdict)
	}
	for _, p := range PlannerPresets() {
		j, err := mpress.NewJob(p.Cfg)
		if err != nil {
			return err
		}
		baseRunner := kernelRunner(0, "")
		base := baseRunner.Run(context.Background(), j)
		if base.Err != nil {
			return fmt.Errorf("simkernel %s serial: %w", p.Name, base.Err)
		}
		baseJSON, err := json.Marshal(base.Report)
		if err != nil {
			return err
		}
		row(p.Name, "serial", base, "baseline")
		// Seed each variant's fresh runner with the baseline's plan so
		// the expensive planner search runs once per preset; plans are
		// read-only after computation, exactly as the fleet tier shares
		// them.
		pl, havePlan := baseRunner.CachedPlan(j.PlanKey())
		for _, v := range simKernelVariants {
			vj, err := mpress.NewJob(p.Cfg)
			if err != nil {
				return err
			}
			r := kernelRunner(v.workers, v.sched)
			if havePlan {
				r.SeedPlan(vj.PlanKey(), pl)
			}
			res := r.Run(context.Background(), vj)
			if res.Err != nil {
				return fmt.Errorf("simkernel %s/%s: %w", p.Name, v.name, res.Err)
			}
			got, err := json.Marshal(res.Report)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, baseJSON) {
				return fmt.Errorf("simkernel %s/%s: report diverged from the serial baseline", p.Name, v.name)
			}
			row(p.Name, v.name, res, "identical")
		}
	}
	t.write(w)
	return nil
}

// kernelChurn drives the synthetic steady-state churn of
// BenchmarkSimKernel once: `pending` events stay queued while `churn`
// more flow through, gaps drawn from one horizon regime.
func kernelChurn(mode sim.SchedMode, pending, churn int, maxGap int64) sim.Stats {
	s := sim.Get()
	defer sim.Put(s)
	s.SetScheduler(mode)
	rng := rand.New(rand.NewSource(42))
	remaining := churn
	var fn func()
	fn = func() {
		if remaining > 0 {
			remaining--
			s.After(sim.Time(1+rng.Int63n(maxGap)), fn)
		}
	}
	for j := 0; j < pending; j++ {
		s.At(sim.Time(1+rng.Int63n(maxGap)), fn)
	}
	s.Run()
	return s.Stats()
}

func simKernelChurn(w io.Writer) {
	const pending, churn = 10_000, 200_000
	t := newTable("Regime", "Mode", "Scheduler", "Events", "Events/s")
	for _, hz := range simKernelRegimes {
		for _, mode := range []sim.SchedMode{sim.SchedHeap, sim.SchedCalendar, sim.SchedAuto} {
			st := kernelChurn(mode, pending, churn, hz.maxGap)
			t.add(hz.name, mode.String(), st.Scheduler,
				fmt.Sprint(st.Events), fmt.Sprintf("%.0f", st.EventsPerSec))
			if kernelObserver != nil {
				kernelObserver(KernelSample{
					Bench:        fmt.Sprintf("churn-%s-%dk-%s", hz.name, pending/1000, mode),
					Scheduler:    st.Scheduler,
					Events:       st.Events,
					EventsPerSec: st.EventsPerSec,
				})
			}
		}
	}
	t.write(w)
}

// pdesReplicas runs the multi-partition replica workload: `parts`
// pipeline replicas each drain a chain of compute steps on their own
// partition and every third step ships an activation to the ring
// neighbour at NIC-scale latency — the real-lookahead case the
// executor's zero-lookahead graph cannot exercise.
func pdesReplicas(parts, workers, steps int, lookahead units.Duration) (sim.Stats, sim.Time, error) {
	s := sim.New()
	err := s.EnablePDES(sim.PDESConfig{Partitions: parts, Lookahead: lookahead, Workers: workers})
	if err != nil {
		return sim.Stats{}, 0, err
	}
	for p := 0; p < parts; p++ {
		p := p
		pt := s.Partition(p)
		q := sim.NewQueueOn(pt, fmt.Sprintf("replica%d", p))
		var step func(i int)
		step = func(i int) {
			if i >= steps {
				return
			}
			q.Submit(units.Duration(3+i%7), func(start, end sim.Time) {
				if i%3 == 0 && parts > 1 {
					pt.Send((p+1)%parts, lookahead+units.Duration(i%5), func() {})
				}
				pt.After(units.Duration(1+i%11), func() { step(i + 1) })
			})
		}
		pt.At(units.Duration(p), func() { step(0) })
	}
	end := s.Run()
	return s.Stats(), end, nil
}

func simKernelReplicas(w io.Writer) error {
	const parts, steps = 4, 5_000
	lookahead := 10 * units.Microsecond
	t := newTable("Partitions", "Workers", "Windows", "Events", "Events/s", "End", "Result")
	var baseEnd sim.Time
	var baseEvents int64
	for _, workers := range []int{1, 2, 4, 8} {
		st, end, err := pdesReplicas(parts, workers, steps, lookahead)
		if err != nil {
			return fmt.Errorf("simkernel replicas (workers=%d): %w", workers, err)
		}
		verdict := "baseline"
		if workers == 1 {
			baseEnd, baseEvents = end, st.Events
		} else if end != baseEnd || st.Events != baseEvents {
			return fmt.Errorf("simkernel replicas (workers=%d): diverged (end %v vs %v, events %d vs %d)",
				workers, end, baseEnd, st.Events, baseEvents)
		} else {
			verdict = "identical"
		}
		t.add(fmt.Sprint(parts), fmt.Sprint(workers), fmt.Sprint(st.Windows),
			fmt.Sprint(st.Events), fmt.Sprintf("%.0f", st.EventsPerSec),
			fmt.Sprint(end), verdict)
		if kernelObserver != nil {
			kernelObserver(KernelSample{
				Bench:        fmt.Sprintf("pdes-replicas-p%d", parts),
				Scheduler:    st.Scheduler,
				Workers:      workers,
				Windows:      st.Windows,
				Events:       st.Events,
				EventsPerSec: st.EventsPerSec,
			})
		}
	}
	t.write(w)
	return nil
}
