package experiments

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// capture runs one experiment and returns its table text.
func capture(t *testing.T, name string) string {
	t.Helper()
	e, ok := Lookup(name)
	if !ok {
		t.Fatalf("experiment %q missing", name)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// row extracts the first table line starting with the given prefix.
func row(t *testing.T, out, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	t.Fatalf("no row starting with %q in:\n%s", prefix, out)
	return ""
}

// TestFigure7Content pins the figure's OOM cells in the rendered table.
func TestFigure7Content(t *testing.T) {
	out := capture(t, "fig7")
	if oom := strings.Count(row(t, out, "0.35B"), "OOM"); oom != 0 {
		t.Error("0.35B must train everywhere")
	}
	if oom := strings.Count(row(t, out, "4.0B"), "OOM"); oom != 3 {
		t.Errorf("4.0B row should show exactly 3 OOMs:\n%s", row(t, out, "4.0B"))
	}
	if oom := strings.Count(row(t, out, "1.67B"), "OOM"); oom != 2 {
		t.Errorf("1.67B row should show exactly 2 OOMs (plain + D2D-only):\n%s", row(t, out, "1.67B"))
	}
}

// TestFigure8bContent pins the slow-SSD inversion in the rendered table.
func TestFigure8bContent(t *testing.T) {
	out := capture(t, "fig8b")
	line := row(t, out, "20.4B")
	fields := strings.Fields(line)
	// GPT size, DAPPLE, +Recomp, Offload, Infinity, MPress
	if len(fields) != 6 {
		t.Fatalf("unexpected row shape: %q", line)
	}
	var off, inf, mp float64
	if _, err := fmtSscan(fields[3], &off); err != nil {
		t.Fatalf("offload cell %q", fields[3])
	}
	if _, err := fmtSscan(fields[4], &inf); err != nil {
		t.Fatalf("infinity cell %q", fields[4])
	}
	if _, err := fmtSscan(fields[5], &mp); err != nil {
		t.Fatalf("mpress cell %q", fields[5])
	}
	if !(inf < off && off < mp) {
		t.Errorf("20.4B ordering broken: offload=%v infinity=%v mpress=%v", off, inf, mp)
	}
}

// TestFigure4Content pins the ratio columns at the largest size.
func TestFigure4Content(t *testing.T) {
	out := capture(t, "fig4")
	line := row(t, out, "1.00GiB")
	fields := strings.Fields(line)
	if len(fields) != 6 {
		t.Fatalf("row shape: %q", line)
	}
	var pcie, nv6 float64
	fmtSscan(fields[1], &pcie)
	fmtSscan(fields[5], &nv6)
	if r := nv6 / pcie; r < 11.5 || r > 13 {
		t.Errorf("NV6/PCIe at 1GiB = %.2f", r)
	}
}

// TestFigure1Content pins the diagram's qualitative features.
func TestFigure1Content(t *testing.T) {
	out := capture(t, "fig1")
	if !strings.Contains(out, "PipeDream (async=true)") ||
		!strings.Contains(out, "DAPPLE (async=false)") {
		t.Fatal("missing schedule sections")
	}
	// Worker curves exist and worker1's peak exceeds worker3's in
	// both sections.
	re := regexp.MustCompile(`worker(\d) \|.*\| peak ([0-9.]+)MiB`)
	matches := re.FindAllStringSubmatch(out, -1)
	if len(matches) != 6 {
		t.Fatalf("expected 6 worker curves, got %d", len(matches))
	}
	for block := 0; block < 2; block++ {
		var w1, w3 float64
		fmtSscan(matches[block*3][2], &w1)
		fmtSscan(matches[block*3+2][2], &w3)
		if w1 <= w3 {
			t.Errorf("block %d: worker1 peak %v must exceed worker3 %v", block, w1, w3)
		}
	}
}

// TestTableIVContent: D2D appears for Bert-1.67B with the paper's
// early-stage placement.
func TestTableIVContent(t *testing.T) {
	out := capture(t, "table4")
	var d2dLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Bert-1.67B") && strings.Contains(line, "D2D") {
			d2dLine = line
			break
		}
	}
	if d2dLine == "" {
		t.Fatalf("no D2D row for Bert-1.67B:\n%s", out)
	}
	if !strings.Contains(d2dLine, "stage 0-") {
		t.Errorf("D2D must start at stage 0: %q", d2dLine)
	}
}

func fmtSscan(s string, out *float64) (int, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	*out = v
	return 1, nil
}
