package experiments

import (
	"fmt"
	"io"

	"mpress"
)

func init() {
	register(Experiment{
		Name:  "scaling",
		Title: "Scaling out: multi-node hybrid data+pipeline parallelism (MPress replicas + ring all-reduce)",
		Run:   Scaling,
	})
}

// Scaling measures weak-scaling efficiency of hybrid parallelism:
// each node runs one MPress pipeline replica and replicas synchronize
// gradients over the inter-node fabric. Efficiency is cluster
// throughput over N x the single-server throughput, so it isolates
// exactly what the fabric costs — near 1 on 4x100G InfiniBand, and
// degrading on 10G Ethernet where the all-reduce stops hiding under
// backward compute.
func Scaling(w io.Writer) error {
	type workload struct {
		label string
		cfg   mpress.Config
	}
	workloads := []workload{
		{"Bert-1.67B/PipeDream", mpress.Config{
			Model:          mpress.MustBert("1.67B"),
			Schedule:       mpress.PipeDream,
			System:         mpress.SystemMPress,
			MicrobatchSize: 12,
		}},
		{"GPT-5.3B/DAPPLE", mpress.Config{
			Model:          mpress.MustGPT("5.3B"),
			Schedule:       mpress.DAPPLE,
			System:         mpress.SystemMPress,
			MicrobatchSize: 2,
		}},
	}
	fabrics := []mpress.Fabric{mpress.InfiniBand4x100(), mpress.Ethernet10G()}
	nodeCounts := []int{1, 2, 4, 8}

	type row struct {
		model, fabric string
		nodes         int
	}
	var rows []row
	var cfgs []mpress.Config
	for _, wl := range workloads {
		for _, fab := range fabrics {
			for _, n := range nodeCounts {
				if n == 1 && fab.Name != fabrics[0].Name {
					continue // one node never touches the fabric; run it once
				}
				cfg := wl.cfg
				cfg.Cluster = mpress.MustCluster(n, mpress.DGX1(), fab)
				fabName := fab.Name
				if n == 1 {
					fabName = "-"
				}
				rows = append(rows, row{wl.label, fabName, n})
				cfgs = append(cfgs, cfg)
			}
		}
	}
	results := trainAll(cfgs)

	t := newTable("Model", "Fabric", "Nodes", "GPUs", "Cluster TFLOPS", "Efficiency", "Iter time", "NIC egress/node")
	base := map[string]float64{} // single-server TFLOPS per model
	for i, r := range rows {
		if r.nodes == 1 {
			if rep := results[i].Report; results[i].Err == nil && !rep.Failed() {
				base[r.model] = rep.TFLOPS
			}
		}
	}
	for i, r := range rows {
		res := results[i]
		if res.Err != nil {
			t.add(r.model, r.fabric, fmt.Sprint(r.nodes), "-", "ERR", "-", "-", "-")
			continue
		}
		rep := res.Report
		gpus := fmt.Sprint(r.nodes * 8)
		if rep.Failed() {
			t.add(r.model, r.fabric, fmt.Sprint(r.nodes), gpus, "OOM", "-", "-", "-")
			continue
		}
		eff := "-"
		if b := base[r.model]; b > 0 {
			eff = fmt.Sprintf("%.1f%%", 100*rep.ClusterTFLOPS/(float64(r.nodes)*b))
		}
		t.add(r.model, r.fabric, fmt.Sprint(r.nodes), gpus,
			fmt.Sprintf("%.1f", rep.ClusterTFLOPS), eff,
			fmt.Sprint(rep.Duration), fmt.Sprint(rep.NICBytes))
	}
	t.write(w)
	return nil
}
