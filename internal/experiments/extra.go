package experiments

import (
	"fmt"
	"io"

	"mpress"
	"mpress/internal/hw"
	"mpress/internal/mapping"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/units"
)

// Small wrappers keep HardwareInsights readable.
func pipelinePartition(cfg model.Config, prec model.Precision, mb int) (pipeline.Partition, error) {
	return pipeline.PartitionModel(cfg, 8, pipeline.ComputeBalanced, pipeline.DAPPLE, prec, mb, 8)
}

func pipelineDemand(cfg model.Config, prec model.Precision, part pipeline.Partition, mb int) []units.Bytes {
	return pipeline.Demand(cfg, prec, part, pipeline.DAPPLE, mb, 8)
}

func pipelineProfiles(cfg model.Config, part pipeline.Partition, mb int) []pipeline.StageProfile {
	return pipeline.Profile(cfg, part, mb)
}

func init() {
	register(Experiment{
		Name:  "mapping-cost",
		Title: "Sec. IV-D: device-mapping search cost under a stress case",
		Run:   MappingSearchCost,
	})
	register(Experiment{
		Name:  "partition-ablation",
		Title: "Sec. II-D: memory-balanced vs compute-balanced partitioning",
		Run:   PartitionAblation,
	})
	register(Experiment{
		Name:  "grace",
		Title: "Sec. V: Grace-Hopper projection for GPT-3 175B",
		Run:   HardwareInsights,
	})
}

// MappingSearchCost regenerates the Sec. IV-D measurement: the wall
// time of the Fig. 6 search for a stress case (every stage overflowing
// or spare, full 8! enumeration) and a typical case.
func MappingSearchCost(w io.Writer) error {
	topo := hw.DGX1()
	t := newTable("Case", "Assignments", "Wall time", "Placed", "Slowest exporter")
	stress := make([]units.Bytes, 8)
	for i := range stress {
		// Alternating heavy overflow and deep spare maximizes the
		// combinatorial surface.
		if i%2 == 0 {
			stress[i] = topo.GPU.Memory + units.GB(10)
		} else {
			stress[i] = units.GB(4)
		}
	}
	typical := make([]units.Bytes, 8)
	for i := range typical {
		typical[i] = topo.GPU.Memory + units.GB(6) - units.GB(float64(i)*4)
	}
	for _, c := range []struct {
		name    string
		demands []units.Bytes
	}{{"stress", stress}, {"typical", typical}} {
		r, err := mapping.Search(topo, c.demands)
		if err != nil {
			return err
		}
		t.addf("%s|%d|%s|%s|%s", c.name, r.Searched, r.Elapsed, r.Placed, r.MaxTime)
	}
	t.write(w)
	fmt.Fprintln(w, "\npaper: the stress case completes within 47s single-threaded;")
	fmt.Fprintln(w, "       ordinary cases take a few seconds")
	return nil
}

// PartitionAblation regenerates the Sec. II-D claim: memory-balanced
// partitioning lowers the peak stage demand but costs throughput
// relative to the recommended compute-balanced strategy.
func PartitionAblation(w io.Writer) error {
	t := newTable("Strategy", "TFLOPS", "Max stage demand", "Loss")
	strats := []mpress.Strategy{mpress.ComputeBalanced, mpress.MemoryBalanced}
	var cfgs []mpress.Config
	for _, strat := range strats {
		cfgs = append(cfgs, mpress.Config{
			Topology:       mpress.DGX1(),
			Model:          mpress.MustBert("1.67B"),
			Schedule:       mpress.PipeDream,
			Strategy:       strat,
			System:         mpress.SystemMPress,
			MicrobatchSize: 12,
		})
	}
	results := trainAll(cfgs)
	var base float64
	for i, strat := range strats {
		if err := results[i].Err; err != nil {
			return err
		}
		rep := results[i].Report
		var tflops float64
		var peak mpress.Bytes
		if !rep.Failed() {
			tflops = rep.TFLOPS
			for _, p := range rep.PerGPUPeak {
				if p > peak {
					peak = p
				}
			}
		}
		loss := "-"
		if base == 0 {
			base = tflops
		} else if base > 0 {
			loss = fmt.Sprintf("%.1f%%", (1-tflops/base)*100)
		}
		t.addf("%v|%.1f|%.1f GiB|%s", strat, tflops, peak.GiBf(), loss)
	}
	t.write(w)
	fmt.Fprintln(w, "\npaper: memory-balanced partitioning loses ~34% training performance")
	return nil
}

// HardwareInsights regenerates the Sec. V projection, which the paper
// describes as "a simple analysis which projects [MPress's] ideal
// performance" on an 8-module Grace-Hopper server training GPT-3
// 175B: per-module memory demand vs HBM, the C2C bandwidth needed to
// hide swapping entirely, and the projected overhead of swap-only and
// recompute-only alternatives.
func HardwareInsights(w io.Writer) error {
	topo := hw.GraceHopper()
	cfg := model.GPT3_175B()
	prec := model.MixedAdam()
	mb := 1

	t := newTable("Quantity", "Value")
	t.addf("GPT-3 parameters|%.0fB", cfg.Billions())

	// Per-stage demand of a plain DAPPLE pipeline over the 8 modules.
	part, err := pipelinePartition(cfg, prec, mb)
	if err != nil {
		return err
	}
	demands := pipelineDemand(cfg, prec, part, mb)
	var maxDemand units.Bytes
	for _, d := range demands {
		if d > maxDemand {
			maxDemand = d
		}
	}
	t.addf("per-module demand (plain pipeline)|%s", maxDemand)
	t.addf("per-module HBM|%s", topo.GPU.Memory)
	if maxDemand > topo.GPU.Memory {
		t.addf("plain pipeline|OOM (demand %.1fx of HBM)", float64(maxDemand)/float64(topo.GPU.Memory))
	}
	t.addf("per-module C2C memory|%s", units.Bytes(512*units.GiB))
	t.addf("C2C bandwidth|%s", topo.PCIeBW)

	// Bytes that must leave HBM per iteration if the overflow is
	// swapped, and the bandwidth that would fully hide the movement
	// inside the iteration's compute time.
	overflow := maxDemand - topo.GPU.Memory
	profiles := pipelineProfiles(cfg, part, mb)
	var computeTime units.Duration
	rate := units.FLOPSRate(float64(topo.GPU.EffectiveFP16()))
	for _, sp := range profiles {
		if d := rate.ComputeTime(sp.FwFLOPs + sp.BwFLOPs); d > computeTime {
			computeTime = d
		}
	}
	microbatches := 8 // the paper-scale accumulation window
	iter := computeTime * units.Duration(microbatches)
	traffic := overflow * 2 // out and back
	needed := units.Bandwidth(float64(traffic) / iter.Secondsf())
	t.addf("overflow to swap per module|%s", overflow)
	t.addf("bandwidth to fully hide swap|%s (paper: >140 GB/s)", needed)
	t.addf("C2C shortfall|%.1fx", float64(needed)/float64(topo.PCIeBW))

	// Projected overheads of the two stand-alone alternatives.
	swapTime := units.Duration(float64(traffic) / float64(topo.PCIeBW) * 1e9)
	swapOverhead := float64(swapTime-iter) / float64(iter) * 100
	if swapTime < iter {
		swapOverhead = 0
	}
	// The paper's 13% figure assumes only the post-recomputation
	// residual swaps; this row projects the harsher all-overflow case.
	t.addf("swap-only overhead (all overflow via C2C)|%.0f%%", swapOverhead)
	// Recompute-only wastes one extra forward per block: fw is 1/3 of
	// fw+bw, so ≈ 25% extra compute, matching the paper's figure.
	t.addf("recompute-only wasted compute|25%% (paper: 25%%)")
	t.write(w)
	fmt.Fprintln(w, "\npaper: 175B GPT-3 still OOMs on plain Grace-Hopper; C2C alone cannot")
	fmt.Fprintln(w, "       hide the swap, so D2D swap remains valuable on new hardware")
	return nil
}
