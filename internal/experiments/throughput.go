package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"mpress"
	"mpress/internal/graph"
	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/units"
)

func init() {
	register(Experiment{
		Name:  "fig7",
		Title: "Figure 7: Bert training performance atop PipeDream (DGX-1, mb=12)",
		Run:   Figure7,
	})
	register(Experiment{
		Name:  "fig8a",
		Title: "Figure 8a: GPT training performance atop DAPPLE (DGX-1, mb=2)",
		Run:   func(w io.Writer) error { return Figure8(w, false) },
	})
	register(Experiment{
		Name:  "fig8b",
		Title: "Figure 8b: GPT training performance atop DAPPLE (DGX-2, mb=2)",
		Run:   func(w io.Writer) error { return Figure8(w, true) },
	})
	register(Experiment{
		Name:  "fig9",
		Title: "Figure 9: device mapping and data striping ablation (Bert-1.67B)",
		Run:   Figure9,
	})
}

// cell renders a training outcome as the figure's bar (TFLOPS) or the
// red cross (OOM).
func cell(rep *mpress.Report, err error) string {
	if err != nil {
		return "ERR"
	}
	if rep.Failed() {
		return "OOM"
	}
	return fmt.Sprintf("%.1f", rep.TFLOPS)
}

// Figure7 regenerates Fig. 7: TFLOPS of the five systems across the
// Bert variants, atop PipeDream on the DGX-1.
func Figure7(w io.Writer) error {
	systems := []mpress.System{
		mpress.SystemPlain, mpress.SystemGPUCPUSwap, mpress.SystemRecompute,
		mpress.SystemMPressD2D, mpress.SystemMPress,
	}
	sizes := []string{"0.35B", "0.64B", "1.67B", "4.0B", "6.2B"}
	var cfgs []mpress.Config
	for _, size := range sizes {
		for _, sys := range systems {
			cfgs = append(cfgs, mpress.Config{
				Topology:       mpress.DGX1(),
				Model:          mpress.MustBert(size),
				Schedule:       mpress.PipeDream,
				System:         sys,
				MicrobatchSize: 12,
			})
		}
	}
	results := trainAll(cfgs)

	header := []string{"Bert size"}
	for _, s := range systems {
		header = append(header, s.String())
	}
	t := newTable(header...)
	i := 0
	for _, size := range sizes {
		row := []string{size}
		for range systems {
			row = append(row, cell(results[i].Report, results[i].Err))
			i++
		}
		t.add(row...)
	}
	t.write(w)
	fmt.Fprintln(w, "\npaper: swap<recomp<MPress; recomp dies at 4B; D2D-only dies at 1.67B;")
	fmt.Fprintln(w, "       only swap and MPress survive 4B/6.2B (TFLOPS, aggregate)")
	return nil
}

// Figure8 regenerates Fig. 8a/8b: GPT throughput across DAPPLE,
// DAPPLE+Recomputation, the two ZeRO baselines and MPress. The ZeRO
// baselines on the DGX-1 run on the paper's NVMe-equipped sibling
// server (Sec. IV-C).
func Figure8(w io.Writer, dgx2 bool) error {
	var topo, zeroTopo *mpress.Topology
	sizes := []string{"5.3B", "10.3B", "15.4B", "20.4B"}
	if dgx2 {
		topo, zeroTopo = mpress.DGX2(), mpress.DGX2()
		sizes = append(sizes, "25.5B")
	} else {
		topo, zeroTopo = mpress.DGX1(), mpress.DGX1WithNVMe()
	}
	systems := []mpress.System{
		mpress.SystemPlain, mpress.SystemRecompute,
		mpress.SystemZeROOffload, mpress.SystemZeROInfinity, mpress.SystemMPress,
	}
	var cfgs []mpress.Config
	for _, size := range sizes {
		for _, sys := range systems {
			tp := topo
			if sys == mpress.SystemZeROOffload || sys == mpress.SystemZeROInfinity {
				tp = zeroTopo
			}
			cfgs = append(cfgs, mpress.Config{
				Topology:       tp,
				Model:          mpress.MustGPT(size),
				Schedule:       mpress.DAPPLE,
				System:         sys,
				MicrobatchSize: 2,
			})
		}
	}
	results := trainAll(cfgs)

	header := []string{"GPT size", "DAPPLE", "DAPPLE+Recomp", "ZeRO-Offload", "ZeRO-Infinity", "MPress"}
	t := newTable(header...)
	i := 0
	for _, size := range sizes {
		row := []string{size}
		for range systems {
			row = append(row, cell(results[i].Report, results[i].Err))
			i++
		}
		t.add(row...)
	}
	t.write(w)
	if dgx2 {
		fmt.Fprintln(w, "\npaper: all >2x DGX-1; slow SSDs put ZeRO-Infinity below ZeRO-Offload;")
		fmt.Fprintln(w, "       MPress above both (they lose 23-70% / 30-45% to it)")
	} else {
		fmt.Fprintln(w, "\npaper: MPress sustains throughput at every size, 37-41% above")
		fmt.Fprintln(w, "       ZeRO-Infinity, which beats ZeRO-Offload by 21-24%")
	}
	return nil
}

// Figure9 regenerates Fig. 9: MPress as device mapping and data
// striping are enabled, relative to the default setting (identity
// mapping, single-peer unstriped D2D), on both topologies.
//
// Substitution notes: (1) the paper ablates on GPT-15.4B, but in our
// calibration that job leaves no spare memory for D2D on any stage,
// so Bert-1.67B at microbatch 12 — the job where our planner routes
// the most D2D traffic (28% of savings, mirroring the paper's 23.4%)
// — carries the ablation instead; (2) our simulated compute slots are
// long enough to hide even unstriped D2D transfers end to end, so in
// addition to normalized throughput the table reports the mean D2D
// restore latency, where the two optimizations' bandwidth effect is
// directly visible.
func Figure9(w io.Writer) error {
	bert, err := model.BertVariant("1.67B")
	if err != nil {
		return err
	}
	prec := model.FP32Adam()
	topos := []struct {
		name string
		topo func() *hw.Topology
	}{
		{"DGX-1 (asymmetric)", hw.DGX1},
		{"DGX-2 (symmetric)", hw.DGX2},
	}
	settings := []struct {
		name                      string
		disableMap, disableStripe bool
	}{
		{"default", true, true},
		{"+device mapping", false, true},
		{"+data striping", true, false},
		{"both", false, false},
	}
	var cfgs []mpress.Config
	for _, tc := range topos {
		for _, s := range settings {
			cfgs = append(cfgs, mpress.Config{
				Topology:  tc.topo(),
				Model:     bert,
				Schedule:  mpress.PipeDream,
				Precision: &prec,
				Stages:    8, MicrobatchSize: 12, Microbatches: 32, Minibatches: 2,
				System:               mpress.SystemMPress,
				DisableMappingSearch: s.disableMap,
				DisableStriping:      s.disableStripe,
			})
		}
	}
	// A dedicated runner keeps the lowered graphs and raw exec results
	// around (KeepArtifacts) so the D2D restore spans can be measured.
	r := mpress.NewRunner(mpress.RunnerOptions{Workers: parallelism, KeepArtifacts: true})
	results := r.RunConfigs(context.Background(), cfgs)

	type outcome struct {
		tflops  float64
		restore units.Duration
	}
	outcomeOf := func(jr mpress.JobResult) (outcome, error) {
		if jr.Err != nil {
			return outcome{}, jr.Err
		}
		if jr.Report.Failed() {
			return outcome{}, nil
		}
		b, res := jr.State.Built, jr.State.Exec
		var total units.Duration
		var n int
		for i, op := range b.Graph.Ops() {
			if op.Kind == graph.SwapIn && strings.HasPrefix(op.Name, "d2d") {
				sp := res.Spans[i]
				total += units.Duration(sp.End - sp.Start)
				n++
			}
		}
		out := outcome{tflops: res.TFLOPS}
		if n > 0 {
			out.restore = total / units.Duration(n)
		}
		return out, nil
	}

	t := newTable("Topology", "Setting", "Norm. TFLOPS", "Mean D2D restore")
	for ti, tc := range topos {
		// The "default" setting is the normalization base.
		base, err := outcomeOf(results[ti*len(settings)])
		if err != nil {
			return err
		}
		for si, s := range settings {
			o, err := outcomeOf(results[ti*len(settings)+si])
			if err != nil {
				return err
			}
			norm := "n/a"
			if base.tflops > 0 && o.tflops > 0 {
				norm = fmt.Sprintf("%.3f", o.tflops/base.tflops)
			}
			restore := "n/a"
			if o.restore > 0 {
				restore = o.restore.String()
			}
			t.add(tc.name, s.name, norm, restore)
		}
	}
	t.write(w)
	fmt.Fprintln(w, "\npaper: DGX-1 +17.4% mapping, +33.3% striping; DGX-2 mapping neutral,")
	fmt.Fprintln(w, "       +11% striping (throughput; our effect lands on restore latency)")
	return nil
}
