package experiments

import (
	"context"
	"io"

	"mpress/internal/capacity"
)

func init() {
	register(Experiment{
		Name:  "capacity",
		Title: "Capacity planning: job-mix ranking over the machine catalog ($ and Wh per 1000 samples)",
		Run:   Capacity,
	})
}

// capacitySpec mirrors examples/capacity/jobmix.json — the committed
// lab-fleet mix — so the experiment's artifact and the README
// walkthrough stay the same scenario: a weighted GPT-5.3B pretrain, a
// fault-injected Bert-1.67B (2-minute MTBF) and a Bert-0.35B finetune,
// placed across the whole catalog at 1-2 nodes under a 0.7 goodput-
// fraction SLO.
func capacitySpec() *capacity.Spec {
	return &capacity.Spec{
		Name: "lab-fleet",
		Seed: 42,
		Jobs: []capacity.JobClass{
			{Name: "gpt-pretrain", Family: "gpt", Size: "5.3B", System: "mpress", Weight: 2},
			{Name: "bert-resilient", Family: "bert", Size: "1.67B", System: "swap", Minibatches: 4, MTBFSeconds: 120},
			{Name: "bert-finetune", Family: "bert", Size: "0.35B", System: "plain"},
		},
		SLO: capacity.SLO{GoodputFrac: 0.7, MinSamplesPerSec: 25},
		Candidates: capacity.Candidates{
			Nodes:             []int{1, 2},
			TP:                []int{1},
			CheckpointSeconds: []float64{0, 30},
		},
	}
}

// Capacity runs the lab-fleet mix through the what-if engine and
// emits the ranked recommendation table followed by the full
// evaluation as CSV. Like the resilience experiment the CSV is a
// determinism artifact: fixed seed, byte-identical at any worker
// count (TestCapacityContent pins the recommendation and rejection
// reasons).
func Capacity(w io.Writer) error {
	res, err := capacity.Evaluate(context.Background(), capacitySpec(),
		capacity.Options{Workers: parallelism, OnJobDone: observer})
	if err != nil {
		return err
	}
	capacity.WriteTable(w, res)
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	return capacity.WriteCSV(w, res)
}
