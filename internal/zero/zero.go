// Package zero implements the paper's data-parallel baselines: the
// ZeRO family from DeepSpeed (Sec. II-D, evaluated in Fig. 8).
//
//   - ZeRO3 partitions parameters, gradients and optimizer states
//     across the data-parallel ranks; every layer's parameters are
//     all-gathered before use and gradients reduce-scattered after
//     the backward pass.
//   - ZeROOffload additionally keeps optimizer states (and the Adam
//     step) on the CPU: gradients stream to host memory per
//     microbatch, updated parameters stream back every step.
//   - ZeROInfinity parks parameters and optimizer states on NVMe and
//     swaps them through host memory with a carefully overlapped
//     schedule.
//
// Because every rank does identical work, the simulator models rank
// 0's timeline on the DES (compute stream + PCIe + NVMe queues) and
// charges collective times from the topology's aggregate NVLink
// bandwidth. Activation checkpointing is always on, matching how
// DeepSpeed is configured for billion-scale models.
package zero

import (
	"fmt"

	"mpress/internal/hw"
	"mpress/internal/memsim"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// Variant selects the baseline.
type Variant int

const (
	ZeRO3 Variant = iota
	ZeROOffload
	ZeROInfinity
)

// String returns the DeepSpeed-style name.
func (v Variant) String() string {
	switch v {
	case ZeRO3:
		return "ZeRO-3"
	case ZeROOffload:
		return "ZeRO-Offload"
	case ZeROInfinity:
		return "ZeRO-Infinity"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// computeEfficiency derates the GPU's sustained rate for ZeRO's
// layer-granular execution: parameter gathering, partition bookkeeping
// and per-layer kernel launches keep DeepSpeed below the fused
// stage-graph efficiency the pipeline engines reach.
const computeEfficiency = 0.7

// collectiveEfficiency discounts the theoretical ring bandwidth for
// protocol overheads; small per-layer collectives on 8 ranks reach
// roughly half the bus bandwidth.
const collectiveEfficiency = 0.55

// collectiveLatency is the per-collective launch/synchronization cost
// across 8 ranks.
const collectiveLatency = 150 * units.Microsecond

// hostMemBW approximates the effective CPU-side streaming bandwidth
// of ZeRO-Offload's vectorized CPU-Adam (several passes over fp32
// state bound by socket memory bandwidth).
var hostMemBW = units.GBps(8)

// Config describes one baseline training job.
type Config struct {
	Topo    *hw.Topology
	Model   model.Config
	Prec    model.Precision
	Variant Variant
	// MicrobatchSize is the per-GPU microbatch; GradAccum is how many
	// microbatches accumulate into one optimizer step (matching the
	// pipeline jobs' minibatch = MicrobatchSize × GradAccum × NumGPUs
	// samples is the caller's responsibility).
	MicrobatchSize int
	GradAccum      int
	// Steps is the number of optimizer steps to simulate.
	Steps int
}

// Result mirrors exec.Result for the baselines.
type Result struct {
	OOM           *memsim.OOMError
	Duration      units.Duration
	TFLOPS        float64
	SamplesPerSec float64
	// PerGPUPeak holds one entry per data-parallel rank. ZeRO's ranks
	// partition model state evenly and run identical schedules, so the
	// simulator models rank 0's timeline and the entries are equal by
	// symmetry (asserted by TestPerGPUPeakSymmetry) — but the slice
	// shape matches exec.Result so callers index it uniformly.
	PerGPUPeak []units.Bytes
	HostPeak   units.Bytes
	NVMePeak   units.Bytes
}

// Run simulates the baseline and returns its result. OOM (GPU, host
// or NVMe capacity) is reported in the result, not as an error.
func Run(c Config) (*Result, error) {
	if c.Topo == nil {
		return nil, fmt.Errorf("zero: topology required")
	}
	if err := c.Model.Validate(); err != nil {
		return nil, err
	}
	if c.MicrobatchSize <= 0 || c.GradAccum <= 0 {
		return nil, fmt.Errorf("zero: batch shape %d/%d", c.MicrobatchSize, c.GradAccum)
	}
	if c.Steps <= 0 {
		c.Steps = 2
	}
	if c.Variant == ZeROInfinity && c.Topo.NVMeBW <= 0 {
		return nil, fmt.Errorf("zero: %s requires an NVMe tier on %s", c.Variant, c.Topo.Name)
	}

	if oom := c.memoryCheck(); oom != nil {
		return &Result{OOM: oom}, nil
	}

	dur := c.simulate()
	res := &Result{Duration: dur}
	rankPeak := c.gpuResident() + c.transientBytes()
	res.PerGPUPeak = make([]units.Bytes, c.Topo.NumGPUs)
	for i := range res.PerGPUPeak {
		res.PerGPUPeak[i] = rankPeak
	}
	res.HostPeak = c.hostResident()
	res.NVMePeak = c.nvmeResident()
	flopsPerGPU := c.usefulFLOPs()
	total := float64(flopsPerGPU) * float64(c.Topo.NumGPUs) * float64(c.Steps)
	secs := dur.Secondsf()
	if secs > 0 {
		res.TFLOPS = total / 1e12 / secs
		res.SamplesPerSec = float64(c.MicrobatchSize*c.GradAccum*c.Topo.NumGPUs*c.Steps) / secs
	}
	return res, nil
}

// partitionedBytes returns this rank's share of a per-parameter state.
func (c Config) partitionedBytes(perParam int64) units.Bytes {
	return units.Bytes(c.Model.TotalParams() * perParam / int64(c.Topo.NumGPUs))
}

// layerParamBytes is one transformer block's fp16 parameter footprint
// (the unit of all-gather traffic).
func (c Config) layerParamBytes() units.Bytes {
	return units.Bytes(c.Model.ParamsPerBlock() * c.Prec.ParamBytes)
}

// checkpointBytes is the per-layer activation checkpoint (the layer
// input) for the local microbatch.
func (c Config) checkpointBytes() units.Bytes {
	return c.Model.BoundaryBytes(c.MicrobatchSize)
}

// transientBytes is the working set during one layer's computation:
// the gathered parameters of the current and prefetched layer plus
// one layer's full activations (rematerialized during backward).
func (c Config) transientBytes() units.Bytes {
	return 2*c.layerParamBytes() + c.Model.BlockActivationBytes(c.MicrobatchSize)
}

// gpuResident is the per-GPU persistent residency by variant.
func (c Config) gpuResident() units.Bytes {
	r := pipeline.RuntimeReserve
	// Activation checkpoints for every in-flight microbatch: with
	// gradient accumulation, one microbatch is live at a time.
	r += c.checkpointBytes() * units.Bytes(c.Model.Layers)
	switch c.Variant {
	case ZeRO3:
		r += c.partitionedBytes(c.Prec.ParamBytes + c.Prec.GradBytes + c.Prec.OptBytes)
	case ZeROOffload:
		r += c.partitionedBytes(c.Prec.ParamBytes + c.Prec.GradBytes)
	case ZeROInfinity:
		// Parameters and optimizer on NVMe; only the gradient
		// partition stays resident between microbatches.
		r += c.partitionedBytes(c.Prec.GradBytes)
	}
	return r
}

func (c Config) hostResident() units.Bytes {
	switch c.Variant {
	case ZeROOffload:
		// fp32 optimizer states live in host memory.
		return c.partitionedBytes(c.Prec.OptBytes) * units.Bytes(c.Topo.NumGPUs)
	case ZeROInfinity:
		// Staging buffers only.
		return 2 * c.layerParamBytes() * units.Bytes(c.Topo.NumGPUs)
	default:
		return 0
	}
}

func (c Config) nvmeResident() units.Bytes {
	if c.Variant != ZeROInfinity {
		return 0
	}
	return units.Bytes(c.Model.TotalParams() * (c.Prec.ParamBytes + c.Prec.OptBytes))
}

// memoryCheck validates GPU, host and NVMe capacities.
func (c Config) memoryCheck() *memsim.OOMError {
	need := c.gpuResident() + c.transientBytes()
	if cap := c.Topo.GPU.Memory; need > cap {
		return &memsim.OOMError{
			Device: "gpu0", Requested: c.transientBytes(),
			InUse: c.gpuResident(), Capacity: cap,
			What: fmt.Sprintf("%s working set", c.Variant),
		}
	}
	if host := c.hostResident(); host > c.Topo.HostMemory {
		return &memsim.OOMError{
			Device: "host", Requested: host, InUse: 0,
			Capacity: c.Topo.HostMemory, What: "offloaded optimizer states",
		}
	}
	if nvme := c.nvmeResident(); c.Variant == ZeROInfinity && nvme > c.Topo.NVMeSize {
		return &memsim.OOMError{
			Device: "nvme", Requested: nvme, InUse: 0,
			Capacity: c.Topo.NVMeSize, What: "NVMe-resident model states",
		}
	}
	return nil
}

// collectiveTime charges a ring collective of size bytes (all-gather
// or reduce-scatter of a full layer) across the data-parallel group.
func (c Config) collectiveTime(size units.Bytes) units.Duration {
	n := float64(c.Topo.NumGPUs)
	bus := float64(c.Topo.AggregateNVLinkBW(0)) * collectiveEfficiency
	bytes := float64(size) * (n - 1) / n
	return collectiveLatency + units.Duration(bytes/bus*1e9)
}

// usefulFLOPs is rank 0's model compute per step (fw + bw), excluding
// the checkpoint recomputation.
func (c Config) usefulFLOPs() units.FLOPs {
	perMB := units.FLOPs(float64(c.Model.Layers))*c.Model.BlockForwardFLOPs(c.MicrobatchSize)*3 +
		c.Model.HeadForwardFLOPs(c.MicrobatchSize)*3
	return perMB * units.FLOPs(c.GradAccum)
}

// busy-until cursor helper: a serial resource timeline.
type cursor units.Duration

// reserve books the resource from max(earliest, cursor) for dur and
// returns the completion time.
func (c *cursor) reserve(earliest, dur units.Duration) units.Duration {
	start := earliest
	if units.Duration(*c) > start {
		start = units.Duration(*c)
	}
	end := start + dur
	*c = cursor(end)
	return end
}

// simulate runs rank 0's deterministic timeline: a compute cursor plus
// serial cursors for the NVLink collective channel, the two PCIe
// directions, and the NVMe path. Parameter fetches for layer l+1
// overlap layer l's compute (DeepSpeed's prefetching).
func (c Config) simulate() units.Duration {
	var now units.Duration
	var comm, pcieIn, pcieOut, nvme cursor

	rate := c.Topo.GPU.EffectiveFP16()
	if c.Model.DType == tensor.FP32 {
		rate = c.Topo.GPU.EffectiveFP32()
	}
	rate = units.FLOPSRate(float64(rate) * computeEfficiency)
	fwT := rate.ComputeTime(c.Model.BlockForwardFLOPs(c.MicrobatchSize))
	headT := rate.ComputeTime(c.Model.HeadForwardFLOPs(c.MicrobatchSize))
	agT := c.collectiveTime(c.layerParamBytes())
	rsT := c.collectiveTime(c.layerParamBytes())
	n := units.Bytes(c.Topo.NumGPUs)
	layerShare := c.layerParamBytes() / n
	gradShare := units.Bytes(c.Model.ParamsPerBlock() * c.Prec.GradBytes / int64(c.Topo.NumGPUs))

	// fetch makes layer parameters resident: for ZeRO-Infinity the
	// rank-local shard streams NVMe -> host -> device first, then the
	// group all-gathers.
	fetch := func(earliest units.Duration) units.Duration {
		ready := earliest
		if c.Variant == ZeROInfinity {
			e1 := nvme.reserve(earliest, c.Topo.NVMeLatency+c.Topo.NVMeBW.TransferTime(layerShare))
			e2 := pcieIn.reserve(earliest, c.Topo.PCIeLatency+c.Topo.PCIeBW.TransferTime(layerShare))
			if e1 > ready {
				ready = e1
			}
			if e2 > ready {
				ready = e2
			}
		}
		return comm.reserve(ready, agT)
	}

	L := c.Model.Layers
	for step := 0; step < c.Steps; step++ {
		for mb := 0; mb < c.GradAccum; mb++ {
			// Forward.
			ready := fetch(now)
			for l := 0; l < L; l++ {
				start := now
				if ready > start {
					start = ready
				}
				if l+1 < L {
					ready = fetch(start) // prefetch overlaps compute
				}
				now = start + fwT
			}
			now += headT

			// Backward with checkpoint rematerialization: re-fetch
			// parameters, recompute the forward, run the 2x backward,
			// then reduce-scatter the layer gradients asynchronously.
			ready = fetch(now)
			for l := L - 1; l >= 0; l-- {
				start := now
				if ready > start {
					start = ready
				}
				if l > 0 {
					ready = fetch(start)
				}
				now = start + 3*fwT
				gradsReady := comm.reserve(now, rsT)
				if c.Variant == ZeROOffload {
					pcieOut.reserve(gradsReady, c.Topo.PCIeLatency+c.Topo.PCIeBW.TransferTime(gradShare))
				}
				if c.Variant == ZeROInfinity && mb == c.GradAccum-1 {
					// Infinity streams each layer's optimizer-state
					// partition through NVMe as soon as its gradients
					// are final, overlapping the remaining backward
					// (the paper's "carefully designed GPU-CPU swap").
					layerOpt := units.Bytes(c.Model.ParamsPerBlock() * c.Prec.OptBytes / int64(c.Topo.NumGPUs))
					nvme.reserve(gradsReady, c.Topo.NVMeLatency+c.Topo.NVMeBW.TransferTime(layerOpt*2))
				}
			}
			now += 2 * headT
			// Gradients must be fully reduced (and, for Offload,
			// streamed to the host) before they may be consumed.
			if d := units.Duration(comm); d > now {
				now = d
			}
			if d := units.Duration(pcieOut); d > now {
				now = d
			}
		}

		// Optimizer step.
		optShare := c.partitionedBytes(c.Prec.OptBytes)
		switch c.Variant {
		case ZeRO3:
			now += c.Topo.GPU.HBM.TransferTime(optShare * 2)
		case ZeROOffload:
			// Vectorized CPU Adam over the host partition, then the
			// updated fp16 parameters return over PCIe.
			cpuDone := now + hostMemBW.TransferTime(optShare*2)
			e := pcieIn.reserve(cpuDone, c.Topo.PCIeLatency+c.Topo.PCIeBW.TransferTime(c.partitionedBytes(c.Prec.ParamBytes)))
			now = e
		case ZeROInfinity:
			// Stream the optimizer partition through NVMe (read +
			// write), overlapping the parameter write-back.
			e1 := nvme.reserve(now, c.Topo.NVMeLatency+c.Topo.NVMeBW.TransferTime(optShare*2))
			e2 := pcieIn.reserve(now, c.Topo.PCIeLatency+c.Topo.PCIeBW.TransferTime(c.partitionedBytes(c.Prec.ParamBytes)))
			now = e1
			if e2 > now {
				now = e2
			}
		}
	}
	return now
}
