package zero

import (
	"testing"

	"mpress/internal/hw"
	"mpress/internal/model"
)

// TestStepsScaleLinearly: doubling the simulated steps roughly doubles
// the duration (steady-state, no warmup artifacts in the DP model).
func TestStepsScaleLinearly(t *testing.T) {
	m := gptCfg(t, "10.3B")
	run := func(steps int) *Result {
		r, err := Run(Config{
			Topo: hw.DGX2(), Model: m, Prec: model.MixedAdam(),
			Variant: ZeRO3, MicrobatchSize: 2, GradAccum: 2, Steps: steps,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	one := run(1)
	four := run(4)
	ratio := four.Duration.Secondsf() / one.Duration.Secondsf()
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("4 steps / 1 step = %.2f, want ≈4", ratio)
	}
	// Throughput is step-count independent.
	if d := four.TFLOPS/one.TFLOPS - 1; d < -0.05 || d > 0.05 {
		t.Errorf("TFLOPS drifted %.1f%% with step count", d*100)
	}
}

// TestGradAccumAmortizesOptimizer: more accumulation per step means
// the (fixed) optimizer cost amortizes and throughput rises.
func TestGradAccumAmortizesOptimizer(t *testing.T) {
	m := gptCfg(t, "10.3B")
	run := func(acc int) *Result {
		r, err := Run(Config{
			Topo: hw.DGX1WithNVMe(), Model: m, Prec: model.MixedAdam(),
			Variant: ZeROOffload, MicrobatchSize: 2, GradAccum: acc, Steps: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	small := run(2)
	big := run(16)
	if big.TFLOPS <= small.TFLOPS {
		t.Errorf("accumulation must amortize CPU-Adam: %.1f vs %.1f",
			big.TFLOPS, small.TFLOPS)
	}
}

// TestLargerModelLowerThroughputWhenIOBound: on the slow-NVMe DGX-2,
// ZeRO-Infinity's optimizer streaming grows with model size while
// compute per parameter stays flat, so TFLOPS must not rise with size.
func TestLargerModelLowerThroughputWhenIOBound(t *testing.T) {
	prev := 1e18
	for _, size := range []string{"5.3B", "10.3B", "20.4B"} {
		r := run(t, hw.DGX2(), gptCfg(t, size), ZeROInfinity)
		if r.OOM != nil {
			t.Fatalf("%s: %v", size, r.OOM)
		}
		if r.TFLOPS > prev*1.3 {
			t.Errorf("%s: IO-bound throughput jumped to %.1f from %.1f", size, r.TFLOPS, prev)
		}
		prev = r.TFLOPS
	}
}

// TestMemoryAccountingAdditive: GPU + host + NVMe residency together
// must cover the full persistent state for every variant.
func TestMemoryAccountingAdditive(t *testing.T) {
	m := gptCfg(t, "10.3B")
	full := m.TotalParams() * model.MixedAdam().StateBytesPerParam()
	for _, v := range []Variant{ZeRO3, ZeROOffload, ZeROInfinity} {
		r := run(t, hw.DGX1WithNVMe(), m, v)
		if r.OOM != nil {
			t.Fatalf("%v: %v", v, r.OOM)
		}

		perGPUState := r.PerGPUPeak[0] // includes checkpoints/workspace too
		total := int64(perGPUState)*8 + int64(r.HostPeak) + int64(r.NVMePeak)
		if total < full {
			t.Errorf("%v: accounted %d bytes < persistent state %d", v, total, full)
		}
	}
}
