package zero

import (
	"testing"

	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/units"
)

func gptCfg(t *testing.T, size string) model.Config {
	t.Helper()
	cfg, err := model.GPTVariant(size)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func run(t *testing.T, topo *hw.Topology, m model.Config, v Variant) *Result {
	t.Helper()
	r, err := Run(Config{
		Topo: topo, Model: m, Prec: model.MixedAdam(), Variant: v,
		MicrobatchSize: 2, GradAccum: 2, Steps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestPerGPUPeakSymmetry pins the documented Result.PerGPUPeak
// contract: one entry per rank, all equal, because every data-parallel
// rank holds an even partition and runs an identical schedule.
func TestPerGPUPeakSymmetry(t *testing.T) {
	for _, v := range []Variant{ZeRO3, ZeROOffload, ZeROInfinity} {
		r := run(t, hw.DGX1WithNVMe(), gptCfg(t, "10.3B"), v)
		if r.OOM != nil {
			t.Fatalf("%v: %v", v, r.OOM)
		}
		if len(r.PerGPUPeak) != hw.DGX1WithNVMe().NumGPUs {
			t.Fatalf("%v: %d peak entries for %d ranks", v, len(r.PerGPUPeak), hw.DGX1WithNVMe().NumGPUs)
		}
		for i, p := range r.PerGPUPeak {
			if p == 0 || p != r.PerGPUPeak[0] {
				t.Errorf("%v: rank %d peak %v breaks symmetry with rank 0 (%v)", v, i, p, r.PerGPUPeak[0])
			}
		}
	}
}

func TestVariantString(t *testing.T) {
	if ZeRO3.String() != "ZeRO-3" || ZeROOffload.String() != "ZeRO-Offload" ||
		ZeROInfinity.String() != "ZeRO-Infinity" {
		t.Error("variant names wrong")
	}
}

func TestBaselinesScaleToLargestGPT(t *testing.T) {
	// Fig. 8: both ZeRO variants sustain GPT models the pipeline
	// systems cannot, up to 25.5B.
	topo := hw.DGX1WithNVMe()
	for _, size := range []string{"5.3B", "10.3B", "15.4B", "20.4B"} {
		for _, v := range []Variant{ZeROOffload, ZeROInfinity} {
			r := run(t, topo, gptCfg(t, size), v)
			if r.OOM != nil {
				t.Errorf("%v on GPT-%s OOMs: %v", v, size, r.OOM)
				continue
			}
			if r.TFLOPS <= 0 {
				t.Errorf("%v on GPT-%s has no throughput", v, size)
			}
		}
	}
	d2 := hw.DGX2()
	for _, v := range []Variant{ZeROOffload, ZeROInfinity} {
		if r := run(t, d2, gptCfg(t, "25.5B"), v); r.OOM != nil {
			t.Errorf("%v on GPT-25.5B/DGX-2 OOMs: %v", v, r.OOM)
		}
	}
}

func TestInfinityBeatsOffloadWithFastNVMe(t *testing.T) {
	// Fig. 8a (DGX-1-class server with healthy SSDs): ZeRO-Infinity
	// outperforms ZeRO-Offload by ~20-24%.
	topo := hw.DGX1WithNVMe()
	m := gptCfg(t, "10.3B")
	off := run(t, topo, m, ZeROOffload)
	inf := run(t, topo, m, ZeROInfinity)
	if off.OOM != nil || inf.OOM != nil {
		t.Fatalf("OOMs: %v / %v", off.OOM, inf.OOM)
	}
	gain := inf.TFLOPS/off.TFLOPS - 1
	if gain < 0.05 || gain > 0.60 {
		t.Errorf("Infinity/Offload gain = %.1f%%, want roughly 20%%", gain*100)
	}
}

func TestInfinityLosesWithSlowNVMe(t *testing.T) {
	// Fig. 8b: on the rented DGX-2 the SSDs were slow, making
	// ZeRO-Infinity slower than ZeRO-Offload on large models.
	topo := hw.DGX2()
	m := gptCfg(t, "20.4B")
	off := run(t, topo, m, ZeROOffload)
	inf := run(t, topo, m, ZeROInfinity)
	if off.OOM != nil || inf.OOM != nil {
		t.Fatalf("OOMs: %v / %v", off.OOM, inf.OOM)
	}
	if inf.TFLOPS >= off.TFLOPS {
		t.Errorf("slow-NVMe Infinity (%.1f) must lose to Offload (%.1f)",
			inf.TFLOPS, off.TFLOPS)
	}
}

func TestZeRO3MemorySmallest(t *testing.T) {
	topo := hw.DGX1WithNVMe()
	m := gptCfg(t, "10.3B")
	z3 := run(t, topo, m, ZeRO3)
	off := run(t, topo, m, ZeROOffload)
	inf := run(t, topo, m, ZeROInfinity)
	if z3.OOM != nil {
		t.Fatalf("ZeRO-3 OOM: %v", z3.OOM)
	}
	// GPU residency strictly shrinks as more state moves off-device.
	if !(inf.PerGPUPeak[0] < off.PerGPUPeak[0] && off.PerGPUPeak[0] < z3.PerGPUPeak[0]) {
		t.Errorf("residency ordering wrong: %v < %v < %v",
			inf.PerGPUPeak[0], off.PerGPUPeak[0], z3.PerGPUPeak[0])
	}
	// Offload's host footprint is the full fp32 optimizer state.
	wantHost := units.Bytes(m.TotalParams() * 12)
	if off.HostPeak != wantHost {
		t.Errorf("Offload host peak = %v, want %v", off.HostPeak, wantHost)
	}
	if inf.NVMePeak == 0 || z3.NVMePeak != 0 {
		t.Error("NVMe accounting wrong")
	}
}

func TestInfinityRequiresNVMe(t *testing.T) {
	if _, err := Run(Config{
		Topo: hw.DGX1(), Model: gptCfg(t, "5.3B"), Prec: model.MixedAdam(),
		Variant: ZeROInfinity, MicrobatchSize: 1, GradAccum: 1,
	}); err == nil {
		t.Error("Infinity without NVMe accepted")
	}
}

func TestRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Topo: hw.DGX1(), Model: gptCfg(t, "5.3B"),
		Prec: model.MixedAdam(), MicrobatchSize: 0, GradAccum: 1}); err == nil {
		t.Error("zero microbatch accepted")
	}
}

func TestThroughputScalesWithGPUSpeed(t *testing.T) {
	// DGX-2's A100s should more than double DGX-1's throughput for
	// compute-bound configs (paper Sec. IV-C).
	m := gptCfg(t, "5.3B")
	v100 := run(t, hw.DGX1WithNVMe(), m, ZeROOffload)
	a100 := run(t, hw.DGX2(), m, ZeROOffload)
	if v100.OOM != nil || a100.OOM != nil {
		t.Fatalf("OOMs: %v / %v", v100.OOM, a100.OOM)
	}
	if a100.TFLOPS <= v100.TFLOPS*1.5 {
		t.Errorf("A100 %.1f vs V100 %.1f: expected a clear speedup", a100.TFLOPS, v100.TFLOPS)
	}
}

func TestDeterministic(t *testing.T) {
	m := gptCfg(t, "10.3B")
	a := run(t, hw.DGX2(), m, ZeROInfinity)
	b := run(t, hw.DGX2(), m, ZeROInfinity)
	if a.Duration != b.Duration {
		t.Errorf("durations differ: %v vs %v", a.Duration, b.Duration)
	}
}

func TestOOMOnTinyGPU(t *testing.T) {
	topo := hw.DGX1WithNVMe()
	topo.GPU.Memory = 3 * units.GiB
	r := run(t, topo, gptCfg(t, "20.4B"), ZeRO3)
	if r.OOM == nil {
		t.Error("expected OOM on a 3GiB GPU")
	}
}
