package runner

import (
	"context"
	"fmt"
	"strings"

	"mpress/internal/cluster"
	"mpress/internal/exec"
	"mpress/internal/grid"
	"mpress/internal/hw"
	"mpress/internal/mapping"
	"mpress/internal/pipeline"
	"mpress/internal/plan"
	"mpress/internal/sim"
	"mpress/internal/trace"
	"mpress/internal/units"
	"mpress/internal/zero"
)

// canonicalMinibatches is the minibatch count cached plans are
// computed at. Plans for other counts are rebased from the canonical
// one (plan.Rebase), so the cached entry is identical no matter which
// sweep point computes it first — a requirement for deterministic
// results under concurrency.
const canonicalMinibatches = 2

// State carries one job through its stages. Stages communicate only
// through it, so a custom driver can run a prefix of the pipeline and
// inspect the intermediates (the Fig. 9 ablation does exactly that).
type State struct {
	Job *Job

	// Grid is the job's 4D shard grid (after Partition); Grid.Plane()
	// is the topology every later stage simulates on. At TP = CP = 1
	// the plane is Config.Topology itself, so legacy runs are
	// untouched.
	Grid *grid.Grid
	// Part is the stage partition (after Partition).
	Part pipeline.Partition
	// Built is the lowered job at the job's own minibatch count
	// (after Build).
	Built *pipeline.Built
	// Plan is the compaction plan (after Plan; nil for SystemPlain),
	// and Mapping the stage→GPU assignment the job will execute with.
	Plan    *plan.Plan
	Mapping []hw.DeviceID
	// PlanCacheHit reports that the Plan stage reused a cached plan.
	PlanCacheHit bool
	// ExecOpts is the instrumented executor configuration (after
	// Apply), Exec the raw simulation result (after Execute), and
	// Report the job's outcome (after Report).
	ExecOpts *exec.Options
	Exec     *exec.Result
	Report   *Report
	// Net is the inter-node fabric instance of a multi-node run,
	// attached to the executor's clock by the Apply stage (nil for
	// single-server jobs).
	Net *cluster.Net
	// Timeline is the merged wall-clock trace of a resilient run
	// (after Resilience; nil otherwise), and Resil its accounting.
	Timeline *trace.Timeline
	Resil    *resilSummary
	// Recovered is the lowered job of the final recovered segment when
	// a failure forced a re-plan (nil otherwise); a resilient State's
	// Plan/Mapping refer to its tensors and stages, not Built's.
	Recovered *pipeline.Built

	// shared marks virtual-stage runs (several stages per GPU).
	shared bool
	// cache is the runner's plan cache (nil runs the planner inline).
	cache *planCache
	// planWorkers is the resolved refinement parallelism the Plan
	// stage hands to plan.Options.Workers (plans are byte-identical
	// at any setting).
	planWorkers int
	// simWorkers and simSched are the runner's kernel knobs
	// (Options.SimWorkers / Options.SimScheduler), applied to every
	// exec.Run this job performs — including resilience replays. They
	// never reach Config, fingerprints, or reports.
	simWorkers int
	simSched   string
}

// applySimKnobs copies the runner's simulation-kernel knobs onto an
// executor configuration. Every exec.Run a stage performs must go
// through this so replays and the main run use the same kernel.
func (st *State) applySimKnobs(opts *exec.Options) error {
	mode, err := sim.ParseSchedMode(st.simSched)
	if err != nil {
		return err
	}
	opts.SimWorkers = st.simWorkers
	opts.SimScheduler = mode
	return nil
}

// TraceLaneNames labels each stage lane of an exported trace with the
// physical devices it stands for. Only tensor-parallel runs produce
// names — each simulated lane is then a whole TP group, identified by
// its rank-0 representative and group index (e.g. "n0/gpu2 tp1") —
// so TP-free traces stay byte-identical to the pre-grid format.
func (st *State) TraceLaneNames() []string {
	if st.Grid == nil || st.Grid.Shape.TP <= 1 || len(st.Mapping) == 0 {
		return nil
	}
	names := make([]string, len(st.Mapping))
	for s, d := range st.Mapping {
		names[s] = fmt.Sprintf("%s tp%d", st.Grid.Representative(d).On(0), int(d))
	}
	return names
}

// Stage is one composable step of the job pipeline.
type Stage struct {
	Name string
	Run  func(ctx context.Context, st *State) error
}

// stagesFor returns the job's stage sequence. ZeRO baselines use an
// analytic model with no partition/plan phases, so their pipeline is
// just Execute → Report.
func stagesFor(j *Job) []Stage {
	if j.Config.System.IsZeRO() {
		return []Stage{
			{"execute", stageZeRO},
		}
	}
	if j.Config.Resilient() {
		return []Stage{
			{"partition", stagePartition},
			{"build", stageBuild},
			{"plan", stagePlan},
			{"apply", stageApply},
			{"execute", stageExecute},
			{"resilience", stageResilience},
			{"report", stageReport},
		}
	}
	return []Stage{
		{"partition", stagePartition},
		{"build", stageBuild},
		{"plan", stagePlan},
		{"apply", stageApply},
		{"execute", stageExecute},
		{"report", stageReport},
	}
}

// buildFn returns a builder closure for the config at the given
// minibatch count — the planner emulates fresh copies through it.
func buildFn(c Config, part pipeline.Partition, minibatches int) func() (*pipeline.Built, error) {
	return func() (*pipeline.Built, error) {
		return pipeline.Build(pipeline.BuildConfig{
			Model: c.Model, Prec: *c.Precision, Part: part, Kind: c.Schedule,
			MicrobatchSize: c.MicrobatchSize,
			Microbatches:   c.Microbatches,
			Minibatches:    minibatches,
			TP:             c.TPDegree,
		})
	}
}

func stagePartition(ctx context.Context, st *State) error {
	c := st.Job.Config
	g, err := c.Grid()
	if err != nil {
		return err
	}
	st.Grid = g
	if plane := g.Plane(); c.Stages > plane.NumGPUs && c.System != SystemPlain {
		// Typed so service layers classify the infeasible placement as
		// a caller mistake (HTTP 400) instead of a server fault.
		return fmt.Errorf("mpress: virtual stages are only supported with SystemPlain: %w",
			&mapping.InfeasibleError{Stages: c.Stages, GPUs: plane.NumGPUs})
	}
	part, err := pipeline.PartitionModel(c.Model, c.Stages, c.Strategy, c.Schedule,
		*c.Precision, c.MicrobatchSize, c.Microbatches)
	if err != nil {
		return err
	}
	st.Part = part
	return nil
}

func stageBuild(ctx context.Context, st *State) error {
	c := st.Job.Config
	b, err := buildFn(c, st.Part, c.Minibatches)()
	if err != nil {
		return err
	}
	st.Built = b
	return nil
}

// allowedFor translates a system into the planner's mechanism set.
func allowedFor(s System) (plan.Allowed, error) {
	switch s {
	case SystemGPUCPUSwap:
		return plan.Allowed{HostSwap: true}, nil
	case SystemRecompute:
		return plan.Allowed{Recompute: true}, nil
	case SystemMPressD2D:
		return plan.Allowed{D2D: true}, nil
	case SystemMPress:
		return plan.AllMechanisms(), nil
	default:
		return plan.Allowed{}, fmt.Errorf("mpress: unknown system %v (valid systems: %s)",
			s, strings.Join(SystemNames(), ", "))
	}
}

func stagePlan(ctx context.Context, st *State) error {
	c := st.Job.Config
	plane := st.Grid.Plane()
	if c.System == SystemPlain {
		// No planner: run the job as-is. More stages than plane devices
		// become virtual pipeline stages, wrapped around the devices.
		m := exec.IdentityMapping(c.Stages)
		if c.Stages > plane.NumGPUs {
			st.shared = true
			for s := range m {
				m[s] = hw.DeviceID(s % plane.NumGPUs)
			}
		}
		st.Mapping = m
		return nil
	}

	allowed, err := allowedFor(c.System)
	if err != nil {
		return err
	}
	compute := func() (*plan.Plan, error) {
		return plan.Compute(plan.Options{
			Topo:                 plane,
			Build:                buildFn(c, st.Part, canonicalMinibatches),
			Allowed:              allowed,
			DisableMappingSearch: c.DisableMappingSearch,
			DisableStriping:      c.DisableStriping,
			Workers:              st.planWorkers,
			Ctx:                  ctx,
		})
	}
	var pl *plan.Plan
	if st.cache != nil {
		pl, st.PlanCacheHit, err = st.cache.getOrCompute(st.Job.PlanKey(), compute)
	} else {
		pl, err = compute()
	}
	if err != nil {
		return err
	}
	if c.Minibatches != canonicalMinibatches {
		from, err := buildFn(c, st.Part, canonicalMinibatches)()
		if err != nil {
			return err
		}
		if pl, err = plan.Rebase(pl, from, st.Built); err != nil {
			return err
		}
	}
	st.Plan = pl
	st.Mapping = pl.Mapping
	return nil
}

func stageApply(ctx context.Context, st *State) error {
	c := st.Job.Config
	plane := st.Grid.Plane()
	if c.System == SystemPlain {
		st.ExecOpts = &exec.Options{
			Topo: plane, Built: st.Built,
			Mapping:            st.Mapping,
			AllowSharedDevices: st.shared,
		}
	} else {
		opts, err := plan.Apply(st.Plan, st.Built, plane)
		if err != nil {
			return err
		}
		st.ExecOpts = opts
	}
	if tp := st.Grid.Shape.TP; tp > 1 {
		// Per-operator collectives run on the physical NVLink ring of
		// each TP group (the plane only models inter-group links).
		st.ExecOpts.TP = &exec.TPSpec{
			Degree:  tp,
			HopBW:   st.Grid.TPRingBandwidth(),
			Latency: c.Topology.NVLinkLatency,
		}
	}
	if c.Replicas() > 1 {
		// Hybrid parallelism: by symmetry every node runs this same
		// replica, so one executor plus node 0's NIC model reproduces
		// the cluster's timing. The fabric shares the run's clock and
		// gates each stage's optimizer step on its gradient all-reduce.
		st.ExecOpts.GradSync = func(s *sim.Sim) exec.GradSyncFn {
			net := cluster.NewNet(s, c.Cluster)
			st.Net = net
			return net.AllReduce(c.AllReduceBuckets)
		}
	}
	return nil
}

func stageExecute(ctx context.Context, st *State) error {
	opts := *st.ExecOpts
	opts.Ctx = ctx
	if err := st.applySimKnobs(&opts); err != nil {
		return err
	}
	res, err := exec.Run(opts)
	if err != nil {
		return err
	}
	st.Exec = res
	return nil
}

func stageReport(ctx context.Context, st *State) error {
	st.Report = reportFrom(st.Job.Config, st.Exec, st.Plan, st.Mapping, st.Net)
	if sum := st.Resil; sum != nil {
		mergeResilience(st.Report, st.Exec, sum)
	}
	applyPrice(st.Report)
	return nil
}

// applyPrice fills the Report's economics from Config.Price. It runs
// after mergeResilience so resilient runs are priced over their full
// wall clock, and prices nothing on OOM (a dead run earns no samples;
// leaving cost zero keeps $/sample metrics from dividing by it).
func applyPrice(rep *Report) {
	p := rep.Config.Price
	if p == nil || rep.OOM != nil || rep.Duration <= 0 {
		return
	}
	n := float64(rep.Replicas)
	rep.EnergyKWh = p.NodePower.EnergyKWh(rep.Duration) * n
	rep.CostUSD = p.NodeHourlyCost.For(rep.Duration).Dollarsf() * n
}

// mergeResilience folds the resilient replay's accounting into the
// ideal run's report: Duration becomes total wall clock, throughput
// fields keep the fault-free rates, and Goodput prices the difference.
func mergeResilience(rep *Report, ideal *exec.Result, sum *resilSummary) {
	if rep.OOM != nil {
		return // the ideal run already died; nothing was replayed
	}
	rep.IdealDuration = ideal.Duration
	rep.OOM = sum.oom
	rep.Duration = sum.wall
	rep.Failures = len(sum.recoveries)
	rep.Recoveries = sum.recoveries
	rep.Checkpoints = sum.checkpoints
	rep.CheckpointBytes = sum.ckptBytes
	rep.CheckpointTime = sum.ckptTime
	rep.LostWork = sum.lostWork
	rep.RecoveryTime = sum.recoveryTime
	if sum.oom == nil && sum.wall > 0 {
		samples := rep.SamplesPerSec * ideal.Duration.Secondsf()
		rep.Goodput = samples / sum.wall.Secondsf()
	} else {
		rep.TFLOPS, rep.SamplesPerSec = 0, 0
		rep.ClusterTFLOPS, rep.ClusterSamplesPerSec = 0, 0
	}
}

// stageZeRO runs the analytic data-parallel baseline and assembles its
// report directly.
func stageZeRO(ctx context.Context, st *State) error {
	c := st.Job.Config
	variant := map[System]zero.Variant{
		SystemZeRO3:        zero.ZeRO3,
		SystemZeROOffload:  zero.ZeROOffload,
		SystemZeROInfinity: zero.ZeROInfinity,
	}[c.System]
	res, err := zero.Run(zero.Config{
		Topo:           c.Topology,
		Model:          c.Model,
		Prec:           *c.Precision,
		Variant:        variant,
		MicrobatchSize: c.MicrobatchSize,
		GradAccum:      c.Microbatches,
		Steps:          c.Minibatches,
	})
	if err != nil {
		return err
	}
	rep := &Report{Config: c, OOM: res.OOM, Replicas: 1}
	if res.OOM == nil {
		rep.Duration = res.Duration
		rep.TFLOPS = res.TFLOPS
		rep.SamplesPerSec = res.SamplesPerSec
		rep.ClusterTFLOPS = res.TFLOPS
		rep.ClusterSamplesPerSec = res.SamplesPerSec
		rep.HostPeak = res.HostPeak
		rep.PerGPUPeak = append(rep.PerGPUPeak, res.PerGPUPeak...)
	}
	applyPrice(rep)
	st.Report = rep
	return nil
}

// reportFrom assembles the Report for a pipeline-system run. The
// executor modeled one TP-rank-0 representative per group, so scale
// factor T expands plane quantities back to the full server: compute
// and fabric traffic happened T times over, every group member's peak
// equals its representative's, and the TP collectives' own traffic
// (already a group total) is added on top. T = 1 reproduces the
// pre-grid report bit for bit.
func reportFrom(c Config, res *exec.Result, pl *plan.Plan, m []hw.DeviceID, net *cluster.Net) *Report {
	rep := &Report{Config: c, OOM: res.OOM, Plan: pl, Mapping: m, Replicas: c.Replicas()}
	rep.SimEvents = res.Events
	rep.TPDegree = c.TPDegree
	T := c.TP() * c.CP()
	if res.OOM == nil {
		rep.Duration = res.Duration
		rep.TFLOPS = res.TFLOPS * float64(T)
		rep.SamplesPerSec = res.SamplesPerSec
		rep.ClusterTFLOPS = rep.TFLOPS * float64(rep.Replicas)
		rep.ClusterSamplesPerSec = res.SamplesPerSec * float64(rep.Replicas)
		rep.HostPeak = res.Host.Peak * units.Bytes(T)
		rep.NVLinkBytes = res.Fabric.NVLinkBytes*units.Bytes(T) + res.TPAllReduceBytes
		rep.PCIeBytes = res.Fabric.PCIeBytes * units.Bytes(T)
		rep.NVMeBytes = res.Fabric.NVMeBytes * units.Bytes(T)
		rep.TPAllReduceBytes = res.TPAllReduceBytes
		for _, g := range res.GPUs {
			for t := 0; t < T; t++ {
				rep.PerGPUPeak = append(rep.PerGPUPeak, g.Peak)
			}
		}
		if net != nil {
			st := net.Stats()
			rep.NICBytes = st.EgressBytes
			rep.AllReduces = st.AllReduces
		}
	}
	return rep
}
