package runner

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mpress/internal/hw"
	"mpress/internal/plan"
	"mpress/internal/tensor"
)

// stressPlan fabricates a distinct, nonempty plan so the cache's byte
// accounting moves through insert/evict cycles with varying sizes.
func stressPlan(i int) *plan.Plan {
	p := &plan.Plan{
		Mapping: make([]hw.DeviceID, 4+i%4),
		Act:     map[tensor.ID]plan.Mechanism{},
	}
	for t := 0; t < 1+i%7; t++ {
		p.Act[tensor.ID(t)] = plan.MechD2D
	}
	return p
}

// TestPlanCacheConcurrentAccounting hammers the LRU with concurrent
// getOrCompute / peek / seed traffic across more keys than the cap, so
// evictions race lookups and inserts, and pins the accounting
// invariants:
//
//   - the byte count never goes negative (sampled continuously while
//     the stress runs, not just at the end);
//   - hit/miss counters are exact — every getOrCompute increments
//     exactly one of them, so hits+misses equals the lookup count and
//     misses equals computes;
//   - the retained byte count equals the sum of the retained entries'
//     sizes once the dust settles, and the entry count respects cap.
//
// Run under -race (make race does) this also proves the lock
// discipline around the eviction path.
func TestPlanCacheConcurrentAccounting(t *testing.T) {
	const (
		capEntries = 8
		keys       = 64
		workers    = 16
		opsPerW    = 400
	)
	c := newPlanCache(capEntries)

	var lookups, errComputes atomic.Int64
	stop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		// Continuously assert the "never negative" invariant while
		// evictions are racing inserts.
		defer samplerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _, _, _, entries, bytes := c.stats()
			if bytes < 0 {
				t.Errorf("cache bytes went negative: %d", bytes)
				return
			}
			if entries < 0 || entries > capEntries {
				t.Errorf("cache entries %d outside [0,%d]", entries, capEntries)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < opsPerW; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				k := int(rng % keys)
				key := fmt.Sprintf("key-%03d", k)
				switch {
				case k%5 == 4:
					// A failing computation must not be cached and must
					// not disturb the byte accounting.
					lookups.Add(1)
					_, _, err := c.getOrCompute(key+"-err", func() (*plan.Plan, error) {
						errComputes.Add(1)
						return nil, fmt.Errorf("boom")
					})
					if err == nil {
						t.Error("error compute returned nil error")
					}
				case k%5 == 3:
					c.seed(key, stressPlan(k))
					c.peek(key)
				default:
					lookups.Add(1)
					pl, _, err := c.getOrCompute(key, func() (*plan.Plan, error) {
						return stressPlan(k), nil
					})
					if err != nil || pl == nil {
						t.Errorf("getOrCompute(%s): pl=%v err=%v", key, pl, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	samplerWG.Wait()

	hits, misses, computes, evictions, entries, bytes := c.stats()
	if got, want := hits+misses, lookups.Load(); got != want {
		t.Errorf("hits(%d)+misses(%d) = %d, want exactly the %d lookups", hits, misses, got, want)
	}
	if misses != computes {
		t.Errorf("misses %d != computes %d (every miss computes exactly once)", misses, computes)
	}
	if entries > capEntries {
		t.Errorf("entries %d > cap %d", entries, capEntries)
	}
	if bytes < 0 {
		t.Errorf("final bytes negative: %d", bytes)
	}
	// Settled state: retained bytes equal the sum over retained entries.
	c.mu.Lock()
	var sum int64
	for e := c.lru.Front(); e != nil; e = e.Next() {
		sum += int64(e.Value.(*cacheEntry).size)
	}
	c.mu.Unlock()
	if int64(bytes) != sum {
		t.Errorf("accounted bytes %d != sum of retained entry sizes %d", bytes, sum)
	}
	// Eviction sanity: far more plans settled than the cap holds, so
	// evictions must have fired; successful computes plus seeds minus
	// evictions is what remains.
	if evictions == 0 {
		t.Error("stress never evicted; the test lost its point")
	}
	if errComputes.Load() == 0 {
		t.Error("stress never exercised the failing-compute path")
	}
}
