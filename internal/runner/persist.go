package runner

import (
	"fmt"
	"io"

	"mpress/internal/plan"
)

// SavePlan persists pl in the plan.Save format with the job's
// fingerprint recorded as the file's job label, so a later LoadPlan
// can prove the plan belongs to this exact job.
func (j *Job) SavePlan(w io.Writer, pl *plan.Plan) error {
	return pl.Save(w, j.fp)
}

// LoadPlan reads a plan saved with SavePlan and enforces that its job
// label matches this job's fingerprint: plans are positional (valid
// only for the lowering they were computed against), so reusing one
// across jobs silently corrupts the simulation. force skips the check
// for deliberate cross-job reuse.
func (j *Job) LoadPlan(r io.Reader, force bool) (*plan.Plan, error) {
	pl, label, err := plan.Load(r)
	if err != nil {
		return nil, err
	}
	if !force && label != j.fp {
		return nil, fmt.Errorf("runner: plan was computed for job %s, this job is %s (use force to override)", label, j.fp)
	}
	return pl, nil
}
