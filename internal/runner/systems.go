package runner

import (
	"fmt"
	"strings"
)

// systemPresets maps the CLI names to systems, in presentation order —
// the single source the sweep/fleet tools and the capacity planner
// derive their help text and error messages from.
var systemPresets = []struct {
	name string
	sys  System
}{
	{"plain", SystemPlain},
	{"swap", SystemGPUCPUSwap},
	{"recompute", SystemRecompute},
	{"d2d", SystemMPressD2D},
	{"mpress", SystemMPress},
	{"zero3", SystemZeRO3},
	{"offload", SystemZeROOffload},
	{"infinity", SystemZeROInfinity},
}

// SystemNames lists every name LookupSystem accepts, in presentation
// order, for CLI help and error messages.
func SystemNames() []string {
	names := make([]string, len(systemPresets))
	for i, p := range systemPresets {
		names[i] = p.name
	}
	return names
}

// LookupSystem resolves a training system by CLI name,
// case-insensitively. Unknown names fail listing every valid one, à la
// cluster.LookupFabric.
func LookupSystem(name string) (System, error) {
	lower := strings.ToLower(name)
	for _, p := range systemPresets {
		if lower == p.name {
			return p.sys, nil
		}
	}
	return 0, fmt.Errorf("mpress: unknown system %q (valid names: %s)",
		name, strings.Join(SystemNames(), ", "))
}

// KnownSystem reports whether s is one of the registered training
// systems — the validation gate behind Config.WithDefaults, so an
// out-of-range System value (e.g. from hand-built JSON) fails at
// config time with the full name list instead of deep inside the
// stage pipeline.
func KnownSystem(s System) bool {
	for _, p := range systemPresets {
		if p.sys == s {
			return true
		}
	}
	return false
}

// SystemName returns the CLI name of a system (the inverse of
// LookupSystem), or its String form for unknown values.
func SystemName(s System) string {
	for _, p := range systemPresets {
		if p.sys == s {
			return p.name
		}
	}
	return s.String()
}
