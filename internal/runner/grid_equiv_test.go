package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"mpress/internal/trace"
)

// TestTPDegreeOneEquivalence is the refactor's compatibility promise:
// a degenerate grid (TPDegree=1, CPDegree=1 — explicitly spelled out
// or left zero) is not a new configuration but the exact legacy one.
// Fingerprints, plan keys, reports, canonical plan files and Chrome
// traces must all be byte-identical to the pre-grid flat mapping, for
// every system the determinism tests cover.
func TestTPDegreeOneEquivalence(t *testing.T) {
	presets := []struct {
		name string
		cfg  Config
	}{
		{"mpress", bertCfg(t, "1.67B", SystemMPress)},
		{"d2d", bertCfg(t, "0.64B", SystemMPressD2D)},
		{"recompute", bertCfg(t, "0.64B", SystemRecompute)},
		{"swap", bertCfg(t, "0.64B", SystemGPUCPUSwap)},
		{"plain", bertCfg(t, "0.35B", SystemPlain)},
	}
	r := New(Options{Workers: 1, KeepArtifacts: true})
	for _, p := range presets {
		t.Run(p.name, func(t *testing.T) {
			legacy := p.cfg // TPDegree/CPDegree zero: the pre-grid config
			explicit := p.cfg
			explicit.TPDegree, explicit.CPDegree = 1, 1

			jl, je := mustJob(t, legacy), mustJob(t, explicit)
			if jl.Fingerprint() != je.Fingerprint() {
				t.Fatalf("fingerprints differ: %s vs %s", jl.Fingerprint(), je.Fingerprint())
			}
			if jl.PlanKey() != je.PlanKey() {
				t.Fatalf("plan keys differ: %s vs %s", jl.PlanKey(), je.PlanKey())
			}

			rl, re := r.Run(context.Background(), jl), r.Run(context.Background(), je)
			if rl.Err != nil || re.Err != nil {
				t.Fatalf("run errors: %v / %v", rl.Err, re.Err)
			}

			// Reports serialize identically (the wire/CSV surface).
			bl, err := json.Marshal(rl.Report)
			if err != nil {
				t.Fatal(err)
			}
			be, err := json.Marshal(re.Report)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bl, be) {
				t.Errorf("report JSON differs:\n%s\nvs\n%s", bl, be)
			}

			// Canonical plan files are byte-identical (nil for plain).
			if (rl.State.Plan == nil) != (re.State.Plan == nil) {
				t.Fatalf("plan presence differs: %v vs %v", rl.State.Plan != nil, re.State.Plan != nil)
			}
			if rl.State.Plan != nil {
				var fl, fe bytes.Buffer
				if err := jl.SavePlan(&fl, rl.State.Plan); err != nil {
					t.Fatal(err)
				}
				if err := je.SavePlan(&fe, re.State.Plan); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fl.Bytes(), fe.Bytes()) {
					t.Error("canonical plan files differ")
				}
			}

			// Chrome traces are byte-identical, and neither run names
			// lanes (metadata events only appear at TP > 1).
			var tl, te bytes.Buffer
			for _, pair := range []struct {
				res JobResult
				buf *bytes.Buffer
			}{{rl, &tl}, {re, &te}} {
				tml := trace.Collect(pair.res.State.Built, pair.res.State.Exec)
				if names := pair.res.State.TraceLaneNames(); names != nil {
					t.Errorf("degenerate grid names lanes: %v", names)
				}
				if err := tml.WriteChrome(pair.buf); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(tl.Bytes(), te.Bytes()) {
				t.Error("chrome trace bytes differ")
			}
		})
	}
}
