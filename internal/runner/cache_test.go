package runner

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mpress/internal/hw"
	"mpress/internal/plan"
)

func computeCounting(n *int) func() (*plan.Plan, error) {
	return func() (*plan.Plan, error) {
		*n++
		return &plan.Plan{Mapping: []hw.DeviceID{0}}, nil
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := newPlanCache(2)
	var computes int
	for _, k := range []string{"a", "b", "c"} {
		if _, hit, err := c.getOrCompute(k, computeCounting(&computes)); err != nil || hit {
			t.Fatalf("key %s: hit=%v err=%v", k, hit, err)
		}
	}
	// Cap 2: inserting c evicted a (the least recently used).
	hits, misses, _, evictions, entries, size := c.stats()
	if evictions != 1 || entries != 2 {
		t.Fatalf("evictions=%d entries=%d, want 1/2", evictions, entries)
	}
	if hits != 0 || misses != 3 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if size <= 0 {
		t.Fatalf("size accounting = %v, want > 0", size)
	}
	// "a" was evicted: recomputed. "b" and "c" still hit.
	if _, hit, _ := c.getOrCompute("b", computeCounting(&computes)); !hit {
		t.Error("b should still be cached")
	}
	if _, hit, _ := c.getOrCompute("a", computeCounting(&computes)); hit {
		t.Error("a should have been evicted")
	}
	if computes != 4 {
		t.Errorf("computes = %d, want 4", computes)
	}
}

func TestPlanCacheLRURecency(t *testing.T) {
	c := newPlanCache(2)
	var computes int
	c.getOrCompute("a", computeCounting(&computes))
	c.getOrCompute("b", computeCounting(&computes))
	// Touch a so b becomes least recently used, then insert c.
	if _, hit, _ := c.getOrCompute("a", computeCounting(&computes)); !hit {
		t.Fatal("a should hit")
	}
	c.getOrCompute("c", computeCounting(&computes))
	if _, hit, _ := c.getOrCompute("a", computeCounting(&computes)); !hit {
		t.Error("a was recently used, must survive")
	}
	if _, hit, _ := c.getOrCompute("b", computeCounting(&computes)); hit {
		t.Error("b was LRU, must have been evicted")
	}
}

func TestPlanCacheUnboundedAndDefault(t *testing.T) {
	c := newPlanCache(-1)
	var computes int
	for i := 0; i < 3*DefaultPlanCacheEntries/2; i++ {
		c.getOrCompute(fmt.Sprint(i), computeCounting(&computes))
	}
	if _, _, _, evictions, _, _ := c.stats(); evictions != 0 {
		t.Fatalf("unbounded cache evicted %d entries", evictions)
	}
	if newPlanCache(0).cap != DefaultPlanCacheEntries {
		t.Fatal("cap 0 should default")
	}
}

// Eviction accounting stays consistent under concurrent access with a
// tiny cap (exercised further by -race).
func TestPlanCacheConcurrentEviction(t *testing.T) {
	c := newPlanCache(1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprint((g + i) % 4)
				if _, _, err := c.getOrCompute(k, func() (*plan.Plan, error) {
					return &plan.Plan{}, nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, computes, evictions, entries, size := c.stats()
	if entries > 1 {
		t.Errorf("entries = %d beyond cap 1", entries)
	}
	if hits+misses != 400 || computes != misses {
		t.Errorf("hits=%d misses=%d computes=%d", hits, misses, computes)
	}
	if evictions != computes-int64(entries) {
		t.Errorf("evictions=%d, want computes-entries=%d", evictions, computes-int64(entries))
	}
	if entries == 1 && size <= 0 {
		t.Errorf("size = %v with a retained entry", size)
	}
}

func TestRunnerStatsSurfaceEvictions(t *testing.T) {
	r := New(Options{Workers: 2, PlanCacheEntries: 1})
	jobs := []*Job{
		mustJob(t, bertCfg(t, "0.64B", SystemRecompute)),
		mustJob(t, bertCfg(t, "0.64B", SystemGPUCPUSwap)),
		mustJob(t, bertCfg(t, "0.64B", SystemRecompute)),
	}
	for _, j := range jobs {
		if res := r.Run(nil, j); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	st := r.Stats()
	if st.PlanCacheEvictions == 0 {
		t.Errorf("expected evictions with cap 1 and 2 distinct plans: %+v", st)
	}
	if st.PlanCacheEntries != 1 {
		t.Errorf("entries = %d, want 1", st.PlanCacheEntries)
	}
	if st.PlanCacheBytes <= 0 {
		t.Errorf("cache bytes = %v", st.PlanCacheBytes)
	}
}

func TestSaveLoadPlanFingerprint(t *testing.T) {
	j := mustJob(t, bertCfg(t, "0.64B", SystemRecompute))
	res := New(Options{Workers: 1}).Run(nil, j)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	var buf bytes.Buffer
	if err := j.SavePlan(&buf, res.Report.Plan); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	// The label is the job fingerprint.
	if _, label, err := plan.Load(bytes.NewReader(saved)); err != nil || label != j.Fingerprint() {
		t.Fatalf("label = %q err=%v, want fingerprint %q", label, err, j.Fingerprint())
	}
	// Same job loads cleanly.
	if _, err := j.LoadPlan(bytes.NewReader(saved), false); err != nil {
		t.Fatalf("same-job load: %v", err)
	}
	// A different job is rejected...
	other := mustJob(t, bertCfg(t, "0.64B", SystemGPUCPUSwap))
	if _, err := other.LoadPlan(bytes.NewReader(saved), false); err == nil ||
		!strings.Contains(err.Error(), "computed for job") {
		t.Fatalf("mismatched load error = %v", err)
	}
	// ...unless forced.
	if _, err := other.LoadPlan(bytes.NewReader(saved), true); err != nil {
		t.Fatalf("forced load: %v", err)
	}
}
