// Package runner decomposes the training facade into an explicit,
// composable job pipeline. A Job is a validated Config plus a
// canonical fingerprint; the stages Partition → Build → Plan → Apply
// → Execute → Report lower and simulate it; and a Runner executes
// batches of jobs through a bounded worker pool with a
// concurrency-safe, fingerprint-keyed plan cache — so parameter
// sweeps run in parallel by construction and adjacent sweep points
// reuse the planner's profile/mapping/refinement work instead of
// re-deriving it per run.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"mpress/internal/chaos"
	"mpress/internal/ckpt"
	"mpress/internal/cluster"
	"mpress/internal/grid"
	"mpress/internal/hw"
	"mpress/internal/memsim"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/plan"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// System selects which training system runs the job — the paper's
// evaluation compares exactly these (Figs. 7 and 8).
type System int

const (
	// SystemPlain is the unmodified pipeline system (PipeDream or
	// DAPPLE per Config.Schedule), no memory saving.
	SystemPlain System = iota
	// SystemGPUCPUSwap enables only PCIe swapping to host memory.
	SystemGPUCPUSwap
	// SystemRecompute enables only activation recomputation.
	SystemRecompute
	// SystemMPressD2D is MPress restricted to D2D swap.
	SystemMPressD2D
	// SystemMPress is the full system (D2D + GPU-CPU swap +
	// recomputation, with device mapping and data striping).
	SystemMPress
	// SystemZeRO3, SystemZeROOffload and SystemZeROInfinity are the
	// data-parallel DeepSpeed baselines; Config.Schedule is ignored.
	SystemZeRO3
	SystemZeROOffload
	SystemZeROInfinity
)

// String names the system as the paper's figures do.
func (s System) String() string {
	switch s {
	case SystemPlain:
		return "Pipeline"
	case SystemGPUCPUSwap:
		return "GPU-CPU Swap"
	case SystemRecompute:
		return "Recomputation"
	case SystemMPressD2D:
		return "MPress-D2D"
	case SystemMPress:
		return "MPress"
	case SystemZeRO3:
		return "ZeRO-3"
	case SystemZeROOffload:
		return "ZeRO-Offload"
	case SystemZeROInfinity:
		return "ZeRO-Infinity"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// IsZeRO reports whether the system is a data-parallel baseline.
func (s System) IsZeRO() bool {
	return s == SystemZeRO3 || s == SystemZeROOffload || s == SystemZeROInfinity
}

// Planned reports whether the system runs the MPress planner (and so
// produces a cacheable plan.Plan).
func (s System) Planned() bool {
	switch s {
	case SystemGPUCPUSwap, SystemRecompute, SystemMPressD2D, SystemMPress:
		return true
	default:
		return false
	}
}

// Config describes one training job.
type Config struct {
	// Topology is required.
	Topology *hw.Topology
	// Model is required (see the facade's MustBert/MustGPT or build
	// your own).
	Model model.Config
	// Schedule defaults to DAPPLE; Strategy to ComputeBalanced.
	Schedule pipeline.ScheduleKind
	Strategy pipeline.Strategy
	// Precision defaults to mixed-precision Adam for fp16 models and
	// full-precision Adam for fp32 ones.
	Precision *model.Precision
	// Stages defaults to the GPU count.
	Stages int
	// MicrobatchSize defaults to 2; Microbatches (per minibatch) to
	// 4× the stage count; Minibatches to 2.
	MicrobatchSize int
	Microbatches   int
	Minibatches    int
	// System defaults to SystemMPress.
	System System
	// DisableMappingSearch / DisableStriping are the Fig. 9 ablation
	// knobs (only meaningful for the MPress systems).
	DisableMappingSearch bool
	DisableStriping      bool
	// TPDegree shards every pipeline stage across a tensor-parallel
	// group of this width, pinned inside one NVLink island (0 or 1 =
	// off; see internal/grid). The simulator models the TP-rank-0
	// representative of each group on a derived plane topology and
	// charges the group's per-operator all-reduces on top. Incompatible
	// with the ZeRO baselines and with resilient runs.
	TPDegree int `json:",omitempty"`
	// CPDegree is the context-parallel axis of the shard grid — a stub
	// today: only 0/1 validates.
	CPDegree int `json:",omitempty"`
	// Cluster, when non-nil with Nodes > 1, scales the job out: each
	// node runs one pipeline replica of this config (hybrid
	// data+pipeline parallelism) and replicas synchronize gradients
	// with bucketed ring all-reduces over the cluster's fabric.
	// Topology defaults to Cluster.Server; if both are set they must
	// describe the same server. Nil or 1-node clusters reproduce the
	// single-server run exactly.
	Cluster *cluster.Cluster
	// AllReduceBuckets is the gradient bucket count per all-reduce
	// (defaults to 4 on multi-node jobs; ignored otherwise).
	AllReduceBuckets int
	// Faults, when non-nil, injects a deterministic hardware fault
	// schedule into the run; Checkpoint, when non-nil, enables periodic
	// snapshots of weights and optimizer state (interval 0 resolves to
	// the Young–Daly optimum from Faults.MTBF). Either turns the job
	// into a resilient run: the Report gains goodput, lost work and
	// recovery accounting.
	Faults     *chaos.Config
	Checkpoint *ckpt.Policy
	// PlanWorkers bounds how many candidate conversions the planner's
	// refinement loop emulates concurrently (plan.Options.Workers).
	// Plans are byte-identical at any setting — the knob only changes
	// how fast the search runs — so it joins neither the fingerprint
	// nor the plan key. Zero defers to the runner's default
	// (Options.PlanWorkers, else sequential).
	PlanWorkers int
	// Price, when non-nil, attaches node economics to the job: the
	// Report then carries EnergyKWh and CostUSD for the whole run
	// (capacity planning ranks configurations by them). Pricing never
	// changes the simulation; like resilience it joins the fingerprint
	// only when set — and never the plan key — so legacy fingerprints
	// are untouched.
	Price *Price
}

// Price is the economics of one node running the job, typically lifted
// from a catalog.MachineType.
type Price struct {
	// NodePower is one node's electrical draw at training load.
	NodePower units.Power
	// NodeHourlyCost is one node's rental rate in $/hr.
	NodeHourlyCost units.Cost
}

// Validate rejects negative rates.
func (p *Price) Validate() error {
	if p.NodePower < 0 {
		return fmt.Errorf("mpress: Price.NodePower %v is negative", p.NodePower)
	}
	if p.NodeHourlyCost < 0 {
		return fmt.Errorf("mpress: Price.NodeHourlyCost %v is negative", p.NodeHourlyCost)
	}
	return nil
}

// Canonical renders the price for the job fingerprint.
func (p *Price) Canonical() string {
	return fmt.Sprintf("price=w%g/c%g", float64(p.NodePower), float64(p.NodeHourlyCost))
}

// Resilient reports whether the job runs the fault/checkpoint replay.
func (c Config) Resilient() bool { return c.Faults != nil || c.Checkpoint != nil }

// TP returns the normalized tensor-parallel degree (>= 1).
func (c Config) TP() int {
	if c.TPDegree > 1 {
		return c.TPDegree
	}
	return 1
}

// CP returns the normalized context-parallel degree (>= 1).
func (c Config) CP() int {
	if c.CPDegree > 1 {
		return c.CPDegree
	}
	return 1
}

// Grid factors the job's device world into its 4D shard grid
// (TP x PP x DP x CP) and derives the representative plane the
// simulator runs on. At TP = CP = 1 the plane is Topology itself.
func (c Config) Grid() (*grid.Grid, error) {
	return grid.New(c.Topology, c.Replicas(), c.TP(), c.CP())
}

// Replicas returns the data-parallel replica count: the cluster's node
// count, or 1 for single-server jobs.
func (c Config) Replicas() int {
	if c.Cluster == nil {
		return 1
	}
	return c.Cluster.Nodes
}

// WithDefaults validates the config and fills defaults, returning the
// canonical form jobs are fingerprinted over.
func (c Config) WithDefaults() (Config, error) {
	if c.Cluster != nil {
		if err := c.Cluster.Validate(); err != nil {
			return c, err
		}
		if c.Topology == nil {
			c.Topology = c.Cluster.Server
		} else if canonicalTopo(c.Topology) != canonicalTopo(c.Cluster.Server) {
			return c, fmt.Errorf("mpress: Topology %q differs from Cluster.Server %q", c.Topology.Name, c.Cluster.Server.Name)
		}
		if c.Replicas() > 1 && c.System.IsZeRO() {
			return c, fmt.Errorf("mpress: %v is single-server only (its analytic model has no inter-node fabric)", c.System)
		}
	}
	if c.AllReduceBuckets < 0 {
		return c, fmt.Errorf("mpress: AllReduceBuckets %d is negative", c.AllReduceBuckets)
	}
	if c.PlanWorkers < 0 {
		return c, fmt.Errorf("mpress: PlanWorkers %d is negative", c.PlanWorkers)
	}
	if c.Price != nil {
		if err := c.Price.Validate(); err != nil {
			return c, err
		}
	}
	if c.Replicas() > 1 && c.AllReduceBuckets == 0 {
		c.AllReduceBuckets = 4
	}
	if !KnownSystem(c.System) {
		return c, fmt.Errorf("mpress: unknown system %v (valid systems: %s)",
			c.System, strings.Join(SystemNames(), ", "))
	}
	if c.Topology == nil {
		return c, fmt.Errorf("mpress: Topology is required")
	}
	if err := c.Topology.Validate(); err != nil {
		return c, err
	}
	if err := c.Model.Validate(); err != nil {
		return c, err
	}
	if c.TPDegree < 0 || c.CPDegree < 0 {
		return c, fmt.Errorf("mpress: parallel degrees must be non-negative (tp=%d, cp=%d)", c.TPDegree, c.CPDegree)
	}
	// Degree 1 is the off state; normalize so fingerprints, JSON and
	// reports render identically whether the caller wrote 0 or 1.
	if c.TPDegree == 1 {
		c.TPDegree = 0
	}
	if c.CPDegree == 1 {
		c.CPDegree = 0
	}
	if c.TP()*c.CP() > 1 {
		if c.System.IsZeRO() {
			return c, fmt.Errorf("mpress: TPDegree is a pipeline-system axis; %v shards its own way", c.System)
		}
		if c.Resilient() {
			return c, fmt.Errorf("mpress: TPDegree > 1 does not compose with fault injection or checkpointing yet")
		}
		if _, err := c.Grid(); err != nil {
			return c, err
		}
	}
	if c.Stages == 0 {
		c.Stages = c.Topology.NumGPUs / (c.TP() * c.CP())
	}
	if c.MicrobatchSize == 0 {
		c.MicrobatchSize = 2
	}
	if c.Microbatches == 0 {
		// 4× the stage count keeps the 1F1B bubble under ~20%, the
		// regime pipeline systems are run in.
		c.Microbatches = 4 * c.Stages
	}
	if c.Minibatches == 0 {
		c.Minibatches = 2
	}
	if c.Precision == nil {
		p := model.MixedAdam()
		if c.Model.DType == tensor.FP32 {
			p = model.FP32Adam()
		}
		c.Precision = &p
	}
	if c.Resilient() {
		if c.System.IsZeRO() {
			return c, fmt.Errorf("mpress: %v has no event clock; fault injection requires a pipeline system", c.System)
		}
		if c.Faults != nil {
			if err := c.Faults.Validate(c.Topology, c.Replicas()); err != nil {
				return c, err
			}
		}
		if c.Checkpoint != nil {
			if err := c.Checkpoint.Validate(); err != nil {
				return c, err
			}
			if c.Checkpoint.Interval == 0 && (c.Faults == nil || c.Faults.MTBF <= 0) {
				return c, fmt.Errorf("mpress: Checkpoint.Interval 0 means Young–Daly, which needs Faults.MTBF")
			}
		}
	}
	return c, nil
}

// Report is the outcome of one training job.
type Report struct {
	Config Config
	// OOM is non-nil when the job died of out-of-memory — the red
	// crosses of Fig. 7.
	OOM *memsim.OOMError
	// Duration is simulated wall-clock; TFLOPS and SamplesPerSec are
	// the paper's throughput metrics (zero when OOM).
	Duration      units.Duration
	TFLOPS        float64
	SamplesPerSec float64
	// PerGPUPeak is each GPU's peak memory (Fig. 2's bars). For the
	// ZeRO baselines every entry is equal: each data-parallel rank
	// does identical work, so the simulator models rank 0 and
	// replicates its peak by symmetry.
	PerGPUPeak []units.Bytes
	HostPeak   units.Bytes
	// Interconnect traffic of the run (zero for the ZeRO baselines,
	// whose analytic model does not route per-byte traffic).
	NVLinkBytes units.Bytes
	PCIeBytes   units.Bytes
	NVMeBytes   units.Bytes
	// Plan is the MPress compaction plan (nil for baselines), and
	// Mapping the stage→GPU assignment used.
	Plan    *plan.Plan
	Mapping []hw.DeviceID
	// Replicas is the data-parallel replica count (1 for single-server
	// jobs). Duration/TFLOPS/SamplesPerSec above describe one replica;
	// ClusterTFLOPS and ClusterSamplesPerSec scale them to the whole
	// cluster (every replica is symmetric).
	Replicas             int
	ClusterTFLOPS        float64
	ClusterSamplesPerSec float64
	// NICBytes is one node's inter-node egress traffic and AllReduces
	// its collective count (zero for single-server jobs).
	NICBytes   units.Bytes
	AllReduces int64
	// TPDegree echoes the tensor-parallel width of the run, and
	// TPAllReduceBytes the NVLink traffic its per-operator collectives
	// moved (group totals). Both absent for TP-free runs, keeping
	// legacy reports byte-identical.
	TPDegree         int         `json:",omitempty"`
	TPAllReduceBytes units.Bytes `json:",omitempty"`
	// Resilience accounting, populated only for resilient runs
	// (Config.Resilient()). Duration above becomes the total resilient
	// wall clock; SamplesPerSec/TFLOPS stay the ideal fault-free rates,
	// so Goodput < SamplesPerSec measures the resilience tax.
	//
	// Goodput is samples per second over the full resilient wall clock
	// (checkpoint stalls, lost work and recovery included).
	Goodput float64
	// IdealDuration is the fault-free run's wall clock.
	IdealDuration units.Duration
	// Failures counts injected faults that actually hit the run;
	// Recoveries details each one.
	Failures   int
	Recoveries []Recovery
	// Checkpoints is the number of snapshots taken, CheckpointBytes
	// their cumulative payload, and CheckpointTime the cumulative
	// pipeline stall they caused.
	Checkpoints     int
	CheckpointBytes units.Bytes
	CheckpointTime  units.Duration
	// LostWork is the simulated progress discarded across all
	// rollbacks; RecoveryTime the cumulative detection + restore cost.
	LostWork     units.Duration
	RecoveryTime units.Duration
	// SimEvents is the number of discrete-event-simulator events the
	// final execution consumed — a deterministic measure of kernel
	// work, recorded for bench records and planner tuning (divide by
	// the execute stage's real time for events/sec; the rate itself
	// is kept out of the Report so reports stay run-to-run
	// byte-identical). Zero for the analytic ZeRO baselines.
	SimEvents int64
	// EnergyKWh and CostUSD price the whole run across all replicas
	// when Config.Price is set (absent otherwise, and zero on OOM):
	// energy = node draw × wall clock × replicas, cost = node $/hr ×
	// wall hours × replicas. Resilient runs price the full resilient
	// wall clock — checkpoint stalls, lost work and recovery all burn
	// rented watts.
	EnergyKWh float64 `json:",omitempty"`
	CostUSD   float64 `json:",omitempty"`
}

// Failed reports whether the job hit OOM.
func (r *Report) Failed() bool { return r.OOM != nil }

// Job is a validated training job: a defaulted Config plus the
// canonical fingerprints the runner keys caching and deduplication on.
type Job struct {
	// Config is the defaulted, validated configuration.
	Config Config

	fp      string
	planKey string
}

// NewJob validates cfg, fills its defaults and computes the job's
// canonical fingerprint.
func NewJob(cfg Config) (*Job, error) {
	c, err := cfg.WithDefaults()
	if err != nil {
		return nil, err
	}
	j := &Job{Config: c}
	j.fp = digest(canonical(c, true, true))
	if c.System.Planned() {
		j.planKey = digest(canonical(c, false, false))
	}
	return j, nil
}

// Fingerprint canonically identifies the job: two jobs with equal
// fingerprints simulate identically. It doubles as the label recorded
// by plan.Save.
func (j *Job) Fingerprint() string { return j.fp }

// PlanKey identifies the job's compaction plan: the fingerprint minus
// the fields a cached plan is independent of (Minibatches — plans are
// computed on a canonical minibatch count and rebased, see the Plan
// stage — and the cluster: planning is per-replica, so jobs at every
// node count share the single-server plan). Empty for systems that do
// not run the planner.
func (j *Job) PlanKey() string { return j.planKey }

// canonicalTopo renders a server topology's full parameter set — not
// just its name, so custom topologies fingerprint distinctly.
func canonicalTopo(t *hw.Topology) string {
	var b strings.Builder
	fmt.Fprintf(&b, "topo=%s/g%d/sw%v/lanes%d/nvbw%g/nvlat%d/pcie%g/pcielat%d/host%d/nvmebw%g/nvmelat%d/nvme%d;",
		t.Name, t.NumGPUs, t.Switched, t.LanesPerGPU,
		float64(t.NVLinkLaneBW), int64(t.NVLinkLatency),
		float64(t.PCIeBW), int64(t.PCIeLatency),
		int64(t.HostMemory), float64(t.NVMeBW), int64(t.NVMeLatency), int64(t.NVMeSize))
	g := t.GPU
	fmt.Fprintf(&b, "gpu=%s/mem%d/fp32-%g/fp16-%g/eff%g/hbm%g;",
		g.Name, int64(g.Memory), float64(g.PeakFP32), float64(g.PeakFP16),
		g.Efficiency, float64(g.HBM))
	if !t.Switched {
		// The lane matrix shapes D2D routing on asymmetric servers.
		fmt.Fprintf(&b, "lanes=%v;", t.NVLinkLanes)
	}
	return b.String()
}

// canonical renders the defaulted config as a stable string. Every
// field that can change the simulation outcome must appear here.
// withCluster selects whether the scale-out dimension participates
// (the fingerprint) or not (the plan key); a 1-node cluster renders
// nothing either way, so it fingerprints identically to the
// single-server job it is.
func canonical(c Config, withMinibatches, withCluster bool) string {
	var b strings.Builder
	b.WriteString(canonicalTopo(c.Topology))
	m := c.Model
	fmt.Fprintf(&b, "model=%s/%v/L%d/H%d/h%d/s%d/v%d/%v;",
		m.Name, m.Arch, m.Layers, m.Hidden, m.Heads, m.SeqLen, m.Vocab, m.DType)
	fmt.Fprintf(&b, "prec=%d/%d/%d;", c.Precision.ParamBytes, c.Precision.GradBytes, c.Precision.OptBytes)
	fmt.Fprintf(&b, "sched=%v;strat=%v;stages=%d;mbs=%d;micro=%d;",
		c.Schedule, c.Strategy, c.Stages, c.MicrobatchSize, c.Microbatches)
	if withMinibatches {
		fmt.Fprintf(&b, "mini=%d;", c.Minibatches)
		// Resilience shapes the outcome but not the plan: faults and
		// checkpoints join the fingerprint only, like Minibatches.
		if c.Resilient() {
			fmt.Fprintf(&b, "%s;%s;", c.Faults.Canonical(), c.Checkpoint.Canonical())
		}
		// Pricing shapes the report, not the simulation; fingerprint
		// only, and only when attached.
		if c.Price != nil {
			fmt.Fprintf(&b, "%s;", c.Price.Canonical())
		}
	}
	fmt.Fprintf(&b, "sys=%d;nomap=%v;nostripe=%v", int(c.System), c.DisableMappingSearch, c.DisableStriping)
	if c.TP() > 1 || c.CP() > 1 {
		// The shard grid reshapes the simulated plane, so it keys both
		// the fingerprint and the plan; absent at degree 1 to keep
		// legacy fingerprints stable.
		fmt.Fprintf(&b, ";tp=%d;cp=%d", c.TP(), c.CP())
	}
	if withCluster && c.Replicas() > 1 {
		f := c.Cluster.Net
		fmt.Fprintf(&b, ";cluster=n%d/nic%d/bw%g/lat%d/buckets%d",
			c.Cluster.Nodes, f.NICs, float64(f.PerNICBW), int64(f.Latency), c.AllReduceBuckets)
	}
	return b.String()
}

func digest(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:16])
}
