// Package runner decomposes the training facade into an explicit,
// composable job pipeline. A Job is a validated Config plus a
// canonical fingerprint; the stages Partition → Build → Plan → Apply
// → Execute → Report lower and simulate it; and a Runner executes
// batches of jobs through a bounded worker pool with a
// concurrency-safe, fingerprint-keyed plan cache — so parameter
// sweeps run in parallel by construction and adjacent sweep points
// reuse the planner's profile/mapping/refinement work instead of
// re-deriving it per run.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"mpress/internal/hw"
	"mpress/internal/memsim"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/plan"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// System selects which training system runs the job — the paper's
// evaluation compares exactly these (Figs. 7 and 8).
type System int

const (
	// SystemPlain is the unmodified pipeline system (PipeDream or
	// DAPPLE per Config.Schedule), no memory saving.
	SystemPlain System = iota
	// SystemGPUCPUSwap enables only PCIe swapping to host memory.
	SystemGPUCPUSwap
	// SystemRecompute enables only activation recomputation.
	SystemRecompute
	// SystemMPressD2D is MPress restricted to D2D swap.
	SystemMPressD2D
	// SystemMPress is the full system (D2D + GPU-CPU swap +
	// recomputation, with device mapping and data striping).
	SystemMPress
	// SystemZeRO3, SystemZeROOffload and SystemZeROInfinity are the
	// data-parallel DeepSpeed baselines; Config.Schedule is ignored.
	SystemZeRO3
	SystemZeROOffload
	SystemZeROInfinity
)

// String names the system as the paper's figures do.
func (s System) String() string {
	switch s {
	case SystemPlain:
		return "Pipeline"
	case SystemGPUCPUSwap:
		return "GPU-CPU Swap"
	case SystemRecompute:
		return "Recomputation"
	case SystemMPressD2D:
		return "MPress-D2D"
	case SystemMPress:
		return "MPress"
	case SystemZeRO3:
		return "ZeRO-3"
	case SystemZeROOffload:
		return "ZeRO-Offload"
	case SystemZeROInfinity:
		return "ZeRO-Infinity"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// IsZeRO reports whether the system is a data-parallel baseline.
func (s System) IsZeRO() bool {
	return s == SystemZeRO3 || s == SystemZeROOffload || s == SystemZeROInfinity
}

// Planned reports whether the system runs the MPress planner (and so
// produces a cacheable plan.Plan).
func (s System) Planned() bool {
	switch s {
	case SystemGPUCPUSwap, SystemRecompute, SystemMPressD2D, SystemMPress:
		return true
	default:
		return false
	}
}

// Config describes one training job.
type Config struct {
	// Topology is required.
	Topology *hw.Topology
	// Model is required (see the facade's MustBert/MustGPT or build
	// your own).
	Model model.Config
	// Schedule defaults to DAPPLE; Strategy to ComputeBalanced.
	Schedule pipeline.ScheduleKind
	Strategy pipeline.Strategy
	// Precision defaults to mixed-precision Adam for fp16 models and
	// full-precision Adam for fp32 ones.
	Precision *model.Precision
	// Stages defaults to the GPU count.
	Stages int
	// MicrobatchSize defaults to 2; Microbatches (per minibatch) to
	// 4× the stage count; Minibatches to 2.
	MicrobatchSize int
	Microbatches   int
	Minibatches    int
	// System defaults to SystemMPress.
	System System
	// DisableMappingSearch / DisableStriping are the Fig. 9 ablation
	// knobs (only meaningful for the MPress systems).
	DisableMappingSearch bool
	DisableStriping      bool
}

// WithDefaults validates the config and fills defaults, returning the
// canonical form jobs are fingerprinted over.
func (c Config) WithDefaults() (Config, error) {
	if c.Topology == nil {
		return c, fmt.Errorf("mpress: Topology is required")
	}
	if err := c.Topology.Validate(); err != nil {
		return c, err
	}
	if err := c.Model.Validate(); err != nil {
		return c, err
	}
	if c.Stages == 0 {
		c.Stages = c.Topology.NumGPUs
	}
	if c.MicrobatchSize == 0 {
		c.MicrobatchSize = 2
	}
	if c.Microbatches == 0 {
		// 4× the stage count keeps the 1F1B bubble under ~20%, the
		// regime pipeline systems are run in.
		c.Microbatches = 4 * c.Stages
	}
	if c.Minibatches == 0 {
		c.Minibatches = 2
	}
	if c.Precision == nil {
		p := model.MixedAdam()
		if c.Model.DType == tensor.FP32 {
			p = model.FP32Adam()
		}
		c.Precision = &p
	}
	return c, nil
}

// Report is the outcome of one training job.
type Report struct {
	Config Config
	// OOM is non-nil when the job died of out-of-memory — the red
	// crosses of Fig. 7.
	OOM *memsim.OOMError
	// Duration is simulated wall-clock; TFLOPS and SamplesPerSec are
	// the paper's throughput metrics (zero when OOM).
	Duration      units.Duration
	TFLOPS        float64
	SamplesPerSec float64
	// PerGPUPeak is each GPU's peak memory (Fig. 2's bars). For the
	// ZeRO baselines every entry is equal: each data-parallel rank
	// does identical work, so the simulator models rank 0 and
	// replicates its peak by symmetry.
	PerGPUPeak []units.Bytes
	HostPeak   units.Bytes
	// Interconnect traffic of the run (zero for the ZeRO baselines,
	// whose analytic model does not route per-byte traffic).
	NVLinkBytes units.Bytes
	PCIeBytes   units.Bytes
	NVMeBytes   units.Bytes
	// Plan is the MPress compaction plan (nil for baselines), and
	// Mapping the stage→GPU assignment used.
	Plan    *plan.Plan
	Mapping []hw.DeviceID
}

// Failed reports whether the job hit OOM.
func (r *Report) Failed() bool { return r.OOM != nil }

// Job is a validated training job: a defaulted Config plus the
// canonical fingerprints the runner keys caching and deduplication on.
type Job struct {
	// Config is the defaulted, validated configuration.
	Config Config

	fp      string
	planKey string
}

// NewJob validates cfg, fills its defaults and computes the job's
// canonical fingerprint.
func NewJob(cfg Config) (*Job, error) {
	c, err := cfg.WithDefaults()
	if err != nil {
		return nil, err
	}
	j := &Job{Config: c}
	j.fp = digest(canonical(c, true))
	if c.System.Planned() {
		j.planKey = digest(canonical(c, false))
	}
	return j, nil
}

// Fingerprint canonically identifies the job: two jobs with equal
// fingerprints simulate identically. It doubles as the label recorded
// by plan.Save.
func (j *Job) Fingerprint() string { return j.fp }

// PlanKey identifies the job's compaction plan: the fingerprint minus
// the fields a cached plan is independent of (Minibatches — plans are
// computed on a canonical minibatch count and rebased, see the Plan
// stage). Empty for systems that do not run the planner.
func (j *Job) PlanKey() string { return j.planKey }

// canonical renders the defaulted config as a stable string. Every
// field that can change the simulation outcome must appear here; the
// topology is identified by its full parameter set, not just its
// name, so custom topologies fingerprint distinctly.
func canonical(c Config, withMinibatches bool) string {
	var b strings.Builder
	t := c.Topology
	fmt.Fprintf(&b, "topo=%s/g%d/sw%v/lanes%d/nvbw%g/nvlat%d/pcie%g/pcielat%d/host%d/nvmebw%g/nvmelat%d/nvme%d;",
		t.Name, t.NumGPUs, t.Switched, t.LanesPerGPU,
		float64(t.NVLinkLaneBW), int64(t.NVLinkLatency),
		float64(t.PCIeBW), int64(t.PCIeLatency),
		int64(t.HostMemory), float64(t.NVMeBW), int64(t.NVMeLatency), int64(t.NVMeSize))
	g := t.GPU
	fmt.Fprintf(&b, "gpu=%s/mem%d/fp32-%g/fp16-%g/eff%g/hbm%g;",
		g.Name, int64(g.Memory), float64(g.PeakFP32), float64(g.PeakFP16),
		g.Efficiency, float64(g.HBM))
	if !t.Switched {
		// The lane matrix shapes D2D routing on asymmetric servers.
		fmt.Fprintf(&b, "lanes=%v;", t.NVLinkLanes)
	}
	m := c.Model
	fmt.Fprintf(&b, "model=%s/%v/L%d/H%d/h%d/s%d/v%d/%v;",
		m.Name, m.Arch, m.Layers, m.Hidden, m.Heads, m.SeqLen, m.Vocab, m.DType)
	fmt.Fprintf(&b, "prec=%d/%d/%d;", c.Precision.ParamBytes, c.Precision.GradBytes, c.Precision.OptBytes)
	fmt.Fprintf(&b, "sched=%v;strat=%v;stages=%d;mbs=%d;micro=%d;",
		c.Schedule, c.Strategy, c.Stages, c.MicrobatchSize, c.Microbatches)
	if withMinibatches {
		fmt.Fprintf(&b, "mini=%d;", c.Minibatches)
	}
	fmt.Fprintf(&b, "sys=%d;nomap=%v;nostripe=%v", int(c.System), c.DisableMappingSearch, c.DisableStriping)
	return b.String()
}

func digest(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:16])
}
