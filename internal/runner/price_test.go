package runner

import (
	"context"
	"math"
	"testing"

	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/units"
)

func priceTestConfig(t *testing.T) Config {
	t.Helper()
	m, err := model.BertVariant("0.35B")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Topology:       hw.DGX1(),
		Model:          m,
		MicrobatchSize: 12,
		System:         SystemMPress,
	}
}

func runOne(t *testing.T, cfg Config) *Report {
	t.Helper()
	j, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jr := New(Options{}).Run(context.Background(), j)
	if jr.Err != nil {
		t.Fatal(jr.Err)
	}
	return jr.Report
}

// Pricing joins the fingerprint only when attached — a Config without
// Price must fingerprint exactly as it did before the field existed —
// and never the plan key, so priced and unpriced sweeps share plans.
func TestPriceFingerprintGating(t *testing.T) {
	plain, err := NewJob(priceTestConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := priceTestConfig(t)
	cfg.Price = &Price{NodePower: units.KW(3.5), NodeHourlyCost: units.USD(14)}
	priced, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fingerprint() == priced.Fingerprint() {
		t.Error("pricing did not change the fingerprint")
	}
	if plain.PlanKey() != priced.PlanKey() {
		t.Error("pricing changed the plan key; priced and unpriced runs must share plans")
	}
	cfg2 := priceTestConfig(t)
	cfg2.Price = &Price{NodePower: units.KW(3.5), NodeHourlyCost: units.USD(21)}
	repriced, err := NewJob(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if repriced.Fingerprint() == priced.Fingerprint() {
		t.Error("different rates fingerprint identically")
	}
}

func TestPriceValidate(t *testing.T) {
	cfg := priceTestConfig(t)
	cfg.Price = &Price{NodePower: units.Watts(-1)}
	if _, err := NewJob(cfg); err == nil {
		t.Error("negative power validated")
	}
	cfg.Price = &Price{NodeHourlyCost: units.USD(-1)}
	if _, err := NewJob(cfg); err == nil {
		t.Error("negative cost validated")
	}
}

// A priced run's Report must carry energy and cost consistent with its
// wall clock; an unpriced run must leave both zero.
func TestPricedReport(t *testing.T) {
	cfg := priceTestConfig(t)
	cfg.Price = &Price{NodePower: units.KW(3.5), NodeHourlyCost: units.USD(14)}
	rep := runOne(t, cfg)
	if rep.Failed() {
		t.Fatal("priced run OOMed")
	}
	hours := rep.Duration.Secondsf() / 3600
	wantKWh := 3.5 * hours * float64(rep.Replicas)
	if math.Abs(rep.EnergyKWh-wantKWh) > 1e-12*wantKWh {
		t.Errorf("EnergyKWh = %g, want %g", rep.EnergyKWh, wantKWh)
	}
	wantUSD := 14 * hours * float64(rep.Replicas)
	if math.Abs(rep.CostUSD-wantUSD) > 1e-12*wantUSD {
		t.Errorf("CostUSD = %g, want %g", rep.CostUSD, wantUSD)
	}

	plain := runOne(t, priceTestConfig(t))
	if plain.EnergyKWh != 0 || plain.CostUSD != 0 {
		t.Errorf("unpriced report has EnergyKWh=%g CostUSD=%g", plain.EnergyKWh, plain.CostUSD)
	}
	// Pricing must not perturb the simulation itself.
	if plain.Duration != rep.Duration || plain.SamplesPerSec != rep.SamplesPerSec {
		t.Error("pricing changed the simulated outcome")
	}
}
