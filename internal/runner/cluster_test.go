package runner

import (
	"context"
	"reflect"
	"testing"

	"mpress/internal/cluster"
	"mpress/internal/hw"
)

func clusterCfg(t *testing.T, nodes int, fab cluster.Fabric, sys System) Config {
	t.Helper()
	c := bertCfg(t, "0.64B", sys)
	c.Cluster = cluster.MustNew(nodes, hw.DGX1(), fab)
	return c
}

// TestOneNodeClusterMatchesSingleServer: the degenerate 1-node cluster
// must reproduce the single-server run exactly — same fingerprint,
// same report.
func TestOneNodeClusterMatchesSingleServer(t *testing.T) {
	single := mustJob(t, bertCfg(t, "0.64B", SystemMPress))
	clustered := mustJob(t, clusterCfg(t, 1, cluster.InfiniBand4x100(), SystemMPress))
	if single.Fingerprint() != clustered.Fingerprint() {
		t.Fatal("1-node cluster must fingerprint identically to the single-server job")
	}
	r := New(Options{})
	a := r.Run(context.Background(), single)
	b := r.Run(context.Background(), clustered)
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if a.Report.Duration != b.Report.Duration ||
		a.Report.TFLOPS != b.Report.TFLOPS ||
		!reflect.DeepEqual(a.Report.PerGPUPeak, b.Report.PerGPUPeak) {
		t.Errorf("1-node cluster diverged: %v/%v vs %v/%v",
			a.Report.Duration, a.Report.TFLOPS, b.Report.Duration, b.Report.TFLOPS)
	}
	if b.Report.Replicas != 1 || b.Report.NICBytes != 0 || b.Report.AllReduces != 0 {
		t.Errorf("1-node cluster shows fabric activity: %+v", b.Report)
	}
	if b.Report.ClusterTFLOPS != b.Report.TFLOPS {
		t.Errorf("1-node ClusterTFLOPS %g != TFLOPS %g", b.Report.ClusterTFLOPS, b.Report.TFLOPS)
	}
}

// TestClusterPlanKeyShared: scaling out must not re-run the planner —
// the plan key excludes the cluster, the fingerprint includes it.
func TestClusterPlanKeyShared(t *testing.T) {
	single := mustJob(t, bertCfg(t, "0.64B", SystemMPress))
	n4 := mustJob(t, clusterCfg(t, 4, cluster.InfiniBand4x100(), SystemMPress))
	if single.PlanKey() != n4.PlanKey() {
		t.Error("node count must not change the plan key")
	}
	if single.Fingerprint() == n4.Fingerprint() {
		t.Error("node count must change the fingerprint")
	}
	slow := mustJob(t, clusterCfg(t, 4, cluster.Ethernet10G(), SystemMPress))
	if slow.Fingerprint() == n4.Fingerprint() {
		t.Error("fabric must change the fingerprint")
	}
	if slow.PlanKey() != n4.PlanKey() {
		t.Error("fabric must not change the plan key")
	}

	// And the runner's cache must actually hit across node counts.
	r := New(Options{})
	if res := r.Run(context.Background(), single); res.Err != nil {
		t.Fatal(res.Err)
	}
	res := r.Run(context.Background(), n4)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.PlanCacheHit {
		t.Error("4-node job recomputed the plan the 1-node job already cached")
	}
}

// TestClusterRunDeterministic: two runs of the same multi-node job are
// byte-identical.
func TestClusterRunDeterministic(t *testing.T) {
	j := mustJob(t, clusterCfg(t, 4, cluster.Ethernet10G(), SystemMPress))
	r := New(Options{})
	a := r.Run(context.Background(), j)
	b := r.Run(context.Background(), j)
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if !reflect.DeepEqual(a.Report, b.Report) {
		t.Errorf("nondeterministic cluster run:\n%+v\nvs\n%+v", a.Report, b.Report)
	}
}

// TestClusterSlowdownMonotonic: per-replica iteration time never
// improves when nodes are added or the fabric slows down.
func TestClusterSlowdownMonotonic(t *testing.T) {
	r := New(Options{})
	run := func(cfg Config) *Report {
		t.Helper()
		res := r.Run(context.Background(), mustJob(t, cfg))
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Report.Failed() {
			t.Fatalf("OOM: %v", res.Report.OOM)
		}
		return res.Report
	}
	base := run(bertCfg(t, "0.64B", SystemMPress))
	fast := run(clusterCfg(t, 4, cluster.InfiniBand4x100(), SystemMPress))
	slow := run(clusterCfg(t, 4, cluster.Ethernet10G(), SystemMPress))
	if fast.Duration < base.Duration {
		t.Errorf("4-node iteration %v beats single-server %v", fast.Duration, base.Duration)
	}
	if slow.Duration <= fast.Duration {
		t.Errorf("10G fabric iteration %v not slower than 4x100G %v", slow.Duration, fast.Duration)
	}
	if fast.NICBytes <= 0 || fast.AllReduces <= 0 {
		t.Errorf("multi-node run reports no fabric traffic: %+v", fast)
	}
	if fast.ClusterTFLOPS <= fast.TFLOPS {
		t.Errorf("ClusterTFLOPS %g not scaled above per-replica %g", fast.ClusterTFLOPS, fast.TFLOPS)
	}
	// Scaling efficiency = cluster throughput / (N x single-server).
	eff := func(rep *Report) float64 { return rep.ClusterTFLOPS / (float64(rep.Replicas) * base.TFLOPS) }
	if e := eff(fast); e <= 0 || e > 1.0000001 {
		t.Errorf("fast-fabric efficiency %g outside (0,1]", e)
	}
	if eff(slow) >= eff(fast) {
		t.Errorf("slow fabric efficiency %g not below fast %g", eff(slow), eff(fast))
	}
}

func TestClusterConfigErrors(t *testing.T) {
	// ZeRO baselines are single-server only.
	if _, err := NewJob(clusterCfg(t, 2, cluster.InfiniBand4x100(), SystemZeRO3)); err == nil {
		t.Error("multi-node ZeRO validated")
	}
	// Mismatched Topology vs Cluster.Server.
	cfg := clusterCfg(t, 2, cluster.InfiniBand4x100(), SystemMPress)
	cfg.Topology = hw.DGX2()
	if _, err := NewJob(cfg); err == nil {
		t.Error("mismatched topology validated")
	}
	// Topology defaults from the cluster.
	cfg = clusterCfg(t, 2, cluster.InfiniBand4x100(), SystemMPress)
	cfg.Topology = nil
	j, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if j.Config.Topology == nil || j.Config.Topology.Name != "DGX-1V" {
		t.Errorf("Topology not defaulted from cluster: %+v", j.Config.Topology)
	}
	if j.Config.AllReduceBuckets != 4 {
		t.Errorf("AllReduceBuckets defaulted to %d, want 4", j.Config.AllReduceBuckets)
	}
	cfg.AllReduceBuckets = -1
	if _, err := NewJob(cfg); err == nil {
		t.Error("negative bucket count validated")
	}
}
