package runner

import (
	"context"
	"fmt"

	"mpress/internal/chaos"
	"mpress/internal/ckpt"
	"mpress/internal/cluster"
	"mpress/internal/exec"
	"mpress/internal/graph"
	"mpress/internal/hw"
	"mpress/internal/memsim"
	"mpress/internal/trace"
	"mpress/internal/units"
)

// This file orchestrates resilient runs: the Execute stage's fault-free
// result is the ideal baseline, then stageResilience replays the job
// under the fault schedule — running execution segments with periodic
// checkpoints, and on each injected failure rolling back to the last
// durable checkpoint, degrading the topology, re-running the
// partition/plan pipeline on the survivors and resuming. The outcome
// is a goodput model: total wall clock including checkpoint stalls,
// lost work and recovery latency.

// Recovery logs one fault's aftermath.
type Recovery struct {
	// Fault is the injected fault (its At is resilient wall-clock).
	Fault chaos.Fault `json:"fault"`
	// LostWork is the simulated progress discarded: time since the
	// last durable checkpoint of the failing segment.
	LostWork units.Duration `json:"lost_work"`
	// RecoveryTime is detection/restart delay plus the checkpoint
	// restore transfer on the degraded topology.
	RecoveryTime units.Duration `json:"recovery_time"`
	// ResumedMinibatch is the first minibatch index re-run after the
	// rollback (counting from the start of the job).
	ResumedMinibatch int `json:"resumed_minibatch"`
	// Topology names the (possibly degraded) topology the run resumed
	// on.
	Topology string `json:"topology"`
}

// resilSummary is stageResilience's hand-off to stageReport.
type resilSummary struct {
	wall         units.Duration // total resilient wall clock
	checkpoints  int
	ckptBytes    units.Bytes
	ckptTime     units.Duration // cumulative snapshot drain time
	lostWork     units.Duration
	recoveryTime units.Duration
	recoveries   []Recovery
	oom          *memsim.OOMError // degraded-topology OOM, if the run died
}

// aliveSet tracks which of the original GPUs survive, translating
// healthy-topology fault targets into the renumbered degraded
// topology.
type aliveSet struct {
	alive []bool
	links map[[2]hw.DeviceID]bool // downed NVLink pairs (original numbering)
}

func newAliveSet(n int) *aliveSet {
	a := &aliveSet{alive: make([]bool, n), links: map[[2]hw.DeviceID]bool{}}
	for i := range a.alive {
		a.alive[i] = true
	}
	return a
}

// current returns the degraded-topology index of original GPU g, or
// false if it is dead.
func (a *aliveSet) current(g hw.DeviceID) (hw.DeviceID, bool) {
	if !g.IsGPU() || int(g) >= len(a.alive) || !a.alive[g] {
		return 0, false
	}
	idx := 0
	for i := 0; i < int(g); i++ {
		if a.alive[i] {
			idx++
		}
	}
	return hw.DeviceID(idx), true
}

func pairKey(a, b hw.DeviceID) [2]hw.DeviceID {
	if a > b {
		a, b = b, a
	}
	return [2]hw.DeviceID{a, b}
}

// relevant reports whether the fault still targets live hardware —
// without mutating the alive set (applyFault does that, after the
// failing segment has been charged).
func (a *aliveSet) relevant(topo *hw.Topology, f chaos.Fault) bool {
	switch f.Kind {
	case chaos.GPUFail:
		_, ok := a.current(f.GPU)
		return ok
	case chaos.NVLinkFail:
		if a.links[pairKey(f.GPU, f.Peer)] {
			return false
		}
		ca, okA := a.current(f.GPU)
		cb, okB := a.current(f.Peer)
		return okA && okB && topo.LanesBetween(ca, cb) > 0
	default: // NICFlap, HostPressure always bite
		return true
	}
}

// applyFault degrades topo for the fault, or reports skip=true when
// the target is already gone (dead GPU, downed link). NIC flaps leave
// the topology intact — they cost a rollback, nothing more.
func (a *aliveSet) applyFault(topo *hw.Topology, f chaos.Fault) (newTopo *hw.Topology, skip bool, err error) {
	switch f.Kind {
	case chaos.GPUFail:
		cur, ok := a.current(f.GPU)
		if !ok {
			return topo, true, nil
		}
		if topo.NumGPUs <= 1 {
			return nil, false, fmt.Errorf("mpress: fault %v leaves no GPUs", f)
		}
		deg, err := topo.WithoutGPU(cur)
		if err != nil {
			return nil, false, err
		}
		a.alive[f.GPU] = false
		return deg, false, nil
	case chaos.NVLinkFail:
		if a.links[pairKey(f.GPU, f.Peer)] {
			return topo, true, nil
		}
		ca, okA := a.current(f.GPU)
		cb, okB := a.current(f.Peer)
		if !okA || !okB || topo.LanesBetween(ca, cb) == 0 {
			return topo, true, nil
		}
		deg, err := topo.WithoutNVLink(ca, cb)
		if err != nil {
			return nil, false, err
		}
		a.links[pairKey(f.GPU, f.Peer)] = true
		return deg, false, nil
	case chaos.NICFlap:
		return topo, false, nil
	case chaos.HostPressure:
		mem := topo.HostMemory - f.HostLoss
		if min := units.GiB; mem < min {
			mem = min // a starved host still has something
		}
		deg, err := topo.WithHostMemory(mem)
		if err != nil {
			return nil, false, err
		}
		return deg, false, nil
	default:
		return nil, false, fmt.Errorf("mpress: unknown fault kind %v", f.Kind)
	}
}

// segment holds the executable artifacts of one run attempt.
type segment struct {
	topo  *hw.Topology
	state *State // Part/Built/Plan/Mapping/ExecOpts for the attempt
}

// replan re-runs the partition → apply pipeline for the remaining
// minibatches on a (possibly degraded) topology, reusing the runner's
// plan cache across repeated failures with identical degradation.
func replan(ctx context.Context, base Config, topo *hw.Topology, remaining int, cache *planCache) (*segment, error) {
	sub := base
	sub.Topology = topo
	sub.Faults, sub.Checkpoint = nil, nil
	sub.Minibatches = remaining
	// A one-stage-per-GPU pipeline re-partitions across the survivors;
	// explicitly virtual (plain-system) stage counts stay as configured
	// and wrap. The batch shape is the job's, not the machine's, so
	// MicrobatchSize/Microbatches are untouched.
	if sub.Stages > topo.NumGPUs &&
		(sub.System != SystemPlain || sub.Stages == base.Topology.NumGPUs) {
		sub.Stages = topo.NumGPUs
	}
	if sub.Cluster != nil && sub.Cluster.Server != topo {
		clus, err := cluster.New(sub.Cluster.Nodes, topo, sub.Cluster.Net)
		if err != nil {
			return nil, fmt.Errorf("mpress: recomposing degraded cluster: %w", err)
		}
		sub.Cluster = clus
	}
	j, err := NewJob(sub)
	if err != nil {
		return nil, fmt.Errorf("mpress: re-planning on %q: %w", topo.Name, err)
	}
	st := &State{Job: j, cache: cache}
	for _, stage := range []Stage{
		{"partition", stagePartition},
		{"build", stageBuild},
		{"plan", stagePlan},
		{"apply", stageApply},
	} {
		if err := stage.Run(ctx, st); err != nil {
			return nil, fmt.Errorf("mpress: re-planning on %q: %w", topo.Name, err)
		}
	}
	return &segment{topo: topo, state: st}, nil
}

// stageResilience runs the checkpointed, fault-injected replay. It
// requires the Execute stage's fault-free result (the ideal baseline)
// and leaves the final — possibly re-planned — Plan/Mapping on the
// State, plus the merged wall-clock Timeline and the resilSummary for
// stageReport.
func stageResilience(ctx context.Context, st *State) error {
	c := st.Job.Config
	if st.Exec.OOM != nil {
		return nil // the ideal run already died; nothing to replay
	}

	faults := c.Faults.Schedule(c.Topology, c.Replicas())
	var spec *exec.CheckpointSpec
	if c.Checkpoint != nil {
		var mtbf units.Duration
		if c.Faults != nil {
			mtbf = c.Faults.MTBF
		}
		every := c.Checkpoint.Resolve(ckpt.Cost(c.Topology, ckpt.StageBytes(st.Built)), mtbf)
		if every <= 0 {
			return fmt.Errorf("mpress: checkpoint interval resolved to %v; set Checkpoint.Interval or Faults.MTBF", every)
		}
		spec = &exec.CheckpointSpec{Every: every}
	}

	sum := &resilSummary{}
	timeline := &trace.Timeline{Stages: st.Built.NumStages()}
	alive := newAliveSet(c.Topology.NumGPUs)
	seg := &segment{topo: c.Topology, state: st}
	remaining := c.Minibatches
	var wall units.Duration
	fi := 0

	for {
		// Next fault that still targets live hardware — dead-target
		// faults are skipped for free.
		var fault *chaos.Fault
		for fi < len(faults) {
			f := faults[fi]
			if alive.relevant(seg.topo, f) {
				fault = &f
				break
			}
			fi++
		}

		opts := *seg.state.ExecOpts
		opts.Ctx = ctx
		opts.Checkpoint = spec
		if err := st.applySimKnobs(&opts); err != nil {
			return err
		}
		if fault != nil {
			rel := fault.At - wall
			if rel <= 0 {
				rel = units.Microsecond // fault queued up during recovery
			}
			opts.FailAt = rel
		}
		res, err := exec.Run(opts)
		if err != nil {
			return err
		}
		segTL := trace.Collect(seg.state.Built, res)
		timeline.Append(segTL, wall)
		sum.checkpoints += len(res.Checkpoints)
		sum.ckptBytes += res.CheckpointBytes
		for _, rec := range res.Checkpoints {
			sum.ckptTime += units.Duration(rec.End - rec.Start)
		}
		if res.OOM != nil {
			// The degraded machine cannot hold the job (e.g. host
			// pressure starved the swap space): the run dies here.
			sum.oom = res.OOM
			sum.wall = wall + res.Duration
			break
		}
		if res.Failure == nil {
			sum.wall = wall + res.Duration
			break
		}

		// The segment failed. Roll back to its last durable checkpoint.
		durable := 0
		lost := units.Duration(res.Failure.At)
		if n := len(res.Checkpoints); n > 0 {
			last := res.Checkpoints[n-1]
			durable = last.Minibatch + 1
			lost = units.Duration(res.Failure.At - last.End)
		}
		remaining -= durable
		wall += units.Duration(res.Failure.At)
		sum.lostWork += lost
		timeline.Mark(graph.Failure, fault.String(), wall, wall)

		// Degrade the topology and re-plan on the survivors.
		newTopo, skip, err := alive.applyFault(seg.topo, *fault)
		if err != nil {
			return err
		}
		fi++
		if !skip && newTopo != seg.topo {
			if seg, err = replan(ctx, c, newTopo, remaining, st.cache); err != nil {
				return err
			}
		} else if remaining != seg.state.Built.Cfg.Minibatches {
			// Same topology (NIC flap), fewer minibatches left.
			if seg, err = replan(ctx, c, seg.topo, remaining, st.cache); err != nil {
				return err
			}
		}

		// Pay detection plus the checkpoint restore onto the new
		// topology (nothing to restore before the first checkpoint —
		// the job restarts from its initial state).
		recovery := c.Faults.Detection()
		if c.Minibatches-remaining > 0 {
			recovery += ckpt.RestoreCost(seg.topo, ckpt.StageBytes(seg.state.Built))
		}
		sum.recoveryTime += recovery
		timeline.Mark(graph.Recovery, "recovery", wall, wall+recovery)
		wall += recovery
		sum.recoveries = append(sum.recoveries, Recovery{
			Fault:            *fault,
			LostWork:         lost,
			RecoveryTime:     recovery,
			ResumedMinibatch: c.Minibatches - remaining,
			Topology:         seg.topo.Name,
		})
	}

	timeline.Span = sum.wall
	st.Resil = sum
	st.Timeline = timeline
	// Report the plan the job ended on: after a degradation this is the
	// re-planned one whose striping excludes the dead hardware.
	if seg.state != st {
		st.Plan = seg.state.Plan
		st.Mapping = seg.state.Mapping
		st.Recovered = seg.state.Built
	}
	return nil
}
