package runner

import (
	"context"
	"reflect"
	"testing"

	"mpress/internal/chaos"
	"mpress/internal/ckpt"
	"mpress/internal/hw"
	"mpress/internal/units"
)

// idealRun runs the config fault-free and returns its kept result.
func idealRun(t *testing.T, cfg Config) JobResult {
	t.Helper()
	r := New(Options{Workers: 1})
	res := r.RunKeep(context.Background(), mustJob(t, cfg))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Report.OOM != nil {
		t.Fatalf("ideal run OOMs: %v", res.Report.OOM)
	}
	return res
}

// stripePairs collects every (src GPU, peer GPU) D2D stripe pair of a
// run's plan, src derived from the owning stage's mapping.
func stripePairs(t *testing.T, res JobResult) map[[2]hw.DeviceID]bool {
	t.Helper()
	built := res.State.Built
	if res.State.Recovered != nil {
		built = res.State.Recovered
	}
	rep := res.Report
	pairs := map[[2]hw.DeviceID]bool{}
	for id, parts := range rep.Plan.Parts {
		stage := built.Graph.Tensors.Get(id).Stage
		src := rep.Mapping[stage]
		for _, p := range parts {
			pairs[pairKey(src, p.Peer)] = true
		}
	}
	return pairs
}

// TestNVLinkFailureReplansStriping is the headline acceptance test: an
// NVLink goes down mid-run, the job rolls back, re-plans on the
// degraded topology, and the recovered plan's D2D striping excludes
// the downed peer — while the run still completes, with goodput below
// the ideal throughput and positive lost work.
func TestNVLinkFailureReplansStriping(t *testing.T) {
	cfg := bertCfg(t, "0.64B", SystemMPress)
	base := idealRun(t, cfg)
	pairs := stripePairs(t, base)
	if len(pairs) == 0 {
		t.Fatal("baseline plan has no D2D stripes; the test needs memory pressure")
	}
	// Deterministic victim: the smallest striped pair.
	victim := [2]hw.DeviceID{127, 127}
	for p := range pairs {
		if p[0] < victim[0] || (p[0] == victim[0] && p[1] < victim[1]) {
			victim = p
		}
	}

	ideal := base.Report.Duration
	cfg.Faults = &chaos.Config{Script: []chaos.Fault{
		{Kind: chaos.NVLinkFail, At: ideal / 2, GPU: victim[0], Peer: victim[1]},
	}}
	cfg.Checkpoint = &ckpt.Policy{Interval: ideal / 8}

	res := New(Options{Workers: 1}).RunKeep(context.Background(), mustJob(t, cfg))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	rep := res.Report
	if rep.OOM != nil {
		t.Fatalf("resilient run OOMs: %v", rep.OOM)
	}
	if rep.Failures != 1 || len(rep.Recoveries) != 1 {
		t.Fatalf("Failures = %d, Recoveries = %d, want 1", rep.Failures, len(rep.Recoveries))
	}
	if rep.LostWork <= 0 {
		t.Errorf("LostWork = %v, want > 0", rep.LostWork)
	}
	if rep.Goodput <= 0 || rep.Goodput >= rep.SamplesPerSec {
		t.Errorf("Goodput = %g, want in (0, %g)", rep.Goodput, rep.SamplesPerSec)
	}
	if rep.IdealDuration != ideal {
		t.Errorf("IdealDuration = %v, want %v", rep.IdealDuration, ideal)
	}
	if rep.Duration <= ideal {
		t.Errorf("resilient Duration %v not beyond ideal %v", rep.Duration, ideal)
	}
	if rep.Checkpoints == 0 || rep.CheckpointBytes == 0 {
		t.Errorf("checkpoints = %d (%v), want some", rep.Checkpoints, rep.CheckpointBytes)
	}
	if res.State.Recovered == nil {
		t.Fatal("no recovered build recorded after a degrading fault")
	}
	recovered := stripePairs(t, res)
	if len(recovered) == 0 {
		t.Error("recovered plan lost all D2D striping")
	}
	if recovered[victim] {
		t.Errorf("recovered plan still stripes across downed pair %v-%v", victim[0], victim[1])
	}
	if res.State.Timeline == nil || res.State.Timeline.Span != rep.Duration {
		t.Error("resilient timeline missing or span mismatch")
	}
}

// TestGPUFailureRecovery kills a GPU mid-run: the pipeline re-partitions
// across the seven survivors and finishes.
func TestGPUFailureRecovery(t *testing.T) {
	cfg := bertCfg(t, "0.64B", SystemPlain)
	cfg.MicrobatchSize = 2
	base := idealRun(t, cfg)
	ideal := base.Report.Duration

	cfg.Faults = &chaos.Config{Script: []chaos.Fault{
		{Kind: chaos.GPUFail, At: ideal / 3, GPU: 3},
	}}
	cfg.Checkpoint = &ckpt.Policy{Interval: ideal / 10}
	res := New(Options{Workers: 1}).RunKeep(context.Background(), mustJob(t, cfg))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	rep := res.Report
	if rep.OOM != nil {
		t.Fatalf("recovered run OOMs: %v", rep.OOM)
	}
	if rep.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", rep.Failures)
	}
	rec := rep.Recoveries[0]
	if rec.Topology == cfg.Topology.Name {
		t.Errorf("recovery topology %q not degraded", rec.Topology)
	}
	if rec.RecoveryTime <= 0 {
		t.Error("recovery time not accounted")
	}
	if len(rep.Mapping) != cfg.Topology.NumGPUs-1 {
		t.Errorf("recovered mapping has %d stages, want %d", len(rep.Mapping), cfg.Topology.NumGPUs-1)
	}
	if rep.Goodput <= 0 || rep.Goodput >= rep.SamplesPerSec {
		t.Errorf("Goodput = %g, want in (0, %g)", rep.Goodput, rep.SamplesPerSec)
	}
}

// TestCheckpointOnlyRun prices checkpointing with no faults: same
// result, slower clock, goodput below ideal.
func TestCheckpointOnlyRun(t *testing.T) {
	cfg := bertCfg(t, "0.64B", SystemPlain)
	cfg.MicrobatchSize = 2
	cfg.Minibatches = 4
	base := idealRun(t, cfg)
	ideal := base.Report.Duration

	cfg.Checkpoint = &ckpt.Policy{Interval: units.Microsecond}
	rep, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 || rep.LostWork != 0 || rep.RecoveryTime != 0 {
		t.Errorf("fault-free run reports failures: %+v", rep.Recoveries)
	}
	if rep.Checkpoints != cfg.Minibatches-1 {
		t.Errorf("Checkpoints = %d, want %d", rep.Checkpoints, cfg.Minibatches-1)
	}
	// Snapshot drains overlap pipeline compute, so an uncongested run
	// may hide them entirely: the invariants are "never faster" and a
	// fully accounted drain time.
	if rep.Duration < ideal || rep.Goodput > rep.SamplesPerSec {
		t.Errorf("checkpointing sped the run up: dur %v vs %v, goodput %g vs %g",
			rep.Duration, ideal, rep.Goodput, rep.SamplesPerSec)
	}
	if rep.CheckpointTime <= 0 {
		t.Error("CheckpointTime not accounted")
	}
}

// TestResilientValidation exercises the config error paths.
func TestResilientValidation(t *testing.T) {
	cfg := bertCfg(t, "0.64B", SystemPlain)
	cfg.Checkpoint = &ckpt.Policy{} // Young–Daly needs an MTBF
	if _, err := NewJob(cfg); err == nil {
		t.Error("interval 0 without MTBF must be rejected")
	}

	cfg = bertCfg(t, "0.64B", SystemZeRO3)
	cfg.Faults = &chaos.Config{MTBF: units.Second}
	if _, err := NewJob(cfg); err == nil {
		t.Error("fault injection on a ZeRO baseline must be rejected")
	}

	cfg = bertCfg(t, "0.64B", SystemPlain)
	cfg.Faults = &chaos.Config{Script: []chaos.Fault{{Kind: chaos.GPUFail, At: units.Second, GPU: 99}}}
	if _, err := NewJob(cfg); err == nil {
		t.Error("script targeting a nonexistent GPU must be rejected")
	}
}

// TestResilientFingerprint: faults and checkpoints change the job
// fingerprint but never the plan key.
func TestResilientFingerprint(t *testing.T) {
	base := bertCfg(t, "0.64B", SystemMPress)
	j0 := mustJob(t, base)

	faulty := base
	faulty.Faults = &chaos.Config{Seed: 1, MTBF: units.Second}
	jf := mustJob(t, faulty)
	if jf.Fingerprint() == j0.Fingerprint() {
		t.Error("fault schedule must change the fingerprint")
	}
	if jf.PlanKey() != j0.PlanKey() {
		t.Error("fault schedule must not change the plan key")
	}

	seeded := faulty
	seeded.Faults = &chaos.Config{Seed: 2, MTBF: units.Second}
	if mustJob(t, seeded).Fingerprint() == jf.Fingerprint() {
		t.Error("fault seed must change the fingerprint")
	}

	ck := base
	ck.Checkpoint = &ckpt.Policy{Interval: units.Second}
	jc := mustJob(t, ck)
	if jc.Fingerprint() == j0.Fingerprint() || jc.PlanKey() != j0.PlanKey() {
		t.Error("checkpoint policy must change the fingerprint only")
	}
}

// TestResilientDeterminism: the same seeded fault schedule yields a
// byte-identical outcome, run to run.
func TestResilientDeterminism(t *testing.T) {
	cfg := bertCfg(t, "0.64B", SystemPlain)
	cfg.MicrobatchSize = 2
	base := idealRun(t, cfg)
	cfg.Faults = &chaos.Config{Seed: 42, MTBF: base.Report.Duration / 2, MaxFaults: 2,
		Kinds: []chaos.Kind{chaos.GPUFail}}
	cfg.Checkpoint = &ckpt.Policy{Interval: base.Report.Duration / 10}

	a, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Recoveries, b.Recoveries) ||
		a.Duration != b.Duration || a.Goodput != b.Goodput ||
		a.CheckpointBytes != b.CheckpointBytes || a.LostWork != b.LostWork {
		t.Errorf("identical seeded runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestHostPressureSurvivesByReplanning starves host DRAM mid-run on a
// model small enough that the re-plan can trade host swap for
// D2D/recomputation: the run degrades but completes.
func TestHostPressureSurvivesByReplanning(t *testing.T) {
	cfg := bertCfg(t, "1.67B", SystemMPress)
	base := idealRun(t, cfg)
	ideal := base.Report.Duration

	cfg.Faults = &chaos.Config{Script: []chaos.Fault{
		{Kind: chaos.HostPressure, At: ideal / 2, HostLoss: 600 * units.GiB},
	}}
	cfg.Checkpoint = &ckpt.Policy{Interval: ideal / 8}

	rep, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OOM != nil {
		t.Fatalf("1.67B should re-plan around host pressure, got OOM: %v", rep.OOM)
	}
	if len(rep.Recoveries) != 1 {
		t.Fatalf("Recoveries = %d, want 1", len(rep.Recoveries))
	}
	if rep.Goodput <= 0 || rep.Goodput >= rep.SamplesPerSec {
		t.Errorf("Goodput = %g, want in (0, %g)", rep.Goodput, rep.SamplesPerSec)
	}
}

// TestHostPressureReportsOOM starves host DRAM under a model whose
// overflow exceeds what D2D and recomputation can absorb (4.0B needs
// host swap — the d2d-only and recompute-only systems OOM on it even
// fault-free): the degraded machine cannot stage the host-swapped
// state, and the run dies of a *reported* OOM — like every other
// capacity failure — rather than a hard re-planning error.
func TestHostPressureReportsOOM(t *testing.T) {
	cfg := bertCfg(t, "4.0B", SystemMPress)
	base := idealRun(t, cfg)
	ideal := base.Report.Duration

	cfg.Faults = &chaos.Config{Script: []chaos.Fault{
		{Kind: chaos.HostPressure, At: ideal / 2, HostLoss: 600 * units.GiB},
	}}
	cfg.Checkpoint = &ckpt.Policy{Interval: ideal / 8}

	res := New(Options{Workers: 1}).RunKeep(context.Background(), mustJob(t, cfg))
	if res.Err != nil {
		t.Fatalf("host-pressure run errored (want reported OOM): %v", res.Err)
	}
	rep := res.Report
	if rep.OOM == nil {
		t.Fatal("host-pressure run completed; want a degraded-topology OOM")
	}
	if rep.OOM.Device != "host" {
		t.Errorf("OOM device = %q, want host", rep.OOM.Device)
	}
	if len(rep.Recoveries) == 0 {
		t.Error("no recovery recorded before the OOM")
	}
}
