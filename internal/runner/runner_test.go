package runner

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/pipeline"
)

// bertCfg is the test workhorse: small enough to simulate in well
// under a second, big enough to exercise the full stage pipeline.
func bertCfg(t *testing.T, size string, sys System) Config {
	t.Helper()
	m, err := model.BertVariant(size)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Topology:       hw.DGX1(),
		Model:          m,
		Schedule:       pipeline.PipeDream,
		System:         sys,
		MicrobatchSize: 12,
	}
}

func mustJob(t *testing.T, cfg Config) *Job {
	t.Helper()
	j, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestFingerprintAndPlanKey(t *testing.T) {
	base := bertCfg(t, "0.64B", SystemMPress)
	j1, j2 := mustJob(t, base), mustJob(t, base)
	if j1.Fingerprint() != j2.Fingerprint() || j1.PlanKey() != j2.PlanKey() {
		t.Fatal("identical configs must fingerprint identically")
	}

	// Minibatches is excluded from the plan key but not the fingerprint.
	mini := base
	mini.Minibatches = 4
	jm := mustJob(t, mini)
	if jm.Fingerprint() == j1.Fingerprint() {
		t.Error("minibatch count must change the fingerprint")
	}
	if jm.PlanKey() != j1.PlanKey() {
		t.Error("minibatch count must not change the plan key")
	}

	// The ablation knobs key distinct plans.
	for _, mutate := range []func(*Config){
		func(c *Config) { c.DisableStriping = true },
		func(c *Config) { c.DisableMappingSearch = true },
		func(c *Config) { c.System = SystemRecompute },
	} {
		v := base
		mutate(&v)
		if jv := mustJob(t, v); jv.PlanKey() == j1.PlanKey() {
			t.Errorf("variant %+v shares the base plan key", v)
		}
	}

	// Systems that never run the planner have no plan key.
	for _, sys := range []System{SystemPlain, SystemZeRO3, SystemZeROOffload, SystemZeROInfinity} {
		if j := mustJob(t, bertCfg(t, "0.64B", sys)); j.PlanKey() != "" {
			t.Errorf("%v has a plan key", sys)
		}
	}
}

// TestDeterminism is the regression test for the refactor's core
// promise: the same Config yields byte-identical Reports whether run
// serially through Train or concurrently through a Runner alongside
// other jobs.
func TestDeterminism(t *testing.T) {
	cfg := bertCfg(t, "1.67B", SystemMPress)
	rep1, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatal("two serial Train calls disagree")
	}

	// The same config twice in a concurrent batch, interleaved with
	// different jobs contending for the worker pool and plan cache.
	r := New(Options{Workers: 4})
	batch := []Config{
		cfg,
		bertCfg(t, "0.64B", SystemRecompute),
		bertCfg(t, "0.64B", SystemGPUCPUSwap),
		cfg,
	}
	results := r.RunConfigs(context.Background(), batch)
	for _, i := range []int{0, 3} {
		if results[i].Err != nil {
			t.Fatalf("job %d: %v", i, results[i].Err)
		}
		if !reflect.DeepEqual(results[i].Report, rep1) {
			t.Errorf("concurrent job %d's report differs from the serial one", i)
		}
	}
	st := r.Stats()
	if st.Jobs != 4 {
		t.Errorf("jobs counter = %d, want 4", st.Jobs)
	}
	// Three distinct plan keys; the duplicated config reuses its twin's.
	if st.PlanComputes != 3 || st.PlanCacheHits != 1 {
		t.Errorf("plan cache: %d computes, %d hits; want 3, 1", st.PlanComputes, st.PlanCacheHits)
	}
}

func TestMinibatchVariantsSharePlan(t *testing.T) {
	base := bertCfg(t, "0.64B", SystemMPress)
	vary := base
	vary.Minibatches = 4

	r := New(Options{Workers: 1})
	results := r.RunConfigs(context.Background(), []Config{base, vary})
	for i, jr := range results {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
	}
	st := r.Stats()
	if st.PlanComputes != 1 || st.PlanCacheHits != 1 {
		t.Fatalf("plan cache: %d computes, %d hits; want 1, 1", st.PlanComputes, st.PlanCacheHits)
	}
	if results[0].PlanCacheHit || !results[1].PlanCacheHit {
		t.Errorf("cache hit flags = %v, %v; want false, true", results[0].PlanCacheHit, results[1].PlanCacheHit)
	}

	// The rebased cached plan must reproduce a from-scratch run.
	fresh, err := Train(vary)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results[1].Report, fresh) {
		t.Error("cached+rebased report differs from a from-scratch Train")
	}
}

func TestKnobVariantsMissCache(t *testing.T) {
	base := bertCfg(t, "0.64B", SystemMPress)
	noStripe := base
	noStripe.DisableStriping = true
	noMap := base
	noMap.DisableMappingSearch = true

	r := New(Options{Workers: 1})
	results := r.RunConfigs(context.Background(), []Config{base, noStripe, noMap})
	for i, jr := range results {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		if jr.PlanCacheHit {
			t.Errorf("job %d hit the cache across ablation knobs", i)
		}
	}
	if st := r.Stats(); st.PlanComputes != 3 || st.PlanCacheHits != 0 {
		t.Errorf("plan cache: %d computes, %d hits; want 3, 0", st.PlanComputes, st.PlanCacheHits)
	}
}

func TestSingleflightComputesOnce(t *testing.T) {
	cfg := bertCfg(t, "0.64B", SystemMPress)
	jobs := make([]*Job, 4)
	for i := range jobs {
		jobs[i] = mustJob(t, cfg)
	}
	r := New(Options{Workers: 4})
	results := r.RunAll(context.Background(), jobs)
	for i, jr := range results {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		if i > 0 && !reflect.DeepEqual(jr.Report, results[0].Report) {
			t.Errorf("job %d's report differs", i)
		}
	}
	st := r.Stats()
	if st.PlanComputes != 1 {
		t.Errorf("identical concurrent jobs ran the planner %d times, want 1", st.PlanComputes)
	}
	if st.PlanCacheHits != 3 {
		t.Errorf("plan cache hits = %d, want 3", st.PlanCacheHits)
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := New(Options{Workers: 2})
	results := r.RunConfigs(ctx, []Config{
		bertCfg(t, "0.64B", SystemMPress),
		bertCfg(t, "0.64B", SystemPlain),
	})
	for i, jr := range results {
		if !errors.Is(jr.Err, context.Canceled) {
			t.Errorf("job %d: want context.Canceled, got %v", i, jr.Err)
		}
		if jr.Report != nil {
			t.Errorf("job %d produced a report despite cancellation", i)
		}
	}
}

func TestRunConfigsSlotsValidationErrors(t *testing.T) {
	good := bertCfg(t, "0.64B", SystemPlain)
	results := New(Options{Workers: 2}).RunConfigs(context.Background(),
		[]Config{good, {}, good})
	if len(results) != 3 {
		t.Fatalf("got %d results for 3 configs", len(results))
	}
	if results[1].Err == nil {
		t.Error("empty config did not error")
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("job %d: %v", i, results[i].Err)
		}
		if results[i].Report == nil {
			t.Errorf("job %d has no report", i)
		}
	}
}

func TestTrainRejectsInvalidConfig(t *testing.T) {
	if _, err := Train(Config{}); err == nil {
		t.Error("Train accepted an empty config")
	}
}

func TestStageTimesRecorded(t *testing.T) {
	j := mustJob(t, bertCfg(t, "0.64B", SystemRecompute))
	r := New(Options{Workers: 1})
	res := r.Run(context.Background(), j)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for _, stage := range []string{"partition", "build", "plan", "apply", "execute", "report"} {
		if _, ok := res.StageTimes[stage]; !ok {
			t.Errorf("stage %q missing from StageTimes", stage)
		}
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
	st := r.Stats()
	if st.PlanTime <= 0 || st.ExecTime <= 0 {
		t.Errorf("stats timings not accumulated: plan %v, exec %v", st.PlanTime, st.ExecTime)
	}
}

func TestKeepArtifacts(t *testing.T) {
	cfg := bertCfg(t, "0.64B", SystemRecompute)
	j := mustJob(t, cfg)
	res := New(Options{Workers: 1, KeepArtifacts: true}).Run(context.Background(), j)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.State == nil || res.State.Built == nil || res.State.Exec == nil {
		t.Fatal("KeepArtifacts did not retain the pipeline state")
	}
	if res2 := New(Options{Workers: 1}).Run(context.Background(), j); res2.State != nil {
		t.Error("State retained without KeepArtifacts")
	}
}
