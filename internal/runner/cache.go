package runner

import (
	"sync"

	"mpress/internal/plan"
)

// planCache memoizes computed plans by Job.PlanKey with singleflight
// deduplication: when several workers want the same key at once, one
// computes and the rest block on its result — the plan is computed
// exactly once per key per runner. Plans are stored by pointer and
// shared across jobs; that is safe because plan.Apply and plan.Rebase
// only read the plan.
type planCache struct {
	mu       sync.Mutex
	entries  map[string]*cacheEntry
	hits     int64
	misses   int64
	computes int64
}

type cacheEntry struct {
	done chan struct{} // closed when pl/err are settled
	pl   *plan.Plan
	err  error
}

func newPlanCache() *planCache {
	return &planCache{entries: make(map[string]*cacheEntry)}
}

// getOrCompute returns the cached plan for key, computing it via fn if
// absent. hit reports whether the caller reused someone else's work
// (either a settled entry or another worker's in-flight computation).
// Failed computations are not cached: the entry is removed so a later
// caller retries.
func (c *planCache) getOrCompute(key string, fn func() (*plan.Plan, error)) (pl *plan.Plan, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.pl, true, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.computes++
	c.mu.Unlock()

	e.pl, e.err = fn()
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.done)
	return e.pl, false, e.err
}

func (c *planCache) stats() (hits, misses, computes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.computes
}
