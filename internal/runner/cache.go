package runner

import (
	"container/list"
	"sync"

	"mpress/internal/plan"
	"mpress/internal/units"
)

// DefaultPlanCacheEntries is the plan cache's default entry cap. It is
// far above what a typical sweep computes (the full paper grid needs a
// few dozen plans), so the default behaves like the old unbounded
// cache for small sweeps while still bounding a long-lived daemon.
const DefaultPlanCacheEntries = 512

// planCache memoizes computed plans by Job.PlanKey with singleflight
// deduplication: when several workers want the same key at once, one
// computes and the rest block on its result — the plan is computed
// exactly once per key per runner. Plans are stored by pointer and
// shared across jobs; that is safe because plan.Apply and plan.Rebase
// only read the plan.
//
// The cache is LRU-bounded: at most cap settled entries are retained
// (negative cap means unbounded), least-recently-used evicted first,
// with an approximate byte size accounted per entry. In-flight
// computations never count against the cap and are never evicted —
// a waiter always receives the plan it blocked on.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	lru     *list.List // settled entries, front = most recent

	hits      int64
	misses    int64
	computes  int64
	evictions int64
	bytes     units.Bytes
}

type cacheEntry struct {
	key  string
	done chan struct{} // closed when pl/err are settled
	pl   *plan.Plan
	err  error
	size units.Bytes
	elem *list.Element // nil while in flight
}

func newPlanCache(capacity int) *planCache {
	if capacity == 0 {
		capacity = DefaultPlanCacheEntries
	}
	return &planCache{
		cap:     capacity,
		entries: make(map[string]*cacheEntry),
		lru:     list.New(),
	}
}

// getOrCompute returns the cached plan for key, computing it via fn if
// absent. hit reports whether the caller reused someone else's work
// (either a settled entry or another worker's in-flight computation).
// Failed computations are not cached: the entry is removed so a later
// caller retries.
func (c *planCache) getOrCompute(key string, fn func() (*plan.Plan, error)) (pl *plan.Plan, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		<-e.done
		return e.pl, true, e.err
	}
	e := &cacheEntry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.computes++
	c.mu.Unlock()

	e.pl, e.err = fn()
	c.mu.Lock()
	if e.err != nil {
		delete(c.entries, key)
	} else {
		e.size = planSize(e.pl)
		e.elem = c.lru.PushFront(e)
		c.bytes += e.size
		c.evict()
	}
	c.mu.Unlock()
	close(e.done)
	return e.pl, false, e.err
}

// peek returns the settled plan cached under key without computing or
// blocking: in-flight entries report a miss. A hit refreshes the
// entry's LRU position but is not counted in hits/misses — peeks are
// the cache tier asking "can you serve this", not a job lookup.
func (c *planCache) peek(key string) (*plan.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.elem == nil {
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	return e.pl, true
}

// seed inserts a plan computed elsewhere (a fleet peer) as a settled
// entry, reporting whether it was inserted. An existing entry — settled
// or in flight — wins: seeding never clobbers local work, so a waiter
// always receives the plan it blocked on.
func (c *planCache) seed(key string, pl *plan.Plan) bool {
	if pl == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	done := make(chan struct{})
	close(done)
	e := &cacheEntry{key: key, done: done, pl: pl, size: planSize(pl)}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.bytes += e.size
	c.evict()
	return true
}

// evict trims the settled-entry LRU down to cap. Called with mu held.
func (c *planCache) evict() {
	if c.cap < 0 {
		return
	}
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

func (c *planCache) stats() (hits, misses, computes, evictions int64, entries int, bytes units.Bytes) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.computes, c.evictions, c.lru.Len(), c.bytes
}

// planSize estimates a plan's resident footprint for cache accounting:
// the per-tensor assignment maps dominate, so each entry is costed at
// its approximate in-memory size. The estimate only has to be stable
// and proportional — it drives eviction accounting, not allocation.
func planSize(p *plan.Plan) units.Bytes {
	if p == nil {
		return 0
	}
	const (
		mapEntry  = 48 // key + value + bucket overhead
		partEntry = 40 // one fabric.Part
	)
	n := int64(len(p.Mapping)) * 8
	n += int64(len(p.Act)) * mapEntry
	n += int64(len(p.HostPersist)) * mapEntry
	n += int64(len(p.SavedByMech)+len(p.StageRange)) * mapEntry
	for _, parts := range p.Parts {
		n += mapEntry + int64(len(parts))*partEntry
	}
	return units.Bytes(n + 128) // struct header
}
