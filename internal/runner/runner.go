package runner

import (
	"context"
	"runtime"
	"sync"
	"time"

	"mpress/internal/plan"
	"mpress/internal/units"
)

// Options configures a Runner.
type Options struct {
	// Workers bounds how many jobs simulate concurrently; 0 means
	// GOMAXPROCS. Each job runs on an isolated simulator instance, so
	// results are independent of the interleaving.
	Workers int
	// KeepArtifacts retains each job's full pipeline State (lowered
	// graph, executor options, raw exec.Result) on its JobResult.
	// Off by default so multi-gigabyte sweep intermediates are
	// collected as soon as the report is assembled.
	KeepArtifacts bool
	// OnJobDone, when set, is called after every job completes — from
	// the worker goroutine that ran it, so it must be safe for
	// concurrent use. Progress meters hang off this.
	OnJobDone func(JobResult)
	// PlanCacheEntries caps how many settled plans the runner's LRU
	// cache retains. 0 means DefaultPlanCacheEntries (large enough
	// that small sweeps behave as if unbounded); negative means
	// unbounded.
	PlanCacheEntries int
	// PlanWorkers is the default per-job planner refinement
	// parallelism for jobs whose Config.PlanWorkers is zero (see that
	// field — plans are byte-identical at any setting). Zero means
	// sequential refinement.
	PlanWorkers int
	// SimWorkers enables the conservative-PDES simulation kernel for
	// every job: 0 keeps the serial kernel, N ≥ 1 partitions the event
	// space (exec.PlanPartitions) and drains windows on N goroutines.
	// Like PlanWorkers this is an execution knob, not a job input: it
	// lives on Options — never Config — so it stays out of job
	// fingerprints, plan keys, and report JSON, and reports are
	// byte-identical at any setting (enforced by the simkernel smoke
	// test).
	SimWorkers int
	// SimScheduler selects the kernel's event scheduler: "" or "auto"
	// (heap that migrates to a calendar queue under load), "heap", or
	// "calendar". Same fingerprint exclusion as SimWorkers; results
	// are identical under every scheduler.
	SimScheduler string
}

// JobResult pairs a job with its outcome.
type JobResult struct {
	Job *Job
	// Report is the job's outcome (nil when Err is set).
	Report *Report
	Err    error
	// Elapsed is the real time the job occupied a worker; StageTimes
	// breaks it down by stage name.
	Elapsed    time.Duration
	StageTimes map[string]time.Duration
	// PlanCacheHit reports the job reused a plan computed by another
	// job (or an earlier run) instead of searching itself.
	PlanCacheHit bool
	// SimWorkers and SimScheduler echo the runner's kernel knobs so
	// benchmark harnesses can label results; they never enter the
	// Report itself.
	SimWorkers   int
	SimScheduler string
	// State holds the job's intermediates; only populated when
	// Options.KeepArtifacts is set.
	State *State
}

// Stats aggregates a runner's lifetime counters.
type Stats struct {
	// Jobs completed (successfully or not).
	Jobs int64
	// PlanComputes counts planner searches actually run;
	// PlanCacheHits and PlanCacheMisses count lookups. Hits include
	// waiting on another worker's in-flight computation — the work
	// was shared either way.
	PlanComputes    int64
	PlanCacheHits   int64
	PlanCacheMisses int64
	// PlanCacheEvictions counts settled plans dropped by the LRU
	// bound; PlanCacheEntries and PlanCacheBytes are the cache's
	// current retained size.
	PlanCacheEvictions int64
	PlanCacheEntries   int
	PlanCacheBytes     units.Bytes
	// PlanTime and ExecTime accumulate real time across jobs in the
	// planning and execution stages respectively.
	PlanTime time.Duration
	ExecTime time.Duration
}

// Runner executes jobs through a bounded worker pool over a shared
// plan cache. The zero value is not usable; call New.
type Runner struct {
	opts  Options
	cache *planCache

	mu       sync.Mutex
	jobs     int64
	planTime time.Duration
	execTime time.Duration
}

// New returns a Runner with the given options.
func New(opts Options) *Runner {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{opts: opts, cache: newPlanCache(opts.PlanCacheEntries)}
}

// Workers returns the pool size jobs run at.
func (r *Runner) Workers() int { return r.opts.Workers }

// CachedPlan returns the settled plan cached under key (a Job.PlanKey)
// without blocking: an in-flight computation reports a miss. It is the
// read side of the fleet's shared plan-cache tier — a peer peeks its
// local cache to answer a cache-tier pull.
func (r *Runner) CachedPlan(key string) (*plan.Plan, bool) {
	if key == "" {
		return nil, false
	}
	return r.cache.peek(key)
}

// SeedPlan inserts a plan computed elsewhere (a fleet peer) under key,
// reporting whether it was inserted. An existing local entry — settled
// or in flight — always wins, so seeding can never change what a
// concurrent job observes. Plans are read-only after computation, so
// sharing the pointer across jobs is safe, exactly as the cache
// already does.
func (r *Runner) SeedPlan(key string, pl *plan.Plan) bool {
	if key == "" {
		return false
	}
	return r.cache.seed(key, pl)
}

// Run executes one job through its stage pipeline. Invalid
// configuration and cancellation surface as JobResult.Err; OOM is
// reported inside the Report, matching how the paper's figures show
// failed runs.
func (r *Runner) Run(ctx context.Context, j *Job) JobResult {
	return r.run(ctx, j, r.opts.KeepArtifacts)
}

// RunKeep is Run with the job's State retained on the result
// regardless of Options.KeepArtifacts — for callers (like the serving
// layer's trace endpoint) that need one job's intermediates without
// paying for artifact retention across a whole sweep.
func (r *Runner) RunKeep(ctx context.Context, j *Job) JobResult {
	return r.run(ctx, j, true)
}

func (r *Runner) run(ctx context.Context, j *Job, keep bool) JobResult {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	planWorkers := j.Config.PlanWorkers
	if planWorkers == 0 {
		planWorkers = r.opts.PlanWorkers
	}
	st := &State{
		Job: j, cache: r.cache, planWorkers: planWorkers,
		simWorkers: r.opts.SimWorkers, simSched: r.opts.SimScheduler,
	}
	res := JobResult{
		Job: j, StageTimes: make(map[string]time.Duration),
		SimWorkers: r.opts.SimWorkers, SimScheduler: r.opts.SimScheduler,
	}
	for _, stage := range stagesFor(j) {
		if err := ctx.Err(); err != nil {
			res.Err = err
			break
		}
		s0 := time.Now()
		err := stage.Run(ctx, st)
		d := time.Since(s0)
		res.StageTimes[stage.Name] = d
		r.account(stage.Name, d)
		if err != nil {
			res.Err = err
			break
		}
	}
	res.Report = st.Report
	res.PlanCacheHit = st.PlanCacheHit
	res.Elapsed = time.Since(start)
	if keep {
		res.State = st
	}
	r.mu.Lock()
	r.jobs++
	r.mu.Unlock()
	if r.opts.OnJobDone != nil {
		r.opts.OnJobDone(res)
	}
	return res
}

// RunAll executes the jobs through the worker pool and returns their
// results in input order. Cancelling ctx stops in-flight simulations
// at their next interrupt poll; jobs not yet finished report ctx's
// error.
func (r *Runner) RunAll(ctx context.Context, jobs []*Job) []JobResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := r.opts.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = r.Run(ctx, jobs[i])
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// RunConfigs validates the configs into jobs and runs them all. A
// config that fails validation surfaces as its result's Err without
// blocking the rest of the batch.
func (r *Runner) RunConfigs(ctx context.Context, cfgs []Config) []JobResult {
	jobs := make([]*Job, len(cfgs))
	errs := make([]error, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i], errs[i] = NewJob(cfg)
	}
	// Run the valid jobs; slot validation errors into place after.
	valid := make([]*Job, 0, len(jobs))
	for _, j := range jobs {
		if j != nil {
			valid = append(valid, j)
		}
	}
	ran := r.RunAll(ctx, valid)
	results := make([]JobResult, len(cfgs))
	next := 0
	for i := range cfgs {
		if jobs[i] == nil {
			results[i] = JobResult{Err: errs[i]}
			continue
		}
		results[i] = ran[next]
		next++
	}
	return results
}

// Stats returns the runner's aggregate counters.
func (r *Runner) Stats() Stats {
	hits, misses, computes, evictions, entries, bytes := r.cache.stats()
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Jobs:               r.jobs,
		PlanComputes:       computes,
		PlanCacheHits:      hits,
		PlanCacheMisses:    misses,
		PlanCacheEvictions: evictions,
		PlanCacheEntries:   entries,
		PlanCacheBytes:     bytes,
		PlanTime:           r.planTime,
		ExecTime:           r.execTime,
	}
}

func (r *Runner) account(stage string, d time.Duration) {
	r.mu.Lock()
	switch stage {
	case "plan":
		r.planTime += d
	case "execute":
		r.execTime += d
	}
	r.mu.Unlock()
}

// Train runs one job to completion on a fresh single-worker runner —
// the engine behind the facade's mpress.Train. Each call plans from
// scratch, exactly as the pre-runner facade did.
func Train(cfg Config) (*Report, error) {
	j, err := NewJob(cfg)
	if err != nil {
		return nil, err
	}
	res := New(Options{Workers: 1}).Run(context.Background(), j)
	if res.Err != nil {
		return nil, res.Err
	}
	return res.Report, nil
}
