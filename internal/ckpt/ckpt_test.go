package ckpt

import (
	"math"
	"testing"

	"mpress/internal/hw"
	"mpress/internal/units"
)

func TestCost(t *testing.T) {
	topo := hw.DGX1() // no NVMe: parallel PCIe drains, cost = slowest stage
	perStage := []units.Bytes{8 * units.GiB, 4 * units.GiB}
	got := Cost(topo, perStage)
	want := topo.PCIeLatency + topo.PCIeBW.TransferTime(8*units.GiB)
	if got != want {
		t.Errorf("Cost = %v, want %v", got, want)
	}
	if RestoreCost(topo, perStage) != got {
		t.Error("restore must mirror checkpoint cost")
	}

	// With NVMe the cost is the slower of the pipelined PCIe drain and
	// the serialized SSD stream of the total.
	nv := hw.DGX1WithNVMe()
	gotNV := Cost(nv, perStage)
	wantNV := nv.PCIeLatency + nv.PCIeBW.TransferTime(8*units.GiB)
	if ssd := nv.NVMeLatency + nv.NVMeBW.TransferTime(12*units.GiB); ssd > wantNV {
		wantNV = ssd
	}
	if gotNV != wantNV {
		t.Errorf("NVMe Cost = %v, want %v", gotNV, wantNV)
	}
	// A slow SSD array (DGX2's measured 6 GB/s) must dominate.
	slow := hw.DGX2()
	if got, ssd := Cost(slow, perStage), slow.NVMeLatency+slow.NVMeBW.TransferTime(12*units.GiB); got != ssd {
		t.Errorf("slow-NVMe Cost = %v, want %v", got, ssd)
	}
	if Total(perStage) != 12*units.GiB {
		t.Errorf("Total = %v", Total(perStage))
	}
}

// TestYoungDalyMinimizesOverhead is the acceptance check for the
// interval policy: across a bracketing sweep of fixed intervals around
// sqrt(2·C·MTBF), the Young–Daly interval must incur the lowest
// expected overhead rate.
func TestYoungDalyMinimizesOverhead(t *testing.T) {
	const (
		cost    = 5 * units.Second
		mtbf    = 30 * 60 * units.Second
		restore = 12 * units.Second
	)
	opt := YoungDaly(cost, mtbf)
	if want := units.Duration(math.Sqrt(2 * float64(cost) * float64(mtbf))); opt != want {
		t.Fatalf("YoungDaly = %v, want %v", opt, want)
	}
	best := ExpectedOverheadRate(opt, cost, mtbf, restore)
	for _, mul := range []float64{0.25, 0.5, 0.8, 1.25, 2, 4} {
		iv := units.Duration(float64(opt) * mul)
		if rate := ExpectedOverheadRate(iv, cost, mtbf, restore); rate <= best {
			t.Errorf("interval %v (×%.2f) overhead %.6f beats Young–Daly %v at %.6f",
				iv, mul, rate, opt, best)
		}
	}
	if !math.IsInf(ExpectedOverheadRate(0, cost, mtbf, restore), 1) {
		t.Error("zero interval must have infinite overhead")
	}
}

func TestPolicyResolve(t *testing.T) {
	const cost, mtbf = 2 * units.Second, 20 * 60 * units.Second
	var p *Policy
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	fixed := &Policy{Interval: 90 * units.Second}
	if err := fixed.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := fixed.Resolve(cost, mtbf); got != 90*units.Second {
		t.Errorf("fixed Resolve = %v", got)
	}
	auto := &Policy{}
	if got, want := auto.Resolve(cost, mtbf), YoungDaly(cost, mtbf); got != want {
		t.Errorf("auto Resolve = %v, want %v", got, want)
	}
	// Sub-cost intervals clamp up to the cost.
	tiny := &Policy{Interval: units.Millisecond}
	if got := tiny.Resolve(cost, mtbf); got != cost {
		t.Errorf("tiny Resolve = %v, want %v", got, cost)
	}
	bad := &Policy{Interval: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative interval validated")
	}
}

func TestCanonical(t *testing.T) {
	var nilP *Policy
	if nilP.Canonical() != "ckpt=none" {
		t.Errorf("nil canonical = %q", nilP.Canonical())
	}
	a, b := &Policy{Interval: units.Second}, &Policy{Interval: 2 * units.Second}
	if a.Canonical() == b.Canonical() {
		t.Error("distinct policies share a canonical string")
	}
}
