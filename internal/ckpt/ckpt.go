// Package ckpt models periodic checkpointing of training state to the
// host/NVMe tiers. A checkpoint snapshots every stage's weights and
// optimizer state over the modeled PCIe links (plus the NVMe stream
// when the topology has SSDs); on an injected failure (internal/chaos)
// the runner pays a restore transfer in the opposite direction and
// replays the minibatches completed since the snapshot.
//
// The interval policy supports a fixed interval or the Young–Daly
// optimum sqrt(2·C·MTBF), the classical first-order minimizer of
// checkpoint overhead plus expected lost work.
package ckpt

import (
	"fmt"
	"math"

	"mpress/internal/hw"
	"mpress/internal/pipeline"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// Policy selects the checkpoint cadence for a resilient run.
type Policy struct {
	// Interval is the minimum simulated time between checkpoint
	// snapshots. Zero means Young–Daly: the runner computes
	// sqrt(2·C·MTBF) from the modeled checkpoint cost C and the fault
	// model's MTBF (which must then be configured).
	Interval units.Duration `json:"interval"`
}

// Validate checks the policy.
func (p *Policy) Validate() error {
	if p == nil {
		return nil
	}
	if p.Interval < 0 {
		return fmt.Errorf("ckpt: negative interval %v", p.Interval)
	}
	return nil
}

// Canonical renders the policy for job fingerprinting.
func (p *Policy) Canonical() string {
	if p == nil {
		return "ckpt=none"
	}
	return fmt.Sprintf("ckpt=interval:%d", p.Interval)
}

// StageBytes returns each stage's checkpoint payload: the persistent
// parameter and optimizer-state tensors (gradients are recomputed, not
// restored; activations are transient). Weight-stashing schedules
// (PipeDream) snapshot their stash versions too — they are resident
// state the restore must reproduce.
func StageBytes(b *pipeline.Built) []units.Bytes {
	out := make([]units.Bytes, b.NumStages())
	for s := range out {
		for _, id := range b.Persistent[s] {
			tn := b.Graph.Tensors.Get(id)
			if tn.Class == tensor.Parameter || tn.Class == tensor.OptimizerState {
				out[s] += tn.Size
			}
		}
	}
	return out
}

// Total sums a per-stage payload.
func Total(perStage []units.Bytes) units.Bytes {
	var t units.Bytes
	for _, b := range perStage {
		t += b
	}
	return t
}

// Cost returns the modeled duration of one checkpoint on topo: every
// stage drains to host over its own PCIe link in parallel, and when
// the topology has NVMe the aggregate additionally streams through the
// (shared) SSD array. This matches the event pattern internal/exec
// uses, absent contention from concurrent swap traffic.
func Cost(topo *hw.Topology, perStage []units.Bytes) units.Duration {
	var d2h units.Duration
	for _, bytes := range perStage {
		if bytes <= 0 {
			continue
		}
		if t := topo.PCIeLatency + topo.PCIeBW.TransferTime(bytes); t > d2h {
			d2h = t
		}
	}
	if topo.NVMeBW > 0 {
		if t := topo.NVMeLatency + topo.NVMeBW.TransferTime(Total(perStage)); t > d2h {
			return t
		}
	}
	return d2h
}

// RestoreCost returns the modeled duration of reloading a checkpoint
// onto the (possibly degraded) topology — the same links in the other
// direction, which the simulator models symmetrically.
func RestoreCost(topo *hw.Topology, perStage []units.Bytes) units.Duration {
	return Cost(topo, perStage)
}

// YoungDaly returns the first-order optimal checkpoint interval
// sqrt(2·C·MTBF) for checkpoint cost C.
func YoungDaly(cost, mtbf units.Duration) units.Duration {
	if cost <= 0 || mtbf <= 0 {
		return 0
	}
	return units.Duration(math.Sqrt(2 * float64(cost) * float64(mtbf)))
}

// ExpectedOverheadRate returns the expected fraction of wall time lost
// to resilience at checkpoint interval τ: C/τ to take snapshots plus
// (τ/2 + R)/MTBF expected rework and restore per failure (first-order
// model; valid for τ ≪ MTBF). YoungDaly minimizes the τ-dependent
// part exactly.
func ExpectedOverheadRate(interval, cost, mtbf, restore units.Duration) float64 {
	if interval <= 0 || mtbf <= 0 {
		return math.Inf(1)
	}
	t, c, m, r := float64(interval), float64(cost), float64(mtbf), float64(restore)
	return c/t + (t/2+r)/m
}

// Resolve turns the policy into a concrete interval for the given
// checkpoint cost and MTBF, applying Young–Daly when unset. The result
// is clamped below at the checkpoint cost itself — checkpointing more
// often than a snapshot takes is pure stall.
func (p *Policy) Resolve(cost, mtbf units.Duration) units.Duration {
	iv := p.Interval
	if iv == 0 {
		iv = YoungDaly(cost, mtbf)
	}
	if iv < cost {
		iv = cost
	}
	return iv
}
