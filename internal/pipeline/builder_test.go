package pipeline

import (
	"testing"

	"mpress/internal/graph"
	"mpress/internal/model"
	"mpress/internal/tensor"
)

func smallBuild(t *testing.T, kind ScheduleKind, micro, mini int) *Built {
	t.Helper()
	cfg := mustBert(t, "0.35B")
	part, err := PartitionModel(cfg, 4, ComputeBalanced, kind, model.FP32Adam(), 2, micro)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(BuildConfig{
		Model: cfg, Prec: model.FP32Adam(), Part: part, Kind: kind,
		MicrobatchSize: 2, Microbatches: micro, Minibatches: mini,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuildValidGraph(t *testing.T) {
	for _, kind := range []ScheduleKind{PipeDream, DAPPLE, GPipe} {
		b := smallBuild(t, kind, 4, 2)
		if err := b.Graph.Validate(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if b.TotalMicrobatches != 8 {
			t.Errorf("%v: total microbatches = %d", kind, b.TotalMicrobatches)
		}
		if b.SamplesProcessed() != 16 {
			t.Errorf("%v: samples = %d", kind, b.SamplesProcessed())
		}
		if b.UsefulFLOPs <= 0 {
			t.Errorf("%v: useful FLOPs = %v", kind, b.UsefulFLOPs)
		}
	}
}

func TestBuildOpCounts(t *testing.T) {
	b := smallBuild(t, DAPPLE, 4, 1)
	S, M := 4, 4
	var fw, bw, xfer, opt int
	for _, op := range b.Graph.Ops() {
		switch op.Kind {
		case graph.Forward:
			fw++
		case graph.Backward:
			bw++
		case graph.Transfer:
			xfer++
		case graph.OptimizerStep:
			opt++
		}
	}
	if fw != S*M || bw != S*M {
		t.Errorf("fw/bw = %d/%d, want %d", fw, bw, S*M)
	}
	// Activation transfers: (S-1)×M forward + (S-1)×M gradient.
	if xfer != 2*(S-1)*M {
		t.Errorf("transfers = %d, want %d", xfer, 2*(S-1)*M)
	}
	// One optimizer op per parameter group: per-block plus the
	// embedding group on stage 0.
	wantOpt := b.Cfg.Model.Layers + 1
	if opt != wantOpt {
		t.Errorf("optimizer steps = %d, want %d", opt, wantOpt)
	}
	for s := 0; s < S; s++ {
		groups := b.Cfg.Part.Stages[s].NumBlocks
		if s == 0 {
			groups++
		}
		if got := len(b.OptOps[s][0]); got != groups {
			t.Errorf("stage %d has %d optimizer groups, want %d", s, got, groups)
		}
	}
}

func TestBuildPersistentTensors(t *testing.T) {
	b := smallBuild(t, PipeDream, 4, 1)
	// Every stage has per-block param/grad/opt; stage 0 adds the
	// embedding triple; stages 0..2 add a stash tensor (stage 3 has
	// WeightVersions==1).
	for s := 0; s < 4; s++ {
		blocks := b.Cfg.Part.Stages[s].NumBlocks
		want := blocks * 3
		if s == 0 {
			want += 3
		}
		if PipeDream.WeightVersions(s, 4) > 1 {
			want++
		}
		if got := len(b.Persistent[s]); got != want {
			t.Errorf("stage %d persistent tensors = %d, want %d", s, got, want)
		}
		for _, id := range b.Persistent[s] {
			if !b.PersistentSet[id] {
				t.Fatalf("tensor %d missing from PersistentSet", id)
			}
			if b.Graph.Tensors.Get(id).Stage != s {
				t.Fatalf("persistent tensor %d on wrong stage", id)
			}
		}
	}
}

func TestBuildDAPPLEHasNoStash(t *testing.T) {
	b := smallBuild(t, DAPPLE, 4, 1)
	for _, ts := range b.Persistent {
		for _, id := range ts {
			if name := b.Graph.Tensors.Get(id).Name; len(name) >= 5 && name[:5] == "stash" {
				t.Errorf("DAPPLE build contains stash tensor %s", name)
			}
		}
	}
}

func TestBuildActsAndRecomputeFLOPs(t *testing.T) {
	b := smallBuild(t, DAPPLE, 2, 1)
	for m := 0; m < 2; m++ {
		for s := 0; s < 4; s++ {
			k := SlotKey{s, m}
			acts := b.Acts[k]
			st := b.Cfg.Part.Stages[s]
			want := st.NumBlocks
			if st.HasEmbedding {
				want++
			}
			if st.HasHead {
				want++
			}
			if len(acts) != want {
				t.Errorf("slot %v: %d activations, want %d", k, len(acts), want)
			}
			blockActs := 0
			for _, id := range acts {
				tn := b.Graph.Tensors.Get(id)
				if tn.Class != tensor.Activation {
					t.Errorf("%s: class %v", tn.Name, tn.Class)
				}
				if _, ok := b.RecomputeFLOPs[id]; ok {
					blockActs++
				}
			}
			if blockActs != st.NumBlocks {
				t.Errorf("slot %v: %d recomputable activations, want %d", k, blockActs, st.NumBlocks)
			}
			if s > 0 {
				if _, ok := b.BoundIn[k]; !ok {
					t.Errorf("slot %v missing BoundIn", k)
				}
			}
		}
	}
}

// TestBuildScheduleOrderIsRespected verifies the chained deps realize
// 1F1B: in the topological order restricted to one device, B(m)
// precedes F(m + warmup).
func TestBuildScheduleOrderIsRespected(t *testing.T) {
	b := smallBuild(t, DAPPLE, 6, 1)
	order, err := b.Graph.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[graph.OpID]int)
	for i, id := range order {
		pos[id] = i
	}
	// Stage 0 of 4, warmup 4: B0 must precede F4.
	if pos[b.BwOps[SlotKey{0, 0}]] > pos[b.FwOps[SlotKey{0, 4}]] {
		t.Error("1F1B violated: F4 scheduled before B0 on stage 0")
	}
	// And F3 (warmup) must precede B0.
	if pos[b.FwOps[SlotKey{0, 3}]] > pos[b.BwOps[SlotKey{0, 0}]] {
		t.Error("warmup violated: B0 before F3 on stage 0")
	}
}

func TestBuildRejectsBadShapes(t *testing.T) {
	cfg := mustBert(t, "0.35B")
	part := mustPartition(t, cfg, 8)
	for _, bad := range []BuildConfig{
		{Model: cfg, Prec: model.FP32Adam(), Part: part, MicrobatchSize: 0, Microbatches: 1, Minibatches: 1},
		{Model: cfg, Prec: model.FP32Adam(), Part: part, MicrobatchSize: 1, Microbatches: 0, Minibatches: 1},
		{Model: cfg, Prec: model.FP32Adam(), Part: part, MicrobatchSize: 1, Microbatches: 1, Minibatches: 0},
	} {
		if _, err := Build(bad); err == nil {
			t.Errorf("bad shape accepted: %+v", bad)
		}
	}
	// Partition for a different model must be rejected.
	other := mustGPT(t, "5.3B")
	if _, err := Build(BuildConfig{
		Model: other, Prec: model.MixedAdam(), Part: part, Kind: DAPPLE,
		MicrobatchSize: 1, Microbatches: 1, Minibatches: 1,
	}); err == nil {
		t.Error("mismatched partition accepted")
	}
}

func TestBuildBoundaryTransfersWired(t *testing.T) {
	b := smallBuild(t, DAPPLE, 2, 1)
	// Every bndout tensor must be consumed by exactly one transfer
	// whose output lives on the next stage.
	order, _ := b.Graph.TopoOrder()
	l := b.Graph.Analyze(order)
	for _, op := range b.Graph.Ops() {
		if op.Kind != graph.Transfer {
			continue
		}
		in := b.Graph.Tensors.Get(op.Inputs[0])
		out := b.Graph.Tensors.Get(op.Outputs[0])
		if in.Stage == out.Stage {
			t.Errorf("%s: transfer within stage %d", op.Name, in.Stage)
		}
		if d := out.Stage - in.Stage; d != 1 && d != -1 {
			t.Errorf("%s: transfer jumps stages %d -> %d", op.Name, in.Stage, out.Stage)
		}
		// The moved tensor's last use is the transfer itself on the
		// source side.
		if l.LastUse(op.Inputs[0]) == -1 {
			t.Errorf("%s: input never used?", op.Name)
		}
	}
}
