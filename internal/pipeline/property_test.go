package pipeline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpress/internal/model"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// randomModel builds a valid transformer config from fuzz inputs.
func randomModel(layers, hidden, seq uint8) model.Config {
	l := 2 + int(layers)%30
	h := 64 * (1 + int(hidden)%32)
	s := 64 * (1 + int(seq)%16)
	return model.Config{
		Name: "Fuzz", Arch: model.GPT,
		Layers: l, Hidden: h, Heads: h / 64, SeqLen: s, Vocab: 1000 + int(hidden)*7,
		DType: tensor.FP16,
	}
}

// TestPartitionCoversAllBlocksProperty: any partition of any valid
// model covers every block exactly once in order.
func TestPartitionCoversAllBlocksProperty(t *testing.T) {
	f := func(layers, hidden, seq, stagesIn uint8) bool {
		cfg := randomModel(layers, hidden, seq)
		stages := 1 + int(stagesIn)%8
		if stages > cfg.Layers {
			stages = cfg.Layers
		}
		for _, strat := range []Strategy{ComputeBalanced, MemoryBalanced} {
			p, err := PartitionModel(cfg, stages, strat, DAPPLE, model.MixedAdam(), 2, 8)
			if err != nil {
				return false
			}
			if p.Validate(cfg) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDemandMonotonicInMicrobatch: larger microbatches never lower any
// stage's demand.
func TestDemandMonotonicInMicrobatch(t *testing.T) {
	cfg := randomModel(12, 8, 4)
	prec := model.MixedAdam()
	p, err := PartitionModel(cfg, 4, ComputeBalanced, DAPPLE, prec, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	prev := Demand(cfg, prec, p, DAPPLE, 1, 8)
	for mb := 2; mb <= 16; mb *= 2 {
		cur := Demand(cfg, prec, p, DAPPLE, mb, 8)
		for s := range cur {
			if cur[s] < prev[s] {
				t.Fatalf("demand decreased at mb=%d stage %d: %v -> %v", mb, s, prev[s], cur[s])
			}
		}
		prev = cur
	}
}

// TestDemandMonotonicInModelSize: a strictly larger model demands at
// least as much on its peak stage.
func TestDemandMonotonicInModelSize(t *testing.T) {
	prev := units.Bytes(0)
	for _, size := range model.BertSizes() {
		cfg, err := model.BertVariant(size)
		if err != nil {
			t.Fatal(err)
		}
		p, err := PartitionModel(cfg, 8, ComputeBalanced, PipeDream, model.FP32Adam(), 12, 8)
		if err != nil {
			t.Fatal(err)
		}
		var max units.Bytes
		for _, d := range Demand(cfg, model.FP32Adam(), p, PipeDream, 12, 8) {
			if d > max {
				max = d
			}
		}
		if max < prev {
			t.Fatalf("%s peak %v below the previous size's %v", size, max, prev)
		}
		prev = max
	}
}

// TestGPipeDemandDominates: GPipe retains every microbatch, so its
// stage demand must be >= DAPPLE's everywhere.
func TestGPipeDemandDominates(t *testing.T) {
	cfg := randomModel(16, 16, 4)
	prec := model.MixedAdam()
	p, err := PartitionModel(cfg, 4, ComputeBalanced, DAPPLE, prec, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	da := Demand(cfg, prec, p, DAPPLE, 2, 12)
	gp := Demand(cfg, prec, p, GPipe, 2, 12)
	for s := range da {
		if gp[s] < da[s] {
			t.Fatalf("stage %d: GPipe %v < DAPPLE %v", s, gp[s], da[s])
		}
	}
}

// TestPipeDreamDemandDominatesDAPPLE: weight stashing only adds memory.
func TestPipeDreamDemandDominatesDAPPLE(t *testing.T) {
	cfg := randomModel(16, 16, 4)
	prec := model.MixedAdam()
	p, err := PartitionModel(cfg, 4, ComputeBalanced, DAPPLE, prec, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	da := Demand(cfg, prec, p, DAPPLE, 2, 8)
	pd := Demand(cfg, prec, p, PipeDream, 2, 8)
	for s := range da {
		if pd[s] < da[s] {
			t.Fatalf("stage %d: PipeDream %v < DAPPLE %v", s, pd[s], da[s])
		}
	}
}

// TestBuildDeterministic: identical configs produce identical graphs
// (the planner's positional-ID contract).
func TestBuildDeterministic(t *testing.T) {
	cfg := randomModel(10, 10, 3)
	prec := model.MixedAdam()
	p, err := PartitionModel(cfg, 4, ComputeBalanced, PipeDream, prec, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	bc := BuildConfig{Model: cfg, Prec: prec, Part: p, Kind: PipeDream,
		MicrobatchSize: 2, Microbatches: 4, Minibatches: 2}
	a, err := Build(bc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(bc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.Len() != b.Graph.Len() || a.Graph.Tensors.Len() != b.Graph.Tensors.Len() {
		t.Fatal("graph shapes differ across identical builds")
	}
	for i := 0; i < a.Graph.Len(); i++ {
		oa, ob := a.Graph.Ops()[i], b.Graph.Ops()[i]
		if oa.Name != ob.Name || oa.Kind != ob.Kind || oa.Stage != ob.Stage {
			t.Fatalf("op %d differs: %+v vs %+v", i, oa, ob)
		}
	}
	for i := 0; i < a.Graph.Tensors.Len(); i++ {
		ta := a.Graph.Tensors.Get(tensor.ID(i))
		tb := b.Graph.Tensors.Get(tensor.ID(i))
		if ta.Name != tb.Name || ta.Size != tb.Size || ta.Stage != tb.Stage {
			t.Fatalf("tensor %d differs: %+v vs %+v", i, ta, tb)
		}
	}
}

// TestStageOrderRandomShapes: for random pipeline shapes, every stage
// order is a complete, duplicate-free schedule.
func TestStageOrderRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		S := 1 + rng.Intn(8)
		M := 1 + rng.Intn(12)
		Q := 1 + rng.Intn(3)
		kind := []ScheduleKind{PipeDream, DAPPLE, GPipe}[rng.Intn(3)]
		for s := 0; s < S; s++ {
			slots := kind.StageOrder(s, S, M, Q)
			f, b, u := map[int]bool{}, map[int]bool{}, 0
			for _, sl := range slots {
				switch sl.Pass {
				case FwdPass:
					if f[sl.Microbatch] {
						t.Fatalf("%v S=%d M=%d Q=%d stage %d: dup F%d", kind, S, M, Q, s, sl.Microbatch)
					}
					f[sl.Microbatch] = true
				case BwdPass:
					if !f[sl.Microbatch] || b[sl.Microbatch] {
						t.Fatalf("%v S=%d M=%d Q=%d stage %d: bad B%d", kind, S, M, Q, s, sl.Microbatch)
					}
					b[sl.Microbatch] = true
				case OptPass:
					u++
				}
			}
			if len(f) != M*Q || len(b) != M*Q || u != Q {
				t.Fatalf("%v S=%d M=%d Q=%d stage %d: F=%d B=%d U=%d",
					kind, S, M, Q, s, len(f), len(b), u)
			}
		}
	}
}

// TestProfileConservation: per-stage params sum to the model total.
func TestProfileConservation(t *testing.T) {
	f := func(layers, hidden, seq uint8) bool {
		cfg := randomModel(layers, hidden, seq)
		stages := 4
		if stages > cfg.Layers {
			stages = cfg.Layers
		}
		p, err := PartitionModel(cfg, stages, ComputeBalanced, DAPPLE, model.MixedAdam(), 2, 8)
		if err != nil {
			return false
		}
		var params int64
		for _, sp := range Profile(cfg, p, 2) {
			params += sp.Params
		}
		return params == cfg.TotalParams()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
