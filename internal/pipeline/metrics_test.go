package pipeline

import (
	"testing"

	"mpress/internal/model"
)

// TestUsefulFLOPsMatchesModelFormula: the builder's op-level FLOPs sum
// to the model's closed-form iteration cost.
func TestUsefulFLOPsMatchesModelFormula(t *testing.T) {
	cfg := mustGPT(t, "5.3B")
	prec := model.MixedAdam()
	part, err := PartitionModel(cfg, 8, ComputeBalanced, DAPPLE, prec, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(BuildConfig{
		Model: cfg, Prec: prec, Part: part, Kind: DAPPLE,
		MicrobatchSize: 2, Microbatches: 8, Minibatches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.IterationFLOPs(2, 8*2)
	got := b.UsefulFLOPs
	ratio := float64(got) / float64(want)
	if ratio < 0.999 || ratio > 1.001 {
		t.Errorf("builder FLOPs %v vs formula %v (ratio %.4f)", got, want, ratio)
	}
	if b.SamplesProcessed() != 2*8*2 {
		t.Errorf("samples = %d, want 32", b.SamplesProcessed())
	}
}

// TestDemandSummaryMatchesPerStage: Summarize is consistent with its
// inputs for a real job.
func TestDemandSummaryMatchesPerStage(t *testing.T) {
	cfg := mustBert(t, "1.67B")
	prec := model.FP32Adam()
	part, err := PartitionModel(cfg, 8, ComputeBalanced, PipeDream, prec, 12, 8)
	if err != nil {
		t.Fatal(err)
	}
	d := Demand(cfg, prec, part, PipeDream, 12, 8)
	s := Summarize(d)
	var total, max, min = s.Total - s.Total, d[0], d[0]
	for _, v := range d {
		total += v - RuntimeReserve
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	if s.Total != total || s.Max != max || s.Min != min {
		t.Errorf("summary mismatch: %+v vs %v/%v/%v", s, total, max, min)
	}
}
