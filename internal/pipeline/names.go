package pipeline

import (
	"fmt"
	"strings"
)

// This file is the CLI/wire name registry for the pipeline enums, the
// single source every command derives its help text and unknown-name
// errors from (mirroring runner's system registry). The names double
// as the canonical tokens of search.Key, so adding a schedule or
// strategy here automatically extends the auto-search key alphabet.

// scheduleNames lists the execution schedules in declaration order.
var scheduleNames = []struct {
	name string
	kind ScheduleKind
}{
	{"pipedream", PipeDream},
	{"dapple", DAPPLE},
	{"gpipe", GPipe},
}

// ScheduleNames lists every name LookupSchedule accepts, in
// declaration order.
func ScheduleNames() []string {
	out := make([]string, len(scheduleNames))
	for i, e := range scheduleNames {
		out[i] = e.name
	}
	return out
}

// LookupSchedule resolves a CLI name ("pipedream", "dapple", "gpipe"),
// case-insensitively. Unknown names error with the full valid list.
func LookupSchedule(name string) (ScheduleKind, error) {
	lower := strings.ToLower(strings.TrimSpace(name))
	for _, e := range scheduleNames {
		if lower == e.name {
			return e.kind, nil
		}
	}
	return 0, fmt.Errorf("pipeline: unknown schedule %q (valid names: %s)",
		name, strings.Join(ScheduleNames(), ", "))
}

// ScheduleName returns the CLI name of a schedule (the inverse of
// LookupSchedule), or its String form for unknown values.
func ScheduleName(k ScheduleKind) string {
	for _, e := range scheduleNames {
		if e.kind == k {
			return e.name
		}
	}
	return k.String()
}

// strategyNames lists the partition strategies in declaration order.
var strategyNames = []struct {
	name  string
	strat Strategy
}{
	{"compute-balanced", ComputeBalanced},
	{"memory-balanced", MemoryBalanced},
}

// StrategyNames lists every name LookupStrategy accepts, in
// declaration order.
func StrategyNames() []string {
	out := make([]string, len(strategyNames))
	for i, e := range strategyNames {
		out[i] = e.name
	}
	return out
}

// LookupStrategy resolves a CLI name ("compute-balanced",
// "memory-balanced"), case-insensitively. Unknown names error with the
// full valid list.
func LookupStrategy(name string) (Strategy, error) {
	lower := strings.ToLower(strings.TrimSpace(name))
	for _, e := range strategyNames {
		if lower == e.name {
			return e.strat, nil
		}
	}
	return 0, fmt.Errorf("pipeline: unknown strategy %q (valid names: %s)",
		name, strings.Join(StrategyNames(), ", "))
}

// StrategyName returns the CLI name of a strategy (the inverse of
// LookupStrategy), or its String form for unknown values.
func StrategyName(s Strategy) string {
	for _, e := range strategyNames {
		if e.strat == s {
			return e.name
		}
	}
	return s.String()
}
