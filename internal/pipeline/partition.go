// Package pipeline implements inter-operator (pipeline) parallel
// training: stage partitioning strategies, the PipeDream / DAPPLE /
// GPipe execution schedules, per-stage memory demand modelling, and
// the builder that lowers one training iteration to a dataflow graph
// for the executor.
package pipeline

import (
	"fmt"

	"mpress/internal/model"
	"mpress/internal/units"
)

// Stage describes one pipeline stage: a consecutive run of model
// layers mapped to a single GPU (paper Sec. II-A).
type Stage struct {
	Index int
	// FirstBlock and NumBlocks select the consecutive transformer
	// blocks assigned to the stage.
	FirstBlock int
	NumBlocks  int
	// HasEmbedding/HasHead mark the extra layers at the ends.
	HasEmbedding bool
	HasHead      bool
}

// Blocks returns the block indices in the stage.
func (s Stage) Blocks() []int {
	out := make([]int, s.NumBlocks)
	for i := range out {
		out[i] = s.FirstBlock + i
	}
	return out
}

// Partition is an assignment of all model layers to consecutive stages.
type Partition struct {
	Stages []Stage
}

// NumStages returns the stage count.
func (p Partition) NumStages() int { return len(p.Stages) }

// Validate checks that the partition covers every block exactly once
// and places embedding and head at the ends.
func (p Partition) Validate(cfg model.Config) error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("pipeline: empty partition")
	}
	next := 0
	for i, s := range p.Stages {
		if s.Index != i {
			return fmt.Errorf("pipeline: stage %d has index %d", i, s.Index)
		}
		if s.FirstBlock != next {
			return fmt.Errorf("pipeline: stage %d starts at block %d, want %d", i, s.FirstBlock, next)
		}
		if s.NumBlocks < 0 {
			return fmt.Errorf("pipeline: stage %d has negative blocks", i)
		}
		if s.HasEmbedding != (i == 0) {
			return fmt.Errorf("pipeline: embedding must be exactly on stage 0")
		}
		if s.HasHead != (i == len(p.Stages)-1) {
			return fmt.Errorf("pipeline: head must be exactly on the last stage")
		}
		next += s.NumBlocks
	}
	if next != cfg.Layers {
		return fmt.Errorf("pipeline: partition covers %d blocks, model has %d", next, cfg.Layers)
	}
	return nil
}

// Strategy selects a partitioning objective (paper Sec. II-D compares
// computation-balanced against memory-balanced partitioning).
type Strategy int

const (
	// ComputeBalanced equalizes per-stage forward compute time, the
	// strategy PipeDream and DAPPLE recommend.
	ComputeBalanced Strategy = iota
	// MemoryBalanced equalizes per-stage memory demand at the price
	// of imbalanced computation (the paper measures a 34% throughput
	// loss from it).
	MemoryBalanced
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case ComputeBalanced:
		return "compute-balanced"
	case MemoryBalanced:
		return "memory-balanced"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// PartitionModel splits cfg into numStages stages under the given
// strategy. The memory-balanced variant needs the schedule and batch
// shape (in-flight counts depend on them); the compute-balanced one
// ignores them.
func PartitionModel(cfg model.Config, numStages int, strat Strategy, kind ScheduleKind, prec model.Precision, microbatch, microbatches int) (Partition, error) {
	if err := cfg.Validate(); err != nil {
		return Partition{}, err
	}
	if numStages <= 0 || numStages > cfg.Layers {
		return Partition{}, fmt.Errorf("pipeline: %d stages for %d blocks", numStages, cfg.Layers)
	}
	switch strat {
	case ComputeBalanced:
		return computeBalanced(cfg, numStages), nil
	case MemoryBalanced:
		return memoryBalanced(cfg, numStages, kind, prec, microbatch, microbatches), nil
	default:
		return Partition{}, fmt.Errorf("pipeline: unknown strategy %v", strat)
	}
}

// newPartition builds the Stage slice from per-stage block counts.
func newPartition(counts []int) Partition {
	p := Partition{Stages: make([]Stage, len(counts))}
	next := 0
	for i, n := range counts {
		p.Stages[i] = Stage{
			Index:        i,
			FirstBlock:   next,
			NumBlocks:    n,
			HasEmbedding: i == 0,
			HasHead:      i == len(counts)-1,
		}
		next += n
	}
	return p
}

// computeBalanced minimizes the maximum per-stage forward time. All
// transformer blocks cost the same, the embedding is (nearly) free,
// and the head adds its logit matmul to the last stage — so the
// optimal contiguous split is found exactly by choosing how many
// blocks the head's stage keeps and spreading the rest evenly.
func computeBalanced(cfg model.Config, numStages int) Partition {
	l := cfg.Layers
	if numStages == 1 {
		return newPartition([]int{l})
	}
	block := float64(cfg.BlockForwardFLOPs(1))
	head := float64(cfg.HeadForwardFLOPs(1)) / block // head weight in block units

	bestK, bestCost := 0, 1e300
	for k := 0; k <= l-(numStages-1); k++ { // last stage gets k blocks
		rest := l - k
		maxOther := float64((rest + numStages - 2) / (numStages - 1))
		cost := float64(k) + head
		if maxOther > cost {
			cost = maxOther
		}
		// Prefer the larger k on ties so the earlier stages (which
		// already suffer higher memory pressure) don't grow.
		if cost < bestCost || (cost == bestCost && k > bestK) {
			bestK, bestCost = k, cost
		}
	}
	counts := make([]int, numStages)
	counts[numStages-1] = bestK
	rest := l - bestK
	for s := 0; s < numStages-1; s++ {
		share := rest / (numStages - 1 - s)
		if rest%(numStages-1-s) != 0 {
			share++ // front-load the remainder deterministically
		}
		counts[s] = share
		rest -= share
	}
	return newPartition(counts)
}

// memoryBalanced starts from the compute-balanced split and greedily
// moves boundary blocks off the stage with the highest memory demand
// until no single move improves the maximum (local search).
func memoryBalanced(cfg model.Config, numStages int, kind ScheduleKind, prec model.Precision, microbatch, microbatches int) Partition {
	part := computeBalanced(cfg, numStages)
	counts := make([]int, numStages)
	for i, s := range part.Stages {
		counts[i] = s.NumBlocks
	}
	demand := func(counts []int) (units.Bytes, []units.Bytes) {
		p := newPartition(counts)
		d := Demand(cfg, prec, p, kind, microbatch, microbatches)
		var max units.Bytes
		for _, v := range d {
			if v > max {
				max = v
			}
		}
		return max, d
	}
	cur, _ := demand(counts)
	for iter := 0; iter < 4*cfg.Layers; iter++ {
		improved := false
		// Try moving one block across each stage boundary, both ways.
		for b := 0; b < numStages-1; b++ {
			for _, dir := range []int{+1, -1} {
				trial := append([]int(nil), counts...)
				if dir > 0 { // move last block of b to b+1
					if trial[b] == 0 {
						continue
					}
					trial[b]--
					trial[b+1]++
				} else { // move first block of b+1 to b
					if trial[b+1] == 0 {
						continue
					}
					trial[b+1]--
					trial[b]++
				}
				if m, _ := demand(trial); m < cur {
					counts, cur = trial, m
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return newPartition(counts)
}
