package pipeline

import (
	"testing"

	"mpress/internal/model"
	"mpress/internal/units"
)

func mustBert(t *testing.T, size string) model.Config {
	t.Helper()
	cfg, err := model.BertVariant(size)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func mustGPT(t *testing.T, size string) model.Config {
	t.Helper()
	cfg, err := model.GPTVariant(size)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func mustPartition(t *testing.T, cfg model.Config, stages int) Partition {
	t.Helper()
	p, err := PartitionModel(cfg, stages, ComputeBalanced, DAPPLE, model.MixedAdam(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestComputeBalancedCoversModel(t *testing.T) {
	for _, size := range model.BertSizes() {
		cfg := mustBert(t, size)
		p := mustPartition(t, cfg, 8)
		if err := p.Validate(cfg); err != nil {
			t.Errorf("%s: %v", size, err)
		}
		// The non-head stages must be even to within one block; the
		// last stage may be smaller because the head displaces
		// blocks (worth ~2.3 blocks of compute for small Bert).
		min, max := cfg.Layers, 0
		for _, s := range p.Stages[:len(p.Stages)-1] {
			if s.NumBlocks < min {
				min = s.NumBlocks
			}
			if s.NumBlocks > max {
				max = s.NumBlocks
			}
		}
		if max-min > 1 {
			t.Errorf("%s: non-head block counts range %d..%d, want even", size, min, max)
		}
		if last := p.Stages[len(p.Stages)-1].NumBlocks; last > max {
			t.Errorf("%s: head stage has %d blocks, more than others' %d", size, last, max)
		}
	}
}

func TestComputeBalancedHeadDisplacesBlocks(t *testing.T) {
	// GPT's output head costs about one block of compute, so the last
	// stage should get fewer blocks than the average.
	cfg := mustGPT(t, "10.3B") // 50 blocks over 8 stages
	p := mustPartition(t, cfg, 8)
	last := p.Stages[7].NumBlocks
	avg := cfg.Layers / 8
	if last > avg {
		t.Errorf("last stage has %d blocks, want < average %d (head displaces compute)", last, avg)
	}
}

func TestPartitionValidateRejects(t *testing.T) {
	cfg := mustBert(t, "0.35B")
	good := mustPartition(t, cfg, 8)

	bad := good
	bad.Stages = nil
	if bad.Validate(cfg) == nil {
		t.Error("empty partition accepted")
	}

	bad = mustPartition(t, cfg, 8)
	bad.Stages[3].NumBlocks++
	if bad.Validate(cfg) == nil {
		t.Error("overlapping partition accepted")
	}

	bad = mustPartition(t, cfg, 8)
	bad.Stages[2].HasEmbedding = true
	if bad.Validate(cfg) == nil {
		t.Error("misplaced embedding accepted")
	}

	if _, err := PartitionModel(cfg, 0, ComputeBalanced, DAPPLE, model.MixedAdam(), 2, 8); err == nil {
		t.Error("zero stages accepted")
	}
	if _, err := PartitionModel(cfg, 999, ComputeBalanced, DAPPLE, model.MixedAdam(), 2, 8); err == nil {
		t.Error("more stages than layers accepted")
	}
}

func TestInFlightCounts(t *testing.T) {
	// Paper Fig. 1/Sec. II-C: under 1F1B, stage s of S holds S-s
	// activation copies; GPipe holds all M.
	for s := 0; s < 8; s++ {
		if got := PipeDream.InFlight(s, 8, 16); got != 8-s {
			t.Errorf("PipeDream stage %d in-flight = %d, want %d", s, got, 8-s)
		}
		if got := DAPPLE.InFlight(s, 8, 4); got > 4 {
			t.Errorf("DAPPLE in-flight exceeds microbatch count: %d", got)
		}
		if got := GPipe.InFlight(s, 8, 16); got != 16 {
			t.Errorf("GPipe in-flight = %d, want 16", got)
		}
	}
}

func TestWeightVersions(t *testing.T) {
	if PipeDream.WeightVersions(0, 8) != 8 || PipeDream.WeightVersions(7, 8) != 1 {
		t.Error("PipeDream stash versions wrong")
	}
	if DAPPLE.WeightVersions(0, 8) != 1 || GPipe.WeightVersions(0, 8) != 1 {
		t.Error("sync schedules must not stash")
	}
}

func TestStageOrder1F1B(t *testing.T) {
	// DAPPLE stage 0 of 4 with 6 microbatches: F0 F1 F2 F3 B0 F4 B1
	// F5 B2 B3 B4 B5 U0.
	slots := DAPPLE.StageOrder(0, 4, 6, 1)
	want := []Slot{
		{FwdPass, 0}, {FwdPass, 1}, {FwdPass, 2}, {FwdPass, 3},
		{BwdPass, 0}, {FwdPass, 4}, {BwdPass, 1}, {FwdPass, 5},
		{BwdPass, 2}, {BwdPass, 3}, {BwdPass, 4}, {BwdPass, 5},
		{OptPass, 0},
	}
	if len(slots) != len(want) {
		t.Fatalf("slots = %v", slots)
	}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("slot[%d] = %v, want %v (full: %v)", i, slots[i], want[i], slots)
		}
	}
}

func TestStageOrderLastStageAlternates(t *testing.T) {
	// The last stage starts its backward immediately after each
	// forward (paper Fig. 1: worker 3).
	slots := DAPPLE.StageOrder(3, 4, 4, 1)
	want := []Slot{
		{FwdPass, 0}, {BwdPass, 0}, {FwdPass, 1}, {BwdPass, 1},
		{FwdPass, 2}, {BwdPass, 2}, {FwdPass, 3}, {BwdPass, 3},
		{OptPass, 0},
	}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("slots = %v, want %v", slots, want)
		}
	}
}

func TestStageOrderPipeDreamContinuous(t *testing.T) {
	// PipeDream does not flush: the second minibatch's forwards
	// interleave with the first's backwards (Fig. 1a). With 2
	// minibatches × 3 microbatches on stage 0 of 3: warmup F0 F1 F2,
	// then B0 F3 B1 F4 B2 U0 F5 B3 B4 B5 U1.
	slots := PipeDream.StageOrder(0, 3, 3, 2)
	want := []Slot{
		{FwdPass, 0}, {FwdPass, 1}, {FwdPass, 2},
		{BwdPass, 0}, {FwdPass, 3}, {BwdPass, 1}, {FwdPass, 4},
		{BwdPass, 2}, {OptPass, 0}, {FwdPass, 5},
		{BwdPass, 3}, {BwdPass, 4}, {BwdPass, 5}, {OptPass, 1},
	}
	if len(slots) != len(want) {
		t.Fatalf("got %d slots %v, want %d", len(slots), slots, len(want))
	}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("slot[%d] = %v, want %v (full: %v)", i, slots[i], want[i], slots)
		}
	}
}

func TestStageOrderCoversEverySlotOnce(t *testing.T) {
	for _, kind := range []ScheduleKind{PipeDream, DAPPLE, GPipe} {
		for s := 0; s < 4; s++ {
			slots := kind.StageOrder(s, 4, 5, 3)
			seenF := map[int]bool{}
			seenB := map[int]bool{}
			opt := 0
			for _, sl := range slots {
				switch sl.Pass {
				case FwdPass:
					if seenF[sl.Microbatch] {
						t.Fatalf("%v: duplicate F%d", kind, sl.Microbatch)
					}
					seenF[sl.Microbatch] = true
				case BwdPass:
					if !seenF[sl.Microbatch] {
						t.Fatalf("%v: B%d before F%d", kind, sl.Microbatch, sl.Microbatch)
					}
					if seenB[sl.Microbatch] {
						t.Fatalf("%v: duplicate B%d", kind, sl.Microbatch)
					}
					seenB[sl.Microbatch] = true
				case OptPass:
					opt++
				}
			}
			if len(seenF) != 15 || len(seenB) != 15 || opt != 3 {
				t.Errorf("%v stage %d: F=%d B=%d U=%d, want 15/15/3",
					kind, s, len(seenF), len(seenB), opt)
			}
		}
	}
}

// TestDemandCrossovers verifies the OOM boundaries the paper reports
// (Fig. 7, Fig. 8, Table II) emerge from the demand model with the
// actual GPU capacities.
func TestDemandCrossovers(t *testing.T) {
	v100 := 32 * units.GiB
	maxDemand := func(cfg model.Config, kind ScheduleKind, prec model.Precision, mb, M int) units.Bytes {
		p, err := PartitionModel(cfg, 8, ComputeBalanced, kind, prec, mb, M)
		if err != nil {
			t.Fatal(err)
		}
		d := Demand(cfg, prec, p, kind, mb, M)
		var max units.Bytes
		for _, x := range d {
			if x > max {
				max = x
			}
		}
		return max
	}

	// PipeDream + Bert (fp32), microbatch 12: 0.35B trains, 0.64B OOMs.
	if got := maxDemand(mustBert(t, "0.35B"), PipeDream, model.FP32Adam(), 12, 8); got > v100 {
		t.Errorf("Bert-0.35B mb=12 max demand %v must fit in 32GiB", got)
	}
	if got := maxDemand(mustBert(t, "0.64B"), PipeDream, model.FP32Adam(), 12, 8); got <= v100 {
		t.Errorf("Bert-0.64B mb=12 max demand %v must exceed 32GiB", got)
	}
	// Microbatch 2: 1.67B trains (paper: up to 2B).
	if got := maxDemand(mustBert(t, "1.67B"), PipeDream, model.FP32Adam(), 2, 8); got > v100 {
		t.Errorf("Bert-1.67B mb=2 max demand %v must fit in 32GiB", got)
	}
	if got := maxDemand(mustBert(t, "1.67B"), PipeDream, model.FP32Adam(), 12, 8); got <= v100 {
		t.Errorf("Bert-1.67B mb=12 max demand %v must exceed 32GiB", got)
	}

	// DAPPLE + GPT (fp16), microbatch 2: 5.3B trains, 10.3B OOMs.
	if got := maxDemand(mustGPT(t, "5.3B"), DAPPLE, model.MixedAdam(), 2, 8); got > v100 {
		t.Errorf("GPT-5.3B mb=2 max demand %v must fit in 32GiB", got)
	}
	if got := maxDemand(mustGPT(t, "10.3B"), DAPPLE, model.MixedAdam(), 2, 8); got <= v100 {
		t.Errorf("GPT-10.3B mb=2 max demand %v must exceed 32GiB", got)
	}
}

// TestDemandImbalance reproduces Fig. 2's shape: monotonically
// decreasing demand with large most/least ratio.
func TestDemandImbalance(t *testing.T) {
	cfg := mustBert(t, "1.67B")
	p, err := PartitionModel(cfg, 8, ComputeBalanced, PipeDream, model.FP32Adam(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	d := Demand(cfg, model.FP32Adam(), p, PipeDream, 2, 8)
	for i := 1; i < len(d); i++ {
		if d[i] > d[i-1] {
			t.Errorf("demand must not increase with stage index: stage %d %v > stage %d %v",
				i, d[i], i-1, d[i-1])
		}
	}
	// Remove the fixed reserve when computing the model-data ratio.
	ratio := float64(d[0]-RuntimeReserve) / float64(d[7]-RuntimeReserve)
	if ratio < 3 {
		t.Errorf("imbalance ratio = %.1f, want > 3 (paper reports up to 7.9×)", ratio)
	}
}

func TestMemoryBalancedReducesMax(t *testing.T) {
	cfg := mustBert(t, "1.67B")
	prec := model.FP32Adam()
	cb, _ := PartitionModel(cfg, 8, ComputeBalanced, PipeDream, prec, 2, 8)
	mb, err := PartitionModel(cfg, 8, MemoryBalanced, PipeDream, prec, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := mb.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	maxOf := func(p Partition) units.Bytes {
		var max units.Bytes
		for _, d := range Demand(cfg, prec, p, PipeDream, 2, 8) {
			if d > max {
				max = d
			}
		}
		return max
	}
	if maxOf(mb) >= maxOf(cb) {
		t.Errorf("memory-balanced max %v must beat compute-balanced %v", maxOf(mb), maxOf(cb))
	}
	// And it must have moved blocks away from the compute-balanced
	// split (the throughput cost is measured end to end by the
	// partition-ablation experiment).
	moved := 0
	for i := range mb.Stages {
		if mb.Stages[i].NumBlocks != cb.Stages[i].NumBlocks {
			moved++
		}
	}
	if moved == 0 {
		t.Error("memory balancing left the compute-balanced split untouched")
	}
}

func TestSummarize(t *testing.T) {
	d := []units.Bytes{RuntimeReserve + 30, RuntimeReserve + 10, RuntimeReserve + 20}
	s := Summarize(d)
	if s.Total != 60 {
		t.Errorf("total = %d, want 60", s.Total)
	}
	if s.Max != RuntimeReserve+30 || s.Min != RuntimeReserve+10 {
		t.Errorf("max/min = %v/%v", s.Max, s.Min)
	}
	if z := Summarize(nil); z.Total != 0 {
		t.Error("empty summarize must be zero")
	}
}

func TestStrategyString(t *testing.T) {
	if ComputeBalanced.String() != "compute-balanced" || MemoryBalanced.String() != "memory-balanced" {
		t.Error("strategy names wrong")
	}
	if PipeDream.String() != "PipeDream" || DAPPLE.String() != "DAPPLE" || GPipe.String() != "GPipe" {
		t.Error("schedule names wrong")
	}
	if !PipeDream.Async() || DAPPLE.Async() {
		t.Error("async flags wrong")
	}
}
