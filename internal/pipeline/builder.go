package pipeline

import (
	"fmt"

	"mpress/internal/graph"
	"mpress/internal/model"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// BuildConfig describes one training job to lower into a graph.
type BuildConfig struct {
	Model model.Config
	Prec  model.Precision
	Part  Partition
	Kind  ScheduleKind
	// MicrobatchSize is sequences per microbatch; Microbatches is
	// microbatches per minibatch; Minibatches is how many minibatches
	// the iteration graph spans (≥2 recommended so PipeDream reaches
	// steady state).
	MicrobatchSize int
	Microbatches   int
	Minibatches    int
	// TP is the tensor-parallel degree each stage is sharded across
	// (0 or 1 = off). The graph models one representative TP rank:
	// per-rank tensors and FLOPs shrink by TP (StageProfile.Shard)
	// while boundary tensors stay full-size, and TPFwAllReduce /
	// TPBwAllReduce carry the per-operator collective payloads.
	TP int
}

// TPDegree normalizes the configured tensor-parallel degree (≥ 1).
func (bc BuildConfig) TPDegree() int {
	if bc.TP > 1 {
		return bc.TP
	}
	return 1
}

// SlotKey addresses one (stage, global microbatch) cell of the
// pipeline diagram.
type SlotKey struct {
	Stage      int
	Microbatch int
}

// Built is the lowered training job: the op graph plus the side tables
// the executor and planner need.
type Built struct {
	Cfg      BuildConfig
	Graph    *graph.Graph
	Profiles []StageProfile

	// Persistent[s] lists stage s's always-resident tensors
	// (per-block params/grads/optimizer states, embedding state,
	// stashed weight versions).
	Persistent [][]tensor.ID
	// PersistentSet marks tensors the executor must not free.
	PersistentSet map[tensor.ID]bool

	// Acts[k] lists the activation tensors (one per block, plus
	// embedding/logits entries) produced by forward slot k.
	Acts map[SlotKey][]tensor.ID
	// BoundIn[k] is the retained stage-input tensor of slot k
	// (absent for stage 0).
	BoundIn map[SlotKey]tensor.ID

	FwOps map[SlotKey]graph.OpID
	BwOps map[SlotKey]graph.OpID
	// OptOps[s][q] lists stage s's optimizer-step operators for
	// minibatch q — one per parameter group (block/embedding), run in
	// sequence, so host-parked optimizer states stream through GPU
	// memory one group at a time instead of spiking all at once.
	OptOps [][][]graph.OpID

	// RecomputeFLOPs[t] is the forward cost to regenerate activation
	// t if dropped (used by the planner's cost model).
	RecomputeFLOPs map[tensor.ID]units.FLOPs

	// PrevOnStage maps each compute op to its predecessor in the
	// stage's local schedule chain (-1 at the head). The planner uses
	// it as the prefetch gate for swap-in/recompute instrumentation.
	PrevOnStage map[graph.OpID]graph.OpID

	// TPFwAllReduce / TPBwAllReduce list, per stage, the NVLink
	// all-reduce payload one forward / backward op of that stage
	// exchanges inside its TP group (Megatron's two collectives per
	// block per direction, each moving the block's boundary-sized
	// activation). Nil when TP <= 1.
	TPFwAllReduce []units.Bytes
	TPBwAllReduce []units.Bytes

	// TotalMicrobatches = Microbatches × Minibatches.
	TotalMicrobatches int
	// UsefulFLOPs is the model compute of the whole run (excludes
	// any recomputation added later), the numerator of the paper's
	// TFLOPS metric.
	UsefulFLOPs units.FLOPs
}

// NumStages returns the stage count.
func (b *Built) NumStages() int { return len(b.Profiles) }

// SamplesProcessed returns the sequences consumed by the whole run.
func (b *Built) SamplesProcessed() int {
	return b.Cfg.MicrobatchSize * b.TotalMicrobatches
}

// Build lowers the training job to a dataflow graph with exact
// schedule-order dependencies (Fig. 1's timing diagram as a DAG).
func Build(bc BuildConfig) (*Built, error) {
	if err := bc.Model.Validate(); err != nil {
		return nil, err
	}
	if err := bc.Part.Validate(bc.Model); err != nil {
		return nil, err
	}
	if bc.MicrobatchSize <= 0 || bc.Microbatches <= 0 || bc.Minibatches <= 0 {
		return nil, fmt.Errorf("pipeline: batch shape %d/%d/%d must be positive",
			bc.MicrobatchSize, bc.Microbatches, bc.Minibatches)
	}

	g := graph.New(nil)
	S := bc.Part.NumStages()
	total := bc.Microbatches * bc.Minibatches
	T := bc.TPDegree()
	profiles := Profile(bc.Model, bc.Part, bc.MicrobatchSize)
	for i := range profiles {
		profiles[i] = profiles[i].Shard(T)
	}

	b := &Built{
		Cfg:               bc,
		Graph:             g,
		Profiles:          profiles,
		Persistent:        make([][]tensor.ID, S),
		PersistentSet:     make(map[tensor.ID]bool),
		Acts:              make(map[SlotKey][]tensor.ID),
		BoundIn:           make(map[SlotKey]tensor.ID),
		FwOps:             make(map[SlotKey]graph.OpID),
		BwOps:             make(map[SlotKey]graph.OpID),
		OptOps:            make([][][]graph.OpID, S),
		RecomputeFLOPs:    make(map[tensor.ID]units.FLOPs),
		PrevOnStage:       make(map[graph.OpID]graph.OpID),
		TotalMicrobatches: total,
	}
	if T > 1 {
		b.TPFwAllReduce = make([]units.Bytes, S)
		b.TPBwAllReduce = make([]units.Bytes, S)
		for s := 0; s < S; s++ {
			payload := units.Bytes(int64(2*bc.Part.Stages[s].NumBlocks)) * profiles[s].BoundaryBytes
			b.TPFwAllReduce[s] = payload
			b.TPBwAllReduce[s] = payload
		}
	}

	// paramT[s] lists stage s's live parameter tensors (forward
	// inputs); gradT/optT the matching gradient/optimizer tensors.
	paramT := make([][]tensor.ID, S)
	gradT := make([][]tensor.ID, S)
	optT := make([][]tensor.ID, S)

	addPersistent := func(s int, name string, class tensor.Class, layer int, size units.Bytes) tensor.ID {
		id := g.Tensors.Add(tensor.Tensor{
			Name: name, Class: class, DType: bc.Model.DType,
			Size: size, Stage: s, Layer: layer, Producer: -1,
		})
		b.Persistent[s] = append(b.Persistent[s], id)
		b.PersistentSet[id] = true
		return id
	}

	blockParams := bc.Model.ParamsPerBlock()
	if T > 1 {
		blockParams = ceilDiv64(blockParams, int64(T))
	}
	for s := 0; s < S; s++ {
		st := bc.Part.Stages[s]
		for _, blk := range st.Blocks() {
			paramT[s] = append(paramT[s], addPersistent(s,
				fmt.Sprintf("param:b%d", blk), tensor.Parameter, blk,
				units.Bytes(blockParams*bc.Prec.ParamBytes)))
			gradT[s] = append(gradT[s], addPersistent(s,
				fmt.Sprintf("grad:b%d", blk), tensor.Gradient, blk,
				units.Bytes(blockParams*bc.Prec.GradBytes)))
			optT[s] = append(optT[s], addPersistent(s,
				fmt.Sprintf("opt:b%d", blk), tensor.OptimizerState, blk,
				units.Bytes(blockParams*bc.Prec.OptBytes)))
		}
		if st.HasEmbedding {
			emb := bc.Model.EmbeddingParams()
			if T > 1 {
				emb = ceilDiv64(emb, int64(T))
			}
			paramT[s] = append(paramT[s], addPersistent(s, "param:embed", tensor.Parameter, -1,
				units.Bytes(emb*bc.Prec.ParamBytes)))
			gradT[s] = append(gradT[s], addPersistent(s, "grad:embed", tensor.Gradient, -1,
				units.Bytes(emb*bc.Prec.GradBytes)))
			optT[s] = append(optT[s], addPersistent(s, "opt:embed", tensor.OptimizerState, -1,
				units.Bytes(emb*bc.Prec.OptBytes)))
		}
		// Stashed weight versions beyond the live copy (PipeDream).
		if v := bc.Kind.WeightVersions(s, S); v > 1 {
			addPersistent(s, fmt.Sprintf("stash:x%d", v-1), tensor.Parameter, -1,
				units.Bytes(int64(v-1)*profiles[s].Params*bc.Prec.ParamBytes))
		}
	}

	// Per-slot tensors and ops. The activation handoff of slot
	// {s,m} connects stage s's boundary output to stage s+1's
	// retained input; the gradient handoff of {s,m} flows s -> s-1.
	actOut := make(map[SlotKey]tensor.ID)
	actIn := make(map[SlotKey]tensor.ID)
	gradOut := make(map[SlotKey]tensor.ID)
	gradIn := make(map[SlotKey]tensor.ID)

	for m := 0; m < total; m++ {
		for s := 0; s < S; s++ {
			k := SlotKey{Stage: s, Microbatch: m}
			sp := profiles[s]
			st := bc.Part.Stages[s]

			// Activation tensors this forward produces and retains.
			var acts []tensor.ID
			if st.HasEmbedding {
				acts = append(acts, g.Tensors.Add(tensor.Tensor{
					Name: fmt.Sprintf("act:emb:mb%d", m), Class: tensor.Activation,
					DType: bc.Model.DType, Size: sp.EmbedActBytes, Stage: s, Layer: -1,
				}))
			}
			for _, blk := range st.Blocks() {
				id := g.Tensors.Add(tensor.Tensor{
					Name: fmt.Sprintf("act:b%d:mb%d", blk, m), Class: tensor.Activation,
					DType: bc.Model.DType, Size: sp.BlockActBytes, Stage: s, Layer: blk,
				})
				acts = append(acts, id)
				b.RecomputeFLOPs[id] = bc.Model.BlockForwardFLOPs(bc.MicrobatchSize) / units.FLOPs(T)
			}
			if st.HasHead {
				acts = append(acts, g.Tensors.Add(tensor.Tensor{
					Name: fmt.Sprintf("act:logits:mb%d", m), Class: tensor.Activation,
					DType: bc.Model.DType, Size: sp.LogitsBytes, Stage: s, Layer: bc.Model.Layers,
				}))
			}
			b.Acts[k] = acts

			fwIn := append([]tensor.ID(nil), paramT[s]...)
			if s > 0 {
				bndIn := g.Tensors.Add(tensor.Tensor{
					Name: fmt.Sprintf("bndin:s%d:mb%d", s, m), Class: tensor.Activation,
					DType: bc.Model.DType, Size: sp.BoundaryBytes, Stage: s, Layer: st.FirstBlock,
				})
				b.BoundIn[k] = bndIn
				actIn[SlotKey{s - 1, m}] = bndIn
				fwIn = append(fwIn, bndIn)
			}
			fwOut := append([]tensor.ID(nil), acts...)
			if s < S-1 {
				bndOut := g.Tensors.Add(tensor.Tensor{
					Name: fmt.Sprintf("bndout:s%d:mb%d", s, m), Class: tensor.Activation,
					DType: bc.Model.DType, Size: sp.BoundaryBytes, Stage: s, Layer: st.FirstBlock + st.NumBlocks - 1,
				})
				actOut[k] = bndOut
				fwOut = append(fwOut, bndOut)
			}
			b.FwOps[k] = g.AddOp(graph.Op{
				Name: fmt.Sprintf("F:s%d:mb%d", s, m), Kind: graph.Forward,
				Stage: s, Layer: -1, Microbatch: m,
				FLOPs: sp.FwFLOPs, Inputs: fwIn, Outputs: fwOut,
			})
			b.UsefulFLOPs += sp.FwFLOPs
		}
	}

	// Add the forward activation transfers now that both handoff
	// sides exist.
	for m := 0; m < total; m++ {
		for s := 0; s < S-1; s++ {
			k := SlotKey{Stage: s, Microbatch: m}
			out, okOut := actOut[k]
			in, okIn := actIn[k]
			if !okOut || !okIn {
				return nil, fmt.Errorf("pipeline: internal: missing handoff s%d mb%d", s, m)
			}
			g.AddOp(graph.Op{
				Name: fmt.Sprintf("Tact:s%d->s%d:mb%d", s, s+1, m), Kind: graph.Transfer,
				Stage: s, Layer: -1, Microbatch: m,
				MoveBytes: profiles[s].BoundaryBytes,
				Inputs:    []tensor.ID{out},
				Outputs:   []tensor.ID{in},
			})
		}
	}

	// Backward ops and gradient transfers, walked from the last stage
	// down so the grad handoff tensor exists before its consumer.
	for m := 0; m < total; m++ {
		for s := S - 1; s >= 0; s-- {
			k := SlotKey{Stage: s, Microbatch: m}
			sp := profiles[s]
			bwIn := append([]tensor.ID(nil), b.Acts[k]...)
			bwIn = append(bwIn, paramT[s]...)
			bwIn = append(bwIn, gradT[s]...)
			if id, ok := b.BoundIn[k]; ok {
				bwIn = append(bwIn, id)
			}
			if s < S-1 {
				// Gradient arriving from downstream (stage s+1 was
				// visited first in this descending loop).
				bwIn = append(bwIn, gradIn[SlotKey{s + 1, m}])
			}
			var bwOut []tensor.ID
			if s > 0 {
				gout := g.Tensors.Add(tensor.Tensor{
					Name: fmt.Sprintf("gbnd:s%d:mb%d", s, m), Class: tensor.Gradient,
					DType: bc.Model.DType, Size: sp.BoundaryBytes, Stage: s, Layer: -1,
				})
				gin := g.Tensors.Add(tensor.Tensor{
					Name: fmt.Sprintf("gin:s%d:mb%d", s-1, m), Class: tensor.Gradient,
					DType: bc.Model.DType, Size: sp.BoundaryBytes, Stage: s - 1, Layer: -1,
				})
				gradOut[k] = gout
				gradIn[k] = gin
				bwOut = append(bwOut, gout)
			}
			b.BwOps[k] = g.AddOp(graph.Op{
				Name: fmt.Sprintf("B:s%d:mb%d", s, m), Kind: graph.Backward,
				Stage: s, Layer: -1, Microbatch: m,
				FLOPs: sp.BwFLOPs, Inputs: bwIn, Outputs: bwOut,
			})
			b.UsefulFLOPs += sp.BwFLOPs
			if s > 0 {
				g.AddOp(graph.Op{
					Name: fmt.Sprintf("Tgrad:s%d->s%d:mb%d", s, s-1, m), Kind: graph.Transfer,
					Stage: s, Layer: -1, Microbatch: m,
					MoveBytes: sp.BoundaryBytes,
					Inputs:    []tensor.ID{gradOut[k]},
					Outputs:   []tensor.ID{gradIn[k]},
				})
			}
		}
	}

	// Optimizer steps: one operator per parameter group (block or
	// embedding) per stage per minibatch, after all the minibatch's
	// backwards on that stage. groups[i] indexes into paramT/gradT/
	// optT, which the persistent-tensor loop filled in block order
	// (embedding last on stage 0).
	for s := 0; s < S; s++ {
		b.OptOps[s] = make([][]graph.OpID, bc.Minibatches)
		groups := len(paramT[s])
		for q := 0; q < bc.Minibatches; q++ {
			var deps []graph.OpID
			for m := q * bc.Microbatches; m < (q+1)*bc.Microbatches; m++ {
				deps = append(deps, b.BwOps[SlotKey{s, m}])
			}
			for gi := 0; gi < groups; gi++ {
				groupBytes := g.Tensors.Get(paramT[s][gi]).Size +
					g.Tensors.Get(gradT[s][gi]).Size +
					g.Tensors.Get(optT[s][gi]).Size
				opDeps := deps
				if gi > 0 {
					opDeps = []graph.OpID{b.OptOps[s][q][gi-1]}
				}
				id := g.AddOp(graph.Op{
					Name: fmt.Sprintf("U:s%d:q%d:g%d", s, q, gi), Kind: graph.OptimizerStep,
					Stage: s, Layer: g.Tensors.Get(optT[s][gi]).Layer, Microbatch: -1,
					// Optimizer time is HBM-bound: the executor divides
					// MoveBytes by the GPU's memory bandwidth.
					MoveBytes: groupBytes * 2,
					Inputs:    []tensor.ID{paramT[s][gi], gradT[s][gi], optT[s][gi]},
					Deps:      opDeps,
				})
				b.OptOps[s][q] = append(b.OptOps[s][q], id)
			}
		}
	}

	// Enforce the exact per-stage schedule order (1F1B etc.) by
	// chaining each stage's slots. An OptPass slot expands to its
	// per-group operator sequence.
	for s := 0; s < S; s++ {
		var prev graph.OpID = -1
		chain := func(op graph.OpID) {
			if prev >= 0 {
				g.AddDep(op, prev)
			}
			b.PrevOnStage[op] = prev
			prev = op
		}
		for _, slot := range bc.Kind.StageOrder(s, S, bc.Microbatches, bc.Minibatches) {
			switch slot.Pass {
			case FwdPass:
				chain(b.FwOps[SlotKey{s, slot.Microbatch}])
			case BwdPass:
				chain(b.BwOps[SlotKey{s, slot.Microbatch}])
			case OptPass:
				for _, op := range b.OptOps[s][slot.Microbatch] {
					chain(op)
				}
			}
		}
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline: built graph invalid: %w", err)
	}
	return b, nil
}
