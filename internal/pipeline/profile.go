package pipeline

import (
	"mpress/internal/model"
	"mpress/internal/units"
)

// RuntimeReserve is the fixed per-GPU memory the training framework
// itself occupies (CUDA context, NCCL buffers, allocator slack). It is
// charged on every GPU before any model data.
const RuntimeReserve = units.Bytes(5) * units.GiB / 2 // 2.5 GiB

// StageProfile carries the static per-stage quantities the planner and
// executor consume: parameters, per-microbatch activation footprint and
// compute cost, and boundary traffic.
type StageProfile struct {
	Stage Stage
	// Params is the stage's parameter count (embedding included on
	// stage 0; the output head ties its weights to the embedding).
	Params int64
	// FwFLOPs / BwFLOPs are per microbatch, head included.
	FwFLOPs units.FLOPs
	BwFLOPs units.FLOPs
	// ActBytes is the full activation footprint per microbatch;
	// BlockActBytes the share of a single transformer block.
	ActBytes      units.Bytes
	BlockActBytes units.Bytes
	// EmbedActBytes / LogitsBytes are non-block activation parts
	// (zero unless the stage hosts the embedding / head).
	EmbedActBytes units.Bytes
	LogitsBytes   units.Bytes
	// BoundaryBytes is the activation (and, symmetric, gradient)
	// traffic per microbatch across one stage boundary.
	BoundaryBytes units.Bytes
}

// PersistentBytes returns the stage's always-resident footprint:
// parameters, gradients and optimizer state, plus any stashed weight
// versions beyond the first.
func (sp StageProfile) PersistentBytes(prec model.Precision, versions int) units.Bytes {
	base := units.Bytes(sp.Params * prec.StateBytesPerParam())
	if versions > 1 {
		base += units.Bytes(int64(versions-1) * sp.Params * prec.ParamBytes)
	}
	return base
}

// ParamBytes returns just the live parameter copy's size.
func (sp StageProfile) ParamBytes(prec model.Precision) units.Bytes {
	return units.Bytes(sp.Params * prec.ParamBytes)
}

// GradBytes returns the gradient buffer size.
func (sp StageProfile) GradBytes(prec model.Precision) units.Bytes {
	return units.Bytes(sp.Params * prec.GradBytes)
}

// OptBytes returns the optimizer-state size.
func (sp StageProfile) OptBytes(prec model.Precision) units.Bytes {
	return units.Bytes(sp.Params * prec.OptBytes)
}

// Shard returns the profile of one TP rank when the stage is split
// t ways (Megatron-style intra-layer sharding): parameters, optimizer
// state, activations and FLOPs divide by t (byte quantities round up
// so t shards always cover the whole), while boundary tensors stay
// full-size — every rank holds the complete layer input/output, which
// is exactly what the per-operator all-reduce re-materializes. With
// t <= 1 the profile is returned unchanged.
func (sp StageProfile) Shard(t int) StageProfile {
	if t <= 1 {
		return sp
	}
	out := sp
	out.Params = ceilDiv64(sp.Params, int64(t))
	out.FwFLOPs = sp.FwFLOPs / units.FLOPs(t)
	out.BwFLOPs = sp.BwFLOPs / units.FLOPs(t)
	out.BlockActBytes = ceilDivBytes(sp.BlockActBytes, t)
	out.EmbedActBytes = ceilDivBytes(sp.EmbedActBytes, t)
	out.LogitsBytes = ceilDivBytes(sp.LogitsBytes, t)
	out.ActBytes = units.Bytes(int64(sp.Stage.NumBlocks))*out.BlockActBytes +
		out.EmbedActBytes + out.LogitsBytes
	return out
}

func ceilDiv64(x, d int64) int64 {
	return (x + d - 1) / d
}

func ceilDivBytes(x units.Bytes, d int) units.Bytes {
	return (x + units.Bytes(d) - 1) / units.Bytes(d)
}

// Profile computes the per-stage profiles for cfg under part with
// microbatches of b sequences.
func Profile(cfg model.Config, part Partition, b int) []StageProfile {
	out := make([]StageProfile, len(part.Stages))
	for i, st := range part.Stages {
		sp := StageProfile{
			Stage:         st,
			Params:        int64(st.NumBlocks) * cfg.ParamsPerBlock(),
			BlockActBytes: cfg.BlockActivationBytes(b),
			BoundaryBytes: cfg.BoundaryBytes(b),
		}
		sp.FwFLOPs = units.FLOPs(float64(st.NumBlocks)) * cfg.BlockForwardFLOPs(b)
		sp.ActBytes = units.Bytes(int64(st.NumBlocks)) * sp.BlockActBytes
		if st.HasEmbedding {
			sp.Params += cfg.EmbeddingParams()
			sp.EmbedActBytes = cfg.EmbeddingActivationBytes(b)
			sp.ActBytes += sp.EmbedActBytes
		}
		if st.HasHead {
			sp.FwFLOPs += cfg.HeadForwardFLOPs(b)
			sp.LogitsBytes = cfg.LogitsBytes(b)
			sp.ActBytes += sp.LogitsBytes
		}
		sp.BwFLOPs = 2 * sp.FwFLOPs
		out[i] = sp
	}
	return out
}

// Demand computes the per-stage (and, with the identity mapping,
// per-GPU) memory demand of one training job: persistent state
// (including stashed weight versions), in-flight activations with the
// schedule's retention counts, retained stage inputs, and the runtime
// reserve. This is the analytic model behind Table II and Fig. 2.
func Demand(cfg model.Config, prec model.Precision, part Partition, kind ScheduleKind, b, microbatches int) []units.Bytes {
	return DemandTP(cfg, prec, part, kind, b, microbatches, 1)
}

// DemandTP is Demand for one rank of a tensor-parallel group: stage
// profiles are sharded t ways before the schedule's retention math.
// t <= 1 is exactly Demand.
func DemandTP(cfg model.Config, prec model.Precision, part Partition, kind ScheduleKind, b, microbatches, t int) []units.Bytes {
	profiles := Profile(cfg, part, b)
	if t > 1 {
		for i := range profiles {
			profiles[i] = profiles[i].Shard(t)
		}
	}
	s := len(profiles)
	out := make([]units.Bytes, s)
	for i, sp := range profiles {
		inflight := units.Bytes(kind.InFlight(i, s, microbatches))
		d := RuntimeReserve
		d += sp.PersistentBytes(prec, kind.WeightVersions(i, s))
		d += inflight * sp.ActBytes
		if i > 0 {
			// The stage input (previous stage's boundary tensor) is
			// retained per in-flight microbatch for the backward pass.
			d += inflight * sp.BoundaryBytes
		}
		out[i] = d
	}
	return out
}

// DemandSummary condenses a Demand result into the Table II columns.
type DemandSummary struct {
	Total units.Bytes
	Max   units.Bytes
	Min   units.Bytes
}

// Summarize computes total/max/min over per-stage demands, excluding
// the runtime reserve from the total (the paper reports model data).
func Summarize(demands []units.Bytes) DemandSummary {
	var s DemandSummary
	if len(demands) == 0 {
		return s
	}
	s.Min = demands[0]
	for _, d := range demands {
		s.Total += d - RuntimeReserve
		if d > s.Max {
			s.Max = d
		}
		if d < s.Min {
			s.Min = d
		}
	}
	return s
}
