package pipeline

import "fmt"

// ScheduleKind selects how microbatches flow through the pipeline
// (paper Fig. 1).
type ScheduleKind int

const (
	// PipeDream is asynchronous 1F1B: the next minibatch's forwards
	// overlap the previous minibatch's backwards, which requires
	// stashing one weight version per in-flight microbatch.
	PipeDream ScheduleKind = iota
	// DAPPLE is synchronous 1F1B: backwards are scheduled early to
	// release activation memory, but minibatches are serialized by a
	// flush (vertical line in Fig. 1b).
	DAPPLE
	// GPipe runs all forwards before all backwards within a
	// minibatch, maximizing activation residency.
	GPipe
)

// String returns the schedule name.
func (k ScheduleKind) String() string {
	switch k {
	case PipeDream:
		return "PipeDream"
	case DAPPLE:
		return "DAPPLE"
	case GPipe:
		return "GPipe"
	default:
		return fmt.Sprintf("ScheduleKind(%d)", int(k))
	}
}

// Async reports whether minibatches overlap (no flush).
func (k ScheduleKind) Async() bool { return k == PipeDream }

// InFlight returns how many microbatches' activations stage `stage`
// holds simultaneously at steady state: under 1F1B, the stages that
// host early pipeline stages accumulate more (paper Sec. II-C) —
// stage s holds numStages-s copies, capped by the microbatch count.
func (k ScheduleKind) InFlight(stage, numStages, microbatches int) int {
	switch k {
	case GPipe:
		return microbatches
	default:
		n := numStages - stage
		if n > microbatches {
			n = microbatches
		}
		if n < 1 {
			n = 1
		}
		return n
	}
}

// WeightVersions returns how many parameter versions stage `stage`
// stashes. PipeDream's asynchronous scheduling requires one version
// per in-flight microbatch to preserve convergence (Sec. II-C);
// synchronous schedules keep a single version.
func (k ScheduleKind) WeightVersions(stage, numStages int) int {
	if k == PipeDream {
		v := numStages - stage
		if v < 1 {
			v = 1
		}
		return v
	}
	return 1
}

// Pass distinguishes forward from backward slots.
type Pass int

const (
	// FwdPass and BwdPass are microbatch passes; OptPass is the
	// per-minibatch optimizer step.
	FwdPass Pass = iota
	BwdPass
	OptPass
)

// String returns "F", "B" or "U" (update).
func (p Pass) String() string {
	switch p {
	case FwdPass:
		return "F"
	case BwdPass:
		return "B"
	case OptPass:
		return "U"
	default:
		return "?"
	}
}

// Slot is one unit of work in a device's local schedule.
type Slot struct {
	Pass Pass
	// Microbatch is the global microbatch index (across minibatches)
	// for F/B slots, or the minibatch index for OptPass slots.
	Microbatch int
}

// StageOrder returns the exact local execution order of stage `stage`
// for `minibatches` minibatches of `microbatches` microbatches each —
// the per-device serialization the executor enforces (Fig. 1).
func (k ScheduleKind) StageOrder(stage, numStages, microbatches, minibatches int) []Slot {
	var slots []Slot
	switch k {
	case GPipe:
		for q := 0; q < minibatches; q++ {
			base := q * microbatches
			for m := 0; m < microbatches; m++ {
				slots = append(slots, Slot{FwdPass, base + m})
			}
			for m := 0; m < microbatches; m++ {
				slots = append(slots, Slot{BwdPass, base + m})
			}
			slots = append(slots, Slot{OptPass, q})
		}
	case DAPPLE:
		warm := k.InFlight(stage, numStages, microbatches)
		for q := 0; q < minibatches; q++ {
			base := q * microbatches
			f, b := 0, 0
			for f < warm && f < microbatches {
				slots = append(slots, Slot{FwdPass, base + f})
				f++
			}
			for b < microbatches {
				slots = append(slots, Slot{BwdPass, base + b})
				b++
				if f < microbatches {
					slots = append(slots, Slot{FwdPass, base + f})
					f++
				}
			}
			slots = append(slots, Slot{OptPass, q})
		}
	case PipeDream:
		// Continuous 1F1B across minibatch boundaries: a single
		// warmup at the start of training, then strict alternation.
		// The optimizer slot for minibatch q is inserted right after
		// the backward of q's last microbatch.
		total := microbatches * minibatches
		warm := numStages - stage
		if warm > total {
			warm = total
		}
		if warm < 1 {
			warm = 1
		}
		f, b := 0, 0
		for f < warm {
			slots = append(slots, Slot{FwdPass, f})
			f++
		}
		for b < total {
			slots = append(slots, Slot{BwdPass, b})
			if (b+1)%microbatches == 0 {
				slots = append(slots, Slot{OptPass, b / microbatches})
			}
			b++
			if f < total {
				slots = append(slots, Slot{FwdPass, f})
				f++
			}
		}
	}
	return slots
}
