package compaction

import (
	"testing"

	"mpress/internal/fabric"
	"mpress/internal/hw"
	"mpress/internal/units"
)

func TestCostModelsMatchTableIII(t *testing.T) {
	// Paper Table III, tensor t1: 216 MB — GPU-CPU swap 42 ms, D2D
	// swap over four NVLinks 6 ms.
	topo := hw.DGX1()
	size := 216 * units.MiB

	host := HostSwapCost(topo, size)
	if ms := host.Millisecondsf(); ms < 34 || ms > 45 {
		t.Errorf("host swap cost = %.1fms, want ≈42ms (Table III t1)", ms)
	}

	// Four lanes from gpu0: two to gpu3, two to gpu4.
	parts := []fabric.Part{
		{Peer: 3, Bytes: size / 2},
		{Peer: 4, Bytes: size / 2},
	}
	d2d := D2DSwapCost(topo, 0, parts)
	if ms := d2d.Millisecondsf(); ms < 3.5 || ms > 7 {
		t.Errorf("4-lane D2D cost = %.2fms, want ≈6ms (Table III t1)", ms)
	}
	if float64(host)/float64(d2d) < 6 {
		t.Errorf("D2D must be ≈7.6× faster than GPU-CPU swap (Table III), got %.1f×",
			float64(host)/float64(d2d))
	}
}

func TestRecomputeCost(t *testing.T) {
	rate := units.TFLOPS(40)
	if got := RecomputeCost(units.FLOPs(40e12), rate); got != units.Second {
		t.Errorf("recompute cost = %v, want 1s", got)
	}
}

func TestOverhead(t *testing.T) {
	if Overhead(10, 20) != 0 {
		t.Error("cost hidden by live interval must have zero overhead")
	}
	if Overhead(30, 20) != 10 {
		t.Error("overhead must be cost - live")
	}
}

func TestD2DFallbackForUnreachablePeer(t *testing.T) {
	topo := hw.DGX1()
	// gpu0 cannot reach gpu5 over NVLink: the cost degrades to PCIe.
	bad := D2DSwapCost(topo, 0, []fabric.Part{{Peer: 5, Bytes: 216 * units.MiB}})
	good := D2DSwapCost(topo, 0, []fabric.Part{{Peer: 3, Bytes: 216 * units.MiB}})
	if bad <= good*2 {
		t.Errorf("unreachable peer must be much slower: %v vs %v", bad, good)
	}
}

func TestPlanStripesWeighted(t *testing.T) {
	topo := hw.DGX1()
	budget := SpareBudget{1: units.GB(4), 2: units.GB(4), 3: units.GB(4), 4: units.GB(4)}
	size := units.Bytes(600 * units.MiB)
	parts := PlanStripes(topo, 0, size, budget)
	if parts == nil {
		t.Fatal("stripes not planned")
	}
	byPeer := map[hw.DeviceID]units.Bytes{}
	var total units.Bytes
	for _, p := range parts {
		byPeer[p.Peer] += p.Bytes
		total += p.Bytes
	}
	if total != size {
		t.Fatalf("stripes cover %v of %v", total, size)
	}
	// Weighted by lanes: gpu3 and gpu4 (2 lanes) get 2× gpu1/gpu2.
	if byPeer[3] != 2*byPeer[1] || byPeer[4] != 2*byPeer[2] {
		t.Errorf("weighting wrong: %v", byPeer)
	}
	// Budgets must be debited.
	if budget[3] != units.GB(4)-byPeer[3] {
		t.Errorf("budget not debited: %v", budget[3])
	}
}

func TestPlanStripesRespectsBudgetLimits(t *testing.T) {
	topo := hw.DGX1()
	// gpu3 has almost nothing spare: its lane weight cannot be used.
	budget := SpareBudget{1: units.GB(4), 2: units.GB(4), 3: units.MB(1), 4: units.GB(4)}
	size := units.Bytes(600 * units.MiB)
	parts := PlanStripes(topo, 0, size, budget)
	if parts == nil {
		t.Fatal("stripes not planned")
	}
	var total units.Bytes
	for _, p := range parts {
		if p.Peer == 3 && p.Bytes > units.MB(1) {
			t.Errorf("gpu3 overcommitted: %v", p.Bytes)
		}
		total += p.Bytes
	}
	if total != size {
		t.Errorf("stripes cover %v of %v", total, size)
	}
}

func TestPlanStripesInsufficientSpare(t *testing.T) {
	topo := hw.DGX1()
	budget := SpareBudget{1: units.MB(10)}
	if parts := PlanStripes(topo, 0, units.GB(1), budget); parts != nil {
		t.Errorf("partial plan returned: %v", parts)
	}
	// Budget must be untouched on failure.
	if budget[1] != units.MB(10) {
		t.Error("failed plan debited budget")
	}
}

func TestPlanStripesIgnoresUnreachablePeers(t *testing.T) {
	topo := hw.DGX1()
	// gpu5/6/7 are not gpu0's neighbors; only their budget exists.
	budget := SpareBudget{5: units.GB(8), 6: units.GB(8), 7: units.GB(8)}
	if parts := PlanStripes(topo, 0, units.MB(100), budget); parts != nil {
		t.Errorf("planned stripes to unreachable peers: %v", parts)
	}
}

func TestPlanStripesSwitchedEqualSplit(t *testing.T) {
	topo := hw.DGX2()
	budget := SpareBudget{1: units.GB(8), 2: units.GB(8), 3: units.GB(8)}
	size := units.Bytes(300 * units.MiB)
	parts := PlanStripes(topo, 0, size, budget)
	if len(parts) != 3 {
		t.Fatalf("parts = %v", parts)
	}
	for _, p := range parts {
		if p.Bytes < size/3-units.KiB || p.Bytes > size/3+units.KiB {
			t.Errorf("switched split must be equal: %v", parts)
		}
	}
}

func TestUnplanStripes(t *testing.T) {
	budget := SpareBudget{1: 100}
	parts := []fabric.Part{{Peer: 1, Bytes: 40}}
	UnplanStripes(budget, parts)
	if budget[1] != 140 {
		t.Errorf("budget = %v", budget[1])
	}
}

func TestSpareBudgetHelpers(t *testing.T) {
	b := SpareBudget{1: 10, 2: 20}
	c := b.Clone()
	c[1] = 99
	if b[1] != 10 {
		t.Error("clone aliases original")
	}
	if b.Total() != 30 {
		t.Errorf("total = %v", b.Total())
	}
}

func TestEqualAndSingleStripes(t *testing.T) {
	parts := EqualStripes([]hw.DeviceID{1, 2, 3}, 100)
	var total units.Bytes
	for _, p := range parts {
		total += p.Bytes
	}
	if total != 100 || len(parts) != 3 {
		t.Errorf("equal stripes = %v", parts)
	}
	single := SingleStripe(4, 77)
	if len(single) != 1 || single[0].Peer != 4 || single[0].Bytes != 77 {
		t.Errorf("single stripe = %v", single)
	}
	if EqualStripes(nil, 100) != nil || EqualStripes([]hw.DeviceID{1}, 0) != nil {
		t.Error("degenerate equal stripes must be nil")
	}
}

func TestPlanStripesZeroSize(t *testing.T) {
	if PlanStripes(hw.DGX1(), 0, 0, SpareBudget{1: 100}) != nil {
		t.Error("zero-size plan must be nil")
	}
}
