package compaction

import (
	"testing"
	"testing/quick"

	"mpress/internal/fabric"
	"mpress/internal/hw"
	"mpress/internal/units"
)

func stripedTo(parts []fabric.Part, peer hw.DeviceID) units.Bytes {
	var total units.Bytes
	for _, p := range parts {
		if p.Peer == peer {
			total += p.Bytes
		}
	}
	return total
}

// TestPlanStripesConservationProperty: over random budgets and sizes,
// a successful plan covers the exact size, routes only to reachable
// peers, and debits the budget by exactly what it striped; a failed
// plan leaves the budget untouched.
func TestPlanStripesConservationProperty(t *testing.T) {
	topo := hw.DGX1()
	f := func(sizeIn uint32, b1, b2, b3, b4 uint32, srcIn uint8) bool {
		src := hw.DeviceID(int(srcIn) % 8)
		size := units.Bytes(sizeIn)
		budget := SpareBudget{}
		for i, v := range []uint32{b1, b2, b3, b4} {
			// Spread budget over four arbitrary GPUs (some may not be
			// neighbors of src — the planner must ignore those).
			id := hw.DeviceID((int(srcIn) + i + 1) % 8)
			budget[id] += units.Bytes(v)
		}
		before := budget.Clone()
		parts := PlanStripes(topo, src, size, budget)
		if parts == nil {
			for k, v := range before {
				if budget[k] != v {
					return false
				}
			}
			return true
		}
		var total units.Bytes
		for _, p := range parts {
			if p.Bytes <= 0 {
				return false
			}
			if topo.LanesBetween(src, p.Peer) == 0 {
				return false
			}
			total += p.Bytes
		}
		if total != size {
			return false
		}
		for k := range before {
			if budget[k] < 0 {
				return false
			}
			if budget[k]+stripedTo(parts, k) != before[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPlanStripesSwitchedProperty: on the symmetric fabric every GPU
// with budget is reachable, so any size within the total budget plans.
func TestPlanStripesSwitchedProperty(t *testing.T) {
	topo := hw.DGX2()
	f := func(sizeIn uint32, b1, b2 uint16) bool {
		size := units.Bytes(sizeIn%1_000_000) + 1
		budget := SpareBudget{1: units.Bytes(b1), 5: units.Bytes(b2)}
		total := budget.Total()
		parts := PlanStripes(topo, 0, size, budget)
		if size <= total {
			if parts == nil {
				return false
			}
			var sum units.Bytes
			for _, p := range parts {
				sum += p.Bytes
			}
			return sum == size
		}
		return parts == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestD2DCostMonotonicInSize: bigger tensors never swap faster.
func TestD2DCostMonotonicInSize(t *testing.T) {
	topo := hw.DGX1()
	parts := func(size units.Bytes) []fabric.Part {
		return []fabric.Part{{Peer: 3, Bytes: size / 2}, {Peer: 4, Bytes: size - size/2}}
	}
	f := func(a, b uint32) bool {
		x, y := units.Bytes(a), units.Bytes(b)
		if x > y {
			x, y = y, x
		}
		return D2DSwapCost(topo, 0, parts(x)) <= D2DSwapCost(topo, 0, parts(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHostSwapCostAlwaysAboveD2D: with NVLink reachable peers, D2D is
// strictly faster at any size (the Table III premise).
func TestHostSwapCostAlwaysAboveD2D(t *testing.T) {
	topo := hw.DGX1()
	f := func(sizeIn uint32) bool {
		size := units.Bytes(sizeIn) + 1
		d2d := D2DSwapCost(topo, 0, []fabric.Part{
			{Peer: 3, Bytes: size / 2}, {Peer: 4, Bytes: size - size/2},
		})
		return d2d < HostSwapCost(topo, size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
