// Package compaction is MPress's compaction library (paper Fig. 5):
// the cost models of the three memory-saving mechanisms — D2D swap,
// GPU-CPU swap, and recomputation — and the weighted data-striping
// planner that splits a tensor across NVLink peers in proportion to
// per-pair bandwidth (Sec. III-C).
//
// The costs here are the round-trip times the paper's Table III
// reports; the overhead of applying a mechanism to a tensor is the
// part of that cost its live interval cannot hide (Sec. III-D
// footnote 2).
package compaction

import (
	"sort"

	"mpress/internal/fabric"
	"mpress/internal/hw"
	"mpress/internal/units"
)

// RecomputeCost returns the time to rematerialize a dropped activation:
// re-running its forward computation at the GPU's sustained rate.
func RecomputeCost(flops units.FLOPs, rate units.FLOPSRate) units.Duration {
	return rate.ComputeTime(flops)
}

// HostSwapCost returns the round-trip PCIe time of swapping size bytes
// to host memory and back.
func HostSwapCost(topo *hw.Topology, size units.Bytes) units.Duration {
	oneWay := topo.PCIeLatency + topo.PCIeBW.TransferTime(size)
	return 2 * oneWay
}

// D2DSwapCost returns the round-trip time of swapping size bytes split
// as parts across NVLink peers, with every part moving in parallel
// (the slowest part bounds each direction).
func D2DSwapCost(topo *hw.Topology, src hw.DeviceID, parts []fabric.Part) units.Duration {
	var worst units.Duration
	for _, p := range parts {
		if p.Bytes == 0 {
			continue
		}
		bw := topo.PairBandwidth(src, p.Peer)
		var t units.Duration
		if bw <= 0 {
			t = topo.PCIeLatency*2 + topo.PCIeBW.TransferTime(p.Bytes)*2
		} else {
			t = topo.NVLinkLatency + bw.TransferTime(p.Bytes)
		}
		if t > worst {
			worst = t
		}
	}
	return 2 * worst
}

// Overhead is the visible delay of a mechanism applied to a tensor
// whose idle live interval is `live`: the portion of cost the interval
// cannot hide (zero when the transfer fits inside the interval).
func Overhead(cost, live units.Duration) units.Duration {
	if cost <= live {
		return 0
	}
	return cost - live
}

// SpareBudget tracks how much importable memory each GPU still offers
// to D2D swaps. It is consumed as the planner routes stripes.
type SpareBudget map[hw.DeviceID]units.Bytes

// Clone returns a deep copy.
func (b SpareBudget) Clone() SpareBudget {
	c := make(SpareBudget, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Total sums the remaining budget.
func (b SpareBudget) Total() units.Bytes {
	var t units.Bytes
	for _, v := range b {
		t += v
	}
	return t
}

// PlanStripes splits a tensor of `size` bytes from GPU src across the
// NVLink-reachable peers that still have spare budget, weighting each
// peer's share by the pair bandwidth (the paper's weighted data
// stripping for asymmetric DGX-1 topologies; on symmetric topologies
// every reachable peer weighs the same, yielding the equal split of
// Sec. III-C). Budgets of the chosen peers are debited.
//
// It returns nil if the reachable spare cannot hold the whole tensor —
// partial D2D swaps are not worth their bookkeeping (the planner falls
// back to another mechanism instead).
func PlanStripes(topo *hw.Topology, src hw.DeviceID, size units.Bytes, budget SpareBudget) []fabric.Part {
	if size <= 0 {
		return nil
	}
	type peer struct {
		id    hw.DeviceID
		lanes int
		avail units.Bytes
	}
	var peers []peer
	var reachable units.Bytes
	for _, n := range topo.NVLinkNeighbors(src) {
		if avail := budget[n]; avail > 0 {
			peers = append(peers, peer{id: n, lanes: topo.LanesBetween(src, n), avail: avail})
			reachable += avail
		}
	}
	if reachable < size || len(peers) == 0 {
		return nil
	}
	// Deterministic order: more lanes first, then lower GPU index, so
	// the fastest links carry the most data.
	sort.Slice(peers, func(i, j int) bool {
		if peers[i].lanes != peers[j].lanes {
			return peers[i].lanes > peers[j].lanes
		}
		return peers[i].id < peers[j].id
	})
	// Water-fill by lane weight, respecting per-peer budgets.
	parts := make([]fabric.Part, 0, len(peers))
	remaining := size
	active := append([]peer(nil), peers...)
	shares := make(map[hw.DeviceID]units.Bytes)
	for remaining > 0 && len(active) > 0 {
		totalLanes := 0
		for _, p := range active {
			totalLanes += p.lanes
		}
		var next []peer
		distributed := units.Bytes(0)
		for i, p := range active {
			share := remaining * units.Bytes(p.lanes) / units.Bytes(totalLanes)
			if i == len(active)-1 {
				share = remaining - distributed // absorb rounding
			}
			if share >= p.avail {
				shares[p.id] += p.avail
				distributed += p.avail
			} else {
				shares[p.id] += share
				distributed += share
				p.avail -= share
				next = append(next, p)
			}
		}
		remaining -= distributed
		if distributed == 0 {
			break
		}
		active = next
	}
	if remaining > 0 {
		return nil
	}
	for _, p := range peers {
		if s := shares[p.id]; s > 0 {
			parts = append(parts, fabric.Part{Peer: p.id, Bytes: s})
			budget[p.id] -= s
		}
	}
	return parts
}

// UnplanStripes returns previously debited budget (used when the
// planner rolls back a D2D assignment).
func UnplanStripes(budget SpareBudget, parts []fabric.Part) {
	for _, p := range parts {
		budget[p.Peer] += p.Bytes
	}
}

// EqualStripes splits size evenly across the given peers without
// budget accounting — the naive, unweighted striping used as the
// ablation baseline in Fig. 9.
func EqualStripes(peers []hw.DeviceID, size units.Bytes) []fabric.Part {
	if len(peers) == 0 || size <= 0 {
		return nil
	}
	per := size / units.Bytes(len(peers))
	parts := make([]fabric.Part, len(peers))
	var used units.Bytes
	for i, p := range peers {
		b := per
		if i == len(peers)-1 {
			b = size - used
		}
		parts[i] = fabric.Part{Peer: p, Bytes: b}
		used += b
	}
	return parts
}

// SingleStripe routes the whole tensor to one peer — the "no data
// stripping" ablation of Fig. 9.
func SingleStripe(peer hw.DeviceID, size units.Bytes) []fabric.Part {
	return []fabric.Part{{Peer: peer, Bytes: size}}
}
