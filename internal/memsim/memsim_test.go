package memsim

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"mpress/internal/units"
)

func TestAllocReleasePeak(t *testing.T) {
	d := NewDevice("gpu0", 100)
	if err := d.Alloc(60, "a"); err != nil {
		t.Fatal(err)
	}
	if err := d.Alloc(30, "b"); err != nil {
		t.Fatal(err)
	}
	if d.InUse() != 90 || d.Peak() != 90 || d.Free() != 10 {
		t.Errorf("inUse=%d peak=%d free=%d", d.InUse(), d.Peak(), d.Free())
	}
	d.Release(60)
	if d.InUse() != 30 || d.Peak() != 90 {
		t.Errorf("after release: inUse=%d peak=%d", d.InUse(), d.Peak())
	}
	st := d.Stats()
	if st.Allocs != 2 || st.Frees != 1 || st.Name != "gpu0" {
		t.Errorf("stats = %+v", st)
	}
}

func TestOOM(t *testing.T) {
	d := NewDevice("gpu1", 100)
	d.MustAlloc(80, "base")
	err := d.Alloc(40, "activation t3")
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want OOMError, got %v", err)
	}
	if oom.Device != "gpu1" || oom.Requested != 40 || oom.InUse != 80 || oom.Capacity != 100 {
		t.Errorf("oom fields = %+v", oom)
	}
	if !strings.Contains(oom.Error(), "activation t3") {
		t.Errorf("error message should name the allocation: %v", oom)
	}
	// Failed allocation must not change usage.
	if d.InUse() != 80 {
		t.Errorf("inUse after failed alloc = %d", d.InUse())
	}
}

func TestUnboundedDevice(t *testing.T) {
	d := NewDevice("host", 0)
	if err := d.Alloc(units.Bytes(1)<<50, "huge"); err != nil {
		t.Fatalf("unbounded device must not OOM: %v", err)
	}
	if d.Free() <= 0 {
		t.Error("unbounded free must be large")
	}
}

func TestReleaseTooMuchPanics(t *testing.T) {
	d := NewDevice("gpu", 100)
	d.MustAlloc(10, "x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on over-release")
		}
	}()
	d.Release(20)
}

func TestNegativeAllocPanics(t *testing.T) {
	d := NewDevice("gpu", 100)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative alloc")
		}
	}()
	_ = d.Alloc(-1, "bad")
}

func TestMustAllocPanicsOnOOM(t *testing.T) {
	d := NewDevice("gpu", 10)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.MustAlloc(20, "x")
}

func TestPinnedPoolReuse(t *testing.T) {
	host := NewDevice("host", 1000)
	p := NewPinnedPool(host)
	b1, err := p.Get(100)
	if err != nil || b1 != 100 {
		t.Fatalf("Get = %d, %v", b1, err)
	}
	if p.Misses() != 1 || p.Hits() != 0 {
		t.Errorf("hits/misses = %d/%d", p.Hits(), p.Misses())
	}
	p.Put(b1)
	if p.Retained() != 1 {
		t.Errorf("retained = %d", p.Retained())
	}
	// A smaller request reuses the retained 100-byte buffer.
	b2, err := p.Get(50)
	if err != nil || b2 != 100 {
		t.Fatalf("Get(50) = %d, %v; want reused 100", b2, err)
	}
	if p.Hits() != 1 {
		t.Errorf("hits = %d, want 1", p.Hits())
	}
	// Host usage unchanged by the reuse.
	if host.InUse() != 100 {
		t.Errorf("host in use = %d, want 100", host.InUse())
	}
}

func TestPinnedPoolBestFit(t *testing.T) {
	host := NewDevice("host", 0)
	p := NewPinnedPool(host)
	big, _ := p.Get(300)
	small, _ := p.Get(100)
	p.Put(big)
	p.Put(small)
	got, _ := p.Get(80)
	if got != 100 {
		t.Errorf("best fit picked %d, want 100", got)
	}
}

func TestPinnedPoolOOMPropagates(t *testing.T) {
	host := NewDevice("host", 50)
	p := NewPinnedPool(host)
	if _, err := p.Get(100); err == nil {
		t.Error("expected OOM from host")
	}
}

func TestPinnedPoolDrain(t *testing.T) {
	host := NewDevice("host", 0)
	p := NewPinnedPool(host)
	a, _ := p.Get(100)
	b, _ := p.Get(200)
	p.Put(a)
	p.Put(b)
	freed := p.Drain()
	if freed != 300 {
		t.Errorf("drained %d, want 300", freed)
	}
	if host.InUse() != 0 {
		t.Errorf("host in use after drain = %d", host.InUse())
	}
	if p.Retained() != 0 {
		t.Errorf("retained after drain = %d", p.Retained())
	}
}

// Property: any interleaving of allocs and releases keeps
// peak >= inUse and never lets a strict device exceed capacity.
func TestDeviceInvariants(t *testing.T) {
	f := func(ops []int16) bool {
		d := NewDevice("g", 1000)
		var live []units.Bytes
		for _, op := range ops {
			if op >= 0 {
				size := units.Bytes(op % 500)
				if d.Alloc(size, "x") == nil {
					live = append(live, size)
				}
			} else if len(live) > 0 {
				d.Release(live[len(live)-1])
				live = live[:len(live)-1]
			}
			if d.InUse() > 1000 || d.Peak() < d.InUse() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
