// Package memsim models memory capacity during simulation: per-device
// GPU memory accounting with out-of-memory detection, and the host
// pinned-memory pool MPress uses as swap space (paper Sec. III-E,
// "Memory management").
//
// Like the rest of the simulator, no payload bytes are stored — only
// sizes. Allocations are named so OOM reports can say what overflowed.
package memsim

import (
	"fmt"
	"sort"

	"mpress/internal/units"
)

// OOMError reports an allocation that exceeded a device's capacity —
// the simulator's version of CUDA's out-of-memory error, rendered as
// the red crosses in the paper's Fig. 7.
type OOMError struct {
	Device    string
	Requested units.Bytes
	InUse     units.Bytes
	Capacity  units.Bytes
	What      string
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("memsim: %s out of memory allocating %v for %q (in use %v of %v)",
		e.Device, e.Requested, e.What, e.InUse, e.Capacity)
}

// Device tracks one memory device (a GPU's HBM, host DRAM, or an NVMe
// namespace): current usage, high-water mark, and capacity.
type Device struct {
	name     string
	capacity units.Bytes
	inUse    units.Bytes
	peak     units.Bytes
	allocs   int64
	frees    int64
	// strict disables capacity checks when false (used by planning
	// passes that need to measure demand beyond capacity).
	strict bool
}

// NewDevice creates a device with the given capacity. A zero or
// negative capacity means "unbounded" and disables OOM checks.
func NewDevice(name string, capacity units.Bytes) *Device {
	return &Device{name: name, capacity: capacity, strict: capacity > 0}
}

// Name returns the device's label.
func (d *Device) Name() string { return d.name }

// Capacity returns the configured capacity (0 = unbounded).
func (d *Device) Capacity() units.Bytes { return d.capacity }

// InUse returns current usage.
func (d *Device) InUse() units.Bytes { return d.inUse }

// Peak returns the high-water mark.
func (d *Device) Peak() units.Bytes { return d.peak }

// Free returns remaining capacity, or a very large value if unbounded.
func (d *Device) Free() units.Bytes {
	if !d.strict {
		return units.Bytes(1) << 62
	}
	return d.capacity - d.inUse
}

// Alloc reserves size bytes tagged what. It returns an *OOMError if
// the device is strict and the allocation would exceed capacity.
func (d *Device) Alloc(size units.Bytes, what string) error {
	if size < 0 {
		panic(fmt.Sprintf("memsim: negative allocation %d on %s", size, d.name))
	}
	if d.strict && d.inUse+size > d.capacity {
		return &OOMError{
			Device:    d.name,
			Requested: size,
			InUse:     d.inUse,
			Capacity:  d.capacity,
			What:      what,
		}
	}
	d.inUse += size
	d.allocs++
	if d.inUse > d.peak {
		d.peak = d.inUse
	}
	return nil
}

// MustAlloc is Alloc for callers who have already checked capacity;
// it panics on OOM.
func (d *Device) MustAlloc(size units.Bytes, what string) {
	if err := d.Alloc(size, what); err != nil {
		panic(err)
	}
}

// Release returns size bytes. Releasing more than is in use panics —
// it always indicates an accounting bug in the caller.
func (d *Device) Release(size units.Bytes) {
	if size < 0 {
		panic(fmt.Sprintf("memsim: negative release %d on %s", size, d.name))
	}
	if size > d.inUse {
		panic(fmt.Sprintf("memsim: %s releasing %v with only %v in use", d.name, size, d.inUse))
	}
	d.inUse -= size
	d.frees++
}

// Stats summarizes a device's activity.
type Stats struct {
	Name     string
	Capacity units.Bytes
	InUse    units.Bytes
	Peak     units.Bytes
	Allocs   int64
	Frees    int64
}

// Stats returns a snapshot of counters.
func (d *Device) Stats() Stats {
	return Stats{
		Name:     d.name,
		Capacity: d.capacity,
		InUse:    d.inUse,
		Peak:     d.peak,
		Allocs:   d.allocs,
		Frees:    d.frees,
	}
}

// PinnedPool models the host pinned-memory pool of Sec. III-E: pinned
// buffers are expensive to create, so the pool retains freed buffers
// and reuses the smallest sufficient one (best fit).
type PinnedPool struct {
	host *Device
	// free holds retained buffer sizes, sorted ascending.
	free   []units.Bytes
	hits   int64
	misses int64
}

// NewPinnedPool creates a pool drawing from host.
func NewPinnedPool(host *Device) *PinnedPool {
	return &PinnedPool{host: host}
}

// Get acquires a pinned buffer of at least size bytes. Reusing a
// retained buffer is a hit (no new host allocation); otherwise a new
// buffer is allocated from host memory.
func (p *PinnedPool) Get(size units.Bytes) (units.Bytes, error) {
	i := sort.Search(len(p.free), func(j int) bool { return p.free[j] >= size })
	if i < len(p.free) {
		buf := p.free[i]
		p.free = append(p.free[:i], p.free[i+1:]...)
		p.hits++
		return buf, nil
	}
	if err := p.host.Alloc(size, "pinned buffer"); err != nil {
		return 0, err
	}
	p.misses++
	return size, nil
}

// Put returns a buffer (by its actual size, as returned from Get) to
// the pool for reuse. The buffer stays allocated in host memory.
func (p *PinnedPool) Put(size units.Bytes) {
	i := sort.Search(len(p.free), func(j int) bool { return p.free[j] >= size })
	p.free = append(p.free, 0)
	copy(p.free[i+1:], p.free[i:])
	p.free[i] = size
}

// Drain releases all retained buffers back to host memory and returns
// how many bytes were freed.
func (p *PinnedPool) Drain() units.Bytes {
	var total units.Bytes
	for _, b := range p.free {
		total += b
	}
	p.host.Release(total)
	p.free = p.free[:0]
	return total
}

// Hits and Misses report reuse counters.
func (p *PinnedPool) Hits() int64   { return p.hits }
func (p *PinnedPool) Misses() int64 { return p.misses }

// Retained reports the number of idle pooled buffers.
func (p *PinnedPool) Retained() int { return len(p.free) }
