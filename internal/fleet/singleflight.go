package fleet

import (
	"context"
	"sync"
)

// Group collapses concurrent identical work: the first caller for a
// key becomes the leader and runs fn, every concurrent caller for the
// same key waits on the leader's result instead of repeating the work.
// Combined with ring placement — every peer routes a fingerprint to
// the same owner — this is what makes a popular job plan once
// fleet-wide: all N peers forward to the owner, and the owner's Group
// admits exactly one execution.
//
// Entries live only while the leader runs. A caller that arrives after
// the leader finished starts fresh (the runner's plan cache makes that
// cheap); a leader failure is therefore never sticky.
type Group struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	done chan struct{}
	val  any
}

// Do runs fn for key, deduplicating against concurrent calls. shared
// reports that this caller waited on another's execution. A waiting
// caller whose ctx expires returns ctx.Err() without disturbing the
// leader.
func (g *Group) Do(ctx context.Context, key string, fn func() any) (val any, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, nil
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val = fn()
	return c.val, false, nil
}
