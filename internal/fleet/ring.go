// Package fleet coordinates N mpressd processes into one planning
// tier. Placement is a consistent-hash ring over a static membership
// list: every peer derives the same owner for every job fingerprint
// with no coordination traffic, a popular fingerprint lands on one
// owner (so its plan is computed once fleet-wide), and membership
// changes move only the departed peer's share of the keyspace. The
// ring is the routing substrate for three mechanisms layered above it
// in internal/serve and internal/serve/client: transparent peer
// forwarding, the shared plan-cache tier, and hedged client requests.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// DefaultVirtualNodes is the per-member virtual-node count. 128 points
// per peer keeps the share imbalance across a small fleet within a few
// percent while the ring stays tiny (a 16-peer ring is 2048 points).
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring over a static member list. Placement
// is fully deterministic: members are normalized and sorted before
// hashing, so every process that is handed the same membership — in
// any order — derives the identical ring and the identical owner for
// every key.
type Ring struct {
	members []string
	points  []point
}

type point struct {
	hash   uint64
	member int32
}

// NewRing builds a ring over members with vnodes virtual nodes per
// member (0 means DefaultVirtualNodes). Members are trimmed of
// trailing slashes, deduplicated and sorted; an empty list is an
// error.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	norm := NormalizeMembers(members)
	if len(norm) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one member")
	}
	r := &Ring{
		members: norm,
		points:  make([]point, 0, len(norm)*vnodes),
	}
	for i, m := range norm {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash:   hash64(fmt.Sprintf("%s#%d", m, v)),
				member: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on member index so equal hashes (vanishingly rare
		// but possible) still order identically everywhere.
		return r.points[a].member < r.points[b].member
	})
	return r, nil
}

// NormalizeMembers canonicalizes a membership list: trims whitespace
// and trailing slashes, drops empties, deduplicates and sorts. Two
// lists naming the same peers in any order normalize identically.
func NormalizeMembers(members []string) []string {
	seen := make(map[string]bool, len(members))
	norm := make([]string, 0, len(members))
	for _, m := range members {
		m = strings.TrimRight(strings.TrimSpace(m), "/")
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		norm = append(norm, m)
	}
	sort.Strings(norm)
	return norm
}

// Members returns the normalized membership, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Size is the member count.
func (r *Ring) Size() int { return len(r.members) }

// Owner returns the member that owns key: the first virtual node at or
// clockwise after the key's hash.
func (r *Ring) Owner(key string) string {
	return r.members[r.points[r.locate(key)].member]
}

// Owners returns up to n distinct members for key in ring order — the
// owner first, then the peers a hedged or failed-over request should
// try next.
func (r *Ring) Owners(key string, n int) []string {
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	for i, start := 0, r.locate(key); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// locate returns the index of the first point at or after the key's
// hash, wrapping at the top of the ring.
func (r *Ring) locate(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hash64 is the ring's point hash: the first 8 bytes of SHA-256,
// big-endian. SHA-256 keeps virtual nodes uniformly spread and is
// identical on every platform and Go release the fleet might mix.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
