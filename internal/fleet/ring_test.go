package fleet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fingerprints fabricates n key strings shaped like job fingerprints
// (hex digests), deterministically.
func fingerprints(n int) []string {
	fps := make([]string, n)
	for i := range fps {
		fps[i] = fmt.Sprintf("%032x", uint64(i)*0x9e3779b97f4a7c15+0xabcdef)
	}
	return fps
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://127.0.0.1:%d", 7323+i)
	}
	return out
}

// TestRingDeterministicPlacement is the acceptance check: the same
// membership list — in any order, with trailing slashes, with
// duplicates — yields the same owner for every one of 1000+
// fingerprints across independently built rings.
func TestRingDeterministicPlacement(t *testing.T) {
	m := members(5)
	a, err := NewRing(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed order, decorated URLs, one duplicate.
	decorated := []string{m[4] + "/", m[3], " " + m[2], m[1], m[0], m[0]}
	b, err := NewRing(decorated, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range fingerprints(1500) {
		if ao, bo := a.Owner(fp), b.Owner(fp); ao != bo {
			t.Fatalf("owner(%s) = %s vs %s across equivalent rings", fp, ao, bo)
		}
	}
}

// TestRingBoundedMovement pins the consistent-hashing contract:
// removing one peer remaps only the keys that peer owned — every other
// key keeps its owner.
func TestRingBoundedMovement(t *testing.T) {
	m := members(5)
	full, err := NewRing(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := m[2]
	shrunk, err := NewRing(append(append([]string{}, m[:2]...), m[3:]...), 0)
	if err != nil {
		t.Fatal(err)
	}
	fps := fingerprints(2000)
	moved, owned := 0, 0
	for _, fp := range fps {
		before := full.Owner(fp)
		after := shrunk.Owner(fp)
		if before == removed {
			owned++
			if after == removed {
				t.Fatalf("removed peer still owns %s", fp)
			}
			continue
		}
		if before != after {
			moved++
			t.Errorf("key %s moved %s -> %s though its owner stayed in the ring", fp, before, after)
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved beyond the removed peer's share", moved)
	}
	if owned == 0 {
		t.Fatal("test is vacuous: the removed peer owned no keys")
	}
}

// TestRingBalance sanity-checks virtual-node spreading: across 5 peers
// and 5000 keys every peer owns a nontrivial share.
func TestRingBalance(t *testing.T) {
	r, err := NewRing(members(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	fps := fingerprints(5000)
	for _, fp := range fps {
		counts[r.Owner(fp)]++
	}
	for _, m := range r.Members() {
		share := float64(counts[m]) / float64(len(fps))
		if share < 0.08 || share > 0.40 {
			t.Errorf("peer %s owns %.1f%% of keys (want a sane share around 20%%)", m, 100*share)
		}
	}
}

// TestRingOwners verifies the hedging successor list: distinct peers,
// owner first, bounded by the membership size.
func TestRingOwners(t *testing.T) {
	r, err := NewRing(members(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range fingerprints(100) {
		owners := r.Owners(fp, 5)
		if len(owners) != 3 {
			t.Fatalf("owners = %v, want all 3 distinct peers", owners)
		}
		if owners[0] != r.Owner(fp) {
			t.Fatalf("owners[0] = %s, owner = %s", owners[0], r.Owner(fp))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate peer in owners %v", owners)
			}
			seen[o] = true
		}
	}
}

func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty membership should be rejected")
	}
	if _, err := NewRing([]string{"  ", "/"}, 0); err == nil {
		t.Fatal("blank membership should be rejected")
	}
}

func TestFleetSelfAndVersion(t *testing.T) {
	m := members(3)
	f, err := New(m[1]+"/", m, "epoch-a")
	if err != nil {
		t.Fatal(err)
	}
	if f.Self() != m[1] {
		t.Errorf("self = %q", f.Self())
	}
	if !f.IsSelf(m[1]) || f.IsSelf(m[0]) {
		t.Error("IsSelf misidentifies peers")
	}
	if f.Size() != 3 || len(f.Peers()) != 3 {
		t.Errorf("size = %d", f.Size())
	}

	// Same membership + epoch agree on the version; different epochs or
	// membership do not (that disagreement is the invalidation).
	same, err := New(m[0], []string{m[2] + "/", m[1], m[0]}, "epoch-a")
	if err != nil {
		t.Fatal(err)
	}
	if same.Version() != f.Version() {
		t.Errorf("equivalent fleets disagree on version: %s vs %s", same.Version(), f.Version())
	}
	bumped, _ := New(m[0], m, "epoch-b")
	if bumped.Version() == f.Version() {
		t.Error("epoch bump did not change the cache version")
	}
	grown, _ := New(m[0], members(4), "epoch-a")
	if grown.Version() == f.Version() {
		t.Error("membership change did not change the cache version")
	}

	if _, err := New("http://elsewhere:1", m, "x"); err == nil {
		t.Error("self outside the membership should be rejected")
	}
}

// TestGroupSingleflight runs 32 concurrent calls for one key through a
// slow fn: exactly one executes, 31 share, and all see the same value.
func TestGroupSingleflight(t *testing.T) {
	var g Group
	var executions atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func() any {
		executions.Add(1)
		close(started)
		<-release
		return "result"
	}

	const n = 32
	var wg sync.WaitGroup
	vals := make([]any, n)
	shares := make([]bool, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		vals[0], shares[0], _ = g.Do(context.Background(), "k", fn)
	}()
	<-started // leader is inside fn; everyone else must share
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], shares[i], _ = g.Do(context.Background(), "k", fn)
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let followers reach the wait
	close(release)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	sharedCount := 0
	for i := range vals {
		if vals[i] != "result" {
			t.Fatalf("caller %d got %v", i, vals[i])
		}
		if shares[i] {
			sharedCount++
		}
	}
	if sharedCount != n-1 {
		t.Errorf("shared = %d, want %d", sharedCount, n-1)
	}

	// The entry is gone after completion: a late caller leads again.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, shared, _ := g.Do(context.Background(), "k", func() any { return "again" }); shared {
			t.Error("post-completion caller should not share")
		}
	}()
	<-done
	if executions.Load() != 1 {
		t.Error("second fn should have been a fresh closure")
	}
}

// TestGroupWaiterTimeout: a follower whose context expires unblocks
// with the context error while the leader keeps running.
func TestGroupWaiterTimeout(t *testing.T) {
	var g Group
	started := make(chan struct{})
	release := make(chan struct{})
	go g.Do(context.Background(), "k", func() any { close(started); <-release; return 1 })
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, shared, err := g.Do(ctx, "k", func() any { return 2 })
	if !shared || err == nil {
		t.Fatalf("shared=%v err=%v, want timed-out follower", shared, err)
	}
	close(release)
}
