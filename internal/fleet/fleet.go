package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// wireVersion is folded into every cache-tier version so incompatible
// plan wire formats never exchange entries, even at the same epoch.
const wireVersion = "mpress-fleet-v1"

// Fleet is one peer's view of a static-membership planning tier: the
// consistent-hash ring plus this process's own identity and the
// cache-tier version. A nil *Fleet means "not in a fleet" throughout
// the serving layer.
type Fleet struct {
	self    string
	ring    *Ring
	epoch   string
	version string
}

// New builds a peer's fleet view. self must appear in members (after
// normalization); epoch is the operator-bumped cache-invalidation
// token — change it when topologies or config presets change meaning,
// and every cross-peer cache exchange from the old epoch is refused.
func New(self string, members []string, epoch string) (*Fleet, error) {
	ring, err := NewRing(members, 0)
	if err != nil {
		return nil, err
	}
	self = strings.TrimRight(strings.TrimSpace(self), "/")
	found := false
	for _, m := range ring.Members() {
		if m == self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("fleet: self %q is not in the membership %v", self, ring.Members())
	}
	return &Fleet{self: self, ring: ring, epoch: epoch, version: versionOf(ring, epoch)}, nil
}

// versionOf digests the normalized membership and epoch. Peers with
// the same membership and epoch agree on the version; any divergence
// (a misconfigured peer list, a stale epoch) makes cache exchanges
// fail closed instead of serving plans across incompatible views.
func versionOf(r *Ring, epoch string) string {
	var b strings.Builder
	b.WriteString(wireVersion)
	b.WriteByte('|')
	b.WriteString(epoch)
	for _, m := range r.Members() {
		b.WriteByte('|')
		b.WriteString(m)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:8])
}

// Self is this process's own base URL, normalized.
func (f *Fleet) Self() string { return f.self }

// Version is the cache-tier compatibility token carried on every
// cross-peer cache request and checked by the receiver.
func (f *Fleet) Version() string { return f.version }

// Epoch returns the operator-set invalidation epoch.
func (f *Fleet) Epoch() string { return f.epoch }

// Ring exposes the placement ring (for clients embedded in tools).
func (f *Fleet) Ring() *Ring { return f.ring }

// Size is the membership size.
func (f *Fleet) Size() int { return f.ring.Size() }

// Peers returns every member, sorted.
func (f *Fleet) Peers() []string { return f.ring.Members() }

// Owner returns the peer that owns key on the ring.
func (f *Fleet) Owner(key string) string { return f.ring.Owner(key) }

// IsSelf reports whether peer is this process.
func (f *Fleet) IsSelf(peer string) bool {
	return strings.TrimRight(peer, "/") == f.self
}
