package grid

import (
	"testing"

	"mpress/internal/hw"
	"mpress/internal/units"
)

// TestGridCoversWorld is the factorization property test: for every
// legal (topology, nodes, tp) factorization, mapping each coordinate
// of the shape to its rank and device must cover the world exactly
// once — no overlaps, no holes.
func TestGridCoversWorld(t *testing.T) {
	topos := []*hw.Topology{hw.DGX1(), hw.DGX2(), hw.GraceHopper()}
	for _, topo := range topos {
		for nodes := 1; nodes <= 3; nodes++ {
			for tp := 1; tp <= topo.NumGPUs; tp++ {
				if topo.NumGPUs%tp != 0 {
					continue
				}
				g, err := New(topo, nodes, tp, 1)
				if err != nil {
					// Non-island groupings are legitimately rejected on
					// direct fabrics; they must not cover anything.
					continue
				}
				world := g.Shape.World()
				if want := nodes * topo.NumGPUs; world != want {
					t.Fatalf("%s tp=%d nodes=%d: world %d, want %d", topo.Name, tp, nodes, world, want)
				}
				seenRank := make(map[int]bool, world)
				seenDev := make(map[hw.NodeDevice]bool, world)
				for dp := 0; dp < g.Shape.DP; dp++ {
					for pp := 0; pp < g.Shape.PP; pp++ {
						for cp := 0; cp < g.Shape.CP; cp++ {
							for tpr := 0; tpr < g.Shape.TP; tpr++ {
								c := Coord{TP: tpr, PP: pp, DP: dp, CP: cp}
								r := g.Shape.Rank(c)
								if r < 0 || r >= world {
									t.Fatalf("%v: rank %d outside world %d", c, r, world)
								}
								if seenRank[r] {
									t.Fatalf("%v: rank %d assigned twice", c, r)
								}
								seenRank[r] = true
								if got := g.Shape.CoordOf(r); got != c {
									t.Fatalf("CoordOf(Rank(%v)) = %v", c, got)
								}
								nd := g.Device(c)
								if err := nd.Validate(nodes, topo); err != nil {
									t.Fatalf("%v → %v: %v", c, nd, err)
								}
								if seenDev[nd] {
									t.Fatalf("%v: device %v assigned twice", c, nd)
								}
								seenDev[nd] = true
								if got := g.CoordOf(nd); got != c {
									t.Fatalf("CoordOf(Device(%v)) = %v", c, got)
								}
							}
						}
					}
				}
				if len(seenRank) != world || len(seenDev) != world {
					t.Fatalf("%s tp=%d nodes=%d: covered %d ranks / %d devices, want %d",
						topo.Name, tp, nodes, len(seenRank), len(seenDev), world)
				}
			}
		}
	}
}

// TestPlaneIdentityAtDegreeOne pins the refactor's safety net: with
// TP·CP == 1 the plane topology is the *same pointer* as the input, so
// every downstream component sees literally the pre-grid inputs.
func TestPlaneIdentityAtDegreeOne(t *testing.T) {
	topo := hw.DGX1()
	g, err := New(topo, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Plane() != topo {
		t.Fatalf("plane at TP=1 is a copy, want the original pointer")
	}
}

// TestPlaneDerivation checks the TP=2 representative plane on DGX-1:
// half the devices, halved host share, representative lane counts.
func TestPlaneDerivation(t *testing.T) {
	topo := hw.DGX1()
	g, err := New(topo, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := g.Plane()
	if p.NumGPUs != 4 {
		t.Fatalf("plane has %d GPUs, want 4", p.NumGPUs)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("plane topology invalid: %v", err)
	}
	if want := topo.HostMemory / 2; p.HostMemory != want {
		t.Fatalf("plane host memory %v, want %v", p.HostMemory, want)
	}
	// Plane device i represents physical device 2i.
	for i := 0; i < p.NumGPUs; i++ {
		for j := 0; j < p.NumGPUs; j++ {
			want := topo.LanesBetween(hw.DeviceID(2*i), hw.DeviceID(2*j))
			if got := p.LanesBetween(hw.DeviceID(i), hw.DeviceID(j)); got != want {
				t.Fatalf("plane lanes (%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
	if bw := g.TPRingBandwidth(); bw <= 0 || bw > units.Bandwidth(float64(topo.NVLinkLaneBW)*float64(topo.LanesPerGPU)) {
		t.Fatalf("implausible TP ring bandwidth %v", bw)
	}
}

// TestIslandValidation: on DGX-1's cube mesh, TP=2 and TP=4 groups are
// islands, TP=8's naive ring is not (gpu7 and gpu0 share no lanes);
// the switched DGX-2 accepts everything.
func TestIslandValidation(t *testing.T) {
	if _, err := New(hw.DGX1(), 1, 2, 1); err != nil {
		t.Fatalf("DGX-1 tp=2: %v", err)
	}
	if _, err := New(hw.DGX1(), 1, 4, 1); err != nil {
		t.Fatalf("DGX-1 tp=4: %v", err)
	}
	if _, err := New(hw.DGX1(), 1, 8, 1); err == nil {
		t.Fatal("DGX-1 tp=8 accepted, want NVLink-island rejection")
	}
	if _, err := New(hw.DGX2(), 1, 8, 1); err != nil {
		t.Fatalf("DGX-2 tp=8: %v", err)
	}
}

// TestStubAxes pins the CP stub and divisibility errors.
func TestStubAxes(t *testing.T) {
	if _, err := New(hw.DGX1(), 1, 1, 2); err == nil {
		t.Fatal("cp=2 accepted, want stub-axis rejection")
	}
	if _, err := New(hw.DGX1(), 1, 3, 1); err == nil {
		t.Fatal("tp=3 accepted on 8 GPUs, want divisibility rejection")
	}
	if _, err := New(hw.DGX1(), 1, 0, 1); err == nil {
		t.Fatal("tp=0 accepted, want rejection")
	}
}

// TestPlacement checks plane→physical shard expansion.
func TestPlacement(t *testing.T) {
	g := MustNew(hw.DGX1(), 1, 2, 1)
	// Stage 1 on plane device 3 → physical group {6, 7}.
	p := g.Place([]hw.DeviceID{0, 3})
	if got := p.GPU(1); got != 3 {
		t.Fatalf("GPU(1) = %v, want 3", got)
	}
	if got := p.Shard(1, 1); got != (hw.NodeDevice{Node: 0, Device: 7}) {
		t.Fatalf("Shard(1,1) = %v, want n0/gpu7", got)
	}
	shards := p.Shards(1)
	if len(shards) != 2 || shards[0].Device != 6 || shards[1].Device != 7 {
		t.Fatalf("Shards(1) = %v, want [n0/gpu6 n0/gpu7]", shards)
	}
	flat := Flat([]hw.DeviceID{2, 5})
	if got := flat.Shard(0, 0); got != (hw.NodeDevice{Node: 0, Device: 2}) {
		t.Fatalf("flat Shard(0,0) = %v", got)
	}
}
