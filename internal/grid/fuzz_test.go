package grid

import "testing"

// FuzzCoordRank round-trips Coord ↔ linear rank over arbitrary shapes
// — the Load(Save)-style invariant for the grid's linearization: for
// every in-shape coordinate, CoordOf(Rank(c)) == c and Rank stays
// inside [0, World).
func FuzzCoordRank(f *testing.F) {
	f.Add(2, 4, 2, 1, 1, 3, 1, 0)
	f.Add(1, 8, 1, 1, 0, 7, 0, 0)
	f.Add(4, 2, 3, 2, 3, 1, 2, 1)
	f.Fuzz(func(t *testing.T, tp, pp, dp, cp, ct, cpp, cdp, ccp int) {
		s := Shape{TP: tp, PP: pp, DP: dp, CP: cp}
		if tp < 1 || pp < 1 || dp < 1 || cp < 1 || s.World() > 1<<16 || s.World() < 0 {
			t.Skip()
		}
		c := Coord{TP: ct, PP: cpp, DP: cdp, CP: ccp}
		if !s.Valid(c) {
			// Out-of-shape coordinates are the caller's bug; the
			// round-trip contract only covers valid ones.
			t.Skip()
		}
		r := s.Rank(c)
		if r < 0 || r >= s.World() {
			t.Fatalf("Rank(%v) = %d outside world %d of %v", c, r, s.World(), s)
		}
		if got := s.CoordOf(r); got != c {
			t.Fatalf("CoordOf(Rank(%v)) = %v under %v", c, got, s)
		}
		// And the other direction: every rank maps back into shape.
		c2 := s.CoordOf(r)
		if !s.Valid(c2) {
			t.Fatalf("CoordOf(%d) = %v escapes shape %v", r, c2, s)
		}
	})
}
