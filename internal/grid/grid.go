// Package grid factors a cluster's device world into a 4D
// shard-coordinate grid — (TP, PP, DP, CP) — generalizing the flat
// `stage → GPU` placement MPress was built around (ROADMAP item 1).
//
// The axes follow the Megatron-style model-parallel-unit decomposition:
//
//   - TP (tensor parallel): intra-layer sharding. A TP group is pinned
//     inside one NVLink island — its ranks exchange per-operator
//     all-reduces, which only NVLink bandwidth makes affordable.
//   - PP (pipeline parallel): MPress's inter-operator axis. PP groups
//     span TP groups within one node.
//   - DP (data parallel): whole-pipeline replicas, one per node,
//     synchronized over the inter-node fabric (internal/cluster).
//   - CP (context parallel): sequence sharding. The axis exists so the
//     coordinate space is complete; only degree 1 is validated today
//     (ring-attention communication modeling is deferred).
//
// Because TP (and CP) ranks of one group do symmetric work on
// symmetric shards, the simulator models one representative rank per
// group — the "plane": a derived topology whose devices are the
// rank-0 representatives. When TP·CP == 1 the plane *is* the original
// topology (the same pointer), so the entire planner/executor stack
// runs byte-identically to the pre-grid code.
package grid

import (
	"fmt"

	"mpress/internal/hw"
	"mpress/internal/units"
)

// Coord addresses one shard of the 4D parallelism grid.
type Coord struct {
	TP int `json:"tp"`
	PP int `json:"pp"`
	DP int `json:"dp"`
	CP int `json:"cp"`
}

// String renders the coordinate, e.g. "(tp1,pp3,dp0,cp0)".
func (c Coord) String() string {
	return fmt.Sprintf("(tp%d,pp%d,dp%d,cp%d)", c.TP, c.PP, c.DP, c.CP)
}

// Shape is the degree of each axis; its product is the world size.
type Shape struct {
	TP int `json:"tp"`
	PP int `json:"pp"`
	DP int `json:"dp"`
	CP int `json:"cp"`
}

// World returns the total shard count TP×PP×DP×CP.
func (s Shape) World() int { return s.TP * s.PP * s.DP * s.CP }

// Valid reports whether c lies inside the shape.
func (s Shape) Valid(c Coord) bool {
	return c.TP >= 0 && c.TP < s.TP &&
		c.PP >= 0 && c.PP < s.PP &&
		c.DP >= 0 && c.DP < s.DP &&
		c.CP >= 0 && c.CP < s.CP
}

// Rank linearizes a coordinate: TP fastest, then CP, then PP, then DP
// slowest — so one TP group is a contiguous device run inside a node,
// and DP strides across nodes. The inverse is CoordOf.
func (s Shape) Rank(c Coord) int {
	return ((c.DP*s.PP+c.PP)*s.CP+c.CP)*s.TP + c.TP
}

// CoordOf inverts Rank.
func (s Shape) CoordOf(rank int) Coord {
	var c Coord
	c.TP = rank % s.TP
	rank /= s.TP
	c.CP = rank % s.CP
	rank /= s.CP
	c.PP = rank % s.PP
	c.DP = rank / s.PP
	return c
}

// String renders the factorization, e.g.
// "world 16 = TP(2) × PP(4) × DP(2) × CP(1)".
func (s Shape) String() string {
	return fmt.Sprintf("world %d = TP(%d) × PP(%d) × DP(%d) × CP(%d)",
		s.World(), s.TP, s.PP, s.DP, s.CP)
}

// Grid factors a cluster's device world — `nodes` replicas of one
// server topology — into process groups along the four axes.
type Grid struct {
	Shape Shape
	// Topo is the physical per-node server topology.
	Topo *hw.Topology

	plane *hw.Topology
}

// New validates and builds the grid: TP·CP must divide the server's
// GPU count (PP = NumGPUs/(TP·CP) falls out), DP is the node count,
// and every TP group must form an NVLink island — consecutive ring
// members directly connected — because per-operator all-reduces are
// only viable over NVLink.
func New(topo *hw.Topology, nodes, tp, cp int) (*Grid, error) {
	if topo == nil {
		return nil, fmt.Errorf("grid: topology is required")
	}
	if nodes < 1 {
		nodes = 1
	}
	if tp < 1 || cp < 1 {
		return nil, fmt.Errorf("grid: degrees must be positive (tp=%d, cp=%d)", tp, cp)
	}
	if cp != 1 {
		return nil, fmt.Errorf("grid: context parallelism is a stub axis; only CPDegree 1 is supported (got %d)", cp)
	}
	span := tp * cp
	if topo.NumGPUs%span != 0 {
		return nil, fmt.Errorf("grid: TP(%d)×CP(%d) does not divide the %d GPUs of %q", tp, cp, topo.NumGPUs, topo.Name)
	}
	g := &Grid{
		Shape: Shape{TP: tp, PP: topo.NumGPUs / span, DP: nodes, CP: cp},
		Topo:  topo,
	}
	if err := g.validateIslands(); err != nil {
		return nil, err
	}
	g.plane = derivePlane(topo, span, g.Shape)
	return g, nil
}

// MustNew is New panicking on invalid input, for tests and examples.
func MustNew(topo *hw.Topology, nodes, tp, cp int) *Grid {
	g, err := New(topo, nodes, tp, cp)
	if err != nil {
		panic(err)
	}
	return g
}

// validateIslands checks that every TP group's ring is NVLink
// connected: on a switched fabric any grouping works; on a direct
// (cube-mesh) fabric each consecutive pair of the group's ring order
// must share at least one lane.
func (g *Grid) validateIslands() error {
	if g.Shape.TP == 1 || g.Topo.Switched {
		return nil
	}
	for pp := 0; pp < g.Shape.PP; pp++ {
		for cp := 0; cp < g.Shape.CP; cp++ {
			members := g.TPGroup(pp, cp)
			for i, m := range members {
				next := members[(i+1)%len(members)]
				if m == next {
					continue
				}
				if g.Topo.LanesBetween(m, next) == 0 {
					return fmt.Errorf("grid: TP group %d (%v) is not an NVLink island on %q: %v and %v share no lanes",
						pp, members, g.Topo.Name, m, next)
				}
			}
		}
	}
	return nil
}

// Device maps a coordinate to its physical endpoint: the node is the
// DP rank, the device follows the Rank layout within the node.
func (g *Grid) Device(c Coord) hw.NodeDevice {
	d := (c.PP*g.Shape.CP+c.CP)*g.Shape.TP + c.TP
	return hw.DeviceID(d).On(c.DP)
}

// CoordOf inverts Device.
func (g *Grid) CoordOf(nd hw.NodeDevice) Coord {
	d := int(nd.Device)
	return Coord{
		TP: d % g.Shape.TP,
		CP: (d / g.Shape.TP) % g.Shape.CP,
		PP: d / (g.Shape.TP * g.Shape.CP),
		DP: nd.Node,
	}
}

// TPGroup lists the physical devices of the TP group at (pp, cp), in
// ring order (TP rank 0 first).
func (g *Grid) TPGroup(pp, cp int) []hw.DeviceID {
	out := make([]hw.DeviceID, g.Shape.TP)
	base := (pp*g.Shape.CP + cp) * g.Shape.TP
	for t := range out {
		out[t] = hw.DeviceID(base + t)
	}
	return out
}

// Representative returns the TP-rank-0 physical device of plane
// device p — the rank the simulator models for the whole group.
func (g *Grid) Representative(p hw.DeviceID) hw.DeviceID {
	return hw.DeviceID(int(p) * g.Shape.TP * g.Shape.CP)
}

// PlaneOf returns the plane device whose group hosts physical device d.
func (g *Grid) PlaneOf(d hw.DeviceID) hw.DeviceID {
	return hw.DeviceID(int(d) / (g.Shape.TP * g.Shape.CP))
}

// Plane returns the representative-rank topology the simulator runs
// on: one device per TP×CP group. When TP·CP == 1 it is the original
// *hw.Topology pointer — the identity that keeps TPDegree=1 runs
// byte-identical to pre-grid code.
func (g *Grid) Plane() *hw.Topology { return g.plane }

// derivePlane builds the representative topology. Per-pair lanes are
// the representatives' physical lanes; shared host-side resources
// (DRAM, NVMe capacity) are divided across the span since every rank
// of a group consumes its own equal share.
func derivePlane(topo *hw.Topology, span int, shape Shape) *hw.Topology {
	if span == 1 {
		return topo
	}
	p := *topo
	p.Name = fmt.Sprintf("%s[tp=%d]", topo.Name, shape.TP)
	if shape.CP > 1 {
		p.Name = fmt.Sprintf("%s[tp=%d,cp=%d]", topo.Name, shape.TP, shape.CP)
	}
	p.NumGPUs = topo.NumGPUs / span
	p.HostMemory = topo.HostMemory / units.Bytes(span)
	p.NVMeSize = topo.NVMeSize / units.Bytes(span)
	if !topo.Switched {
		lanes := make([][]int, p.NumGPUs)
		for i := range lanes {
			lanes[i] = make([]int, p.NumGPUs)
			ri := hw.DeviceID(i * span)
			for j := range lanes[i] {
				lanes[i][j] = topo.LanesBetween(ri, hw.DeviceID(j*span))
			}
		}
		p.NVLinkLanes = lanes
	}
	return &p
}

// TPRingBandwidth returns the per-hop bandwidth of the slowest TP
// ring on the server — the rate one all-reduce step runs at. Zero
// when TP == 1 (no collective runs).
func (g *Grid) TPRingBandwidth() units.Bandwidth {
	if g.Shape.TP == 1 {
		return 0
	}
	if g.Topo.Switched {
		return units.Bandwidth(float64(g.Topo.NVLinkLaneBW) * float64(g.Topo.LanesPerGPU))
	}
	minLanes := -1
	for pp := 0; pp < g.Shape.PP; pp++ {
		for cp := 0; cp < g.Shape.CP; cp++ {
			members := g.TPGroup(pp, cp)
			for i, m := range members {
				next := members[(i+1)%len(members)]
				if m == next {
					continue
				}
				if l := g.Topo.LanesBetween(m, next); minLanes < 0 || l < minLanes {
					minLanes = l
				}
			}
		}
	}
	if minLanes <= 0 {
		return 0
	}
	return units.Bandwidth(float64(g.Topo.NVLinkLaneBW) * float64(minLanes))
}

// GroupString renders one TP group's member list, e.g.
// "tp group 2 (pp=2): n0/gpu4 n0/gpu5".
func (g *Grid) GroupString(pp, cp, node int) string {
	s := fmt.Sprintf("tp group %d (pp=%d", pp, pp)
	if g.Shape.CP > 1 {
		s += fmt.Sprintf(",cp=%d", cp)
	}
	s += "):"
	for _, d := range g.TPGroup(pp, cp) {
		s += " " + d.On(node).String()
	}
	return s
}
