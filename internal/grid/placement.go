package grid

import "mpress/internal/hw"

// Placement maps pipeline stages to devices. It is the accessor layer
// that replaces direct `Mapping[s] = gpu` slice indexing (kept out of
// every other package by `make vet-grid`): the flat wire-format slice
// stays — plan files and reports serialize it unchanged — but code
// resolves stages through a Placement, which also knows how to expand
// a plane device into the physical shards of its TP×CP group.
type Placement struct {
	g    *Grid
	reps []hw.DeviceID
}

// Flat wraps a plane-space stage→device slice with no grid attached:
// plane devices are physical devices (the TP·CP == 1 world every
// pre-grid component lives in). The slice is aliased, not copied.
func Flat(mapping []hw.DeviceID) Placement {
	return Placement{reps: mapping}
}

// Place wraps a plane-space mapping with the grid that interprets it,
// so per-shard expansion (Shard, Shards) resolves physical devices.
func (g *Grid) Place(mapping []hw.DeviceID) Placement {
	return Placement{g: g, reps: mapping}
}

// Stages returns the number of mapped stages.
func (p Placement) Stages() int { return len(p.reps) }

// GPU returns the plane device hosting stage s — the TP-rank-0
// representative the simulator models. For flat placements this is
// the physical device itself.
func (p Placement) GPU(s int) hw.DeviceID { return p.reps[s] }

// Mapping returns the underlying plane-space slice (aliased), for
// serialization and wire formats.
func (p Placement) Mapping() []hw.DeviceID { return p.reps }

// Coord returns the full shard coordinate of stage s's (tp, cp)
// shard on DP rank dp. Without a grid the coordinate is the trivial
// (0, s-as-device, dp, 0) in plane space.
func (p Placement) Coord(s, tp, dp, cp int) Coord {
	if p.g == nil {
		return Coord{TP: tp, PP: int(p.reps[s]), DP: dp, CP: cp}
	}
	return Coord{TP: tp, PP: int(p.reps[s]), DP: dp, CP: cp}
}

// Shard returns the physical endpoint of stage s's TP rank tp (CP
// rank 0) on node 0. Without a grid, rank 0 is the device itself.
func (p Placement) Shard(s, tp int) hw.NodeDevice {
	if p.g == nil {
		return p.reps[s].On(0)
	}
	return p.g.Device(Coord{TP: tp, PP: int(p.reps[s]), DP: 0, CP: 0})
}

// Shards lists every physical device of stage s's TP group on node 0,
// TP rank order.
func (p Placement) Shards(s int) []hw.NodeDevice {
	if p.g == nil {
		return []hw.NodeDevice{p.reps[s].On(0)}
	}
	members := p.g.TPGroup(int(p.reps[s]), 0)
	out := make([]hw.NodeDevice, len(members))
	for i, d := range members {
		out[i] = d.On(0)
	}
	return out
}
