package mapping

import (
	"testing"
	"testing/quick"

	"mpress/internal/hw"
	"mpress/internal/units"
)

// TestEvaluatePartialPlacement: when overflow exceeds reachable spare,
// evaluate places what it can and never more.
func TestEvaluatePartialPlacement(t *testing.T) {
	topo := hw.DGX1()
	overflow := make([]units.Bytes, 8)
	spareOf := make([]units.Bytes, 8)
	overflow[0] = units.GB(100) // far beyond any spare
	spareOf[3] = units.GB(5)
	identity := make([]hw.DeviceID, 8)
	for i := range identity {
		identity[i] = hw.DeviceID(i)
	}
	placed, maxTime, score := evaluate(topo, identity, overflow, spareOf)
	if placed != units.GB(5) {
		t.Errorf("placed %v, want exactly the reachable spare", placed)
	}
	if maxTime <= 0 || score <= 0 {
		t.Errorf("degenerate result: %v %v", maxTime, score)
	}
}

// TestEvaluateNoSpareScoresZero: nothing reachable, nothing placed.
func TestEvaluateNoSpareScoresZero(t *testing.T) {
	topo := hw.DGX1()
	overflow := make([]units.Bytes, 8)
	overflow[0] = units.GB(10)
	identity := make([]hw.DeviceID, 8)
	for i := range identity {
		identity[i] = hw.DeviceID(i)
	}
	placed, _, score := evaluate(topo, identity, overflow, make([]units.Bytes, 8))
	if placed != 0 || score != 0 {
		t.Errorf("placed %v score %v, want zero", placed, score)
	}
}

// TestSearchScoreNeverNegativeProperty: any demand vector yields a
// non-negative score and a complete mapping.
func TestSearchScoreNeverNegativeProperty(t *testing.T) {
	topo := hw.DGX1()
	f := func(d0, d1, d2, d3, d4, d5, d6, d7 uint8) bool {
		demands := []units.Bytes{
			units.GB(float64(d0) / 4), units.GB(float64(d1) / 4),
			units.GB(float64(d2) / 4), units.GB(float64(d3) / 4),
			units.GB(float64(d4) / 4), units.GB(float64(d5) / 4),
			units.GB(float64(d6) / 4), units.GB(float64(d7) / 4),
		}
		r, err := Search(topo, demands)
		if err != nil || r.Score < 0 || len(r.Mapping) != 8 {
			return false
		}
		used := map[hw.DeviceID]bool{}
		for _, g := range r.Mapping {
			if used[g] {
				return false
			}
			used[g] = true
		}
		for _, v := range r.Spare {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
