// Package mapping implements the device-mapping search of paper
// Fig. 6: choose which GPU hosts which pipeline stage so that
// overflowing (early) stages sit next to NVLink neighbors with spare
// memory, maximizing the bandwidth available to D2D swaps.
//
// The search enumerates stage→GPU assignments, and for each one
// distributes the importers' spare memory over the reachable
// exporters, scoring the assignment by the ratio of revenue (bytes
// offloadable over NVLink) to cost (the slowest exporter's one-way
// transfer time). Symmetric (switched) topologies skip the search:
// every mapping is equivalent there (Sec. III-C).
package mapping

import (
	"fmt"
	"time"

	"mpress/internal/hw"
	"mpress/internal/units"
)

// SpareMargin is headroom kept free on every importer so that imported
// stripes never push a light-loaded GPU into OOM.
const SpareMargin = units.Bytes(512) * units.MiB

// InfeasibleError reports a placement that cannot exist: more
// pipeline stages than devices to host them. It is a typed error so
// service layers can classify it as a caller mistake (HTTP 400)
// instead of crashing — the condition is reachable from user input
// (e.g. Stages > the TP plane's device count) and from degraded
// replans after GPU failures.
type InfeasibleError struct {
	Stages int
	GPUs   int
}

// Error describes the infeasibility.
func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("mapping: %d stages exceed the %d available GPUs", e.Stages, e.GPUs)
}

// Result describes the chosen mapping.
type Result struct {
	// Mapping lists, per stage, the GPU hosting it (plane-space; see
	// internal/grid.Placement for shard expansion).
	Mapping []hw.DeviceID
	// Spare[g] is the remaining import budget of each GPU under this
	// mapping (after the margin), for the planner to consume.
	Spare map[hw.DeviceID]units.Bytes
	// Score is revenue/cost of the winning assignment (+Inf conceptually
	// when there is no overflow; represented as Score == 0 with
	// NoOverflow == true).
	Score      float64
	NoOverflow bool
	// Placed is how many overflow bytes the winning assignment can
	// host over NVLink; MaxTime the slowest exporter's one-way time.
	Placed  units.Bytes
	MaxTime units.Duration
	// Searched counts assignments evaluated; Elapsed is wall time.
	Searched int
	Elapsed  time.Duration
}

// Search finds the best stage→GPU assignment for the given per-stage
// memory demands (profiler output). demands[s] is stage s's peak; the
// GPU capacity comes from topo. A demand list longer than the device
// count returns an *InfeasibleError.
func Search(topo *hw.Topology, demands []units.Bytes) (*Result, error) {
	start := time.Now()
	n := topo.NumGPUs
	S := len(demands)
	if S > n {
		return nil, &InfeasibleError{Stages: S, GPUs: n}
	}
	cap := topo.GPU.Memory

	overflow := make([]units.Bytes, S)
	spareOf := make([]units.Bytes, S)
	anyOverflow := false
	for s, d := range demands {
		if d > cap {
			overflow[s] = d - cap
			anyOverflow = true
		} else if free := cap - d; free > SpareMargin {
			spareOf[s] = free - SpareMargin
		}
	}

	identity := make([]hw.DeviceID, S)
	for i := range identity {
		identity[i] = hw.DeviceID(i)
	}

	if !anyOverflow || topo.Switched {
		// Nothing to place, or every placement is equivalent: keep
		// the identity mapping (the paper "randomly maps stages to
		// devices" for symmetric fabrics).
		r := &Result{Mapping: identity, NoOverflow: !anyOverflow, Searched: 1, Elapsed: time.Since(start)}
		r.Spare = spareUnder(topo, identity, spareOf)
		r.Placed, r.MaxTime, r.Score = evaluate(topo, identity, overflow, spareOf)
		return r, nil
	}

	best := &Result{Mapping: identity, Score: -1}
	perm := make([]hw.DeviceID, S)
	used := make([]bool, n)
	var walk func(int)
	var searched int
	var bestPlaced units.Bytes
	var bestTime units.Duration
	walk = func(s int) {
		if s == S {
			searched++
			placed, maxTime, score := evaluate(topo, perm, overflow, spareOf)
			if score > best.Score {
				best.Score = score
				best.Mapping = append([]hw.DeviceID(nil), perm...)
				bestPlaced, bestTime = placed, maxTime
			}
			return
		}
		for g := 0; g < n; g++ {
			if used[g] {
				continue
			}
			used[g] = true
			perm[s] = hw.DeviceID(g)
			walk(s + 1)
			used[g] = false
		}
	}
	walk(0)

	best.Placed = bestPlaced
	best.MaxTime = bestTime
	best.Searched = searched
	best.Elapsed = time.Since(start)
	best.Spare = spareUnder(topo, best.Mapping, spareOf)
	return best, nil
}

// spareUnder converts per-stage spare into per-GPU budgets, counting
// GPUs that host no stage as fully spare.
func spareUnder(topo *hw.Topology, mapping []hw.DeviceID, spareOf []units.Bytes) map[hw.DeviceID]units.Bytes {
	spare := make(map[hw.DeviceID]units.Bytes)
	hosted := make(map[hw.DeviceID]bool)
	for s, g := range mapping {
		hosted[g] = true
		if spareOf[s] > 0 {
			spare[g] = spareOf[s]
		}
	}
	for g := 0; g < topo.NumGPUs; g++ {
		id := hw.DeviceID(g)
		if !hosted[id] && topo.GPU.Memory > SpareMargin {
			spare[id] = topo.GPU.Memory - SpareMargin
		}
	}
	return spare
}

// evaluate scores one assignment: distribute reachable spare over the
// exporters proportionally to pair bandwidth (partial placement
// allowed) and compute revenue/cost.
func evaluate(topo *hw.Topology, mapping []hw.DeviceID, overflow, spareOf []units.Bytes) (placed units.Bytes, maxTime units.Duration, score float64) {
	spare := spareUnder(topo, mapping, spareOf)
	laneBW := float64(topo.NVLinkLaneBW)

	// Exporters in descending overflow order would need a sort; with
	// ≤8 stages a fixed stage order is stable enough and keeps the
	// hot path allocation-free.
	for s, ov := range overflow {
		if ov == 0 {
			continue
		}
		g := mapping[s]
		// Greedily fill from the fattest pairs.
		remaining := ov
		var slowest units.Duration
		for lanes := topo.LanesPerGPU; lanes >= 1 && remaining > 0; lanes-- {
			for _, nb := range topo.NVLinkNeighbors(g) {
				if topo.LanesBetween(g, nb) != lanes || spare[nb] == 0 || remaining == 0 {
					continue
				}
				take := spare[nb]
				if take > remaining {
					take = remaining
				}
				spare[nb] -= take
				remaining -= take
				placed += take
				bw := units.Bandwidth(laneBW * float64(lanes))
				if t := topo.NVLinkLatency + bw.TransferTime(take); t > slowest {
					slowest = t
				}
			}
		}
		if slowest > maxTime {
			maxTime = slowest
		}
	}
	if placed == 0 {
		return 0, 0, 0
	}
	if maxTime <= 0 {
		maxTime = 1
	}
	// Revenue (GiB placed) per unit cost (seconds).
	return placed, maxTime, placed.GiBf() / maxTime.Secondsf()
}
