package mapping

import (
	"errors"
	"testing"
	"time"

	"mpress/internal/hw"
	"mpress/internal/units"
)

// demandsFor builds a per-stage demand slice around topo's GPU
// capacity: stage 0 overflowing by overGiB, later stages increasingly
// spare — the Fig. 2 shape.
func demandsFor(topo *hw.Topology, overGiB float64) []units.Bytes {
	d := make([]units.Bytes, 8)
	base := topo.GPU.Memory.GiBf()
	for s := range d {
		d[s] = units.GB(base + overGiB - float64(s)*overGiB/1.5)
	}
	return d
}

func TestSearchNoOverflow(t *testing.T) {
	topo := hw.DGX1()
	d := make([]units.Bytes, 8)
	for s := range d {
		d[s] = units.GB(10)
	}
	r, err := Search(topo, d)
	if err != nil {
		t.Fatal(err)
	}
	if !r.NoOverflow {
		t.Error("expected NoOverflow")
	}
	for s, g := range r.Mapping {
		if int(g) != s {
			t.Errorf("no-overflow mapping must be identity, got %v", r.Mapping)
		}
	}
	if len(r.Spare) == 0 {
		t.Error("spare budgets missing")
	}
}

func TestSearchSwitchedSkips(t *testing.T) {
	topo := hw.DGX2()
	r, err := Search(topo, demandsFor(topo, 6))
	if err != nil {
		t.Fatal(err)
	}
	if r.Searched != 1 {
		t.Errorf("switched topology searched %d mappings, want 1", r.Searched)
	}
	for s, g := range r.Mapping {
		if int(g) != s {
			t.Errorf("switched mapping must be identity, got %v", r.Mapping)
		}
	}
	if r.Placed == 0 {
		t.Error("switched search must still compute placement")
	}
}

func TestSearchBeatsIdentityOnDGX1(t *testing.T) {
	topo := hw.DGX1()
	d := demandsFor(topo, 6)
	r, err := Search(topo, d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Searched != 40320 {
		t.Errorf("searched %d assignments, want 8!", r.Searched)
	}
	// Compute the identity mapping's score for comparison.
	overflow := make([]units.Bytes, 8)
	spareOf := make([]units.Bytes, 8)
	for s, dem := range d {
		if dem > topo.GPU.Memory {
			overflow[s] = dem - topo.GPU.Memory
		} else if free := topo.GPU.Memory - dem; free > SpareMargin {
			spareOf[s] = free - SpareMargin
		}
	}
	identity := make([]hw.DeviceID, 8)
	for i := range identity {
		identity[i] = hw.DeviceID(i)
	}
	_, _, idScore := evaluate(topo, identity, overflow, spareOf)
	if r.Score < idScore {
		t.Errorf("search score %.2f below identity %.2f", r.Score, idScore)
	}
	// With this demand shape the searched mapping should strictly beat
	// identity: under identity, overflowing gpu0/gpu1 cannot reach the
	// spare gpu5/6/7 over NVLink at full weight.
	if r.Score == idScore {
		t.Logf("warning: search tied with identity (%.2f)", r.Score)
	}
	if r.Placed == 0 || r.MaxTime == 0 {
		t.Errorf("degenerate result: %+v", r)
	}
}

func TestSearchPlacesOverflowNextToSpare(t *testing.T) {
	topo := hw.DGX1()
	r, err := Search(topo, demandsFor(topo, 6))
	if err != nil {
		t.Fatal(err)
	}
	// The overflowing stage 0 must end up with at least one NVLink
	// neighbor carrying spare budget.
	g0 := r.Mapping[0]
	var reachable units.Bytes
	for _, nb := range topo.NVLinkNeighbors(g0) {
		reachable += r.Spare[nb]
	}
	if reachable == 0 {
		t.Errorf("stage 0 on %v has no spare neighbors; mapping %v, spare %v", g0, r.Mapping, r.Spare)
	}
}

func TestSearchIsFast(t *testing.T) {
	// Sec. IV-D: the paper's stress case finishes in 47 s
	// single-threaded; ordinary cases take a few seconds. Our
	// implementation must stay well under that.
	topo := hw.DGX1()
	start := time.Now()
	if _, err := Search(topo, demandsFor(topo, 8)); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("search took %v", el)
	}
}

func TestSearchDeterministic(t *testing.T) {
	topo := hw.DGX1()
	a, err := Search(topo, demandsFor(topo, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(topo, demandsFor(topo, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Mapping {
		if a.Mapping[i] != b.Mapping[i] {
			t.Fatalf("mappings differ: %v vs %v", a.Mapping, b.Mapping)
		}
	}
}

func TestSearchFewerStagesThanGPUs(t *testing.T) {
	topo := hw.DGX1()
	d := []units.Bytes{units.GB(38), units.GB(20), units.GB(12), units.GB(8)}
	r, err := Search(topo, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Mapping) != 4 {
		t.Fatalf("mapping = %v", r.Mapping)
	}
	// Unmapped GPUs contribute near-full spare.
	var spareTotal units.Bytes
	for _, v := range r.Spare {
		spareTotal += v
	}
	if spareTotal < 4*(topo.GPU.Memory-SpareMargin) {
		t.Errorf("unmapped GPUs' spare missing: %v", spareTotal)
	}
	if r.Placed != units.GB(6) {
		t.Errorf("placed %v, want the full 6GiB overflow", r.Placed)
	}
}

func TestSearchTooManyStagesTypedError(t *testing.T) {
	_, err := Search(hw.DGX1(), make([]units.Bytes, 9))
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want *InfeasibleError", err)
	}
	if inf.Stages != 9 || inf.GPUs != 8 {
		t.Fatalf("error payload = %+v", inf)
	}
}
