package search

import "sync"

// Eval is one memoized candidate evaluation — the transposition-table
// entry, and the JSON payload the fleet cache tier moves between
// peers. It deliberately stores the candidate's *rate*, not a
// time-to-fit: the rate depends only on the lowered job (which the
// fingerprint identifies), while time-to-fit also depends on the
// searcher's workload, so one entry serves searches with different
// workloads.
type Eval struct {
	// OOM marks an infeasible candidate (it ran out of memory).
	OOM bool `json:"oom,omitempty"`
	// EffSamplesPerSec is the fleet-wide effective training rate:
	// goodput × replicas for resilient runs, cluster samples/sec
	// otherwise. Zero when OOM.
	EffSamplesPerSec float64 `json:"eff_samples_per_sec,omitempty"`
}

// Table is a transposition table keyed by strategy fingerprint (the
// lowered job's canonical fingerprint). Implementations must be safe
// for concurrent use; Get/Put may be called from commit loops of
// concurrent searches sharing one table.
type Table interface {
	Get(fingerprint string) (Eval, bool)
	Put(fingerprint string, e Eval)
}

// MemTable is the in-process Table.
type MemTable struct {
	mu sync.Mutex
	m  map[string]Eval
}

// NewMemTable returns an empty in-process transposition table.
func NewMemTable() *MemTable { return &MemTable{m: make(map[string]Eval)} }

// Get looks up a memoized evaluation.
func (t *MemTable) Get(fp string) (Eval, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.m[fp]
	return e, ok
}

// Put memoizes an evaluation.
func (t *MemTable) Put(fp string, e Eval) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[fp] = e
}

// Len reports the entry count.
func (t *MemTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
