package search

import (
	"context"
	"fmt"
	"time"

	"mpress/internal/ckpt"
	"mpress/internal/cluster"
	"mpress/internal/pipeline"
	"mpress/internal/runner"
	"mpress/internal/units"
)

// Checkpoint-axis sentinels (Space.CheckpointsNS / Strategy
// CheckpointNS values). Zero is the Young–Daly optimum, positive
// values are fixed intervals in nanoseconds.
const (
	// CkptInherit keeps the base config's checkpoint policy.
	CkptInherit int64 = -2
	// CkptNone disables checkpointing.
	CkptNone int64 = -1
)

// Space is the strategy space the searcher enumerates: the cartesian
// product of its axes. An empty axis inherits the base config's value
// (a singleton), so the zero Space searches exactly the base strategy.
type Space struct {
	// Systems are the pipeline/memory systems to try.
	Systems []runner.System `json:"systems,omitempty"`
	// TPDegrees are tensor-parallel degrees (1 or 0 = off).
	TPDegrees []int `json:"tp_degrees,omitempty"`
	// StageCounts are pipeline stage counts; 0 means the plane
	// default (GPUs / (TP·CP)), which aliases across TP degrees into
	// transposition hits.
	StageCounts []int `json:"stage_counts,omitempty"`
	// Partitions are the stage-partitioning strategies.
	Partitions []pipeline.Strategy `json:"partitions,omitempty"`
	// Nodes are replica counts (1 = single server). Counts > 1 build
	// a cluster over Fabric (required then).
	Nodes []int `json:"nodes,omitempty"`
	// Fabric is the inter-node fabric for Nodes > 1.
	Fabric *cluster.Fabric `json:"fabric,omitempty"`
	// CheckpointsNS are checkpoint intervals (see the Ckpt*
	// sentinels). Only meaningful for resilient bases.
	CheckpointsNS []int64 `json:"checkpoints_ns,omitempty"`
}

// Size returns the number of raw candidates the space enumerates for
// the given base (the product of the resolved axis lengths).
func (s Space) Size(base runner.Config) int {
	r := s.resolve(base)
	return len(r.Systems) * len(r.TPDegrees) * len(r.StageCounts) *
		len(r.Partitions) * len(r.Nodes) * len(r.CheckpointsNS)
}

// resolve fills every empty axis with the base config's own value, so
// enumeration is always over a full product.
func (s Space) resolve(base runner.Config) Space {
	if len(s.Systems) == 0 {
		s.Systems = []runner.System{base.System}
	}
	if len(s.TPDegrees) == 0 {
		s.TPDegrees = []int{base.TPDegree}
	}
	if len(s.StageCounts) == 0 {
		s.StageCounts = []int{base.Stages}
	}
	if len(s.Partitions) == 0 {
		s.Partitions = []pipeline.Strategy{base.Strategy}
	}
	if len(s.Nodes) == 0 {
		s.Nodes = []int{0}
	}
	if len(s.CheckpointsNS) == 0 {
		s.CheckpointsNS = []int64{CkptInherit}
	}
	return s
}

// DefaultSpace is the space `mpress-plan -auto` searches: every
// non-ZeRO system, TP off/2-way, the plane-default and half-plane
// stage counts, and both partition strategies. Systems are ordered
// strongest-first (mpress, d2d, …) so the searcher finds a good
// incumbent early and the lower bound can prune the weak tail. For a
// resilient base the Young–Daly interval is tried next to the
// configured one.
func DefaultSpace(base runner.Config) Space {
	sp := Space{
		Systems: []runner.System{
			runner.SystemMPress, runner.SystemMPressD2D, runner.SystemRecompute,
			runner.SystemGPUCPUSwap, runner.SystemPlain,
		},
		TPDegrees:  []int{1, 2},
		Partitions: []pipeline.Strategy{pipeline.ComputeBalanced, pipeline.MemoryBalanced},
	}
	if base.Topology != nil {
		sp.StageCounts = []int{0, base.Topology.NumGPUs / 2}
	}
	if base.Faults != nil {
		sp.CheckpointsNS = []int64{CkptInherit, 0}
	}
	return sp
}

// Strategy is one raw point of the Space (before normalization —
// KeyOf the lowered, defaulted config gives the canonical identity).
type Strategy struct {
	System       runner.System     `json:"system"`
	TP           int               `json:"tp"`
	Stages       int               `json:"stages"`
	Partition    pipeline.Strategy `json:"partition"`
	Nodes        int               `json:"nodes"`   // 0 = keep the base cluster
	CheckpointNS int64             `json:"ckpt_ns"` // CkptInherit = keep base policy
}

// Outcome classifies what the searcher did with a candidate.
type Outcome string

const (
	// OutcomeEvaluated: lowered and simulated (possibly to an OOM).
	OutcomeEvaluated Outcome = "evaluated"
	// OutcomeMemo: served from the transposition table.
	OutcomeMemo Outcome = "memo"
	// OutcomePruned: cut by the static lower bound — provably unable
	// to beat the incumbent, never simulated.
	OutcomePruned Outcome = "pruned"
	// OutcomeSkipped: not a runnable strategy (see SkipReason).
	OutcomeSkipped Outcome = "skipped"
	// OutcomeInfeasible: the simulation itself refused the job.
	OutcomeInfeasible Outcome = "infeasible"
)

// SkipReason types why enumeration rejected a candidate without
// simulating it. These are data in the search report, never panics.
type SkipReason string

const (
	// SkipGrid: the shard grid is impossible — TP·PP·DP·CP does not
	// factor the world size, or a TP group spans NVLink islands.
	SkipGrid SkipReason = "grid"
	// SkipConfig: the lowered config fails validation (e.g. TP with
	// ZeRO or resilience, a bad cluster).
	SkipConfig SkipReason = "config"
	// SkipPartition: the stage count cannot partition the model or
	// exceeds the plane on a system without virtual-stage support.
	SkipPartition SkipReason = "partition"
	// SkipRuntime: the stage pipeline rejected the job at run time.
	SkipRuntime SkipReason = "runtime"
)

// Candidate is one enumerated strategy and what became of it, in
// canonical rank order.
type Candidate struct {
	Rank        int        `json:"rank"`
	Raw         Strategy   `json:"raw"`
	Key         Key        `json:"key"` // zero value when skipped before lowering
	Fingerprint string     `json:"fingerprint,omitempty"`
	Outcome     Outcome    `json:"outcome"`
	SkipReason  SkipReason `json:"skip_reason,omitempty"`
	Detail      string     `json:"detail,omitempty"`
	// Eval is set for evaluated and memoized candidates.
	Eval *Eval `json:"eval,omitempty"`
	// TimeToFit = workload / effective rate (MaxDuration when OOM).
	TimeToFit units.Duration `json:"time_to_fit_ns,omitempty"`
	// Bound is the static lower bound on TimeToFit (0 = no claim).
	Bound units.Duration `json:"bound_ns,omitempty"`

	cfg  runner.Config     // lowered raw config (not defaulted)
	spec *runner.JobResult // speculative evaluation, pre-commit
}

// Result is the canonical outcome of one search. Everything except
// Wall is byte-identical at every worker count.
type Result struct {
	BaseFingerprint string `json:"base_fingerprint"`
	// Workload is the training workload in samples (the defaulted
	// base config's total across replicas); time-to-fit is
	// Workload / candidate effective samples-per-sec.
	Workload   int64       `json:"workload_samples"`
	SpaceSize  int         `json:"space_size"`
	Candidates []Candidate `json:"candidates"`
	// Winner is the rank of the winning candidate (-1: none feasible).
	Winner int `json:"winner"`
	// WinnerConfig is the winner lowered and defaulted; WinnerReport
	// its full simulation report (plan included).
	WinnerConfig *runner.Config `json:"winner_config,omitempty"`
	WinnerReport *runner.Report `json:"winner_report,omitempty"`
	// Search counters: nodes expanded (simulated), pruned by the
	// bound, served by the transposition table, skipped (including
	// infeasible), and incumbent updates.
	Expanded int `json:"expanded"`
	Pruned   int `json:"pruned"`
	MemoHits int `json:"memo_hits"`
	Skipped  int `json:"skipped"`
	Updates  int `json:"updates"`
	// Wall is real search time — observability only, excluded from
	// the canonical report rendering.
	Wall time.Duration `json:"wall_ns"`
}

// Best returns the winning candidate, or nil when nothing fit.
func (r *Result) Best() *Candidate {
	if r.Winner < 0 || r.Winner >= len(r.Candidates) {
		return nil
	}
	return &r.Candidates[r.Winner]
}

// Find returns the first candidate with the given canonical key, or
// nil. Hand presets are looked up this way by the autosearch
// experiment.
func (r *Result) Find(k Key) *Candidate {
	for i := range r.Candidates {
		if r.Candidates[i].Key == k {
			return &r.Candidates[i]
		}
	}
	return nil
}

// Options tunes one search.
type Options struct {
	// Workers sizes the evaluation worker pool (0 = GOMAXPROCS).
	// The result is byte-identical at every setting.
	Workers int
	// PlanWorkers is forwarded to the runner (see runner.Options).
	PlanWorkers int
	// Table is the transposition table (nil = fresh in-process one).
	// A warm table changes the memo/expanded split, never the winner.
	Table Table
	// Runner, when set, evaluates candidates on an existing runner
	// (sharing its plan cache and worker pool); Workers and
	// PlanWorkers are then ignored.
	Runner *runner.Runner
	// FullEnum disables bound pruning — every candidate is evaluated.
	// The winner is provably identical; the soundness cross-check
	// test relies on this.
	FullEnum bool
}

// Run searches the space for the strategy minimizing time-to-fit of
// the base config's workload. The search is exhaustive over the
// space: branch-and-bound pruning and memoization never change the
// winner, only the work done. Ties break to the earliest rank, and
// every decision is committed in strict rank order, so the Result —
// counters included — is byte-identical at every worker count.
func Run(ctx context.Context, base runner.Config, sp Space, o Options) (*Result, error) {
	baseJob, err := runner.NewJob(base)
	if err != nil {
		return nil, fmt.Errorf("search: base config: %w", err)
	}
	db := baseJob.Config
	workload := int64(db.MicrobatchSize) * int64(db.Microbatches) *
		int64(db.Minibatches) * int64(db.Replicas())

	table := o.Table
	if table == nil {
		table = NewMemTable()
	}
	rnr := o.Runner
	if rnr == nil {
		rnr = runner.New(runner.Options{Workers: o.Workers, PlanWorkers: o.PlanWorkers})
	}
	waveSize := rnr.Workers()
	if waveSize < 1 {
		waveSize = 1
	}

	start := time.Now()
	res := &Result{
		BaseFingerprint: baseJob.Fingerprint(),
		Workload:        workload,
		SpaceSize:       sp.Size(base),
		Winner:          -1,
	}
	pending := enumerate(base, sp.resolve(base), res, workload)

	incumbent := units.MaxDuration
	reports := make(map[string]*runner.Report)
	for i := 0; i < len(pending); {
		// Build one wave: walk forward in rank order, collecting up
		// to waveSize candidates that — under the incumbent and table
		// as of now — will need a real evaluation. Both only tighten
		// (the incumbent shrinks, the table grows), so a build-time
		// prune or memo hit is still one at commit time; the converse
		// misses are caught by the sequential commit below.
		var wave []*Candidate
		var evals []*Candidate
		for ; i < len(pending) && len(evals) < waveSize; i++ {
			c := pending[i]
			wave = append(wave, c)
			if _, ok := table.Get(c.Fingerprint); ok {
				continue
			}
			if !o.FullEnum && c.Bound >= incumbent {
				continue
			}
			evals = append(evals, c)
		}
		if len(evals) > 0 {
			// Speculative: results are adopted or discarded only by
			// the rank-order commit loop.
			cfgs := make([]runner.Config, len(evals))
			for j, c := range evals {
				cfgs[j] = c.cfg
			}
			jrs := rnr.RunConfigs(ctx, cfgs)
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for j := range evals {
				evals[j].spec = &jrs[j]
			}
		}
		for _, c := range wave {
			if e, ok := table.Get(c.Fingerprint); ok {
				ev := e
				c.Outcome, c.Eval = OutcomeMemo, &ev
				res.MemoHits++
			} else if !o.FullEnum && c.Bound >= incumbent {
				c.Outcome = OutcomePruned
				res.Pruned++
				c.spec = nil
				continue
			} else {
				// Neither memoized nor prunable at build time either,
				// so the wave evaluated it.
				jr := c.spec
				c.spec = nil
				if jr.Err != nil {
					c.Outcome, c.SkipReason = OutcomeInfeasible, SkipRuntime
					c.Detail = jr.Err.Error()
					res.Skipped++
					continue
				}
				ev := evalOf(jr.Report)
				table.Put(c.Fingerprint, ev)
				c.Outcome, c.Eval = OutcomeEvaluated, &ev
				res.Expanded++
				reports[c.Fingerprint] = jr.Report
			}
			c.TimeToFit = timeToFit(workload, *c.Eval)
			if c.TimeToFit < incumbent {
				incumbent = c.TimeToFit
				res.Winner = c.Rank
				res.Updates++
			}
		}
	}

	if best := res.Best(); best != nil {
		wj, err := runner.NewJob(best.cfg)
		if err != nil {
			return nil, fmt.Errorf("search: winner re-lower: %w", err)
		}
		wc := wj.Config
		res.WinnerConfig = &wc
		rep, ok := reports[best.Fingerprint]
		if !ok {
			// The winner was served from a warm table; materialize its
			// full report (and plan) with one deterministic run.
			jr := rnr.Run(ctx, wj)
			if jr.Err != nil {
				return nil, fmt.Errorf("search: winner re-run: %w", jr.Err)
			}
			rep = jr.Report
		}
		res.WinnerReport = rep
	}
	res.Wall = time.Since(start)
	return res, nil
}

// enumerate walks the resolved space in canonical axis order (system,
// TP, stages, partition, nodes, checkpoint), classifying each raw
// strategy: unrunnable ones are appended to res.Candidates with a
// typed skip reason, runnable ones get their key, fingerprint and
// static bound and are returned for the branch-and-bound driver. The
// returned slice aliases res.Candidates entries.
func enumerate(base runner.Config, sp Space, res *Result, workload int64) []*Candidate {
	// Fixed capacity up front: pending holds pointers into
	// res.Candidates, so the backing array must never reallocate.
	n := len(sp.Systems) * len(sp.TPDegrees) * len(sp.StageCounts) *
		len(sp.Partitions) * len(sp.Nodes) * len(sp.CheckpointsNS)
	res.Candidates = make([]Candidate, 0, n)
	var pending []*Candidate
	rank := 0
	for _, sys := range sp.Systems {
		for _, tp := range sp.TPDegrees {
			for _, stages := range sp.StageCounts {
				for _, part := range sp.Partitions {
					for _, nodes := range sp.Nodes {
						for _, ck := range sp.CheckpointsNS {
							st := Strategy{
								System: sys, TP: tp, Stages: stages,
								Partition: part, Nodes: nodes, CheckpointNS: ck,
							}
							c := Candidate{Rank: rank, Raw: st}
							rank++
							classify(base, sp, st, &c, workload)
							res.Candidates = append(res.Candidates, c)
							if c.Outcome == "" {
								pending = append(pending, &res.Candidates[len(res.Candidates)-1])
							}
						}
					}
				}
			}
		}
	}
	for i := range res.Candidates {
		if res.Candidates[i].Outcome == OutcomeSkipped {
			res.Skipped++
		}
	}
	return pending
}

// classify lowers one raw strategy and either marks it skipped (typed,
// never a panic) or fills its key, fingerprint and bound. A zero
// Outcome means runnable.
func classify(base runner.Config, sp Space, st Strategy, c *Candidate, workload int64) {
	skip := func(r SkipReason, format string, args ...interface{}) {
		c.Outcome, c.SkipReason = OutcomeSkipped, r
		c.Detail = fmt.Sprintf(format, args...)
	}
	cfg, err := lower(base, sp, st)
	if err != nil {
		skip(SkipConfig, "%v", err)
		return
	}
	// The shard grid first, checked directly so its failures — TP not
	// dividing the world, a TP group spanning NVLink islands — get
	// their own reason even though NewJob would reject them too.
	if cfg.TP()*cfg.CP() > 1 && !cfg.System.IsZeRO() && !cfg.Resilient() {
		if _, err := cfg.Grid(); err != nil {
			skip(SkipGrid, "%v", err)
			return
		}
	}
	j, err := runner.NewJob(cfg)
	if err != nil {
		skip(SkipConfig, "%v", err)
		return
	}
	dc := j.Config
	if !dc.System.IsZeRO() {
		if dc.Stages > dc.Model.Layers {
			skip(SkipPartition, "%d stages for %d model layers", dc.Stages, dc.Model.Layers)
			return
		}
		if plane := dc.Topology.NumGPUs / (dc.TP() * dc.CP()); dc.Stages > plane && dc.System != runner.SystemPlain {
			skip(SkipPartition, "%d virtual stages on a %d-GPU plane need %v",
				dc.Stages, plane, runner.SystemPlain)
			return
		}
	}
	c.Key = KeyOf(dc)
	c.Fingerprint = j.Fingerprint()
	c.Bound = lowerBound(dc, workload)
	c.cfg = cfg
}

// lower maps one raw strategy onto the base config.
func lower(base runner.Config, sp Space, st Strategy) (runner.Config, error) {
	c := base
	c.System = st.System
	c.TPDegree = st.TP
	c.Stages = st.Stages
	c.Strategy = st.Partition
	switch {
	case st.Nodes == 0: // keep base cluster
	case st.Nodes == 1:
		c.Cluster = nil
	default:
		fab := sp.Fabric
		if fab == nil && base.Cluster != nil {
			fab = &base.Cluster.Net
		}
		if fab == nil {
			return c, fmt.Errorf("search: %d nodes need a fabric (Space.Fabric)", st.Nodes)
		}
		cl, err := cluster.New(st.Nodes, base.Topology, *fab)
		if err != nil {
			return c, err
		}
		c.Cluster = cl
	}
	switch {
	case st.CheckpointNS == CkptInherit: // keep base policy
	case st.CheckpointNS == CkptNone:
		c.Checkpoint = nil
	default:
		c.Checkpoint = &ckpt.Policy{Interval: units.Duration(st.CheckpointNS)}
	}
	return c, nil
}

// evalOf condenses a report into its transposition-table entry.
func evalOf(rep *runner.Report) Eval {
	if rep.OOM != nil {
		return Eval{OOM: true}
	}
	return Eval{EffSamplesPerSec: EffectiveSamplesPerSec(rep)}
}

// EffectiveSamplesPerSec is the fleet-wide training rate a report
// achieved: goodput × replicas when the run was resilient, the
// cluster samples/sec otherwise.
func EffectiveSamplesPerSec(rep *runner.Report) float64 {
	if rep.Config.Resilient() && rep.Goodput > 0 {
		return rep.Goodput * float64(rep.Replicas)
	}
	return rep.ClusterSamplesPerSec
}

// timeToFit converts a table entry to the search objective.
func timeToFit(workload int64, e Eval) units.Duration {
	if e.OOM || e.EffSamplesPerSec <= 0 {
		return units.MaxDuration
	}
	return units.Seconds(float64(workload) / e.EffSamplesPerSec)
}
