package search

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"mpress/internal/chaos"
	"mpress/internal/ckpt"
	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/runner"
	"mpress/internal/units"
)

func testBase(t *testing.T) runner.Config {
	t.Helper()
	m, err := model.BertVariant("0.64B")
	if err != nil {
		t.Fatal(err)
	}
	return runner.Config{
		Topology:       hw.DGX1(),
		Model:          m,
		Schedule:       pipeline.PipeDream,
		System:         runner.SystemMPress,
		MicrobatchSize: 12,
	}
}

// smallSpace is the cheap-but-real space the package tests search:
// three systems, two stage counts (one the plane default alias), both
// partition strategies.
func smallSpace() Space {
	return Space{
		Systems:     []runner.System{runner.SystemMPress, runner.SystemRecompute, runner.SystemPlain},
		StageCounts: []int{0, 8, 4},
		Partitions:  []pipeline.Strategy{pipeline.ComputeBalanced, pipeline.MemoryBalanced},
	}
}

// canonical renders everything byte-comparable about a result: the
// report plus the JSON with the wall clock (the only
// nondeterministic field) zeroed.
func canonical(t *testing.T, r *Result) []byte {
	t.Helper()
	cp := *r
	cp.Wall = 0
	var buf bytes.Buffer
	WriteReport(&buf, &cp)
	js, err := json.MarshalIndent(&cp, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(js)
	return buf.Bytes()
}

func run(t *testing.T, base runner.Config, sp Space, o Options) *Result {
	t.Helper()
	r, err := Run(context.Background(), base, sp, o)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// The core determinism contract: winner, counters and the whole
// rendered report are byte-identical at every worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	base := testBase(t)
	r1 := run(t, base, smallSpace(), Options{Workers: 1})
	r8 := run(t, base, smallSpace(), Options{Workers: 8})
	b1, b8 := canonical(t, r1), canonical(t, r8)
	if !bytes.Equal(b1, b8) {
		t.Fatalf("results differ between workers 1 and 8:\n--- w1 ---\n%s\n--- w8 ---\n%s", b1, b8)
	}
	if r1.Best() == nil {
		t.Fatal("no winner on a feasible space")
	}
	if r1.Expanded == 0 {
		t.Fatal("nothing expanded")
	}
}

// Branch-and-bound must be exhaustive-equivalent: full enumeration
// (pruning disabled) finds the same winner, and no evaluated
// candidate anywhere beats it.
func TestPruningSoundVsFullEnumeration(t *testing.T) {
	base := testBase(t)
	pruned := run(t, base, smallSpace(), Options{Workers: 2})
	full := run(t, base, smallSpace(), Options{Workers: 2, FullEnum: true})
	if full.Pruned != 0 {
		t.Fatalf("full enumeration pruned %d", full.Pruned)
	}
	pb, fb := pruned.Best(), full.Best()
	if pb == nil || fb == nil {
		t.Fatal("missing winner")
	}
	if pb.Key != fb.Key || pb.TimeToFit != fb.TimeToFit {
		t.Fatalf("winners differ: pruned %v (%v) vs full %v (%v)",
			pb.Key, pb.TimeToFit, fb.Key, fb.TimeToFit)
	}
	for i := range full.Candidates {
		c := &full.Candidates[i]
		if c.Eval != nil && c.TimeToFit < fb.TimeToFit {
			t.Fatalf("candidate %v beats the winner: %v < %v", c.Key, c.TimeToFit, fb.TimeToFit)
		}
	}
	if pruned.Pruned == 0 {
		t.Log("note: bound pruned nothing on this space")
	}
}

// The static bound must hold for every candidate that was actually
// simulated: bound ≤ measured time-to-fit.
func TestBoundBelowMeasured(t *testing.T) {
	base := testBase(t)
	full := run(t, base, smallSpace(), Options{Workers: 2, FullEnum: true})
	checked := 0
	for i := range full.Candidates {
		c := &full.Candidates[i]
		if c.Outcome != OutcomeEvaluated || c.Eval.OOM {
			continue
		}
		checked++
		if c.Bound > c.TimeToFit {
			t.Errorf("unsound bound for %v: bound %v > measured %v", c.Key, c.Bound, c.TimeToFit)
		}
	}
	if checked == 0 {
		t.Fatal("no evaluated candidates to check")
	}
}

// stages=0 (plane default) must alias into the explicit plane-sized
// stage count through NewJob normalization — a transposition hit, not
// a second simulation.
func TestNormalizationAliasesMemoize(t *testing.T) {
	base := testBase(t)
	sp := Space{
		Systems:     []runner.System{runner.SystemRecompute},
		StageCounts: []int{0, 8},
	}
	r := run(t, base, sp, Options{Workers: 1})
	if r.MemoHits != 1 || r.Expanded != 1 {
		t.Fatalf("expanded %d, memo hits %d; want 1 and 1", r.Expanded, r.MemoHits)
	}
	if r.Candidates[0].Fingerprint != r.Candidates[1].Fingerprint {
		t.Fatalf("aliases have different fingerprints: %q vs %q",
			r.Candidates[0].Fingerprint, r.Candidates[1].Fingerprint)
	}
}

// A warm transposition table turns every evaluation into a memo hit
// and leaves the winner unchanged.
func TestWarmTableServesEverything(t *testing.T) {
	base := testBase(t)
	table := NewMemTable()
	cold := run(t, base, smallSpace(), Options{Workers: 2, Table: table})
	warm := run(t, base, smallSpace(), Options{Workers: 2, Table: table})
	if warm.Expanded != 0 {
		t.Fatalf("warm search expanded %d", warm.Expanded)
	}
	if warm.MemoHits == 0 {
		t.Fatal("warm search hit nothing")
	}
	cb, wb := cold.Best(), warm.Best()
	if cb == nil || wb == nil || cb.Key != wb.Key || cb.TimeToFit != wb.TimeToFit {
		t.Fatalf("warm winner differs: %+v vs %+v", cb, wb)
	}
	if warm.WinnerReport == nil {
		t.Fatal("warm search must materialize the winner report")
	}
}

// Infeasible grids and partitions become typed skip reasons in the
// result — never a panic, never an aborted search.
func TestInfeasibleCandidatesSkipTyped(t *testing.T) {
	base := testBase(t)
	sp := Space{
		Systems:     []runner.System{runner.SystemMPress},
		TPDegrees:   []int{1, 3, 16}, // 3 and 16 cannot shard 8 GPUs
		StageCounts: []int{0, 64, 6}, // 64 > 24 model layers; 6 is fine
	}
	r := run(t, base, sp, Options{Workers: 2})
	if r.Best() == nil {
		t.Fatal("feasible candidates exist; want a winner")
	}
	byReason := map[SkipReason]int{}
	for i := range r.Candidates {
		c := &r.Candidates[i]
		if c.Outcome == OutcomeSkipped || c.Outcome == OutcomeInfeasible {
			if c.SkipReason == "" || c.Detail == "" {
				t.Fatalf("untyped skip: %+v", c)
			}
			byReason[c.SkipReason]++
		}
	}
	if byReason[SkipGrid] == 0 {
		t.Fatalf("no grid skips: %v", byReason)
	}
	if byReason[SkipPartition] == 0 {
		t.Fatalf("no partition skips: %v", byReason)
	}
	if r.Skipped != byReason[SkipGrid]+byReason[SkipConfig]+byReason[SkipPartition]+byReason[SkipRuntime] {
		t.Fatalf("skip counter %d does not match buckets %v", r.Skipped, byReason)
	}
	var buf bytes.Buffer
	WriteReport(&buf, r)
	out := buf.String()
	for _, want := range []string{"[grid]", "[partition]", "skipped:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TP with a resilient base is a config skip (the runner rejects the
// combination), and the checkpoint axis lowers into distinct
// candidates.
func TestResilientBaseAxes(t *testing.T) {
	base := testBase(t)
	base.Faults = &chaos.Config{Seed: 7, MTBF: units.Seconds(400)}
	base.Checkpoint = &ckpt.Policy{Interval: units.Seconds(120)}
	sp := Space{
		Systems:       []runner.System{runner.SystemMPress},
		TPDegrees:     []int{1, 2},
		CheckpointsNS: []int64{CkptInherit, 0},
	}
	r := run(t, base, sp, Options{Workers: 2})
	best := r.Best()
	if best == nil {
		t.Fatal("no winner")
	}
	if best.Key.CheckpointNS < 0 {
		t.Fatalf("resilient winner lost its checkpoint policy: %+v", best.Key)
	}
	cfgSkips := 0
	for i := range r.Candidates {
		if r.Candidates[i].SkipReason == SkipConfig {
			cfgSkips++
		}
	}
	if cfgSkips != 2 { // tp=2 × both checkpoint values
		t.Fatalf("config skips = %d, want 2", cfgSkips)
	}
	if r.WinnerReport == nil || r.WinnerReport.Goodput <= 0 {
		t.Fatalf("resilient winner report lacks goodput: %+v", r.WinnerReport)
	}
}

// An empty space searches exactly the base strategy.
func TestEmptySpaceIsBaseOnly(t *testing.T) {
	base := testBase(t)
	r := run(t, base, Space{}, Options{Workers: 1})
	if len(r.Candidates) != 1 || r.Expanded != 1 {
		t.Fatalf("candidates %d expanded %d; want 1 and 1", len(r.Candidates), r.Expanded)
	}
	best := r.Best()
	if best == nil || best.Key.System != runner.SystemMPress || best.Key.Stages != 8 {
		t.Fatalf("winner %+v is not the defaulted base", best)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	keys := []Key{
		{System: runner.SystemMPress, TP: 1, Stages: 8, Partition: pipeline.ComputeBalanced, Nodes: 1, CheckpointNS: -1},
		{System: runner.SystemPlain, TP: 2, Stages: 4, Partition: pipeline.MemoryBalanced, Nodes: 4, CheckpointNS: 0},
		{System: runner.SystemZeRO3, TP: 1, Stages: 16, Partition: pipeline.ComputeBalanced, Nodes: 2, CheckpointNS: 30_000_000_000},
	}
	for _, k := range keys {
		enc := k.Encode()
		got, err := DecodeKey(enc)
		if err != nil {
			t.Fatalf("DecodeKey(%q): %v", enc, err)
		}
		if got != k {
			t.Fatalf("round trip %q: got %+v want %+v", enc, got, k)
		}
	}
}

func TestDecodeKeyRejectsNonCanonical(t *testing.T) {
	bad := []string{
		"",
		"v2;sys=mpress;tp=1;stages=8;part=compute-balanced;nodes=1;ckpt=-1",
		"v1;sys=MPRESS;tp=1;stages=8;part=compute-balanced;nodes=1;ckpt=-1",
		"v1;sys=mpress;tp=01;stages=8;part=compute-balanced;nodes=1;ckpt=-1",
		"v1;sys=mpress;tp=+1;stages=8;part=compute-balanced;nodes=1;ckpt=-1",
		"v1;sys=mpress;tp=1;stages=8;part=compute-balanced;nodes=1;ckpt=-1;",
		"v1;sys=mystery;tp=1;stages=8;part=compute-balanced;nodes=1;ckpt=-1",
		"v1;sys=mpress;tp=1;stages=8;part=balanced;nodes=1;ckpt=-1",
		"v1;tp=1;sys=mpress;stages=8;part=compute-balanced;nodes=1;ckpt=-1",
	}
	for _, s := range bad {
		if k, err := DecodeKey(s); err == nil {
			t.Fatalf("DecodeKey(%q) accepted: %+v", s, k)
		}
	}
}
