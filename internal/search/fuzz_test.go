package search

import (
	"testing"

	"mpress/internal/pipeline"
	"mpress/internal/runner"
)

// FuzzDecodeKey mirrors the plan-serialization fuzz test: DecodeKey
// must never panic on arbitrary input, and any input it accepts must
// re-encode byte-identically (the strictness that makes the encoding
// a sound transposition/cache key).
func FuzzDecodeKey(f *testing.F) {
	f.Add("v1;sys=mpress;tp=1;stages=8;part=compute-balanced;nodes=1;ckpt=-1")
	f.Add("v1;sys=plain;tp=2;stages=4;part=memory-balanced;nodes=4;ckpt=0")
	f.Add("v1;sys=zero3;tp=1;stages=16;part=compute-balanced;nodes=2;ckpt=30000000000")
	f.Add("v1;sys=MPRESS;tp=01;stages=+8;part=compute-balanced;nodes=1;ckpt=-1")
	f.Add("")
	f.Add("v1;;;;;;")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := DecodeKey(s)
		if err != nil {
			return
		}
		if enc := k.Encode(); enc != s {
			t.Fatalf("accepted %q but re-encodes to %q", s, enc)
		}
		// And accepted keys are stable: a second round trip is exact.
		k2, err := DecodeKey(k.Encode())
		if err != nil || k2 != k {
			t.Fatalf("round trip of accepted key %q failed: %+v, %v", s, k2, err)
		}
	})
}

// FuzzKeyEncode drives the inverse direction: every structurally
// plausible Key must encode to something DecodeKey accepts and
// returns unchanged.
func FuzzKeyEncode(f *testing.F) {
	f.Add(int(runner.SystemMPress), 1, 8, int(pipeline.ComputeBalanced), 1, int64(-1))
	f.Add(int(runner.SystemPlain), 2, 4, int(pipeline.MemoryBalanced), 4, int64(0))
	f.Fuzz(func(t *testing.T, sys, tp, stages, part, nodes int, ckpt int64) {
		k := Key{
			System: runner.System(sys), TP: tp, Stages: stages,
			Partition: pipeline.Strategy(part), Nodes: nodes, CheckpointNS: ckpt,
		}
		// Only registered enum values have canonical names; others
		// (e.g. System(99)) encode to their Go String form, which the
		// decoder rightly rejects.
		if !runner.KnownSystem(k.System) {
			return
		}
		if _, err := pipeline.LookupStrategy(pipeline.StrategyName(k.Partition)); err != nil {
			return
		}
		got, err := DecodeKey(k.Encode())
		if err != nil {
			t.Fatalf("Encode %+v -> %q rejected: %v", k, k.Encode(), err)
		}
		if got != k {
			t.Fatalf("round trip %+v -> %q -> %+v", k, k.Encode(), got)
		}
	})
}
