package search

import (
	"mpress/internal/pipeline"
	"mpress/internal/runner"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// lowerBound returns a provable lower bound on the time-to-fit of a
// defaulted candidate config — the branch-and-bound cut generalized
// from the planner's per-device refinement bound (plan/refine.go). A
// candidate is pruned only when this bound already meets the
// incumbent, so pruning can never hide a better strategy.
//
// The argument is the executor's own cost model, undercounted:
//
//   - Forward/Backward ops cost rate.ComputeTime(FLOPs) with the
//     dtype-matched effective rate; the builder emits one fw and one
//     bw per stage per microbatch at exactly the sharded profile's
//     FLOPs, so the per-stage compute floor is exact.
//   - OptimizerStep ops are HBM-bound: per parameter group,
//     TransferTime(2·(param+grad+opt) bytes) per minibatch. The floor
//     charges the whole sharded stage state at once and subtracts one
//     nanosecond per group (per-group truncation slack), so it never
//     exceeds the builder's per-group sum. The stage-level ceil of
//     Shard also never exceeds the builder's per-block ceils.
//   - Everything else a candidate can incur — activation moves, D2D
//     striping, swaps, recompute, boundary transfers, all-reduces,
//     bubbles, checkpoint and replay time — only adds to wall clock.
//
// Each stage's ops run serially on one device, so the per-replica
// wall clock is at least the largest stage floor; and all stage work
// shares the plane's GPUs, so it is also at least the total divided
// by the plane size. Samples-per-sec is samples/wall, effective rate
// at most samples-per-sec × replicas (resilience only lowers it), so
// time-to-fit ≥ workload · floor / (samples · replicas). The final
// float conversion shaves a relative 1e-9 to absorb rounding.
//
// ZeRO candidates (analytic model, no operator graph) and any
// candidate the static model cannot price return 0 — no claim, never
// pruned.
func lowerBound(c runner.Config, workload int64) units.Duration {
	if c.System.IsZeRO() || c.Topology == nil || c.Precision == nil {
		return 0
	}
	part, err := pipeline.PartitionModel(c.Model, c.Stages, c.Strategy, c.Schedule,
		*c.Precision, c.MicrobatchSize, c.Microbatches)
	if err != nil {
		return 0
	}
	profiles := pipeline.Profile(c.Model, part, c.MicrobatchSize)

	rate := c.Topology.GPU.EffectiveFP16()
	if c.Model.DType == tensor.FP32 {
		rate = c.Topology.GPU.EffectiveFP32()
	}
	hbm := c.Topology.GPU.HBM
	tp := c.TP()
	totalMB := int64(c.Microbatches) * int64(c.Minibatches)

	var maxStage, sum units.Duration
	for i, full := range profiles {
		sp := full.Shard(tp)
		perMB := rate.ComputeTime(sp.FwFLOPs) + rate.ComputeTime(sp.BwFLOPs)
		state := 2 * (sp.ParamBytes(*c.Precision) + sp.GradBytes(*c.Precision) +
			sp.OptBytes(*c.Precision))
		optPerMini := hbm.TransferTime(state)
		if perMB < 0 || perMB >= units.MaxDuration || optPerMini >= units.MaxDuration {
			return 0 // unpriceable; make no claim
		}
		// ≤ NumBlocks+2 parameter groups (blocks, embedding, head).
		slack := units.Duration(part.Stages[i].NumBlocks + 2)
		if optPerMini > slack {
			optPerMini -= slack
		} else {
			optPerMini = 0
		}
		stage := perMB*units.Duration(totalMB) + optPerMini*units.Duration(c.Minibatches)
		if stage > maxStage {
			maxStage = stage
		}
		sum += stage
	}
	plane := c.Topology.NumGPUs / (tp * c.CP())
	if plane < 1 {
		plane = 1
	}
	floor := maxStage
	if spread := sum / units.Duration(plane); spread > floor {
		floor = spread
	}
	samples := float64(c.MicrobatchSize) * float64(totalMB) * float64(c.Replicas())
	if samples <= 0 || floor <= 0 {
		return 0
	}
	ttf := floor.Secondsf() * float64(workload) / samples
	return units.Seconds(ttf * (1 - 1e-9))
}
