// Package search is the whole-strategy auto-searcher (planner v2): a
// deterministic branch-and-bound over training strategies — pipeline
// system, stage count, partition strategy, tensor-parallel degree,
// node count and checkpoint interval — that lowers each candidate to a
// runner.Config, evaluates it on the simulator through the runner's
// worker pool, prunes subtrees with a sound static lower bound on
// time-to-fit, and memoizes evaluations in a fingerprint-keyed
// transposition table. The winning strategy is byte-identical at every
// worker count: candidates are ranked in canonical enumeration order,
// evaluations are speculative, and every decision (prune, memoize,
// incumbent update) is re-applied strictly sequentially in rank order.
package search

import (
	"fmt"
	"strconv"
	"strings"

	"mpress/internal/pipeline"
	"mpress/internal/runner"
	"mpress/internal/units"
)

// Key is the canonical, human-readable identity of one whole-training
// strategy after normalization: it is derived from the *defaulted*
// lowered config, so raw strategies that alias (e.g. stages=0 and
// stages=<plane default>) encode to the same Key. The text form is the
// strict wire encoding the fuzz test round-trips.
type Key struct {
	// System is the pipeline/memory system (runner.SystemPlain …).
	System runner.System `json:"system"`
	// TP is the tensor-parallel degree (1 = off).
	TP int `json:"tp"`
	// Stages is the resolved pipeline stage count.
	Stages int `json:"stages"`
	// Partition is the stage-partitioning strategy.
	Partition pipeline.Strategy `json:"partition"`
	// Nodes is the replica (node) count; 1 = single server.
	Nodes int `json:"nodes"`
	// CheckpointNS is the checkpoint interval in nanoseconds: -1 when
	// the strategy does not checkpoint, 0 for the Young–Daly optimum.
	CheckpointNS int64 `json:"ckpt_ns"`
}

// KeyOf derives the canonical Key of a defaulted config (the output of
// Config.WithDefaults / runner.NewJob).
func KeyOf(c runner.Config) Key {
	k := Key{
		System:       c.System,
		TP:           c.TP(),
		Stages:       c.Stages,
		Partition:    c.Strategy,
		Nodes:        c.Replicas(),
		CheckpointNS: -1,
	}
	if c.Checkpoint != nil {
		k.CheckpointNS = int64(c.Checkpoint.Interval)
	}
	return k
}

// Encode renders the strict canonical text form, e.g.
//
//	v1;sys=mpress;tp=1;stages=8;part=compute-balanced;nodes=1;ckpt=-1
//
// DecodeKey accepts exactly this form and nothing else.
func (k Key) Encode() string {
	return fmt.Sprintf("v1;sys=%s;tp=%d;stages=%d;part=%s;nodes=%d;ckpt=%d",
		runner.SystemName(k.System), k.TP, k.Stages,
		pipeline.StrategyName(k.Partition), k.Nodes, k.CheckpointNS)
}

// String is a compact human form for reports ("sys=mpress tp=1 …").
func (k Key) String() string {
	s := fmt.Sprintf("sys=%s tp=%d stages=%d part=%s nodes=%d",
		runner.SystemName(k.System), k.TP, k.Stages,
		pipeline.StrategyName(k.Partition), k.Nodes)
	switch {
	case k.CheckpointNS == 0:
		s += " ckpt=young-daly"
	case k.CheckpointNS > 0:
		s += " ckpt=" + units.Duration(k.CheckpointNS).String()
	}
	return s
}

// DecodeKey parses the canonical text form. It is strict: any input
// that is not byte-identical to some Key's Encode output is rejected
// (checked by re-encoding), so accepted inputs always round-trip and
// the encoding stays a sound transposition/cache key. It never
// panics, whatever the input.
func DecodeKey(s string) (Key, error) {
	fields := strings.Split(s, ";")
	if len(fields) != 7 || fields[0] != "v1" {
		return Key{}, fmt.Errorf("search: key %q: want 7 v1 fields, got %d", s, len(fields))
	}
	var k Key
	for i, want := range []string{"sys=", "tp=", "stages=", "part=", "nodes=", "ckpt="} {
		f := fields[i+1]
		if !strings.HasPrefix(f, want) {
			return Key{}, fmt.Errorf("search: key %q: field %d wants prefix %q", s, i+1, want)
		}
		v := f[len(want):]
		var err error
		switch want {
		case "sys=":
			k.System, err = runner.LookupSystem(v)
		case "part=":
			k.Partition, err = pipeline.LookupStrategy(v)
		case "ckpt=":
			k.CheckpointNS, err = strconv.ParseInt(v, 10, 64)
		default:
			var n int
			n, err = strconv.Atoi(v)
			switch want {
			case "tp=":
				k.TP = n
			case "stages=":
				k.Stages = n
			case "nodes=":
				k.Nodes = n
			}
		}
		if err != nil {
			return Key{}, fmt.Errorf("search: key %q: %v", s, err)
		}
	}
	// Reject every non-canonical spelling (case, whitespace, leading
	// zeros, "+" signs) in one stroke: the parse must re-encode to the
	// exact input.
	if enc := k.Encode(); enc != s {
		return Key{}, fmt.Errorf("search: key %q is not canonical (want %q)", s, enc)
	}
	return k, nil
}
