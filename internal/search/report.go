package search

import (
	"fmt"
	"io"

	"mpress/internal/units"
)

// WriteReport renders the canonical search report: the winner, the
// counters, every priced candidate in rank order, and the skipped
// candidates aggregated by typed reason. Everything printed is
// derived from the deterministic Result fields (never Wall), so the
// bytes are identical at every worker count — the determinism tests
// compare this rendering directly.
func WriteReport(w io.Writer, r *Result) {
	fmt.Fprintf(w, "auto-search: %d candidates, workload %d samples, base %s\n",
		r.SpaceSize, r.Workload, r.BaseFingerprint)
	if best := r.Best(); best != nil {
		fmt.Fprintf(w, "winner: %s\n", best.Key)
		fmt.Fprintf(w, "  time-to-fit %s  (%.3f samples/sec effective)  fingerprint %s\n",
			fmtDur(best.TimeToFit), best.Eval.EffSamplesPerSec, best.Fingerprint)
	} else {
		fmt.Fprintf(w, "winner: none — no feasible strategy in the space\n")
	}
	fmt.Fprintf(w, "search: %d expanded, %d pruned, %d memo hits, %d skipped, %d incumbent updates\n",
		r.Expanded, r.Pruned, r.MemoHits, r.Skipped, r.Updates)

	fmt.Fprintf(w, "candidates:\n")
	for i := range r.Candidates {
		c := &r.Candidates[i]
		switch c.Outcome {
		case OutcomeEvaluated, OutcomeMemo:
			mark := " "
			if r.Winner == c.Rank {
				mark = "*"
			}
			ttf := fmtDur(c.TimeToFit)
			if c.Eval != nil && c.Eval.OOM {
				ttf = "oom"
			}
			fmt.Fprintf(w, "%s %3d  %-9s  %12s  %s\n", mark, c.Rank, c.Outcome, ttf, c.Key)
		case OutcomePruned:
			fmt.Fprintf(w, "  %3d  %-9s  %12s  %s\n", c.Rank, c.Outcome,
				">="+fmtDur(c.Bound), c.Key)
		}
	}

	// Aggregate skips by (reason, detail) in first-appearance order —
	// an infeasible axis value usually repeats across the product.
	type bucket struct {
		reason SkipReason
		detail string
		count  int
	}
	var buckets []bucket
	for i := range r.Candidates {
		c := &r.Candidates[i]
		if c.Outcome != OutcomeSkipped && c.Outcome != OutcomeInfeasible {
			continue
		}
		found := false
		for bi := range buckets {
			if buckets[bi].reason == c.SkipReason && buckets[bi].detail == c.Detail {
				buckets[bi].count++
				found = true
				break
			}
		}
		if !found {
			buckets = append(buckets, bucket{c.SkipReason, c.Detail, 1})
		}
	}
	if len(buckets) > 0 {
		fmt.Fprintf(w, "skipped:\n")
		for _, b := range buckets {
			fmt.Fprintf(w, "  [%s] ×%d: %s\n", b.reason, b.count, b.detail)
		}
	}
}

// fmtDur renders a duration for the report: seconds with millisecond
// precision, stable across magnitudes (units.Duration.String switches
// units, which makes columns jumpy).
func fmtDur(d units.Duration) string {
	if d >= units.MaxDuration {
		return "inf"
	}
	return fmt.Sprintf("%.3fs", d.Secondsf())
}
