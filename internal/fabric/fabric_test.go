package fabric

import (
	"testing"

	"mpress/internal/hw"
	"mpress/internal/sim"
	"mpress/internal/units"
)

func TestP2PDirectUsesAllPairLanes(t *testing.T) {
	topo := hw.DGX1()
	size := 100 * units.MiB
	// gpu0->gpu3 has two lanes: ~2× the bandwidth of gpu0->gpu1 (one).
	bw2 := EffectiveBandwidth(topo, 0, 3, size, 0)
	bw1 := EffectiveBandwidth(topo, 0, 1, size, 0)
	ratio := float64(bw2) / float64(bw1)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("2-lane/1-lane ratio = %.2f, want ≈2", ratio)
	}
	// Single-lane effective bandwidth approaches the lane rate.
	if g := bw1.GBpsf(); g < 23 || g > 24.5 {
		t.Errorf("single lane = %.1f GB/s, want ≈24.3", g)
	}
}

func TestP2PMaxStripesCap(t *testing.T) {
	topo := hw.DGX1()
	size := 100 * units.MiB
	capped := EffectiveBandwidth(topo, 0, 3, size, 1)
	full := EffectiveBandwidth(topo, 0, 3, size, 0)
	if float64(full)/float64(capped) < 1.9 {
		t.Errorf("stripe cap ignored: capped %v vs full %v", capped, full)
	}
}

func TestP2PFallbackOverPCIe(t *testing.T) {
	topo := hw.DGX1()
	// gpu0 and gpu5 share no NVLink lanes: the route degrades to PCIe
	// bandwidth.
	bw := EffectiveBandwidth(topo, 0, 5, 100*units.MiB, 0)
	if g := bw.GBpsf(); g < 9 || g > 12 {
		t.Errorf("PCIe fallback = %.1f GB/s, want ≈11.7", g)
	}
}

func TestBandwidthRampsWithSize(t *testing.T) {
	// Fig. 4: setup latency suppresses small-transfer bandwidth.
	topo := hw.DGX1()
	small := EffectiveBandwidth(topo, 0, 3, 64*units.KiB, 0)
	large := EffectiveBandwidth(topo, 0, 3, 256*units.MiB, 0)
	if float64(small) >= float64(large)*0.8 {
		t.Errorf("bandwidth should ramp with size: small %v, large %v", small, large)
	}
}

func TestScatterAggregatesLanes(t *testing.T) {
	topo := hw.DGX1()
	// gpu0's six lanes: 1 to gpu1, 1 to gpu2, 2 to gpu3, 2 to gpu4.
	// Scattering proportionally should approach 6× lane bandwidth
	// (paper Fig. 4: ~146 GB/s with 6 links).
	size := 600 * units.MiB
	parts := []Part{
		{Peer: 1, Bytes: size / 6},
		{Peer: 2, Bytes: size / 6},
		{Peer: 3, Bytes: size / 3},
		{Peer: 4, Bytes: size / 3},
	}
	bw := EffectiveScatterBandwidth(topo, 0, parts)
	if g := bw.GBpsf(); g < 135 || g > 150 {
		t.Errorf("6-lane scatter = %.1f GB/s, want ≈146", g)
	}
}

func TestScatterWeightingMatters(t *testing.T) {
	// Equal-sized parts over unequal lanes waste the fat pair: the
	// weighted split must beat the naive one (motivates the paper's
	// weighted data stripping on DGX-1).
	topo := hw.DGX1()
	size := 600 * units.MiB
	naive := []Part{
		{Peer: 1, Bytes: size / 4}, {Peer: 2, Bytes: size / 4},
		{Peer: 3, Bytes: size / 4}, {Peer: 4, Bytes: size / 4},
	}
	weighted := []Part{
		{Peer: 1, Bytes: size / 6}, {Peer: 2, Bytes: size / 6},
		{Peer: 3, Bytes: size / 3}, {Peer: 4, Bytes: size / 3},
	}
	bwNaive := EffectiveScatterBandwidth(topo, 0, naive)
	bwWeighted := EffectiveScatterBandwidth(topo, 0, weighted)
	if float64(bwWeighted) <= float64(bwNaive)*1.15 {
		t.Errorf("weighted %v should clearly beat naive %v", bwWeighted, bwNaive)
	}
}

func TestSwitchedScatter(t *testing.T) {
	topo := hw.DGX2()
	size := 600 * units.MiB
	// On the symmetric fabric a single pair already reaches the full
	// per-GPU lane budget.
	pair := EffectiveBandwidth(topo, 0, 1, size, 0)
	if g := pair.GBpsf(); g < 250 || g > 300 {
		t.Errorf("switched pair = %.1f GB/s, want ≈12×24.3", g)
	}
	// Scattering to several peers cannot exceed the egress budget.
	parts := []Part{{Peer: 1, Bytes: size / 3}, {Peer: 2, Bytes: size / 3}, {Peer: 3, Bytes: size / 3}}
	scat := EffectiveScatterBandwidth(topo, 0, parts)
	if float64(scat) > float64(pair)*1.05 {
		t.Errorf("scatter %v exceeds egress budget %v", scat, pair)
	}
}

func TestSwitchedIngressContention(t *testing.T) {
	// Two GPUs pushing full-budget transfers into the same dst must
	// share its ingress lanes: combined completion is ~2× slower than
	// a lone transfer.
	topo := hw.DGX2()
	size := 300 * units.MiB
	s := sim.New()
	f := New(s, topo)
	_, endA := f.P2P(0, 2, size, 0)
	_, endB := f.P2P(1, 2, size, 0)
	lone := sim.New()
	fl := New(lone, topo)
	_, endLone := fl.P2P(0, 2, size, 0)
	last := endA
	if endB > last {
		last = endB
	}
	ratio := float64(last) / float64(endLone)
	if ratio < 1.8 || ratio > 2.3 {
		t.Errorf("ingress contention ratio = %.2f, want ≈2", ratio)
	}
}

func TestHostLinkDirectionsIndependent(t *testing.T) {
	topo := hw.DGX1()
	s := sim.New()
	f := New(s, topo)
	size := 100 * units.MiB
	_, e1 := f.HostLink(0, size, true)
	_, e2 := f.HostLink(0, size, false) // opposite direction: no contention
	if e2 > e1+sim.Time(units.Millisecond) {
		t.Errorf("full-duplex PCIe contended: %v vs %v", e1, e2)
	}
	// Same direction serializes.
	_, e3 := f.HostLink(0, size, true)
	if e3 <= e1 {
		t.Errorf("same-direction PCIe must queue: %v after %v", e3, e1)
	}
}

func TestNVMe(t *testing.T) {
	topo := hw.DGX2()
	s := sim.New()
	f := New(s, topo)
	if !f.HasNVMe() {
		t.Fatal("DGX-2 must expose NVMe")
	}
	start, end := f.NVMeXfer(18 * 100 * units.MiB / 100)
	if end <= start {
		t.Error("NVMe transfer has no duration")
	}
	// DGX-1 has no SSD tier.
	f1 := New(sim.New(), hw.DGX1())
	if f1.HasNVMe() {
		t.Error("DGX-1 must not expose NVMe")
	}
	defer func() {
		if recover() == nil {
			t.Error("NVMeXfer on DGX-1 must panic")
		}
	}()
	f1.NVMeXfer(units.MiB)
}

func TestGatherSymmetricToScatter(t *testing.T) {
	topo := hw.DGX1()
	parts := []Part{{Peer: 3, Bytes: 100 * units.MiB}, {Peer: 4, Bytes: 100 * units.MiB}}
	s1 := sim.New()
	f1 := New(s1, topo)
	_, endOut := f1.Scatter(0, parts)
	s2 := sim.New()
	f2 := New(s2, topo)
	_, endIn := f2.Gather(0, parts)
	if endOut != endIn {
		t.Errorf("scatter %v != gather %v on an idle fabric", endOut, endIn)
	}
}

func TestScatterEmptyParts(t *testing.T) {
	s := sim.New()
	f := New(s, hw.DGX1())
	start, end := f.Scatter(0, nil)
	if start != end || start != s.Now() {
		t.Errorf("empty scatter = %v..%v", start, end)
	}
	start, end = f.Scatter(0, []Part{{Peer: 1, Bytes: 0}})
	if start != end {
		t.Errorf("zero-byte scatter = %v..%v", start, end)
	}
}

func TestP2PSelfPanics(t *testing.T) {
	s := sim.New()
	f := New(s, hw.DGX1())
	defer func() {
		if recover() == nil {
			t.Error("self transfer must panic")
		}
	}()
	f.P2P(2, 2, units.MiB, 0)
}

func TestFig4Shape(t *testing.T) {
	// The calibration targets from the paper's Fig. 4: with large
	// transfers, NV2 ≈ 45 GB/s, NV6 ≈ 146 GB/s, PCIe ≈ 11.7 GB/s,
	// giving 3.9–12.5×.
	topo := hw.DGX1()
	size := 512 * units.MiB
	nv2 := EffectiveBandwidth(topo, 0, 3, size, 0)
	pcie := EffectiveHostBandwidth(topo, 0, size)
	parts := []Part{
		{Peer: 1, Bytes: size / 6}, {Peer: 2, Bytes: size / 6},
		{Peer: 3, Bytes: size / 3}, {Peer: 4, Bytes: size / 3},
	}
	nv6 := EffectiveScatterBandwidth(topo, 0, parts)
	if r := float64(nv2) / float64(pcie); r < 3.5 || r > 4.5 {
		t.Errorf("NV2/PCIe = %.2f, want ≈3.9", r)
	}
	if r := float64(nv6) / float64(pcie); r < 11.5 || r > 13.0 {
		t.Errorf("NV6/PCIe = %.2f, want ≈12.5", r)
	}
}
