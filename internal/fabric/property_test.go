package fabric

import (
	"testing"
	"testing/quick"

	"mpress/internal/hw"
	"mpress/internal/sim"
	"mpress/internal/units"
)

// TestP2PBandwidthNeverExceedsPhysical: no transfer can beat the lane
// aggregate of its pair.
func TestP2PBandwidthNeverExceedsPhysical(t *testing.T) {
	topo := hw.DGX1()
	f := func(sizeIn uint32, srcIn, dstIn uint8) bool {
		src := hw.DeviceID(int(srcIn) % 8)
		dst := hw.DeviceID(int(dstIn) % 8)
		if src == dst {
			return true
		}
		size := units.Bytes(sizeIn%(1<<28)) + 1
		bw := EffectiveBandwidth(topo, src, dst, size, 0)
		limit := topo.PairBandwidth(src, dst)
		if limit == 0 {
			limit = topo.PCIeBW // the host fallback path
		}
		return float64(bw) <= float64(limit)*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestScatterConservesBytes: every byte handed to Scatter is recorded
// as moved through the fabric.
func TestScatterConservesBytes(t *testing.T) {
	topo := hw.DGX1()
	f := func(a, b, c uint24ish) bool {
		parts := []Part{
			{Peer: 1, Bytes: units.Bytes(a % (1 << 24))},
			{Peer: 3, Bytes: units.Bytes(b % (1 << 24))},
			{Peer: 4, Bytes: units.Bytes(c % (1 << 24))},
		}
		var want units.Bytes
		for _, p := range parts {
			want += p.Bytes
		}
		s := sim.New()
		f := New(s, topo)
		start, end := f.Scatter(0, parts)
		if want == 0 {
			return start == end
		}
		return end > start
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

type uint24ish = uint32

// TestSerializedTransfersAccumulate: N same-direction transfers take N
// times one transfer (no magical parallelism on a single pair).
func TestSerializedTransfersAccumulate(t *testing.T) {
	topo := hw.DGX1()
	s := sim.New()
	f := New(s, topo)
	size := 64 * units.MiB
	_, end1 := f.P2P(0, 1, size, 0)
	var endN sim.Time
	for i := 0; i < 4; i++ {
		_, endN = f.P2P(0, 1, size, 0)
	}
	ratio := float64(endN) / float64(end1)
	if ratio < 4.9 || ratio > 5.1 {
		t.Errorf("5 serialized transfers = %.2fx one, want 5x", ratio)
	}
}

// TestDisjointPairsDontContend: transfers on disjoint DGX-1 pairs run
// fully in parallel.
func TestDisjointPairsDontContend(t *testing.T) {
	topo := hw.DGX1()
	s := sim.New()
	f := New(s, topo)
	size := 64 * units.MiB
	// Three disjoint single-lane pairs of the cube mesh.
	_, e1 := f.P2P(0, 1, size, 0)
	_, e2 := f.P2P(2, 6, size, 0)
	_, e3 := f.P2P(3, 7, size, 0)
	if e2 != e1 || e3 != e1 {
		t.Errorf("disjoint transfers ended at %v, %v, %v", e1, e2, e3)
	}
}

// TestOppositeDirectionsFullDuplex: NVLink lanes are modelled per
// direction, so A->B and B->A do not contend.
func TestOppositeDirectionsFullDuplex(t *testing.T) {
	topo := hw.DGX1()
	s := sim.New()
	f := New(s, topo)
	size := 64 * units.MiB
	_, e1 := f.P2P(0, 3, size, 0)
	_, e2 := f.P2P(3, 0, size, 0)
	if e2 != e1 {
		t.Errorf("duplex directions contended: %v vs %v", e1, e2)
	}
}

// TestGraceHopperC2CStandsInForPCIe: the Sec. V platform's host link
// runs at NVLink-C2C speed.
func TestGraceHopperC2CStandsInForPCIe(t *testing.T) {
	bw := EffectiveHostBandwidth(hw.GraceHopper(), 0, 512*units.MiB)
	if g := bw.GBpsf(); g < 60 || g > 64.5 {
		t.Errorf("C2C host link = %.1f GB/s, want ≈64", g)
	}
}
