// Package fabric binds a hardware topology (internal/hw) to simulated
// link resources (internal/sim): it routes GPU-to-GPU transfers over
// NVLink lanes (direct or switched), GPU-to-host transfers over PCIe,
// and host-to-SSD transfers over the NVMe path, modelling per-lane
// serialization and therefore contention.
//
// Two transfer primitives matter to MPress:
//
//   - P2P: an ordinary pairwise copy (inter-stage activations, NCCL
//     send/recv), striped across all lanes the pair shares.
//   - Scatter/Gather: the D2D swap primitive — one source GPU moving
//     weighted sub-blocks to several peers in parallel through
//     disjoint links (paper Sec. III-C, "data stripping").
package fabric

import (
	"fmt"

	"mpress/internal/hw"
	"mpress/internal/sim"
	"mpress/internal/units"
)

// Fabric is the simulated interconnect of one server.
type Fabric struct {
	topo *hw.Topology
	sim  *sim.Sim

	// Direct topologies: one lane set per unordered GPU pair and
	// direction. Key packs src*n+dst.
	pair map[int]*sim.LaneSet
	// Switched topologies: pooled egress/ingress lanes per GPU.
	egress  []*sim.LaneSet
	ingress []*sim.LaneSet

	// PCIe, one per GPU per direction.
	d2h []*sim.LaneSet
	h2d []*sim.LaneSet

	// NVMe path (shared across the server), nil if absent.
	nvme *sim.LaneSet
}

// New builds the fabric for topo on simulation s.
func New(s *sim.Sim, topo *hw.Topology) *Fabric {
	f := &Fabric{
		topo: topo,
		sim:  s,
		pair: make(map[int]*sim.LaneSet),
		d2h:  make([]*sim.LaneSet, topo.NumGPUs),
		h2d:  make([]*sim.LaneSet, topo.NumGPUs),
	}
	n := topo.NumGPUs
	if topo.Switched {
		f.egress = make([]*sim.LaneSet, n)
		f.ingress = make([]*sim.LaneSet, n)
		for g := 0; g < n; g++ {
			f.egress[g] = sim.NewLaneSet(s, fmt.Sprintf("gpu%d-egress", g), topo.LanesPerGPU)
			f.ingress[g] = sim.NewLaneSet(s, fmt.Sprintf("gpu%d-ingress", g), topo.LanesPerGPU)
		}
	} else {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if lanes := topo.LanesBetween(hw.DeviceID(i), hw.DeviceID(j)); lanes > 0 {
					f.pair[i*n+j] = sim.NewLaneSet(s, fmt.Sprintf("nv%d->%d", i, j), lanes)
				}
			}
		}
	}
	for g := 0; g < n; g++ {
		f.d2h[g] = sim.NewLaneSet(s, fmt.Sprintf("pcie-d2h%d", g), 1)
		f.h2d[g] = sim.NewLaneSet(s, fmt.Sprintf("pcie-h2d%d", g), 1)
	}
	if topo.NVMeBW > 0 {
		f.nvme = sim.NewLaneSet(s, "nvme", 1)
	}
	return f
}

// Topology returns the hardware description the fabric simulates.
func (f *Fabric) Topology() *hw.Topology { return f.topo }

// MinLinkLatency returns the smallest nonzero link latency in the
// topology. It is the natural conservative-PDES lookahead within one
// server: no effect crosses devices faster than the fastest link's
// setup latency, so partitions drained inside a window of this span
// are causally independent.
func MinLinkLatency(topo *hw.Topology) units.Duration {
	var min units.Duration
	consider := func(d units.Duration) {
		if d > 0 && (min == 0 || d < min) {
			min = d
		}
	}
	consider(topo.NVLinkLatency)
	consider(topo.PCIeLatency)
	if topo.NVMeBW > 0 {
		consider(topo.NVMeLatency)
	}
	return min
}

// Stats aggregates traffic per link class.
type Stats struct {
	// NVLinkBytes / PCIeBytes / NVMeBytes are total bytes moved.
	NVLinkBytes units.Bytes
	PCIeBytes   units.Bytes
	NVMeBytes   units.Bytes
	// Busy is the summed lane-occupied time per class.
	NVLinkBusy units.Duration
	PCIeBusy   units.Duration
	NVMeBusy   units.Duration
}

// Stats snapshots the fabric's cumulative traffic counters.
func (f *Fabric) Stats() Stats {
	var s Stats
	for _, set := range f.pair {
		s.NVLinkBytes += set.Moved()
		s.NVLinkBusy += set.BusyTime()
	}
	for _, set := range f.egress {
		s.NVLinkBytes += set.Moved()
		s.NVLinkBusy += set.BusyTime()
	}
	// Ingress lanes mirror egress traffic on switched fabrics; count
	// bytes once (egress side) but include their occupancy.
	for _, set := range f.ingress {
		s.NVLinkBusy += set.BusyTime()
	}
	for _, set := range f.d2h {
		s.PCIeBytes += set.Moved()
		s.PCIeBusy += set.BusyTime()
	}
	for _, set := range f.h2d {
		s.PCIeBytes += set.Moved()
		s.PCIeBusy += set.BusyTime()
	}
	if f.nvme != nil {
		s.NVMeBytes = f.nvme.Moved()
		s.NVMeBusy = f.nvme.BusyTime()
	}
	return s
}

// reservePairJoint books one lane from each of two pooled sets for the
// same transfer: the sub-block starts when both a source egress lane
// and a destination ingress lane are free.
func reservePairJoint(now sim.Time, a, b *sim.LaneSet, size units.Bytes, bw units.Bandwidth, lat units.Duration) (start, end sim.Time) {
	start = now
	if t := a.NextFree(); t > start {
		start = t
	}
	if t := b.NextFree(); t > start {
		start = t
	}
	dur := lat + bw.TransferTime(size)
	// Occupy both sets until the joint end by reserving the idle gap
	// plus the transfer on each.
	end = start + dur
	a.ReserveUntil(end, size)
	b.ReserveUntil(end, 0)
	return start, end
}

// P2P transfers size bytes from one GPU to another, striping across up
// to maxStripes lanes (0 means all available). Pairs without NVLink
// connectivity (possible in DGX-1's cube mesh) fall back to the PCIe
// path through host memory, as real systems do.
func (f *Fabric) P2P(src, dst hw.DeviceID, size units.Bytes, maxStripes int) (start, end sim.Time) {
	if src == dst {
		panic(fmt.Sprintf("fabric: self transfer on %v", src))
	}
	lanes := f.topo.LanesBetween(src, dst)
	if lanes == 0 {
		// No NVLink route: staged copy over PCIe (d2h then h2d at
		// PCIe bandwidth; the two legs pipeline, so charge one leg
		// on each link and the end-to-end time of the slower start).
		s1, _ := f.d2h[src].Reserve(size, f.topo.PCIeBW, f.topo.PCIeLatency)
		_, e2 := f.h2d[dst].Reserve(size, f.topo.PCIeBW, f.topo.PCIeLatency)
		return s1, e2
	}
	k := lanes
	if maxStripes > 0 && maxStripes < k {
		k = maxStripes
	}
	if f.topo.Switched {
		return f.switchedTransfer(src, dst, size, k)
	}
	n := f.topo.NumGPUs
	return f.pair[int(src)*n+int(dst)].ReserveStriped(size, k, f.topo.NVLinkLaneBW, f.topo.NVLinkLatency)
}

// switchedTransfer stripes size over k joint egress/ingress lane pairs.
func (f *Fabric) switchedTransfer(src, dst hw.DeviceID, size units.Bytes, k int) (start, end sim.Time) {
	now := f.sim.Now()
	per := size / units.Bytes(k)
	rem := size - per*units.Bytes(k)
	start = sim.Time(units.MaxDuration)
	for i := 0; i < k; i++ {
		blk := per
		if i == 0 {
			blk += rem
		}
		s, e := reservePairJoint(now, f.egress[src], f.ingress[dst], blk, f.topo.NVLinkLaneBW, f.topo.NVLinkLatency)
		if s < start {
			start = s
		}
		if e > end {
			end = e
		}
	}
	return start, end
}

// Part is one stripe of a scatter/gather D2D swap: Bytes of the tensor
// routed to (or from) Peer.
type Part struct {
	Peer  hw.DeviceID
	Bytes units.Bytes
}

// Scatter performs the D2D swap-out primitive: src pushes each part to
// its peer concurrently, each part striped across the lanes of that
// pair. It returns the earliest start and the completion time of the
// slowest part.
func (f *Fabric) Scatter(src hw.DeviceID, parts []Part) (start, end sim.Time) {
	return f.multi(src, parts, true)
}

// Gather performs the D2D swap-in primitive: dst pulls each part back
// from its peer concurrently.
func (f *Fabric) Gather(dst hw.DeviceID, parts []Part) (start, end sim.Time) {
	return f.multi(dst, parts, false)
}

func (f *Fabric) multi(local hw.DeviceID, parts []Part, out bool) (start, end sim.Time) {
	if len(parts) == 0 {
		now := f.sim.Now()
		return now, now
	}
	start = sim.Time(units.MaxDuration)
	for _, p := range parts {
		if p.Bytes < 0 {
			panic(fmt.Sprintf("fabric: negative part %v", p.Bytes))
		}
		if p.Bytes == 0 {
			continue
		}
		src, dst := local, p.Peer
		if !out {
			src, dst = p.Peer, local
		}
		s, e := f.P2P(src, dst, p.Bytes, 0)
		if s < start {
			start = s
		}
		if e > end {
			end = e
		}
	}
	if start == sim.Time(units.MaxDuration) { // all parts empty
		now := f.sim.Now()
		return now, now
	}
	return start, end
}

// HostLink transfers between a GPU and host memory over PCIe.
func (f *Fabric) HostLink(gpu hw.DeviceID, size units.Bytes, toHost bool) (start, end sim.Time) {
	if !gpu.IsGPU() || int(gpu) >= f.topo.NumGPUs {
		panic(fmt.Sprintf("fabric: HostLink endpoint %v", gpu))
	}
	set := f.h2d[gpu]
	if toHost {
		set = f.d2h[gpu]
	}
	return set.Reserve(size, f.topo.PCIeBW, f.topo.PCIeLatency)
}

// NVMeXfer transfers between host memory and the SSD tier. It panics
// if the topology has no NVMe path.
func (f *Fabric) NVMeXfer(size units.Bytes) (start, end sim.Time) {
	if f.nvme == nil {
		panic("fabric: topology has no NVMe tier")
	}
	return f.nvme.Reserve(size, f.topo.NVMeBW, f.topo.NVMeLatency)
}

// HasNVMe reports whether the SSD tier exists.
func (f *Fabric) HasNVMe() bool { return f.nvme != nil }

// EffectiveBandwidth is a measurement helper (Fig. 4): it runs an
// isolated transfer of size bytes from src using k stripes toward dst
// (or all NVLink neighbors when scatter is true) on a fresh clock and
// returns the achieved bandwidth.
func EffectiveBandwidth(topo *hw.Topology, src, dst hw.DeviceID, size units.Bytes, stripes int) units.Bandwidth {
	s := sim.New()
	f := New(s, topo)
	start, end := f.P2P(src, dst, size, stripes)
	if end <= start {
		return 0
	}
	return units.Bandwidth(float64(size) / (sim.Time(end - start).Secondsf()))
}

// EffectiveHostBandwidth measures an isolated PCIe transfer.
func EffectiveHostBandwidth(topo *hw.Topology, gpu hw.DeviceID, size units.Bytes) units.Bandwidth {
	s := sim.New()
	f := New(s, topo)
	start, end := f.HostLink(gpu, size, true)
	if end <= start {
		return 0
	}
	return units.Bandwidth(float64(size) / (sim.Time(end - start).Secondsf()))
}

// EffectiveScatterBandwidth measures an isolated scatter of size bytes
// split across the given parts.
func EffectiveScatterBandwidth(topo *hw.Topology, src hw.DeviceID, parts []Part) units.Bandwidth {
	s := sim.New()
	f := New(s, topo)
	var total units.Bytes
	for _, p := range parts {
		total += p.Bytes
	}
	start, end := f.Scatter(src, parts)
	if end <= start {
		return 0
	}
	return units.Bandwidth(float64(total) / (sim.Time(end - start).Secondsf()))
}
