package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"mpress/internal/units"
)

// kernelWorkload drives a small but representative event mix through s:
// a serial queue, a striped lane set, and chained events. It returns
// the final simulated time so callers can assert determinism.
func kernelWorkload(s *Sim) Time {
	q := NewQueue(s, "compute")
	l := NewLaneSet(s, "nvlink", 4)
	for i := 0; i < 32; i++ {
		d := units.Duration(10 + i)
		s.At(units.Duration(i), func() {
			q.Submit(d, func(start, end Time) {
				l.ReserveStriped(units.Bytes(1<<20), 2, units.GBps(50), units.Microsecond)
			})
		})
	}
	return s.Run()
}

func TestResetReplaysIdentically(t *testing.T) {
	s := New()
	first := kernelWorkload(s)
	if s.Executed() == 0 {
		t.Fatal("workload executed no events")
	}
	s.Reset()
	if s.Now() != 0 || s.Executed() != 0 || s.Pending() != 0 {
		t.Fatalf("Reset left state: now=%v executed=%d pending=%d", s.Now(), s.Executed(), s.Pending())
	}
	second := kernelWorkload(s)
	if first != second {
		t.Fatalf("replay after Reset diverged: %v vs %v", first, second)
	}
}

func TestResetClearsPendingAndFlags(t *testing.T) {
	s := New()
	s.MaxEvents = 5
	s.InterruptEvery = 1
	s.Interrupt = func() bool { return false }
	s.At(1, func() { s.Stop() })
	s.At(2, func() { t.Fatal("event after Stop ran") })
	s.Run()
	if s.Pending() == 0 {
		t.Fatal("expected a leftover queued event")
	}
	s.Reset()
	if s.Pending() != 0 {
		t.Fatalf("Reset left %d pending events", s.Pending())
	}
	if s.MaxEvents != 0 || s.Interrupt != nil || s.InterruptEvery != 0 {
		t.Fatal("Reset did not clear configuration knobs")
	}
}

func TestPoolRecyclesPristine(t *testing.T) {
	s := Get()
	end := kernelWorkload(s)
	Put(s)
	r := Get()
	if r.Now() != 0 || r.Executed() != 0 || r.Pending() != 0 {
		t.Fatalf("Get returned a dirty Sim: now=%v executed=%d pending=%d", r.Now(), r.Executed(), r.Pending())
	}
	if again := kernelWorkload(r); again != end {
		t.Fatalf("pooled replay diverged: %v vs %v", again, end)
	}
	Put(r)
}

func TestStatsReportThroughput(t *testing.T) {
	s := New()
	kernelWorkload(s)
	st := s.Stats()
	if st.Events != s.Executed() {
		t.Fatalf("Stats.Events = %d, want %d", st.Events, s.Executed())
	}
	if st.Wall <= 0 {
		t.Fatalf("Stats.Wall = %v, want > 0", st.Wall)
	}
	if st.EventsPerSec <= 0 {
		t.Fatalf("Stats.EventsPerSec = %v, want > 0", st.EventsPerSec)
	}
}

func TestTimelineArenaRecycles(t *testing.T) {
	s := New()
	a := NewLaneSet(s, "a", 4)
	b := NewLaneSet(s, "b", 4)
	a.Reserve(units.Bytes(1<<20), units.GBps(50), 0)
	b.Reserve(units.Bytes(1<<20), units.GBps(50), 0)
	if a.lanes[0] == 0 || b.lanes[0] == 0 {
		t.Fatal("reservations did not mark the timelines")
	}
	s.Reset()
	c := NewLaneSet(s, "c", 4)
	for i, v := range c.lanes {
		if v != 0 {
			t.Fatalf("recycled timeline lane %d = %v, want 0", i, v)
		}
	}
	// The clamped capacity must keep neighbouring timelines disjoint.
	d := NewLaneSet(s, "d", 4)
	c.lanes[3] = 99
	if d.lanes[0] == 99 {
		t.Fatal("adjacent timelines share storage")
	}
}

// benchHorizon drives a steady-state event churn: `pending` events stay
// queued while `churn` additional events flow through, with inter-event
// gaps drawn from one horizon regime. It reports the kernel's own
// events/sec.
func benchHorizon(b *testing.B, mode SchedMode, pending, churn int, maxGap int64) {
	b.ReportAllocs()
	total := int64(pending + churn)
	for i := 0; i < b.N; i++ {
		s := Get()
		s.SetScheduler(mode)
		rng := rand.New(rand.NewSource(42))
		remaining := churn
		var fn func()
		fn = func() {
			if remaining > 0 {
				remaining--
				s.After(Time(1+rng.Int63n(maxGap)), fn)
			}
		}
		for j := 0; j < pending; j++ {
			s.At(Time(1+rng.Int63n(maxGap)), fn)
		}
		s.Run()
		if got := s.Executed(); got != total {
			b.Fatalf("executed %d events, want %d", got, total)
		}
		Put(s)
	}
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// horizonRegimes are the gap distributions the heap-vs-calendar grid
// runs: dense is µs-scale gaps (the executor's regime — the calendar
// queue's home turf), burst packs hundreds of events per nanosecond
// tick (bucket scans degenerate, the heap/auto-fallback case), sparse
// spreads events over seconds (width adaptation keeps buckets useful).
var horizonRegimes = []struct {
	name   string
	maxGap int64
}{
	{"dense", 4096},
	{"burst", 256},
	{"sparse", 1 << 32},
}

// BenchmarkSimKernel measures the kernel hot path. The pooled/fresh
// pair pins steady-state allocations (event store and lane timelines
// are recycled, so allocs/op stays at the workload's own closures); the
// horizon grid compares the heap against the calendar queue on dense
// and sparse horizons at 1k and 100k pending events — the calendar's
// win on dense horizons is the headline number in BENCH_sim.json.
func BenchmarkSimKernel(b *testing.B) {
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := Get()
			kernelWorkload(s)
			Put(s)
		}
	})
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			kernelWorkload(New())
		}
	})
	for _, hz := range horizonRegimes {
		for _, pending := range []int{1_000, 100_000} {
			for _, mode := range []SchedMode{SchedHeap, SchedCalendar, SchedAuto} {
				hz, pending, mode := hz, pending, mode
				b.Run(fmt.Sprintf("%s-%dk-%s", hz.name, pending/1000, mode), func(b *testing.B) {
					benchHorizon(b, mode, pending, 100_000, hz.maxGap)
				})
			}
		}
	}
}
