// Package sim provides a small deterministic discrete-event simulation
// kernel: an event loop ordered by (time, insertion sequence) plus the
// serial resources the training simulator builds on — FIFO queues for
// GPU compute/copy streams and lane timelines for interconnect links.
//
// Determinism is load-bearing: ties are broken by insertion order, so a
// simulation with identical inputs always produces identical timings,
// and tests can assert exact values.
//
// The event store (sched.go) is a calendar queue with struct-of-arrays
// storage for the dense horizons training graphs produce, with a binary
// heap for small or sparse ones; both realize the same (time, seq)
// total order, so scheduler choice never changes results. A
// conservative parallel mode (pdes.go) partitions the event space and
// drains partitions on worker goroutines inside lookahead windows,
// merging deterministically so parallel runs are byte-identical to
// serial ones.
//
// The kernel is built to be reused: Reset returns a Sim to its pristine
// state without releasing its event store or timeline arena, and the
// package-level Get/Put pool recycles instances so a hot caller (the
// planner emulates hundreds of candidate plans per job) runs the event
// loop without per-run heap growth.
package sim

import (
	"fmt"
	"sync"
	"time"

	"mpress/internal/units"
)

// Time is the simulated clock, in nanoseconds since simulation start.
type Time = units.Duration

// Sim is one simulation instance. The zero value is not usable; call New
// (or Get, which recycles instances through the package pool).
type Sim struct {
	now     Time
	seq     int64
	q       sched
	stopped bool
	// executed counts events whose closures actually ran, exposed for
	// tests and for the runaway-guard in Run. An event popped in the
	// iteration where Interrupt fires is not counted: the poll happens
	// before the pop.
	executed int64
	// wall accumulates real time spent inside Run, for Stats.
	wall time.Duration
	// pdes, when non-nil, is the conservative parallel engine; At/After/
	// Run route through it. See EnablePDES.
	pdes *pdes
	// arena backs resource timelines (LaneSet lanes); arenaUsed is the
	// high-water mark of the current block. Reset recycles the block, so
	// pooled Sims hand out timelines without allocating.
	arena     []Time
	arenaUsed int
	// MaxEvents aborts Run (with a panic) if exceeded; zero means the
	// default of 200M events. It exists to turn accidental infinite
	// event loops into diagnosable failures.
	MaxEvents int64
	// Interrupt, when set, is polled every InterruptEvery processed
	// events; when it returns true, Run stops as if Stop had been
	// called. It exists so a long simulation can honor external
	// cancellation (a context, a signal) without per-event overhead.
	Interrupt func() bool
	// InterruptEvery is the polling stride; zero means the default of
	// 8192 events.
	InterruptEvery int64
	// Interrupted reports whether the last Run was halted by the
	// Interrupt hook (as opposed to draining its events or Stop).
	Interrupted bool
}

// New returns a simulation positioned at time zero.
func New() *Sim {
	return &Sim{}
}

var pool = sync.Pool{New: func() any { return New() }}

// Get returns a pristine Sim from the package pool. Callers that run
// many simulations back to back (the planner's refinement loop) should
// pair it with Put so event stores and timeline arenas are recycled
// instead of reallocated per run.
func Get() *Sim {
	return pool.Get().(*Sim)
}

// Put resets s and returns it to the package pool. The caller must not
// retain s, nor any timeline handed out by it (LaneSets built on s),
// after Put.
func Put(s *Sim) {
	s.Reset()
	pool.Put(s)
}

// Reset returns s to its pristine post-New state while keeping the
// event store's and timeline arena's capacity, so a recycled Sim runs
// without reallocating either. Queued closures are zeroed to keep them
// collectable. Any PDES engine is torn down (worker goroutines joined).
func (s *Sim) Reset() {
	if s.pdes != nil {
		s.pdes.shutdown()
		s.pdes = nil
	}
	s.q.reset()
	s.arenaUsed = 0
	s.now = 0
	s.seq = 0
	s.executed = 0
	s.wall = 0
	s.stopped = false
	s.Interrupted = false
	s.MaxEvents = 0
	s.Interrupt = nil
	s.InterruptEvery = 0
}

// SetScheduler selects the event-store structure: SchedAuto (default),
// SchedHeap, or SchedCalendar. Scheduler choice never changes results —
// only the constant factor of the event loop.
func (s *Sim) SetScheduler(m SchedMode) {
	s.q.setMode(m)
	if s.pdes != nil {
		for _, p := range s.pdes.parts {
			p.q.setMode(m)
		}
	}
}

// timeline hands out a zeroed n-entry Time slice from the Sim's arena,
// full-capacity-clamped so appends cannot overlap neighbours. Blocks
// are recycled by Reset; growth strands the old block (still referenced
// by outstanding timelines) and starts a larger one.
func (s *Sim) timeline(n int) []Time {
	if s.arenaUsed+n > len(s.arena) {
		size := 2 * (s.arenaUsed + n)
		if size < 64 {
			size = 64
		}
		s.arena = make([]Time, size)
		s.arenaUsed = 0
	}
	tl := s.arena[s.arenaUsed : s.arenaUsed+n : s.arenaUsed+n]
	s.arenaUsed += n
	for i := range tl {
		tl[i] = 0
	}
	return tl
}

// Now returns the current simulated time. Under PDES this is the
// coordinator partition's clock (partition 0), which is where all
// events scheduled through the Sim-level API run.
func (s *Sim) Now() Time { return s.now }

// Executed returns the number of events whose closures have run.
func (s *Sim) Executed() int64 { return s.executed }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it always indicates a modelling bug.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	if s.pdes != nil {
		s.pdes.parts[0].at(t, fn)
		return
	}
	s.seq++
	s.q.push(t, s.seq, fn)
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d units.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Stop makes Run return after the current event completes. Pending
// events remain queued. Under PDES, Stop from inside an event halts the
// calling partition immediately (so a single-partition run matches the
// serial kernel exactly); other partitions finish the current window.
func (s *Sim) Stop() {
	if s.pdes != nil {
		// Legal only from setup or a coordinator (partition 0) event;
		// the flag write below would race from any other partition.
		s.pdes.stop()
		return
	}
	s.stopped = true
}

// Run processes events until none remain (or Stop is called) and
// returns the final simulated time.
func (s *Sim) Run() Time {
	max := s.MaxEvents
	if max == 0 {
		max = 200_000_000
	}
	every := s.InterruptEvery
	if every <= 0 {
		every = 8192
	}
	s.stopped = false
	s.Interrupted = false
	t0 := time.Now()
	if s.pdes != nil {
		s.pdes.run(max, every)
		s.wall += time.Since(t0)
		return s.now
	}
	for s.q.count > 0 && !s.stopped {
		// Poll before popping: an interrupted Run leaves the unexecuted
		// event queued and uncounted.
		if s.Interrupt != nil && s.executed > 0 && s.executed%every == 0 && s.Interrupt() {
			s.Interrupted = true
			break
		}
		t, _, fn, _ := s.q.pop()
		s.now = t
		s.executed++
		if s.executed > max {
			panic(fmt.Sprintf("sim: exceeded %d events at t=%v — runaway event loop?", max, s.now))
		}
		fn()
	}
	s.wall += time.Since(t0)
	return s.now
}

// Stats summarizes the kernel's processed work: how many events Run
// consumed, the real time it spent doing so, and the resulting
// throughput. EventsPerSec is the simulator's own processing rate (not
// a simulated quantity) — the figure of merit for the planner's
// emulation loop. Scheduler names the active event structure; Windows
// counts PDES lookahead windows (zero for serial runs).
type Stats struct {
	Events       int64
	Wall         time.Duration
	EventsPerSec float64
	Scheduler    string
	Windows      int64
}

// Stats returns the run statistics accumulated since New or Reset.
func (s *Sim) Stats() Stats {
	st := Stats{Events: s.executed, Wall: s.wall, Scheduler: s.q.name()}
	if s.pdes != nil {
		st.Windows = s.pdes.windows
	}
	if s.wall > 0 {
		st.EventsPerSec = float64(s.executed) / s.wall.Seconds()
	}
	return st
}

// Pending returns the number of queued events, for tests.
func (s *Sim) Pending() int {
	n := s.q.count
	if s.pdes != nil {
		for _, p := range s.pdes.parts {
			n += p.q.count
		}
	}
	return n
}
