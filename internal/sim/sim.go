// Package sim provides a small deterministic discrete-event simulation
// kernel: an event loop ordered by (time, insertion sequence) plus the
// serial resources the training simulator builds on — FIFO queues for
// GPU compute/copy streams and lane timelines for interconnect links.
//
// Determinism is load-bearing: ties are broken by insertion order, so a
// simulation with identical inputs always produces identical timings,
// and tests can assert exact values.
package sim

import (
	"container/heap"
	"fmt"

	"mpress/internal/units"
)

// Time is the simulated clock, in nanoseconds since simulation start.
type Time = units.Duration

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is one simulation instance. The zero value is not usable; call New.
type Sim struct {
	now     Time
	seq     int64
	events  eventHeap
	stopped bool
	// executed counts processed events, exposed for tests and for the
	// runaway-guard in Run.
	executed int64
	// MaxEvents aborts Run (with a panic) if exceeded; zero means the
	// default of 200M events. It exists to turn accidental infinite
	// event loops into diagnosable failures.
	MaxEvents int64
	// Interrupt, when set, is polled every InterruptEvery processed
	// events; when it returns true, Run stops as if Stop had been
	// called. It exists so a long simulation can honor external
	// cancellation (a context, a signal) without per-event overhead.
	Interrupt func() bool
	// InterruptEvery is the polling stride; zero means the default of
	// 8192 events.
	InterruptEvery int64
	// Interrupted reports whether the last Run was halted by the
	// Interrupt hook (as opposed to draining its events or Stop).
	Interrupted bool
}

// New returns a simulation positioned at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Executed returns the number of events processed so far.
func (s *Sim) Executed() int64 { return s.executed }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it always indicates a modelling bug.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d units.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Stop makes Run return after the current event completes. Pending
// events remain queued.
func (s *Sim) Stop() { s.stopped = true }

// Run processes events until none remain (or Stop is called) and
// returns the final simulated time.
func (s *Sim) Run() Time {
	max := s.MaxEvents
	if max == 0 {
		max = 200_000_000
	}
	every := s.InterruptEvery
	if every <= 0 {
		every = 8192
	}
	s.stopped = false
	s.Interrupted = false
	for len(s.events) > 0 && !s.stopped {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		s.executed++
		if s.executed > max {
			panic(fmt.Sprintf("sim: exceeded %d events at t=%v — runaway event loop?", max, s.now))
		}
		if s.Interrupt != nil && s.executed%every == 0 && s.Interrupt() {
			s.Interrupted = true
			break
		}
		e.fn()
	}
	return s.now
}

// Pending returns the number of queued events, for tests.
func (s *Sim) Pending() int { return len(s.events) }
