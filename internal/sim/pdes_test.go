package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"mpress/internal/units"
)

// replicaWorkload models P replica streams exchanging messages: each
// partition runs a local compute chain (a queue of back-to-back tasks)
// and every third completion sends a message one partition to the right
// with exactly the NIC-latency lookahead of delay. The trace records
// every event per partition; under the determinism contract it must be
// identical at every worker count.
func replicaWorkload(s *Sim, parts, steps int, lookahead units.Duration) [][]string {
	logs := make([][]string, parts)
	queues := make([]*Queue, parts)
	for p := 0; p < parts; p++ {
		pt := s.Partition(p)
		queues[p] = NewQueueOn(pt, fmt.Sprintf("compute%d", p))
	}
	var step func(p, i int)
	step = func(p, i int) {
		pt := s.Partition(p)
		logs[p] = append(logs[p], fmt.Sprintf("%d:step%d@%d", p, i, pt.Now()))
		if i >= steps {
			return
		}
		queues[p].Submit(units.Duration(7+(i*p)%5), func(start, end Time) {
			logs[p] = append(logs[p], fmt.Sprintf("%d:done%d@%d-%d", p, i, start, end))
			if i%3 == 2 {
				from := p
				pt.Send((p+1)%parts, lookahead, func() {
					to := (from + 1) % parts
					logs[to] = append(logs[to], fmt.Sprintf("%d:msg-from%d@%d", to, from, s.Partition(to).Now()))
				})
			}
			pt.After(units.Duration(1+i%4), func() { step(p, i+1) })
		})
	}
	for p := 0; p < parts; p++ {
		// Stagger the starts so partitions drift apart in time.
		pp := p
		s.Partition(p).At(Time(3*p), func() { step(pp, 0) })
	}
	return logs
}

func runReplicas(t *testing.T, parts, workers int, mode SchedMode) ([][]string, Time, int64, int64) {
	t.Helper()
	const lookahead = 2 * units.Microsecond
	s := New()
	s.SetScheduler(mode)
	if err := s.EnablePDES(PDESConfig{Partitions: parts, Lookahead: lookahead, Workers: workers}); err != nil {
		t.Fatal(err)
	}
	logs := replicaWorkload(s, parts, 40, lookahead)
	end := s.Run()
	st := s.Stats()
	s.Reset() // joins workers
	return logs, end, st.Events, st.Windows
}

// TestPDESDeterministicAcrossWorkers is the kernel-level determinism
// contract: the full per-partition event trace, final time and event
// count are identical at every worker count and under every scheduler.
func TestPDESDeterministicAcrossWorkers(t *testing.T) {
	const parts = 4
	baseLogs, baseEnd, baseEvents, _ := runReplicas(t, parts, 1, SchedAuto)
	if baseEvents == 0 {
		t.Fatal("workload executed no events")
	}
	for _, workers := range []int{2, 4, 8} {
		for _, mode := range []SchedMode{SchedAuto, SchedHeap, SchedCalendar} {
			logs, end, events, _ := runReplicas(t, parts, workers, mode)
			if end != baseEnd || events != baseEvents {
				t.Fatalf("workers=%d mode=%v: end=%v events=%d, want end=%v events=%d",
					workers, mode, end, events, baseEnd, baseEvents)
			}
			for p := range logs {
				if strings.Join(logs[p], "\n") != strings.Join(baseLogs[p], "\n") {
					t.Fatalf("workers=%d mode=%v: partition %d trace diverged", workers, mode, p)
				}
			}
		}
	}
}

// TestPDESSinglePartitionMatchesSerial: with one partition, the window
// loop must reproduce the serial kernel exactly — same final time, same
// executed count — on the shared kernel workload (which schedules only
// through the Sim-level API, like the executor does).
func TestPDESSinglePartitionMatchesSerial(t *testing.T) {
	serial := New()
	serialEnd := kernelWorkload(serial)

	p := New()
	if err := p.EnablePDES(PDESConfig{Partitions: 1, Lookahead: units.Microsecond, Workers: 8}); err != nil {
		t.Fatal(err)
	}
	pdesEnd := kernelWorkload(p)
	if pdesEnd != serialEnd || p.Executed() != serial.Executed() {
		t.Fatalf("PDES(1 partition): end=%v executed=%d; serial: end=%v executed=%d",
			pdesEnd, p.Executed(), serialEnd, serial.Executed())
	}
	if w := p.Stats().Windows; w == 0 {
		t.Fatal("PDES run reported zero windows")
	}
	p.Reset()
}

// TestPDESStopMatchesSerial: Stop from a coordinator event halts at the
// same event as the serial kernel (the executor's OOM abort path).
func TestPDESStopMatchesSerial(t *testing.T) {
	build := func(s *Sim) *int {
		ran := new(int)
		for i := 0; i < 50; i++ {
			i := i
			s.At(Time(i*10), func() {
				*ran++
				if i == 20 {
					s.Stop()
				}
			})
		}
		return ran
	}
	serial := New()
	sr := build(serial)
	serialEnd := serial.Run()

	p := New()
	if err := p.EnablePDES(PDESConfig{Partitions: 3, Lookahead: units.Microsecond, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	pr := build(p)
	pdesEnd := p.Run()
	if *pr != *sr || pdesEnd != serialEnd || p.Executed() != serial.Executed() {
		t.Fatalf("PDES stop: ran=%d end=%v executed=%d; serial: ran=%d end=%v executed=%d",
			*pr, pdesEnd, p.Executed(), *sr, serialEnd, serial.Executed())
	}
	if p.Pending() != serial.Pending() {
		t.Fatalf("PDES left %d pending, serial %d", p.Pending(), serial.Pending())
	}
	p.Reset()
}

// TestPDESLookaheadEnforced: a cross-partition send below the lookahead
// inside a window must panic — silently admitting it would break the
// causal-independence argument.
func TestPDESLookaheadEnforced(t *testing.T) {
	s := New()
	if err := s.EnablePDES(PDESConfig{Partitions: 2, Lookahead: 10 * units.Microsecond, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	defer s.Reset()
	s.Partition(0).At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("short send did not panic")
			}
		}()
		s.Partition(0).Send(1, units.Microsecond, func() {})
	})
	s.Run()
}

// TestPDESSetupRequiresPristine: EnablePDES after any scheduling or on
// a non-positive lookahead must fail.
func TestPDESSetupRequiresPristine(t *testing.T) {
	s := New()
	s.At(1, func() {})
	if err := s.EnablePDES(PDESConfig{Partitions: 2, Lookahead: 1}); err == nil {
		t.Fatal("EnablePDES accepted a dirty Sim")
	}
	s.Reset()
	if err := s.EnablePDES(PDESConfig{Partitions: 2, Lookahead: 0}); err == nil {
		t.Fatal("EnablePDES accepted zero lookahead")
	}
	if err := s.EnablePDES(PDESConfig{Partitions: 0, Lookahead: 1}); err == nil {
		t.Fatal("EnablePDES accepted zero partitions")
	}
	if err := s.EnablePDES(PDESConfig{Partitions: 2, Lookahead: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.EnablePDES(PDESConfig{Partitions: 2, Lookahead: 1}); err == nil {
		t.Fatal("EnablePDES accepted double enablement")
	}
	s.Reset()
}

// TestPDESResetJoinsWorkers: Reset must tear the worker pool down — no
// goroutine may outlive it (the fleet leak checks sit above this).
func TestPDESResetJoinsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		s := New()
		if err := s.EnablePDES(PDESConfig{Partitions: 4, Lookahead: units.Microsecond, Workers: 4}); err != nil {
			t.Fatal(err)
		}
		replicaWorkload(s, 4, 5, units.Microsecond)
		s.Run()
		s.Reset()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestPDESInterrupt: the hook is honored at window barriers; remaining
// events stay queued and Interrupted is set.
func TestPDESInterrupt(t *testing.T) {
	s := New()
	if err := s.EnablePDES(PDESConfig{Partitions: 2, Lookahead: units.Microsecond, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer s.Reset()
	s.InterruptEvery = 8
	s.Interrupt = func() bool { return true }
	replicaWorkload(s, 2, 100, units.Microsecond)
	s.Run()
	if !s.Interrupted {
		t.Fatal("Interrupted not set")
	}
	if s.Pending() == 0 {
		t.Fatal("interrupt drained the whole event space")
	}
}
