package sim

import (
	"fmt"

	"mpress/internal/units"
)

// Queue is a serial FIFO resource, modelling a CUDA stream or any other
// engine that executes one task at a time in submission order. Tasks
// submitted earlier (in simulated time) run earlier; ties follow
// submission order.
type Queue struct {
	sim  *Sim
	part *partition // non-nil when bound to a PDES partition
	name string
	// busyUntil is when the queue becomes free.
	busyUntil Time
	// busyTime accumulates occupied time, for utilization reporting.
	busyTime units.Duration
	// tasks counts completed submissions.
	tasks int64
}

// NewQueue creates a serial queue attached to s.
func NewQueue(s *Sim, name string) *Queue {
	return &Queue{sim: s, name: name}
}

// NewQueueOn creates a serial queue bound to a PDES partition: its
// clock and completion callbacks live on that partition.
func NewQueueOn(pt Part, name string) *Queue {
	return &Queue{sim: pt.p.s, part: pt.p, name: name}
}

// now returns the owning clock (partition-bound or Sim-level).
func (q *Queue) now() Time {
	if q.part != nil {
		return q.part.now
	}
	return q.sim.Now()
}

func (q *Queue) at(t Time, fn func()) {
	if q.part != nil {
		q.part.at(t, fn)
		return
	}
	q.sim.At(t, fn)
}

// Name returns the queue's label.
func (q *Queue) Name() string { return q.name }

// Submit enqueues a task of the given duration at the current simulated
// time. The task starts as soon as the queue is free and done (if
// non-nil) is invoked at its completion time with the actual start and
// end times.
func (q *Queue) Submit(dur units.Duration, done func(start, end Time)) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: queue %s: negative duration %v", q.name, dur))
	}
	start := q.now()
	if q.busyUntil > start {
		start = q.busyUntil
	}
	end := start + dur
	q.busyUntil = end
	q.busyTime += dur
	q.tasks++
	if done != nil {
		q.at(end, func() { done(start, end) })
	}
}

// BusyUntil reports when the queue next becomes free.
func (q *Queue) BusyUntil() Time { return q.busyUntil }

// BusyTime reports the total occupied time so far.
func (q *Queue) BusyTime() units.Duration { return q.busyTime }

// Tasks reports how many tasks have been submitted.
func (q *Queue) Tasks() int64 { return q.tasks }

// Utilization reports busyTime divided by the given horizon.
func (q *Queue) Utilization(horizon units.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(q.busyTime) / float64(horizon)
}

// LaneSet models a pool of identical communication lanes (e.g. the
// NVLink lanes of one GPU, or the single PCIe channel). Each lane is a
// serial timeline; a transfer reserves one lane for its duration, and a
// striped transfer reserves several lanes concurrently.
type LaneSet struct {
	sim   *Sim
	part  *partition // non-nil when bound to a PDES partition
	name  string
	lanes []Time // per-lane busy-until
	moved units.Bytes
	busy  units.Duration
}

// NewLaneSet creates a pool of n lanes. The lane timelines come from
// s's arena, so a pooled Sim builds lane sets without allocating; like
// the Sim itself, a LaneSet must not be used after Put(s).
func NewLaneSet(s *Sim, name string, n int) *LaneSet {
	if n <= 0 {
		panic(fmt.Sprintf("sim: lane set %s needs at least one lane", name))
	}
	return &LaneSet{sim: s, name: name, lanes: s.timeline(n)}
}

// NewLaneSetOn creates a lane pool bound to a PDES partition; its
// reservations read that partition's clock. The lane timelines still
// come from the shared Sim arena, so build lane sets during setup (the
// arena is not safe for concurrent growth inside a window).
func NewLaneSetOn(pt Part, name string, n int) *LaneSet {
	if n <= 0 {
		panic(fmt.Sprintf("sim: lane set %s needs at least one lane", name))
	}
	return &LaneSet{sim: pt.p.s, part: pt.p, name: name, lanes: pt.p.s.timeline(n)}
}

// now returns the owning clock (partition-bound or Sim-level).
func (l *LaneSet) now() Time {
	if l.part != nil {
		return l.part.now
	}
	return l.sim.Now()
}

// Name returns the lane set's label.
func (l *LaneSet) Name() string { return l.name }

// Lanes returns the number of lanes.
func (l *LaneSet) Lanes() int { return len(l.lanes) }

// Moved returns the total bytes transferred through the set.
func (l *LaneSet) Moved() units.Bytes { return l.moved }

// BusyTime returns total lane-occupied time (summed over lanes).
func (l *LaneSet) BusyTime() units.Duration { return l.busy }

// earliestLane returns the index of the lane that frees up first,
// preferring lower indices on ties (deterministic).
func (l *LaneSet) earliestLane() int {
	best := 0
	for i := 1; i < len(l.lanes); i++ {
		if l.lanes[i] < l.lanes[best] {
			best = i
		}
	}
	return best
}

// Reserve books one lane for a transfer of the given size at bandwidth
// bw with setup latency lat, returning the transfer's start and end
// times. The lane chosen is the one that frees first.
func (l *LaneSet) Reserve(size units.Bytes, bw units.Bandwidth, lat units.Duration) (start, end Time) {
	i := l.earliestLane()
	start = l.now()
	if l.lanes[i] > start {
		start = l.lanes[i]
	}
	dur := lat + bw.TransferTime(size)
	end = start + dur
	l.lanes[i] = end
	l.moved += size
	l.busy += dur
	return start, end
}

// ReserveStriped books k lanes (k ≤ Lanes) splitting size into k equal
// sub-blocks transferred in parallel; it returns the earliest start and
// the time the last sub-block finishes. Each sub-block pays the setup
// latency once, matching per-stream cudaMemcpyPeerAsync calls.
func (l *LaneSet) ReserveStriped(size units.Bytes, k int, bw units.Bandwidth, lat units.Duration) (start, end Time) {
	if k <= 0 || k > len(l.lanes) {
		panic(fmt.Sprintf("sim: lane set %s: stripe width %d of %d lanes", l.name, k, len(l.lanes)))
	}
	start = Time(units.MaxDuration)
	per := size / units.Bytes(k)
	rem := size - per*units.Bytes(k)
	for i := 0; i < k; i++ {
		blk := per
		if i == 0 {
			blk += rem
		}
		s, e := l.Reserve(blk, bw, lat)
		if s < start {
			start = s
		}
		if e > end {
			end = e
		}
	}
	return start, end
}

// ReserveUntil books the earliest-free lane through the absolute time
// until, recording size bytes moved. It supports joint reservations
// (e.g. an egress lane and an ingress lane of a switched fabric) where
// the caller computes the shared completion time.
func (l *LaneSet) ReserveUntil(until Time, size units.Bytes) {
	i := l.earliestLane()
	start := l.now()
	if l.lanes[i] > start {
		start = l.lanes[i]
	}
	if until < start {
		panic(fmt.Sprintf("sim: lane set %s: ReserveUntil(%v) before lane free at %v", l.name, until, start))
	}
	l.busy += until - start
	l.lanes[i] = until
	l.moved += size
}

// NextFree reports when at least one lane is free.
func (l *LaneSet) NextFree() Time {
	t := l.lanes[l.earliestLane()]
	if now := l.now(); t < now {
		return now
	}
	return t
}
