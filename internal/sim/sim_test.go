package sim

import (
	"testing"

	"mpress/internal/units"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	end := s.Run()
	if end != 30 {
		t.Errorf("end = %v, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

func TestTieBreakBySubmission(t *testing.T) {
	s := New()
	var got []int
	s.At(5, func() { got = append(got, 1) })
	s.At(5, func() { got = append(got, 2) })
	s.At(5, func() { got = append(got, 3) })
	s.Run()
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("tie order %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var endTimes []Time
	s.At(10, func() {
		s.After(5, func() { endTimes = append(endTimes, s.Now()) })
	})
	s.Run()
	if len(endTimes) != 1 || endTimes[0] != 15 {
		t.Errorf("nested event at %v, want [15]", endTimes)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative delay")
		}
	}()
	s.After(-1, func() {})
}

func TestStop(t *testing.T) {
	s := New()
	ran := 0
	s.At(1, func() { ran++; s.Stop() })
	s.At(2, func() { ran++ })
	s.Run()
	if ran != 1 {
		t.Errorf("ran %d events, want 1", ran)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
}

func TestRunawayGuard(t *testing.T) {
	s := New()
	s.MaxEvents = 100
	var loop func()
	loop = func() { s.After(1, loop) }
	s.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("expected runaway-guard panic")
		}
	}()
	s.Run()
}

func TestQueueSerializes(t *testing.T) {
	s := New()
	q := NewQueue(s, "compute")
	type span struct{ start, end Time }
	var spans []span
	record := func(start, end Time) { spans = append(spans, span{start, end}) }
	s.At(0, func() {
		q.Submit(100, record)
		q.Submit(50, record)
	})
	s.At(120, func() {
		q.Submit(10, record)
	})
	s.Run()
	want := []span{{0, 100}, {100, 150}, {150, 160}}
	if len(spans) != len(want) {
		t.Fatalf("spans = %v", spans)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Errorf("span[%d] = %v, want %v", i, spans[i], want[i])
		}
	}
	if q.Tasks() != 3 {
		t.Errorf("tasks = %d", q.Tasks())
	}
	if q.BusyTime() != 160 {
		t.Errorf("busy = %v, want 160", q.BusyTime())
	}
	if u := q.Utilization(320); u != 0.5 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
}

func TestQueueIdleGap(t *testing.T) {
	s := New()
	q := NewQueue(s, "q")
	var first, second Time
	s.At(0, func() { q.Submit(10, func(st, _ Time) { first = st }) })
	s.At(50, func() { q.Submit(10, func(st, _ Time) { second = st }) })
	s.Run()
	if first != 0 || second != 50 {
		t.Errorf("starts = %v, %v; want 0, 50", first, second)
	}
}

func TestQueueNegativeDurationPanics(t *testing.T) {
	s := New()
	q := NewQueue(s, "q")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	q.Submit(-1, nil)
}

func TestLaneSetSingle(t *testing.T) {
	s := New()
	l := NewLaneSet(s, "pcie", 1)
	bw := units.GBps(10) // 10 bytes per ns
	start, end := l.Reserve(units.Bytes(1000), bw, 5)
	if start != 0 {
		t.Errorf("start = %v", start)
	}
	if end != 105 { // 5 latency + 1000B/10Bns
		t.Errorf("end = %v, want 105", end)
	}
	// Second reservation queues behind the first.
	start2, end2 := l.Reserve(units.Bytes(1000), bw, 5)
	if start2 != 105 || end2 != 210 {
		t.Errorf("second = %v..%v, want 105..210", start2, end2)
	}
	if l.Moved() != 2000 {
		t.Errorf("moved = %d", l.Moved())
	}
}

func TestLaneSetStripedSpeedup(t *testing.T) {
	s := New()
	bw := units.GBps(25)
	size := 100 * units.MiB
	single := NewLaneSet(s, "one", 1)
	_, endSingle := single.Reserve(size, bw, 0)
	striped := NewLaneSet(s, "four", 4)
	_, endStriped := striped.ReserveStriped(size, 4, bw, 0)
	ratio := float64(endSingle) / float64(endStriped)
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("4-lane striping speedup = %.2f, want ≈4", ratio)
	}
}

func TestLaneSetStripedRemainder(t *testing.T) {
	s := New()
	l := NewLaneSet(s, "l", 3)
	// 10 bytes across 3 lanes: blocks of 4,3,3. All bytes must arrive.
	l.ReserveStriped(10, 3, units.GBps(1), 0)
	if l.Moved() != 10 {
		t.Errorf("moved = %d, want 10", l.Moved())
	}
}

func TestLaneSetPicksEarliestLane(t *testing.T) {
	s := New()
	l := NewLaneSet(s, "l", 2)
	bw := units.GBps(1)   // 1 byte per ns
	l.Reserve(100, bw, 0) // lane 0 busy till 100
	l.Reserve(10, bw, 0)  // lane 1 busy till 10
	start, _ := l.Reserve(10, bw, 0)
	if start != 10 {
		t.Errorf("third transfer starts at %v, want 10 (earliest lane)", start)
	}
}

func TestLaneSetNextFree(t *testing.T) {
	s := New()
	l := NewLaneSet(s, "l", 2)
	if l.NextFree() != 0 {
		t.Errorf("NextFree on idle = %v", l.NextFree())
	}
	l.Reserve(100, units.GBps(1), 0)
	if l.NextFree() != 0 {
		t.Error("one lane still free")
	}
	l.Reserve(50, units.GBps(1), 0)
	if l.NextFree() != 50 {
		t.Errorf("NextFree = %v, want 50", l.NextFree())
	}
}

func TestLaneSetBadWidthPanics(t *testing.T) {
	s := New()
	l := NewLaneSet(s, "l", 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for stripe width > lanes")
		}
	}()
	l.ReserveStriped(10, 3, units.GBps(1), 0)
}

func TestDeterminism(t *testing.T) {
	run := func() Time {
		s := New()
		q := NewQueue(s, "q")
		l := NewLaneSet(s, "l", 4)
		for i := 0; i < 20; i++ {
			d := units.Duration(i * 7 % 13)
			s.At(Time(i), func() {
				q.Submit(d*3+1, func(_, _ Time) {
					l.ReserveStriped(units.Bytes(1000*(int(d)+1)), 2, units.GBps(5), 2)
				})
			})
		}
		return s.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs ended at %v and %v", a, b)
	}
}
