package sim

import "testing"

// chain schedules n self-perpetuating events so Run has work to poll
// the interrupt hook against.
func chain(s *Sim, n int) {
	var step func()
	left := n
	step = func() {
		left--
		if left > 0 {
			s.After(1, step)
		}
	}
	s.After(1, step)
}

func TestInterruptStopsRun(t *testing.T) {
	s := New()
	s.InterruptEvery = 10
	polls := 0
	s.Interrupt = func() bool {
		polls++
		return polls >= 3
	}
	chain(s, 1000)
	s.Run()
	if !s.Interrupted {
		t.Fatal("run drained instead of honoring the interrupt")
	}
	if s.Executed() >= 1000 {
		t.Errorf("all %d events ran despite the interrupt", s.Executed())
	}
	// The hook is polled on the stride, not per event.
	if want := int(s.Executed() / 10); polls != want {
		t.Errorf("polled %d times over %d events (stride 10), want %d", polls, s.Executed(), want)
	}
}

func TestInterruptedResetsBetweenRuns(t *testing.T) {
	s := New()
	s.InterruptEvery = 1
	s.Interrupt = func() bool { return true }
	chain(s, 10)
	s.Run()
	if !s.Interrupted {
		t.Fatal("first run should be interrupted")
	}
	s.Interrupt = nil
	chain(s, 10)
	s.Run()
	if s.Interrupted {
		t.Error("Interrupted flag not reset by the second Run")
	}
	if s.Pending() != 0 {
		t.Errorf("%d events left after an uninterrupted run", s.Pending())
	}
}

func TestNoInterruptHookDrains(t *testing.T) {
	s := New()
	chain(s, 100)
	s.Run()
	if s.Interrupted || s.Pending() != 0 {
		t.Errorf("interrupted=%v pending=%d after a plain run", s.Interrupted, s.Pending())
	}
}
