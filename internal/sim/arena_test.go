package sim

import (
	"math/rand"
	"testing"
)

// TestInterruptCountsOnlyExecuted pins the interrupt-accounting fix:
// Executed() counts exactly the events whose closures ran. The poll
// happens before the pop, so the event that would have run in the
// interrupting iteration stays queued and uncounted.
func TestInterruptCountsOnlyExecuted(t *testing.T) {
	s := New()
	ran := 0
	var next func()
	next = func() {
		ran++
		s.After(1, next)
	}
	s.At(0, next)
	s.InterruptEvery = 10
	polls := 0
	s.Interrupt = func() bool {
		polls++
		return polls == 3
	}
	s.Run()
	if !s.Interrupted {
		t.Fatal("Interrupted not set")
	}
	if int64(ran) != s.Executed() {
		t.Fatalf("Executed() = %d but %d closures ran", s.Executed(), ran)
	}
	if want := int64(30); s.Executed() != want {
		t.Fatalf("Executed() = %d, want %d (3 polls at stride 10)", s.Executed(), want)
	}
	if s.Pending() == 0 {
		t.Fatal("the unexecuted event was dropped instead of staying queued")
	}
}

// TestTimelineArenaGrowthProperty is the arena-growth property test:
// under randomized allocation sizes that force mid-run arena growth,
// timelines handed out before a growth (living on a stranded block)
// stay valid and disjoint from later ones, and Reset recycles only the
// newest block.
func TestTimelineArenaGrowthProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		type alloc struct {
			tl    []Time
			stamp Time
		}
		var live []alloc
		blocks := 0
		var lastBlock *Time
		for i := 0; i < 40; i++ {
			n := 1 + rng.Intn(50)
			tl := s.timeline(n)
			if len(tl) != n {
				t.Fatalf("seed %d: timeline(%d) returned %d entries", seed, n, len(tl))
			}
			for j := range tl {
				if tl[j] != 0 {
					t.Fatalf("seed %d: timeline not zeroed at %d", seed, j)
				}
			}
			// Stamp every entry with a unique value; stamps on earlier
			// timelines must survive later allocations and growths.
			stamp := Time(seed*1_000_000 + int64(i)*1000 + 1)
			for j := range tl {
				tl[j] = stamp + Time(j)
			}
			live = append(live, alloc{tl: tl, stamp: stamp})
			if head := &s.arena[0]; head != lastBlock {
				lastBlock = head
				blocks++
			}
			for _, a := range live {
				for j, v := range a.tl {
					if v != a.stamp+Time(j) {
						t.Fatalf("seed %d: stranded timeline corrupted: got %v want %v", seed, v, a.stamp+Time(j))
					}
				}
			}
			// Appending to a full-capacity-clamped timeline must not
			// bleed into a neighbour.
			_ = append(tl, 12345)
			for _, a := range live[:len(live)-1] {
				for j, v := range a.tl {
					if v != a.stamp+Time(j) {
						t.Fatalf("seed %d: append overlapped a neighbour timeline", seed)
					}
				}
			}
		}
		if blocks < 2 {
			t.Fatalf("seed %d: workload never grew the arena (%d blocks)", seed, blocks)
		}
		// Reset recycles only the newest block: the next allocation
		// reuses it (same backing array), and stranded blocks keep
		// whatever references still point at them intact.
		head := &s.arena[0]
		strandedCopy := append([]Time(nil), live[0].tl...)
		s.Reset()
		tl := s.timeline(4)
		if &s.arena[0] != head {
			t.Fatalf("seed %d: Reset did not recycle the newest block", seed)
		}
		if &tl[0] != &s.arena[0] {
			t.Fatalf("seed %d: post-Reset timeline not at the block head", seed)
		}
		for j, v := range live[0].tl {
			if v != strandedCopy[j] {
				t.Fatalf("seed %d: Reset touched a stranded block", seed)
			}
		}
	}
}
