package sim

// pdes.go is the conservative parallel discrete-event engine. The event
// space is split into partitions (one scheduler each); Run proceeds in
// lookahead windows: each window finds the global minimum pending time
// (the floor), drains every partition's events in [floor, floor+L) on
// worker goroutines, then merges at a barrier. L is the lookahead —
// the caller derives it from the minimum cross-partition link latency,
// so an event can only affect another partition at least L in its
// future, which makes the window drains causally independent.
//
// Determinism bar (the same one the parallel planner set): a PDES run
// is byte-identical to the serial kernel at every worker count. The
// mechanism is the merge at each barrier. During a window, events born
// inside it get provisional keys (birth order within their partition,
// offset by provBase so they sort after every finalized key at equal
// times — exactly where the serial kernel's monotonic seq would put
// them). At the barrier, all still-pending births are sorted into the
// order the serial kernel would have inserted them — recursively by
// their parent event's position and their creation ordinal within the
// parent — and assigned final seqs from the shared counter in that
// order. Within a partition the rewrite preserves relative order, so
// the schedulers need no restructuring (sched.rekey); cross-partition
// sends are buffered in an outbox during the window and pushed at the
// barrier with final keys. Inductively, every partition's drain order
// equals the serial execution order restricted to that partition, so
// all observable state — timings, seqs, resource timelines — matches
// the serial run exactly.
//
// Limits, stated honestly: Stop halts the calling partition immediately
// (so a run whose events all ride one partition — the executor's case —
// matches serial Stop byte-for-byte) but other partitions finish their
// window; and the Interrupt hook is polled at window barriers rather
// than a per-event stride. Neither affects runs that drain to
// completion, which is what the byte-identity suite pins.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mpress/internal/units"
)

// provBase offsets provisional keys above every final seq the shared
// counter can reach, so provisional events sort after finalized ones at
// equal times — matching the serial kernel, where events born later in
// the run carry larger seqs.
const provBase = int64(1) << 40

// PDESConfig configures conservative parallel execution.
type PDESConfig struct {
	// Partitions is the number of event-space partitions (typically one
	// per device or node).
	Partitions int
	// Lookahead is the minimum cross-partition latency: a Send must
	// carry at least this delay. Must be positive — zero lookahead
	// admits no parallel window.
	Lookahead units.Duration
	// Workers caps the drain goroutines (clamped to Partitions; values
	// below 2 drain inline on the coordinator goroutine).
	Workers int
}

// birth records one scheduling call made during a window: who scheduled
// it (the parent event's time and key, and the call's ordinal within
// that event), what it scheduled, and where it lives. Local births hold
// the provisional slot they were pushed to; cross-partition sends hold
// the closure itself (outbox — pushed only at the barrier).
type birth struct {
	parentAt  Time
	parentKey int64
	child     int32 // creation ordinal within the parent event
	at        Time
	slot      int32 // scheduler slot for local births; -1 for outbox
	target    int32 // destination partition for outbox; -1 for local
	fn        func()
	done      bool // local birth already executed this window
}

// partition is one event-space partition: its own scheduler, clock and
// birth arena. Only its draining goroutine touches it during a window.
type partition struct {
	id       int32
	s        *Sim
	q        sched
	now      Time
	executed int64
	stopped  bool
	draining bool
	// Parent context of the event currently executing.
	curAt  Time
	curKey int64
	childN int32
	births []birth
	// panicked captures a panic raised inside a worker drain; the
	// barrier re-raises it deterministically (lowest partition first).
	panicked any
}

type windowJob struct {
	p       *partition
	horizon Time
	max     int64
}

type pendingRef struct {
	p *partition
	b int32
}

type pdes struct {
	s         *Sim
	parts     []*partition
	lookahead Time
	workers   int
	windows   int64
	lastPoll  int64
	stopReq   atomic.Bool

	work     chan windowJob
	wg       sync.WaitGroup // per-window
	workerWG sync.WaitGroup // pool lifecycle

	active  []*partition
	pending []pendingRef
}

// EnablePDES switches a pristine Sim into conservative parallel mode.
// Scheduling through the Sim-level API (At/After) lands on partition 0
// — the coordinator — so existing single-threaded models run unchanged;
// Partition hands out handles for placing events elsewhere. The Sim
// must not have scheduled or executed anything yet.
func (s *Sim) EnablePDES(cfg PDESConfig) error {
	if s.pdes != nil {
		return errors.New("sim: PDES already enabled")
	}
	if s.seq != 0 || s.q.count != 0 || s.executed != 0 || s.now != 0 {
		return errors.New("sim: EnablePDES requires a pristine Sim")
	}
	if cfg.Partitions < 1 {
		return fmt.Errorf("sim: PDES needs at least 1 partition (got %d)", cfg.Partitions)
	}
	if cfg.Lookahead <= 0 {
		return fmt.Errorf("sim: PDES lookahead must be positive (got %v)", cfg.Lookahead)
	}
	workers := cfg.Workers
	if workers > cfg.Partitions {
		workers = cfg.Partitions
	}
	d := &pdes{s: s, lookahead: cfg.Lookahead, workers: workers}
	d.parts = make([]*partition, cfg.Partitions)
	for i := range d.parts {
		p := &partition{id: int32(i), s: s}
		p.q.minSlot = -1
		p.q.setMode(s.q.mode)
		d.parts[i] = p
	}
	if workers > 1 {
		d.work = make(chan windowJob)
		d.workerWG.Add(workers)
		for i := 0; i < workers; i++ {
			go func() {
				defer d.workerWG.Done()
				for jb := range d.work {
					d.runJob(jb)
				}
			}()
		}
	}
	s.pdes = d
	return nil
}

// Partitions returns the partition count (zero when PDES is off).
func (s *Sim) Partitions() int {
	if s.pdes == nil {
		return 0
	}
	return len(s.pdes.parts)
}

// Lookahead returns the configured PDES lookahead (zero when off).
func (s *Sim) Lookahead() units.Duration {
	if s.pdes == nil {
		return 0
	}
	return s.pdes.lookahead
}

// Part is a handle onto one event-space partition. Closures scheduled
// through it run on that partition's clock; they may only schedule onto
// their own partition (At/After) or send cross-partition work with at
// least the lookahead of delay (Send).
type Part struct {
	p *partition
}

// Partition returns the handle for partition i. Panics if PDES is off.
func (s *Sim) Partition(i int) Part {
	return Part{p: s.pdes.parts[i]}
}

// ID returns the partition index.
func (pt Part) ID() int { return int(pt.p.id) }

// Now returns the partition's clock.
func (pt Part) Now() Time { return pt.p.now }

// At schedules fn on this partition at absolute time t.
func (pt Part) At(t Time, fn func()) { pt.p.at(t, fn) }

// After schedules fn on this partition d after its current time.
func (pt Part) After(d units.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	pt.p.at(pt.p.now+d, fn)
}

// Stop halts this partition's drain immediately and requests a global
// stop; other partitions finish the current window.
func (pt Part) Stop() {
	pt.p.stopped = true
	pt.p.s.pdes.stopReq.Store(true)
}

// Send schedules fn on partition `to`, d after this partition's current
// time. From inside a running window the delay must be at least the
// lookahead — that bound is what makes window drains causally
// independent — and the event is held in an outbox until the barrier.
func (pt Part) Send(to int, d units.Duration, fn func()) {
	p := pt.p
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	dst := p.s.pdes.parts[to]
	if dst == p {
		pt.After(d, fn)
		return
	}
	if !p.draining {
		// Setup is single-threaded: final key straight from the shared
		// counter, exactly as the serial kernel would.
		p.s.seq++
		dst.q.push(p.now+d, p.s.seq, fn)
		return
	}
	if d < p.s.pdes.lookahead {
		panic(fmt.Sprintf("sim: cross-partition send with delay %v below lookahead %v", d, p.s.pdes.lookahead))
	}
	p.births = append(p.births, birth{
		parentAt: p.curAt, parentKey: p.curKey, child: p.childN,
		at: p.now + d, slot: -1, target: dst.id, fn: fn,
	})
	p.childN++
}

// at schedules onto this partition. Outside a window (setup) keys come
// straight from the shared seq counter; inside one, the event gets a
// provisional key (birth index) and a birth record for the barrier
// merge.
func (p *partition) at(t Time, fn func()) {
	if t < p.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, p.now))
	}
	if !p.draining {
		p.s.seq++
		p.q.push(t, p.s.seq, fn)
		return
	}
	idx := int32(len(p.births))
	slot := p.q.push(t, provBase+int64(idx), fn)
	p.births = append(p.births, birth{
		parentAt: p.curAt, parentKey: p.curKey, child: p.childN,
		at: t, slot: slot, target: -1,
	})
	p.childN++
}

// drain executes this partition's events strictly below horizon, in
// (time, key) order. Runs on a worker goroutine when the window has
// multiple active partitions.
func (p *partition) drain(horizon Time, max int64) {
	p.draining = true
	defer func() { p.draining = false }()
	for !p.stopped {
		t, k, fn, ok := p.q.popBelow(horizon)
		if !ok {
			return
		}
		p.now = t
		if p.id == 0 {
			// Keep the Sim clock live for coordinator closures calling
			// Now()/After(); only partition 0's goroutine writes it, and
			// the window barrier orders it for everyone else.
			p.s.now = t
		}
		p.executed++
		if p.executed > max {
			panic(fmt.Sprintf("sim: exceeded %d events at t=%v — runaway event loop?", max, t))
		}
		if k >= provBase {
			p.births[k-provBase].done = true
		}
		p.curAt, p.curKey, p.childN = t, k, 0
		fn()
	}
}

func (d *pdes) runJob(jb windowJob) {
	defer d.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			jb.p.panicked = r
		}
	}()
	jb.p.drain(jb.horizon, jb.max)
}

// stop is Sim.Stop's PDES route. The Sim-level API runs events on
// partition 0, so that is the partition halted immediately.
func (d *pdes) stop() {
	d.parts[0].stopped = true
	d.stopReq.Store(true)
}

// run is the window loop.
func (d *pdes) run(max, every int64) {
	s := d.s
	for _, p := range d.parts {
		p.stopped = false
	}
	for !d.stopReq.Load() {
		if s.Interrupt != nil && s.executed-d.lastPoll >= every && s.executed > 0 {
			d.lastPoll = s.executed
			if s.Interrupt() {
				s.Interrupted = true
				break
			}
		}
		// The floor is the global minimum pending time; the window is
		// [floor, floor+L). Lookahead guarantees nothing created during
		// the window can land inside it on another partition.
		var floor Time
		found := false
		for _, p := range d.parts {
			if at, ok := p.q.peekAt(); ok && (!found || at < floor) {
				floor, found = at, true
			}
		}
		if !found {
			break
		}
		horizon := floor + d.lookahead
		active := d.active[:0]
		for _, p := range d.parts {
			if at, ok := p.q.peekAt(); ok && at < horizon {
				active = append(active, p)
			}
		}
		d.active = active
		if len(active) == 1 || d.workers <= 1 {
			for _, p := range active {
				p.drain(horizon, max)
			}
		} else {
			d.wg.Add(len(active))
			for _, p := range active {
				d.work <- windowJob{p: p, horizon: horizon, max: max}
			}
			d.wg.Wait()
		}
		d.finalize()
		d.windows++
		var tot int64
		for _, p := range d.parts {
			tot += p.executed
		}
		s.executed = tot
		if tot > max {
			panic(fmt.Sprintf("sim: exceeded %d events — runaway event loop?", max))
		}
	}
	for _, p := range d.parts {
		if p.now > s.now {
			s.now = p.now
		}
	}
}

// finalize is the barrier merge: re-raise worker panics, then assign
// final seqs to every still-pending birth in serial insertion order —
// sorted recursively by parent position and creation ordinal — rekeying
// local events in place and pushing outbox sends into their targets.
func (d *pdes) finalize() {
	for _, p := range d.parts {
		if p.panicked != nil {
			r := p.panicked
			p.panicked = nil
			panic(r)
		}
	}
	pending := d.pending[:0]
	for _, p := range d.parts {
		for i := range p.births {
			b := &p.births[i]
			if b.target >= 0 || !b.done {
				pending = append(pending, pendingRef{p: p, b: int32(i)})
			}
		}
	}
	sort.Slice(pending, func(i, j int) bool { return refLess(pending[i], pending[j]) })
	for _, r := range pending {
		b := &r.p.births[r.b]
		d.s.seq++
		if b.target >= 0 {
			d.parts[b.target].q.push(b.at, d.s.seq, b.fn)
		} else {
			r.p.q.rekey(b.slot, d.s.seq)
		}
	}
	d.pending = pending[:0]
	for _, p := range d.parts {
		clear(p.births)
		p.births = p.births[:0]
	}
}

// refLess orders two pending births by serial insertion order: the
// parent events' serial order first, then the creation ordinal within
// the parent.
func refLess(x, y pendingRef) bool {
	bx, by := &x.p.births[x.b], &y.p.births[y.b]
	if c := compareParents(x.p, bx, y.p, by); c != 0 {
		return c < 0
	}
	return bx.child < by.child
}

// compareParents orders the parent events of two births by serial
// execution order: time first; at equal times a finalized parent
// precedes a window-born one (its serial seq is smaller — it was
// inserted before the window); two finalized parents order by their
// globally unique seqs; two window-born parents order by their own
// births, recursively. Chains terminate at finalized ancestors, so the
// recursion is well-founded and the order total.
func compareParents(px *partition, x *birth, py *partition, y *birth) int {
	if x.parentAt != y.parentAt {
		if x.parentAt < y.parentAt {
			return -1
		}
		return 1
	}
	xProv, yProv := x.parentKey >= provBase, y.parentKey >= provBase
	switch {
	case !xProv && !yProv:
		switch {
		case x.parentKey < y.parentKey:
			return -1
		case x.parentKey > y.parentKey:
			return 1
		default:
			return 0
		}
	case !xProv:
		return -1
	case !yProv:
		return 1
	}
	// Both parents were born this window. A provisional parent's birth
	// record lives in the partition that executed it — the same one
	// that recorded x/y, since local births stay local.
	if px == py && x.parentKey == y.parentKey {
		return 0
	}
	bx := &px.births[x.parentKey-provBase]
	by := &py.births[y.parentKey-provBase]
	if c := compareParents(px, bx, py, by); c != 0 {
		return c
	}
	if bx.child != by.child {
		if bx.child < by.child {
			return -1
		}
		return 1
	}
	return 0
}

// shutdown joins the worker pool. Called by Sim.Reset.
func (d *pdes) shutdown() {
	if d.work != nil {
		close(d.work)
		d.workerWG.Wait()
		d.work = nil
	}
}
