package sim

// sched.go is the kernel's event scheduler: a struct-of-arrays event
// store fronted by either a calendar queue (R. Brown, CACM 1988) tuned
// for the dense event horizons training graphs produce, or a binary
// heap for small or pathologically sparse ones. Both structures order
// events by the same strict total order — (time, key) — so which one is
// active is invisible in results: the pop sequence is byte-identical
// (the ordering-equivalence fuzz in sched_test.go pins this).
//
// The store is pooled with its Sim: every slice below keeps its
// capacity across Reset, so the planner's emulate-hundreds-of-plans
// loop runs the event loop without per-run heap growth.

import "fmt"

// SchedMode selects the event scheduler.
type SchedMode int

const (
	// SchedAuto (the default) starts on the heap, migrates to the
	// calendar queue once the pending-event count clears calendarMin,
	// and falls back to the heap for the rest of the run if the
	// calendar's bucket scans turn pathological (sparse or heavily
	// clustered horizons).
	SchedAuto SchedMode = iota
	// SchedHeap forces the binary heap.
	SchedHeap
	// SchedCalendar forces the calendar queue (no fallback).
	SchedCalendar
)

// String names the mode as the -sim-scheduler flags spell it.
func (m SchedMode) String() string {
	switch m {
	case SchedAuto:
		return "auto"
	case SchedHeap:
		return "heap"
	case SchedCalendar:
		return "calendar"
	default:
		return fmt.Sprintf("SchedMode(%d)", int(m))
	}
}

// ParseSchedMode parses the string form used by CLI flags.
func ParseSchedMode(s string) (SchedMode, error) {
	switch s {
	case "", "auto":
		return SchedAuto, nil
	case "heap":
		return SchedHeap, nil
	case "calendar":
		return SchedCalendar, nil
	default:
		return SchedAuto, fmt.Errorf("sim: unknown scheduler %q (valid: auto, heap, calendar)", s)
	}
}

const (
	// calendarMin is the pending-event count at which auto mode
	// migrates from the heap to the calendar queue: below it the heap's
	// constants win and bucket bookkeeping is pure overhead.
	calendarMin = 256
	// minBuckets / maxBuckets bound the bucket table (powers of two).
	minBuckets = 16
	maxBuckets = 1 << 16
	// wasteWindow / wasteRatio are auto mode's fallback trigger: if the
	// calendar examines more than wasteRatio bucket entries+visits per
	// dequeue over a wasteWindow-dequeue stretch, the horizon is hostile
	// to bucketing and the store migrates back to the heap.
	wasteWindow = 4096
	wasteRatio  = 16
	// widthSample bounds how many pending events a rebuild inspects to
	// estimate the bucket width (deterministic: the first widthSample
	// slots in gather order).
	widthSample = 64
)

// sched is one scheduler instance. The zero value is ready to use (heap
// mode, SchedAuto).
type sched struct {
	// Struct-of-arrays event storage: slot i is (at[i], key[i], fn[i]).
	// free lists recycled slots. Hot scans touch only at/key.
	at   []Time
	key  []int64
	fn   []func()
	free []int32

	mode      SchedMode
	calActive bool // zero value: heap active
	count     int

	// Binary min-heap of slots, ordered by less.
	heap []int32

	// Calendar queue state. buckets[i] holds the slots whose time maps
	// to bucket i (unordered); width is the bucket's time span; (cur,
	// top) is the scan cursor: the invariant is that every pending
	// event's time is >= top-width, so scanning forward from cur finds
	// the minimum in the first bucket with an event inside its window.
	buckets [][]int32
	width   Time
	cur     int
	top     Time

	// Cached minimum from the last findMin (invalidated by pop/rebuild,
	// updated in place by push).
	minSlot   int32
	minBucket int
	minPos    int

	// Auto-fallback accounting.
	scanned  int64
	dequeues int64
	fellBack bool

	// scratch backs gather() during rebuilds/migrations.
	scratch []int32
}

// heapActive reports whether the heap is the active structure. The
// field is stored inverted so the zero value starts on the heap.
func (q *sched) heapActive() bool { return !q.calActive }

// less orders slots by (time, key) — the kernel's strict total order.
func (q *sched) less(a, b int32) bool {
	if q.at[a] != q.at[b] {
		return q.at[a] < q.at[b]
	}
	return q.key[a] < q.key[b]
}

// alloc stores an event and returns its slot.
func (q *sched) alloc(t Time, k int64, f func()) int32 {
	if n := len(q.free); n > 0 {
		s := q.free[n-1]
		q.free = q.free[:n-1]
		q.at[s], q.key[s], q.fn[s] = t, k, f
		return s
	}
	q.at = append(q.at, t)
	q.key = append(q.key, k)
	q.fn = append(q.fn, f)
	return int32(len(q.at) - 1)
}

// release recycles a slot, dropping the closure so it is collectable.
func (q *sched) release(s int32) {
	q.fn[s] = nil
	q.free = append(q.free, s)
}

// setMode forces the scheduler structure, migrating pending events.
func (q *sched) setMode(m SchedMode) {
	q.mode = m
	switch {
	case m == SchedHeap && !q.heapActive():
		q.toHeap()
	case m == SchedCalendar && q.heapActive():
		q.toCalendar()
	}
}

// name describes the active structure for Stats.
func (q *sched) name() string {
	switch {
	case q.fellBack:
		return "calendar+heap-fallback"
	case q.heapActive():
		return "heap"
	default:
		return "calendar"
	}
}

// push schedules an event and returns its slot (the PDES layer rekeys
// provisional events through it).
func (q *sched) push(t Time, k int64, f func()) int32 {
	s := q.alloc(t, k, f)
	q.count++
	if q.heapActive() {
		q.heapPush(s)
		if q.mode == SchedAuto && !q.fellBack && q.count >= calendarMin {
			q.toCalendar()
		}
		return s
	}
	b := q.bucketOf(t)
	q.buckets[b] = append(q.buckets[b], s)
	if q.count > 2*len(q.buckets) && len(q.buckets) < maxBuckets {
		q.rebuild(q.count)
		return s
	}
	if t < q.top-q.width {
		// The new event falls before the cursor's coverage window;
		// lower the cursor so the forward scan cannot miss it.
		q.setCursor(t)
	}
	if q.minSlot >= 0 && q.less(s, q.minSlot) {
		q.minSlot, q.minBucket, q.minPos = s, b, len(q.buckets[b])-1
	}
	return s
}

// peekAt returns the earliest pending event time.
func (q *sched) peekAt() (Time, bool) {
	if q.count == 0 {
		return 0, false
	}
	if q.heapActive() {
		return q.at[q.heap[0]], true
	}
	return q.at[q.findMin()], true
}

// pop removes and returns the earliest event.
func (q *sched) pop() (Time, int64, func(), bool) {
	if q.count == 0 {
		return 0, 0, nil, false
	}
	var s int32
	if q.heapActive() {
		s = q.heapPop()
	} else {
		s = q.findMin()
		bk := q.buckets[q.minBucket]
		last := len(bk) - 1
		bk[q.minPos] = bk[last]
		q.buckets[q.minBucket] = bk[:last]
		q.setCursor(q.at[s])
		q.minSlot = -1
		q.dequeues++
		if q.mode == SchedAuto && q.dequeues >= wasteWindow {
			if q.scanned > q.dequeues*wasteRatio {
				q.fellBack = true
				q.toHeap()
			}
			q.scanned, q.dequeues = 0, 0
		}
	}
	q.count--
	t, k, f := q.at[s], q.key[s], q.fn[s]
	q.release(s)
	if !q.heapActive() && q.count > 0 && q.count*8 < len(q.buckets) && len(q.buckets) > minBuckets {
		q.rebuild(q.count)
	}
	return t, k, f, true
}

// popBelow removes and returns the earliest event if it is strictly
// before the horizon — the PDES window drain primitive.
func (q *sched) popBelow(horizon Time) (Time, int64, func(), bool) {
	if at, ok := q.peekAt(); !ok || at >= horizon {
		return 0, 0, nil, false
	}
	return q.pop()
}

// rekey rewrites a pending slot's key. The PDES merge finalizes
// provisional keys through it; callers guarantee the rewrite preserves
// the slot's relative order against every other pending event, so the
// heap/calendar invariants hold without restructuring.
func (q *sched) rekey(s int32, k int64) { q.key[s] = k }

// reset empties the scheduler keeping every capacity.
func (q *sched) reset() {
	clear(q.fn)
	q.at, q.key, q.fn = q.at[:0], q.key[:0], q.fn[:0]
	q.free = q.free[:0]
	q.heap = q.heap[:0]
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.count = 0
	q.calActive = false
	q.mode = SchedAuto
	q.width = 0
	q.cur, q.top = 0, 0
	q.minSlot = -1
	q.scanned, q.dequeues = 0, 0
	q.fellBack = false
}

// --- heap structure ---

func (q *sched) heapPush(s int32) {
	h := append(q.heap, s)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	q.heap = h
}

func (q *sched) heapPop() int32 {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && q.less(h[l], h[least]) {
			least = l
		}
		if r < n && q.less(h[r], h[least]) {
			least = r
		}
		if least == i {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	q.heap = h
	return top
}

// --- calendar structure ---

func (q *sched) bucketOf(t Time) int {
	return int(uint64(t/q.width) & uint64(len(q.buckets)-1))
}

// setCursor positions the scan at t's bucket-year window.
func (q *sched) setCursor(t Time) {
	q.cur = q.bucketOf(t)
	// The window holding t is [k*width, (k+1)*width) for k = t/width;
	// top is its exclusive upper bound.
	q.top = (t/q.width + 1) * q.width
}

// findMin locates the earliest pending slot, caching it for the
// following pop. Calendar invariant: every pending time is >= top-width,
// so the first bucket holding an event inside its current window holds
// the global minimum.
func (q *sched) findMin() int32 {
	if q.minSlot >= 0 {
		return q.minSlot
	}
	cur, top := q.cur, q.top
	mask := len(q.buckets) - 1
	for visited := 0; visited <= mask; visited++ {
		var best int32 = -1
		bestPos := -1
		for i, s := range q.buckets[cur] {
			q.scanned++
			if q.at[s] < top && (best < 0 || q.less(s, best)) {
				best, bestPos = s, i
			}
		}
		if best >= 0 {
			q.cur, q.top = cur, top
			q.minSlot, q.minBucket, q.minPos = best, cur, bestPos
			return best
		}
		cur = (cur + 1) & mask
		top += q.width
	}
	// A whole year of empty windows: the horizon is sparse here. Scan
	// every bucket once for the global minimum and jump the cursor to
	// it — O(buckets+count), charged to the waste accounting so auto
	// mode bails to the heap if this keeps happening.
	q.scanned += int64(len(q.buckets))
	var best int32 = -1
	bb, bp := 0, 0
	for b, bk := range q.buckets {
		for i, s := range bk {
			if best < 0 || q.less(s, best) {
				best, bb, bp = s, b, i
			}
		}
	}
	q.setCursor(q.at[best])
	q.minSlot, q.minBucket, q.minPos = best, bb, bp
	return best
}

// gather collects every pending slot into scratch (order deterministic:
// heap array order, or bucket-table order).
func (q *sched) gather() []int32 {
	out := q.scratch[:0]
	if q.heapActive() {
		out = append(out, q.heap...)
	} else {
		for _, bk := range q.buckets {
			out = append(out, bk...)
		}
	}
	q.scratch = out
	return out
}

// estimateWidth derives the bucket width from the average gap between
// pending event times (Brown's rule of thumb: a few events per bucket).
// Sampling is deterministic — the first widthSample slots of the gather
// order — so identical queue contents always yield identical layouts.
func (q *sched) estimateWidth(slots []int32) Time {
	n := len(slots)
	if n > widthSample {
		n = widthSample
	}
	if n < 2 {
		return 1
	}
	// Insertion-sort the sampled times (n <= 64).
	var ts [widthSample]Time
	for i := 0; i < n; i++ {
		ts[i] = q.at[slots[i]]
	}
	s := ts[:n]
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	var sum Time
	gaps := 0
	for i := 1; i < len(s); i++ {
		if g := s[i] - s[i-1]; g > 0 {
			sum += g
			gaps++
		}
	}
	if gaps == 0 {
		return 1
	}
	w := 4 * sum / Time(gaps)
	if w < 1 {
		w = 1
	}
	return w
}

// sizeFor picks the bucket count for n pending events: the power of two
// covering n, clamped to [minBuckets, maxBuckets].
func sizeFor(n int) int {
	b := minBuckets
	for b < n && b < maxBuckets {
		b <<= 1
	}
	return b
}

// rebuild re-lays the calendar for n pending events: fresh bucket count
// and width, every pending slot re-placed, cursor at the global min.
func (q *sched) rebuild(n int) {
	slots := q.gather()
	nb := sizeFor(n)
	if cap(q.buckets) >= nb {
		q.buckets = q.buckets[:nb]
	} else {
		q.buckets = append(q.buckets[:cap(q.buckets)], make([][]int32, nb-cap(q.buckets))...)
	}
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.width = q.estimateWidth(slots)
	var min int32 = -1
	for _, s := range slots {
		q.buckets[q.bucketOf(q.at[s])] = append(q.buckets[q.bucketOf(q.at[s])], s)
		if min < 0 || q.less(s, min) {
			min = s
		}
	}
	q.minSlot = -1
	if min >= 0 {
		q.setCursor(q.at[min])
	} else {
		q.cur, q.top = 0, q.width
	}
}

// toCalendar migrates the pending set from the heap to the calendar.
func (q *sched) toCalendar() {
	if !q.heapActive() {
		return
	}
	slots := q.gather()
	q.heap = q.heap[:0]
	q.calActive = true
	// rebuild gathers from buckets, which are empty now; place by hand.
	nb := sizeFor(len(slots))
	if cap(q.buckets) >= nb {
		q.buckets = q.buckets[:nb]
	} else {
		q.buckets = append(q.buckets[:cap(q.buckets)], make([][]int32, nb-cap(q.buckets))...)
	}
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.width = q.estimateWidth(slots)
	var min int32 = -1
	for _, s := range slots {
		b := q.bucketOf(q.at[s])
		q.buckets[b] = append(q.buckets[b], s)
		if min < 0 || q.less(s, min) {
			min = s
		}
	}
	q.minSlot = -1
	if min >= 0 {
		q.setCursor(q.at[min])
	} else {
		q.cur, q.top = 0, q.width
	}
	q.scanned, q.dequeues = 0, 0
}

// toHeap migrates the pending set from the calendar to the heap.
func (q *sched) toHeap() {
	if q.heapActive() {
		return
	}
	slots := q.gather()
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.calActive = false
	q.heap = append(q.heap[:0], slots...)
	// Floyd heapify.
	n := len(q.heap)
	for i := n/2 - 1; i >= 0; i-- {
		j := i
		for {
			l, r := 2*j+1, 2*j+2
			least := j
			if l < n && q.less(q.heap[l], q.heap[least]) {
				least = l
			}
			if r < n && q.less(q.heap[r], q.heap[least]) {
				least = r
			}
			if least == j {
				break
			}
			q.heap[j], q.heap[least] = q.heap[least], q.heap[j]
			j = least
		}
	}
	q.minSlot = -1
}
