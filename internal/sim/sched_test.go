package sim

import (
	"math/rand"
	"testing"
)

// popAll drains q, returning the (time, key) stream.
func popAll(q *sched) [][2]int64 {
	var out [][2]int64
	for {
		t, k, _, ok := q.pop()
		if !ok {
			return out
		}
		out = append(out, [2]int64{int64(t), k})
	}
}

// TestSchedOrderingEquivalence is the heap-vs-calendar fuzz: identical
// push/pop interleavings against a heap-forced, a calendar-forced and
// an auto sched must yield identical (time, key) pop streams — the
// property that makes scheduler choice invisible in results. Horizons
// mix dense, sparse and same-time-burst regimes.
func TestSchedOrderingEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var heap, cal, auto sched
		heap.setMode(SchedHeap)
		cal.setMode(SchedCalendar)
		key := int64(0)
		var popped [3][][2]int64
		step := func() {
			t1, k1, _, ok1 := heap.pop()
			t2, k2, _, ok2 := cal.pop()
			t3, k3, _, ok3 := auto.pop()
			if ok1 != ok2 || ok1 != ok3 {
				t.Fatalf("seed %d: pop presence diverged (%v %v %v)", seed, ok1, ok2, ok3)
			}
			if ok1 {
				popped[0] = append(popped[0], [2]int64{int64(t1), k1})
				popped[1] = append(popped[1], [2]int64{int64(t2), k2})
				popped[2] = append(popped[2], [2]int64{int64(t3), k3})
			}
		}
		for op := 0; op < 20000; op++ {
			r := rng.Intn(10)
			switch {
			case r < 6: // push
				var at Time
				switch rng.Intn(3) {
				case 0: // dense
					at = Time(rng.Intn(4096))
				case 1: // sparse
					at = Time(rng.Int63n(1 << 50))
				default: // same-time burst
					at = Time(rng.Intn(8)) * 1000
				}
				key++
				heap.push(at, key, nil)
				cal.push(at, key, nil)
				auto.push(at, key, nil)
			default:
				step()
			}
		}
		for i := range popped {
			popped[i] = append(popped[i], popAll([]*sched{&heap, &cal, &auto}[i])...)
		}
		if len(popped[0]) != len(popped[1]) || len(popped[0]) != len(popped[2]) {
			t.Fatalf("seed %d: stream lengths diverged: %d %d %d", seed, len(popped[0]), len(popped[1]), len(popped[2]))
		}
		for i := range popped[0] {
			if popped[0][i] != popped[1][i] || popped[0][i] != popped[2][i] {
				t.Fatalf("seed %d: pop %d diverged: heap=%v calendar=%v auto=%v",
					seed, i, popped[0][i], popped[1][i], popped[2][i])
			}
		}
	}
}

// TestSchedRekeyPreservesOrder pins the PDES merge contract: rewriting
// provisional keys to smaller final seqs in relative-order-preserving
// fashion must leave both structures' pop streams correct.
func TestSchedRekeyPreservesOrder(t *testing.T) {
	for _, mode := range []SchedMode{SchedHeap, SchedCalendar} {
		var q sched
		q.setMode(mode)
		// Finalized events at seqs 1..4, provisional ones above provBase.
		q.push(100, 1, nil)
		q.push(100, 2, nil)
		prov1 := q.push(100, provBase, nil)
		prov2 := q.push(100, provBase+1, nil)
		q.push(50, 3, nil)
		q.push(200, 4, nil)
		// Finalize: provisional events get seqs 5 and 6 (their birth
		// order), still above every final key — relative order unchanged.
		q.rekey(prov1, 5)
		q.rekey(prov2, 6)
		want := [][2]int64{{50, 3}, {100, 1}, {100, 2}, {100, 5}, {100, 6}, {200, 4}}
		got := popAll(&q)
		if len(got) != len(want) {
			t.Fatalf("%v: got %d pops, want %d", mode, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: pop %d = %v, want %v", mode, i, got[i], want[i])
			}
		}
	}
}

// TestSchedAutoMigration pins auto mode's two transitions: heap →
// calendar once the pending count clears calendarMin, and calendar →
// heap (permanently) when bucket scans go pathological — a far-future
// cluster that defeats the bucket hash.
func TestSchedAutoMigration(t *testing.T) {
	var q sched
	key := int64(0)
	for i := 0; i < calendarMin; i++ {
		key++
		q.push(Time(i), key, nil)
	}
	if q.heapActive() {
		t.Fatalf("auto sched still on heap at %d pending", calendarMin)
	}
	if got := q.name(); got != "calendar" {
		t.Fatalf("scheduler name = %q, want calendar", got)
	}
	// Now keep the pending count fixed while pushing events exactly one
	// bucket-table span apart: they all hash to the scan cursor's bucket
	// but live many windows ahead, so every findMin degenerates to a
	// full-table scan. The waste accounting must bail to the heap.
	base := Time(0)
	for i := 0; i < 3*wasteWindow && !q.fellBack; i++ {
		base += Time(len(q.buckets)) * q.width
		key++
		q.push(base, key, nil)
		q.pop()
	}
	if !q.fellBack || q.heapActive() == false {
		// fellBack implies heapActive; assert both for clarity.
		if !q.fellBack {
			t.Fatal("pathological horizon did not trigger heap fallback")
		}
	}
	if got := q.name(); got != "calendar+heap-fallback" {
		t.Fatalf("scheduler name = %q, want calendar+heap-fallback", got)
	}
	// Ordering must survive the migration.
	prev := [2]int64{-1, -1}
	for _, p := range popAll(&q) {
		if p[0] < prev[0] || (p[0] == prev[0] && p[1] <= prev[1]) {
			t.Fatalf("out-of-order pop %v after %v", p, prev)
		}
		prev = p
	}
}

// TestSchedForcedModesStable: forced modes never auto-transition.
func TestSchedForcedModesStable(t *testing.T) {
	var cal sched
	cal.setMode(SchedCalendar)
	key := int64(0)
	base := Time(0)
	for i := 0; i < 2*wasteWindow; i++ {
		if len(cal.buckets) > 0 {
			base += Time(len(cal.buckets)) * cal.width
		} else {
			base += 1 << 20
		}
		key++
		cal.push(base, key, nil)
		cal.pop()
	}
	if cal.heapActive() {
		t.Fatal("forced calendar fell back to heap")
	}
	var heap sched
	heap.setMode(SchedHeap)
	for i := 0; i < 2*calendarMin; i++ {
		key++
		heap.push(Time(i), key, nil)
	}
	if !heap.heapActive() {
		t.Fatal("forced heap migrated to calendar")
	}
}

// TestSimSchedulerEquivalence runs the pool test's kernel workload at
// Sim level under each scheduler and requires identical results.
func TestSimSchedulerEquivalence(t *testing.T) {
	type outcome struct {
		end Time
		n   int64
	}
	run := func(m SchedMode) outcome {
		s := New()
		s.SetScheduler(m)
		end := kernelWorkload(s)
		return outcome{end: end, n: s.Executed()}
	}
	base := run(SchedHeap)
	for _, m := range []SchedMode{SchedCalendar, SchedAuto} {
		if got := run(m); got != base {
			t.Fatalf("%v outcome %+v != heap outcome %+v", m, got, base)
		}
	}
}

func TestParseSchedMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SchedMode
	}{{"", SchedAuto}, {"auto", SchedAuto}, {"heap", SchedHeap}, {"calendar", SchedCalendar}} {
		got, err := ParseSchedMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSchedMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSchedMode("wheel"); err == nil {
		t.Fatal("ParseSchedMode accepted an unknown mode")
	}
}
