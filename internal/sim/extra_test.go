package sim

import (
	"testing"

	"mpress/internal/units"
)

func TestExecutedCounter(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.Executed() != 5 {
		t.Errorf("executed = %d, want 5", s.Executed())
	}
}

func TestRunTwice(t *testing.T) {
	s := New()
	var order []int
	s.At(1, func() { order = append(order, 1) })
	s.Run()
	// New events after a completed run continue from the final time.
	s.At(5, func() { order = append(order, 2) })
	end := s.Run()
	if end != 5 || len(order) != 2 {
		t.Errorf("end = %v, order = %v", end, order)
	}
}

func TestQueueZeroDuration(t *testing.T) {
	s := New()
	q := NewQueue(s, "q")
	var done bool
	s.At(3, func() {
		q.Submit(0, func(start, end Time) {
			if start != 3 || end != 3 {
				t.Errorf("zero-duration span %v..%v", start, end)
			}
			done = true
		})
	})
	s.Run()
	if !done {
		t.Error("callback never ran")
	}
	if q.Name() != "q" {
		t.Error("queue name lost")
	}
}

func TestQueueUtilizationDegenerate(t *testing.T) {
	s := New()
	q := NewQueue(s, "q")
	if q.Utilization(0) != 0 {
		t.Error("zero horizon must be zero utilization")
	}
}

func TestLaneSetReserveUntilPanicsBackwards(t *testing.T) {
	s := New()
	l := NewLaneSet(s, "l", 1)
	l.Reserve(100, units.GBps(1), 0) // busy until 100ns
	defer func() {
		if recover() == nil {
			t.Error("expected panic reserving before the lane frees")
		}
	}()
	l.ReserveUntil(50, 10)
}

func TestLaneSetSingleLanePanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero lanes")
		}
	}()
	NewLaneSet(s, "bad", 0)
}

func TestLaneSetNames(t *testing.T) {
	s := New()
	l := NewLaneSet(s, "nv", 3)
	if l.Name() != "nv" || l.Lanes() != 3 {
		t.Error("lane set metadata wrong")
	}
}
