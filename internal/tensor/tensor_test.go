package tensor

import (
	"testing"
	"testing/quick"

	"mpress/internal/units"
)

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		Activation:     "activation",
		Parameter:      "parameter",
		Gradient:       "gradient",
		OptimizerState: "optimizer",
		Workspace:      "workspace",
		Class(99):      "Class(99)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestClassRecomputable(t *testing.T) {
	if !Activation.Recomputable() {
		t.Error("activations must be recomputable")
	}
	for _, c := range []Class{Parameter, Gradient, OptimizerState, Workspace} {
		if c.Recomputable() {
			t.Errorf("%v must not be recomputable", c)
		}
	}
}

func TestDTypeSize(t *testing.T) {
	if FP32.Size() != 4 || FP16.Size() != 2 || BF16.Size() != 2 {
		t.Errorf("dtype sizes wrong: fp32=%d fp16=%d bf16=%d", FP32.Size(), FP16.Size(), BF16.Size())
	}
	if FP16.String() != "fp16" || FP32.String() != "fp32" || BF16.String() != "bf16" {
		t.Error("dtype names wrong")
	}
}

func TestRegistryAddGet(t *testing.T) {
	r := NewRegistry()
	id1 := r.Add(Tensor{Name: "a", Class: Activation, Size: units.MB(216), Stage: 0})
	id2 := r.Add(Tensor{Name: "b", Class: Parameter, Size: units.MB(100), Stage: 1})
	if id1 != 0 || id2 != 1 {
		t.Fatalf("ids = %d, %d; want 0, 1", id1, id2)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if got := r.Get(id1); got.Name != "a" || got.ID != id1 {
		t.Errorf("Get(%d) = %+v", id1, got)
	}
}

func TestRegistryTotals(t *testing.T) {
	r := NewRegistry()
	r.Add(Tensor{Class: Activation, Size: 100})
	r.Add(Tensor{Class: Activation, Size: 50})
	r.Add(Tensor{Class: OptimizerState, Size: 200})
	byClass := r.TotalByClass()
	if byClass[Activation] != 150 {
		t.Errorf("activation total = %d, want 150", byClass[Activation])
	}
	if byClass[OptimizerState] != 200 {
		t.Errorf("optimizer total = %d, want 200", byClass[OptimizerState])
	}
	if r.TotalBytes() != 350 {
		t.Errorf("TotalBytes = %d, want 350", r.TotalBytes())
	}
}

func TestByStageSortedBySize(t *testing.T) {
	r := NewRegistry()
	r.Add(Tensor{Name: "small", Stage: 2, Size: 10})
	r.Add(Tensor{Name: "big", Stage: 2, Size: 1000})
	r.Add(Tensor{Name: "other", Stage: 1, Size: 500})
	r.Add(Tensor{Name: "mid", Stage: 2, Size: 100})
	ids := r.ByStage(2)
	if len(ids) != 3 {
		t.Fatalf("got %d tensors for stage 2, want 3", len(ids))
	}
	names := []string{r.Get(ids[0]).Name, r.Get(ids[1]).Name, r.Get(ids[2]).Name}
	want := []string{"big", "mid", "small"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("ByStage order[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	if got := r.ByStage(7); got != nil {
		t.Errorf("ByStage(7) = %v, want nil", got)
	}
}

func TestByStageTiesStable(t *testing.T) {
	r := NewRegistry()
	a := r.Add(Tensor{Name: "a", Stage: 0, Size: 64})
	b := r.Add(Tensor{Name: "b", Stage: 0, Size: 64})
	ids := r.ByStage(0)
	if ids[0] != a || ids[1] != b {
		t.Errorf("equal-size tensors must keep ID order, got %v", ids)
	}
}

func TestLiveInterval(t *testing.T) {
	l := LiveInterval{Start: units.Milliseconds(2), End: units.Milliseconds(80)}
	if l.Length() != units.Milliseconds(78) {
		t.Errorf("Length = %v, want 78ms", l.Length())
	}
}

func TestRegistryTotalsProperty(t *testing.T) {
	// The sum over classes always equals the overall total.
	f := func(sizes []uint16) bool {
		r := NewRegistry()
		for i, s := range sizes {
			r.Add(Tensor{Class: Class(i % 5), Size: units.Bytes(s)})
		}
		var sum units.Bytes
		for _, v := range r.TotalByClass() {
			sum += v
		}
		return sum == r.TotalBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
