// Package tensor defines the metadata describing tensors flowing through
// a training computation: their size, data class, producing/consuming
// operators and (after profiling) their live intervals.
//
// The simulator never materializes tensor values — MPress's decisions
// depend only on sizes, lifetimes and placement, exactly the information
// the paper's static profiler collects (Table III).
package tensor

import (
	"fmt"
	"sort"

	"mpress/internal/units"
)

// Class categorizes a tensor by the role its data plays in training.
// The paper's Table I breaks GPU memory consumption down by these
// classes; compaction mechanisms apply to different subsets (e.g.
// recomputation applies only to activations).
type Class int

const (
	// Activation tensors are produced by the forward pass and held
	// until the matching backward pass consumes them.
	Activation Class = iota
	// Parameter tensors are the model weights.
	Parameter
	// Gradient tensors are produced by the backward pass.
	Gradient
	// OptimizerState tensors are the optimizer's per-parameter state
	// (for Adam: fp32 master weights, first and second moments).
	OptimizerState
	// Workspace tensors are transient scratch buffers.
	Workspace
)

var classNames = [...]string{
	Activation:     "activation",
	Parameter:      "parameter",
	Gradient:       "gradient",
	OptimizerState: "optimizer",
	Workspace:      "workspace",
}

// String returns the lowercase class name.
func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// Recomputable reports whether dropping and recomputing tensors of this
// class is meaningful. Only activations can be recovered by re-running
// the forward pass (Sec. II-D).
func (c Class) Recomputable() bool { return c == Activation }

// DType is a tensor element type.
type DType int

const (
	FP32 DType = iota
	FP16
	BF16
)

// Size returns the byte width of one element.
func (d DType) Size() units.Bytes {
	switch d {
	case FP32:
		return 4
	case FP16, BF16:
		return 2
	default:
		return 4
	}
}

// String returns the conventional lowercase dtype name.
func (d DType) String() string {
	switch d {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case BF16:
		return "bf16"
	default:
		return fmt.Sprintf("DType(%d)", int(d))
	}
}

// ID uniquely identifies a tensor within one Registry.
type ID int

// Tensor is the static metadata of one tensor.
type Tensor struct {
	ID    ID
	Name  string
	Class Class
	DType DType
	// Size is the total footprint in bytes.
	Size units.Bytes
	// Stage is the pipeline stage that owns the tensor (-1 if unassigned).
	Stage int
	// Layer is the model layer index the tensor belongs to (-1 if N/A).
	Layer int
	// Producer is the operator that creates the tensor (-1 for inputs
	// and persistent state created at initialization).
	Producer int
	// Consumers are the operators that read the tensor, in graph order.
	Consumers []int
}

// LiveInterval is the time window between a tensor's generation (or
// previous use) and its next use, as measured by the profiler. For an
// activation this is the gap between its forward and backward passes
// (paper Sec. III-A, footnote 1).
type LiveInterval struct {
	Start units.Duration
	End   units.Duration
}

// Length returns End-Start, the duration the tensor sits idle and is
// therefore a candidate for eviction.
func (l LiveInterval) Length() units.Duration { return l.End - l.Start }

// Registry allocates tensor IDs and stores tensor metadata for one
// model/graph instance.
type Registry struct {
	tensors []Tensor
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add registers t (ignoring t.ID) and returns its assigned ID.
func (r *Registry) Add(t Tensor) ID {
	t.ID = ID(len(r.tensors))
	if t.Producer == 0 && t.Name == "" {
		t.Producer = -1
	}
	r.tensors = append(r.tensors, t)
	return t.ID
}

// Get returns the tensor with the given id. It panics if id is out of
// range, which always indicates a programming error (IDs are only minted
// by Add).
func (r *Registry) Get(id ID) *Tensor {
	return &r.tensors[id]
}

// Len returns the number of registered tensors.
func (r *Registry) Len() int { return len(r.tensors) }

// All returns the tensors in ID order. The returned slice aliases the
// registry's storage; callers must not append to it.
func (r *Registry) All() []Tensor { return r.tensors }

// TotalByClass sums tensor sizes grouped by class.
func (r *Registry) TotalByClass() map[Class]units.Bytes {
	m := make(map[Class]units.Bytes)
	for i := range r.tensors {
		m[r.tensors[i].Class] += r.tensors[i].Size
	}
	return m
}

// TotalBytes sums all tensor sizes.
func (r *Registry) TotalBytes() units.Bytes {
	var total units.Bytes
	for i := range r.tensors {
		total += r.tensors[i].Size
	}
	return total
}

// ByStage returns the IDs of tensors owned by the given stage, sorted by
// descending size (the order in which compaction planners consider them).
func (r *Registry) ByStage(stage int) []ID {
	var ids []ID
	for i := range r.tensors {
		if r.tensors[i].Stage == stage {
			ids = append(ids, r.tensors[i].ID)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		ta, tb := r.tensors[ids[a]], r.tensors[ids[b]]
		if ta.Size != tb.Size {
			return ta.Size > tb.Size
		}
		return ta.ID < tb.ID
	})
	return ids
}
