// Package capacity is the what-if engine behind mpress-fleet: given a
// job mix (a weighted distribution over model presets, pipeline
// systems and fault rates) and a goodput SLO, it enumerates candidate
// fleets — machine type × node count × tensor-parallel degree ×
// checkpoint policy, drawn from the hardware catalog — evaluates each
// through the simulator, prunes the infeasible and the dominated, and
// ranks the survivors by dollars and energy per effective sample.
//
// Evaluation reuses the whole existing stack rather than a side
// model: every (candidate × job class) pair becomes one runner.Config
// pushed through a shared Runner pool, so candidates that differ only
// in scale-out or checkpoint cadence deduplicate their planner work
// through the plan cache, and resilient classes replay the same
// deterministic fault schedule the sweep tools use. Results are
// byte-identical for a fixed spec at any worker count.
package capacity

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"mpress/internal/catalog"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/runner"
	"mpress/internal/units"
)

// JobClass is one component of the fleet's workload mix.
type JobClass struct {
	// Name labels the class in reports, e.g. "bert-pretrain".
	Name string `json:"name"`
	// Family and Size select a model preset: "bert" or "gpt" plus a
	// variant size ("1.2B", "5.3B", …).
	Family string `json:"family"`
	Size   string `json:"size"`
	// System is the training system by CLI name ("mpress", "d2d",
	// "plain", …); empty means "mpress".
	System string `json:"system,omitempty"`
	// MicrobatchSize defaults per family (12 for bert, 2 for gpt);
	// Minibatches to the runner default.
	MicrobatchSize int `json:"microbatch,omitempty"`
	Minibatches    int `json:"minibatches,omitempty"`
	// Weight is the class's share of the mix (default 1). Aggregate
	// fleet goodput is the weighted mean over classes.
	Weight float64 `json:"weight,omitempty"`
	// MTBFSeconds, when > 0, runs the class under the deterministic
	// fault model with this mean time between failures. Classes with
	// tensor parallelism are priced analytically instead (see
	// Evaluate).
	MTBFSeconds float64 `json:"mtbf_s,omitempty"`
}

// MTBF returns the class's mean time between failures (0 = fault-free).
func (c *JobClass) MTBF() units.Duration {
	return units.Duration(c.MTBFSeconds * float64(units.Second))
}

// SLO is the goodput floor a candidate must meet to be feasible.
type SLO struct {
	// GoodputFrac, when > 0, requires every class to retain at least
	// this fraction of its fault-free throughput after resilience
	// overheads (checkpoint stalls, lost work, recovery).
	GoodputFrac float64 `json:"goodput_frac,omitempty"`
	// MinSamplesPerSec, when > 0, requires the weighted aggregate
	// fleet goodput to reach this absolute floor.
	MinSamplesPerSec float64 `json:"min_samples_per_sec,omitempty"`
}

// Candidates spans the configuration space to enumerate: the cross
// product of machine types, node counts, TP degrees and checkpoint
// intervals.
type Candidates struct {
	// Machines are catalog names (default: the whole catalog).
	Machines []string `json:"machines,omitempty"`
	// Nodes are data-parallel node counts (default [1]).
	Nodes []int `json:"nodes,omitempty"`
	// TP are tensor-parallel degrees (default [1]).
	TP []int `json:"tp,omitempty"`
	// CheckpointSeconds are checkpoint intervals to try for resilient
	// classes; 0 means the Young–Daly optimum (default [0]). Ignored
	// by fault-free mixes.
	CheckpointSeconds []float64 `json:"checkpoint_s,omitempty"`
}

// Spec is a complete what-if question: a job mix, an SLO and the
// candidate space. It is the mpress-fleet input file format.
type Spec struct {
	Name string `json:"name"`
	// Seed drives every deterministic fault schedule in the
	// evaluation; a fixed seed makes the whole ranking reproducible.
	Seed       uint64     `json:"seed"`
	Jobs       []JobClass `json:"jobs"`
	SLO        SLO        `json:"slo"`
	Candidates Candidates `json:"candidates"`
}

// Parse decodes and validates a spec, filling defaults.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("capacity: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("capacity: %w", err)
	}
	return Parse(data)
}

// modelFor resolves a class's model preset and its family's default
// schedule and microbatch size (the same defaults mpress-sweep uses).
func modelFor(c *JobClass) (model.Config, pipeline.ScheduleKind, int, error) {
	switch strings.ToLower(c.Family) {
	case "bert":
		m, err := model.BertVariant(c.Size)
		return m, pipeline.PipeDream, 12, err
	case "gpt":
		m, err := model.GPTVariant(c.Size)
		return m, pipeline.DAPPLE, 2, err
	default:
		return model.Config{}, 0, 0, fmt.Errorf("capacity: job %q: unknown family %q (valid: bert, gpt)", c.Name, c.Family)
	}
}

// Validate checks the spec and fills defaults in place.
func (s *Spec) Validate() error {
	if s.Name == "" {
		s.Name = "jobmix"
	}
	if len(s.Jobs) == 0 {
		return fmt.Errorf("capacity: spec %q has no job classes", s.Name)
	}
	for i := range s.Jobs {
		c := &s.Jobs[i]
		if c.Name == "" {
			c.Name = fmt.Sprintf("job%d", i)
		}
		if c.Weight < 0 {
			return fmt.Errorf("capacity: job %q has negative weight", c.Name)
		}
		if c.Weight == 0 {
			c.Weight = 1
		}
		if c.MTBFSeconds < 0 {
			return fmt.Errorf("capacity: job %q has negative mtbf_s", c.Name)
		}
		if c.System == "" {
			c.System = "mpress"
		}
		if _, err := runner.LookupSystem(c.System); err != nil {
			return fmt.Errorf("capacity: job %q: %w", c.Name, err)
		}
		_, _, defaultMB, err := modelFor(c)
		if err != nil {
			return err
		}
		if c.MicrobatchSize == 0 {
			c.MicrobatchSize = defaultMB
		}
	}
	if s.SLO.GoodputFrac < 0 || s.SLO.GoodputFrac > 1 {
		return fmt.Errorf("capacity: slo.goodput_frac %g outside [0, 1]", s.SLO.GoodputFrac)
	}
	if s.SLO.MinSamplesPerSec < 0 {
		return fmt.Errorf("capacity: slo.min_samples_per_sec is negative")
	}
	cand := &s.Candidates
	if len(cand.Machines) == 0 {
		cand.Machines = catalog.MachineNames()
	}
	for _, name := range cand.Machines {
		if _, err := catalog.Lookup(name); err != nil {
			return err
		}
	}
	if len(cand.Nodes) == 0 {
		cand.Nodes = []int{1}
	}
	for _, n := range cand.Nodes {
		if n < 1 {
			return fmt.Errorf("capacity: node count %d < 1", n)
		}
	}
	if len(cand.TP) == 0 {
		cand.TP = []int{1}
	}
	for _, tp := range cand.TP {
		if tp < 1 {
			return fmt.Errorf("capacity: tp degree %d < 1", tp)
		}
	}
	if len(cand.CheckpointSeconds) == 0 {
		cand.CheckpointSeconds = []float64{0}
	}
	for _, iv := range cand.CheckpointSeconds {
		if iv < 0 {
			return fmt.Errorf("capacity: checkpoint_s %g is negative", iv)
		}
	}
	return nil
}

// resilient reports whether any class in the mix injects faults — if
// none does, the checkpoint axis collapses to a single entry.
func (s *Spec) resilient() bool {
	for i := range s.Jobs {
		if s.Jobs[i].MTBFSeconds > 0 {
			return true
		}
	}
	return false
}
