package capacity

import (
	"context"
	"fmt"
	"sort"

	"mpress/internal/catalog"
	"mpress/internal/chaos"
	"mpress/internal/ckpt"
	"mpress/internal/cluster"
	"mpress/internal/pipeline"
	"mpress/internal/runner"
	"mpress/internal/units"
)

// Candidate is one point of the enumeration: a machine type at a node
// count, a tensor-parallel degree and a checkpoint cadence.
type Candidate struct {
	Machine string `json:"machine"`
	Nodes   int    `json:"nodes"`
	TP      int    `json:"tp"`
	// CheckpointSeconds is the snapshot interval for resilient
	// classes; 0 means Young–Daly.
	CheckpointSeconds float64 `json:"checkpoint_s"`
}

// String names the candidate, e.g. "dgx2-a100 x2 tp2 ckpt=yd".
func (c Candidate) String() string {
	return fmt.Sprintf("%s x%d tp%d ckpt=%s", c.Machine, c.Nodes, c.TP, c.ckptLabel())
}

func (c Candidate) ckptLabel() string {
	if c.CheckpointSeconds == 0 {
		return "yd"
	}
	return fmt.Sprintf("%gs", c.CheckpointSeconds)
}

// ClassResult is one job class evaluated on one candidate.
type ClassResult struct {
	Class string `json:"class"`
	// Status is "ok", "oom" or "error" (Err then says why).
	Status string `json:"status"`
	Err    string `json:"err,omitempty"`
	// GoodputSPS is the fleet-wide effective samples/sec of the class
	// on this candidate (resilience overheads included); IdealSPS is
	// its fault-free rate and GoodputFrac their ratio.
	GoodputSPS  float64 `json:"goodput_sps"`
	IdealSPS    float64 `json:"ideal_sps"`
	GoodputFrac float64 `json:"goodput_frac"`
	// Analytic marks a class priced by the first-order overhead model
	// (ckpt.ExpectedOverheadRate) instead of the full resilient
	// replay — tensor-parallel classes, which the replay does not
	// compose with yet.
	Analytic bool `json:"analytic,omitempty"`
}

// Evaluation is one candidate's complete outcome.
type Evaluation struct {
	Candidate
	Classes []ClassResult `json:"classes"`
	// Feasible means every class ran and the SLO held; Reason says
	// what disqualified an infeasible candidate.
	Feasible bool   `json:"feasible"`
	Reason   string `json:"reason,omitempty"`
	// Dominated marks a feasible candidate beaten on both cost and
	// energy by another feasible one; only undominated candidates are
	// ranked.
	Dominated bool `json:"dominated,omitempty"`
	// AggGoodputSPS is the weighted mean fleet goodput over classes.
	AggGoodputSPS float64 `json:"agg_goodput_sps"`
	// MinGoodputFrac is the worst class's goodput fraction.
	MinGoodputFrac float64 `json:"min_goodput_frac"`
	// CostPerKSample and EnergyWhPerKSample are the ranking metrics:
	// dollars and watt-hours per thousand effective samples.
	CostPerKSample     float64 `json:"cost_usd_per_ksample"`
	EnergyWhPerKSample float64 `json:"energy_wh_per_ksample"`
	// NodeHourlyCost and NodePower echo the catalog entry.
	NodeHourlyCost units.Cost  `json:"node_usd_hr"`
	NodePower      units.Power `json:"node_watts"`
}

// Result is a complete what-if answer.
type Result struct {
	Spec *Spec `json:"spec"`
	// Evaluations holds every candidate in enumeration order;
	// Ranked the feasible undominated ones, cheapest first.
	Evaluations []Evaluation `json:"evaluations"`
	Ranked      []Evaluation `json:"ranked"`
	// Stats carries the shared runner's counters; the plan cache
	// deduplicates planner work across candidates (misses = distinct
	// plan keys, at any worker count).
	Stats runner.Stats `json:"-"`
}

// Options tunes the evaluation.
type Options struct {
	// Workers bounds concurrent job simulations (0 = GOMAXPROCS).
	// Results are byte-identical at any setting.
	Workers int
	// OnJobDone, when set, observes every completed job (called from
	// worker goroutines).
	OnJobDone func(runner.JobResult)
}

// Evaluate answers the spec: enumerate, simulate, prune, rank.
func Evaluate(ctx context.Context, spec *Spec, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ckptAxis := spec.Candidates.CheckpointSeconds
	if !spec.resilient() {
		// Fault-free mixes never checkpoint; a wider axis would only
		// clone identical candidates.
		ckptAxis = ckptAxis[:1]
	}
	var cands []Candidate
	for _, mName := range spec.Candidates.Machines {
		for _, nodes := range spec.Candidates.Nodes {
			for _, tp := range spec.Candidates.TP {
				for _, iv := range ckptAxis {
					cands = append(cands, Candidate{Machine: mName, Nodes: nodes, TP: tp, CheckpointSeconds: iv})
				}
			}
		}
	}

	// Lower every (candidate × class) pair to a runner.Config. A pair
	// that fails to lower (no fabric for scale-out, say) records its
	// error and occupies no slot in the batch.
	type slot struct {
		cand, class int
		analytic    bool
	}
	evals := make([]Evaluation, len(cands))
	classErrs := make([][]string, len(cands))
	var cfgs []runner.Config
	var slots []slot
	for ci, cand := range cands {
		evals[ci] = Evaluation{Candidate: cand, Classes: make([]ClassResult, len(spec.Jobs))}
		classErrs[ci] = make([]string, len(spec.Jobs))
		machine, err := catalog.Lookup(cand.Machine)
		if err != nil {
			return nil, err
		}
		evals[ci].NodeHourlyCost = machine.HourlyCost
		evals[ci].NodePower = machine.Power
		for ki := range spec.Jobs {
			cfg, analytic, err := lowerClass(spec, &spec.Jobs[ki], &machine, cand)
			if err != nil {
				classErrs[ci][ki] = err.Error()
				continue
			}
			cfgs = append(cfgs, cfg)
			slots = append(slots, slot{ci, ki, analytic})
		}
	}

	r := runner.New(runner.Options{Workers: opts.Workers, OnJobDone: opts.OnJobDone})
	results := r.RunConfigs(ctx, cfgs)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	for si, jr := range results {
		s := slots[si]
		cand := cands[s.cand]
		cls := &evals[s.cand].Classes[s.class]
		*cls = classResult(&spec.Jobs[s.class], cand, jr, s.analytic)
	}
	for ci := range evals {
		for ki, msg := range classErrs[ci] {
			if msg != "" {
				evals[ci].Classes[ki] = ClassResult{Class: spec.Jobs[ki].Name, Status: "error", Err: msg}
			}
		}
		finishEvaluation(spec, &evals[ci])
	}

	pruneAndRank(evals)
	res := &Result{Spec: spec, Evaluations: evals, Stats: r.Stats()}
	for _, ev := range evals {
		if ev.Feasible && !ev.Dominated {
			res.Ranked = append(res.Ranked, ev)
		}
	}
	return res, nil
}

// lowerClass builds the runner.Config for one class on one candidate.
// The returned analytic flag marks TP>1 resilient classes, which run
// fault-free and are priced by the first-order overhead model instead
// (the resilient replay does not compose with TP yet).
func lowerClass(spec *Spec, class *JobClass, machine *catalog.MachineType, cand Candidate) (runner.Config, bool, error) {
	m, schedule, _, err := modelFor(class)
	if err != nil {
		return runner.Config{}, false, err
	}
	sys, err := runner.LookupSystem(class.System)
	if err != nil {
		return runner.Config{}, false, err
	}
	cfg := runner.Config{
		Topology:       machine.Server,
		Model:          m,
		Schedule:       schedule,
		System:         sys,
		MicrobatchSize: class.MicrobatchSize,
		Minibatches:    class.Minibatches,
		TPDegree:       cand.TP,
		Price:          &runner.Price{NodePower: machine.Power, NodeHourlyCost: machine.HourlyCost},
	}
	if cand.Nodes > 1 {
		fab, ok := machine.DefaultFabric()
		if !ok {
			return runner.Config{}, false, fmt.Errorf("capacity: %s has no fabric; cannot scale to %d nodes", machine.Name, cand.Nodes)
		}
		clus, err := cluster.New(cand.Nodes, machine.Server, fab)
		if err != nil {
			return runner.Config{}, false, err
		}
		cfg.Cluster = clus
	}
	analytic := false
	if class.MTBFSeconds > 0 {
		if cand.TP > 1 {
			analytic = true // fault-free run + analytic overhead
		} else {
			cfg.Faults = &chaos.Config{Seed: spec.Seed, MTBF: class.MTBF()}
			cfg.Checkpoint = &ckpt.Policy{Interval: ckptInterval(cand)}
		}
	}
	// Surface validation errors (TP not dividing the GPU count, ZeRO
	// at multi-node, …) at lowering time so they count as class
	// errors, not batch failures.
	if _, err := cfg.WithDefaults(); err != nil {
		return runner.Config{}, false, err
	}
	return cfg, analytic, nil
}

func ckptInterval(cand Candidate) units.Duration {
	return units.Duration(cand.CheckpointSeconds * float64(units.Second))
}

// classResult folds one job result into the class's goodput metrics.
func classResult(class *JobClass, cand Candidate, jr runner.JobResult, analytic bool) ClassResult {
	cls := ClassResult{Class: class.Name, Analytic: analytic}
	switch {
	case jr.Err != nil:
		cls.Status, cls.Err = "error", jr.Err.Error()
		return cls
	case jr.Report.Failed():
		cls.Status, cls.Err = "oom", jr.Report.OOM.Error()
		return cls
	}
	rep := jr.Report
	cls.Status = "ok"
	cls.IdealSPS = rep.ClusterSamplesPerSec
	switch {
	case analytic:
		// TP classes ran fault-free; charge the first-order overhead
		// of checkpointing at the candidate's cadence against the
		// class's MTBF: wall = useful × (1 + rate).
		rate := analyticOverheadRate(rep.Config, class.MTBF(), ckptInterval(cand))
		cls.GoodputSPS = rep.ClusterSamplesPerSec / (1 + rate)
	case class.MTBFSeconds > 0:
		// The resilient replay measured goodput per replica.
		cls.GoodputSPS = rep.Goodput * float64(rep.Replicas)
	default:
		cls.GoodputSPS = rep.ClusterSamplesPerSec
	}
	if cls.IdealSPS > 0 {
		cls.GoodputFrac = cls.GoodputSPS / cls.IdealSPS
	}
	return cls
}

// analyticOverheadRate prices resilience for a config the replay
// cannot run: rebuild the lowered pipeline, size its checkpoint
// payload, resolve the interval (Young–Daly when unset) and apply the
// first-order overhead model.
func analyticOverheadRate(c runner.Config, mtbf units.Duration, interval units.Duration) float64 {
	part, err := pipeline.PartitionModel(c.Model, c.Stages, c.Strategy, c.Schedule,
		*c.Precision, c.MicrobatchSize, c.Microbatches)
	if err != nil {
		return 0
	}
	built, err := pipeline.Build(pipeline.BuildConfig{
		Model: c.Model, Prec: *c.Precision, Part: part, Kind: c.Schedule,
		MicrobatchSize: c.MicrobatchSize,
		Microbatches:   c.Microbatches,
		Minibatches:    c.Minibatches,
		TP:             c.TPDegree,
	})
	if err != nil {
		return 0
	}
	perStage := ckpt.StageBytes(built)
	cost := ckpt.Cost(c.Topology, perStage)
	policy := ckpt.Policy{Interval: interval}
	iv := policy.Resolve(cost, mtbf)
	return ckpt.ExpectedOverheadRate(iv, cost, mtbf, ckpt.RestoreCost(c.Topology, perStage))
}

// finishEvaluation aggregates class results into the candidate's
// feasibility verdict and ranking metrics.
func finishEvaluation(spec *Spec, ev *Evaluation) {
	var weightSum, goodputSum float64
	minFrac := 1.0
	for ki := range ev.Classes {
		cls := &ev.Classes[ki]
		if cls.Status != "ok" {
			ev.Reason = fmt.Sprintf("class %s: %s", cls.Class, cls.Status)
			return
		}
		w := spec.Jobs[ki].Weight
		weightSum += w
		goodputSum += w * cls.GoodputSPS
		if cls.GoodputFrac < minFrac {
			minFrac = cls.GoodputFrac
		}
	}
	ev.AggGoodputSPS = goodputSum / weightSum
	ev.MinGoodputFrac = minFrac
	if slo := spec.SLO.GoodputFrac; slo > 0 && minFrac < slo {
		ev.Reason = fmt.Sprintf("goodput fraction %.3f below SLO %.3f", minFrac, slo)
		return
	}
	if floor := spec.SLO.MinSamplesPerSec; floor > 0 && ev.AggGoodputSPS < floor {
		ev.Reason = fmt.Sprintf("aggregate goodput %.2f samples/s below SLO floor %.2f", ev.AggGoodputSPS, floor)
		return
	}
	ev.Feasible = true
	hourly := ev.NodeHourlyCost.Dollarsf() * float64(ev.Nodes)
	watts := ev.NodePower.Wattsf() * float64(ev.Nodes)
	samplesPerHour := ev.AggGoodputSPS * 3600
	ev.CostPerKSample = hourly / samplesPerHour * 1000
	ev.EnergyWhPerKSample = watts / samplesPerHour * 1000
}

// pruneAndRank marks dominated candidates and orders the evaluations:
// feasible undominated by (cost, energy, name) first — the ranking —
// then dominated, then infeasible, each deterministically tie-broken.
func pruneAndRank(evals []Evaluation) {
	for i := range evals {
		if !evals[i].Feasible {
			continue
		}
		for j := range evals {
			if i == j || !evals[j].Feasible || evals[j].Dominated {
				continue
			}
			if dominates(&evals[j], &evals[i]) {
				evals[i].Dominated = true
				evals[i].Reason = fmt.Sprintf("dominated by %s", evals[j].Candidate)
				break
			}
		}
	}
	sort.SliceStable(evals, func(a, b int) bool {
		ea, eb := &evals[a], &evals[b]
		if ea.Feasible != eb.Feasible {
			return ea.Feasible
		}
		if ea.Dominated != eb.Dominated {
			return !ea.Dominated
		}
		if ea.Feasible && !ea.Dominated {
			if ea.CostPerKSample != eb.CostPerKSample {
				return ea.CostPerKSample < eb.CostPerKSample
			}
			if ea.EnergyWhPerKSample != eb.EnergyWhPerKSample {
				return ea.EnergyWhPerKSample < eb.EnergyWhPerKSample
			}
		}
		if ea.Machine != eb.Machine {
			return ea.Machine < eb.Machine
		}
		if ea.Nodes != eb.Nodes {
			return ea.Nodes < eb.Nodes
		}
		if ea.TP != eb.TP {
			return ea.TP < eb.TP
		}
		return ea.CheckpointSeconds < eb.CheckpointSeconds
	})
}

// dominates reports a beats b on both ranking metrics, strictly on at
// least one — the Pareto test pruning uses.
func dominates(a, b *Evaluation) bool {
	if a.CostPerKSample > b.CostPerKSample || a.EnergyWhPerKSample > b.EnergyWhPerKSample {
		return false
	}
	return a.CostPerKSample < b.CostPerKSample || a.EnergyWhPerKSample < b.EnergyWhPerKSample
}
