package capacity

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVHeader is the ranked-output column set.
var CSVHeader = []string{
	"rank", "machine", "nodes", "tp", "ckpt",
	"feasible", "agg_goodput_sps", "min_goodput_frac",
	"cost_usd_per_ksample", "energy_wh_per_ksample",
	"node_usd_hr", "node_watts", "reason",
}

// num renders a metric with enough digits to round-trip decisions but
// a stable, locale-free format — CSV outputs are byte-compared across
// worker counts, so every float must format identically everywhere.
func num(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// WriteCSV emits the full evaluation as CSV: the ranking first (rank
// 1, 2, …), then dominated and infeasible candidates with rank "-".
// Rows are deterministic: byte-identical for a fixed spec at any
// worker count.
func WriteCSV(w io.Writer, res *Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	rank := 0
	for _, ev := range res.Evaluations {
		rankCol := "-"
		if ev.Feasible && !ev.Dominated {
			rank++
			rankCol = strconv.Itoa(rank)
		}
		row := []string{
			rankCol, ev.Machine, strconv.Itoa(ev.Nodes), strconv.Itoa(ev.TP), ev.ckptLabel(),
			strconv.FormatBool(ev.Feasible && !ev.Dominated),
			num(ev.AggGoodputSPS), num(ev.MinGoodputFrac),
			num(ev.CostPerKSample), num(ev.EnergyWhPerKSample),
			num(ev.NodeHourlyCost.Dollarsf()), num(ev.NodePower.Wattsf()),
			ev.Reason,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable prints the human-facing recommendation table: the ranked
// feasible candidates with their economics, then the rejections with
// their reasons.
func WriteTable(w io.Writer, res *Result) {
	fmt.Fprintf(w, "job mix %q: %d classes, %d candidates, %d feasible\n\n",
		res.Spec.Name, len(res.Spec.Jobs), len(res.Evaluations), len(res.Ranked))
	if len(res.Ranked) > 0 {
		t := newTable("rank", "machine", "nodes", "tp", "ckpt",
			"goodput sps", "min frac", "$/Ksample", "Wh/Ksample")
		for i, ev := range res.Ranked {
			t.add(strconv.Itoa(i+1), ev.Machine, strconv.Itoa(ev.Nodes), strconv.Itoa(ev.TP),
				ev.ckptLabel(), fmt.Sprintf("%.2f", ev.AggGoodputSPS),
				fmt.Sprintf("%.3f", ev.MinGoodputFrac),
				fmt.Sprintf("%.4f", ev.CostPerKSample),
				fmt.Sprintf("%.2f", ev.EnergyWhPerKSample))
		}
		t.write(w)
		best := res.Ranked[0]
		fmt.Fprintf(w, "\nrecommendation: %s — %s/node, %v/node, %s per 1000 samples\n",
			best.Candidate, best.NodeHourlyCost, best.NodePower,
			fmt.Sprintf("$%.4f", best.CostPerKSample))
	} else {
		fmt.Fprintln(w, "no feasible candidate meets the SLO")
	}
	var rejected []Evaluation
	for _, ev := range res.Evaluations {
		if !ev.Feasible || ev.Dominated {
			rejected = append(rejected, ev)
		}
	}
	if len(rejected) > 0 {
		fmt.Fprintf(w, "\nrejected (%d):\n", len(rejected))
		t := newTable("candidate", "reason")
		for _, ev := range rejected {
			t.add(ev.Candidate.String(), ev.Reason)
		}
		t.write(w)
	}
}

// table is a minimal fixed-width text table writer (the experiments
// package has a twin; both are too small to share).
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}
