package capacity

import (
	"context"
	"strings"
	"testing"

	"mpress/internal/catalog"
)

func TestSpecParseDefaults(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "mix",
		"jobs": [{"family": "bert", "size": "0.35B"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	j := spec.Jobs[0]
	if j.Name != "job0" || j.System != "mpress" || j.Weight != 1 || j.MicrobatchSize != 12 {
		t.Errorf("defaults not filled: %+v", j)
	}
	if len(spec.Candidates.Machines) != len(catalog.MachineNames()) {
		t.Errorf("machines did not default to the catalog: %v", spec.Candidates.Machines)
	}
	if len(spec.Candidates.Nodes) != 1 || spec.Candidates.Nodes[0] != 1 {
		t.Errorf("nodes default = %v", spec.Candidates.Nodes)
	}
	if len(spec.Candidates.TP) != 1 || len(spec.Candidates.CheckpointSeconds) != 1 {
		t.Errorf("tp/ckpt defaults = %v / %v", spec.Candidates.TP, spec.Candidates.CheckpointSeconds)
	}

	gpt, err := Parse([]byte(`{"jobs": [{"family": "gpt", "size": "5.3B"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if gpt.Jobs[0].MicrobatchSize != 2 {
		t.Errorf("gpt microbatch default = %d", gpt.Jobs[0].MicrobatchSize)
	}
}

func TestSpecParseErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"unknown field", `{"jobs": [{"family": "bert", "size": "0.35B"}], "bogus": 1}`, "bogus"},
		{"no jobs", `{"jobs": []}`, "no job classes"},
		{"bad family", `{"jobs": [{"family": "resnet", "size": "50"}]}`, "unknown family"},
		{"bad size", `{"jobs": [{"family": "bert", "size": "9.9B"}]}`, "unknown Bert variant"},
		{"bad system", `{"jobs": [{"family": "bert", "size": "0.35B", "system": "magic"}]}`, "unknown system"},
		{"bad machine", `{"jobs": [{"family": "bert", "size": "0.35B"}], "candidates": {"machines": ["cray"]}}`, "unknown machine type"},
		{"bad nodes", `{"jobs": [{"family": "bert", "size": "0.35B"}], "candidates": {"nodes": [0]}}`, "node count"},
		{"bad slo", `{"jobs": [{"family": "bert", "size": "0.35B"}], "slo": {"goodput_frac": 1.5}}`, "goodput_frac"},
		{"negative mtbf", `{"jobs": [{"family": "bert", "size": "0.35B", "mtbf_s": -1}]}`, "mtbf_s"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// The walkthrough scenario: a mix with one class that OOMs on the
// consumer box, an SLO floor the cheap box would otherwise duck under,
// and a clear cheapest-feasible winner.
func TestEvaluateOutcomes(t *testing.T) {
	spec := &Spec{
		Name: "test-mix",
		Seed: 7,
		Jobs: []JobClass{
			{Name: "resilient", Family: "bert", Size: "0.35B", System: "mpress", MTBFSeconds: 1800},
			{Name: "plain", Family: "bert", Size: "0.35B", System: "plain"},
		},
		SLO: SLO{GoodputFrac: 0.5},
		Candidates: Candidates{
			Machines: []string{"dgx1-v100", "consumer-4090"},
		},
	}
	res, err := Evaluate(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluations) != 2 {
		t.Fatalf("got %d evaluations, want 2", len(res.Evaluations))
	}
	if len(res.Ranked) != 1 || res.Ranked[0].Machine != "dgx1-v100" {
		t.Fatalf("ranked = %+v, want dgx1-v100 alone", res.Ranked)
	}
	best := res.Ranked[0]
	if best.CostPerKSample <= 0 || best.EnergyWhPerKSample <= 0 {
		t.Errorf("winner has no economics: %+v", best)
	}
	if best.AggGoodputSPS <= 0 || best.MinGoodputFrac <= 0 || best.MinGoodputFrac > 1 {
		t.Errorf("winner goodput out of range: %+v", best)
	}
	var consumer *Evaluation
	for i := range res.Evaluations {
		if res.Evaluations[i].Machine == "consumer-4090" {
			consumer = &res.Evaluations[i]
		}
	}
	if consumer == nil || consumer.Feasible {
		t.Fatalf("consumer-4090 should be infeasible: %+v", consumer)
	}
	if !strings.Contains(consumer.Reason, "oom") {
		t.Errorf("consumer-4090 reason = %q, want an OOM", consumer.Reason)
	}
}

func TestEvaluateSLOFloor(t *testing.T) {
	spec := &Spec{
		Seed: 7,
		Jobs: []JobClass{{Name: "j", Family: "bert", Size: "0.35B", System: "mpress"}},
		SLO:  SLO{MinSamplesPerSec: 1e6},
		Candidates: Candidates{
			Machines: []string{"dgx1-v100"},
		},
	}
	res, err := Evaluate(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) != 0 {
		t.Fatalf("impossible SLO produced a ranking: %+v", res.Ranked)
	}
	if got := res.Evaluations[0].Reason; !strings.Contains(got, "below SLO floor") {
		t.Errorf("reason = %q, want SLO floor rejection", got)
	}
}

// Tensor-parallel resilient classes run fault-free and are priced by
// the first-order overhead model: the Analytic flag must be set and
// the goodput fraction strictly inside (0, 1).
func TestEvaluateAnalyticTPPath(t *testing.T) {
	spec := &Spec{
		Seed: 7,
		Jobs: []JobClass{{Name: "r", Family: "bert", Size: "0.35B", System: "mpress", MTBFSeconds: 600}},
		Candidates: Candidates{
			Machines: []string{"dgx1-v100"},
			TP:       []int{2},
		},
	}
	res, err := Evaluate(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluations) != 1 {
		t.Fatalf("got %d evaluations", len(res.Evaluations))
	}
	cls := res.Evaluations[0].Classes[0]
	if cls.Status != "ok" || !cls.Analytic {
		t.Fatalf("class = %+v, want analytic ok", cls)
	}
	if cls.GoodputFrac <= 0 || cls.GoodputFrac >= 1 {
		t.Errorf("analytic goodput fraction %g not in (0, 1)", cls.GoodputFrac)
	}
	if cls.GoodputSPS >= cls.IdealSPS {
		t.Error("analytic goodput not below ideal")
	}
}

// A machine beaten on both dollars and watt-hours per sample must be
// marked dominated and kept out of the ranking.
func TestEvaluateDominance(t *testing.T) {
	spec := &Spec{
		Seed: 7,
		Jobs: []JobClass{{Name: "j", Family: "gpt", Size: "5.3B", System: "mpress"}},
		Candidates: Candidates{
			Machines: []string{"dgx1-v100", "consumer-4090"},
		},
	}
	res, err := Evaluate(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) != 1 || res.Ranked[0].Machine != "consumer-4090" {
		t.Fatalf("ranked = %+v, want consumer-4090 alone", res.Ranked)
	}
	var dgx *Evaluation
	for i := range res.Evaluations {
		if res.Evaluations[i].Machine == "dgx1-v100" {
			dgx = &res.Evaluations[i]
		}
	}
	if dgx == nil || !dgx.Feasible || !dgx.Dominated {
		t.Fatalf("dgx1-v100 should be feasible but dominated: %+v", dgx)
	}
	if !strings.Contains(dgx.Reason, "dominated by consumer-4090") {
		t.Errorf("reason = %q", dgx.Reason)
	}
}

// TestFleetPlanSmoke is the make fleet-plan-smoke gate: a two-candidate
// catalog where the cheaper feasible machine must win the ranking.
func TestFleetPlanSmoke(t *testing.T) {
	spec := &Spec{
		Name: "smoke",
		Seed: 1,
		Jobs: []JobClass{{Name: "bert", Family: "bert", Size: "0.35B", System: "mpress"}},
		Candidates: Candidates{
			Machines: []string{"dgx2-a100", "consumer-4090"},
		},
	}
	res, err := Evaluate(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evaluations) != 2 {
		t.Fatalf("got %d candidates, want 2", len(res.Evaluations))
	}
	if len(res.Ranked) == 0 {
		t.Fatal("no feasible candidate")
	}
	best := res.Ranked[0]
	if best.Machine != "consumer-4090" {
		t.Fatalf("winner = %s, want the cheaper consumer-4090", best.Machine)
	}
	for _, ev := range res.Evaluations {
		if ev.Machine == "dgx2-a100" && ev.Feasible && !ev.Dominated {
			if ev.CostPerKSample < best.CostPerKSample {
				t.Error("a cheaper feasible candidate lost the ranking")
			}
		}
	}
}
