package capacity

import (
	"bytes"
	"context"
	"testing"
)

// raceSpec exercises the concurrent sweep: two classes over four
// candidates (two node counts × two checkpoint cadences) on one
// machine type. The planned classes collapse to exactly two distinct
// plan keys — the node axis is excluded from plan keys (planning is
// per-replica) and the checkpoint axis joins only the fingerprint —
// so the cache counters below are exact at any worker count.
func raceSpec() *Spec {
	return &Spec{
		Name: "race",
		Seed: 42,
		Jobs: []JobClass{
			{Name: "resilient", Family: "bert", Size: "0.35B", System: "mpress", MTBFSeconds: 1800},
			{Name: "steady", Family: "bert", Size: "0.64B", System: "d2d"},
		},
		SLO: SLO{GoodputFrac: 0.5},
		Candidates: Candidates{
			Machines:          []string{"dgx1-v100"},
			Nodes:             []int{1, 2},
			TP:                []int{1},
			CheckpointSeconds: []float64{0, 120},
		},
	}
}

// TestEvaluateDeterministic pins the determinism contract: the ranked
// CSV is byte-identical at workers=1 and workers=8, and the shared
// plan cache sees exactly the predicted hit/miss split — misses =
// distinct plan keys, everything else a hit (including waits on
// in-flight computes), regardless of interleaving. Run under -race by
// make fleet-plan-smoke.
func TestEvaluateDeterministic(t *testing.T) {
	var outputs [][]byte
	for _, workers := range []int{1, 8} {
		res, err := Evaluate(context.Background(), raceSpec(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		const (
			wantJobs     = 8 // 2 classes × 4 candidates
			wantComputes = 2 // one plan per (class, machine, tp)
			wantMisses   = 2
			wantHits     = 6
		)
		st := res.Stats
		if st.Jobs != wantJobs {
			t.Errorf("workers=%d: jobs = %d, want %d", workers, st.Jobs, wantJobs)
		}
		if st.PlanComputes != wantComputes {
			t.Errorf("workers=%d: plan computes = %d, want %d", workers, st.PlanComputes, wantComputes)
		}
		if st.PlanCacheMisses != wantMisses {
			t.Errorf("workers=%d: plan cache misses = %d, want %d", workers, st.PlanCacheMisses, wantMisses)
		}
		if st.PlanCacheHits != wantHits {
			t.Errorf("workers=%d: plan cache hits = %d, want %d", workers, st.PlanCacheHits, wantHits)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, res); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.Bytes())
	}
	if !bytes.Equal(outputs[0], outputs[1]) {
		t.Errorf("ranked CSV differs between workers=1 and workers=8:\n--- workers=1\n%s\n--- workers=8\n%s",
			outputs[0], outputs[1])
	}
}
