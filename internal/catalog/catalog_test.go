package catalog

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mpress/internal/units"
)

func TestCatalogEntriesValidate(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("catalog has %d entries, want 5", len(all))
	}
	for _, m := range all {
		m := m
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if m.HourlyCost <= 0 {
			t.Errorf("%s: hourly cost %v not positive", m.Name, m.HourlyCost)
		}
		if m.Power <= 0 {
			t.Errorf("%s: power %v not positive", m.Name, m.Power)
		}
		if _, ok := m.DefaultFabric(); !ok {
			t.Errorf("%s: no default fabric", m.Name)
		}
		if m.Description == "" {
			t.Errorf("%s: empty description", m.Name)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, name := range MachineNames() {
		m, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if m.Name != name {
			t.Errorf("Lookup(%q).Name = %q", name, m.Name)
		}
	}
	if m, err := Lookup("DGX1-V100"); err != nil || m.Name != "dgx1-v100" {
		t.Errorf("case-insensitive Lookup = %+v, %v", m.Name, err)
	}
}

func TestLookupUnknownListsNames(t *testing.T) {
	_, err := Lookup("dgx9000")
	if err == nil {
		t.Fatal("Lookup(dgx9000) succeeded")
	}
	for _, name := range MachineNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

// TestJSONRoundTrip pins that a catalog entry survives
// Marshal→Unmarshal bit-exactly — job-mix specs embed machines
// verbatim, so any lossy field would silently change plans.
func TestJSONRoundTrip(t *testing.T) {
	for _, m := range All() {
		m := m
		blob, err := json.Marshal(&m)
		if err != nil {
			t.Fatalf("%s: marshal: %v", m.Name, err)
		}
		var back MachineType
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", m.Name, err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Errorf("%s: round-trip mismatch:\n got %+v\nwant %+v", m.Name, back, m)
		}
		if err := back.Validate(); err != nil {
			t.Errorf("%s: round-tripped entry invalid: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadEntries(t *testing.T) {
	good, err := Lookup("dgx1-v100")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		mutil func(*MachineType)
	}{
		{"no name", func(m *MachineType) { m.Name = "" }},
		{"no server", func(m *MachineType) { m.Server = nil }},
		{"negative cost", func(m *MachineType) { m.HourlyCost = units.USD(-1) }},
		{"negative power", func(m *MachineType) { m.Power = units.Watts(-1) }},
		{"bad topology", func(m *MachineType) { m.Server.NumGPUs = 0 }},
	}
	for _, tc := range cases {
		m, _ := Lookup(good.Name) // fresh copy, including topology
		tc.mutil(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate passed", tc.name)
		}
	}
}

// The consumer box must be the regime the paper's pitch targets:
// small per-GPU memory, decent FLOPS, slow peer links.
func TestConsumer4090Shape(t *testing.T) {
	topo := Consumer4090()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.GPU.Memory != 24*units.GiB {
		t.Errorf("4090 memory = %v", topo.GPU.Memory)
	}
	dgx1, err := Lookup("dgx1-v100")
	if err != nil {
		t.Fatal(err)
	}
	// Peer bandwidth (one lane at PCIe P2P speed) must be far below
	// even DGX-1's single NVLink lane aggregate path.
	consumerPeer := float64(topo.NVLinkLaneBW) * float64(topo.LanesPerGPU)
	dgxPeer := float64(dgx1.Server.NVLinkLaneBW) * 2 // any 2-lane neighbor pair
	if consumerPeer >= dgxPeer {
		t.Errorf("consumer peer BW %.0f not below DGX-1 2-lane %.0f", consumerPeer, dgxPeer)
	}
}

func TestOffloadA100x4Shape(t *testing.T) {
	topo := OffloadA100x4()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.HostMemory != 2*units.TiB {
		t.Errorf("host memory = %v", topo.HostMemory)
	}
	if topo.NVMeBW != units.GBps(25) {
		t.Errorf("NVMe BW = %v", topo.NVMeBW)
	}
	if topo.NumGPUs != 4 {
		t.Errorf("NumGPUs = %d", topo.NumGPUs)
	}
}
