// Package catalog is the hardware catalog behind capacity planning: a
// registry of purchasable machine types, each bundling a server
// topology (internal/hw), the NIC fabrics it can attach
// (internal/cluster), an hourly rental rate and a power draw at
// training load.
//
// Where internal/hw answers "what does this server look like?", the
// catalog answers "what can I rent, and what does it cost?" — the
// inputs the what-if engine (internal/capacity) enumerates over when
// it searches for the cheapest hardware + parallelism + checkpoint
// configuration that meets a goodput SLO.
//
// Entries resolve by name via Lookup, mirroring cluster.LookupFabric:
// unknown names fail listing every valid one, and MachineNames feeds
// CLI help. Every entry is JSON-serializable and round-trips exactly
// (the topology, fabric and unit types use only exported
// plain-old-data fields), so job-mix specs and wire formats can embed
// machines verbatim.
//
// Prices and wattages are representative list numbers for the machine
// class, not quotes: they only need to be mutually consistent enough
// that relative rankings ($ per effective sample, energy per sample)
// are meaningful.
package catalog

import (
	"fmt"
	"strings"

	"mpress/internal/cluster"
	"mpress/internal/hw"
	"mpress/internal/units"
)

// MachineType is one rentable server class.
type MachineType struct {
	// Name is the catalog identifier, e.g. "dgx1-v100".
	Name string `json:"name"`
	// Description is a one-line human summary for tables and help.
	Description string `json:"description"`
	// Server is the machine's full topology — GPUs, NVLink/PCIe/NVMe
	// links, host memory.
	Server *hw.Topology `json:"server"`
	// Fabrics lists the NIC options the machine ships with, best
	// first; multi-node candidates default to Fabrics[0]. Empty means
	// the machine cannot scale out.
	Fabrics []cluster.Fabric `json:"fabrics,omitempty"`
	// HourlyCost is the rental rate of one node in $/hr.
	HourlyCost units.Cost `json:"hourly_cost"`
	// Power is one node's electrical draw at training load.
	Power units.Power `json:"power"`
}

// Validate checks internal consistency of the machine type.
func (m *MachineType) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("catalog: machine has no name")
	}
	if m.Server == nil {
		return fmt.Errorf("catalog: machine %q has no server topology", m.Name)
	}
	if err := m.Server.Validate(); err != nil {
		return fmt.Errorf("catalog: machine %q: %w", m.Name, err)
	}
	for i := range m.Fabrics {
		if err := m.Fabrics[i].Validate(); err != nil {
			return fmt.Errorf("catalog: machine %q: %w", m.Name, err)
		}
	}
	if m.HourlyCost < 0 {
		return fmt.Errorf("catalog: machine %q has negative hourly cost", m.Name)
	}
	if m.Power < 0 {
		return fmt.Errorf("catalog: machine %q has negative power", m.Name)
	}
	return nil
}

// DefaultFabric returns the machine's stock NIC option and whether it
// has one.
func (m *MachineType) DefaultFabric() (cluster.Fabric, bool) {
	if len(m.Fabrics) == 0 {
		return cluster.Fabric{}, false
	}
	return m.Fabrics[0], true
}

// String summarizes the entry, e.g.
// "dgx1-v100: 8x V100-SXM2-32GB, $14/hr, 3.50kW".
func (m *MachineType) String() string {
	return fmt.Sprintf("%s: %dx %s, %s/hr, %v",
		m.Name, m.Server.NumGPUs, m.Server.GPU.Name, m.HourlyCost, m.Power)
}

// RTX4090 is a consumer Ada-class GPU: big on paper FLOPS, small on
// memory, no NVLink. Peer traffic rides the PCIe switch.
func RTX4090() hw.GPUSpec {
	return hw.GPUSpec{
		Name:     "RTX-4090-24GB",
		Memory:   24 * units.GiB,
		PeakFP32: units.TFLOPS(82.6),
		PeakFP16: units.TFLOPS(165.2),
		// Consumer boards sustain a lower MFU than SXM parts (no
		// NVLink-fed data paths, aggressive power caps).
		Efficiency: 0.30,
		HBM:        units.GBps(1008),
	}
}

// Consumer4090 is the commodity box of the paper's "democratizing"
// pitch taken literally: 8 RTX 4090s on a PCIe switch. There is no
// NVLink, so the peer-to-peer path is modeled as a switched
// single-lane mesh at measured PCIe P2P bandwidth — D2D swap still
// works, just an order of magnitude slower per pair than on a DGX.
func Consumer4090() *hw.Topology {
	return &hw.Topology{
		Name:     "Consumer-8x4090",
		GPU:      RTX4090(),
		NumGPUs:  8,
		Switched: true,
		// One "lane" per GPU into the PCIe switch: P2P through a Gen4
		// switch sustains ~12 GB/s per pair, and a GPU cannot stripe
		// beyond its own x16 link.
		LanesPerGPU:   1,
		NVLinkLaneBW:  units.GBps(12),
		NVLinkLatency: 25 * units.Microsecond,
		PCIeBW:        units.GBps(12),
		PCIeLatency:   25 * units.Microsecond,
		HostMemory:    256 * units.GiB,
		NVMeBW:        units.GBps(7),
		NVMeLatency:   90 * units.Microsecond,
		NVMeSize:      4 * units.TiB,
	}
}

// OffloadA100x4 is a CPU-offload-heavy configuration: half the GPUs of
// a DGX-2, but 2 TiB of host DRAM and a healthy NVMe RAID — the
// machine ZeRO-Offload/Infinity-style swapping is sized for, and the
// regime where MPress's planner leans on GPU-CPU swap over D2D.
func OffloadA100x4() *hw.Topology {
	return &hw.Topology{
		Name:          "Offload-4xA100",
		GPU:           hw.A100(),
		NumGPUs:       4,
		Switched:      true,
		LanesPerGPU:   12,
		NVLinkLaneBW:  units.GBps(24.3),
		NVLinkLatency: 8 * units.Microsecond,
		PCIeBW:        units.GBps(22), // PCIe 4.0 x16 effective
		PCIeLatency:   15 * units.Microsecond,
		HostMemory:    2 * units.TiB,
		NVMeBW:        units.GBps(25),
		NVMeLatency:   80 * units.Microsecond,
		NVMeSize:      15 * units.TiB,
	}
}

// machineEntries builds the catalog in presentation order. Each call
// constructs fresh topologies, so callers may mutate their copy.
func machineEntries() []MachineType {
	return []MachineType{
		{
			Name:        "dgx1-v100",
			Description: "DGX-1V class: 8x V100-32GB, asymmetric NVLink cube mesh",
			Server:      hw.DGX1(),
			Fabrics:     []cluster.Fabric{cluster.InfiniBand4x100(), cluster.Ethernet25G()},
			HourlyCost:  units.USD(14),
			Power:       units.KW(3.5),
		},
		{
			Name:        "dgx2-a100",
			Description: "DGX-2 generation: 8x A100-40GB behind a non-blocking NVSwitch",
			Server:      hw.DGX2(),
			Fabrics:     []cluster.Fabric{cluster.InfiniBand4x100(), cluster.Ethernet25G()},
			HourlyCost:  units.USD(21),
			Power:       units.KW(6.5),
		},
		{
			Name:        "gh200",
			Description: "Grace-Hopper: 8x GH200-96GB superchips, 512 GB C2C memory each",
			Server:      hw.GraceHopper(),
			Fabrics:     []cluster.Fabric{cluster.InfiniBand4x100()},
			HourlyCost:  units.USD(45),
			Power:       units.KW(10.2),
		},
		{
			Name:        "consumer-4090",
			Description: "Commodity box: 8x RTX 4090-24GB on a PCIe switch, no NVLink",
			Server:      Consumer4090(),
			Fabrics:     []cluster.Fabric{cluster.Ethernet25G(), cluster.Ethernet10G()},
			HourlyCost:  units.USD(4.5),
			Power:       units.KW(3.2),
		},
		{
			Name:        "offload-a100x4",
			Description: "CPU-offload heavy: 4x A100-40GB, 2 TiB host DRAM, 25 GB/s NVMe",
			Server:      OffloadA100x4(),
			Fabrics:     []cluster.Fabric{cluster.Ethernet25G(), cluster.Ethernet10G()},
			HourlyCost:  units.USD(11),
			Power:       units.KW(3),
		},
	}
}

// All returns every catalog entry in presentation order. The slice and
// its topologies are fresh on every call.
func All() []MachineType { return machineEntries() }

// MachineNames lists every name Lookup accepts, in catalog order, for
// CLI help and error messages.
func MachineNames() []string {
	var names []string
	for _, m := range machineEntries() {
		names = append(names, m.Name)
	}
	return names
}

// Lookup resolves a machine type by name, case-insensitively. Unknown
// names fail with the full list of valid ones, à la
// cluster.LookupFabric.
func Lookup(name string) (MachineType, error) {
	lower := strings.ToLower(name)
	for _, m := range machineEntries() {
		if lower == m.Name {
			return m, nil
		}
	}
	return MachineType{}, fmt.Errorf("catalog: unknown machine type %q (valid names: %s)",
		name, strings.Join(MachineNames(), ", "))
}
