package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace file from the current output")

const goldenPath = "testdata/tiny.trace.json"

// TestChromeTraceGolden pins the Chrome trace-event JSON byte-for-byte
// over a small deterministic run — the trace file is an external
// artifact (chrome://tracing, Perfetto), so format drift must be a
// deliberate, reviewed change (`go test ./internal/trace -update`).
func TestChromeTraceGolden(t *testing.T) {
	b, res := runTiny(t)
	tl := Collect(b, res)
	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s (%d bytes)", goldenPath, buf.Len())
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (generate with: go test ./internal/trace -run Golden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace output drifted from golden file (%d bytes vs %d); "+
			"if intentional, regenerate with -update", buf.Len(), len(want))
	}
}

// TestChromeTracePerfettoCompatible validates the golden file against
// the trace-event contract Perfetto's importer relies on: every event
// is a complete ("X") span with non-negative ts/dur, pid is the stage
// lane, tid a per-stage track, and events are time-ordered within each
// (pid, tid) track.
func TestChromeTracePerfettoCompatible(t *testing.T) {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (generate with: go test ./internal/trace -run Golden -update)", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			Ts   *float64          `json:"ts"`
			Dur  *float64          `json:"dur"`
			Pid  *int              `json:"pid"`
			Tid  *int              `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("golden trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("golden trace has no events")
	}
	type track struct{ pid, tid int }
	lastTs := map[track]float64{}
	for i, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("event %d: phase %q, want complete spans", i, e.Ph)
		}
		if e.Name == "" || e.Cat == "" {
			t.Fatalf("event %d: missing name/cat", i)
		}
		if e.Ts == nil || e.Dur == nil || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event %d (%s): missing ts/dur/pid/tid", i, e.Name)
		}
		if *e.Ts < 0 || *e.Dur < 0 {
			t.Fatalf("event %d (%s): negative ts/dur %g/%g", i, e.Name, *e.Ts, *e.Dur)
		}
		if *e.Pid < 0 || *e.Pid >= 4 {
			t.Fatalf("event %d (%s): pid %d outside the 4-stage run", i, e.Name, *e.Pid)
		}
		if e.Args["microbatch"] == "" {
			t.Fatalf("event %d (%s): missing microbatch arg", i, e.Name)
		}
		// Perfetto renders each (pid, tid) as one track; our writer
		// emits tracks in nondecreasing ts order so spans nest cleanly.
		k := track{*e.Pid, *e.Tid}
		if prev, ok := lastTs[k]; ok && *e.Ts < prev {
			t.Fatalf("event %d (%s): ts %g goes backwards on track %+v (prev %g)",
				i, e.Name, *e.Ts, k, prev)
		}
		lastTs[k] = *e.Ts
	}
}
