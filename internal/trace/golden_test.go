package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace file from the current output")

const (
	goldenPath   = "testdata/tiny.trace.json"
	tpGoldenPath = "testdata/tiny_tp.trace.json"
)

// tpLaneNames is the lane naming a TPDegree=2-style run attaches to
// the tiny 4-stage timeline: each simulated lane stands for one TP
// group, named by its representative device.
var tpLaneNames = []string{"n0/gpu0 tp0", "n0/gpu2 tp1", "n0/gpu4 tp2", "n0/gpu6 tp3"}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s (%d bytes)", path, len(got))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (generate with: go test ./internal/trace -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace output drifted from %s (%d bytes vs %d); "+
			"if intentional, regenerate with -update", path, len(got), len(want))
	}
}

// TestChromeTraceGolden pins the Chrome trace-event JSON byte-for-byte
// over a small deterministic run — the trace file is an external
// artifact (chrome://tracing, Perfetto), so format drift must be a
// deliberate, reviewed change (`go test ./internal/trace -update`).
// Without LaneNames (every TPDegree=1 run) the bytes are pinned to the
// pre-grid format exactly.
func TestChromeTraceGolden(t *testing.T) {
	b, res := runTiny(t)
	tl := Collect(b, res)
	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, goldenPath, buf.Bytes())
}

// TestChromeTraceTPGolden pins the tensor-parallel variant: the same
// run with TP-group lane names attached. The only permitted difference
// from the plain golden is a prefix of phase-M process_name metadata
// events — the span events themselves must remain byte-identical.
func TestChromeTraceTPGolden(t *testing.T) {
	b, res := runTiny(t)
	tl := Collect(b, res)
	tl.LaneNames = tpLaneNames
	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, tpGoldenPath, buf.Bytes())

	// Span-event parity: stripping the metadata events (and the plain
	// golden's wrapper) leaves the exact same X-event payload.
	plain, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	const xPrefix = `{"name":"F:s0:mb0"` // first span event in both files
	i, j := bytes.Index(buf.Bytes(), []byte(xPrefix)), bytes.Index(plain, []byte(xPrefix))
	if i < 0 || j < 0 {
		t.Fatal("span events not found in trace output")
	}
	if !bytes.Equal(buf.Bytes()[i:], plain[j:]) {
		t.Error("TP lane naming changed the span events, not just the metadata prefix")
	}
}

// laneNameRE is the TP lane-name contract: representative device plus
// the plane lane index, e.g. "n0/gpu2 tp1".
var laneNameRE = regexp.MustCompile(`^n\d+/gpu\d+ tp\d+$`)

// TestChromeTracePerfettoCompatible validates both golden files
// against the trace-event contract Perfetto's importer relies on:
// metadata is limited to a leading block of "M" process_name records
// with well-formed lane names; every other event is a complete ("X")
// span with non-negative ts/dur, pid is the stage lane, tid a
// per-stage track, and events are time-ordered within each (pid, tid)
// track.
func TestChromeTracePerfettoCompatible(t *testing.T) {
	for _, tc := range []struct {
		path      string
		wantLanes int
	}{
		{goldenPath, 0},
		{tpGoldenPath, 4},
	} {
		checkPerfettoContract(t, tc.path, tc.wantLanes)
	}
}

func checkPerfettoContract(t *testing.T, path string, wantLanes int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (generate with: go test ./internal/trace -run Golden -update)", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			Ts   *float64          `json:"ts"`
			Dur  *float64          `json:"dur"`
			Pid  *int              `json:"pid"`
			Tid  *int              `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("%s: golden trace is not valid JSON: %v", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatalf("%s: golden trace has no events", path)
	}
	type track struct{ pid, tid int }
	lastTs := map[track]float64{}
	lanes := map[int]string{}
	sawSpan := false
	for i, e := range doc.TraceEvents {
		if e.Ph == "M" {
			// Lane-name metadata: only process_name records, only before
			// the span events, one per pid, names matching the TP form.
			if sawSpan {
				t.Fatalf("%s: event %d: metadata after span events", path, i)
			}
			if e.Name != "process_name" || e.Pid == nil {
				t.Fatalf("%s: event %d: malformed metadata %+v", path, i, e)
			}
			name := e.Args["name"]
			if !laneNameRE.MatchString(name) {
				t.Fatalf("%s: event %d: lane name %q does not match %v", path, i, name, laneNameRE)
			}
			if prev, dup := lanes[*e.Pid]; dup {
				t.Fatalf("%s: event %d: pid %d named twice (%q, %q)", path, i, *e.Pid, prev, name)
			}
			lanes[*e.Pid] = name
			continue
		}
		sawSpan = true
		if e.Ph != "X" {
			t.Fatalf("%s: event %d: phase %q, want complete spans", path, i, e.Ph)
		}
		if e.Name == "" || e.Cat == "" {
			t.Fatalf("%s: event %d: missing name/cat", path, i)
		}
		if e.Ts == nil || e.Dur == nil || e.Pid == nil || e.Tid == nil {
			t.Fatalf("%s: event %d (%s): missing ts/dur/pid/tid", path, i, e.Name)
		}
		if *e.Ts < 0 || *e.Dur < 0 {
			t.Fatalf("%s: event %d (%s): negative ts/dur %g/%g", path, i, e.Name, *e.Ts, *e.Dur)
		}
		if *e.Pid < 0 || *e.Pid >= 4 {
			t.Fatalf("%s: event %d (%s): pid %d outside the 4-stage run", path, i, e.Name, *e.Pid)
		}
		if e.Args["microbatch"] == "" {
			t.Fatalf("%s: event %d (%s): missing microbatch arg", path, i, e.Name)
		}
		// Perfetto renders each (pid, tid) as one track; our writer
		// emits tracks in nondecreasing ts order so spans nest cleanly.
		k := track{*e.Pid, *e.Tid}
		if prev, ok := lastTs[k]; ok && *e.Ts < prev {
			t.Fatalf("%s: event %d (%s): ts %g goes backwards on track %+v (prev %g)",
				path, i, e.Name, *e.Ts, k, prev)
		}
		lastTs[k] = *e.Ts
	}
	if len(lanes) != wantLanes {
		t.Fatalf("%s: %d named lanes, want %d", path, len(lanes), wantLanes)
	}
}
