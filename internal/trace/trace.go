// Package trace renders a simulated training run as an execution
// timeline: the classic pipeline diagram of the paper's Fig. 1 as
// ASCII art, and Chrome's trace-event JSON (load in
// chrome://tracing or Perfetto) for interactive inspection of how
// compute, transfers, swaps and recomputation interleave.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"mpress/internal/exec"
	"mpress/internal/graph"
	"mpress/internal/pipeline"
	"mpress/internal/units"
)

// Event is one rendered timeline span.
type Event struct {
	// Name is the operator name, Kind its operator kind.
	Name string
	Kind graph.OpKind
	// Stage is the pipeline stage (lane) the event belongs to.
	Stage int
	// Microbatch is the microbatch index (-1 for per-iteration work).
	Microbatch int
	Start      units.Duration
	End        units.Duration
}

// Duration returns the event's length.
func (e Event) Duration() units.Duration { return e.End - e.Start }

// Timeline is the ordered set of events of one run.
type Timeline struct {
	Events []Event
	// Span is the run's total duration.
	Span units.Duration
	// Stages is the stage count (number of lanes).
	Stages int
	// LaneNames, when set, names stage lanes in exported traces (one
	// entry per stage; Perfetto renders it as the process name). Used
	// by tensor-parallel runs to spell out which physical device group
	// each simulated lane stands for, e.g. "n0/gpu2 tp1". Empty lanes
	// and a nil slice emit nothing, keeping legacy traces byte-
	// identical.
	LaneNames []string
}

// Collect extracts the timeline from an executed run. Zero-length
// bookkeeping events (drops) are kept: they mark eviction points.
func Collect(b *pipeline.Built, res *exec.Result) *Timeline {
	t := &Timeline{Stages: b.NumStages(), Span: res.Duration}
	for i, op := range b.Graph.Ops() {
		sp := res.Spans[i]
		if sp.End == 0 && sp.Start == 0 && op.Kind != graph.Drop {
			// Never ran (e.g. the run died of OOM first) — keep the
			// timeline to what actually happened.
			if i != 0 {
				continue
			}
		}
		t.Events = append(t.Events, Event{
			Name:       op.Name,
			Kind:       op.Kind,
			Stage:      op.Stage,
			Microbatch: op.Microbatch,
			Start:      units.Duration(sp.Start),
			End:        units.Duration(sp.End),
		})
	}
	for _, rec := range res.Checkpoints {
		t.Events = append(t.Events, Event{
			Name:       "checkpoint",
			Kind:       graph.Checkpoint,
			Stage:      -1, // run-wide lane: the snapshot drains every stage
			Microbatch: rec.Minibatch,
			Start:      units.Duration(rec.Start),
			End:        units.Duration(rec.End),
		})
	}
	if f := res.Failure; f != nil {
		at := units.Duration(f.At)
		t.Events = append(t.Events, Event{
			Name: "failure", Kind: graph.Failure, Stage: -1, Microbatch: -1,
			Start: at, End: at,
		})
	}
	sort.SliceStable(t.Events, func(a, b int) bool {
		if t.Events[a].Stage != t.Events[b].Stage {
			return t.Events[a].Stage < t.Events[b].Stage
		}
		return t.Events[a].Start < t.Events[b].Start
	})
	return t
}

// Append merges other's events into t shifted by offset, extending the
// span and lane count as needed — how a resilient run's per-segment
// timelines become one wall-clock trace.
func (t *Timeline) Append(other *Timeline, offset units.Duration) {
	for _, e := range other.Events {
		e.Start += offset
		e.End += offset
		t.Events = append(t.Events, e)
	}
	if end := offset + other.Span; end > t.Span {
		t.Span = end
	}
	if other.Stages > t.Stages {
		t.Stages = other.Stages
	}
}

// Mark adds one synthetic run-wide span (failure, recovery) and grows
// the timeline to cover it.
func (t *Timeline) Mark(kind graph.OpKind, name string, start, end units.Duration) {
	t.Events = append(t.Events, Event{
		Name: name, Kind: kind, Stage: -1, Microbatch: -1, Start: start, End: end,
	})
	if end > t.Span {
		t.Span = end
	}
}

// chromeEvent is the trace-event JSON schema (phase "X" = complete).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// lane buckets separate op classes within a stage's row group so
// overlapping compute and swap traffic render on distinct tracks.
func lane(k graph.OpKind) (tid int, track string) {
	switch k {
	case graph.Forward, graph.Backward, graph.OptimizerStep, graph.Recompute:
		return 0, "compute"
	case graph.Transfer:
		return 1, "boundary"
	case graph.SwapOut, graph.SwapIn, graph.Drop:
		return 2, "compaction"
	case graph.Checkpoint, graph.Failure, graph.Recovery:
		return 4, "resilience"
	default:
		return 3, "other"
	}
}

// WriteChrome writes the timeline as Chrome trace-event JSON.
func (t *Timeline) WriteChrome(w io.Writer) error {
	var evs []chromeEvent
	for s, name := range t.LaneNames {
		if name == "" {
			continue
		}
		// Phase-M metadata names the pid's row group (one per stage).
		evs = append(evs, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  s,
			Args: map[string]string{"name": name},
		})
	}
	for _, e := range t.Events {
		tid, track := lane(e.Kind)
		evs = append(evs, chromeEvent{
			Name: e.Name,
			Cat:  e.Kind.String(),
			Ph:   "X",
			Ts:   float64(e.Start) / 1e3,
			Dur:  float64(e.Duration()) / 1e3,
			Pid:  e.Stage,
			Tid:  tid,
			Args: map[string]string{
				"track":      track,
				"microbatch": fmt.Sprintf("%d", e.Microbatch),
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]interface{}{"traceEvents": evs})
}

// gantt configuration.
const ganttWidth = 100

// symbolFor picks the diagram glyph: digits for forward microbatches
// (like the paper's Fig. 1 black boxes), letters for backward, and
// punctuation for the memory machinery.
func symbolFor(e Event) byte {
	switch e.Kind {
	case graph.Forward:
		return byte('0' + e.Microbatch%10)
	case graph.Backward:
		return byte('a' + e.Microbatch%26)
	case graph.OptimizerStep:
		return 'U'
	case graph.Recompute:
		return 'r'
	case graph.SwapOut, graph.SwapIn:
		return '~'
	case graph.Transfer:
		return '-'
	default:
		return '.'
	}
}

// WriteGantt renders the per-stage compute timeline as ASCII art —
// the paper's Fig. 1 diagram regenerated from an actual run. Only
// compute-stream events are drawn (transfers and swaps overlap them).
func (t *Timeline) WriteGantt(w io.Writer) {
	if t.Span <= 0 {
		fmt.Fprintln(w, "(empty timeline)")
		return
	}
	scale := float64(ganttWidth) / float64(t.Span)
	for s := 0; s < t.Stages; s++ {
		row := []byte(strings.Repeat(" ", ganttWidth))
		for _, e := range t.Events {
			if e.Stage != s || !e.Kind.Compute() {
				continue
			}
			from := int(float64(e.Start) * scale)
			to := int(float64(e.End) * scale)
			if to >= ganttWidth {
				to = ganttWidth - 1
			}
			sym := symbolFor(e)
			for x := from; x <= to; x++ {
				row[x] = sym
			}
		}
		fmt.Fprintf(w, "stage %d |%s|\n", s, string(row))
	}
	fmt.Fprintf(w, "         0%*s\n", ganttWidth, t.Span.String())
	fmt.Fprintln(w, "digits: forward microbatch   letters: backward   r: recompute   U: optimizer")
}

// Stats summarizes the timeline by op kind: total busy time and count.
type Stats struct {
	Kind  graph.OpKind
	Count int
	Busy  units.Duration
}

// Summarize aggregates per-kind activity, ordered by kind.
func (t *Timeline) Summarize() []Stats {
	agg := map[graph.OpKind]*Stats{}
	for _, e := range t.Events {
		s, ok := agg[e.Kind]
		if !ok {
			s = &Stats{Kind: e.Kind}
			agg[e.Kind] = s
		}
		s.Count++
		s.Busy += e.Duration()
	}
	var kinds []graph.OpKind
	for k := range agg {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	out := make([]Stats, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, *agg[k])
	}
	return out
}
