package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mpress/internal/exec"
	"mpress/internal/graph"
	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/tensor"
)

func runTiny(t *testing.T) (*pipeline.Built, *exec.Result) {
	t.Helper()
	cfg := model.Config{
		Name: "Tiny", Arch: model.GPT,
		Layers: 8, Hidden: 512, Heads: 8, SeqLen: 128, Vocab: 4096,
		DType: tensor.FP16,
	}
	prec := model.MixedAdam()
	part, err := pipeline.PartitionModel(cfg, 4, pipeline.ComputeBalanced, pipeline.DAPPLE, prec, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipeline.Build(pipeline.BuildConfig{
		Model: cfg, Prec: prec, Part: part, Kind: pipeline.DAPPLE,
		MicrobatchSize: 2, Microbatches: 4, Minibatches: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(exec.Options{Topo: hw.DGX1(), Built: b, Mapping: exec.IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM != nil {
		t.Fatal(res.OOM)
	}
	return b, res
}

func TestCollect(t *testing.T) {
	b, res := runTiny(t)
	tl := Collect(b, res)
	if tl.Stages != 4 {
		t.Errorf("stages = %d", tl.Stages)
	}
	if tl.Span != res.Duration {
		t.Errorf("span = %v, want %v", tl.Span, res.Duration)
	}
	if len(tl.Events) == 0 {
		t.Fatal("no events")
	}
	// Events are sorted by (stage, start).
	for i := 1; i < len(tl.Events); i++ {
		a, c := tl.Events[i-1], tl.Events[i]
		if a.Stage > c.Stage || (a.Stage == c.Stage && a.Start > c.Start) {
			t.Fatalf("events unsorted at %d: %+v then %+v", i, a, c)
		}
	}
	// Compute events on a stage never overlap (serial stream).
	for s := 0; s < 4; s++ {
		var last Event
		for _, e := range tl.Events {
			if e.Stage != s || !e.Kind.Compute() {
				continue
			}
			if last.End > e.Start {
				t.Fatalf("stage %d compute overlap: %+v then %+v", s, last, e)
			}
			last = e
		}
	}
}

func TestWriteChrome(t *testing.T) {
	b, res := runTiny(t)
	tl := Collect(b, res)
	var buf bytes.Buffer
	if err := tl.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(tl.Events) {
		t.Errorf("events = %d, want %d", len(doc.TraceEvents), len(tl.Events))
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("phase %q", e.Ph)
		}
		if e.Pid < 0 || e.Pid >= 4 {
			t.Fatalf("pid %d out of stage range", e.Pid)
		}
		if e.Dur < 0 {
			t.Fatalf("negative duration on %s", e.Name)
		}
	}
}

func TestWriteGantt(t *testing.T) {
	b, res := runTiny(t)
	tl := Collect(b, res)
	var buf bytes.Buffer
	tl.WriteGantt(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4+2 { // 4 stage rows + axis + legend
		t.Fatalf("gantt lines = %d:\n%s", len(lines), out)
	}
	for s := 0; s < 4; s++ {
		if !strings.HasPrefix(lines[s], "stage ") {
			t.Fatalf("row %d = %q", s, lines[s])
		}
		// Every stage computed something: digits (forward) must appear.
		if !strings.ContainsAny(lines[s], "0123456789") {
			t.Errorf("stage %d row has no forward work: %q", s, lines[s])
		}
	}
	// The last stage alternates F and B: letters must appear too.
	if !strings.ContainsAny(lines[3], "abcd") {
		t.Errorf("last stage shows no backward work: %q", lines[3])
	}
}

func TestWriteGanttEmpty(t *testing.T) {
	var buf bytes.Buffer
	(&Timeline{}).WriteGantt(&buf)
	if !strings.Contains(buf.String(), "empty") {
		t.Errorf("empty timeline rendering: %q", buf.String())
	}
}

func TestSummarize(t *testing.T) {
	b, res := runTiny(t)
	tl := Collect(b, res)
	stats := tl.Summarize()
	byKind := map[graph.OpKind]Stats{}
	for _, s := range stats {
		byKind[s.Kind] = s
	}
	// 4 stages x 4 microbatches forwards and backwards.
	if byKind[graph.Forward].Count != 16 {
		t.Errorf("forward count = %d, want 16", byKind[graph.Forward].Count)
	}
	if byKind[graph.Backward].Count != 16 {
		t.Errorf("backward count = %d, want 16", byKind[graph.Backward].Count)
	}
	if byKind[graph.Backward].Busy <= byKind[graph.Forward].Busy {
		t.Error("backward busy time must exceed forward (2x FLOPs)")
	}
	// Kinds are ordered.
	for i := 1; i < len(stats); i++ {
		if stats[i-1].Kind >= stats[i].Kind {
			t.Fatal("summary unsorted")
		}
	}
}

func TestEventDuration(t *testing.T) {
	e := Event{Start: 10, End: 35}
	if e.Duration() != 25 {
		t.Errorf("duration = %v", e.Duration())
	}
}
