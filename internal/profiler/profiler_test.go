package profiler

import (
	"testing"

	"mpress/internal/graph"
	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/tensor"
)

func buildTiny(t *testing.T) *pipeline.Built {
	t.Helper()
	cfg := model.Config{
		Name: "Tiny", Arch: model.GPT,
		Layers: 8, Hidden: 512, Heads: 8, SeqLen: 128, Vocab: 4096,
		DType: tensor.FP16,
	}
	prec := model.MixedAdam()
	part, err := pipeline.PartitionModel(cfg, 4, pipeline.ComputeBalanced, pipeline.DAPPLE, prec, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipeline.Build(pipeline.BuildConfig{
		Model: cfg, Prec: prec, Part: part, Kind: pipeline.DAPPLE,
		MicrobatchSize: 2, Microbatches: 4, Minibatches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCollectBasics(t *testing.T) {
	b := buildTiny(t)
	p, err := Collect(hw.DGX1(), b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration <= 0 {
		t.Error("no duration")
	}
	if len(p.Stats) != b.Graph.Tensors.Len() {
		t.Errorf("stats for %d tensors, want %d", len(p.Stats), b.Graph.Tensors.Len())
	}
	if len(p.StagePeak) != 4 {
		t.Fatalf("stage peaks = %v", p.StagePeak)
	}
	for s, pk := range p.StagePeak {
		if pk <= pipeline.RuntimeReserve {
			t.Errorf("stage %d peak %v below reserve", s, pk)
		}
	}
	// Fig. 2 shape again, via the profiler path.
	if p.StagePeak[0] <= p.StagePeak[3] {
		t.Error("stage 0 must out-demand stage 3")
	}
	for s := 0; s < 4; s++ {
		if p.SlotDuration[s] <= 0 {
			t.Errorf("stage %d slot duration missing", s)
		}
	}
}

func TestActivationWindows(t *testing.T) {
	b := buildTiny(t)
	p, err := Collect(hw.DGX1(), b, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A stage-0 block activation of microbatch 0 idles between F and
	// B; under 1F1B on stage 0 the gap spans most of the minibatch.
	k := pipeline.SlotKey{Stage: 0, Microbatch: 0}
	var checked int
	for _, id := range b.Acts[k] {
		if _, ok := b.RecomputeFLOPs[id]; !ok {
			continue
		}
		st := p.Stats[id]
		w := st.LongestWindow()
		if w.From != b.FwOps[k] || w.To != b.BwOps[k] {
			t.Errorf("act %d window %v, want F->B (%d->%d)", id, w, b.FwOps[k], b.BwOps[k])
		}
		if w.Gap <= 0 {
			t.Errorf("act %d has zero live interval", id)
		}
		// Microbatch 0 on stage 0 waits for the whole pipeline round
		// trip: its gap must dominate a single compute slot.
		if w.Gap < 4*p.SlotDuration[0] {
			t.Errorf("act %d gap %v suspiciously small", id, w.Gap)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no block activations checked")
	}
}

func TestLastMicrobatchHasShortWindow(t *testing.T) {
	b := buildTiny(t)
	p, err := Collect(hw.DGX1(), b, nil)
	if err != nil {
		t.Fatal(err)
	}
	// On the LAST stage the backward follows the forward immediately:
	// live intervals there are the shortest (these are the tensors
	// only D2D swap could help — Sec. III-A).
	last := pipeline.SlotKey{Stage: 3, Microbatch: 0}
	first := pipeline.SlotKey{Stage: 0, Microbatch: 0}
	gapOf := func(k pipeline.SlotKey) int64 {
		for _, id := range b.Acts[k] {
			if _, ok := b.RecomputeFLOPs[id]; ok {
				return int64(p.Stats[id].LongestWindow().Gap)
			}
		}
		t.Fatal("no block act")
		return 0
	}
	gLast := gapOf(last)
	gFirst := gapOf(first)
	if gLast >= gFirst {
		t.Errorf("last-stage gap %d must be shorter than stage-0 gap %d", gLast, gFirst)
	}
}

func TestPersistentWindows(t *testing.T) {
	b := buildTiny(t)
	p, err := Collect(hw.DGX1(), b, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Optimizer-state tensors are used once per minibatch: their
	// stats must show a leading window From == -1 (idle from start)
	// and a wide OPT->OPT window.
	var found bool
	for _, id := range b.Persistent[0] {
		tn := b.Graph.Tensors.Get(id)
		if tn.Class != tensor.OptimizerState {
			continue
		}
		st := p.Stats[id]
		if len(st.Windows) != 2 { // two minibatches = two OPT uses
			t.Fatalf("opt tensor %s has %d windows, want 2", tn.Name, len(st.Windows))
		}
		if st.Windows[0].From != -1 {
			t.Errorf("first window must start at -1, got %d", st.Windows[0].From)
		}
		if st.Windows[1].Gap <= 0 {
			t.Error("OPT->OPT window must be positive")
		}
		found = true
		break
	}
	if !found {
		t.Fatal("no optimizer tensor found")
	}
}

func TestWindowBetween(t *testing.T) {
	b := buildTiny(t)
	p, err := Collect(hw.DGX1(), b, nil)
	if err != nil {
		t.Fatal(err)
	}
	k := pipeline.SlotKey{Stage: 0, Microbatch: 1}
	var act tensor.ID = -1
	for _, id := range b.Acts[k] {
		if _, ok := b.RecomputeFLOPs[id]; ok {
			act = id
			break
		}
	}
	w, ok := p.WindowBetween(act, b.BwOps[k])
	if !ok || w.To != b.BwOps[k] {
		t.Errorf("WindowBetween failed: %v %v", w, ok)
	}
	if _, ok := p.WindowBetween(act, graph.OpID(0)); ok {
		t.Error("bogus window reported")
	}
}

func TestCollectRejectsBadMapping(t *testing.T) {
	b := buildTiny(t)
	if _, err := Collect(hw.DGX1(), b, []hw.DeviceID{0}); err == nil {
		t.Error("short mapping accepted")
	}
}

func TestLongestWindowEmpty(t *testing.T) {
	st := TensorStat{}
	if w := st.LongestWindow(); w.From != -1 || w.To != -1 {
		t.Errorf("empty stat window = %+v", w)
	}
}
