package profiler

import (
	"testing"

	"mpress/internal/hw"
	"mpress/internal/pipeline"
	"mpress/internal/units"
)

// TestWindowsAreOrderedAndNonOverlapping: a tensor's idle windows
// follow execution order and never overlap.
func TestWindowsAreOrderedAndNonOverlapping(t *testing.T) {
	b := buildTiny(t)
	p, err := Collect(hw.DGX1(), b, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range p.Stats {
		for i := 1; i < len(st.Windows); i++ {
			if st.Windows[i].Gap < 0 {
				t.Fatalf("negative gap in %v", st.Windows)
			}
		}
	}
}

// TestProfileDurationMatchesRun: the profile's duration is the full
// unbounded run.
func TestProfileDurationMatchesRun(t *testing.T) {
	b := buildTiny(t)
	p, err := Collect(hw.DGX1(), b, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every op span must fit inside the profiled duration.
	for i, sp := range p.Spans {
		if units.Duration(sp.End) > p.Duration {
			t.Fatalf("op %d ends at %v after duration %v", i, sp.End, p.Duration)
		}
	}
}

// TestStagePeaksFollowMapping: profiling under a permuted mapping
// reports the same per-stage peaks (peaks belong to stages, not GPUs).
func TestStagePeaksFollowMapping(t *testing.T) {
	b1 := buildTiny(t)
	p1, err := Collect(hw.DGX1(), b1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b2 := buildTiny(t)
	p2, err := Collect(hw.DGX1(), b2, []hw.DeviceID{3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for s := range p1.StagePeak {
		a, c := p1.StagePeak[s], p2.StagePeak[s]
		// Timing differs slightly across mappings (different links),
		// so allow small variation but not stage/GPU confusion.
		lo, hi := float64(a)*0.9, float64(a)*1.1
		if float64(c) < lo || float64(c) > hi {
			t.Errorf("stage %d peak moved: %v vs %v", s, a, c)
		}
	}
	_ = pipeline.RuntimeReserve
}
