// Package profiler implements the static part's first step (paper
// Fig. 5, steps 1-2): run one training iteration on the emulator with
// unbounded memory and collect, per tensor, its size, the latencies of
// the operators around it, and its live intervals — the inputs of the
// planner's cost model (Table III).
package profiler

import (
	"fmt"
	"sort"

	"mpress/internal/exec"
	"mpress/internal/graph"
	"mpress/internal/hw"
	"mpress/internal/pipeline"
	"mpress/internal/sim"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// Window is one eviction opportunity for a tensor: the idle gap
// between the operator that generates it (or last used it) and its
// next use. The paper calls the gap the tensor's live interval
// (Sec. III-A footnote 1).
type Window struct {
	// From is the op after which the tensor becomes idle; To is the
	// op that needs it next.
	From graph.OpID
	To   graph.OpID
	// Gap is the idle duration between From's end and To's start.
	Gap units.Duration
}

// TensorStat aggregates one tensor's profile.
type TensorStat struct {
	Tensor tensor.ID
	// Windows lists the tensor's idle gaps in execution order.
	Windows []Window
}

// LongestWindow returns the widest idle gap, or a zero Window with
// From/To == -1 if the tensor has none.
func (ts TensorStat) LongestWindow() Window {
	best := Window{From: -1, To: -1}
	for _, w := range ts.Windows {
		if w.From >= 0 && (best.From < 0 || w.Gap > best.Gap) {
			best = w
		}
	}
	return best
}

// Profile is the collected result of a profiling run.
type Profile struct {
	// Stats is indexed by tensor ID.
	Stats []TensorStat
	// StagePeak is the per-stage peak memory demand measured with
	// unbounded capacity (what the job *wants*, not what fits).
	StagePeak []units.Bytes
	// Duration is the unconstrained iteration time — the baseline the
	// planner's emulator feedback compares against.
	Duration units.Duration
	// Spans are the per-op execution windows of the profiling run.
	Spans []exec.Span
	// SlotDuration is the typical compute-slot length per stage (the
	// prefetch budget available to a gated swap-in).
	SlotDuration []units.Duration
}

// Collect profiles one training iteration of built on topo under the
// given stage mapping (pass nil for the identity mapping).
func Collect(topo *hw.Topology, built *pipeline.Built, mapping []hw.DeviceID) (*Profile, error) {
	if mapping == nil {
		mapping = exec.IdentityMapping(built.NumStages())
	}
	res, err := exec.Run(exec.Options{
		Topo:      topo,
		Built:     built,
		Mapping:   mapping,
		Unbounded: true,
	})
	if err != nil {
		return nil, fmt.Errorf("profiler: %w", err)
	}
	if res.OOM != nil {
		return nil, fmt.Errorf("profiler: unbounded run reported OOM: %v", res.OOM)
	}

	g := built.Graph
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	live := g.Analyze(order)

	p := &Profile{
		Stats:    make([]TensorStat, g.Tensors.Len()),
		Duration: res.Duration,
		Spans:    res.Spans,
	}
	for t := 0; t < g.Tensors.Len(); t++ {
		id := tensor.ID(t)
		st := TensorStat{Tensor: id}
		// The idle points: after the producer, then after each use.
		type point struct {
			op  graph.OpID
			end sim.Time
		}
		var prev point
		if live.Def[id] >= 0 {
			op := order[live.Def[id]]
			prev = point{op: op, end: res.Spans[op].End}
		} else {
			prev = point{op: -1} // persistent: idle from t=0
		}
		for _, u := range live.Uses[id] {
			start := res.Spans[u.Op].Start
			gap := units.Duration(start) - units.Duration(prev.end)
			if gap < 0 {
				gap = 0
			}
			st.Windows = append(st.Windows, Window{From: prev.op, To: u.Op, Gap: gap})
			prev = point{op: u.Op, end: res.Spans[u.Op].End}
		}
		p.Stats[id] = st
	}

	// Per-stage peaks, indexed by stage (not GPU).
	p.StagePeak = make([]units.Bytes, built.NumStages())
	for s := range p.StagePeak {
		p.StagePeak[s] = res.GPUs[mapping[s]].Peak
	}

	// Median forward-slot duration per stage approximates the
	// prefetch budget of a gated restore.
	p.SlotDuration = make([]units.Duration, built.NumStages())
	perStage := make([][]units.Duration, built.NumStages())
	for i, op := range g.Ops() {
		if op.Kind == graph.Forward {
			sp := res.Spans[i]
			perStage[op.Stage] = append(perStage[op.Stage], units.Duration(sp.End-sp.Start))
		}
	}
	for s, ds := range perStage {
		if len(ds) == 0 {
			continue
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		p.SlotDuration[s] = ds[len(ds)/2]
	}
	return p, nil
}

// WindowBetween returns the profiled idle window of tensor t that ends
// at op `to`, if any.
func (p *Profile) WindowBetween(t tensor.ID, to graph.OpID) (Window, bool) {
	for _, w := range p.Stats[t].Windows {
		if w.To == to {
			return w, true
		}
	}
	return Window{From: -1, To: -1}, false
}
