package hw

import (
	"fmt"

	"mpress/internal/units"
)

// Topology describes one multi-GPU server.
//
// Two interconnect styles are supported:
//
//   - Direct (Switched == false): NVLink lanes are dedicated
//     point-to-point wires; NVLinkLanes[i][j] lanes connect GPU i and
//     GPU j (in each direction). This is DGX-1's hybrid cube mesh.
//   - Switched (Switched == true): every GPU owns LanesPerGPU lanes
//     into a non-blocking crossbar, so any pair can communicate and a
//     single GPU can stripe across all of its lanes regardless of the
//     destination. This is the DGX-2 / NVSwitch generation.
type Topology struct {
	Name string
	GPU  GPUSpec
	// NumGPUs is the GPU count (8 for both paper testbeds).
	NumGPUs int

	// Switched selects the NVSwitch model described above.
	Switched bool
	// NVLinkLanes[i][j] is the number of direct lanes between GPUs i
	// and j (symmetric, zero diagonal). Only meaningful when
	// !Switched.
	NVLinkLanes [][]int
	// LanesPerGPU is each GPU's total lane count (egress == ingress).
	LanesPerGPU int
	// NVLinkLaneBW is the effective unidirectional bandwidth of one
	// lane, and NVLinkLatency the per-transfer setup latency.
	NVLinkLaneBW  units.Bandwidth
	NVLinkLatency units.Duration

	// PCIeBW is the effective unidirectional host<->GPU bandwidth per
	// GPU, with PCIeLatency its setup latency.
	PCIeBW      units.Bandwidth
	PCIeLatency units.Duration

	// HostMemory is the CPU DRAM capacity available as swap space.
	HostMemory units.Bytes
	// NVMeBW is the aggregate SSD bandwidth (zero if no SSDs); it is
	// what ZeRO-Infinity's swap rides on.
	NVMeBW      units.Bandwidth
	NVMeLatency units.Duration
	NVMeSize    units.Bytes
}

// Validate checks internal consistency of the topology description.
func (t *Topology) Validate() error {
	if t.NumGPUs <= 0 {
		return fmt.Errorf("hw: topology %q has %d GPUs", t.Name, t.NumGPUs)
	}
	if t.GPU.Memory <= 0 {
		return fmt.Errorf("hw: topology %q GPU has no memory", t.Name)
	}
	if t.NVLinkLaneBW <= 0 || t.PCIeBW <= 0 {
		return fmt.Errorf("hw: topology %q has non-positive link bandwidth", t.Name)
	}
	if t.Switched {
		if t.LanesPerGPU <= 0 {
			return fmt.Errorf("hw: switched topology %q needs LanesPerGPU > 0", t.Name)
		}
		return nil
	}
	if len(t.NVLinkLanes) != t.NumGPUs {
		return fmt.Errorf("hw: topology %q lane matrix is %d rows, want %d", t.Name, len(t.NVLinkLanes), t.NumGPUs)
	}
	for i := range t.NVLinkLanes {
		if len(t.NVLinkLanes[i]) != t.NumGPUs {
			return fmt.Errorf("hw: topology %q lane row %d has %d cols, want %d", t.Name, i, len(t.NVLinkLanes[i]), t.NumGPUs)
		}
		if t.NVLinkLanes[i][i] != 0 {
			return fmt.Errorf("hw: topology %q gpu %d has self lanes", t.Name, i)
		}
		total := 0
		for j := range t.NVLinkLanes[i] {
			if t.NVLinkLanes[i][j] != t.NVLinkLanes[j][i] {
				return fmt.Errorf("hw: topology %q lane matrix asymmetric at (%d,%d)", t.Name, i, j)
			}
			if t.NVLinkLanes[i][j] < 0 {
				return fmt.Errorf("hw: topology %q negative lanes at (%d,%d)", t.Name, i, j)
			}
			total += t.NVLinkLanes[i][j]
		}
		if t.LanesPerGPU > 0 && total > t.LanesPerGPU {
			return fmt.Errorf("hw: topology %q gpu %d uses %d lanes, budget %d", t.Name, i, total, t.LanesPerGPU)
		}
	}
	return nil
}

// LanesBetween returns how many NVLink lanes GPU src can use toward GPU
// dst at once: the direct lane count for direct topologies, or the full
// per-GPU budget for switched ones. Zero means the pair is not NVLink
// reachable.
func (t *Topology) LanesBetween(src, dst DeviceID) int {
	if !src.IsGPU() || !dst.IsGPU() || src == dst ||
		int(src) >= t.NumGPUs || int(dst) >= t.NumGPUs {
		return 0
	}
	if t.Switched {
		return t.LanesPerGPU
	}
	return t.NVLinkLanes[src][dst]
}

// NVLinkNeighbors returns the GPUs directly reachable from gpu over
// NVLink, in ascending order.
func (t *Topology) NVLinkNeighbors(gpu DeviceID) []DeviceID {
	var out []DeviceID
	for j := 0; j < t.NumGPUs; j++ {
		if t.LanesBetween(gpu, DeviceID(j)) > 0 {
			out = append(out, DeviceID(j))
		}
	}
	return out
}

// PairBandwidth returns the peak unidirectional NVLink bandwidth from
// src to dst (lanes × per-lane bandwidth).
func (t *Topology) PairBandwidth(src, dst DeviceID) units.Bandwidth {
	return units.Bandwidth(float64(t.NVLinkLaneBW) * float64(t.LanesBetween(src, dst)))
}

// TotalLanes returns GPU gpu's total egress lane count.
func (t *Topology) TotalLanes(gpu DeviceID) int {
	if t.Switched {
		return t.LanesPerGPU
	}
	total := 0
	for j := 0; j < t.NumGPUs; j++ {
		total += t.LanesBetween(gpu, DeviceID(j))
	}
	return total
}

// AggregateNVLinkBW returns GPU gpu's peak aggregate egress bandwidth
// when striping across all of its lanes.
func (t *Topology) AggregateNVLinkBW(gpu DeviceID) units.Bandwidth {
	return units.Bandwidth(float64(t.NVLinkLaneBW) * float64(t.TotalLanes(gpu)))
}

// GPUMemory returns the per-GPU memory capacity.
func (t *Topology) GPUMemory() units.Bytes { return t.GPU.Memory }

// TotalGPUMemory returns the server's aggregate GPU memory.
func (t *Topology) TotalGPUMemory() units.Bytes {
	return t.GPU.Memory * units.Bytes(t.NumGPUs)
}

// LaneMatrixString renders the pairwise lane counts like `nvidia-smi
// topo -m` ("NV1"/"NV2"/"--"), useful for cmd/mpress-topo.
func (t *Topology) LaneMatrixString() string {
	s := "     "
	for j := 0; j < t.NumGPUs; j++ {
		s += fmt.Sprintf("%5s", fmt.Sprintf("g%d", j))
	}
	s += "\n"
	for i := 0; i < t.NumGPUs; i++ {
		s += fmt.Sprintf("%-5s", fmt.Sprintf("g%d", i))
		for j := 0; j < t.NumGPUs; j++ {
			switch {
			case i == j:
				s += fmt.Sprintf("%5s", "X")
			case t.LanesBetween(DeviceID(i), DeviceID(j)) == 0:
				s += fmt.Sprintf("%5s", "--")
			default:
				s += fmt.Sprintf("%5s", fmt.Sprintf("NV%d", t.LanesBetween(DeviceID(i), DeviceID(j))))
			}
		}
		s += "\n"
	}
	return s
}
