package hw

import (
	"strings"
	"testing"
)

func TestLookupTopology(t *testing.T) {
	// Every advertised name must resolve, and aliases must resolve to
	// the same server as their canonical name.
	wantByName := map[string]string{
		"dgx1":          "DGX-1V",
		"dgx-1v":        "DGX-1V",
		"v100":          "DGX-1V",
		"dgx1-nvme":     "DGX-1V-nvme",
		"dgx2":          "DGX-2A100",
		"dgx-2a100":     "DGX-2A100",
		"a100":          "DGX-2A100",
		"dgx2-fastnvme": "DGX-2A100-fastnvme",
		"grace":         "GraceHopper",
		"gracehopper":   "GraceHopper",
		"gh200":         "GraceHopper",
	}
	for _, name := range TopologyNames() {
		topo, err := LookupTopology(name)
		if err != nil {
			t.Fatalf("LookupTopology(%q): %v", name, err)
		}
		if want := wantByName[name]; topo.Name != want {
			t.Errorf("LookupTopology(%q).Name = %q, want %q", name, topo.Name, want)
		}
		if err := topo.Validate(); err != nil {
			t.Errorf("LookupTopology(%q): invalid topology: %v", name, err)
		}
	}
	if len(TopologyNames()) != len(wantByName) {
		t.Errorf("TopologyNames() has %d entries, test covers %d", len(TopologyNames()), len(wantByName))
	}
}

func TestLookupTopologyCaseInsensitive(t *testing.T) {
	topo, err := LookupTopology("DGX1")
	if err != nil {
		t.Fatalf("LookupTopology(DGX1): %v", err)
	}
	if topo.Name != "DGX-1V" {
		t.Errorf("LookupTopology(DGX1).Name = %q", topo.Name)
	}
}

// TestLookupTopologyUnknownListsNames pins the contract the CLIs rely
// on: an unknown name enumerates every valid one, like LookupFabric.
func TestLookupTopologyUnknownListsNames(t *testing.T) {
	_, err := LookupTopology("dgx99")
	if err == nil {
		t.Fatal("LookupTopology(dgx99) succeeded")
	}
	for _, name := range TopologyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid name %q", err, name)
		}
	}
}
