package hw

import "mpress/internal/units"

// dgx1LaneMatrix is the NVLink 2.0 hybrid cube mesh of the DGX-1V
// (paper Fig. 3; matches `nvidia-smi topo -m` on p3dn.24xlarge).
// Entry [i][j] is the number of lanes between GPU i and GPU j; each
// V100 terminates exactly six lanes.
var dgx1LaneMatrix = [][]int{
	//         g0 g1 g2 g3 g4 g5 g6 g7
	/* g0 */ {0, 1, 1, 2, 2, 0, 0, 0},
	/* g1 */ {1, 0, 2, 1, 0, 2, 0, 0},
	/* g2 */ {1, 2, 0, 2, 0, 0, 1, 0},
	/* g3 */ {2, 1, 2, 0, 0, 0, 0, 1},
	/* g4 */ {2, 0, 0, 0, 0, 1, 1, 2},
	/* g5 */ {0, 2, 0, 0, 1, 0, 2, 1},
	/* g6 */ {0, 0, 1, 0, 1, 2, 0, 2},
	/* g7 */ {0, 0, 0, 1, 2, 1, 2, 0},
}

// DGX1 models the paper's first testbed: an AWS EC2 p3dn.24xlarge
// (DGX-1V class) with 8×V100-32GB on an asymmetric NVLink 2.0 cube
// mesh, 768 GB of host memory and no NVMe swap tier.
//
// The effective per-lane bandwidth (24.3 GB/s) and PCIe bandwidth
// (11.7 GB/s) are calibrated to the paper's Fig. 4 measurement, where
// aggregating 2→6 NVLinks yields 45→146 GB/s, i.e. 3.9–12.5× PCIe.
func DGX1() *Topology {
	lanes := make([][]int, len(dgx1LaneMatrix))
	for i := range dgx1LaneMatrix {
		lanes[i] = append([]int(nil), dgx1LaneMatrix[i]...)
	}
	return &Topology{
		Name:          "DGX-1V",
		GPU:           V100(),
		NumGPUs:       8,
		Switched:      false,
		NVLinkLanes:   lanes,
		LanesPerGPU:   6,
		NVLinkLaneBW:  units.GBps(24.3),
		NVLinkLatency: 10 * units.Microsecond,
		PCIeBW:        units.GBps(11.7),
		PCIeLatency:   20 * units.Microsecond,
		HostMemory:    768 * units.GiB,
	}
}

// DGX1WithNVMe is DGX1 plus a healthy NVMe tier. The paper could not
// run ZeRO-Infinity on the EC2 instance (no SSDs, small host memory)
// and used "a high-end GPU server with the identical GPU setup ...
// and additional NVMe SSDs" for the Fig. 8a baselines; this topology
// models that server.
func DGX1WithNVMe() *Topology {
	t := DGX1()
	t.Name = "DGX-1V-nvme"
	t.HostMemory = 948 * units.GiB
	t.NVMeBW = units.GBps(25)
	t.NVMeLatency = 80 * units.Microsecond
	t.NVMeSize = 6 * units.TiB
	return t
}

// DGX2 models the paper's second testbed: a DGX-2-generation server
// with 8×A100-40GB behind a non-blocking NVSwitch (symmetric topology,
// 12 NVLink 3.0 lanes per GPU), 948 GB host memory and 6 TB of NVMe.
//
// The rented server's SSDs were slow (Sec. IV-C observes ZeRO-Infinity
// losing to ZeRO-Offload because of it); DGX2 uses that measured-slow
// NVMe bandwidth. Use DGX2FastNVMe for a healthy-SSD variant.
func DGX2() *Topology {
	return &Topology{
		Name:          "DGX-2A100",
		GPU:           A100(),
		NumGPUs:       8,
		Switched:      true,
		LanesPerGPU:   12,
		NVLinkLaneBW:  units.GBps(24.3),
		NVLinkLatency: 8 * units.Microsecond,
		PCIeBW:        units.GBps(11.7),
		PCIeLatency:   20 * units.Microsecond,
		HostMemory:    948 * units.GiB,
		NVMeBW:        units.GBps(6),
		NVMeLatency:   80 * units.Microsecond,
		NVMeSize:      6 * units.TiB,
	}
}

// DGX2FastNVMe is DGX2 with SSD bandwidth matching a healthy DGX-2
// RAID (≈25 GB/s read), used for sensitivity studies.
func DGX2FastNVMe() *Topology {
	t := DGX2()
	t.Name = "DGX-2A100-fastnvme"
	t.NVMeBW = units.GBps(25)
	return t
}

// GraceHopper models an 8-module Grace-Hopper server for the Sec. V
// projection: each GPU has 96 GB HBM plus a dedicated 512 GB CPU-side
// memory reachable over NVLink-C2C at 64 GB/s (the paper argues this
// is still not enough to hide swap, keeping D2D swap valuable).
func GraceHopper() *Topology {
	return &Topology{
		Name:          "GraceHopper",
		GPU:           H100Grace(),
		NumGPUs:       8,
		Switched:      true,
		LanesPerGPU:   18,
		NVLinkLaneBW:  units.GBps(25),
		NVLinkLatency: 5 * units.Microsecond,
		PCIeBW:        units.GBps(64), // NVLink-C2C stands in for PCIe
		PCIeLatency:   5 * units.Microsecond,
		HostMemory:    8 * 512 * units.GiB,
	}
}
