package hw

import (
	"fmt"

	"mpress/internal/units"
)

// This file holds topology degradation constructors: pure functions
// that derive a new, smaller Topology from a healthy one after a
// hardware fault. internal/chaos decides *when* faults happen; these
// decide what the surviving machine looks like. All constructors
// deep-copy — the input topology is never mutated — so a resilient run
// can keep the healthy topology around for its ideal baseline.

// Clone returns a deep copy of the topology (the lane matrix is the
// only reference-typed field).
func (t *Topology) Clone() *Topology {
	c := *t
	if t.NVLinkLanes != nil {
		c.NVLinkLanes = make([][]int, len(t.NVLinkLanes))
		for i := range t.NVLinkLanes {
			c.NVLinkLanes[i] = append([]int(nil), t.NVLinkLanes[i]...)
		}
	}
	return &c
}

// WithoutGPU returns the topology with GPU g removed: the survivors
// are renumbered densely (gpu k becomes gpu k-1 for k > g) and, for
// direct topologies, the lane matrix loses g's row and column — any
// lanes that terminated at g are simply dead wires. Host memory, NVMe
// and per-GPU link rates are unchanged.
func (t *Topology) WithoutGPU(g DeviceID) (*Topology, error) {
	if !g.IsGPU() || int(g) >= t.NumGPUs {
		return nil, fmt.Errorf("hw: topology %q has no %v to remove", t.Name, g)
	}
	if t.NumGPUs <= 1 {
		return nil, fmt.Errorf("hw: cannot remove the last GPU of %q", t.Name)
	}
	c := t.Clone()
	c.Name = fmt.Sprintf("%s-minus-%v", t.Name, g)
	c.NumGPUs--
	if !t.Switched {
		lanes := make([][]int, 0, c.NumGPUs)
		for i := 0; i < t.NumGPUs; i++ {
			if i == int(g) {
				continue
			}
			row := make([]int, 0, c.NumGPUs)
			for j := 0; j < t.NumGPUs; j++ {
				if j == int(g) {
					continue
				}
				row = append(row, t.NVLinkLanes[i][j])
			}
			lanes = append(lanes, row)
		}
		c.NVLinkLanes = lanes
	}
	return c, c.Validate()
}

// WithoutNVLink returns the topology with the NVLink path between a
// and b downed. On a direct topology the pair's lanes are zeroed (both
// directions); the GPUs stay reachable through other peers or PCIe.
// On a switched topology a single pair cannot fail in isolation — the
// crossbar is the path — so the fault is modeled as losing one switch
// plane: every GPU's lane budget drops by one.
func (t *Topology) WithoutNVLink(a, b DeviceID) (*Topology, error) {
	if t.LanesBetween(a, b) == 0 {
		return nil, fmt.Errorf("hw: topology %q has no NVLink between %v and %v", t.Name, a, b)
	}
	c := t.Clone()
	c.Name = fmt.Sprintf("%s-nolink-%v-%v", t.Name, a, b)
	if t.Switched {
		c.LanesPerGPU--
		if c.LanesPerGPU <= 0 {
			return nil, fmt.Errorf("hw: topology %q has no switch planes left", t.Name)
		}
		return c, c.Validate()
	}
	c.NVLinkLanes[a][b] = 0
	c.NVLinkLanes[b][a] = 0
	return c, c.Validate()
}

// WithHostMemory returns the topology with the host swap capacity
// clamped to mem, modeling host-memory pressure (a co-located process
// claiming DRAM). mem must be positive; growing memory is allowed for
// symmetry but the name still records the change.
func (t *Topology) WithHostMemory(mem units.Bytes) (*Topology, error) {
	if mem <= 0 {
		return nil, fmt.Errorf("hw: topology %q cannot run with %v host memory", t.Name, mem)
	}
	c := t.Clone()
	c.Name = fmt.Sprintf("%s-host-%v", t.Name, mem)
	c.HostMemory = mem
	return c, c.Validate()
}
