package hw

import (
	"fmt"
	"strings"
)

// topologyPresets maps every accepted -topo name (including aliases)
// to its preset constructor, in the order TopologyNames lists them —
// the same registry pattern cluster.FabricNames/LookupFabric use for
// -fabric, so CLI help and "unknown name" errors can never drift from
// the set of servers that actually resolve.
var topologyPresets = []struct {
	name    string
	aliases []string
	build   func() *Topology
}{
	{"dgx1", []string{"dgx-1v", "v100"}, DGX1},
	{"dgx1-nvme", nil, DGX1WithNVMe},
	{"dgx2", []string{"dgx-2a100", "a100"}, DGX2},
	{"dgx2-fastnvme", nil, DGX2FastNVMe},
	{"grace", []string{"gracehopper", "gh200"}, GraceHopper},
}

// TopologyNames lists every name LookupTopology accepts — canonical
// preset names first, then their aliases — for CLI help and error
// messages.
func TopologyNames() []string {
	var names []string
	for _, p := range topologyPresets {
		names = append(names, p.name)
	}
	for _, p := range topologyPresets {
		names = append(names, p.aliases...)
	}
	return names
}

// LookupTopology resolves a CLI topology name, case-insensitively.
// Unknown names fail with the full list of valid ones.
func LookupTopology(name string) (*Topology, error) {
	lower := strings.ToLower(name)
	for _, p := range topologyPresets {
		if lower == p.name {
			return p.build(), nil
		}
		for _, a := range p.aliases {
			if lower == a {
				return p.build(), nil
			}
		}
	}
	return nil, fmt.Errorf("hw: unknown topology %q (valid names: %s)",
		name, strings.Join(TopologyNames(), ", "))
}
