package hw

import (
	"strings"
	"testing"

	"mpress/internal/units"
)

func TestLinkKindStrings(t *testing.T) {
	want := map[LinkKind]string{
		NVLinkLane: "nvlink", PCIeLink: "pcie", NVMeLink: "nvme", C2CLink: "c2c",
		LinkKind(9): "LinkKind(9)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestDGX1WithNVMe(t *testing.T) {
	d := DGX1WithNVMe()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NVMeBW <= 0 || d.NVMeSize == 0 {
		t.Error("NVMe tier missing")
	}
	// Same NVLink wiring as the plain DGX-1.
	base := DGX1()
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if d.LanesBetween(DeviceID(i), DeviceID(j)) != base.LanesBetween(DeviceID(i), DeviceID(j)) {
				t.Fatalf("lane matrix diverged at (%d,%d)", i, j)
			}
		}
	}
	if d.HostMemory <= base.HostMemory {
		t.Error("the sibling server has more host memory")
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	bad := DGX1()
	bad.NumGPUs = 0
	if bad.Validate() == nil {
		t.Error("zero GPUs accepted")
	}
	bad = DGX1()
	bad.GPU.Memory = 0
	if bad.Validate() == nil {
		t.Error("zero memory accepted")
	}
	bad = DGX1()
	bad.PCIeBW = 0
	if bad.Validate() == nil {
		t.Error("zero PCIe accepted")
	}
	bad = DGX1()
	bad.NVLinkLanes[0][1] = -1
	bad.NVLinkLanes[1][0] = -1
	if bad.Validate() == nil {
		t.Error("negative lanes accepted")
	}
	bad = DGX1()
	bad.NVLinkLanes[0] = bad.NVLinkLanes[0][:4]
	if bad.Validate() == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestSwitchedLaneMatrixRendering(t *testing.T) {
	s := DGX2().LaneMatrixString()
	if !strings.Contains(s, "NV12") {
		t.Errorf("switched matrix should show full budget:\n%s", s)
	}
}

func TestHBMRates(t *testing.T) {
	if V100().HBM >= A100().HBM {
		t.Error("A100 HBM must out-run V100")
	}
	if H100Grace().HBM <= A100().HBM {
		t.Error("GH200 HBM must out-run A100")
	}
	if V100().HBM < units.GBps(500) {
		t.Error("V100 HBM unreasonably slow")
	}
}
