package hw

import (
	"strings"
	"testing"

	"mpress/internal/units"
)

func TestDeviceIDString(t *testing.T) {
	if Host.String() != "host" || NVMe.String() != "nvme" || DeviceID(3).String() != "gpu3" {
		t.Error("device names wrong")
	}
	if DeviceID(-5).String() != "device(-5)" {
		t.Error("unknown device name wrong")
	}
	if Host.IsGPU() || NVMe.IsGPU() || !DeviceID(0).IsGPU() {
		t.Error("IsGPU wrong")
	}
}

func TestGPUSpecEffective(t *testing.T) {
	v := V100()
	if v.Memory != 32*units.GiB {
		t.Errorf("V100 memory = %v", v.Memory)
	}
	wantFP16 := units.FLOPSRate(float64(v.PeakFP16) * v.Efficiency)
	if v.EffectiveFP16() != wantFP16 {
		t.Errorf("EffectiveFP16 = %v, want %v", v.EffectiveFP16(), wantFP16)
	}
	if v.EffectiveFP32() >= v.PeakFP32 {
		t.Error("effective rate must be below peak")
	}
	a := A100()
	if a.Memory != 40*units.GiB {
		t.Errorf("A100 memory = %v", a.Memory)
	}
	// The paper observes DGX-2 performance "more than doubled" over
	// DGX-1 (Sec. IV-C); that requires the fp16 rate ratio > 2.
	if float64(a.EffectiveFP16())/float64(v.EffectiveFP16()) <= 2 {
		t.Error("A100/V100 fp16 ratio must exceed 2×")
	}
}

func TestDGX1Valid(t *testing.T) {
	d := DGX1()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Switched {
		t.Error("DGX-1 must be a direct (asymmetric) topology")
	}
	// Every V100 terminates exactly 6 NVLink lanes.
	for g := 0; g < d.NumGPUs; g++ {
		if got := d.TotalLanes(DeviceID(g)); got != 6 {
			t.Errorf("gpu%d has %d lanes, want 6", g, got)
		}
	}
	// Paper Fig. 3: GPU0 reaches GPU3 at ~50 GB/s (two lanes).
	if got := d.LanesBetween(0, 3); got != 2 {
		t.Errorf("lanes(0,3) = %d, want 2", got)
	}
	bw := d.PairBandwidth(0, 3)
	if bw.GBpsf() < 45 || bw.GBpsf() > 52 {
		t.Errorf("pair bandwidth gpu0->gpu3 = %v, want ~50GB/s", bw)
	}
	// GPU0 and GPU5 are not directly connected in the cube mesh.
	if d.LanesBetween(0, 5) != 0 {
		t.Error("gpu0-gpu5 should have no direct lanes")
	}
	if d.PairBandwidth(0, 5) != 0 {
		t.Error("unreachable pair must have zero bandwidth")
	}
}

func TestDGX1Neighbors(t *testing.T) {
	d := DGX1()
	nbh := d.NVLinkNeighbors(0)
	want := []DeviceID{1, 2, 3, 4}
	if len(nbh) != len(want) {
		t.Fatalf("gpu0 neighbors = %v, want %v", nbh, want)
	}
	for i := range want {
		if nbh[i] != want[i] {
			t.Fatalf("gpu0 neighbors = %v, want %v", nbh, want)
		}
	}
}

func TestDGX1Fig4Ratios(t *testing.T) {
	// Fig. 4: aggregated NVLink bandwidth is 3.9–12.5× PCIe over 2–6
	// lanes.
	d := DGX1()
	two := 2 * float64(d.NVLinkLaneBW)
	six := 6 * float64(d.NVLinkLaneBW)
	pcie := float64(d.PCIeBW)
	if r := two / pcie; r < 3.5 || r > 4.5 {
		t.Errorf("NV2/PCIe ratio = %.2f, want ≈3.9", r)
	}
	if r := six / pcie; r < 11.5 || r > 13.5 {
		t.Errorf("NV6/PCIe ratio = %.2f, want ≈12.5", r)
	}
}

func TestDGX2Valid(t *testing.T) {
	d := DGX2()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if !d.Switched {
		t.Error("DGX-2 must be switched")
	}
	// Symmetric: every pair reachable at the full per-GPU lane budget.
	for i := 0; i < d.NumGPUs; i++ {
		for j := 0; j < d.NumGPUs; j++ {
			if i == j {
				continue
			}
			if got := d.LanesBetween(DeviceID(i), DeviceID(j)); got != d.LanesPerGPU {
				t.Fatalf("lanes(%d,%d) = %d, want %d", i, j, got, d.LanesPerGPU)
			}
		}
	}
	if len(d.NVLinkNeighbors(0)) != 7 {
		t.Error("switched topology: every peer is a neighbor")
	}
	if d.NVMeBW <= 0 || d.NVMeSize != 6*units.TiB {
		t.Error("DGX-2 must model its NVMe tier")
	}
	if DGX2FastNVMe().NVMeBW <= d.NVMeBW {
		t.Error("fast-NVMe variant must be faster")
	}
}

func TestTopologyValidateRejectsBadMatrices(t *testing.T) {
	d := DGX1()
	d.NVLinkLanes[0][1] = 9 // asymmetric now
	if err := d.Validate(); err == nil {
		t.Error("asymmetric matrix not caught")
	}
	d = DGX1()
	d.NVLinkLanes[2][2] = 1
	if err := d.Validate(); err == nil {
		t.Error("self lanes not caught")
	}
	d = DGX1()
	d.NVLinkLanes[0][1] = 5
	d.NVLinkLanes[1][0] = 5
	if err := d.Validate(); err == nil {
		t.Error("lane budget overflow not caught")
	}
	d = DGX1()
	d.NumGPUs = 4
	if err := d.Validate(); err == nil {
		t.Error("matrix/NumGPUs mismatch not caught")
	}
	s := DGX2()
	s.LanesPerGPU = 0
	if err := s.Validate(); err == nil {
		t.Error("switched without lanes not caught")
	}
}

func TestLanesBetweenBounds(t *testing.T) {
	d := DGX1()
	if d.LanesBetween(Host, 0) != 0 || d.LanesBetween(0, NVMe) != 0 {
		t.Error("non-GPU endpoints must have zero NVLink lanes")
	}
	if d.LanesBetween(0, 0) != 0 {
		t.Error("self pair must have zero lanes")
	}
	if d.LanesBetween(0, 99) != 0 {
		t.Error("out-of-range GPU must have zero lanes")
	}
}

func TestAggregateAndTotals(t *testing.T) {
	d := DGX1()
	agg := d.AggregateNVLinkBW(0)
	if got, want := agg.GBpsf(), 6*24.3; got < want-0.5 || got > want+0.5 {
		t.Errorf("aggregate bw = %.1f, want %.1f", got, want)
	}
	if d.TotalGPUMemory() != 256*units.GiB {
		t.Errorf("total memory = %v, want 256GiB", d.TotalGPUMemory())
	}
	if d.GPUMemory() != 32*units.GiB {
		t.Errorf("per-GPU memory = %v", d.GPUMemory())
	}
}

func TestLaneMatrixString(t *testing.T) {
	s := DGX1().LaneMatrixString()
	if !strings.Contains(s, "NV2") || !strings.Contains(s, "NV1") || !strings.Contains(s, "--") || !strings.Contains(s, "X") {
		t.Errorf("matrix rendering missing markers:\n%s", s)
	}
}

func TestGraceHopper(t *testing.T) {
	g := GraceHopper()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.GPU.Memory != 96*units.GiB {
		t.Errorf("GH HBM = %v, want 96GiB", g.GPU.Memory)
	}
	// Sec. V: C2C link is 64 GB/s, far above PCIe but below the
	// 140 GB/s needed to fully hide swap.
	if g.PCIeBW.GBpsf() != 64 {
		t.Errorf("C2C bw = %v", g.PCIeBW)
	}
}
