// Package hw describes multi-GPU server hardware: GPU specifications,
// interconnect links (NVLink, PCIe, NVMe), and server topologies.
//
// Two concrete topologies mirror the paper's testbeds (Sec. IV-A):
//
//   - DGX1: 8×V100-32GB connected by the asymmetric NVLink 2.0 hybrid
//     cube mesh of Fig. 3 (some GPU pairs share two links, some one,
//     some none).
//   - DGX2: 8×A100-40GB behind a non-blocking NVSwitch (symmetric
//     topology; every pair is reachable at full per-lane bandwidth).
//
// The package is purely descriptive — the simulation of contention and
// reservation on these links lives in internal/fabric.
package hw

import (
	"fmt"

	"mpress/internal/units"
)

// DeviceID identifies an endpoint of a link. GPUs are numbered from 0;
// the host CPU and the NVMe store use negative sentinels.
type DeviceID int

// Non-GPU devices.
const (
	// Host is the CPU/host-memory endpoint of PCIe links.
	Host DeviceID = -1
	// NVMe is the SSD endpoint used by ZeRO-Infinity-style swapping.
	NVMe DeviceID = -2
)

// String names the device, e.g. "gpu3", "host", "nvme".
func (d DeviceID) String() string {
	switch {
	case d == Host:
		return "host"
	case d == NVMe:
		return "nvme"
	case d >= 0:
		return fmt.Sprintf("gpu%d", int(d))
	default:
		return fmt.Sprintf("device(%d)", int(d))
	}
}

// IsGPU reports whether the device is a GPU.
func (d DeviceID) IsGPU() bool { return d >= 0 }

// GPUSpec describes one GPU model.
type GPUSpec struct {
	Name   string
	Memory units.Bytes
	// PeakFP32 and PeakFP16 are datasheet peak rates.
	PeakFP32 units.FLOPSRate
	PeakFP16 units.FLOPSRate
	// Efficiency is the fraction of peak that DNN training kernels
	// sustain end to end (MFU). Used to convert operator FLOPs into
	// simulated latencies.
	Efficiency float64
	// HBM is the device memory bandwidth, which bounds memory-bound
	// work such as the optimizer step.
	HBM units.Bandwidth
}

// EffectiveFP32 returns the sustained fp32 training rate.
func (g GPUSpec) EffectiveFP32() units.FLOPSRate {
	return units.FLOPSRate(float64(g.PeakFP32) * g.Efficiency)
}

// EffectiveFP16 returns the sustained fp16 training rate.
func (g GPUSpec) EffectiveFP16() units.FLOPSRate {
	return units.FLOPSRate(float64(g.PeakFP16) * g.Efficiency)
}

// V100 is the NVIDIA Tesla V100-SXM2-32GB used in the paper's DGX-1
// testbed (AWS p3dn.24xlarge).
func V100() GPUSpec {
	return GPUSpec{
		Name:       "V100-SXM2-32GB",
		Memory:     32 * units.GiB,
		PeakFP32:   units.TFLOPS(15.7),
		PeakFP16:   units.TFLOPS(125),
		Efficiency: 0.35,
		HBM:        units.GBps(900),
	}
}

// A100 is the NVIDIA A100-40GB used in the paper's DGX-2-generation
// testbed.
func A100() GPUSpec {
	return GPUSpec{
		Name:       "A100-SXM4-40GB",
		Memory:     40 * units.GiB,
		PeakFP32:   units.TFLOPS(19.5),
		PeakFP16:   units.TFLOPS(312),
		Efficiency: 0.35,
		HBM:        units.GBps(1555),
	}
}

// H100Grace approximates one Grace-Hopper superchip module for the
// Sec. V hardware-insights projection: 96 GB HBM plus 512 GB of
// CPU-side memory reachable at NVLink-C2C bandwidth.
func H100Grace() GPUSpec {
	return GPUSpec{
		Name:       "GH200-96GB",
		Memory:     96 * units.GiB,
		PeakFP32:   units.TFLOPS(67),
		PeakFP16:   units.TFLOPS(990),
		Efficiency: 0.35,
		HBM:        units.GBps(4000),
	}
}

// LinkKind categorizes an interconnect.
type LinkKind int

const (
	// NVLinkLane is one directed NVLink lane between two GPUs (or a
	// GPU and an NVSwitch port).
	NVLinkLane LinkKind = iota
	// PCIeLink is the PCIe path between a GPU and host memory.
	PCIeLink
	// NVMeLink is the storage path between host memory and SSDs.
	NVMeLink
	// C2CLink is Grace-Hopper's NVLink-C2C CPU<->GPU path (Sec. V).
	C2CLink
	// NICLink is an inter-node network port (InfiniBand / Ethernet),
	// the fabric internal/cluster composes servers over. NICs are
	// quoted in bits per second (units.Gbps).
	NICLink
)

// String returns the kind name.
func (k LinkKind) String() string {
	switch k {
	case NVLinkLane:
		return "nvlink"
	case PCIeLink:
		return "pcie"
	case NVMeLink:
		return "nvme"
	case C2CLink:
		return "c2c"
	case NICLink:
		return "nic"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// NodeDevice qualifies a DeviceID with the node hosting it, addressing
// one endpoint inside a multi-node cluster (internal/cluster). Within
// one server plain DeviceIDs remain the working currency; NodeDevice
// exists so cluster-level tooling and wire formats can name devices
// across replicas unambiguously.
type NodeDevice struct {
	Node   int      `json:"node"`
	Device DeviceID `json:"device"`
}

// On returns the device qualified with a node index.
func (d DeviceID) On(node int) NodeDevice { return NodeDevice{Node: node, Device: d} }

// String names the endpoint, e.g. "n2/gpu3" or "n0/host".
func (n NodeDevice) String() string {
	return fmt.Sprintf("n%d/%s", n.Node, n.Device)
}

// Validate checks the endpoint against a cluster of `nodes` replicas of
// topology t.
func (n NodeDevice) Validate(nodes int, t *Topology) error {
	if n.Node < 0 || n.Node >= nodes {
		return fmt.Errorf("hw: node %d out of range [0,%d)", n.Node, nodes)
	}
	if n.Device.IsGPU() && int(n.Device) >= t.NumGPUs {
		return fmt.Errorf("hw: %v exceeds %d GPUs per node", n, t.NumGPUs)
	}
	return nil
}
