package hw

import (
	"reflect"
	"testing"

	"mpress/internal/units"
)

func TestWithoutGPU(t *testing.T) {
	orig := DGX1()
	snapshot := orig.Clone()

	deg, err := orig.WithoutGPU(3)
	if err != nil {
		t.Fatal(err)
	}
	if deg.NumGPUs != 7 {
		t.Fatalf("NumGPUs = %d, want 7", deg.NumGPUs)
	}
	if err := deg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Renumbering: old gpu4 (row {2,0,0,0,0,1,1,2}) becomes gpu3 and
	// loses its column-3 entry (0 lanes to old gpu3).
	want := []int{2, 0, 0, 0, 1, 1, 2}
	if !reflect.DeepEqual(deg.NVLinkLanes[3], want) {
		t.Errorf("row for renumbered gpu4 = %v, want %v", deg.NVLinkLanes[3], want)
	}
	// The source topology must be untouched.
	if !reflect.DeepEqual(orig, snapshot) {
		t.Error("WithoutGPU mutated its receiver")
	}

	if _, err := orig.WithoutGPU(8); err == nil {
		t.Error("removing a nonexistent GPU must fail")
	}
	if _, err := orig.WithoutGPU(Host); err == nil {
		t.Error("removing the host must fail")
	}
}

func TestWithoutGPUSwitched(t *testing.T) {
	deg, err := DGX2().WithoutGPU(0)
	if err != nil {
		t.Fatal(err)
	}
	if deg.NumGPUs != 7 || deg.LanesPerGPU != 12 {
		t.Fatalf("got %d GPUs / %d lanes, want 7 / 12", deg.NumGPUs, deg.LanesPerGPU)
	}
}

func TestWithoutNVLink(t *testing.T) {
	orig := DGX1()
	deg, err := orig.WithoutNVLink(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if deg.LanesBetween(0, 3) != 0 || deg.LanesBetween(3, 0) != 0 {
		t.Error("downed pair still has lanes")
	}
	if deg.LanesBetween(0, 4) != 2 {
		t.Error("unrelated pair lost lanes")
	}
	if orig.LanesBetween(0, 3) != 2 {
		t.Error("WithoutNVLink mutated its receiver")
	}
	// gpu0 and gpu3 were never wired on the cube mesh to gpu5..7 etc.;
	// a dead pair must not be removable twice.
	if _, err := deg.WithoutNVLink(0, 3); err == nil {
		t.Error("downing a dead link must fail")
	}
	if _, err := orig.WithoutNVLink(0, 5); err == nil {
		t.Error("downing a never-wired pair must fail")
	}
}

func TestWithoutNVLinkSwitched(t *testing.T) {
	deg, err := DGX2().WithoutNVLink(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if deg.LanesPerGPU != 11 {
		t.Fatalf("LanesPerGPU = %d, want 11", deg.LanesPerGPU)
	}
	if deg.LanesBetween(2, 5) != 11 || deg.LanesBetween(0, 1) != 11 {
		t.Error("switched degradation must shave one plane for every pair")
	}
}

func TestWithHostMemory(t *testing.T) {
	deg, err := DGX1().WithHostMemory(64 * units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if deg.HostMemory != 64*units.GiB {
		t.Errorf("HostMemory = %v", deg.HostMemory)
	}
	if _, err := DGX1().WithHostMemory(0); err == nil {
		t.Error("zero host memory must fail")
	}
}
