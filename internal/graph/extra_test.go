package graph

import (
	"testing"

	"mpress/internal/tensor"
	"mpress/internal/units"
)

// TestValidateAllowsRecomputeReproduction: a Recompute op legitimately
// re-produces a tensor its forward already produced.
func TestValidateAllowsRecomputeReproduction(t *testing.T) {
	g, ops, ts := buildChain(t)
	g.InstrumentRecompute(ts[0], ops[0], ops[2], -1, units.FLOPs(1))
	if err := g.Validate(); err != nil {
		t.Fatalf("recompute reproduction rejected: %v", err)
	}
}

// TestInstrumentSwapGateOrdering: with a gate, the swap-in cannot
// precede the gate in any topological order.
func TestInstrumentSwapGateOrdering(t *testing.T) {
	g, ops, ts := buildChain(t)
	gate := ops[1]
	pair := g.InstrumentSwap(ts[0], ops[0], ops[2], gate, "h2d")
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[OpID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos[pair.In] < pos[gate] {
		t.Error("gated swap-in sorted before its gate")
	}
}

// TestInstrumentSwapInOutStandalone: the standalone primitives wire
// the expected dependencies.
func TestInstrumentSwapInOutStandalone(t *testing.T) {
	g := New(nil)
	tt := g.Tensors.Add(tensor.Tensor{Name: "opt", Class: tensor.OptimizerState, Size: 64, Stage: 1})
	a := g.AddOp(Op{Name: "a", Stage: 1})
	b := g.AddOp(Op{Name: "b", Stage: 1, Deps: []OpID{a}})
	in := g.InstrumentSwapIn(tt, b, a, "h2d")
	out := g.InstrumentSwapOut(tt, b, "h2d")
	if g.Op(in).Kind != SwapIn || g.Op(out).Kind != SwapOut {
		t.Fatal("wrong kinds")
	}
	if g.Op(in).Subject != tt || g.Op(out).Subject != tt {
		t.Fatal("subjects not set")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	order, _ := g.TopoOrder()
	pos := map[OpID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if !(pos[a] < pos[in] && pos[in] < pos[b] && pos[b] < pos[out]) {
		t.Errorf("standalone swap ordering wrong: %v", order)
	}
}

// TestTopoOrderCachesAndInvalidates: the cached order is reused until
// a mutation, then recomputed.
func TestTopoOrderCachesAndInvalidates(t *testing.T) {
	g := New(nil)
	a := g.AddOp(Op{Name: "a"})
	o1, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := g.TopoOrder()
	if &o1[0] != &o2[0] {
		t.Error("cache not reused")
	}
	b := g.AddOp(Op{Name: "b", Deps: []OpID{a}})
	o3, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(o3) != 2 || o3[1] != b {
		t.Errorf("stale order after mutation: %v", o3)
	}
}

// TestOpMoveBytesFlow: rewriter primitives carry the tensor's size as
// MoveBytes for the executor's transfer timing.
func TestOpMoveBytesFlow(t *testing.T) {
	g, ops, ts := buildChain(t)
	pair := g.InstrumentSwap(ts[1], ops[1], ops[2], -1, "d2d")
	if g.Op(pair.Out).MoveBytes != 200 || g.Op(pair.In).MoveBytes != 200 {
		t.Error("MoveBytes must match the tensor size")
	}
}
