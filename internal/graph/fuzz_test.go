package graph

import (
	"testing"

	"mpress/internal/tensor"
)

// FuzzTopoOrder feeds arbitrary edge lists (as byte pairs) into the
// graph: the sorter must either produce a valid order respecting every
// edge or report a CycleError — never panic, never mis-order.
func FuzzTopoOrder(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3})
	f.Add([]byte{0, 1, 1, 0}) // cycle
	f.Add([]byte{})
	f.Add([]byte{5, 5}) // self edge
	f.Fuzz(func(t *testing.T, edges []byte) {
		const n = 16
		g := New(nil)
		for i := 0; i < n; i++ {
			g.AddOp(Op{Name: "op"})
		}
		var added []fuzzEdge
		for i := 0; i+1 < len(edges); i += 2 {
			from := OpID(edges[i] % n)
			to := OpID(edges[i+1] % n)
			if from == to {
				continue // self-deps are a Validate error, not a sort input
			}
			g.AddDep(to, from)
			added = append(added, fuzzEdge{from, to})
		}
		order, err := g.TopoOrder()
		if err != nil {
			// Must be a genuine cycle: verify by DFS.
			if !hasCycle(n, added) {
				t.Fatalf("CycleError on an acyclic graph: %v", added)
			}
			return
		}
		if hasCycle(n, added) {
			t.Fatalf("sorted a cyclic graph: %v", added)
		}
		pos := make(map[OpID]int, n)
		for i, id := range order {
			pos[id] = i
		}
		if len(order) != n {
			t.Fatalf("order covers %d of %d ops", len(order), n)
		}
		for _, e := range added {
			if pos[e.from] >= pos[e.to] {
				t.Fatalf("edge %d->%d violated", e.from, e.to)
			}
		}
	})
}

type fuzzEdge struct{ from, to OpID }

func hasCycle(n int, edges []fuzzEdge) bool {
	adj := make([][]OpID, n)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	state := make([]int, n) // 0 unvisited, 1 in-stack, 2 done
	var dfs func(OpID) bool
	dfs = func(v OpID) bool {
		state[v] = 1
		for _, w := range adj[v] {
			if state[w] == 1 {
				return true
			}
			if state[w] == 0 && dfs(w) {
				return true
			}
		}
		state[v] = 2
		return false
	}
	for v := 0; v < n; v++ {
		if state[v] == 0 && dfs(OpID(v)) {
			return true
		}
	}
	return false
}

// FuzzLiveness: for arbitrary produce/consume wiring, Analyze must
// stay in bounds and LastUse must point at a real consumer.
func FuzzLiveness(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2})
	f.Add([]byte{3, 3, 3, 3})
	f.Fuzz(func(t *testing.T, wiring []byte) {
		g := New(nil)
		const nOps = 8
		const nTensors = 6
		ids := make([]tensor.ID, nTensors)
		for i := range ids {
			ids[i] = g.Tensors.Add(tensor.Tensor{Name: "t", Size: 1})
		}
		produced := make(map[tensor.ID]bool)
		for i := 0; i < nOps; i++ {
			op := Op{Name: "op"}
			if i > 0 {
				op.Deps = []OpID{OpID(i - 1)} // a chain keeps it acyclic
			}
			if len(wiring) > 0 {
				tid := ids[int(wiring[i%len(wiring)])%nTensors]
				if !produced[tid] {
					op.Outputs = []tensor.ID{tid}
					produced[tid] = true
				} else {
					op.Inputs = []tensor.ID{tid}
				}
			}
			g.AddOp(op)
		}
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatalf("chain graph failed to sort: %v", err)
		}
		l := g.Analyze(order)
		for i := range ids {
			last := l.LastUse(ids[i])
			if last < -1 || last >= nOps {
				t.Fatalf("LastUse out of range: %d", last)
			}
			for _, u := range l.Uses[ids[i]] {
				if u.Index < 0 || u.Index >= nOps {
					t.Fatalf("use index out of range: %d", u.Index)
				}
			}
		}
	})
}
