package graph

import (
	"errors"
	"math/rand"
	"testing"

	"mpress/internal/tensor"
	"mpress/internal/units"
)

// buildChain makes a linear fw graph a->b->c via tensors t0,t1.
func buildChain(t *testing.T) (*Graph, []OpID, []tensor.ID) {
	t.Helper()
	g := New(nil)
	t0 := g.Tensors.Add(tensor.Tensor{Name: "t0", Class: tensor.Activation, Size: 100})
	t1 := g.Tensors.Add(tensor.Tensor{Name: "t1", Class: tensor.Activation, Size: 200})
	a := g.AddOp(Op{Name: "a", Kind: Forward, Outputs: []tensor.ID{t0}})
	b := g.AddOp(Op{Name: "b", Kind: Forward, Inputs: []tensor.ID{t0}, Outputs: []tensor.ID{t1}})
	c := g.AddOp(Op{Name: "c", Kind: Backward, Inputs: []tensor.ID{t1}})
	return g, []OpID{a, b, c}, []tensor.ID{t0, t1}
}

func TestOpKindString(t *testing.T) {
	if Forward.String() != "forward" || SwapOut.String() != "swapout" || ReduceScatter.String() != "reducescatter" {
		t.Error("op kind names wrong")
	}
	if OpKind(42).String() != "OpKind(42)" {
		t.Error("out-of-range op kind name wrong")
	}
}

func TestOpKindCompute(t *testing.T) {
	for _, k := range []OpKind{Forward, Backward, OptimizerStep, Recompute} {
		if !k.Compute() {
			t.Errorf("%v should be compute", k)
		}
	}
	for _, k := range []OpKind{Transfer, SwapOut, SwapIn, Drop, AllGather, ReduceScatter} {
		if k.Compute() {
			t.Errorf("%v should not be compute", k)
		}
	}
}

func TestTopoOrderChain(t *testing.T) {
	g, ops, _ := buildChain(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("order length %d, want 3", len(order))
	}
	for i, want := range ops {
		if order[i] != want {
			t.Errorf("order[%d] = %d, want %d", i, order[i], want)
		}
	}
}

func TestTopoOrderDeterministicTies(t *testing.T) {
	// Diamond: root -> {x, y} -> sink. x and y are both ready after
	// root; the lower ID must come first.
	g := New(nil)
	root := g.AddOp(Op{Name: "root"})
	x := g.AddOp(Op{Name: "x", Deps: []OpID{root}})
	y := g.AddOp(Op{Name: "y", Deps: []OpID{root}})
	sink := g.AddOp(Op{Name: "sink", Deps: []OpID{x, y}})
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []OpID{root, x, y, sink}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New(nil)
	a := g.AddOp(Op{Name: "a"})
	b := g.AddOp(Op{Name: "b", Deps: []OpID{a}})
	g.AddDep(a, b) // introduces the cycle a <-> b
	_, err := g.TopoOrder()
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("expected CycleError, got %v", err)
	}
	if len(ce.Remaining) != 2 {
		t.Errorf("Remaining = %v, want both ops", ce.Remaining)
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate must fail on a cyclic graph")
	}
}

func TestValidate(t *testing.T) {
	g, _, _ := buildChain(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}

	bad := New(nil)
	bad.AddOp(Op{Name: "x", Inputs: []tensor.ID{99}})
	if err := bad.Validate(); err == nil {
		t.Error("unknown tensor reference not caught")
	}

	selfdep := New(nil)
	id := selfdep.AddOp(Op{Name: "s"})
	selfdep.Op(id).Deps = append(selfdep.Op(id).Deps, id)
	if err := selfdep.Validate(); err == nil {
		t.Error("self-dependency not caught")
	}

	dup := New(nil)
	tt := dup.Tensors.Add(tensor.Tensor{Name: "t"})
	dup.AddOp(Op{Name: "p1", Outputs: []tensor.ID{tt}})
	dup.AddOp(Op{Name: "p2", Outputs: []tensor.ID{tt}})
	if err := dup.Validate(); err == nil {
		t.Error("double-producer not caught")
	}
}

func TestAddDepIdempotent(t *testing.T) {
	g := New(nil)
	a := g.AddOp(Op{Name: "a"})
	b := g.AddOp(Op{Name: "b"})
	g.AddDep(b, a)
	g.AddDep(b, a)
	if len(g.Op(b).Deps) != 1 {
		t.Errorf("duplicate dep recorded: %v", g.Op(b).Deps)
	}
}

func TestAnalyzeLiveness(t *testing.T) {
	g, ops, ts := buildChain(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	l := g.Analyze(order)
	if l.Def[ts[0]] != 0 {
		t.Errorf("t0 defined at %d, want 0", l.Def[ts[0]])
	}
	if l.Def[ts[1]] != 1 {
		t.Errorf("t1 defined at %d, want 1", l.Def[ts[1]])
	}
	if got := l.LastUse(ts[0]); got != 1 {
		t.Errorf("t0 last use at %d, want 1", got)
	}
	if got := l.LastUse(ts[1]); got != 2 {
		t.Errorf("t1 last use at %d, want 2", got)
	}
	if len(l.Uses[ts[1]]) != 1 || l.Uses[ts[1]][0].Op != ops[2] {
		t.Errorf("t1 uses = %+v", l.Uses[ts[1]])
	}
}

func TestAnalyzeUnusedTensor(t *testing.T) {
	g := New(nil)
	tt := g.Tensors.Add(tensor.Tensor{Name: "orphan"})
	g.AddOp(Op{Name: "p", Outputs: []tensor.ID{tt}})
	order, _ := g.TopoOrder()
	l := g.Analyze(order)
	if got := l.LastUse(tt); got != -1 {
		t.Errorf("unused tensor LastUse = %d, want -1", got)
	}
}

func TestInstrumentSwap(t *testing.T) {
	g, ops, ts := buildChain(t)
	pair := g.InstrumentSwap(ts[0], ops[0], ops[2], -1, "d2d")
	if err := g.Validate(); err != nil {
		t.Fatalf("instrumented graph invalid: %v", err)
	}
	out, in := g.Op(pair.Out), g.Op(pair.In)
	if out.Kind != SwapOut || in.Kind != SwapIn {
		t.Fatalf("kinds = %v, %v", out.Kind, in.Kind)
	}
	if out.MoveBytes != 100 || in.MoveBytes != 100 {
		t.Errorf("MoveBytes = %d, %d; want 100", out.MoveBytes, in.MoveBytes)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[OpID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if !(pos[ops[0]] < pos[pair.Out] && pos[pair.Out] < pos[pair.In] && pos[pair.In] < pos[ops[2]]) {
		t.Errorf("swap ordering violated: %v", order)
	}
}

func TestInstrumentRecompute(t *testing.T) {
	g, ops, ts := buildChain(t)
	pair := g.InstrumentRecompute(ts[0], ops[0], ops[2], -1, units.FLOPs(1e9))
	if err := g.Validate(); err != nil {
		t.Fatalf("instrumented graph invalid: %v", err)
	}
	rec := g.Op(pair.Recompute)
	if rec.Kind != Recompute || rec.FLOPs != units.FLOPs(1e9) {
		t.Errorf("recompute op wrong: %+v", rec)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[OpID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if !(pos[pair.Drop] < pos[pair.Recompute] && pos[pair.Recompute] < pos[ops[2]]) {
		t.Errorf("recompute ordering violated: %v", order)
	}
}

func TestInstrumentRecomputeRejectsNonActivation(t *testing.T) {
	g := New(nil)
	p := g.Tensors.Add(tensor.Tensor{Name: "w", Class: tensor.Parameter, Size: 10})
	a := g.AddOp(Op{Name: "a", Outputs: []tensor.ID{p}})
	b := g.AddOp(Op{Name: "b", Inputs: []tensor.ID{p}})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-activation recompute")
		}
	}()
	g.InstrumentRecompute(p, a, b, -1, 0)
}

// TestTopoOrderRandomDAGProperty: random DAGs (edges only from lower to
// higher IDs) must always sort, and every edge must be respected.
func TestTopoOrderRandomDAGProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := New(nil)
		n := 2 + rng.Intn(40)
		for i := 0; i < n; i++ {
			g.AddOp(Op{Name: "op"})
		}
		type edge struct{ from, to OpID }
		var edges []edge
		for i := 1; i < n; i++ {
			for k := 0; k < rng.Intn(3); k++ {
				from := OpID(rng.Intn(i))
				g.AddDep(OpID(i), from)
				edges = append(edges, edge{from, OpID(i)})
			}
		}
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pos := make(map[OpID]int, n)
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range edges {
			if pos[e.from] >= pos[e.to] {
				t.Fatalf("trial %d: edge %d->%d violated", trial, e.from, e.to)
			}
		}
	}
}
