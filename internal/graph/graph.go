// Package graph implements the dataflow computation graph the MPress
// static pipeline operates on: typed operators connected by explicit
// dependency edges and by tensor produce/consume relations.
//
// The planner's rewriter (paper Fig. 5, step 4) instruments this graph
// with memory-saving operators (swap-out, swap-in, drop, recompute)
// placed so that operator dependencies are respected; the executor then
// walks the instrumented graph.
package graph

import (
	"fmt"
	"sort"

	"mpress/internal/tensor"
	"mpress/internal/units"
)

// OpKind identifies what an operator does.
type OpKind int

const (
	// Forward is a forward-pass compute operator.
	Forward OpKind = iota
	// Backward is a backward-pass compute operator.
	Backward
	// OptimizerStep applies gradients to parameters.
	OptimizerStep
	// Transfer moves a tensor between pipeline stages (activations
	// forward, gradients backward).
	Transfer
	// SwapOut evicts a tensor from GPU memory (to a peer GPU for D2D
	// swap or to host memory for GPU-CPU swap).
	SwapOut
	// SwapIn restores a previously swapped-out tensor.
	SwapIn
	// Drop releases an activation that will later be recomputed.
	Drop
	// Recompute re-runs a forward operator to regenerate a dropped
	// activation.
	Recompute
	// AllGather and ReduceScatter are the ZeRO-style collectives used
	// by the data-parallel baselines.
	AllGather
	ReduceScatter
	// Checkpoint, Failure and Recovery never appear in built graphs;
	// they label the resilience spans (snapshot transfers, injected
	// faults, rollback + restore) that internal/exec and
	// internal/runner add to traces.
	Checkpoint
	Failure
	Recovery
)

var opKindNames = [...]string{
	Forward:       "forward",
	Backward:      "backward",
	OptimizerStep: "optstep",
	Transfer:      "transfer",
	SwapOut:       "swapout",
	SwapIn:        "swapin",
	Drop:          "drop",
	Recompute:     "recompute",
	AllGather:     "allgather",
	ReduceScatter: "reducescatter",
	Checkpoint:    "checkpoint",
	Failure:       "failure",
	Recovery:      "recovery",
}

// String returns the lowercase kind name.
func (k OpKind) String() string {
	if k < 0 || int(k) >= len(opKindNames) {
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
	return opKindNames[k]
}

// Compute reports whether the operator occupies a GPU compute stream
// (as opposed to a communication link or a pure bookkeeping action).
func (k OpKind) Compute() bool {
	switch k {
	case Forward, Backward, OptimizerStep, Recompute:
		return true
	}
	return false
}

// OpID identifies an operator within one Graph.
type OpID int

// Op is a node of the computation graph.
type Op struct {
	ID    OpID
	Name  string
	Kind  OpKind
	Stage int // pipeline stage executing the op
	Layer int // model layer index, -1 if not applicable
	// Microbatch the op belongs to, -1 for per-iteration ops
	// (optimizer step, persistent-state swaps).
	Microbatch int
	// FLOPs of compute work, zero for non-compute ops.
	FLOPs units.FLOPs
	// MoveBytes for transfer/swap ops: the amount of data moved.
	MoveBytes units.Bytes
	// Inputs and Outputs are tensors the op consumes and produces.
	Inputs  []tensor.ID
	Outputs []tensor.ID
	// Subject is the tensor a memory-saving op (SwapOut, SwapIn,
	// Drop, Recompute) acts on. It is only meaningful for those four
	// kinds, which are always created via the Instrument helpers.
	Subject tensor.ID
	// Deps are explicit control dependencies in addition to dataflow.
	Deps []OpID
}

// Graph holds the operators and the tensor registry they refer to.
type Graph struct {
	Tensors *tensor.Registry
	ops     []Op
	// frozen caches the topological order once computed; any mutation
	// invalidates it.
	topoCache []OpID
}

// New returns an empty graph backed by the given tensor registry. A nil
// registry is replaced by a fresh one.
func New(reg *tensor.Registry) *Graph {
	if reg == nil {
		reg = tensor.NewRegistry()
	}
	return &Graph{Tensors: reg}
}

// AddOp appends op (ignoring op.ID) and returns the assigned ID.
func (g *Graph) AddOp(op Op) OpID {
	op.ID = OpID(len(g.ops))
	g.ops = append(g.ops, op)
	g.topoCache = nil
	return op.ID
}

// Op returns the operator with the given id.
func (g *Graph) Op(id OpID) *Op { return &g.ops[id] }

// Len returns the number of operators.
func (g *Graph) Len() int { return len(g.ops) }

// Ops returns all operators in ID order. The slice aliases internal
// storage; callers must not append to it.
func (g *Graph) Ops() []Op { return g.ops }

// AddDep records that op `after` must run after op `before`.
func (g *Graph) AddDep(after, before OpID) {
	op := &g.ops[after]
	for _, d := range op.Deps {
		if d == before {
			return
		}
	}
	op.Deps = append(op.Deps, before)
	g.topoCache = nil
}

// producers maps each tensor to the op that outputs it (-1 if none).
func (g *Graph) producers() []OpID {
	prod := make([]OpID, g.Tensors.Len())
	for i := range prod {
		prod[i] = -1
	}
	for i := range g.ops {
		for _, out := range g.ops[i].Outputs {
			prod[out] = g.ops[i].ID
		}
	}
	return prod
}

// Preds returns, for every op, its full predecessor list: explicit
// Deps plus dataflow (input tensors' producers), deduplicated and
// sorted. The executor uses this to count unfinished dependencies.
func (g *Graph) Preds() [][]OpID { return g.edges() }

// edges builds the full predecessor lists: explicit Deps plus dataflow
// (input tensors' producers).
func (g *Graph) edges() [][]OpID {
	prod := g.producers()
	preds := make([][]OpID, len(g.ops))
	for i := range g.ops {
		op := &g.ops[i]
		seen := make(map[OpID]bool, len(op.Deps)+len(op.Inputs))
		add := func(p OpID) {
			if p >= 0 && p != op.ID && !seen[p] {
				seen[p] = true
				preds[i] = append(preds[i], p)
			}
		}
		for _, d := range op.Deps {
			add(d)
		}
		for _, in := range op.Inputs {
			add(prod[in])
		}
		sort.Slice(preds[i], func(a, b int) bool { return preds[i][a] < preds[i][b] })
	}
	return preds
}

// CycleError reports a dependency cycle found during topological sorting.
type CycleError struct {
	// Remaining holds the op IDs that could not be ordered.
	Remaining []OpID
}

func (e *CycleError) Error() string {
	return fmt.Sprintf("graph: dependency cycle among %d operators (first: %v)", len(e.Remaining), e.Remaining[0])
}

// TopoOrder returns a deterministic topological ordering of the ops
// (Kahn's algorithm, ties broken by op ID) or a *CycleError.
func (g *Graph) TopoOrder() ([]OpID, error) {
	if g.topoCache != nil {
		return g.topoCache, nil
	}
	preds := g.edges()
	indeg := make([]int, len(g.ops))
	succs := make([][]OpID, len(g.ops))
	for i, ps := range preds {
		indeg[i] = len(ps)
		for _, p := range ps {
			succs[p] = append(succs[p], OpID(i))
		}
	}
	// Min-heap on op ID implemented as a sorted frontier; counts here
	// are small enough that an O(n log n) insertion approach is fine
	// and keeps the order fully deterministic.
	var frontier []OpID
	push := func(id OpID) {
		i := sort.Search(len(frontier), func(j int) bool { return frontier[j] > id })
		frontier = append(frontier, 0)
		copy(frontier[i+1:], frontier[i:])
		frontier[i] = id
	}
	for i := range g.ops {
		if indeg[i] == 0 {
			frontier = append(frontier, OpID(i))
		}
	}
	order := make([]OpID, 0, len(g.ops))
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		order = append(order, id)
		for _, s := range succs[id] {
			indeg[s]--
			if indeg[s] == 0 {
				push(s)
			}
		}
	}
	if len(order) != len(g.ops) {
		var remaining []OpID
		for i, d := range indeg {
			if d > 0 {
				remaining = append(remaining, OpID(i))
			}
		}
		return nil, &CycleError{Remaining: remaining}
	}
	g.topoCache = order
	return order, nil
}

// Validate checks structural invariants: tensor references in range,
// no self-dependencies, acyclicity, and single-producer tensors.
func (g *Graph) Validate() error {
	seenProducer := make(map[tensor.ID]OpID)
	for i := range g.ops {
		op := &g.ops[i]
		for _, d := range op.Deps {
			if d == op.ID {
				return fmt.Errorf("graph: op %d (%s) depends on itself", op.ID, op.Name)
			}
			if d < 0 || int(d) >= len(g.ops) {
				return fmt.Errorf("graph: op %d (%s) has out-of-range dep %d", op.ID, op.Name, d)
			}
		}
		for _, tid := range append(append([]tensor.ID{}, op.Inputs...), op.Outputs...) {
			if tid < 0 || int(tid) >= g.Tensors.Len() {
				return fmt.Errorf("graph: op %d (%s) references unknown tensor %d", op.ID, op.Name, tid)
			}
		}
		for _, out := range op.Outputs {
			if p, dup := seenProducer[out]; dup && g.ops[p].Kind != Recompute && op.Kind != Recompute && op.Kind != SwapIn {
				return fmt.Errorf("graph: tensor %d produced by both op %d and op %d", out, p, op.ID)
			}
			seenProducer[out] = op.ID
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Use marks where in a schedule a tensor is touched.
type Use struct {
	Op    OpID
	Index int // position of Op in the topological order
}

// Liveness is the result of live-variable analysis over a topological
// order: for each tensor, where it is defined and each place it is used.
type Liveness struct {
	// Def[t] is the order index of the op producing tensor t, or -1
	// for tensors alive at graph entry (parameters, optimizer state).
	Def []int
	// Uses[t] lists consuming ops of tensor t in execution order.
	Uses [][]Use
}

// LastUse returns the order index of the final use of tensor t, or -1
// if t is never consumed.
func (l *Liveness) LastUse(t tensor.ID) int {
	us := l.Uses[t]
	if len(us) == 0 {
		return -1
	}
	return us[len(us)-1].Index
}

// Analyze performs live-variable analysis (paper Sec. III-D performs
// "a live variable analysis [23] to compute the per tensor live
// intervals"). The returned indices refer to positions in order.
func (g *Graph) Analyze(order []OpID) *Liveness {
	l := &Liveness{
		Def:  make([]int, g.Tensors.Len()),
		Uses: make([][]Use, g.Tensors.Len()),
	}
	for i := range l.Def {
		l.Def[i] = -1
	}
	pos := make([]int, len(g.ops))
	for i, id := range order {
		pos[id] = i
	}
	for _, id := range order {
		op := &g.ops[id]
		for _, out := range op.Outputs {
			if l.Def[out] == -1 {
				l.Def[out] = pos[id]
			}
		}
		for _, in := range op.Inputs {
			l.Uses[in] = append(l.Uses[in], Use{Op: id, Index: pos[id]})
		}
	}
	for t := range l.Uses {
		sort.Slice(l.Uses[t], func(a, b int) bool { return l.Uses[t][a].Index < l.Uses[t][b].Index })
	}
	return l
}
