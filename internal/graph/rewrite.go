package graph

import (
	"fmt"

	"mpress/internal/tensor"
	"mpress/internal/units"
)

// SwapPair identifies the two operators created by InstrumentSwap.
type SwapPair struct {
	Out OpID
	In  OpID
}

// InstrumentSwap rewrites the graph to evict tensor t after op
// `afterOp` finishes and restore it before op `beforeOp` starts.
//
// `gate` controls when the restore may begin: the swap-in runs only
// after gate completes, so passing beforeOp's predecessor in the
// device schedule makes the transfer overlap that predecessor — the
// just-in-time prefetch the paper's executor implements with separate
// swap streams (Sec. III-E). Pass gate < 0 to allow the swap-in to
// start as soon as the swap-out finishes (eager restore).
//
// This is the rewriter primitive for both GPU-CPU swap and D2D swap;
// the executor decides the route by whether the op appears in its
// D2DRoutes table. route only labels the op names for reports.
func (g *Graph) InstrumentSwap(t tensor.ID, afterOp, beforeOp, gate OpID, route string) SwapPair {
	tn := g.Tensors.Get(t)
	stage := g.ops[afterOp].Stage
	out := g.AddOp(Op{
		Name:       fmt.Sprintf("%s-swapout:%s", route, tn.Name),
		Kind:       SwapOut,
		Stage:      stage,
		Layer:      tn.Layer,
		Microbatch: g.ops[afterOp].Microbatch,
		MoveBytes:  tn.Size,
		Subject:    t,
		Deps:       []OpID{afterOp},
	})
	deps := []OpID{out}
	if gate >= 0 {
		deps = append(deps, gate)
	}
	in := g.AddOp(Op{
		Name:       fmt.Sprintf("%s-swapin:%s", route, tn.Name),
		Kind:       SwapIn,
		Stage:      stage,
		Layer:      tn.Layer,
		Microbatch: g.ops[beforeOp].Microbatch,
		MoveBytes:  tn.Size,
		Subject:    t,
		Deps:       deps,
	})
	g.AddDep(beforeOp, in)
	return SwapPair{Out: out, In: in}
}

// InstrumentSwapIn adds a standalone swap-in restoring tensor t before
// op beforeOp, gated on gate (see InstrumentSwap). It is used for
// persistent tensors that start the iteration parked in host memory
// (exec's InitiallySwapped set).
func (g *Graph) InstrumentSwapIn(t tensor.ID, beforeOp, gate OpID, route string) OpID {
	tn := g.Tensors.Get(t)
	var deps []OpID
	if gate >= 0 {
		deps = append(deps, gate)
	}
	in := g.AddOp(Op{
		Name:       fmt.Sprintf("%s-swapin:%s", route, tn.Name),
		Kind:       SwapIn,
		Stage:      tn.Stage,
		Layer:      tn.Layer,
		Microbatch: g.ops[beforeOp].Microbatch,
		MoveBytes:  tn.Size,
		Subject:    t,
		Deps:       deps,
	})
	g.AddDep(beforeOp, in)
	return in
}

// InstrumentSwapOut adds a standalone swap-out evicting tensor t after
// op afterOp with no matching swap-in (the tensor stays off-GPU until
// the run ends or a later InstrumentSwapIn restores it).
func (g *Graph) InstrumentSwapOut(t tensor.ID, afterOp OpID, route string) OpID {
	tn := g.Tensors.Get(t)
	return g.AddOp(Op{
		Name:       fmt.Sprintf("%s-swapout:%s", route, tn.Name),
		Kind:       SwapOut,
		Stage:      tn.Stage,
		Layer:      tn.Layer,
		Microbatch: g.ops[afterOp].Microbatch,
		MoveBytes:  tn.Size,
		Subject:    t,
		Deps:       []OpID{afterOp},
	})
}

// RecomputePair identifies the two operators created by
// InstrumentRecompute.
type RecomputePair struct {
	Drop      OpID
	Recompute OpID
}

// InstrumentRecompute rewrites the graph to drop activation t after op
// `afterOp` and re-run the producing forward computation (costing
// flops) before op `beforeOp` consumes it (paper Sec. II-D).
//
// As with InstrumentSwap, `gate` delays the recomputation until the
// consumer's predecessor completes so the tensor is not rematerialized
// long before it is needed; pass gate < 0 for eager rematerialization.
func (g *Graph) InstrumentRecompute(t tensor.ID, afterOp, beforeOp, gate OpID, flops units.FLOPs) RecomputePair {
	tn := g.Tensors.Get(t)
	if !tn.Class.Recomputable() {
		panic(fmt.Sprintf("graph: cannot recompute %s tensor %q", tn.Class, tn.Name))
	}
	stage := g.ops[afterOp].Stage
	drop := g.AddOp(Op{
		Name:       "drop:" + tn.Name,
		Kind:       Drop,
		Stage:      stage,
		Layer:      tn.Layer,
		Microbatch: g.ops[afterOp].Microbatch,
		MoveBytes:  tn.Size,
		Subject:    t,
		Deps:       []OpID{afterOp},
	})
	deps := []OpID{drop}
	if gate >= 0 {
		deps = append(deps, gate)
	}
	rec := g.AddOp(Op{
		Name:       "recompute:" + tn.Name,
		Kind:       Recompute,
		Stage:      stage,
		Layer:      tn.Layer,
		Microbatch: g.ops[beforeOp].Microbatch,
		FLOPs:      flops,
		MoveBytes:  tn.Size,
		Subject:    t,
		Outputs:    []tensor.ID{t},
		Deps:       deps,
	})
	g.AddDep(beforeOp, rec)
	return RecomputePair{Drop: drop, Recompute: rec}
}
