package plan

import (
	"bytes"
	"strings"
	"testing"

	"mpress/internal/exec"
	"mpress/internal/hw"
	"mpress/internal/pipeline"
)

func TestPlanSaveLoadRoundTrip(t *testing.T) {
	build := smallJob(t, pipeline.PipeDream)
	peaks := measure(t, build, hw.DGX1())
	topo := topoWithCapacity(capacityBetween(t, peaks))
	original, err := Compute(Options{Topo: topo, Build: build, Allowed: AllMechanisms()})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := original.Save(&buf, "smalljob@test"); err != nil {
		t.Fatal(err)
	}
	loaded, job, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if job != "smalljob@test" {
		t.Errorf("job label = %q", job)
	}
	if len(loaded.Act) != len(original.Act) {
		t.Fatalf("acts: %d vs %d", len(loaded.Act), len(original.Act))
	}
	for id, mech := range original.Act {
		if loaded.Act[id] != mech {
			t.Fatalf("tensor %d: %v vs %v", id, mech, loaded.Act[id])
		}
	}
	for id, parts := range original.Parts {
		lp := loaded.Parts[id]
		if len(lp) != len(parts) {
			t.Fatalf("tensor %d stripes differ", id)
		}
		for i := range parts {
			if lp[i] != parts[i] {
				t.Fatalf("tensor %d stripe %d: %+v vs %+v", id, i, parts[i], lp[i])
			}
		}
	}
	if len(loaded.Mapping) != len(original.Mapping) {
		t.Fatal("mapping lost")
	}

	// The loaded plan must drive a run identically to the original.
	runWith := func(pl *Plan) *exec.Result {
		b, err := build()
		if err != nil {
			t.Fatal(err)
		}
		opts, err := Apply(pl, b, topo)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec.Run(*opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := runWith(original), runWith(loaded)
	if r1.Duration != r2.Duration {
		t.Errorf("durations differ: %v vs %v", r1.Duration, r2.Duration)
	}
	if (r1.OOM == nil) != (r2.OOM == nil) {
		t.Error("OOM outcomes differ")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := Load(strings.NewReader(`{"version": 99, "plan": {}}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, _, err := Load(strings.NewReader(`{"version": 1}`)); err == nil {
		t.Error("empty file accepted")
	}
}

func TestLoadFillsNilMaps(t *testing.T) {
	pl, _, err := Load(strings.NewReader(`{"version": 1, "plan": {"Mapping": [0, 1]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if pl.Act == nil || pl.Parts == nil || pl.HostPersist == nil {
		t.Error("maps must be usable after load")
	}
}
