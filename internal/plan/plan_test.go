package plan

import (
	"testing"

	"mpress/internal/exec"
	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// smallJob returns a build factory for an 8-block model over 4 stages
// of an 8-GPU server, sized so stage 0 overflows `capacity` while
// later stages (and the four unused GPUs) have spare memory.
func smallJob(t *testing.T, kind pipeline.ScheduleKind) func() (*pipeline.Built, error) {
	t.Helper()
	cfg := model.Config{
		Name: "Small", Arch: model.GPT,
		Layers: 8, Hidden: 2048, Heads: 32, SeqLen: 512, Vocab: 8192,
		DType: tensor.FP16,
	}
	prec := model.MixedAdam()
	part, err := pipeline.PartitionModel(cfg, 4, pipeline.ComputeBalanced, kind, prec, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return func() (*pipeline.Built, error) {
		return pipeline.Build(pipeline.BuildConfig{
			Model: cfg, Prec: prec, Part: part, Kind: kind,
			MicrobatchSize: 4, Microbatches: 4, Minibatches: 2,
		})
	}
}

// topoWithCapacity returns a DGX-1 with overridden per-GPU memory.
func topoWithCapacity(capGiB float64) *hw.Topology {
	topo := hw.DGX1()
	topo.GPU.Memory = units.GB(capGiB)
	return topo
}

// measure returns the unbounded per-stage peaks of the job.
func measure(t *testing.T, build func() (*pipeline.Built, error), topo *hw.Topology) []units.Bytes {
	t.Helper()
	b, err := build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := exec.Run(exec.Options{Topo: topo, Built: b, Mapping: exec.IdentityMapping(4), Unbounded: true})
	if err != nil {
		t.Fatal(err)
	}
	peaks := make([]units.Bytes, 4)
	for s := 0; s < 4; s++ {
		peaks[s] = r.GPUs[s].Peak
	}
	return peaks
}

// capacityBetween picks a capacity between the max and second-max
// stage peaks so exactly the top stage overflows.
func capacityBetween(t *testing.T, peaks []units.Bytes) float64 {
	t.Helper()
	max, second := units.Bytes(0), units.Bytes(0)
	for _, p := range peaks {
		if p > max {
			second = max
			max = p
		} else if p > second {
			second = p
		}
	}
	if max == second {
		t.Fatal("degenerate peaks")
	}
	return (float64(max)*0.7 + float64(second)*0.3) / float64(units.GiB)
}

func runPlanned(t *testing.T, pl *Plan, build func() (*pipeline.Built, error), topo *hw.Topology) *exec.Result {
	t.Helper()
	b, err := build()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := Apply(pl, b, topo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(*opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFullPlannerRescuesOOM(t *testing.T) {
	build := smallJob(t, pipeline.PipeDream)
	peaks := measure(t, build, hw.DGX1())
	topo := topoWithCapacity(capacityBetween(t, peaks))

	// Sanity: the plain job must OOM at this capacity.
	b, _ := build()
	plain, err := exec.Run(exec.Options{Topo: topo, Built: b, Mapping: exec.IdentityMapping(4)})
	if err != nil {
		t.Fatal(err)
	}
	if plain.OOM == nil {
		t.Fatal("test setup: plain job should OOM")
	}

	pl, err := Compute(Options{Topo: topo, Build: build, Allowed: AllMechanisms()})
	if err != nil {
		t.Fatal(err)
	}
	res := runPlanned(t, pl, build, topo)
	if res.OOM != nil {
		t.Fatalf("planned job still OOMs: %v", res.OOM)
	}
	if len(pl.Act)+len(pl.HostPersist) == 0 {
		t.Error("plan is empty despite overflow")
	}
	if pl.Emulations == 0 {
		t.Error("planner never consulted the emulator")
	}
	var total units.Bytes
	for _, v := range pl.SavedByMech {
		total += v
	}
	if total <= 0 {
		t.Error("no savings recorded")
	}
}

func TestPlannerNoOverflowMakesEmptyPlan(t *testing.T) {
	build := smallJob(t, pipeline.DAPPLE)
	pl, err := Compute(Options{Topo: hw.DGX1(), Build: build, Allowed: AllMechanisms()})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Act) != 0 || len(pl.HostPersist) != 0 {
		t.Errorf("plan not empty: %d acts, %d persists", len(pl.Act), len(pl.HostPersist))
	}
	res := runPlanned(t, pl, build, hw.DGX1())
	if res.OOM != nil {
		t.Fatal(res.OOM)
	}
}

func TestRecomputeOnlyPlanner(t *testing.T) {
	build := smallJob(t, pipeline.PipeDream)
	peaks := measure(t, build, hw.DGX1())
	topo := topoWithCapacity(capacityBetween(t, peaks))
	pl, err := Compute(Options{
		Topo: topo, Build: build,
		Allowed: Allowed{Recompute: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, mech := range pl.Act {
		if mech != MechRecompute {
			t.Errorf("tensor %d uses %v in recompute-only mode", id, mech)
		}
	}
	if len(pl.HostPersist) != 0 {
		t.Error("recompute-only plan parked persistent tensors")
	}
	res := runPlanned(t, pl, build, topo)
	if res.OOM != nil {
		t.Fatalf("recompute-only plan OOMs on a mild overflow: %v", res.OOM)
	}
}

func TestD2DOnlyPlanner(t *testing.T) {
	build := smallJob(t, pipeline.PipeDream)
	peaks := measure(t, build, hw.DGX1())
	topo := topoWithCapacity(capacityBetween(t, peaks))
	pl, err := Compute(Options{
		Topo: topo, Build: build,
		Allowed: Allowed{D2D: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, mech := range pl.Act {
		if mech != MechD2D {
			t.Errorf("tensor %d uses %v in D2D-only mode", id, mech)
		}
		if len(pl.Parts[id]) == 0 {
			t.Errorf("tensor %d has no stripes", id)
		}
	}
	res := runPlanned(t, pl, build, topo)
	if res.OOM != nil {
		t.Fatalf("D2D-only plan OOMs on a mild overflow: %v", res.OOM)
	}
	if pl.SavedByMech[MechD2D] <= 0 {
		t.Error("no D2D savings recorded")
	}
}

func TestD2DOnlyFailsUnderHeavyPressure(t *testing.T) {
	// When every stage overflows, spare memory vanishes and the
	// D2D-only variant cannot save the job (the red crosses of
	// Fig. 7, "Large size").
	build := smallJob(t, pipeline.PipeDream)
	peaks := measure(t, build, hw.DGX1())
	var min units.Bytes = peaks[0]
	for _, p := range peaks {
		if p < min {
			min = p
		}
	}
	topo := topoWithCapacity(float64(min) * 0.98 / float64(units.GiB))
	pl, err := Compute(Options{
		Topo: topo, Build: build,
		Allowed:        Allowed{D2D: true},
		MaxRefinements: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runPlanned(t, pl, build, topo)
	if res.OOM == nil {
		t.Error("D2D-only should not survive when no stage has spare memory")
	}
}

func TestFullBeatsHostSwapOnly(t *testing.T) {
	build := smallJob(t, pipeline.PipeDream)
	peaks := measure(t, build, hw.DGX1())
	topo := topoWithCapacity(capacityBetween(t, peaks))

	full, err := Compute(Options{Topo: topo, Build: build, Allowed: AllMechanisms()})
	if err != nil {
		t.Fatal(err)
	}
	swapOnly, err := Compute(Options{Topo: topo, Build: build, Allowed: Allowed{HostSwap: true}})
	if err != nil {
		t.Fatal(err)
	}
	rFull := runPlanned(t, full, build, topo)
	rSwap := runPlanned(t, swapOnly, build, topo)
	if rFull.OOM != nil || rSwap.OOM != nil {
		t.Fatalf("OOMs: %v / %v", rFull.OOM, rSwap.OOM)
	}
	if rFull.Duration > rSwap.Duration {
		t.Errorf("full MPress (%v) must not lose to GPU-CPU swap only (%v)",
			rFull.Duration, rSwap.Duration)
	}
}

func TestPlanDeterministic(t *testing.T) {
	build := smallJob(t, pipeline.PipeDream)
	peaks := measure(t, build, hw.DGX1())
	topo := topoWithCapacity(capacityBetween(t, peaks))
	a, err := Compute(Options{Topo: topo, Build: build, Allowed: AllMechanisms()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(Options{Topo: topo, Build: build, Allowed: AllMechanisms()})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Act) != len(b.Act) || a.Planned != b.Planned {
		t.Errorf("plans differ: %d/%d acts, %v/%v durations",
			len(a.Act), len(b.Act), a.Planned, b.Planned)
	}
	for id, mech := range a.Act {
		if b.Act[id] != mech {
			t.Fatalf("tensor %d: %v vs %v", id, mech, b.Act[id])
		}
	}
}

func TestDisableMappingSearchKeepsIdentity(t *testing.T) {
	build := smallJob(t, pipeline.PipeDream)
	peaks := measure(t, build, hw.DGX1())
	topo := topoWithCapacity(capacityBetween(t, peaks))
	pl, err := Compute(Options{
		Topo: topo, Build: build, Allowed: AllMechanisms(),
		DisableMappingSearch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for s, g := range pl.Mapping {
		if int(g) != s {
			t.Fatalf("mapping not identity: %v", pl.Mapping)
		}
	}
}

func TestMechanismString(t *testing.T) {
	if MechRecompute.String() != "Recomputation" || MechHostSwap.String() != "GPU-CPU swap" ||
		MechD2D.String() != "D2D swap" || MechNone.String() != "none" {
		t.Error("mechanism names wrong")
	}
}

func TestComputeValidatesOptions(t *testing.T) {
	if _, err := Compute(Options{}); err == nil {
		t.Error("empty options accepted")
	}
}
