// Package plan implements MPress Static's planner (paper Fig. 5 and
// Sec. III-D): decide, for every memory-resident tensor of an
// inter-operator training job, whether to leave it resident, drop and
// recompute it, swap it to host memory over PCIe, or D2D-swap it to a
// light-loaded peer GPU over NVLink — so that every stage fits its GPU
// while the extra delay is minimized.
//
// The algorithm follows the paper's approximated search:
//
//  1. Profile one iteration (live intervals, per-stage peaks).
//  2. Run the Fig. 6 device-mapping search to place overflowing
//     stages next to spare NVLink neighbors.
//  3. Initial assignment: host-swap the extremely long-lived tensors
//     (optimizer states, stashed weight versions), then walk each
//     overflowing stage's blocks from the last layer backwards
//     assigning recomputation where its cost beats the GPU-CPU swap
//     overhead, host-swap otherwise, until the estimated savings cover
//     the overflow.
//  4. Refinement: emulate; on OOM raise the target and retry; then
//     greedily convert the worst-overhead assignments to D2D swap
//     while spare GPU memory lasts, keeping each conversion only if
//     the emulator reports an improvement.
//
// Refinement candidates are evaluated on copy-on-write trial snapshots
// (see refine.go), which lets Options.Workers emulate several
// candidates concurrently while producing byte-identical plans at any
// worker count.
package plan

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"mpress/internal/compaction"
	"mpress/internal/exec"
	"mpress/internal/fabric"
	"mpress/internal/graph"
	"mpress/internal/grid"
	"mpress/internal/hw"
	"mpress/internal/mapping"
	"mpress/internal/pipeline"
	"mpress/internal/profiler"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// Mechanism is one memory-saving technique.
type Mechanism int

const (
	MechNone Mechanism = iota
	MechRecompute
	MechHostSwap
	MechD2D
)

// String returns the mechanism name as used in the paper's tables.
func (m Mechanism) String() string {
	switch m {
	case MechNone:
		return "none"
	case MechRecompute:
		return "Recomputation"
	case MechHostSwap:
		return "GPU-CPU swap"
	case MechD2D:
		return "D2D swap"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// Allowed selects which mechanisms the planner may use — the paper's
// baselines are MPress with subsets disabled.
type Allowed struct {
	Recompute bool
	HostSwap  bool
	D2D       bool
}

// AllMechanisms enables everything (full MPress).
func AllMechanisms() Allowed { return Allowed{Recompute: true, HostSwap: true, D2D: true} }

// Options configures the planner.
type Options struct {
	Topo *hw.Topology
	// Build returns a fresh lowering of the job. Builds are
	// deterministic, so tensor and op IDs are stable across calls;
	// the planner instruments fresh copies for each emulation.
	Build   func() (*pipeline.Built, error)
	Allowed Allowed
	// SafetyMargin widens each stage's savings target to absorb the
	// timing shifts instrumentation itself introduces. Default 512 MiB.
	SafetyMargin units.Bytes
	// MaxRefinements bounds the emulator-feedback loop. Default 6.
	MaxRefinements int
	// DisableMappingSearch keeps the identity stage→GPU mapping
	// (Fig. 9's "default setting" ablation).
	DisableMappingSearch bool
	// DisableStriping routes every D2D swap to a single peer instead
	// of striping across all reachable ones (Fig. 9 ablation).
	DisableStriping bool
	// Workers bounds how many refinement candidates are emulated
	// concurrently (a worker pool over copy-on-write trial snapshots;
	// see refine.go). Plans are byte-identical at any setting — each
	// round's winner is the first improving candidate in rank order,
	// not completion order. Zero or one means sequential.
	Workers int
	// Ctx, when non-nil, cancels planning: each emulator run polls it
	// (see exec.Options.Ctx), so a cancelled sweep abandons the
	// refinement loop mid-emulation.
	Ctx context.Context
}

// groupKey identifies a per-(stage, block) activation group.
type groupKey struct {
	Stage int
	Block int
}

// Plan is the planner's output, applicable to any fresh Built of the
// same job.
type Plan struct {
	Mapping []hw.DeviceID
	// Act assigns a mechanism to individual activation tensors.
	Act map[tensor.ID]Mechanism
	// Parts carries the D2D stripe layout per D2D-swapped tensor.
	Parts map[tensor.ID][]fabric.Part
	// HostPersist marks persistent tensors parked in host memory and
	// restored around their uses.
	HostPersist map[tensor.ID]bool

	// SavedByMech estimates bytes of GPU memory saved per mechanism
	// (the Table IV breakdown); StageRange gives the lowest/highest
	// stage each mechanism was applied to ([2]int{-1,-1} if unused).
	SavedByMech map[Mechanism]units.Bytes
	StageRange  map[Mechanism][2]int

	// Emulations counts the emulator arbitrations planning consumed.
	// The count is defined by the sequential candidate scan — memo
	// hits count, lower-bound prunes do not, and a parallel refinement
	// (Options.Workers > 1) charges exactly the arbitrations the
	// sequential scan would have reached — so it is identical at any
	// worker setting (plans are serialized byte-for-byte, and this
	// field rides along).
	Emulations int
	Baseline   units.Duration
	Planned    units.Duration
}

// Device returns the plane GPU hosting stage s — the grid.Placement
// view over the serialized Mapping slice, which stays the wire format.
func (pl *Plan) Device(s int) hw.DeviceID {
	return grid.Flat(pl.Mapping).GPU(s)
}

// planner carries the working state of one Compute call.
type planner struct {
	o       Options
	built   *pipeline.Built // reference lowering (never instrumented)
	profile *profiler.Profile
	mapRes  *mapping.Result
	spare   compaction.SpareBudget

	slotOf map[tensor.ID]pipeline.SlotKey
	// groups indexes each (stage, block) activation group's instances
	// in microbatch order — precomputed once so the refinement loop's
	// candidate enumeration does not rescan slotOf.
	groups     map[groupKey][]tensor.ID
	inUse      map[groupKey]Mechanism
	plan       *Plan
	targets    []units.Bytes // per-stage savings targets
	emulations int
}

// Compute runs the planner.
func Compute(o Options) (*Plan, error) {
	if o.Topo == nil || o.Build == nil {
		return nil, fmt.Errorf("plan: Topo and Build are required")
	}
	if o.SafetyMargin == 0 {
		o.SafetyMargin = 512 * units.MiB
	}
	if o.MaxRefinements == 0 {
		o.MaxRefinements = 6
	}

	p := &planner{o: o}
	var err error
	if p.built, err = o.Build(); err != nil {
		return nil, err
	}
	if p.profile, err = profiler.Collect(o.Topo, p.built, nil); err != nil {
		return nil, err
	}

	// Step 2: device mapping (Fig. 6).
	if o.DisableMappingSearch || o.Topo.Switched {
		identity := exec.IdentityMapping(p.built.NumStages())
		if p.mapRes, err = mapping.Search(o.Topo, p.profile.StagePeak); err != nil {
			return nil, err
		}
		p.mapRes.Mapping = identity
		p.mapRes.Spare = spareFromPeaks(o.Topo, identity, p.profile.StagePeak)
	} else {
		if p.mapRes, err = mapping.Search(o.Topo, p.profile.StagePeak); err != nil {
			return nil, err
		}
	}

	p.slotOf = make(map[tensor.ID]pipeline.SlotKey)
	for k, acts := range p.built.Acts {
		for _, id := range acts {
			p.slotOf[id] = k
		}
	}
	p.groups = make(map[groupKey][]tensor.ID)
	for id, k := range p.slotOf {
		if _, ok := p.built.RecomputeFLOPs[id]; !ok {
			continue
		}
		key := groupKey{k.Stage, p.built.Graph.Tensors.Get(id).Layer}
		p.groups[key] = append(p.groups[key], id)
	}
	for _, ids := range p.groups {
		slices.Sort(ids)
	}

	// Per-stage savings targets.
	p.targets = make([]units.Bytes, p.built.NumStages())
	for s, peak := range p.profile.StagePeak {
		if peak > o.Topo.GPU.Memory {
			p.targets[s] = peak - o.Topo.GPU.Memory + o.SafetyMargin
		}
	}

	// Steps 3-4 with OOM-retry.
	res, err := p.assignAndRefine()
	if err != nil {
		return nil, err
	}
	p.plan.Baseline = p.profile.Duration
	p.plan.Planned = res
	p.plan.Emulations = p.emulations
	p.finalizeSummary()
	return p.plan, nil
}

// finalizeSummary recomputes SavedByMech and StageRange from the final
// per-tensor assignment (partial D2D conversions and refinement undos
// make the incremental counters unreliable).
func (p *planner) finalizeSummary() {
	p.plan.SavedByMech = make(map[Mechanism]units.Bytes)
	p.plan.StageRange = map[Mechanism][2]int{
		MechRecompute: {-1, -1}, MechHostSwap: {-1, -1}, MechD2D: {-1, -1},
	}
	b := p.built
	S := b.NumStages()
	for id, mech := range p.plan.Act {
		if mech == MechNone {
			continue
		}
		tn := b.Graph.Tensors.Get(id)
		inflight := b.Cfg.Kind.InFlight(tn.Stage, S, b.Cfg.Microbatches)
		// A group of instances (one per microbatch) jointly reduces
		// the stage's steady residency by size×(inflight-1); divide
		// across the instances so per-tensor sums stay meaningful.
		instances := b.Cfg.Microbatches * b.Cfg.Minibatches
		saved := tn.Size * units.Bytes(inflight-1) / units.Bytes(instances)
		if saved <= 0 {
			saved = tn.Size / units.Bytes(2*instances)
		}
		p.note(mech, tn.Stage, saved)
	}
	for id := range p.plan.HostPersist {
		tn := b.Graph.Tensors.Get(id)
		p.note(MechHostSwap, tn.Stage, tn.Size)
	}
}

// spareFromPeaks derives per-GPU import budgets from measured peaks
// under a fixed mapping.
func spareFromPeaks(topo *hw.Topology, m []hw.DeviceID, peaks []units.Bytes) compaction.SpareBudget {
	spare := make(compaction.SpareBudget)
	hosted := make(map[hw.DeviceID]bool)
	for s, g := range m {
		hosted[g] = true
		if free := topo.GPU.Memory - peaks[s]; free > mapping.SpareMargin {
			spare[g] = free - mapping.SpareMargin
		}
	}
	for g := 0; g < topo.NumGPUs; g++ {
		if id := hw.DeviceID(g); !hosted[id] {
			spare[id] = topo.GPU.Memory - mapping.SpareMargin
		}
	}
	return spare
}

// newPlan resets the working plan.
func (p *planner) newPlan() {
	p.plan = &Plan{
		Mapping:     p.mapRes.Mapping,
		Act:         make(map[tensor.ID]Mechanism),
		Parts:       make(map[tensor.ID][]fabric.Part),
		HostPersist: make(map[tensor.ID]bool),
		SavedByMech: make(map[Mechanism]units.Bytes),
		StageRange: map[Mechanism][2]int{
			MechRecompute: {-1, -1}, MechHostSwap: {-1, -1}, MechD2D: {-1, -1},
		},
	}
	p.inUse = make(map[groupKey]Mechanism)
	p.spare = compaction.SpareBudget(p.mapRes.Spare).Clone()
}

func (p *planner) note(mech Mechanism, stage int, saved units.Bytes) {
	p.plan.SavedByMech[mech] += saved
	r := p.plan.StageRange[mech]
	if r[0] == -1 || stage < r[0] {
		r[0] = stage
	}
	if stage > r[1] {
		r[1] = stage
	}
	p.plan.StageRange[mech] = r
}

// assignAndRefine builds the initial assignment and runs the
// emulator-feedback loop, retrying with larger targets on OOM.
func (p *planner) assignAndRefine() (units.Duration, error) {
	var lastDur units.Duration
	for attempt := 0; ; attempt++ {
		p.newPlan()
		if err := p.initialAssignment(); err != nil {
			return 0, err
		}
		res, err := p.emulate(p.plan)
		if err != nil {
			return 0, err
		}
		if res.OOM == nil {
			lastDur = res.Duration
			break
		}
		if attempt >= p.o.MaxRefinements {
			// Let the caller see the OOM through a final Apply/Run;
			// planning cannot satisfy the job (e.g. D2D-only on a
			// model whose overflow exceeds all spare memory).
			return 0, nil
		}
		// Raise the failing stage's target by the observed deficit.
		g := res.OOM.Device
		var stage = -1
		for s, dev := range p.plan.Mapping {
			if fmt.Sprintf("gpu%d", dev) == g {
				stage = s
				break
			}
		}
		if stage < 0 {
			if !strings.HasPrefix(g, "gpu") {
				// A storage tier (host, NVMe) is exhausted: there is
				// no GPU target to raise, so refinement cannot help.
				// Let the caller see the OOM through a final
				// Apply/Run, like an unsatisfiable job.
				return 0, nil
			}
			return 0, fmt.Errorf("plan: OOM on unmapped device %s", g)
		}
		p.targets[stage] += res.OOM.Requested + 256*units.MiB
	}

	if p.o.Allowed.D2D && (p.o.Allowed.Recompute || p.o.Allowed.HostSwap) {
		d, err := p.refineWithD2D(lastDur)
		if err != nil {
			return 0, err
		}
		lastDur = d
	}
	return lastDur, nil
}

// initialAssignment implements step 3.
func (p *planner) initialAssignment() error {
	b := p.built
	S := b.NumStages()
	kind := b.Cfg.Kind
	rate := p.rate()

	for s := 0; s < S; s++ {
		need := p.targets[s]
		if need <= 0 {
			continue
		}
		// 3a: extremely long-lived persistent tensors first — but only
		// as much as the optimizer window can drain over PCIe. Parking
		// beyond that budget serializes the optimizer step behind the
		// link and costs more than it saves (on fast-compute jobs the
		// paper's Table IV shows GPU-CPU swap contributing only a few
		// percent for exactly this reason).
		if p.o.Allowed.HostSwap {
			parkBudget := p.parkBudget(s)
			for _, id := range b.Persistent[s] {
				if need <= 0 || parkBudget <= 0 {
					break
				}
				tn := b.Graph.Tensors.Get(id)
				if !hostPersistEligible(tn, p.profile) || tn.Size > parkBudget {
					continue
				}
				p.plan.HostPersist[id] = true
				p.note(MechHostSwap, s, tn.Size)
				need -= tn.Size
				parkBudget -= tn.Size
			}
		}
		if need <= 0 {
			continue
		}

		// 3b: activation block groups, last block of the stage first
		// (recompute later layers preferentially, in consecutive runs).
		// GPU-CPU swap is only chosen while the stage's PCIe budget —
		// the bytes one compute slot can drain concurrently with the
		// rest of the stage's traffic — lasts; beyond it, swapping
		// would stall the pipeline and recomputation wins.
		blocks := b.Cfg.Part.Stages[s].Blocks()
		inflight := kind.InFlight(s, S, b.Cfg.Microbatches)
		pcieBudget := units.Bytes(float64(p.o.Topo.PCIeBW) * p.profile.SlotDuration[s].Secondsf() * 0.5)
		for i := len(blocks) - 1; i >= 0 && need > 0; i-- {
			blk := blocks[i]
			mech := p.chooseGroupMech(s, blk, rate)
			if mech == MechNone {
				continue
			}
			if mech == MechHostSwap {
				size := p.groupSize(s, blk)
				if size > pcieBudget {
					if p.o.Allowed.Recompute {
						mech = MechRecompute
					}
				} else {
					pcieBudget -= size
				}
			}
			saved := p.applyGroup(s, blk, mech, inflight)
			need -= saved
		}
		// 3c: if recomputation alone could not cover it, host-swap the
		// remaining long-lived activations of the earliest microbatches.
		if need > 0 && p.o.Allowed.HostSwap {
			for i := len(blocks) - 1; i >= 0 && need > 0; i-- {
				blk := blocks[i]
				if p.inUse[groupKey{s, blk}] == MechRecompute {
					continue
				}
				saved := p.applyGroup(s, blk, MechHostSwap, inflight)
				need -= saved
			}
		}
		// 3d: D2D-only mode (or final shortfall): send groups to peers.
		if need > 0 && p.o.Allowed.D2D {
			for i := len(blocks) - 1; i >= 0 && need > 0; i-- {
				blk := blocks[i]
				if p.inUse[groupKey{s, blk}] != MechNone {
					continue
				}
				saved := p.applyGroupD2D(s, blk)
				need -= saved
			}
		}
		// 3e: last resort — park the remaining eligible persistent
		// tensors past the PCIe budget; slow, but the alternative is
		// certain OOM.
		if need > 0 && p.o.Allowed.HostSwap {
			for _, id := range b.Persistent[s] {
				if need <= 0 {
					break
				}
				tn := b.Graph.Tensors.Get(id)
				if p.plan.HostPersist[id] || !hostPersistEligible(tn, p.profile) {
					continue
				}
				p.plan.HostPersist[id] = true
				p.note(MechHostSwap, s, tn.Size)
				need -= tn.Size
			}
		}
	}
	return nil
}

// parkBudget returns how many persistent bytes stage s can round-trip
// over PCIe inside the optimizer step's idle window without extending
// the iteration: half the bytes the window can move (out and back).
func (p *planner) parkBudget(s int) units.Bytes {
	// The optimizer window is the gap between a stage's consecutive
	// optimizer uses — approximate it with the stage's share of the
	// profiled iteration per minibatch.
	gap := p.profile.Duration / units.Duration(p.built.Cfg.Minibatches)
	return units.Bytes(float64(p.o.Topo.PCIeBW) * gap.Secondsf() / 2)
}

// rate returns the compute rate matching the job's precision.
func (p *planner) rate() units.FLOPSRate {
	if p.built.Cfg.Model.DType == tensor.FP32 {
		return p.o.Topo.GPU.EffectiveFP32()
	}
	return p.o.Topo.GPU.EffectiveFP16()
}

// hostPersistEligible accepts persistent tensors whose every use gap
// is long (optimizer states, stashed versions) — never gradients or
// live parameters, which are touched every microbatch.
func hostPersistEligible(tn *tensor.Tensor, prof *profiler.Profile) bool {
	switch tn.Class {
	case tensor.OptimizerState:
		return true
	case tensor.Parameter:
		// Stashed versions have no uses at all.
		return len(prof.Stats[tn.ID].Windows) == 0
	default:
		return false
	}
}

// chooseGroupMech compares mechanisms for one block group using the
// paper's Table III logic on the group's median live interval.
func (p *planner) chooseGroupMech(stage, blk int, rate units.FLOPSRate) Mechanism {
	live := p.groupLive(stage, blk)
	ids := p.groupTensors(stage, blk)
	if len(ids) == 0 {
		return MechNone
	}
	sample := ids[0]
	size := p.built.Graph.Tensors.Get(sample).Size
	recompute := units.MaxDuration
	if p.o.Allowed.Recompute {
		recompute = compaction.RecomputeCost(p.built.RecomputeFLOPs[sample], rate)
	}
	hostswap := units.MaxDuration
	if p.o.Allowed.HostSwap {
		hostswap = compaction.Overhead(compaction.HostSwapCost(p.o.Topo, size), live)
	}
	switch {
	case recompute == units.MaxDuration && hostswap == units.MaxDuration:
		return MechNone
	case recompute <= hostswap:
		// Ties prefer recomputation: it does not consume the scarce
		// spare GPU memory (paper's t3 reasoning).
		return MechRecompute
	default:
		return MechHostSwap
	}
}

// groupLive returns the median live interval across the group's
// instances.
func (p *planner) groupLive(stage, blk int) units.Duration {
	var gaps []units.Duration
	for _, id := range p.groupTensors(stage, blk) {
		if w := p.profile.Stats[id].LongestWindow(); w.From >= 0 {
			gaps = append(gaps, w.Gap)
		}
	}
	if len(gaps) == 0 {
		return 0
	}
	slices.Sort(gaps)
	return gaps[len(gaps)/2]
}

// groupSize returns the per-instance byte size of a block group.
func (p *planner) groupSize(stage, blk int) units.Bytes {
	ids := p.groupTensors(stage, blk)
	if len(ids) == 0 {
		return 0
	}
	return p.built.Graph.Tensors.Get(ids[0]).Size
}

// groupTensors lists the group's activation instances in microbatch
// order. The returned slice aliases the precomputed index and must not
// be mutated.
func (p *planner) groupTensors(stage, blk int) []tensor.ID {
	return p.groups[groupKey{stage, blk}]
}

// applyGroup assigns mech to every instance of the group and returns
// the estimated stage saving: one instance stays transiently resident,
// the rest of the in-flight copies are gone.
func (p *planner) applyGroup(stage, blk int, mech Mechanism, inflight int) units.Bytes {
	ids := p.groupTensors(stage, blk)
	if len(ids) == 0 {
		return 0
	}
	for _, id := range ids {
		p.plan.Act[id] = mech
	}
	p.inUse[groupKey{stage, blk}] = mech
	size := p.built.Graph.Tensors.Get(ids[0]).Size
	saved := size * units.Bytes(inflight-1)
	if saved <= 0 {
		saved = size / 2
	}
	p.note(mech, stage, saved)
	return saved
}

// applyGroupD2D assigns D2D to the group, planning stripes for every
// instance that can coexist (in-flight count) against the spare
// budget. Returns the estimated saving (zero if spare is exhausted).
func (p *planner) applyGroupD2D(stage, blk int) units.Bytes {
	ids := p.groupTensors(stage, blk)
	if len(ids) == 0 {
		return 0
	}
	b := p.built
	kind := b.Cfg.Kind
	inflight := kind.InFlight(stage, b.NumStages(), b.Cfg.Microbatches)
	src := p.plan.Device(stage)

	// Every concurrently swapped-out instance occupies peer memory;
	// budget one slot per in-flight copy and reuse the layouts
	// round-robin across microbatches.
	size := b.Graph.Tensors.Get(ids[0]).Size
	layouts := make([][]fabric.Part, 0, inflight)
	for i := 0; i < inflight; i++ {
		parts := p.planStripes(p.spare, src, size)
		if parts == nil {
			for _, l := range layouts {
				compaction.UnplanStripes(p.spare, l)
			}
			return 0
		}
		layouts = append(layouts, parts)
	}
	for i, id := range ids {
		p.plan.Act[id] = MechD2D
		p.plan.Parts[id] = layouts[i%len(layouts)]
	}
	p.inUse[groupKey{stage, blk}] = MechD2D
	saved := size * units.Bytes(inflight-1)
	if saved <= 0 {
		saved = size / 2
	}
	p.note(MechD2D, stage, saved)
	return saved
}

// planStripes honors the DisableStriping ablation. It debits the given
// budget (the planner's own, or a trial snapshot's clone), which is
// what lets concurrent refinement trials plan stripes independently.
func (p *planner) planStripes(budget compaction.SpareBudget, src hw.DeviceID, size units.Bytes) []fabric.Part {
	if !p.o.DisableStriping {
		return compaction.PlanStripes(p.o.Topo, src, size, budget)
	}
	// Single-peer route: the reachable neighbor with the most spare.
	var best hw.DeviceID = -1
	var bestAvail units.Bytes
	for _, nb := range p.o.Topo.NVLinkNeighbors(src) {
		if budget[nb] > bestAvail {
			best, bestAvail = nb, budget[nb]
		}
	}
	if best < 0 || bestAvail < size {
		return nil
	}
	budget[best] -= size
	return compaction.SingleStripe(best, size)
}

// swapWindows computes, per stage, how many swapped instance-sets may
// be in flight (allocated but not yet drained) before the forward must
// wait, and whether restores must strictly serialize behind evictions
// (only one evicted instance fits at a time).
func swapWindows(pl *Plan, b *pipeline.Built, topo *hw.Topology, slotOf map[tensor.ID]pipeline.SlotKey) ([]int, []bool) {
	S := b.NumStages()
	evictedPerMB := make([]units.Bytes, S)    // bytes leaving per microbatch (hostswap + d2d)
	recomputedPerMB := make([]units.Bytes, S) // bytes dropped and rematerialized per microbatch
	retainedPerMB := make([]units.Bytes, S)   // activation bytes kept resident per microbatch
	persistent := make([]units.Bytes, S)      // resident persistent state
	counted := make(map[pipeline.SlotKey]bool)
	for s := 0; s < S; s++ {
		for _, id := range b.Persistent[s] {
			if !pl.HostPersist[id] {
				persistent[s] += b.Graph.Tensors.Get(id).Size
			}
		}
	}
	// Use microbatch 0's slots as the representative instance set.
	for k, acts := range b.Acts {
		if k.Microbatch != 0 || counted[k] {
			continue
		}
		counted[k] = true
		for _, id := range acts {
			switch m, ok := pl.Act[id]; {
			case ok && m == MechRecompute:
				recomputedPerMB[k.Stage] += b.Graph.Tensors.Get(id).Size
			case ok && m != MechNone:
				evictedPerMB[k.Stage] += b.Graph.Tensors.Get(id).Size
			default:
				retainedPerMB[k.Stage] += b.Graph.Tensors.Get(id).Size
			}
		}
		if in, ok := b.BoundIn[k]; ok {
			retainedPerMB[k.Stage] += b.Graph.Tensors.Get(in).Size
		}
	}
	windows := make([]int, S)
	serialize := make([]bool, S)
	for s := 0; s < S; s++ {
		inflight := b.Cfg.Kind.InFlight(s, S, b.Cfg.Microbatches)
		windows[s] = inflight // no constraint when nothing is evicted
		if evictedPerMB[s] == 0 {
			continue
		}
		avail := topo.GPU.Memory - pipeline.RuntimeReserve - persistent[s] -
			retainedPerMB[s]*units.Bytes(inflight) - 512*units.MiB
		// A restore rematerializes the whole instance: the recomputed
		// blocks reallocate alongside the swapped-in ones.
		instance := evictedPerMB[s] + recomputedPerMB[s]
		// At F(m)'s dispatch, instances m-W+1 .. m-1 may still be
		// draining while the full current instance is resident:
		// avail ≥ instance + (W-1)·evicted.
		w := 1
		if headroom := avail - instance; headroom > 0 {
			w += int(headroom / evictedPerMB[s])
		}
		if w > inflight {
			w = inflight
		}
		windows[s] = w
		// A prefetching restore overlaps the preceding forward's full
		// instance; if both cannot coexist with the drain backlog,
		// restores must strictly follow the drains.
		if 2*instance+units.Bytes(w-1)*evictedPerMB[s] > avail {
			serialize[s] = true
			windows[s] = 1
		}
	}
	return windows, serialize
}

// Apply instruments a fresh Built with the plan and assembles the
// executor options. The Built must come from the same BuildConfig the
// plan was computed for (tensor and op IDs are positional).
func Apply(pl *Plan, b *pipeline.Built, topo *hw.Topology) (*exec.Options, error) {
	g := b.Graph
	opts := &exec.Options{
		Topo:             topo,
		Built:            b,
		Mapping:          pl.Mapping,
		D2DRoutes:        make(map[graph.OpID][]fabric.Part),
		InitiallySwapped: make(map[tensor.ID]bool),
	}

	slotOf := make(map[tensor.ID]pipeline.SlotKey)
	for k, acts := range b.Acts {
		for _, id := range acts {
			slotOf[id] = k
		}
	}

	// Activation instrumentation.
	actIDs := make([]tensor.ID, 0, len(pl.Act))
	for id := range pl.Act {
		actIDs = append(actIDs, id)
	}
	slices.Sort(actIDs)
	swapOuts := make(map[tensor.ID]graph.OpID)
	swapIns := make(map[tensor.ID]graph.OpID)
	for _, id := range actIDs {
		mech := pl.Act[id]
		k, ok := slotOf[id]
		if !ok {
			return nil, fmt.Errorf("plan: tensor %d is not an activation of this build", id)
		}
		after := b.FwOps[k]
		before := b.BwOps[k]
		gate := b.PrevOnStage[before]
		switch mech {
		case MechRecompute:
			fl, ok := b.RecomputeFLOPs[id]
			if !ok {
				return nil, fmt.Errorf("plan: tensor %d is not recomputable", id)
			}
			g.InstrumentRecompute(id, after, before, gate, fl)
		case MechHostSwap:
			pair := g.InstrumentSwap(id, after, before, gate, "h2d")
			swapOuts[id] = pair.Out
			swapIns[id] = pair.In
		case MechD2D:
			parts := pl.Parts[id]
			if len(parts) == 0 {
				return nil, fmt.Errorf("plan: D2D tensor %d has no stripes", id)
			}
			pair := g.InstrumentSwap(id, after, before, gate, "d2d")
			opts.D2DRoutes[pair.Out] = parts
			opts.D2DRoutes[pair.In] = parts
			swapOuts[id] = pair.Out
			swapIns[id] = pair.In
		}
	}

	// Swap throttling: the forward of microbatch m+W may not start
	// until microbatch m's swap-outs have drained — the credit scheme
	// swap libraries use to bound in-flight evicted copies. Without it
	// a slow PCIe drain lets evicted instances pile up and the job
	// dies of the very OOM the swap was meant to prevent. The window
	// W is per stage: how many evicted instance-sets fit in the memory
	// left after the reserve, resident persistent state and retained
	// activations.
	windows, serialize := swapWindows(pl, b, topo, slotOf)
	outsBySlot := make(map[pipeline.SlotKey][]graph.OpID)
	for id, out := range swapOuts {
		k := slotOf[id]
		outsBySlot[k] = append(outsBySlot[k], out)
		w := windows[k.Stage]
		next := pipeline.SlotKey{Stage: k.Stage, Microbatch: k.Microbatch + w}
		if fw, ok := b.FwOps[next]; ok {
			g.AddDep(fw, out)
		}
	}
	// Strict mode: the swap-in restoring microbatch m may only begin
	// once the forward instance just ahead of B(m) in the stage order
	// has fully drained, keeping a single evicted instance resident.
	for id, in := range swapIns {
		k := slotOf[id]
		if !serialize[k.Stage] {
			continue
		}
		prev := b.PrevOnStage[b.BwOps[k]]
		if prev < 0 || g.Op(prev).Kind != graph.Forward {
			continue
		}
		prevSlot := pipeline.SlotKey{Stage: k.Stage, Microbatch: g.Op(prev).Microbatch}
		for _, out := range outsBySlot[prevSlot] {
			g.AddDep(in, out)
		}
	}

	// Persistent host-parking: swap in around each use.
	persIDs := make([]tensor.ID, 0, len(pl.HostPersist))
	for id := range pl.HostPersist {
		persIDs = append(persIDs, id)
	}
	slices.Sort(persIDs)
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	live := g.Analyze(order)
	for _, id := range persIDs {
		opts.InitiallySwapped[id] = true
		var prevOut graph.OpID = -1
		for _, u := range live.Uses[id] {
			gate := b.PrevOnStage[u.Op]
			in := g.InstrumentSwapIn(id, u.Op, gate, "h2d")
			if prevOut >= 0 {
				// A restore may only begin once the previous
				// eviction has drained the tensor to the host.
				g.AddDep(in, prevOut)
			}
			prevOut = g.InstrumentSwapOut(id, u.Op, "h2d")
		}
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("plan: instrumented graph invalid: %w", err)
	}
	return opts, nil
}
