package plan

import (
	"testing"

	"mpress/internal/hw"
	"mpress/internal/pipeline"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// TestParkingRespectsPCIeBudget: with a crippled PCIe link, the
// planner must park almost nothing (the budget is proportional to
// link bandwidth), falling back to other mechanisms.
func TestParkingRespectsPCIeBudget(t *testing.T) {
	build := smallJob(t, pipeline.PipeDream)
	peaks := measure(t, build, hw.DGX1())
	capGiB := capacityBetween(t, peaks)

	fast := topoWithCapacity(capGiB)
	slow := topoWithCapacity(capGiB)
	slow.PCIeBW = units.GBps(0.05)

	pf, err := Compute(Options{Topo: fast, Build: build, Allowed: AllMechanisms()})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Compute(Options{Topo: slow, Build: build, Allowed: AllMechanisms()})
	if err != nil {
		t.Fatal(err)
	}
	parkedBytes := func(p *Plan, b func() (*pipeline.Built, error)) units.Bytes {
		built, err := b()
		if err != nil {
			t.Fatal(err)
		}
		var total units.Bytes
		for id := range p.HostPersist {
			total += built.Graph.Tensors.Get(id).Size
		}
		return total
	}
	f := parkedBytes(pf, build)
	s := parkedBytes(ps, build)
	if s > f {
		t.Errorf("slow PCIe parked more (%v) than fast (%v)", s, f)
	}
}

// TestHostPersistNeverTouchesGradsOrLiveParams: eligibility is
// restricted to optimizer states and stashed versions.
func TestHostPersistNeverTouchesGradsOrLiveParams(t *testing.T) {
	build := smallJob(t, pipeline.PipeDream)
	peaks := measure(t, build, hw.DGX1())
	topo := topoWithCapacity(capacityBetween(t, peaks))
	pl, err := Compute(Options{Topo: topo, Build: build, Allowed: AllMechanisms()})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := build()
	for id := range pl.HostPersist {
		tn := b.Graph.Tensors.Get(id)
		switch tn.Class {
		case tensor.OptimizerState:
		case tensor.Parameter:
			// Only stashed versions (no uses) may park.
			order, _ := b.Graph.TopoOrder()
			if len(b.Graph.Analyze(order).Uses[id]) != 0 {
				t.Errorf("live parameter %s parked", tn.Name)
			}
		default:
			t.Errorf("%s tensor %s parked", tn.Class, tn.Name)
		}
	}
}

// TestD2DStripesStayWithinSpare: the planned stripes of every tensor
// target NVLink neighbors of its stage's GPU.
func TestD2DStripesStayWithinSpare(t *testing.T) {
	build := smallJob(t, pipeline.PipeDream)
	peaks := measure(t, build, hw.DGX1())
	topo := topoWithCapacity(capacityBetween(t, peaks))
	pl, err := Compute(Options{Topo: topo, Build: build, Allowed: Allowed{D2D: true}})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := build()
	for id, parts := range pl.Parts {
		src := pl.Mapping[b.Graph.Tensors.Get(id).Stage]
		for _, p := range parts {
			if topo.LanesBetween(src, p.Peer) == 0 {
				t.Errorf("tensor %d striped to unreachable %v from %v", id, p.Peer, src)
			}
			if p.Peer == src {
				t.Errorf("tensor %d striped to its own GPU", id)
			}
		}
	}
}
