package plan

import (
	"encoding/json"
	"fmt"
	"io"

	"mpress/internal/fabric"
	"mpress/internal/tensor"
)

// fileVersion guards the serialized plan format.
const fileVersion = 1

// planFile is the on-disk representation of a Plan. MPress Static runs
// offline (paper Sec. III-B), so its output — the memory-saving plan —
// is a persistable artifact that the runtime loads for the actual
// multi-day training job.
type planFile struct {
	Version int    `json:"version"`
	Job     string `json:"job,omitempty"`
	Plan    *Plan  `json:"plan"`
}

// Save writes the plan as JSON. job is a free-form label recorded with
// the plan (model/topology/batch fingerprint); plans are positional —
// valid only for a Built from the same BuildConfig — so the label is
// the caller's way to catch mismatched reuse.
func (p *Plan) Save(w io.Writer, job string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(planFile{Version: fileVersion, Job: job, Plan: p})
}

// Load reads a plan saved with Save, returning the plan and its job
// label.
func Load(r io.Reader) (*Plan, string, error) {
	var f planFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, "", fmt.Errorf("plan: decode: %w", err)
	}
	if f.Version != fileVersion {
		return nil, "", fmt.Errorf("plan: unsupported file version %d (want %d)", f.Version, fileVersion)
	}
	if f.Plan == nil {
		return nil, "", fmt.Errorf("plan: file has no plan")
	}
	if f.Plan.Act == nil {
		f.Plan.Act = make(map[tensor.ID]Mechanism)
	}
	if f.Plan.Parts == nil {
		f.Plan.Parts = make(map[tensor.ID][]fabric.Part)
	}
	if f.Plan.HostPersist == nil {
		f.Plan.HostPersist = make(map[tensor.ID]bool)
	}
	return f.Plan, f.Job, nil
}
