package plan

import (
	"bytes"
	"reflect"
	"testing"

	"mpress/internal/fabric"
	"mpress/internal/hw"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// fuzzSeedPlans builds representative plans for the corpus: empty,
// mapping-only, and a fully-populated plan exercising every field the
// file format carries.
func fuzzSeedPlans() []*Plan {
	full := &Plan{
		Mapping: []hw.DeviceID{0, 2, 4, 6},
		Act: map[tensor.ID]Mechanism{
			1: MechRecompute, 2: MechHostSwap, 3: MechD2D,
		},
		Parts: map[tensor.ID][]fabric.Part{
			3: {{Peer: 1, Bytes: 96 * units.MiB}, {Peer: 5, Bytes: 32 * units.MiB}},
		},
		HostPersist: map[tensor.ID]bool{7: true},
		SavedByMech: map[Mechanism]units.Bytes{
			MechRecompute: units.GiB,
			MechD2D:       512 * units.MiB,
		},
		StageRange: map[Mechanism][2]int{
			MechRecompute: {0, 3},
			MechHostSwap:  {-1, -1},
		},
		Emulations: 17,
		Baseline:   3 * units.Second,
		Planned:    2 * units.Second,
	}
	return []*Plan{
		{},
		{Mapping: []hw.DeviceID{3, 1, 0}},
		full,
	}
}

// FuzzPlanRoundTrip checks Load never panics on arbitrary bytes, and
// that any input Load accepts round-trips: Save of the loaded plan
// re-Loads to a deeply-equal plan with the same job label. The plan
// file is a long-lived artifact (planned offline, trained later), so
// drift between what Save writes and what Load reconstructs silently
// corrupts training runs.
func FuzzPlanRoundTrip(f *testing.F) {
	for _, p := range fuzzSeedPlans() {
		var buf bytes.Buffer
		if err := p.Save(&buf, "fuzz/seed"); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":2,"plan":{}}`))
	f.Add([]byte(`{"version":1,"plan":{"Act":{"9":1},"Parts":{"9":[{"Peer":-1,"Bytes":5}]}}}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p1, job1, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := p1.Save(&buf, job1); err != nil {
			t.Fatalf("Save of loaded plan failed: %v", err)
		}
		p2, job2, err := Load(&buf)
		if err != nil {
			t.Fatalf("re-Load of saved plan failed: %v\nfile:\n%s", err, buf.String())
		}
		if job1 != job2 {
			t.Fatalf("job label drifted: %q -> %q", job1, job2)
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("plan drifted through Save/Load:\nfirst:  %#v\nsecond: %#v", p1, p2)
		}
	})
}
