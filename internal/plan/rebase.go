package plan

import (
	"fmt"

	"mpress/internal/fabric"
	"mpress/internal/pipeline"
	"mpress/internal/tensor"
)

// Rebase translates a plan computed against one lowering of a job to
// a lowering that differs only in its minibatch count, so a cached
// plan can serve every Minibatches variant of a sweep point without
// re-running the mapping search and refinement loop.
//
// The translation leans on two builder invariants (see
// pipeline.Build): persistent tensors are created before any per-slot
// tensor and independently of Minibatches, so their IDs carry over
// unchanged; and each slot's activation list is built in a fixed
// block order, so slot {s, m} of the target corresponds index by
// index to slot {s, (q mod M)·micro + r} of the source, where
// q = m / micro, r = m % micro and M is the source minibatch count —
// i.e. minibatch q of the target replays minibatch q mod M of the
// source. Mechanism assignments are uniform across a (stage, block)
// group's instances, so the replay preserves the planner's intent;
// D2D stripe layouts are reused by the corresponding instances (they
// already rotate round-robin within a minibatch).
func Rebase(pl *Plan, from, to *pipeline.Built) (*Plan, error) {
	fc, tc := from.Cfg, to.Cfg
	if from.NumStages() != to.NumStages() || fc.Microbatches != tc.Microbatches {
		return nil, fmt.Errorf("plan: rebase across different pipeline shapes (%d→%d stages, %d→%d microbatches)",
			from.NumStages(), to.NumStages(), fc.Microbatches, tc.Microbatches)
	}
	if fc.Minibatches == tc.Minibatches {
		return pl, nil
	}

	out := &Plan{
		Mapping:     pl.Mapping,
		Act:         make(map[tensor.ID]Mechanism, len(pl.Act)*tc.Minibatches/fc.Minibatches+1),
		Parts:       make(map[tensor.ID][]fabric.Part, len(pl.Parts)),
		HostPersist: make(map[tensor.ID]bool, len(pl.HostPersist)),
		SavedByMech: pl.SavedByMech,
		StageRange:  pl.StageRange,
		Emulations:  pl.Emulations,
		Baseline:    pl.Baseline,
		Planned:     pl.Planned,
	}
	for id := range pl.HostPersist {
		if !to.PersistentSet[id] {
			return nil, fmt.Errorf("plan: rebase: host-parked tensor %d is not persistent in the target build", id)
		}
		out.HostPersist[id] = true
	}

	micro := fc.Microbatches
	for s := 0; s < to.NumStages(); s++ {
		for m := 0; m < to.TotalMicrobatches; m++ {
			q, r := m/micro, m%micro
			src := from.Acts[pipeline.SlotKey{Stage: s, Microbatch: (q%fc.Minibatches)*micro + r}]
			dst := to.Acts[pipeline.SlotKey{Stage: s, Microbatch: m}]
			if len(src) != len(dst) {
				return nil, fmt.Errorf("plan: rebase: slot s%d/mb%d has %d activations, source has %d",
					s, m, len(dst), len(src))
			}
			for i, sid := range src {
				if mech, ok := pl.Act[sid]; ok {
					out.Act[dst[i]] = mech
				}
				if parts, ok := pl.Parts[sid]; ok {
					out.Parts[dst[i]] = parts
				}
			}
		}
	}
	return out, nil
}
