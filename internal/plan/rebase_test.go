package plan

import (
	"testing"

	"mpress/internal/exec"
	"mpress/internal/hw"
	"mpress/internal/model"
	"mpress/internal/pipeline"
	"mpress/internal/tensor"
)

// smallJobAt is smallJob with a configurable minibatch count, for
// exercising Rebase across lowerings of the same sweep point.
func smallJobAt(t *testing.T, kind pipeline.ScheduleKind, minibatches int) func() (*pipeline.Built, error) {
	t.Helper()
	cfg := model.Config{
		Name: "Small", Arch: model.GPT,
		Layers: 8, Hidden: 2048, Heads: 32, SeqLen: 512, Vocab: 8192,
		DType: tensor.FP16,
	}
	prec := model.MixedAdam()
	part, err := pipeline.PartitionModel(cfg, 4, pipeline.ComputeBalanced, kind, prec, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return func() (*pipeline.Built, error) {
		return pipeline.Build(pipeline.BuildConfig{
			Model: cfg, Prec: prec, Part: part, Kind: kind,
			MicrobatchSize: 4, Microbatches: 4, Minibatches: minibatches,
		})
	}
}

func mustBuild(t *testing.T, build func() (*pipeline.Built, error)) *pipeline.Built {
	t.Helper()
	b, err := build()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRebaseSameMinibatchesReturnsSamePlan(t *testing.T) {
	build := smallJobAt(t, pipeline.PipeDream, 2)
	peaks := measure(t, build, hw.DGX1())
	topo := topoWithCapacity(capacityBetween(t, peaks))
	pl, err := Compute(Options{Topo: topo, Build: build, Allowed: AllMechanisms()})
	if err != nil {
		t.Fatal(err)
	}
	from, to := mustBuild(t, build), mustBuild(t, build)
	re, err := Rebase(pl, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if re != pl {
		t.Error("equal minibatch counts should return the plan unchanged")
	}
}

func TestRebaseAppliesAcrossMinibatches(t *testing.T) {
	canonical := smallJobAt(t, pipeline.PipeDream, 2)
	peaks := measure(t, canonical, hw.DGX1())
	topo := topoWithCapacity(capacityBetween(t, peaks))
	pl, err := Compute(Options{Topo: topo, Build: canonical, Allowed: AllMechanisms()})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Act)+len(pl.HostPersist) == 0 {
		t.Fatal("test setup: plan is empty, rebase would be vacuous")
	}
	from := mustBuild(t, canonical)

	// Both an exact multiple (4) and a non-multiple (3) of the source
	// count must lower, apply and run without OOM.
	for _, mini := range []int{3, 4} {
		target := smallJobAt(t, pipeline.PipeDream, mini)
		to := mustBuild(t, target)
		re, err := Rebase(pl, from, to)
		if err != nil {
			t.Fatalf("mini=%d: %v", mini, err)
		}
		if re == pl {
			t.Fatalf("mini=%d: rebase returned the source plan", mini)
		}
		if len(re.Act) < len(pl.Act) {
			t.Errorf("mini=%d: rebased plan covers %d acts, source %d", mini, len(re.Act), len(pl.Act))
		}
		if mini == 4 && len(re.Act) != 2*len(pl.Act) {
			t.Errorf("mini=4: want exactly doubled act coverage, got %d from %d", len(re.Act), len(pl.Act))
		}
		opts, err := Apply(re, to, topo)
		if err != nil {
			t.Fatalf("mini=%d: %v", mini, err)
		}
		res, err := exec.Run(*opts)
		if err != nil {
			t.Fatalf("mini=%d: %v", mini, err)
		}
		if res.OOM != nil {
			t.Errorf("mini=%d: rebased plan OOMs: %v", mini, res.OOM)
		}
	}
}

func TestRebaseRejectsShapeMismatch(t *testing.T) {
	build := smallJobAt(t, pipeline.PipeDream, 2)
	peaks := measure(t, build, hw.DGX1())
	topo := topoWithCapacity(capacityBetween(t, peaks))
	pl, err := Compute(Options{Topo: topo, Build: build, Allowed: AllMechanisms()})
	if err != nil {
		t.Fatal(err)
	}
	from := mustBuild(t, build)

	// Same stages but a different microbatch count must be rejected.
	cfg := from.Cfg
	other, err := pipeline.Build(pipeline.BuildConfig{
		Model: cfg.Model, Prec: cfg.Prec, Part: cfg.Part, Kind: cfg.Kind,
		MicrobatchSize: cfg.MicrobatchSize, Microbatches: cfg.Microbatches * 2,
		Minibatches: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Rebase(pl, from, other); err == nil {
		t.Error("rebase across different microbatch counts should fail")
	}
}
