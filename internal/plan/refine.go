// Refinement (planner step 4) with parallel trial evaluation.
//
// Each candidate conversion is evaluated on a copy-on-write snapshot
// of the planner's mutable state (plan assignment, spare budget, group
// mechanisms) instead of mutating shared state and undoing on
// rejection. Snapshots make candidates independent, so a worker pool
// can emulate a wave of them concurrently; determinism is preserved by
// arbitrating in rank order, not completion order: the round's winner
// is the first improving candidate by the (overhead desc, stage,
// block) ranking — exactly the candidate the sequential scan would
// have accepted — so plans are byte-identical at any Options.Workers
// setting.
//
// Two shortcuts keep the search incremental without changing its
// outcome:
//
//   - a static lower bound prunes candidates that provably cannot beat
//     the incumbent duration (acceptance needs emulated duration ≤
//     current, and the emulated duration can never fall below the
//     busiest serial resource's total work);
//   - a memo keyed by trial-plan fingerprint reuses emulation verdicts
//     across rounds (emulation is a pure function of plan content —
//     Options.Build is deterministic — so equal fingerprints imply
//     equal verdicts).
package plan

import (
	"cmp"
	"crypto/sha256"
	"encoding/binary"
	"maps"
	"slices"
	"sync"

	"mpress/internal/compaction"
	"mpress/internal/exec"
	"mpress/internal/fabric"
	"mpress/internal/graph"
	"mpress/internal/hw"
	"mpress/internal/tensor"
	"mpress/internal/units"
)

// trial is a copy-on-write snapshot of the planner state a candidate
// conversion mutates. Map values (stripe layouts, the mapping slice)
// are shared: conversions replace entries, never mutate them in place.
type trial struct {
	plan  *Plan
	spare compaction.SpareBudget
	inUse map[groupKey]Mechanism
}

// snapshot clones the refinement-mutable state. Mapping, HostPersist
// and the summary maps are fixed during refinement and shared.
func (p *planner) snapshot() *trial {
	return &trial{
		plan: &Plan{
			Mapping:     p.plan.Mapping,
			Act:         maps.Clone(p.plan.Act),
			Parts:       maps.Clone(p.plan.Parts),
			HostPersist: p.plan.HostPersist,
			SavedByMech: p.plan.SavedByMech,
			StageRange:  p.plan.StageRange,
		},
		spare: p.spare.Clone(),
		inUse: maps.Clone(p.inUse),
	}
}

// adopt replaces the planner's working state with an accepted trial's.
func (p *planner) adopt(t *trial) {
	p.plan, p.spare, p.inUse = t.plan, t.spare, t.inUse
}

// candidate is one potential conversion, ranked worst overhead first.
type candidate struct {
	key      groupKey
	overhead units.Duration
	// recompute marks hostswap groups eligible for the trade-for-
	// recomputation fallback when the D2D attempt does not help.
	recompute bool
}

// emVerdict is an emulation outcome reduced to what arbitration needs.
type emVerdict struct {
	dur units.Duration
	oom bool
}

// evalResult is one candidate's evaluated outcome.
type evalResult struct {
	t   *trial // improving trial to adopt; nil when rejected
	dur units.Duration
	// arbs counts the emulator arbitrations the candidate consumed
	// (memo hits included, lower-bound prunes not) — the deterministic
	// currency behind Plan.Emulations.
	arbs int
	err  error
}

// refineCtx carries one refineWithD2D call's shared read-only inputs
// and its memo. The memo is the only mutable shared state workers
// touch.
type refineCtx struct {
	p *planner
	// ids is the sorted Act key set — invariant during refinement
	// (conversions retarget existing assignments) — used for
	// canonical fingerprints.
	ids []tensor.ID
	// base is per-device serial compute-queue work excluding
	// recomputation: forward/backward compute plus optimizer HBM
	// time, from the reference lowering.
	base []units.Duration
	rate units.FLOPSRate
	// current is the incumbent duration of the round being evaluated.
	current units.Duration

	mu   sync.Mutex
	memo map[[sha256.Size]byte]emVerdict
}

// refineWithD2D is step 4: convert the worst-overhead groups to D2D
// (or trade hostswap for recomputation) while the emulator agrees it
// helps, evaluating up to Options.Workers ranked candidates per wave.
func (p *planner) refineWithD2D(current units.Duration) (units.Duration, error) {
	workers := p.o.Workers
	if workers < 1 {
		workers = 1
	}
	rc := newRefineCtx(p)
	for round := 0; round < p.o.MaxRefinements; round++ {
		cands := rc.rank()
		if len(cands) == 0 {
			return current, nil
		}
		rc.current = current
		improved := false
		for lo := 0; lo < len(cands) && !improved; lo += workers {
			wave := cands[lo:min(lo+workers, len(cands))]
			results := make([]evalResult, len(wave))
			if workers == 1 {
				results[0] = rc.evaluate(wave[0])
			} else {
				var wg sync.WaitGroup
				for i := range wave {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						results[i] = rc.evaluate(wave[i])
					}(i)
				}
				wg.Wait()
			}
			// Arbitrate in rank order: charge each candidate's
			// arbitrations until (and including) the first improving
			// one — the arbitrations the sequential scan would have
			// consumed — then adopt it and end the round.
			for _, res := range results {
				if res.err != nil {
					return 0, res.err
				}
				p.emulations += res.arbs
				if res.t != nil {
					p.adopt(res.t)
					current = res.dur
					improved = true
					break
				}
			}
		}
		if !improved {
			return current, nil
		}
	}
	return current, nil
}

// rank enumerates this round's candidates worst static overhead first,
// with (stage, block) breaking ties so the order is total.
func (rc *refineCtx) rank() []candidate {
	p := rc.p
	var cands []candidate
	for key, mech := range p.inUse {
		if mech != MechRecompute && mech != MechHostSwap {
			continue
		}
		ids := p.groupTensors(key.Stage, key.Block)
		if len(ids) == 0 {
			continue
		}
		size := p.built.Graph.Tensors.Get(ids[0]).Size
		var ov units.Duration
		if mech == MechRecompute {
			ov = compaction.RecomputeCost(p.built.RecomputeFLOPs[ids[0]], rc.rate)
		} else {
			live := p.groupLive(key.Stage, key.Block)
			ov = compaction.Overhead(compaction.HostSwapCost(p.o.Topo, size), live)
		}
		// Zero static overhead still qualifies: PCIe queueing and
		// throttling costs are only visible to the emulator, which
		// arbitrates every conversion.
		cands = append(cands, candidate{
			key:       key,
			overhead:  ov,
			recompute: p.o.Allowed.Recompute && mech == MechHostSwap,
		})
	}
	slices.SortFunc(cands, func(a, b candidate) int {
		if a.overhead != b.overhead {
			return cmp.Compare(b.overhead, a.overhead) // worst first
		}
		if a.key.Stage != b.key.Stage {
			return cmp.Compare(a.key.Stage, b.key.Stage)
		}
		return cmp.Compare(a.key.Block, b.key.Block)
	})
	return cands
}

// evaluate prices one candidate: prefer retargeting to D2D (the
// paper's refinement); when spare memory is exhausted or D2D does not
// help, fall back to trading the hostswap group for recomputation.
// Pure with respect to shared planner state — all mutation happens on
// trial snapshots — so evaluations may run concurrently.
func (rc *refineCtx) evaluate(c candidate) evalResult {
	var res evalResult
	t := rc.p.snapshot()
	if rc.p.convertToD2D(t, c.key) {
		if done := rc.arbitrate(t, &res); done {
			return res
		}
	}
	if c.recompute {
		t = rc.p.snapshot()
		if rc.p.convertToRecompute(t, c.key) {
			if done := rc.arbitrate(t, &res); done {
				return res
			}
		}
	}
	return res
}

// arbitrate prices trial t against the incumbent, filling res and
// reporting whether the candidate is settled (improved or errored).
// Ties are accepted: an equal-duration D2D route still relieves the
// PCIe link and GPU compute the other mechanisms consume.
func (rc *refineCtx) arbitrate(t *trial, res *evalResult) bool {
	if rc.lowerBound(t.plan) > rc.current {
		// Provably cannot improve: skip the emulation entirely. Not
		// charged as an arbitration — the sequential definition of
		// Plan.Emulations counts verdicts, and the prune is
		// deterministic at any worker count.
		return false
	}
	v, err := rc.verdict(t.plan)
	if err != nil {
		res.err = err
		return true
	}
	res.arbs++
	if !v.oom && v.dur <= rc.current {
		res.t, res.dur = t, v.dur
		return true
	}
	return false
}

// verdict returns the memoized emulation outcome for pl, emulating on
// a miss. Safe for concurrent use.
func (rc *refineCtx) verdict(pl *Plan) (emVerdict, error) {
	fp := rc.fingerprint(pl)
	rc.mu.Lock()
	v, ok := rc.memo[fp]
	rc.mu.Unlock()
	if ok {
		return v, nil
	}
	r, err := rc.p.simulate(pl)
	if err != nil {
		return emVerdict{}, err
	}
	v = emVerdict{dur: r.Duration, oom: r.OOM != nil}
	rc.mu.Lock()
	rc.memo[fp] = v
	rc.mu.Unlock()
	return v, nil
}

// fingerprint canonically hashes the plan content emulation depends
// on. During refinement only Act and Parts vary (Mapping, HostPersist
// and the build are fixed), and the Act key set is invariant, so
// hashing each id's mechanism and stripe layout in sorted-id order is
// a complete content key.
func (rc *refineCtx) fingerprint(pl *Plan) [sha256.Size]byte {
	buf := make([]byte, 0, len(rc.ids)*8)
	for _, id := range rc.ids {
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = binary.AppendUvarint(buf, uint64(pl.Act[id]))
		if pl.Act[id] == MechD2D {
			for _, part := range pl.Parts[id] {
				buf = binary.AppendUvarint(buf, uint64(part.Peer))
				buf = binary.AppendUvarint(buf, uint64(part.Bytes))
			}
		}
		buf = append(buf, 0xff)
	}
	return sha256.Sum256(buf)
}

// lowerBound returns a provable lower bound on pl's emulated duration
// from per-resource busy totals: a serial compute queue with total
// work W cannot finish before W, and a k-lane link set moving B bytes
// at per-lane bandwidth bw cannot finish before B/(k·bw). Both ignore
// idle gaps, dependencies and latency terms, so the bound only ever
// undercounts — a candidate is pruned only when even this undercount
// exceeds the incumbent.
func (rc *refineCtx) lowerBound(pl *Plan) units.Duration {
	p := rc.p
	extra := make([]units.Duration, len(rc.base))
	type pair struct{ src, dst hw.DeviceID }
	var link map[pair]units.Bytes
	for _, id := range rc.ids {
		switch pl.Act[id] {
		case MechRecompute:
			tn := p.built.Graph.Tensors.Get(id)
			dev := pl.Device(tn.Stage)
			extra[dev] += compaction.RecomputeCost(p.built.RecomputeFLOPs[id], rc.rate)
		case MechD2D:
			tn := p.built.Graph.Tensors.Get(id)
			src := pl.Device(tn.Stage)
			if link == nil {
				link = make(map[pair]units.Bytes)
			}
			for _, part := range pl.Parts[id] {
				// One scatter and one gather per instance; count the
				// scatter direction only (the gather mirrors it on the
				// reverse lane set) — undercounting keeps the bound
				// sound.
				link[pair{src, part.Peer}] += part.Bytes
			}
		}
	}
	var bound units.Duration
	for dev, b := range rc.base {
		if t := b + extra[dev]; t > bound {
			bound = t
		}
	}
	for k, bytes := range link {
		lanes := p.o.Topo.LanesBetween(k.src, k.dst)
		if lanes <= 0 {
			continue
		}
		if t := p.o.Topo.NVLinkLaneBW.TransferTime(bytes) / units.Duration(lanes); t > bound {
			bound = t
		}
	}
	return bound
}

// newRefineCtx precomputes the call-lifetime inputs: the sorted Act
// key set, the per-device base compute load, and the memo.
func newRefineCtx(p *planner) *refineCtx {
	rc := &refineCtx{
		p:    p,
		rate: p.rate(),
		memo: make(map[[sha256.Size]byte]emVerdict),
		base: make([]units.Duration, p.o.Topo.NumGPUs),
	}
	rc.ids = make([]tensor.ID, 0, len(p.plan.Act))
	for id := range p.plan.Act {
		rc.ids = append(rc.ids, id)
	}
	slices.Sort(rc.ids)
	g := p.built.Graph
	for i := 0; i < g.Len(); i++ {
		op := g.Op(graph.OpID(i))
		switch op.Kind {
		case graph.Forward, graph.Backward:
			rc.base[p.plan.Device(op.Stage)] += rc.rate.ComputeTime(op.FLOPs)
		case graph.OptimizerStep:
			rc.base[p.plan.Device(op.Stage)] += p.o.Topo.GPU.HBM.TransferTime(op.MoveBytes)
		}
	}
	return rc
}

// convertToD2D retargets a group to D2D on trial t. When the spare
// budget cannot host all of the group's in-flight instances, the
// conversion is partial: only microbatch instances in coexistence
// slots with a planned stripe layout move to D2D (the paper likewise
// applies D2D tensor by tensor where spare allows).
func (p *planner) convertToD2D(t *trial, key groupKey) bool {
	ids := p.groupTensors(key.Stage, key.Block)
	if len(ids) == 0 || t.inUse[key] == MechD2D {
		return false
	}
	b := p.built
	inflight := b.Cfg.Kind.InFlight(key.Stage, b.NumStages(), b.Cfg.Microbatches)
	src := t.plan.Device(key.Stage)
	size := b.Graph.Tensors.Get(ids[0]).Size

	layouts := make([][]fabric.Part, 0, inflight)
	for i := 0; i < inflight; i++ {
		parts := p.planStripes(t.spare, src, size)
		if parts == nil {
			break
		}
		layouts = append(layouts, parts)
	}
	if len(layouts) == 0 {
		return false
	}
	// Instances whose coexistence slot (m mod inflight) lacks a layout
	// keep their previous mechanism; instances of the same slot never
	// overlap in time, so they share one layout. Already converted
	// instances (from an earlier partial pass) are skipped.
	converted := 0
	slotLayout := make(map[int][]fabric.Part)
	next := 0
	for i, id := range ids {
		if t.plan.Act[id] == MechD2D {
			continue
		}
		slot := i % inflight
		lay, ok := slotLayout[slot]
		if !ok {
			if next >= len(layouts) {
				continue
			}
			lay = layouts[next]
			next++
			slotLayout[slot] = lay
		}
		t.plan.Act[id] = MechD2D
		t.plan.Parts[id] = lay
		converted++
	}
	// Return unused layouts to the trial's budget.
	for _, l := range layouts[next:] {
		compaction.UnplanStripes(t.spare, l)
	}
	if converted == 0 {
		return false
	}
	allD2D := true
	for _, id := range ids {
		if t.plan.Act[id] != MechD2D {
			allD2D = false
			break
		}
	}
	if allD2D {
		t.inUse[key] = MechD2D
	}
	return true
}

// convertToRecompute retargets a hostswap group to recomputation on
// trial t. Instances an earlier partial pass already moved to D2D
// keep their stripes (their peer memory is paid for; dropping them
// would leak the trial's spare budget).
func (p *planner) convertToRecompute(t *trial, key groupKey) bool {
	ids := p.groupTensors(key.Stage, key.Block)
	if len(ids) == 0 {
		return false
	}
	converted := 0
	for _, id := range ids {
		if t.plan.Act[id] == MechD2D {
			continue
		}
		t.plan.Act[id] = MechRecompute
		converted++
	}
	if converted == 0 {
		return false
	}
	t.inUse[key] = MechRecompute
	return true
}

// simulate applies pl to a fresh Built and runs it bounded. Pure with
// respect to planner state, so refinement workers may call it
// concurrently; emulate is the sequential counting wrapper the
// OOM-retry loop uses.
func (p *planner) simulate(pl *Plan) (*exec.Result, error) {
	b, err := p.o.Build()
	if err != nil {
		return nil, err
	}
	opts, err := Apply(pl, b, p.o.Topo)
	if err != nil {
		return nil, err
	}
	opts.Ctx = p.o.Ctx
	return exec.Run(*opts)
}

// emulate is simulate plus the Plan.Emulations charge.
func (p *planner) emulate(pl *Plan) (*exec.Result, error) {
	p.emulations++
	return p.simulate(pl)
}
